#!/usr/bin/env python3
"""Compare two BENCH_*.json records and fail on performance regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [--tolerance=0.15]

Counter conventions (see bench/bench_main.hpp): names ending in `_s` are
wall-clock seconds (lower is better; regression = current > baseline by more
than the tolerance), and names ending in `_rps` are throughput rates in
requests/routes per second (higher is better; regression = current <
baseline by more than the tolerance). Names ending in `_x` are speedup
ratios: informational only — displayed in the diff, never gated. A ratio
divides two measured times, so it carries the noise of both, and its
components are already gated individually via their `_s` counters; gating it
too would double-count noise (e.g. a faster reference engine would "regress"
the speedup with no change to the engine under test).
Integer-valued counters without either suffix are work counts and must match
exactly — the benches assert engine equivalence, so a drifting work count
means the workload changed and the baseline should be re-recorded.
Non-integer unsuffixed counters (e.g. thread-pool wall times and speedups,
which depend on host load and core count) are informational only: printed,
never gated.

Exit status: 0 when no counter regressed, 1 on regression, 2 on a
malformed invocation or an unreadable/malformed record (with a clear
message naming the file and what is wrong with it — never a traceback).
"""

import json
import sys


class RecordError(Exception):
    """An unreadable or structurally invalid BENCH_*.json record."""


def load(path):
    try:
        with open(path) as f:
            record = json.load(f)
    except OSError as e:
        raise RecordError(f"{path}: cannot read record: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise RecordError(f"{path}: not valid JSON ({e})")
    if not isinstance(record, dict):
        raise RecordError(f"{path}: expected a JSON object at top level")
    sections = record.get("sections", [])
    if not isinstance(sections, list):
        raise RecordError(f"{path}: 'sections' must be a list")
    counters = {}
    for i, section in enumerate(sections):
        if not isinstance(section, dict):
            raise RecordError(f"{path}: section [{i}] is not an object")
        title = section.get("title", "?")
        section_counters = section.get("counters", {})
        if not isinstance(section_counters, dict):
            raise RecordError(
                f"{path}: section '{title}': 'counters' must be an object"
            )
        for name, value in section_counters.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise RecordError(
                    f"{path}: section '{title}': counter '{name}' is not a "
                    f"number (got {value!r})"
                )
            counters[f"{title} / {name}"] = value
    if not counters:
        raise RecordError(
            f"{path}: record has no counters — nothing to compare "
            "(was the bench run with --json?)"
        )
    return record.get("bench", path), counters


def main(argv):
    tolerance = 0.15
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.stderr.write(__doc__)
        return 2

    try:
        base_name, base = load(paths[0])
        _, curr = load(paths[1])
    except RecordError as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    failures = []
    notes = []
    for key, base_value in sorted(base.items()):
        if key not in curr:
            failures.append(f"{key}: missing from current run")
            continue
        curr_value = curr[key]
        name = key.rsplit("/", 1)[-1].strip()
        if name.endswith("_s"):
            if base_value > 0 and curr_value > base_value * (1 + tolerance):
                failures.append(
                    f"{key}: {curr_value:.6f}s vs baseline {base_value:.6f}s "
                    f"(+{(curr_value / base_value - 1) * 100:.1f}%, "
                    f"tolerance {tolerance * 100:.0f}%)"
                )
            else:
                notes.append(f"{key}: {curr_value:.6f}s (baseline {base_value:.6f}s) ok")
        elif name.endswith("_x"):
            notes.append(
                f"{key}: {curr_value:.2f}x "
                f"(baseline {base_value:.2f}x) informational"
            )
        elif name.endswith("_rps"):
            if base_value > 0 and curr_value < base_value * (1 - tolerance):
                failures.append(
                    f"{key}: {curr_value:.2f} r/s vs baseline "
                    f"{base_value:.2f} r/s "
                    f"(-{(1 - curr_value / base_value) * 100:.1f}%, "
                    f"tolerance {tolerance * 100:.0f}%)"
                )
            else:
                notes.append(
                    f"{key}: {curr_value:.2f} r/s "
                    f"(baseline {base_value:.2f} r/s) ok"
                )
        elif float(base_value).is_integer() and float(curr_value).is_integer():
            if curr_value != base_value:
                failures.append(
                    f"{key}: work count {curr_value} != baseline {base_value} "
                    "(workload changed; re-record the baseline if intended)"
                )
            else:
                notes.append(f"{key}: {curr_value} ok")
        else:
            notes.append(
                f"{key}: {curr_value} (baseline {base_value}) informational"
            )

    for extra in sorted(set(curr) - set(base)):
        notes.append(
            f"{extra}: new counter, not in baseline — informational "
            "(re-record the baseline to start gating it)"
        )

    print(f"bench_compare: {base_name}")
    for line in notes:
        print(f"  {line}")
    if failures:
        print(f"REGRESSIONS ({len(failures)}):", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"no regressions ({len(base)} counters, tolerance {tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
