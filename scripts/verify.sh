#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# run the checking-subsystem tests (`ctest -L check`), the reliable
# transport tests (`ctest -L transport`), and the interconnect tests
# (`ctest -L network`) explicitly so a label regression (tests silently
# dropping out of a label) is caught.
#
#   scripts/verify.sh             # tier-1
#   scripts/verify.sh --sanitize  # same suite under ASan + UBSan
#   scripts/verify.sh --tsan      # SimPool + threaded-router suites under
#                                 # ThreadSanitizer at LOCUS_THREADS=4
#   scripts/verify.sh --check     # tier-1 + checking-subsystem smoke via
#                                 # examples/check_tool: differential oracle
#                                 # and the transport fault-recovery sweep
#                                 # (every row must converge bit-identically)
#   scripts/verify.sh --bench     # tier-1 + benchmark regression gate
#                                 # (Release run diffed against the checked-in
#                                 # BENCH_*.json via scripts/bench_compare.py)
#                                 # + pool determinism gate: table benches must
#                                 # emit identical rows at --threads=1 and =4
#   scripts/verify.sh --obs       # tier-1 + observability smoke: trace +
#                                 # metrics export and the obs-vs-engine
#                                 # cross-check table via examples/obs_tool
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_FLAGS=()
RUN_BENCH=0
RUN_OBS=0
RUN_CHECK=0
if [[ "${1:-}" == "--sanitize" ]]; then
  BUILD_DIR=build-sanitize
  CMAKE_FLAGS+=(-DLOCUS_SANITIZE=address,undefined)
elif [[ "${1:-}" == "--tsan" ]]; then
  # Race check for the SimPool fan-outs and the natively threaded routers:
  # only the suites that actually spawn threads, at a real pool width.
  cmake --preset tsan
  cmake --build --preset tsan -j --target locus_tests locus_pool_tests \
    locus_check_tests locus_transport_tests
  ctest --preset tsan-threads -j "$(nproc)"
  exit 0
elif [[ "${1:-}" == "--bench" ]]; then
  RUN_BENCH=1
elif [[ "${1:-}" == "--obs" ]]; then
  RUN_OBS=1
elif [[ "${1:-}" == "--check" ]]; then
  RUN_CHECK=1
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j

cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"

# The check, transport, and network labels must exist and pass on their own.
ctest -L check --output-on-failure -j "$(nproc)"
ctest -L transport --output-on-failure -j "$(nproc)"
ctest -L network --output-on-failure -j "$(nproc)"

# Optional benchmark regression gate: re-run the microbenchmarks in Release
# and diff against the checked-in baselines.
if [[ "$RUN_BENCH" == 1 ]]; then
  cd ..
  # Pool determinism gate: the table fan-outs must produce byte-identical
  # data rows at any thread count; only the wall-time lines may differ.
  for b in sec52_mp_vs_shm table1_sender_initiated; do
    "./$BUILD_DIR/bench/$b" --threads=1 \
      | grep -v 'built in\|total wall time' > /tmp/locus-bench-serial.txt
    "./$BUILD_DIR/bench/$b" --threads=4 \
      | grep -v 'built in\|total wall time' > /tmp/locus-bench-pooled.txt
    if ! diff -u /tmp/locus-bench-serial.txt /tmp/locus-bench-pooled.txt; then
      echo "FAIL: $b output diverges between --threads=1 and --threads=4" >&2
      exit 1
    fi
    echo "pool determinism: $b identical at --threads=1 and --threads=4"
  done
  # Dynamic-assignment sweep determinism gate: the locality/steal scheduling
  # protocols are simulated-time deterministic, so a small sweep must emit
  # byte-identical data rows at any SimPool width (only wall-time lines and
  # the wall-clock-dependent counters may differ).
  for modes in dyn-local dyn-steal; do
    LOCUS_SCALE_WIRES=2000 LOCUS_SCALE_PROCS=16 LOCUS_SCALE_MODES="geo,$modes" \
      "./$BUILD_DIR/bench/scale_sweep" --threads=1 \
      | grep -v 'built in\|total wall time' > /tmp/locus-dyn-serial.txt
    LOCUS_SCALE_WIRES=2000 LOCUS_SCALE_PROCS=16 LOCUS_SCALE_MODES="geo,$modes" \
      "./$BUILD_DIR/bench/scale_sweep" --threads=4 \
      | grep -v 'built in\|total wall time' > /tmp/locus-dyn-pooled.txt
    if ! diff -u /tmp/locus-dyn-serial.txt /tmp/locus-dyn-pooled.txt; then
      echo "FAIL: $modes sweep diverges between --threads=1 and --threads=4" >&2
      exit 1
    fi
    echo "dynamic-sweep determinism: $modes identical at --threads=1 and =4"
  done
  # Interconnect determinism gates. First the full topology sweep — four MP
  # schedules x {mesh, torus, fat-tree} x {fixed, md1, vc} with per-link
  # utilization columns — must emit byte-identical rows at any pool width.
  # Then the scale sweep is re-priced under the fixed and the M/D/1 link
  # cost models: each must match itself across widths 1 and 4 (queueing
  # waits are functions of cumulative simulated busy time, never of which
  # worker ran the job).
  "./$BUILD_DIR/bench/topology_sweep" --threads=1 \
    | grep -v 'built in\|total wall time' > /tmp/locus-topo-serial.txt
  "./$BUILD_DIR/bench/topology_sweep" --threads=4 \
    | grep -v 'built in\|total wall time' > /tmp/locus-topo-pooled.txt
  if ! diff -u /tmp/locus-topo-serial.txt /tmp/locus-topo-pooled.txt; then
    echo "FAIL: topology sweep diverges between --threads=1 and --threads=4" >&2
    exit 1
  fi
  echo "topology-sweep determinism: identical at --threads=1 and --threads=4"
  for model in fixed md1; do
    LOCUS_SCALE_WIRES=2000 LOCUS_SCALE_PROCS=16 LOCUS_SCALE_MODES=geo \
      LOCUS_SCALE_COST_MODEL="$model" \
      "./$BUILD_DIR/bench/scale_sweep" --threads=1 \
      | grep -v 'built in\|total wall time' > /tmp/locus-cost-serial.txt
    LOCUS_SCALE_WIRES=2000 LOCUS_SCALE_PROCS=16 LOCUS_SCALE_MODES=geo \
      LOCUS_SCALE_COST_MODEL="$model" \
      "./$BUILD_DIR/bench/scale_sweep" --threads=4 \
      | grep -v 'built in\|total wall time' > /tmp/locus-cost-pooled.txt
    if ! diff -u /tmp/locus-cost-serial.txt /tmp/locus-cost-pooled.txt; then
      echo "FAIL: $model sweep diverges between --threads=1 and --threads=4" >&2
      exit 1
    fi
    echo "cost-model determinism: $model identical at --threads=1 and =4"
  done
  # Route-service determinism gate: a replayed request batch must produce
  # byte-identical per-job results and metrics CSV at width 1 and width 8
  # (with LOCUS_POOL_IGNORE_AFFINITY forcing real workers even on 1-cpu
  # hosts, so the pooled path is genuinely exercised).
  RS=/tmp/locus-route-service
  mkdir -p "$RS"
  "./$BUILD_DIR/examples/route_service" --generate=300 --seed=9 \
    --out="$RS/requests.txt" >/dev/null
  "./$BUILD_DIR/examples/route_service" --requests="$RS/requests.txt" \
    --width=1 --results="$RS/results-1.txt" --metrics="$RS/metrics-1.csv" \
    >/dev/null
  LOCUS_POOL_IGNORE_AFFINITY=1 \
    "./$BUILD_DIR/examples/route_service" --requests="$RS/requests.txt" \
    --width=8 --inflight=32 --results="$RS/results-8.txt" \
    --metrics="$RS/metrics-8.csv" >/dev/null
  if ! diff -u "$RS/results-1.txt" "$RS/results-8.txt" ||
     ! diff -u "$RS/metrics-1.csv" "$RS/metrics-8.csv"; then
    echo "FAIL: route_service output diverges between width 1 and width 8" >&2
    exit 1
  fi
  echo "route-service determinism: 300 jobs identical at width 1 and width 8"
  scripts/bench_smoke.sh /tmp/locus-bench
  scripts/bench_compare.py BENCH_explorer.json /tmp/locus-bench/BENCH_explorer.json
  scripts/bench_compare.py BENCH_network.json /tmp/locus-bench/BENCH_network.json
  scripts/bench_compare.py BENCH_sim.json /tmp/locus-bench/BENCH_sim.json
  # SIMD-vs-scalar identity gate: the section flips the runtime force-scalar
  # switch around two identical pricing sweeps and LOCUS_ASSERTs bit-equal
  # costs and work counters; a nonzero exit here means the vector kernels
  # and the scalar fallback disagree (the timing ratio is informational).
  ./build-release/bench/micro_explorer --only="simd vs scalar"
  echo "simd identity: vector and forced-scalar sweeps bit-identical"
fi

# Optional checking-subsystem smoke: the differential oracle plus the
# transport fault-recovery sweep. Every sweep row must report identical
# routes and a balanced ledger; grep enforces it on the rendered table.
if [[ "$RUN_CHECK" == 1 ]]; then
  ./examples/check_tool oracle --circuit=tiny --procs=4
  RECOVERY=$(./examples/check_tool recovery --circuit=tiny --procs=4)
  echo "$RECOVERY"
  if echo "$RECOVERY" | grep -qE 'NO|IMBALANCED'; then
    echo "FAIL: fault-recovery sweep diverged from the fault-free run" >&2
    exit 1
  fi
fi

# Optional observability smoke: export a Chrome trace + metrics CSV, check
# the trace parses as JSON, and run the obs-vs-engine cross-check table.
if [[ "$RUN_OBS" == 1 ]]; then
  OBS_OUT=/tmp/locus-obs
  mkdir -p "$OBS_OUT"
  ./examples/obs_tool mp --circuit=tiny --procs=4 \
    --trace="$OBS_OUT/trace.json" --metrics="$OBS_OUT/metrics.csv" >/dev/null
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OBS_OUT/trace.json"
  ./examples/obs_tool summary --circuit=tiny --procs=4
  echo "obs artifacts: $OBS_OUT/trace.json $OBS_OUT/metrics.csv"
fi
