#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite, then
# run the checking-subsystem tests (`ctest -L check`) explicitly so a label
# regression (tests silently dropping out of the label) is caught.
#
#   scripts/verify.sh             # tier-1
#   scripts/verify.sh --sanitize  # same suite under ASan + UBSan
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_FLAGS=()
if [[ "${1:-}" == "--sanitize" ]]; then
  BUILD_DIR=build-sanitize
  CMAKE_FLAGS+=(-DLOCUS_SANITIZE=address,undefined)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j

cd "$BUILD_DIR"
ctest --output-on-failure -j "$(nproc)"

# The check label must exist and pass on its own.
ctest -L check --output-on-failure -j "$(nproc)"
