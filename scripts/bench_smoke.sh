#!/usr/bin/env bash
# Benchmark smoke run: build the Release + LTO preset and run the two
# microbenchmarks that define the repo's performance baseline, writing
# machine-readable records to BENCH_explorer.json and BENCH_network.json at
# the repo root. Diff a fresh run against the checked-in baseline with
#   scripts/bench_compare.py BENCH_explorer.json /tmp/BENCH_explorer.json
#
#   scripts/bench_smoke.sh            # write BENCH_*.json at the repo root
#   scripts/bench_smoke.sh OUTDIR     # write them somewhere else
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR="${1:-.}"
mkdir -p "$OUTDIR"

cmake --preset release >/dev/null
cmake --build --preset release -j --target micro_explorer micro_network

./build-release/bench/micro_explorer --json="$OUTDIR/BENCH_explorer.json"
./build-release/bench/micro_network --json="$OUTDIR/BENCH_network.json"

echo "bench records: $OUTDIR/BENCH_explorer.json $OUTDIR/BENCH_network.json"
