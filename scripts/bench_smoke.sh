#!/usr/bin/env bash
# Benchmark smoke run: build the Release + LTO preset and run the
# microbenchmarks that define the repo's performance baseline, writing
# machine-readable records to BENCH_explorer.json, BENCH_network.json and
# BENCH_sim.json at the repo root. Diff a fresh run against the checked-in
# baseline with
#   scripts/bench_compare.py BENCH_explorer.json /tmp/BENCH_explorer.json
#
#   scripts/bench_smoke.sh            # write BENCH_*.json at the repo root
#   scripts/bench_smoke.sh OUTDIR     # write them somewhere else
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR="${1:-.}"
mkdir -p "$OUTDIR"

cmake --preset release >/dev/null
cmake --build --preset release -j --target micro_explorer micro_network micro_sim

./build-release/bench/micro_explorer --json="$OUTDIR/BENCH_explorer.json"
./build-release/bench/micro_network --json="$OUTDIR/BENCH_network.json"
./build-release/bench/micro_sim --json="$OUTDIR/BENCH_sim.json"

echo "bench records: $OUTDIR/BENCH_explorer.json $OUTDIR/BENCH_network.json $OUTDIR/BENCH_sim.json"
