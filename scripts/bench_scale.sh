#!/usr/bin/env bash
# Scale-tier bench run: build the Release + LTO preset and run the scale
# microbenchmark (10k-wire hierarchical sweep, shard identity, region
# batching), writing BENCH_scale.json. Diff against the checked-in baseline:
#   scripts/bench_compare.py BENCH_scale.json /tmp/BENCH_scale.json
#
# The full-size sweep (100k wires by default; LOCUS_SCALE_WIRES /
# LOCUS_SCALE_PROCS override) is a separate binary because it is minutes,
# not seconds, and its wall clock is not a gated baseline:
#   ./build-release/bench/scale_sweep
#
#   scripts/bench_scale.sh            # write BENCH_scale.json at the repo root
#   scripts/bench_scale.sh OUTDIR     # write it somewhere else
set -euo pipefail
cd "$(dirname "$0")/.."

OUTDIR="${1:-.}"
mkdir -p "$OUTDIR"

cmake --preset release >/dev/null
cmake --build --preset release -j --target micro_scale

./build-release/bench/micro_scale --json="$OUTDIR/BENCH_scale.json"

echo "bench record: $OUTDIR/BENCH_scale.json"
