// Tests for the Machine/Node execution model: poll-between-steps delivery,
// blocking, time accounting, and completion statistics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/machine.hpp"

namespace locus {
namespace {

/// A node that performs `steps` compute steps of `step_ns` each and records
/// the local time at which each packet was handled.
class Worker : public Node {
 public:
  Worker(std::int32_t steps, SimTime step_ns, std::vector<SimTime>* handled_at)
      : steps_(steps), step_ns_(step_ns), handled_at_(handled_at) {}

  void on_packet(NodeApi& api, const Packet&) override {
    if (handled_at_ != nullptr) handled_at_->push_back(api.now());
  }

  bool on_step(NodeApi& api) override {
    if (done_ >= steps_) return false;
    ++done_;
    api.advance(step_ns_);
    return true;
  }

 private:
  std::int32_t steps_;
  SimTime step_ns_;
  std::vector<SimTime>* handled_at_;
  std::int32_t done_ = 0;
};

/// A node that sends one packet to `dst` at start and is otherwise idle.
class OneShotSender : public Node {
 public:
  OneShotSender(ProcId dst, std::int32_t bytes) : dst_(dst), bytes_(bytes) {}
  void on_packet(NodeApi&, const Packet&) override {}
  bool on_step(NodeApi& api) override {
    if (sent_) return false;
    sent_ = true;
    api.send(dst_, 7, bytes_, nullptr);
    return true;
  }

 private:
  ProcId dst_;
  std::int32_t bytes_;
  bool sent_ = false;
};

/// Request/response pair for blocking tests: the requester sends and blocks
/// until the response arrives; the responder answers requests.
class BlockingRequester : public Node {
 public:
  explicit BlockingRequester(ProcId dst) : dst_(dst) {}
  void on_packet(NodeApi& api, const Packet& packet) override {
    if (packet.type == 2) {
      waiting_ = false;
      response_at_ = api.now();
    }
  }
  bool on_step(NodeApi& api) override {
    if (!sent_) {
      sent_ = true;
      waiting_ = true;
      api.send(dst_, 1, 16, nullptr);
      return true;
    }
    if (!did_work_after_) {
      did_work_after_ = true;
      work_started_at_ = api.now();
      api.advance(1000);
      return true;
    }
    return false;
  }
  bool blocked() const override { return waiting_; }

  SimTime response_at() const { return response_at_; }
  SimTime work_started_at() const { return work_started_at_; }

 private:
  ProcId dst_;
  bool sent_ = false;
  bool waiting_ = false;
  bool did_work_after_ = false;
  SimTime response_at_ = -1;
  SimTime work_started_at_ = -1;
};

class Responder : public Node {
 public:
  void on_packet(NodeApi& api, const Packet& packet) override {
    api.advance(500);
    api.send(packet.src, 2, 16, nullptr);
  }
  bool on_step(NodeApi&) override { return false; }
};

Topology two_nodes() { return Topology({2, 1}, Topology::Edges::kMesh); }

TEST(Machine, RunsAllNodesToCompletion) {
  Topology topo({2, 2}, Topology::Edges::kMesh);
  Machine m(topo, {});
  for (ProcId p = 0; p < 4; ++p) {
    m.set_node(p, std::make_unique<Worker>(3, 100 * (p + 1), nullptr));
  }
  MachineStats stats = m.run();
  EXPECT_EQ(stats.finish_time[0], 300);
  EXPECT_EQ(stats.finish_time[3], 1200);
  EXPECT_EQ(stats.completion_time, 1200);
}

TEST(Machine, PacketsDeliveredBetweenSteps) {
  // The worker computes 10 steps of 1000ns; a packet arrives around t=7600
  // (2*2000 + 100*(1+16) with send at t=... sender sends in its first
  // step). It must be handled at a step boundary, not mid-step.
  Machine m(two_nodes(), {});
  std::vector<SimTime> handled;
  m.set_node(0, std::make_unique<Worker>(10, 1000, &handled));
  m.set_node(1, std::make_unique<OneShotSender>(0, 16));
  m.run();
  ASSERT_EQ(handled.size(), 1u);
  EXPECT_EQ(handled[0] % 1000, 0) << "handled mid-step at " << handled[0];
}

TEST(Machine, IdleNodeHandlesPacketOnArrival) {
  Machine m(two_nodes(), {});
  std::vector<SimTime> handled;
  m.set_node(0, std::make_unique<Worker>(0, 0, &handled));  // immediately idle
  m.set_node(1, std::make_unique<OneShotSender>(0, 16));
  m.run();
  ASSERT_EQ(handled.size(), 1u);
  // send ProcessTime (2000) + hop latency (100 * (1 + 16)) + recv
  // ProcessTime (2000) = 5700.
  EXPECT_EQ(handled[0], 5700);
}

TEST(Machine, BlockingNodeWaitsForResponse) {
  Machine m(two_nodes(), {});
  auto requester = std::make_unique<BlockingRequester>(1);
  BlockingRequester* req = requester.get();
  m.set_node(0, std::move(requester));
  m.set_node(1, std::make_unique<Responder>());
  m.run();
  EXPECT_GE(req->response_at(), 0);
  // The post-request work step starts only after the response arrived.
  EXPECT_GE(req->work_started_at(), req->response_at());
}

TEST(Machine, SendChargesProcessTime) {
  Machine m(two_nodes(), {});
  m.set_node(0, std::make_unique<OneShotSender>(1, 64));
  m.set_node(1, std::make_unique<Worker>(0, 0, nullptr));
  MachineStats stats = m.run();
  // The sender's only step costs exactly one ProcessTime (2000 ns).
  EXPECT_EQ(stats.finish_time[0], 2000);
}

TEST(Machine, TrafficVisibleInNetworkStats) {
  Machine m(two_nodes(), {});
  m.set_node(0, std::make_unique<OneShotSender>(1, 64));
  m.set_node(1, std::make_unique<Worker>(0, 0, nullptr));
  m.run();
  EXPECT_EQ(m.network().stats().packets, 1u);
  EXPECT_EQ(m.network().stats().bytes, 64u);
}

TEST(Machine, DeterministicAcrossRuns) {
  auto build_and_run = [] {
    Topology topo({2, 2}, Topology::Edges::kMesh);
    Machine m(topo, {});
    m.set_node(0, std::make_unique<OneShotSender>(3, 32));
    m.set_node(1, std::make_unique<OneShotSender>(2, 32));
    m.set_node(2, std::make_unique<Worker>(5, 700, nullptr));
    m.set_node(3, std::make_unique<Worker>(2, 300, nullptr));
    return m.run();
  };
  MachineStats a = build_and_run();
  MachineStats b = build_and_run();
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.finish_time, b.finish_time);
}

TEST(Machine, SingleNodeMachineWorks) {
  Topology topo({1, 1}, Topology::Edges::kMesh);
  Machine m(topo, {});
  m.set_node(0, std::make_unique<Worker>(4, 250, nullptr));
  MachineStats stats = m.run();
  EXPECT_EQ(stats.completion_time, 1000);
}

}  // namespace
}  // namespace locus
