// Shared test builders: the seeded inputs several test files need are
// defined once here so "a small deterministic circuit" and "a random cost
// landscape" mean the same thing everywhere.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "circuit/generator.hpp"
#include "grid/cost_array.hpp"
#include "support/rng.hpp"

namespace locus::test {

/// Deterministic non-uniform cost landscape: every cell drawn from
/// [0, max_cost) with the given seed.
inline CostArray make_random_landscape(std::int32_t channels,
                                       std::int32_t grids, std::uint64_t seed,
                                       std::uint64_t max_cost) {
  CostArray cost(channels, grids);
  Rng rng(seed);
  for (std::int32_t c = 0; c < channels; ++c) {
    for (std::int32_t x = 0; x < grids; ++x) {
      cost.set({c, x}, static_cast<std::int32_t>(rng.bounded(max_cost)));
    }
  }
  return cost;
}

/// The 24-wire tiny circuit used across the golden, property, and check
/// tests. Different seeds give structurally similar but distinct circuits.
inline Circuit make_seeded_circuit(std::uint64_t seed = 7) {
  return make_tiny_test_circuit(seed);
}

}  // namespace locus::test
