// Property tests for the hierarchical scale-circuit generator: seed
// determinism, pin validity, and the declared-vs-measured length mix (the
// generator's whole point is that the hierarchy-level histogram is a
// parameter, not an accident).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "circuit/hier_generator.hpp"

namespace locus {
namespace {

bool same_netlist(const Circuit& a, const Circuit& b) {
  if (a.channels() != b.channels() || a.grids() != b.grids() ||
      a.num_wires() != b.num_wires()) {
    return false;
  }
  for (std::int32_t w = 0; w < a.num_wires(); ++w) {
    if (a.wire(w).pins != b.wire(w).pins) return false;
  }
  return true;
}

TEST(HierGenerator, SameSeedSameNetlist) {
  HierGeneratorParams params;
  params.num_wires = 2000;
  const Circuit a = generate_hierarchical_circuit(params);
  const Circuit b = generate_hierarchical_circuit(params);
  EXPECT_TRUE(same_netlist(a, b));
}

TEST(HierGenerator, DifferentSeedDifferentNetlist) {
  HierGeneratorParams params;
  params.num_wires = 2000;
  const Circuit a = generate_hierarchical_circuit(params);
  params.seed ^= 0xDEADBEEFULL;
  const Circuit b = generate_hierarchical_circuit(params);
  EXPECT_FALSE(same_netlist(a, b));
}

TEST(HierGenerator, PinsInValidChannelsAndColumns) {
  HierGeneratorParams params;
  params.num_wires = 5000;
  const Circuit circuit = generate_hierarchical_circuit(params);
  ASSERT_EQ(circuit.num_wires(), params.num_wires);
  for (const Wire& wire : circuit.wires()) {
    EXPECT_GE(static_cast<int>(wire.pins.size()), 2) << "wire " << wire.id;
    EXPECT_LE(static_cast<int>(wire.pins.size()), params.max_pins);
    for (const Pin& pin : wire.pins) {
      EXPECT_GE(pin.x, 0);
      EXPECT_LT(pin.x, circuit.grids());
      EXPECT_GE(pin.row, 0);
      EXPECT_LT(pin.row, circuit.channels() - 1);
    }
  }
}

TEST(HierGenerator, LevelWeightsNormalizedAndLeafHeavy) {
  HierGeneratorParams params;
  const std::vector<double> weights = hier_level_weights(params);
  ASSERT_EQ(static_cast<std::int32_t>(weights.size()), params.levels);
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // Leaf level dominates; each level up is damped by level_decay.
  for (std::size_t l = 1; l < weights.size(); ++l) {
    EXPECT_GT(weights[l], weights[l - 1]);
  }
}

// Measured histogram tracks the declared weights. The fit test classifies a
// wire by the deepest level whose block can contain its bbox, so wires
// drawn at level l but placed near a block center can measure *deeper* than
// drawn — the one-sided bounds below are the invariants the draw actually
// guarantees: at least the declared fraction fits the leaf, and at most the
// declared chip-level fraction (plus sampling slack) needs the whole chip.
TEST(HierGenerator, LengthMixTracksDeclaredWeights) {
  HierGeneratorParams params;
  params.num_wires = 20'000;
  const Circuit circuit = generate_hierarchical_circuit(params);
  const std::vector<double> weights = hier_level_weights(params);
  const std::vector<double> mix = measure_length_mix(circuit, params);
  ASSERT_EQ(mix.size(), weights.size());
  const double total = std::accumulate(mix.begin(), mix.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  constexpr double kSlack = 0.05;
  const double leaf_weight = weights.back();
  EXPECT_GE(mix.back(), leaf_weight - kSlack);
  EXPECT_LE(mix.front(), weights.front() + kSlack);
  // Non-leaf mass exists at all: the escape tail is generated, not empty.
  EXPECT_GT(1.0 - mix.back(), 0.02);
}

TEST(HierGenerator, MakeScaleParamsShapes) {
  const HierGeneratorParams p10k = make_scale_params(10'000, 1);
  EXPECT_GE(p10k.channels, 16);
  EXPECT_EQ(p10k.levels, 3);
  EXPECT_EQ(p10k.name, "hier-10000");
  const HierGeneratorParams p100k = make_scale_params(100'000, 1);
  EXPECT_GE(p100k.channels, p10k.channels);
  EXPECT_GE(p100k.levels, p10k.levels);
  // Leaf blocks stay routable: >= 2 channel rows and >= 8 grids each.
  const std::int32_t split = 1 << (p100k.levels - 1);
  EXPECT_GE((p100k.channels - 1) / split, 2);
  EXPECT_GE(p100k.grids / split, 8);
}

TEST(HierGenerator, ScaleCircuitDeterministicAcrossCalls) {
  const Circuit a = make_scale_circuit(1'000, 77);
  const Circuit b = make_scale_circuit(1'000, 77);
  EXPECT_TRUE(same_netlist(a, b));
}

}  // namespace
}  // namespace locus
