// Tests for the dynamic wire-distribution schemes (paper §4.2): the wire
// queue protocol, iteration-boundary safety, and the polled-vs-interrupt
// latency story.
#include <gtest/gtest.h>

#include "check/consistency.hpp"
#include "circuit/generator.hpp"
#include "msg/driver.hpp"
#include "route/quality.hpp"

namespace locus {
namespace {

MpRunResult run_mode(const Circuit& circuit, WireAssignmentMode mode,
                     std::int32_t procs = 4, std::int32_t iterations = 2,
                     UpdateSchedule schedule = UpdateSchedule::sender(2, 5)) {
  MpConfig config;
  config.schedule = schedule;
  config.iterations = iterations;
  config.assignment_mode = mode;
  return run_message_passing(circuit, procs, config);
}

class DynamicAssignment : public ::testing::Test {
 protected:
  DynamicAssignment() : circuit_(make_tiny_test_circuit()) {}
  Circuit circuit_;
};

TEST_F(DynamicAssignment, PolledRoutesEveryWire) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit_.channels(), circuit_.grids(), r.routes));
}

TEST_F(DynamicAssignment, InterruptRoutesEveryWire) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicInterrupt);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
}

TEST_F(DynamicAssignment, Deterministic) {
  MpRunResult a = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  MpRunResult b = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
}

TEST_F(DynamicAssignment, RequestGrantTrafficPresent) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 4, 2,
                           UpdateSchedule{});  // no updates: queue traffic only
  EXPECT_GT(r.network.bytes_by_type.count(kMsgWireRequest), 0u);
  EXPECT_GT(r.network.bytes_by_type.count(kMsgWireGrant), 0u);
  // Every worker wire costs one request + one grant; the master's own wires
  // cost none. Workers also get a final "no more" grant each.
  EXPECT_GE(r.requests_sent, circuit_.num_wires());
}

TEST_F(DynamicAssignment, InterruptNotSlowerThanPolled) {
  MpRunResult polled = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  MpRunResult interrupt = run_mode(circuit_, WireAssignmentMode::kDynamicInterrupt);
  EXPECT_LE(interrupt.completion_ns, polled.completion_ns);
}

TEST_F(DynamicAssignment, PolledSlowdownVisibleOnRealCircuit) {
  // The paper's §4.2 concern: with polled servicing "a processor may have
  // to wait for an entire wire to be routed" per request. On the bnrE-like
  // circuit that costs a clearly visible fraction of the run.
  Circuit bnre = make_bnre_like();
  MpRunResult statico = run_mode(bnre, WireAssignmentMode::kStatic, 16);
  MpRunResult polled = run_mode(bnre, WireAssignmentMode::kDynamicPolled, 16);
  MpRunResult interrupt =
      run_mode(bnre, WireAssignmentMode::kDynamicInterrupt, 16);
  EXPECT_GT(polled.completion_ns, statico.completion_ns * 5 / 4);
  EXPECT_LT(interrupt.completion_ns, polled.completion_ns * 4 / 5);
}

TEST_F(DynamicAssignment, IterationBoundaryKeepsRoutesConsistent) {
  // Four iterations force three rollovers; the grant protocol must never
  // hand a wire to two processors across a boundary (the run driver's
  // truth == rebuild assertion would abort if it did).
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 4, 4);
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 4);
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit_.channels(), circuit_.grids(), r.routes));
}

TEST_F(DynamicAssignment, WorksWithoutAnyUpdates) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicInterrupt, 4, 2,
                           UpdateSchedule{});
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
}

TEST_F(DynamicAssignment, SingleIterationWorks) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 4, 1);
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires());
}

TEST_F(DynamicAssignment, TwoProcessorsWork) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 2);
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
}

TEST_F(DynamicAssignment, ReceiverScheduleRejected) {
  MpConfig config;
  config.schedule = UpdateSchedule::receiver(1, 5);
  config.assignment_mode = WireAssignmentMode::kDynamicPolled;
  EXPECT_DEATH(run_message_passing(circuit_, 4, config),
               "dynamic assignment cannot use receiver-initiated");
}

// --- Extended dynamic protocol (DESIGN.md §11): locality-scored batched
// grants plus optional neighbor stealing. ---

MpRunResult run_ext(const Circuit& circuit, const DynamicScheduleConfig& dyn,
                    std::int32_t procs = 4, std::int32_t iterations = 2,
                    bool sharded = false,
                    UpdateSchedule schedule = UpdateSchedule::sender(2, 5)) {
  MpConfig config;
  config.schedule = schedule;
  config.iterations = iterations;
  config.assignment_mode = WireAssignmentMode::kDynamicInterrupt;
  config.dynamic = dyn;
  config.shard.enabled = sharded;
  return run_message_passing(circuit, procs, config);
}

TEST_F(DynamicAssignment, DefaultConfigKeepsLegacyProtocol) {
  EXPECT_FALSE(DynamicScheduleConfig{}.extended_protocol());
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  // The legacy path never touches the extended counters.
  EXPECT_EQ(r.grants_issued, 0);
  EXPECT_EQ(r.grant_wires, 0);
  EXPECT_EQ(r.affinity_grants, 0);
  EXPECT_EQ(r.steal_requests, 0);
  EXPECT_EQ(r.steal_wires, 0);
}

TEST_F(DynamicAssignment, LocalityPolicyRoutesEveryWire) {
  DynamicScheduleConfig dyn;
  dyn.policy = GrantPolicy::kLocality;
  MpRunResult r = run_ext(circuit_, dyn);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
  EXPECT_GT(r.grants_issued, 0);
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit_.channels(), circuit_.grids(), r.routes));
}

TEST_F(DynamicAssignment, BatchedGrantsReduceSchedulingRoundTrips) {
  Circuit bnre = make_bnre_like();
  DynamicScheduleConfig single;
  single.policy = GrantPolicy::kLocality;
  DynamicScheduleConfig batched = single;
  batched.grant_batch = 8;
  MpRunResult one = run_ext(bnre, single, 16);
  MpRunResult eight = run_ext(bnre, batched, 16);
  EXPECT_EQ(one.work.wires_routed, eight.work.wires_routed);
  // Multi-wire grants mean far fewer grant packets for the same wire count.
  EXPECT_LT(eight.grants_issued, one.grants_issued);
  EXPECT_LT(eight.requests_sent, one.requests_sent);
  EXPECT_GT(eight.grant_wires, eight.grants_issued);
}

TEST_F(DynamicAssignment, BatchesNeverStraddleIterationBoundaries) {
  DynamicScheduleConfig dyn;
  dyn.policy = GrantPolicy::kLocality;
  dyn.grant_batch = 4;
  MpRunResult r = run_ext(circuit_, dyn, 4, 4);
  // Four iterations force three rollovers; the driver's truth == rebuild
  // assertion aborts if a batch leaks a wire across a boundary.
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 4);
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit_.channels(), circuit_.grids(), r.routes));
}

TEST_F(DynamicAssignment, NeighborStealingRoutesEveryWire) {
  Circuit bnre = make_bnre_like();
  DynamicScheduleConfig dyn;
  dyn.policy = GrantPolicy::kLocality;
  dyn.grant_batch = 8;
  dyn.neighbor_steal = true;
  MpRunResult r = run_ext(bnre, dyn, 16);
  EXPECT_EQ(r.work.wires_routed, bnre.num_wires() * 2);
  // Idle workers probe mesh neighbors before falling back to the master.
  EXPECT_GT(r.steal_requests, 0);
  EXPECT_GT(r.network.bytes_by_type.count(kMsgStealRequest), 0u);
  EXPECT_GT(r.network.bytes_by_type.count(kMsgStealGrant), 0u);
}

TEST_F(DynamicAssignment, ShardedLocalityProducesAffinityGrants) {
  Circuit bnre = make_bnre_like();
  DynamicScheduleConfig dyn;
  dyn.policy = GrantPolicy::kLocality;
  dyn.grant_batch = 4;
  MpRunResult r = run_ext(bnre, dyn, 16, 2, /*sharded=*/true);
  EXPECT_EQ(r.work.wires_routed, bnre.num_wires() * 2);
  // With tiled views the resident summaries are sparse and meaningful, and
  // some grants must come from a requester-resident bucket.
  EXPECT_GT(r.affinity_grants, 0);
}

TEST_F(DynamicAssignment, LocalityRadiusRoutesEveryWire) {
  // A roam radius refuses distant requesters (they park until the iteration
  // rolls over) but must never lose a wire or deadlock: a bucket's home
  // worker is always within radius of it.
  Circuit bnre = make_bnre_like();
  DynamicScheduleConfig dyn;
  dyn.policy = GrantPolicy::kLocality;
  dyn.grant_batch = 4;
  dyn.locality_radius = 1;
  MpRunResult a = run_ext(bnre, dyn, 16, 2, /*sharded=*/true);
  EXPECT_EQ(a.work.wires_routed, bnre.num_wires() * 2);
  EXPECT_EQ(a.circuit_height,
            circuit_height(bnre.channels(), bnre.grids(), a.routes));
  MpRunResult b = run_ext(bnre, dyn, 16, 2, /*sharded=*/true);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(a.routed_per_proc, b.routed_per_proc);
}

TEST_F(DynamicAssignment, ExtendedProtocolDeterministic) {
  Circuit bnre = make_bnre_like();
  DynamicScheduleConfig dyn;
  dyn.policy = GrantPolicy::kLocality;
  dyn.grant_batch = 8;
  dyn.neighbor_steal = true;
  MpRunResult a = run_ext(bnre, dyn, 16, 2, /*sharded=*/true);
  MpRunResult b = run_ext(bnre, dyn, 16, 2, /*sharded=*/true);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.grants_issued, b.grants_issued);
  EXPECT_EQ(a.grant_wires, b.grant_wires);
  EXPECT_EQ(a.affinity_grants, b.affinity_grants);
  EXPECT_EQ(a.steal_requests, b.steal_requests);
  EXPECT_EQ(a.steal_wires, b.steal_wires);
  EXPECT_EQ(a.routed_per_proc, b.routed_per_proc);
}

TEST_F(DynamicAssignment, SchedulingTrafficKeepsViewsConsistent) {
  ViewConsistencyChecker checker;
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 2);
  config.assignment_mode = WireAssignmentMode::kDynamicInterrupt;
  config.dynamic.policy = GrantPolicy::kLocality;
  config.dynamic.grant_batch = 4;
  config.dynamic.neighbor_steal = true;
  config.observer = &checker;
  run_message_passing(make_bnre_like(), 16, config);
  EXPECT_TRUE(checker.report().consistent());
  EXPECT_TRUE(checker.report().converged());
}

TEST_F(DynamicAssignment, ExtendedProtocolUnderReliableTransport) {
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 5);
  config.assignment_mode = WireAssignmentMode::kDynamicInterrupt;
  config.dynamic.policy = GrantPolicy::kLocality;
  config.dynamic.grant_batch = 4;
  config.dynamic.neighbor_steal = true;
  config.transport.enabled = true;  // finalize() asserts the ledger balances
  MpRunResult r = run_message_passing(circuit_, 4, config);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_GT(r.transport.data_packets, 0u);
}

TEST(TimeBreakdownTest, FractionsAddUp) {
  Circuit circuit = make_tiny_test_circuit();
  MpConfig config;
  config.schedule = UpdateSchedule::sender(1, 1);
  MpRunResult r = run_message_passing(circuit, 4, config);
  const TimeBreakdown& tb = r.time_breakdown;
  EXPECT_GT(tb.routing_ns, 0);
  EXPECT_GT(tb.msg_software_ns, 0);
  EXPECT_GT(tb.network_copy_ns, 0);
  EXPECT_EQ(tb.busy_ns(), tb.routing_ns + tb.msg_software_ns + tb.network_copy_ns);
  EXPECT_GT(tb.message_fraction(), 0.0);
  EXPECT_LT(tb.message_fraction(), 1.0);
}

TEST(TimeBreakdownTest, MessageShareGrowsWithUpdateFrequency) {
  // The §5.1.1 claim: assembly/disassembly reaches up to ~25% of processing
  // time at frequent updates and shrinks as updates get rarer.
  Circuit circuit = make_bnre_like();
  MpConfig frequent;
  frequent.schedule = UpdateSchedule::sender(1, 1);
  MpConfig rare;
  rare.schedule = UpdateSchedule::sender(10, 20);
  MpRunResult rf = run_message_passing(circuit, 16, frequent);
  MpRunResult rr = run_message_passing(circuit, 16, rare);
  EXPECT_GT(rf.time_breakdown.message_fraction(),
            rr.time_breakdown.message_fraction());
  EXPECT_GT(rf.time_breakdown.message_fraction(), 0.15);
  EXPECT_LT(rf.time_breakdown.message_fraction(), 0.35);
}

}  // namespace
}  // namespace locus
