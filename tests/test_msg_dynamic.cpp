// Tests for the dynamic wire-distribution schemes (paper §4.2): the wire
// queue protocol, iteration-boundary safety, and the polled-vs-interrupt
// latency story.
#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "msg/driver.hpp"
#include "route/quality.hpp"

namespace locus {
namespace {

MpRunResult run_mode(const Circuit& circuit, WireAssignmentMode mode,
                     std::int32_t procs = 4, std::int32_t iterations = 2,
                     UpdateSchedule schedule = UpdateSchedule::sender(2, 5)) {
  MpConfig config;
  config.schedule = schedule;
  config.iterations = iterations;
  config.assignment_mode = mode;
  return run_message_passing(circuit, procs, config);
}

class DynamicAssignment : public ::testing::Test {
 protected:
  DynamicAssignment() : circuit_(make_tiny_test_circuit()) {}
  Circuit circuit_;
};

TEST_F(DynamicAssignment, PolledRoutesEveryWire) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit_.channels(), circuit_.grids(), r.routes));
}

TEST_F(DynamicAssignment, InterruptRoutesEveryWire) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicInterrupt);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
}

TEST_F(DynamicAssignment, Deterministic) {
  MpRunResult a = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  MpRunResult b = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
}

TEST_F(DynamicAssignment, RequestGrantTrafficPresent) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 4, 2,
                           UpdateSchedule{});  // no updates: queue traffic only
  EXPECT_GT(r.network.bytes_by_type.count(kMsgWireRequest), 0u);
  EXPECT_GT(r.network.bytes_by_type.count(kMsgWireGrant), 0u);
  // Every worker wire costs one request + one grant; the master's own wires
  // cost none. Workers also get a final "no more" grant each.
  EXPECT_GE(r.requests_sent, circuit_.num_wires());
}

TEST_F(DynamicAssignment, InterruptNotSlowerThanPolled) {
  MpRunResult polled = run_mode(circuit_, WireAssignmentMode::kDynamicPolled);
  MpRunResult interrupt = run_mode(circuit_, WireAssignmentMode::kDynamicInterrupt);
  EXPECT_LE(interrupt.completion_ns, polled.completion_ns);
}

TEST_F(DynamicAssignment, PolledSlowdownVisibleOnRealCircuit) {
  // The paper's §4.2 concern: with polled servicing "a processor may have
  // to wait for an entire wire to be routed" per request. On the bnrE-like
  // circuit that costs a clearly visible fraction of the run.
  Circuit bnre = make_bnre_like();
  MpRunResult statico = run_mode(bnre, WireAssignmentMode::kStatic, 16);
  MpRunResult polled = run_mode(bnre, WireAssignmentMode::kDynamicPolled, 16);
  MpRunResult interrupt =
      run_mode(bnre, WireAssignmentMode::kDynamicInterrupt, 16);
  EXPECT_GT(polled.completion_ns, statico.completion_ns * 5 / 4);
  EXPECT_LT(interrupt.completion_ns, polled.completion_ns * 4 / 5);
}

TEST_F(DynamicAssignment, IterationBoundaryKeepsRoutesConsistent) {
  // Four iterations force three rollovers; the grant protocol must never
  // hand a wire to two processors across a boundary (the run driver's
  // truth == rebuild assertion would abort if it did).
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 4, 4);
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 4);
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit_.channels(), circuit_.grids(), r.routes));
}

TEST_F(DynamicAssignment, WorksWithoutAnyUpdates) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicInterrupt, 4, 2,
                           UpdateSchedule{});
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
}

TEST_F(DynamicAssignment, SingleIterationWorks) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 4, 1);
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires());
}

TEST_F(DynamicAssignment, TwoProcessorsWork) {
  MpRunResult r = run_mode(circuit_, WireAssignmentMode::kDynamicPolled, 2);
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
}

TEST_F(DynamicAssignment, ReceiverScheduleRejected) {
  MpConfig config;
  config.schedule = UpdateSchedule::receiver(1, 5);
  config.assignment_mode = WireAssignmentMode::kDynamicPolled;
  EXPECT_DEATH(run_message_passing(circuit_, 4, config),
               "dynamic assignment cannot use receiver-initiated");
}

TEST(TimeBreakdownTest, FractionsAddUp) {
  Circuit circuit = make_tiny_test_circuit();
  MpConfig config;
  config.schedule = UpdateSchedule::sender(1, 1);
  MpRunResult r = run_message_passing(circuit, 4, config);
  const TimeBreakdown& tb = r.time_breakdown;
  EXPECT_GT(tb.routing_ns, 0);
  EXPECT_GT(tb.msg_software_ns, 0);
  EXPECT_GT(tb.network_copy_ns, 0);
  EXPECT_EQ(tb.busy_ns(), tb.routing_ns + tb.msg_software_ns + tb.network_copy_ns);
  EXPECT_GT(tb.message_fraction(), 0.0);
  EXPECT_LT(tb.message_fraction(), 1.0);
}

TEST(TimeBreakdownTest, MessageShareGrowsWithUpdateFrequency) {
  // The §5.1.1 claim: assembly/disassembly reaches up to ~25% of processing
  // time at frequent updates and shrinks as updates get rarer.
  Circuit circuit = make_bnre_like();
  MpConfig frequent;
  frequent.schedule = UpdateSchedule::sender(1, 1);
  MpConfig rare;
  rare.schedule = UpdateSchedule::sender(10, 20);
  MpRunResult rf = run_message_passing(circuit, 16, frequent);
  MpRunResult rr = run_message_passing(circuit, 16, rare);
  EXPECT_GT(rf.time_breakdown.message_fraction(),
            rr.time_breakdown.message_fraction());
  EXPECT_GT(rf.time_breakdown.message_fraction(), 0.15);
  EXPECT_LT(rf.time_breakdown.message_fraction(), 0.35);
}

}  // namespace
}  // namespace locus
