// Property/fuzz tests for the byte-level wire codec (msg/packets.hpp):
// seeded random packets round-trip exactly, and truncated or corrupted
// buffers are rejected cleanly (nullopt) rather than invoking UB. Run under
// the sanitizer preset (-DLOCUS_SANITIZE=address,undefined) these double as
// a memory-safety harness for the decoder.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/sim_pool.hpp"
#include "msg/packets.hpp"
#include "support/rng.hpp"

namespace locus {
namespace {

/// Draws a random packet that encode_packet() must accept.
WirePacket random_valid_packet(Rng& rng) {
  WirePacket p;
  bool extended_request = false;
  bool batched_grant = false;
  switch (rng.bounded(12)) {
    case 0: p.type = kMsgSendLocData; break;
    case 1: p.type = kMsgSendRmtData; break;
    case 2: p.type = kMsgRspRmtData; break;
    case 3: p.type = kMsgReqLocData; break;
    case 4: p.type = kMsgReqRmtData; break;
    case 5: p.type = kMsgWireRequest; break;
    case 6: p.type = kMsgWireGrant; break;
    case 7: p.type = kMsgWireRequest; extended_request = true; break;
    case 8: p.type = kMsgWireGrant; batched_grant = true; break;
    case 9: p.type = kMsgStealRequest; break;
    case 10: p.type = kMsgStealGrant; break;
    default: p.type = kMsgAck; break;
  }
  p.region = static_cast<ProcId>(rng.bounded(64));
  const bool update = p.type == kMsgSendLocData || p.type == kMsgSendRmtData ||
                      p.type == kMsgRspRmtData;
  if (update) {
    p.absolute = p.type != kMsgSendRmtData;
    const auto channel_lo = static_cast<std::int32_t>(rng.bounded(8));
    const auto x_lo = static_cast<std::int32_t>(rng.bounded(300));
    p.bbox = Rect::of(channel_lo,
                      channel_lo + static_cast<std::int32_t>(rng.bounded(4)),
                      x_lo, x_lo + static_cast<std::int32_t>(rng.bounded(40)));
    // i16 range for absolute data, i8 for deltas.
    const std::int64_t span = p.absolute ? 32767 : 127;
    auto draw_cell = [&] {
      return static_cast<std::int32_t>(
          static_cast<std::int64_t>(
              rng.bounded(static_cast<std::uint64_t>(2 * span + 1))) -
          span);
    };
    if (rng.chance(0.3)) {
      // Region-batched form (flag bit 2): tight disjoint blocks inside the
      // header bbox. Split the bbox into per-channel-row strips.
      for (std::int32_t c = p.bbox.channel_lo; c <= p.bbox.channel_hi; ++c) {
        if (rng.chance(0.25)) continue;  // blocks need not tile the bbox
        UpdateBlock block;
        const auto width = p.bbox.x_hi - p.bbox.x_lo;
        const auto lo = p.bbox.x_lo +
                        static_cast<std::int32_t>(rng.bounded(
                            static_cast<std::uint64_t>(width) + 1));
        block.bbox = Rect::of(c, c, lo,
                              lo + static_cast<std::int32_t>(rng.bounded(
                                       static_cast<std::uint64_t>(
                                           p.bbox.x_hi - lo) + 1)));
        for (std::int64_t i = 0; i < block.bbox.area(); ++i) {
          block.values.push_back(draw_cell());
        }
        p.blocks.push_back(std::move(block));
      }
      if (p.blocks.empty()) {
        UpdateBlock block;
        block.bbox = Rect::of(p.bbox.channel_lo, p.bbox.channel_lo,
                              p.bbox.x_lo, p.bbox.x_lo);
        block.values.push_back(draw_cell());
        p.blocks.push_back(std::move(block));
      }
    } else {
      const std::int64_t area =
          std::int64_t{p.bbox.channel_hi - p.bbox.channel_lo + 1} *
          (p.bbox.x_hi - p.bbox.x_lo + 1);
      p.values.reserve(static_cast<std::size_t>(area));
      for (std::int64_t i = 0; i < area; ++i) p.values.push_back(draw_cell());
    }
  } else if (p.type == kMsgWireGrant && batched_grant) {
    // Batched grants carry >= 2 non-negative wire ids.
    const std::size_t n = 2 + rng.bounded(14);
    for (std::size_t i = 0; i < n; ++i) {
      p.wires.push_back(static_cast<WireId>(rng.bounded(100'000)));
    }
    p.iteration = static_cast<std::int32_t>(rng.bounded(8));
  } else if (p.type == kMsgWireGrant) {
    p.wire = static_cast<WireId>(rng.bounded(10'000)) - 1;  // includes -1
    p.iteration = static_cast<std::int32_t>(rng.bounded(8));
  } else if (p.type == kMsgWireRequest && extended_request) {
    p.extended = true;
    p.completed = static_cast<std::int32_t>(rng.bounded(1000));
    const std::size_t n = rng.bounded(9);  // 0 resident regions is valid
    for (std::size_t i = 0; i < n; ++i) {
      p.regions.push_back(static_cast<ProcId>(rng.bounded(256)));
    }
  } else if (p.type == kMsgStealGrant) {
    // 0 wires = steal declined; entries are non-negative.
    const std::size_t n = rng.bounded(9);
    for (std::size_t i = 0; i < n; ++i) {
      p.wires.push_back(static_cast<WireId>(rng.bounded(100'000)));
    }
    p.iteration = static_cast<std::int32_t>(rng.bounded(8));
  } else if (p.type != kMsgAck && p.type != kMsgStealRequest &&
             rng.chance(0.5)) {
    // Requests may scope a sub-box of interest.
    p.bbox = Rect::of(0, 1, 2, 3);
  }
  // Any kind may carry the reliable-transport frame; kMsgAck must (the
  // frame is the ack). Seq/ack exercise the full u32 range.
  if (p.type == kMsgAck || rng.chance(0.5)) {
    p.has_transport = true;
    p.seq = static_cast<std::uint32_t>(rng.bounded(std::uint64_t{1} << 32));
    p.ack = static_cast<std::uint32_t>(rng.bounded(std::uint64_t{1} << 32));
  }
  return p;
}

/// 1000 seeded cases: encode -> decode reproduces the packet exactly. The
/// seeds are independent, so they fan out on the SimPool (--threads /
/// LOCUS_THREADS; serial by default); verdicts are collected in seed order
/// and asserted on the main thread, so failure output is deterministic.
TEST(PacketCodecFuzz, RoundTrip1000Seeds) {
  constexpr std::size_t kSeeds = 1000;
  std::vector<std::string> failures(kSeeds);
  SimPool().run_indexed(kSeeds, [&](std::size_t i) {
    Rng rng(static_cast<std::uint64_t>(i));
    const WirePacket packet = random_valid_packet(rng);
    const auto bytes = encode_packet(packet);
    if (!bytes.has_value()) {
      failures[i] = "encode rejected a valid packet";
      return;
    }
    const auto back = decode_packet(*bytes);
    if (!back.has_value()) {
      failures[i] = "decode rejected its own encoding";
      return;
    }
    if (!(packet == *back)) failures[i] = "round-trip mismatch";
  });
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    EXPECT_EQ(failures[seed], "") << "seed " << seed;
  }
}

/// Every strict prefix of a valid encoding is rejected, as is any buffer
/// with trailing garbage appended.
TEST(PacketCodecFuzz, TruncatedAndPaddedBuffersRejected) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const WirePacket packet = random_valid_packet(rng);
    const auto bytes = encode_packet(packet);
    ASSERT_TRUE(bytes.has_value());
    for (std::size_t len = 0; len < bytes->size(); ++len) {
      const std::vector<std::uint8_t> prefix(bytes->begin(),
                                             bytes->begin() +
                                                 static_cast<std::ptrdiff_t>(len));
      EXPECT_FALSE(decode_packet(prefix).has_value())
          << "trial " << trial << " len " << len;
    }
    std::vector<std::uint8_t> padded = *bytes;
    padded.push_back(0xAB);
    EXPECT_FALSE(decode_packet(padded).has_value());
  }
}

/// Single-byte corruption at every offset: the decoder must either reject
/// the buffer or produce a packet it is itself willing to re-encode. No
/// crash, no out-of-bounds read (the sanitizer preset enforces the latter).
TEST(PacketCodecFuzz, CorruptedBytesFailCleanly) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const WirePacket packet = random_valid_packet(rng);
    const auto bytes = encode_packet(packet);
    ASSERT_TRUE(bytes.has_value());
    for (std::size_t off = 0; off < bytes->size(); ++off) {
      std::vector<std::uint8_t> corrupt = *bytes;
      corrupt[off] ^= static_cast<std::uint8_t>(1 + rng.bounded(255));
      const auto decoded = decode_packet(corrupt);
      if (decoded.has_value()) {
        EXPECT_TRUE(encode_packet(*decoded).has_value())
            << "trial " << trial << " offset " << off;
      }
    }
  }
}

/// Random garbage buffers (including pathological payload-length fields)
/// never crash the decoder.
TEST(PacketCodecFuzz, RandomGarbageRejectedOrSane) {
  Rng rng(1989);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> junk(rng.bounded(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.bounded(256));
    const auto decoded = decode_packet(junk);
    if (decoded.has_value()) {
      EXPECT_TRUE(encode_packet(*decoded).has_value()) << "trial " << trial;
    }
  }
}

/// Oversized declared payloads are rejected without allocating them.
TEST(PacketCodecFuzz, HugeDeclaredPayloadRejected) {
  WirePacket p;
  p.type = kMsgSendLocData;
  p.region = 0;
  p.absolute = true;
  p.bbox = Rect::of(0, 0, 0, 0);
  p.values = {1};
  auto bytes = encode_packet(p);
  ASSERT_TRUE(bytes.has_value());
  // Claim a 4 GiB payload in the header; buffer stays tiny.
  (*bytes)[12] = 0xFF;
  (*bytes)[13] = 0xFF;
  (*bytes)[14] = 0xFF;
  (*bytes)[15] = 0xFF;
  EXPECT_FALSE(decode_packet(*bytes).has_value());
}

/// A canonical batched update used by the malformed-input cases below.
WirePacket valid_batched_packet() {
  WirePacket p;
  p.type = kMsgSendRmtData;
  p.region = 3;
  p.absolute = false;
  p.bbox = Rect::of(0, 3, 10, 40);
  UpdateBlock a;
  a.bbox = Rect::of(0, 1, 10, 13);
  a.values.assign(static_cast<std::size_t>(a.bbox.area()), -2);
  UpdateBlock b;
  b.bbox = Rect::of(3, 3, 30, 40);
  b.values.assign(static_cast<std::size_t>(b.bbox.area()), 5);
  p.blocks = {std::move(a), std::move(b)};
  return p;
}

/// Batched round-trip: flag bit 2 set on the wire, size matches the byte
/// model the time accounting charges, and decode reproduces every block.
TEST(BatchedPacketCodec, RoundTripMatchesByteModel) {
  const WirePacket p = valid_batched_packet();
  const auto bytes = encode_packet(p);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ((*bytes)[1] & 4u, 4u);
  EXPECT_EQ(static_cast<std::int32_t>(bytes->size()),
            batched_update_packet_bytes(p.blocks, p.absolute));
  const auto back = decode_packet(*bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, p);
}

TEST(BatchedPacketCodec, EncodeRejectsMalformedBlocks) {
  {
    WirePacket p = valid_batched_packet();
    p.blocks[1].bbox = Rect::of(3, 3, 30, 50);  // escapes the header bbox
    p.blocks[1].values.assign(static_cast<std::size_t>(21), 5);
    EXPECT_FALSE(encode_packet(p).has_value());
  }
  {
    WirePacket p = valid_batched_packet();
    p.blocks[0].values.pop_back();  // value count != block area
    EXPECT_FALSE(encode_packet(p).has_value());
  }
  {
    WirePacket p = valid_batched_packet();
    p.blocks[0].values[0] = 1000;  // delta cells are i8 on the wire
    EXPECT_FALSE(encode_packet(p).has_value());
  }
  {
    WirePacket p = valid_batched_packet();
    p.values = {1};  // batched and flat payloads are mutually exclusive
    EXPECT_FALSE(encode_packet(p).has_value());
  }
  {
    WirePacket p = valid_batched_packet();
    p.type = kMsgReqRmtData;  // only update types carry blocks
    p.absolute = false;
    EXPECT_FALSE(encode_packet(p).has_value());
  }
}

TEST(BatchedPacketCodec, DecodeRejectsCorruptBlockStructure) {
  const WirePacket p = valid_batched_packet();
  const auto bytes = encode_packet(p);
  ASSERT_TRUE(bytes.has_value());
  {
    // Inflate the u16 block count past the payload.
    std::vector<std::uint8_t> corrupt = *bytes;
    corrupt[16] = 0xFF;
    corrupt[17] = 0x7F;
    EXPECT_FALSE(decode_packet(corrupt).has_value());
  }
  {
    // Batched flag on a non-update type.
    std::vector<std::uint8_t> corrupt = *bytes;
    corrupt[0] = static_cast<std::uint8_t>(kMsgReqRmtData);
    EXPECT_FALSE(decode_packet(corrupt).has_value());
  }
  {
    // Reserved flag bits must stay rejected (mask is ~0x07).
    std::vector<std::uint8_t> corrupt = *bytes;
    corrupt[1] |= 0x08;
    EXPECT_FALSE(decode_packet(corrupt).has_value());
  }
  // Every strict prefix dies cleanly, exercising the per-block bounds
  // checks (not just the header ones).
  for (std::size_t len = 0; len < bytes->size(); ++len) {
    const std::vector<std::uint8_t> prefix(
        bytes->begin(), bytes->begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode_packet(prefix).has_value()) << "len " << len;
  }
}

/// kNoMoreWires is the floor of the grant wire-id range: the codec rejects
/// anything below it in both directions, and batch/steal entries must not
/// even carry the sentinel.
TEST(DynamicPacketCodec, WireIdsBelowSentinelRejected) {
  {
    WirePacket p;
    p.type = kMsgWireGrant;
    p.region = 0;
    p.wire = kNoMoreWires;  // the sentinel itself is valid on single grants
    p.iteration = 1;
    const auto bytes = encode_packet(p);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_TRUE(decode_packet(*bytes).has_value());
    p.wire = kNoMoreWires - 1;
    EXPECT_FALSE(encode_packet(p).has_value());
    // Patch the encoded wire id (payload bytes [16..19]) to -2.
    std::vector<std::uint8_t> corrupt = *bytes;
    corrupt[16] = 0xFE;
    corrupt[17] = 0xFF;
    corrupt[18] = 0xFF;
    corrupt[19] = 0xFF;
    EXPECT_FALSE(decode_packet(corrupt).has_value());
  }
  {
    // Batched grant entries must be actual wires (>= 0).
    WirePacket p;
    p.type = kMsgWireGrant;
    p.region = 0;
    p.wires = {5, kNoMoreWires};
    p.iteration = 0;
    EXPECT_FALSE(encode_packet(p).has_value());
    p.wires = {5, 9};
    const auto bytes = encode_packet(p);
    ASSERT_TRUE(bytes.has_value());
    // Payload: u16 count [16..17], i32 iteration [18..21], wires from [22].
    std::vector<std::uint8_t> corrupt = *bytes;
    corrupt[26] = 0xFF;  // second wire id -> negative
    corrupt[27] = 0xFF;
    corrupt[28] = 0xFF;
    corrupt[29] = 0xFF;
    EXPECT_FALSE(decode_packet(corrupt).has_value());
  }
  {
    WirePacket p;
    p.type = kMsgStealGrant;
    p.region = 2;
    p.wires = {kNoMoreWires};
    EXPECT_FALSE(encode_packet(p).has_value());
  }
}

TEST(DynamicPacketCodec, ExtendedFormsRoundTrip) {
  {
    WirePacket p;
    p.type = kMsgWireRequest;
    p.region = 7;
    p.extended = true;
    p.completed = 3;
    p.regions = {7, 6, 11};
    const auto bytes = encode_packet(p);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(static_cast<std::int32_t>(bytes->size()),
              wire_request_packet_bytes(3));
    const auto back = decode_packet(*bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  {
    WirePacket p;
    p.type = kMsgWireGrant;
    p.region = 1;
    p.wires = {10, 20, 30};
    p.iteration = 1;
    const auto bytes = encode_packet(p);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(static_cast<std::int32_t>(bytes->size()),
              batch_grant_packet_bytes(3));
    const auto back = decode_packet(*bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  {
    WirePacket p;
    p.type = kMsgStealRequest;
    p.region = 4;
    const auto bytes = encode_packet(p);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(static_cast<std::int32_t>(bytes->size()),
              steal_request_packet_bytes());
    EXPECT_EQ(decode_packet(*bytes), p);
  }
  {
    WirePacket p;  // declined steal: zero wires
    p.type = kMsgStealGrant;
    p.region = 4;
    p.iteration = 1;
    const auto bytes = encode_packet(p);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(decode_packet(*bytes), p);
  }
}

}  // namespace
}  // namespace locus
