// Network test battery (ISSUE 10): topology route/index properties across
// mesh, torus, and fat tree; the M/D/1 waiting-time closed form and its
// saturation clamp; the per-link byte conservation law under every cost
// model x topology; transport recovery bit-identity with the VC model on;
// and the full differential-oracle matrix (four MP schedules x three
// topologies x three cost models) with the consistency checker and
// transport ledger asserted everywhere.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "check/oracle.hpp"
#include "harness/experiments.hpp"
#include "msg/driver.hpp"
#include "sim/link_cost.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace locus {
namespace {

// --- Topology properties (500-seed sweep over dims/shapes) ---

constexpr int kSeeds = 500;

/// Draws a random mesh/torus shape: 1-3 dimensions of extent 1-6 with at
/// least two nodes total.
std::vector<std::int32_t> random_dims(Rng& rng) {
  for (;;) {
    const auto ndims = static_cast<std::size_t>(1 + rng.bounded(3));
    std::vector<std::int32_t> dims(ndims);
    std::int32_t nodes = 1;
    for (std::size_t d = 0; d < ndims; ++d) {
      dims[d] = static_cast<std::int32_t>(1 + rng.bounded(6));
      nodes *= dims[d];
    }
    if (nodes >= 2) return dims;
  }
}

TEST(TopologyProperties, DistanceEqualsRouteLengthEverywhere) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 1000003 + 17);
    const std::vector<std::int32_t> dims = random_dims(rng);
    const Topology::Edges edges =
        rng.bounded(2) == 0 ? Topology::Edges::kMesh : Topology::Edges::kTorus;
    const Topology topo(dims, edges);
    const auto n = static_cast<std::uint64_t>(topo.num_nodes());
    const auto src = static_cast<std::int32_t>(rng.bounded(n));
    const auto dst = static_cast<std::int32_t>(rng.bounded(n));
    ASSERT_EQ(static_cast<std::size_t>(topo.distance(src, dst)),
              topo.route(src, dst).size())
        << "seed " << seed;
  }
}

TEST(TopologyProperties, FatTreeDistanceEqualsRouteLength) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 999983 + 5);
    const auto leaves = static_cast<std::int32_t>(2 + rng.bounded(30));
    const auto arity = static_cast<std::int32_t>(2 + rng.bounded(3));
    const Topology topo = Topology::fat_tree(leaves, arity);
    const auto n = static_cast<std::uint64_t>(topo.num_nodes());
    const auto src = static_cast<std::int32_t>(rng.bounded(n));
    const auto dst = static_cast<std::int32_t>(rng.bounded(n));
    ASSERT_EQ(static_cast<std::size_t>(topo.distance(src, dst)),
              topo.route(src, dst).size())
        << "seed " << seed;
  }
}

TEST(TopologyProperties, TorusRoutesTakeTheShorterWayWithPositiveTieBreak) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 3);
    const std::vector<std::int32_t> dims = random_dims(rng);
    const Topology torus(dims, Topology::Edges::kTorus);
    const auto n = static_cast<std::uint64_t>(torus.num_nodes());
    const auto src = static_cast<std::int32_t>(rng.bounded(n));
    const auto dst = static_cast<std::int32_t>(rng.bounded(n));
    const std::vector<std::int32_t> a = torus.coords(src);
    const std::vector<std::int32_t> b = torus.coords(dst);
    const std::vector<LinkId> path = torus.route(src, dst);
    std::size_t hop = 0;
    for (std::size_t d = 0; d < dims.size(); ++d) {
      const std::int32_t k = dims[d];
      const std::int32_t fwd = (b[d] - a[d] + k) % k;
      const std::int32_t steps = std::min(fwd, k - fwd);
      // Every step this dimension takes goes the shorter way; exact ties
      // (fwd == k - fwd) break positive.
      const bool expect_positive = fwd <= k - fwd;
      for (std::int32_t s = 0; s < steps; ++s, ++hop) {
        ASSERT_LT(hop, path.size());
        ASSERT_EQ(path[hop].dim, static_cast<std::int32_t>(d)) << "seed " << seed;
        ASSERT_EQ(path[hop].positive, expect_positive) << "seed " << seed;
      }
    }
    ASSERT_EQ(hop, path.size()) << "seed " << seed;
  }
}

TEST(TopologyProperties, LinkIndexInjectiveOverRouteEmittedLinks) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 104729 + 11);
    Topology topo = [&] {
      switch (rng.bounded(3)) {
        case 0: return Topology(random_dims(rng), Topology::Edges::kMesh);
        case 1: return Topology(random_dims(rng), Topology::Edges::kTorus);
        default:
          return Topology::fat_tree(
              static_cast<std::int32_t>(2 + rng.bounded(30)),
              static_cast<std::int32_t>(2 + rng.bounded(3)));
      }
    }();
    // index -> the (from, dim, positive) triple that claimed it; a second
    // distinct triple on the same index is an injectivity violation.
    std::map<std::int32_t, std::tuple<std::int32_t, std::int32_t, bool>> seen;
    const std::int32_t nodes = topo.num_nodes();
    for (std::int32_t src = 0; src < nodes; ++src) {
      for (std::int32_t dst = 0; dst < nodes; ++dst) {
        for (const LinkId& link : topo.route(src, dst)) {
          const std::int32_t index = topo.link_index(link);
          ASSERT_GE(index, 0);
          ASSERT_LT(index, topo.num_links());
          const auto key = std::make_tuple(link.from, link.dim, link.positive);
          const auto [it, inserted] = seen.emplace(index, key);
          ASSERT_TRUE(inserted || it->second == key)
              << "seed " << seed << ": two links share index " << index;
        }
      }
    }
  }
}

TEST(TopologyProperties, FatTreeUpDownRoutesNeverRevisitASwitch) {
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 15485863 + 7);
    const auto leaves = static_cast<std::int32_t>(2 + rng.bounded(30));
    const auto arity = static_cast<std::int32_t>(2 + rng.bounded(3));
    const Topology topo = Topology::fat_tree(leaves, arity);
    const auto n = static_cast<std::uint64_t>(topo.num_nodes());
    const auto src = static_cast<std::int32_t>(rng.bounded(n));
    const auto dst = static_cast<std::int32_t>(rng.bounded(n));
    const std::vector<LinkId> path = topo.route(src, dst);
    if (src == dst) {
      ASSERT_TRUE(path.empty());
      continue;
    }
    // Walk the route, tracking every tree node (level, position) touched:
    // the climb visits strictly increasing levels, the descent strictly
    // decreasing ones, and no node repeats.
    std::set<std::pair<std::int32_t, std::int32_t>> visited;
    ASSERT_TRUE(visited.insert({0, src}).second);
    std::int32_t at_level = 0;
    std::int32_t at_pos = src;
    bool descending = false;
    for (const LinkId& link : path) {
      if (link.positive) {
        ASSERT_FALSE(descending) << "seed " << seed << ": up after down";
        ASSERT_EQ(link.dim, at_level);
        ASSERT_EQ(link.from, at_pos);
        at_level = link.dim + 1;
        at_pos = link.from / arity;
      } else {
        descending = true;
        ASSERT_EQ(link.dim + 1, at_level);
        ASSERT_EQ(link.from / arity, at_pos);
        at_level = link.dim;
        at_pos = link.from;
      }
      ASSERT_TRUE(visited.insert({at_level, at_pos}).second)
          << "seed " << seed << ": revisited a switch at level " << at_level;
    }
    ASSERT_EQ(at_level, 0);
    ASSERT_EQ(at_pos, dst);
  }
}

TEST(TopologyFatTree, ShapeAndCapacityScale) {
  const Topology topo = Topology::fat_tree(16, 2);
  EXPECT_EQ(topo.num_nodes(), 16);
  EXPECT_EQ(topo.tree_levels(), 4);
  // One up + one down link per non-root tree node: 2 * (16 + 8 + 4 + 2).
  EXPECT_EQ(topo.num_links(), 60);
  EXPECT_EQ(topo.distance(0, 1), 2);   // siblings meet at their parent
  EXPECT_EQ(topo.distance(0, 15), 8);  // opposite halves climb to the root
  // Leaf links drain at the base rate; a level-l link aggregates 2^l leaves.
  EXPECT_EQ(topo.link_capacity_scale(topo.link_index({0, 0, true})), 1);
  EXPECT_EQ(topo.link_capacity_scale(topo.link_index({0, 3, true})), 8);
  // Padded leaves: 5 processors embed in an 8-leaf tree, ids unchanged.
  const Topology padded = Topology::fat_tree(5, 2);
  EXPECT_EQ(padded.num_nodes(), 5);
  EXPECT_EQ(padded.tree_levels(), 3);
  EXPECT_EQ(padded.distance(0, 4), 6);
}

// --- M/D/1 closed form and saturation (golden) ---

TEST(Md1Golden, ClosedFormAtPinnedUtilizations) {
  // Wq = S * rho / (2 * (1 - rho)), deterministic service S = 1000 ns:
  //   rho 0.1: 1000 * 0.1 / 1.8 = 55.55.. -> 55
  //   rho 0.5: 1000 * 0.5 / 1.0 = 500
  //   rho 0.9: 1000 * 0.9 / 0.2 = 4500
  EXPECT_EQ(md1_wait_ns(1000, 0.1), 55);
  EXPECT_EQ(md1_wait_ns(1000, 0.5), 500);
  EXPECT_EQ(md1_wait_ns(1000, 0.9), 4500);
  // Scales linearly in the service time.
  EXPECT_EQ(md1_wait_ns(6400, 0.5), 3200);
  // Degenerate inputs cost nothing.
  EXPECT_EQ(md1_wait_ns(1000, 0.0), 0);
  EXPECT_EQ(md1_wait_ns(1000, -1.0), 0);
  EXPECT_EQ(md1_wait_ns(0, 0.9), 0);
}

TEST(Md1Golden, SaturationIsClampedFiniteAndMonotone) {
  // Past rho_max the delay pins at the clamp value instead of diverging:
  // S * 0.95 / (2 * 0.05) = 9.5 * S, which lands at 9499 after the binary
  // representation of (1 - 0.95) and the truncating ns cast.
  const SimTime clamp = md1_wait_ns(1000, 0.95);
  EXPECT_GE(clamp, 9499);
  EXPECT_LE(clamp, 9500);
  EXPECT_EQ(md1_wait_ns(1000, 0.999), clamp);
  EXPECT_EQ(md1_wait_ns(1000, 1.0), clamp);
  EXPECT_EQ(md1_wait_ns(1000, 100.0), clamp);
  // Monotone non-decreasing in rho all the way into saturation, and finite
  // (no overflow) even for large service times.
  SimTime prev = 0;
  for (double rho = 0.0; rho <= 2.0; rho += 0.01) {
    const SimTime w = md1_wait_ns(1'000'000'000, rho);
    EXPECT_GE(w, prev) << "rho " << rho;
    EXPECT_LE(w, static_cast<SimTime>(9.5 * 1e9) + 1);
    prev = w;
  }
  // A tighter clamp saturates earlier.
  EXPECT_EQ(md1_wait_ns(1000, 0.9, 0.5), 500);
}

// --- Conservation: per-link bytes sum exactly to byte_hops ---

struct MatrixCase {
  Topology::Edges edges;
  LinkCostModelKind kind;
};

std::vector<MatrixCase> full_matrix() {
  std::vector<MatrixCase> cases;
  for (Topology::Edges edges : {Topology::Edges::kMesh, Topology::Edges::kTorus,
                                Topology::Edges::kFatTree}) {
    for (LinkCostModelKind kind :
         {LinkCostModelKind::kFixed, LinkCostModelKind::kMd1,
          LinkCostModelKind::kVc}) {
      cases.push_back({edges, kind});
    }
  }
  return cases;
}

const char* edges_name(Topology::Edges edges) {
  switch (edges) {
    case Topology::Edges::kMesh: return "mesh";
    case Topology::Edges::kTorus: return "torus";
    case Topology::Edges::kFatTree: return "fat-tree";
  }
  return "?";
}

TEST(LinkConservation, LinkBytesSumToByteHopsUnderEveryModelAndTopology) {
  const Circuit circuit = test::make_seeded_circuit(7);
  for (const MatrixCase& c : full_matrix()) {
    SCOPED_TRACE(std::string(edges_name(c.edges)) + " x " +
                 link_cost_model_name(c.kind));
    MpConfig mp;
    mp.schedule = UpdateSchedule::receiver(5, 2);
    mp.iterations = 2;
    mp.edges = c.edges;
    mp.link_cost.kind = c.kind;
    // Transport on: the control plane (acks, retransmit charges) books its
    // bytes through charge_control, which must stay inside the law.
    mp.transport.enabled = true;
    const MpRunResult run = run_message_passing(circuit, 4, mp);
    ASSERT_GT(run.network.byte_hops, 0u);
    std::uint64_t link_total = 0;
    for (std::uint64_t b : run.link_bytes) link_total += b;
    EXPECT_EQ(link_total, run.network.byte_hops);
    EXPECT_GT(run.link_usage.links_used, 0);
    EXPECT_TRUE(run.transport.books_balance());
  }
}

TEST(LinkConservation, FixedModelIsByteIdenticalToDefaultRun) {
  // The seam's kFixed must reproduce the pre-seam network exactly: a config
  // that never mentions link_cost and one that sets kFixed explicitly are
  // the same simulation.
  const Circuit circuit = test::make_seeded_circuit(11);
  MpConfig base;
  base.schedule = UpdateSchedule::sender(2, 5);
  base.iterations = 2;
  MpConfig fixed = base;
  fixed.link_cost.kind = LinkCostModelKind::kFixed;
  const MpRunResult a = run_message_passing(circuit, 4, base);
  const MpRunResult b = run_message_passing(circuit, 4, fixed);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(a.network.byte_hops, b.network.byte_hops);
  EXPECT_EQ(a.network.total_link_wait_ns, b.network.total_link_wait_ns);
  EXPECT_TRUE(routes_identical(a.routes, b.routes));
}

// --- Transport recovery bit-identity with the VC model on ---

TEST(VcTransportRecovery, FaultedRunIsBitIdenticalToFaultFree) {
  const Circuit circuit = test::make_seeded_circuit(7);
  FaultPlan plan;
  plan.drop_rate = 0.02;
  plan.seed = 99;
  for (Topology::Edges edges :
       {Topology::Edges::kMesh, Topology::Edges::kFatTree}) {
    SCOPED_TRACE(edges_name(edges));
    MpConfig clean;
    clean.schedule = UpdateSchedule::sender(2, 5);
    clean.iterations = 2;
    clean.edges = edges;
    clean.link_cost.kind = LinkCostModelKind::kVc;
    clean.transport.enabled = true;
    MpConfig faulted = clean;
    faulted.faults = &plan;
    const MpRunResult base = run_message_passing(circuit, 4, clean);
    const MpRunResult run = run_message_passing(circuit, 4, faulted);
    ASSERT_GT(run.faults.dropped, 0u);  // the plan actually fired
    // Recovery happens below the application: routes, completion time, and
    // view staleness are bit-identical to the fault-free run, and the
    // transport ledger balances.
    EXPECT_TRUE(routes_identical(base.routes, run.routes));
    EXPECT_EQ(base.completion_ns, run.completion_ns);
    EXPECT_EQ(base.view_staleness, run.view_staleness);
    EXPECT_EQ(base.circuit_height, run.circuit_height);
    EXPECT_TRUE(run.transport.books_balance());
    // The faulted wire attempts inflate traffic, never shrink it.
    EXPECT_GE(run.network.bytes, base.network.bytes);
  }
}

// --- The full oracle matrix: 4 schedules x 3 topologies x 3 models ---

TEST(NetworkOracleMatrix, AllSchedulesPassUnderEveryModelAndTopology) {
  const Circuit circuit = test::make_seeded_circuit(7);
  for (const MatrixCase& c : full_matrix()) {
    SCOPED_TRACE(std::string(edges_name(c.edges)) + " x " +
                 link_cost_model_name(c.kind));
    OracleConfig config;
    config.procs = 4;
    config.edges = c.edges;
    config.link_cost.kind = c.kind;
    config.transport.enabled = true;
    const OracleResult result = run_differential_oracle(circuit, config);
    EXPECT_TRUE(result.all_ok()) << result.describe();
  }
}

// --- run_topology_sweep: the experiment the bench lane records ---

TEST(TopologySweep, EmitsFullMatrixAndPassesChecks) {
  const Circuit circuit = test::make_seeded_circuit(7);
  TopologySweepOptions options;
  options.proc_counts = {4};
  const TopologySweepResult result = run_topology_sweep(circuit, options);
  // 4 schedules x 3 topologies x 3 cost models.
  EXPECT_EQ(result.runs, 36);
  EXPECT_TRUE(result.all_ok);
  const std::string rendered = result.table.render();
  for (const char* needle : {"fat-tree", "torus", "mesh", "fixed", "md1", "vc",
                             "max util", "stalls"}) {
    EXPECT_NE(rendered.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace locus
