// Tests for the shared memory implementations: the Tango-like deterministic
// executor (trace capture, deferred commits, barriers) and the real-threads
// router.
#include <gtest/gtest.h>

#include "assign/assignment.hpp"
#include "circuit/generator.hpp"
#include "route/quality.hpp"
#include "route/sequential.hpp"
#include "shm/shm_router.hpp"
#include "shm/threads_router.hpp"

namespace locus {
namespace {

class ShmRunTest : public ::testing::Test {
 protected:
  ShmRunTest() : circuit_(make_tiny_test_circuit()) {}

  ShmRunResult run(std::int32_t procs, bool dynamic = true) {
    ShmConfig config;
    config.procs = procs;
    if (!dynamic) {
      config.assignment = assign_round_robin(circuit_, procs);
    }
    return run_shared_memory(circuit_, config);
  }

  Circuit circuit_;
};

TEST_F(ShmRunTest, RoutesEveryWire) {
  ShmRunResult r = run(4);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
}

TEST_F(ShmRunTest, FinalArrayMatchesRoutes) {
  ShmRunResult r = run(4);
  EXPECT_TRUE(r.cost == rebuild_cost(circuit_.channels(), circuit_.grids(), r.routes));
  EXPECT_EQ(r.circuit_height, circuit_height(r.cost));
}

TEST_F(ShmRunTest, Deterministic) {
  ShmRunResult a = run(4);
  ShmRunResult b = run(4);
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.occupancy_factor, b.occupancy_factor);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(a.trace.size(), b.trace.size());
}

TEST_F(ShmRunTest, OneProcessorEqualsSequential) {
  ShmRunResult shm = run(1);
  SequentialResult seq = route_sequential(circuit_, {});
  EXPECT_EQ(shm.circuit_height, seq.circuit_height);
  EXPECT_EQ(shm.occupancy_factor, seq.occupancy_factor);
  EXPECT_EQ(shm.work.probes, seq.work.probes);
}

TEST_F(ShmRunTest, TraceIsTimeOrdered) {
  ShmRunResult r = run(4);
  ASSERT_GT(r.trace.size(), 0u);
  SimTime last = 0;
  for (const MemRef& ref : r.trace.refs()) {
    EXPECT_GE(ref.time, last);
    last = ref.time;
    EXPECT_GE(ref.proc, 0);
    EXPECT_LT(ref.proc, 4);
  }
}

TEST_F(ShmRunTest, TraceWritesMatchCommitVolume) {
  ShmRunResult r = run(4);
  // Writes = commits + rip-ups + loop-counter updates. Two iterations:
  // commit twice, rip up once per wire.
  std::uint64_t cost_writes = 0;
  std::uint64_t counter_writes = 0;
  for (const MemRef& ref : r.trace.refs()) {
    if (ref.op != MemOp::kWrite) continue;
    if (ref.addr == kLoopCounterAddr) ++counter_writes;
    else ++cost_writes;
  }
  std::uint64_t committed = 0;
  for (const WireRoute& route : r.routes) committed += route.cells.size();
  // Final-iteration commits = committed; plus first-iteration commits and
  // rip-ups (unknown split) => at least 2x committed writes.
  EXPECT_GE(cost_writes, 2 * committed);
  EXPECT_GT(counter_writes, 0u);
}

TEST_F(ShmRunTest, DedupShrinksTrace) {
  ShmConfig full;
  full.procs = 4;
  ShmConfig dedup = full;
  dedup.trace_dedup_reads = true;
  ShmRunResult rf = run_shared_memory(circuit_, full);
  ShmRunResult rd = run_shared_memory(circuit_, dedup);
  EXPECT_LT(rd.trace.size(), rf.trace.size() / 2);
  // Identical routing outcome: the trace mode must not affect decisions.
  EXPECT_EQ(rf.circuit_height, rd.circuit_height);
}

TEST_F(ShmRunTest, CaptureOffYieldsEmptyTrace) {
  ShmConfig config;
  config.procs = 4;
  config.capture_trace = false;
  ShmRunResult r = run_shared_memory(circuit_, config);
  EXPECT_EQ(r.trace.size(), 0u);
  EXPECT_GT(r.circuit_height, 0);
}

TEST_F(ShmRunTest, StaticAssignmentRespected) {
  ShmConfig config;
  config.procs = 4;
  config.assignment = assign_round_robin(circuit_, 4);
  ShmRunResult r = run_shared_memory(circuit_, config);
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
}

TEST_F(ShmRunTest, ParallelismDegradesQuality) {
  // Simultaneously routed wires do not see each other (deferred commits),
  // so more processors cannot improve quality. Compare 1 vs 8 on the
  // larger circuit where the effect is visible.
  Circuit bnre = make_bnre_like();
  ShmConfig one;
  one.procs = 1;
  one.capture_trace = false;
  ShmConfig eight;
  eight.procs = 8;
  eight.capture_trace = false;
  ShmRunResult r1 = run_shared_memory(bnre, one);
  ShmRunResult r8 = run_shared_memory(bnre, eight);
  EXPECT_GE(r8.circuit_height, r1.circuit_height);
}

TEST_F(ShmRunTest, CompletionIsMaxOfFinishTimes) {
  ShmRunResult r = run(4);
  SimTime max_finish = 0;
  for (SimTime t : r.proc_finish_ns) max_finish = std::max(max_finish, t);
  EXPECT_EQ(r.completion_ns, max_finish);
}

TEST(ThreadsRouter, RoutesEverythingAndAgreesRoughly) {
  Circuit circuit = make_tiny_test_circuit();
  ThreadsConfig config;
  config.threads = 4;
  ThreadsRunResult r = run_threads_shared_memory(circuit, config);
  for (const WireRoute& route : r.routes) {
    ASSERT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit.num_wires() * 2);
  // Against the deterministic executor: same ballpark quality (threads are
  // nondeterministic; allow a wide band).
  ShmConfig shm_config;
  shm_config.procs = 4;
  shm_config.capture_trace = false;
  ShmRunResult tango = run_shared_memory(circuit, shm_config);
  EXPECT_NEAR(static_cast<double>(r.circuit_height),
              static_cast<double>(tango.circuit_height),
              static_cast<double>(tango.circuit_height) * 0.5);
}

TEST(ThreadsRouter, SingleThreadMatchesSequential) {
  Circuit circuit = make_tiny_test_circuit();
  ThreadsConfig config;
  config.threads = 1;
  ThreadsRunResult r = run_threads_shared_memory(circuit, config);
  SequentialResult seq = route_sequential(circuit, {});
  EXPECT_EQ(r.circuit_height, seq.circuit_height);
  EXPECT_EQ(r.occupancy_factor, seq.occupancy_factor);
}

/// Property sweep over processor counts: executor invariants.
class ShmProcsProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ShmProcsProperty, Invariants) {
  Circuit circuit = make_tiny_test_circuit();
  ShmConfig config;
  config.procs = GetParam();
  ShmRunResult r = run_shared_memory(circuit, config);
  EXPECT_TRUE(r.cost == rebuild_cost(circuit.channels(), circuit.grids(), r.routes));
  EXPECT_GT(r.completion_ns, 0);
  EXPECT_EQ(r.proc_finish_ns.size(), static_cast<std::size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Procs, ShmProcsProperty, ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace locus
