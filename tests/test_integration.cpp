// Integration tests: the paper's qualitative claims, asserted end-to-end on
// the bnrE-like benchmark circuit through the same code paths the bench
// binaries use. These are the "does the reproduction reproduce" tests.
#include <gtest/gtest.h>

#include "assign/assignment.hpp"
#include "circuit/generator.hpp"
#include "coherence/simulator.hpp"
#include "msg/driver.hpp"
#include "route/sequential.hpp"
#include "shm/shm_router.hpp"

namespace locus {
namespace {

/// Shared fixture: run the expensive simulations once for the whole suite.
class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    circuit_ = new Circuit(make_bnre_like());

    MpConfig sender_config;
    sender_config.schedule = UpdateSchedule::sender(2, 10);
    sender_ = new MpRunResult(run_message_passing(*circuit_, 16, sender_config));

    MpConfig receiver_config;
    receiver_config.schedule = UpdateSchedule::receiver(1, 30);
    receiver_ = new MpRunResult(run_message_passing(*circuit_, 16, receiver_config));

    ShmConfig shm_config;
    shm_config.procs = 16;
    const Partition partition(circuit_->channels(), circuit_->grids(),
                              MeshShape::for_procs(16));
    shm_config.assignment = assign_threshold_cost(*circuit_, partition, 1000);
    shm_ = new ShmRunResult(run_shared_memory(*circuit_, shm_config));
    shm_traffic_ = new std::vector<CoherenceTraffic>(
        sweep_line_sizes(shm_->trace, 16, {4, 8, 16, 32}));

    sequential_ = new SequentialResult(route_sequential(*circuit_, {}));
  }

  static void TearDownTestSuite() {
    delete circuit_;
    delete sender_;
    delete receiver_;
    delete shm_;
    delete shm_traffic_;
    delete sequential_;
  }

  static Circuit* circuit_;
  static MpRunResult* sender_;
  static MpRunResult* receiver_;
  static ShmRunResult* shm_;
  static std::vector<CoherenceTraffic>* shm_traffic_;
  static SequentialResult* sequential_;
};

Circuit* PaperClaims::circuit_ = nullptr;
MpRunResult* PaperClaims::sender_ = nullptr;
MpRunResult* PaperClaims::receiver_ = nullptr;
ShmRunResult* PaperClaims::shm_ = nullptr;
std::vector<CoherenceTraffic>* PaperClaims::shm_traffic_ = nullptr;
SequentialResult* PaperClaims::sequential_ = nullptr;

TEST_F(PaperClaims, TrafficHierarchyShmOverSenderOverReceiver) {
  // §5.2 / Conclusions: shm traffic ~10x sender MP, sender ~10x receiver.
  const std::uint64_t shm_bytes = (*shm_traffic_)[1].total_bytes();  // 8B lines
  EXPECT_GT(shm_bytes, 3 * sender_->bytes_transferred);
  EXPECT_GT(sender_->bytes_transferred, 3 * receiver_->bytes_transferred);
  // Overall: 1-3 orders of magnitude between shm and receiver MP.
  EXPECT_GT(shm_bytes, 10 * receiver_->bytes_transferred);
}

TEST_F(PaperClaims, ShmQualityIsBest) {
  // §5.2: the shared memory version gives the best quality (more
  // consistency => better routing); MP within ~15% of it.
  EXPECT_LE(shm_->circuit_height, sender_->circuit_height);
  EXPECT_LE(shm_->circuit_height, receiver_->circuit_height);
  EXPECT_LT(static_cast<double>(sender_->circuit_height),
            static_cast<double>(shm_->circuit_height) * 1.20);
}

TEST_F(PaperClaims, ParallelQualityWorseThanSequential) {
  EXPECT_GE(sender_->circuit_height, sequential_->circuit_height);
  EXPECT_GE(shm_->circuit_height, sequential_->circuit_height);
}

TEST_F(PaperClaims, ShmTrafficGrowsWithLineSize) {
  // Table 3: monotone growth, substantial overall (paper: 6.3x for 4->32).
  const auto& t = *shm_traffic_;
  EXPECT_LE(t[0].total_bytes(), t[1].total_bytes());
  EXPECT_LE(t[1].total_bytes(), t[2].total_bytes());
  EXPECT_LE(t[2].total_bytes(), t[3].total_bytes());
  EXPECT_GT(static_cast<double>(t[3].total_bytes()),
            2.5 * static_cast<double>(t[0].total_bytes()));
}

TEST_F(PaperClaims, WritesDominateShmTraffic) {
  // §5.2: over 80% of the bytes transferred are caused by writes.
  EXPECT_GT((*shm_traffic_)[1].write_fraction(), 0.80);
}

TEST_F(PaperClaims, OccupancyDegradesWithStalerViews) {
  // §5.1.2: quality is sensitive to ReqRmtData; rarer requests => worse
  // occupancy factor.
  MpConfig fresh_config;
  fresh_config.schedule = UpdateSchedule::receiver(1, 5);
  MpRunResult fresh = run_message_passing(*circuit_, 16, fresh_config);
  EXPECT_LT(fresh.occupancy_factor, receiver_->occupancy_factor);
}

TEST_F(PaperClaims, BlockingSlowerThanNonBlockingAtSimilarQuality) {
  MpConfig nb_config;
  nb_config.schedule = UpdateSchedule::receiver(1, 5, false);
  MpConfig b_config;
  b_config.schedule = UpdateSchedule::receiver(1, 5, true);
  MpRunResult nb = run_message_passing(*circuit_, 16, nb_config);
  MpRunResult b = run_message_passing(*circuit_, 16, b_config);
  EXPECT_GT(b.completion_ns, nb.completion_ns);
  // "up to 75% larger": bounded well above, quality not worse than ~10%.
  EXPECT_LT(static_cast<double>(b.completion_ns),
            2.0 * static_cast<double>(nb.completion_ns));
  EXPECT_LT(static_cast<double>(b.circuit_height),
            1.10 * static_cast<double>(nb.circuit_height));
}

TEST_F(PaperClaims, LocalityCutsReceiverTraffic) {
  // §5.3.1: receiver initiated traffic drops substantially (paper: up to
  // 63%) going from round robin to a fully local assignment.
  const Partition partition(circuit_->channels(), circuit_->grids(),
                            MeshShape::for_procs(16));
  MpConfig config;
  config.schedule = UpdateSchedule::receiver(1, 5);
  MpRunResult rr = run_message_passing(
      *circuit_, partition, assign_round_robin(*circuit_, 16), config);
  MpRunResult local = run_message_passing(
      *circuit_, partition,
      assign_threshold_cost(*circuit_, partition, kThresholdInfinity), config);
  EXPECT_LT(static_cast<double>(local.bytes_transferred),
            0.75 * static_cast<double>(rr.bytes_transferred));
}

TEST_F(PaperClaims, FullLocalityCostsExecutionTime) {
  // §5.3.3 / Table 4: ThresholdCost = infinity creates load imbalance; the
  // balanced tc30 assignment runs faster.
  const Partition partition(circuit_->channels(), circuit_->grids(),
                            MeshShape::for_procs(16));
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 10);
  MpRunResult tc30 = run_message_passing(
      *circuit_, partition, assign_threshold_cost(*circuit_, partition, 30),
      config);
  MpRunResult inf = run_message_passing(
      *circuit_, partition,
      assign_threshold_cost(*circuit_, partition, kThresholdInfinity), config);
  EXPECT_GT(inf.completion_ns, tc30.completion_ns);
}

TEST_F(PaperClaims, ScalingDegradesQualityAndTime) {
  // Table 6: more processors => faster but worse quality.
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 10);
  MpRunResult p2 = run_message_passing(*circuit_, 2, config);
  MpRunResult p16 = run_message_passing(*circuit_, 16, config);
  EXPECT_LT(p16.completion_ns, p2.completion_ns / 4);
  EXPECT_GE(p16.circuit_height, p2.circuit_height);
  EXPECT_GE(p16.occupancy_factor, p2.occupancy_factor);
  // §5.4: speedup at 16 procs is strong (paper: 12).
  const double speedup = 2.0 * static_cast<double>(p2.completion_ns) /
                         static_cast<double>(p16.completion_ns);
  EXPECT_GT(speedup, 8.0);
  EXPECT_LT(speedup, 16.0);
}

TEST_F(PaperClaims, SenderTimeFallsWithRarerUpdates) {
  // Table 1: execution time is a clear function of update frequency.
  MpConfig frequent_config;
  frequent_config.schedule = UpdateSchedule::sender(2, 1);
  MpConfig rare_config;
  rare_config.schedule = UpdateSchedule::sender(10, 20);
  MpRunResult frequent = run_message_passing(*circuit_, 16, frequent_config);
  MpRunResult rare = run_message_passing(*circuit_, 16, rare_config);
  EXPECT_GT(frequent.completion_ns, rare.completion_ns);
  EXPECT_GT(frequent.bytes_transferred, 3 * rare.bytes_transferred);
}

}  // namespace
}  // namespace locus
