// Tests for the binary .trc trace format.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generator.hpp"
#include "shm/shm_router.hpp"
#include "shm/trace_io.hpp"

namespace locus {
namespace {

RefTrace sample_trace() {
  RefTrace t;
  t.append({0, 0, 0, MemOp::kRead});
  t.append({1000, 40, 3, MemOp::kWrite});
  t.append({-5, 0xFFFFFFFFu, 15, MemOp::kRead});  // extreme values survive
  t.append({1LL << 60, kLoopCounterAddr, 0, MemOp::kWrite});
  return t;
}

TEST(TraceIo, RoundTripsAllFields) {
  RefTrace original = sample_trace();
  std::stringstream buf;
  write_trace(buf, original);
  RefTrace parsed = read_trace(buf);
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed.refs()[i].time, original.refs()[i].time);
    EXPECT_EQ(parsed.refs()[i].addr, original.refs()[i].addr);
    EXPECT_EQ(parsed.refs()[i].proc, original.refs()[i].proc);
    EXPECT_EQ(parsed.refs()[i].op, original.refs()[i].op);
  }
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream buf;
  write_trace(buf, RefTrace{});
  EXPECT_EQ(read_trace(buf).size(), 0u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf("NOPE00000000");
  EXPECT_THROW(read_trace(buf), std::runtime_error);
}

TEST(TraceIo, RejectsBadVersion) {
  std::stringstream buf;
  buf.write("LTRC", 4);
  const char version[4] = {9, 0, 0, 0};
  buf.write(version, 4);
  const char count[8] = {0};
  buf.write(count, 8);
  EXPECT_THROW(read_trace(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedFile) {
  RefTrace original = sample_trace();
  std::stringstream buf;
  write_trace(buf, original);
  std::string data = buf.str();
  std::stringstream cut(data.substr(0, data.size() - 7));
  EXPECT_THROW(read_trace(cut), std::runtime_error);
}

TEST(TraceIo, FileRoundTripOfRealTrace) {
  ShmConfig config;
  config.procs = 4;
  RefTrace trace = run_shared_memory(make_tiny_test_circuit(), config).trace;
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.trc";
  write_trace_file(path, trace);
  RefTrace parsed = read_trace_file(path);
  ASSERT_EQ(parsed.size(), trace.size());
  EXPECT_EQ(parsed.count(MemOp::kWrite), trace.count(MemOp::kWrite));
  // Spot-check first/last records.
  EXPECT_EQ(parsed.refs().front().addr, trace.refs().front().addr);
  EXPECT_EQ(parsed.refs().back().time, trace.refs().back().time);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/x.trc"), std::runtime_error);
}

}  // namespace
}  // namespace locus
