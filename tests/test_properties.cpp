// Cross-module property tests: exhaustive small-grid sweeps and randomized
// invariants that tie the pieces together.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "circuit/generator.hpp"
#include "geom/partition.hpp"
#include "grid/cost_array.hpp"
#include "grid/delta_array.hpp"
#include "msg/view.hpp"
#include "route/explorer.hpp"
#include "route/quality.hpp"
#include "route/router.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "test_util.hpp"

namespace locus {
namespace {

/// Exhaustive sweep of pin placements on a small grid: the chosen route
/// always starts/ends at a valid entry channel of each pin, stays in
/// bounds, and its reported cost matches an independent re-pricing.
TEST(ExplorerProperty, ExhaustiveSmallGridSweep) {
  const std::int32_t channels = 4;
  const std::int32_t grids = 9;
  // A deterministic, non-uniform cost landscape.
  CostArray cost = test::make_random_landscape(channels, grids, 123, 4);
  ExplorerParams params;
  for (std::int32_t ax = 0; ax < grids; ax += 2) {
    for (std::int32_t arow = 0; arow < channels - 1; ++arow) {
      for (std::int32_t bx = 0; bx < grids; bx += 2) {
        for (std::int32_t brow = 0; brow < channels - 1; ++brow) {
          Pin a{ax, arow}, b{bx, brow};
          ExploreResult res = explore_connection(a, b, channels, cost, params);
          ASSERT_FALSE(res.route.empty());
          const Segment& first = res.route.segments().front();
          const Segment& last = res.route.segments().back();
          ASSERT_EQ(first.from.x, a.x);
          ASSERT_TRUE(first.from.channel == a.channel_above() ||
                      first.from.channel == a.channel_below());
          ASSERT_EQ(last.to.x, b.x);
          ASSERT_TRUE(last.to.channel == b.channel_above() ||
                      last.to.channel == b.channel_below());
          std::int64_t repriced = 0;
          res.route.for_each_cell([&](GridPoint p) {
            ASSERT_GE(p.channel, 0);
            ASSERT_LT(p.channel, channels);
            ASSERT_GE(p.x, 0);
            ASSERT_LT(p.x, grids);
            repriced += cost.read(p);
          });
          ASSERT_EQ(repriced, res.cost)
              << "a=(" << ax << "," << arow << ") b=(" << bx << "," << brow << ")";
        }
      }
    }
  }
}

/// The chosen route is never more expensive than the direct single-channel
/// route through either pin channel (those are always in the candidate set).
TEST(ExplorerProperty, NeverWorseThanDirectRoute) {
  CostArray cost = test::make_random_landscape(5, 40, 77, 6);
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    Pin a{static_cast<std::int32_t>(rng.bounded(40)),
          static_cast<std::int32_t>(rng.bounded(4))};
    Pin b{static_cast<std::int32_t>(rng.bounded(40)),
          static_cast<std::int32_t>(rng.bounded(4))};
    ExploreResult res = explore_connection(a, b, 5, cost, {});
    // Direct route in the channel above pin a.
    std::int64_t direct = 0;
    const std::int32_t c = a.channel_above();
    const std::int32_t lo = std::min(a.x, b.x);
    const std::int32_t hi = std::max(a.x, b.x);
    for (std::int32_t x = lo; x <= hi; ++x) direct += cost.read({c, x});
    // Plus the vertical tail at b to reach channel c from b's row options.
    const std::int32_t eb = c <= b.row ? b.row : b.row + 1;
    for (std::int32_t ch = std::min(c, eb) ; ch <= std::max(c, eb); ++ch) {
      if (ch != c) direct += cost.read({ch, b.x});
    }
    ASSERT_LE(res.cost, direct);
  }
}

/// Read-only CostView wrapper without bulk-read support: forces
/// explore_connection onto the per-cell reference fallback, like the SHM
/// router's tracing view does while capturing (shm/shm_router.cpp).
class NonBulkView final : public CostView {
 public:
  explicit NonBulkView(CostArray& a) : array_(a) {}
  std::int32_t read(GridPoint p) override { return array_.read(p); }
  void add(GridPoint p, std::int32_t d) override { array_.add(p, d); }

 private:
  CostArray& array_;
};

/// The pricing engines are interchangeable across the full deployment
/// matrix: {vector kernels, forced-scalar kernels} x {plain CostArray,
/// drifted ViewWithDelta (the message passing node view, holding negative
/// raw values that read() clamps at zero), non-bulk fallback view}. Every
/// combination must return the same cost, the same route, and the same work
/// counters as the per-cell reference engine, bit for bit.
class BulkVsReferenceMatrix : public ::testing::TestWithParam<bool> {
 public:
  BulkVsReferenceMatrix() : prev_(simd::force_scalar()) {
    simd::set_force_scalar(GetParam());
  }
  ~BulkVsReferenceMatrix() override { simd::set_force_scalar(prev_); }

 private:
  bool prev_;
};

TEST_P(BulkVsReferenceMatrix, BulkPricingMatchesReferenceBitForBit) {
  Rng rng(20'260'806);
  int tuples = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::int32_t channels = 3 + static_cast<std::int32_t>(rng.bounded(10));
    const std::int32_t grids = 8 + static_cast<std::int32_t>(rng.bounded(120));
    CostArray cost = test::make_random_landscape(
        channels, grids, 50'000 + static_cast<std::uint64_t>(trial),
        1 + rng.bounded(9));
    if (trial % 2 == 1) {
      // Drift some cells negative, as a message passing view does when an
      // absolute region update lands over a local rip-up.
      for (std::int32_t k = 0; k < grids; ++k) {
        GridPoint p{static_cast<std::int32_t>(rng.bounded(channels)),
                    static_cast<std::int32_t>(rng.bounded(grids))};
        cost.set(p, -static_cast<std::int32_t>(1 + rng.bounded(3)));
      }
    }
    Partition part(channels, grids, MeshShape{1, 1});
    DeltaArray delta(part);
    ViewWithDelta node_view(cost, delta);
    NonBulkView fallback(cost);
    ExplorerParams params;
    params.channel_slack = static_cast<std::int32_t>(rng.bounded(3));
    params.jog_samples = 1 + static_cast<std::int32_t>(rng.bounded(16));
    params.bend_penalty = rng.chance(0.5) ? 0 : 3;
    params.congestion_power = rng.chance(0.5) ? 1 : 2;
    for (int pair = 0; pair < 4; ++pair, ++tuples) {
      Pin a{static_cast<std::int32_t>(rng.bounded(grids)),
            static_cast<std::int32_t>(rng.bounded(channels - 1))};
      Pin b{static_cast<std::int32_t>(rng.bounded(grids)),
            static_cast<std::int32_t>(rng.bounded(channels - 1))};
      const ExploreResult ref =
          explore_connection_reference(a, b, channels, cost, params);
      const auto expect_same = [&](const ExploreResult& got, const char* via) {
        ASSERT_EQ(got.cost, ref.cost)
            << via << " trial " << trial << " a=(" << a.x << "," << a.row
            << ") b=(" << b.x << "," << b.row << ")";
        ASSERT_TRUE(got.route == ref.route) << via << " trial " << trial;
        ASSERT_EQ(got.stats.cells_probed, ref.stats.cells_probed) << via;
        ASSERT_EQ(got.stats.routes_evaluated, ref.stats.routes_evaluated) << via;
      };
      expect_same(explore_connection(a, b, channels, cost, params),
                  "bulk/CostArray");
      expect_same(explore_connection(a, b, channels, node_view, params),
                  "bulk/ViewWithDelta");
      expect_same(explore_connection(a, b, channels, fallback, params),
                  "fallback/NonBulkView");
    }
  }
  ASSERT_GE(tuples, 200);  // the tuple floor the PR promises
}

INSTANTIATE_TEST_SUITE_P(VectorAndScalar, BulkVsReferenceMatrix,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& pi) {
                           return pi.param ? "ForcedScalar" : "Vector";
                         });

/// collect_unique_cells' interval-union sweep against the brute-force
/// specification: materialize every covered cell, sort, dedupe.
TEST(RouterProperty2, CollectUniqueCellsMatchesSortBasedReference) {
  Rng rng(20'260'808);
  for (int trial = 0; trial < 120; ++trial) {
    std::vector<Route> routes(1 + rng.bounded(4));
    for (Route& r : routes) {
      const std::int32_t segs = 1 + static_cast<std::int32_t>(rng.bounded(5));
      GridPoint at{static_cast<std::int32_t>(rng.bounded(6)),
                   static_cast<std::int32_t>(rng.bounded(30))};
      for (std::int32_t i = 0; i < segs; ++i) {
        GridPoint to = at;
        if (rng.chance(0.5)) {
          to.x = static_cast<std::int32_t>(rng.bounded(30));
        } else {
          to.channel = static_cast<std::int32_t>(rng.bounded(6));
        }
        r.append(Segment{at, to});
        at = to;
      }
    }
    std::vector<GridPoint> want;
    for (const Route& r : routes) {
      r.for_each_cell([&](GridPoint p) { want.push_back(p); });
    }
    std::sort(want.begin(), want.end(), [](GridPoint x, GridPoint y) {
      return x.channel != y.channel ? x.channel < y.channel : x.x < y.x;
    });
    want.erase(std::unique(want.begin(), want.end()), want.end());
    const std::vector<GridPoint> got = collect_unique_cells(routes);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_TRUE(got[i] == want[i]) << "trial " << trial << " i=" << i;
    }
  }
}

/// The verify_bulk_pricing debug flag runs both engines internally and
/// asserts agreement; it must be transparent to the caller.
TEST(ExplorerProperty, VerifyBulkPricingFlagIsTransparent) {
  CostArray cost = test::make_random_landscape(6, 50, 404, 5);
  ExplorerParams plain;
  ExplorerParams checked = plain;
  checked.verify_bulk_pricing = true;
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    Pin a{static_cast<std::int32_t>(rng.bounded(50)),
          static_cast<std::int32_t>(rng.bounded(5))};
    Pin b{static_cast<std::int32_t>(rng.bounded(50)),
          static_cast<std::int32_t>(rng.bounded(5))};
    ExploreResult r1 = explore_connection(a, b, 6, cost, plain);
    ExploreResult r2 = explore_connection(a, b, 6, cost, checked);
    EXPECT_EQ(r1.cost, r2.cost);
    EXPECT_TRUE(r1.route == r2.route);
    EXPECT_EQ(r1.stats.cells_probed, r2.stats.cells_probed);
  }
}

/// Rip-up is the exact inverse of commit: any interleaving of route and
/// rip-up operations that ends with all routes ripped leaves a zero array.
TEST(RouterProperty2, ArbitraryRipUpOrderRestoresZero) {
  Circuit c = make_tiny_test_circuit(3);
  CostArray cost(c.channels(), c.grids());
  CostArray zero(c.channels(), c.grids());
  WireRouter router(c.channels(), {});
  RouteWorkStats stats;
  Rng rng(9);

  std::vector<WireRoute> live;
  for (int step = 0; step < 200; ++step) {
    if (!live.empty() && rng.chance(0.4)) {
      std::size_t pick = rng.bounded(live.size());
      WireRouter::rip_up(live[pick], cost);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      WireId id = static_cast<WireId>(rng.bounded(
          static_cast<std::uint64_t>(c.num_wires())));
      live.push_back(router.route_wire(c.wire(id), cost, stats));
    }
  }
  for (const WireRoute& r : live) WireRouter::rip_up(r, cost);
  EXPECT_TRUE(cost == zero);
}

/// Network: without contention, every delivery matches the closed-form
/// latency, for random packets on random meshes.
class NetworkFormulaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFormulaProperty, ClosedFormHolds) {
  Rng rng(GetParam());
  const std::int32_t cols = 2 + static_cast<std::int32_t>(rng.bounded(4));
  const std::int32_t rows = 2 + static_cast<std::int32_t>(rng.bounded(3));
  Topology topo({cols, rows}, Topology::Edges::kMesh);
  EventQueue queue;
  std::vector<std::pair<Packet, SimTime>> delivered;
  Network net(topo, {}, queue,
              [&](const Packet& p, SimTime at) { delivered.push_back({p, at}); });

  // Packets widely spaced in time so no two ever contend.
  SimTime t = 0;
  std::vector<std::pair<SimTime, std::int64_t>> expect;  // (ready, D + L)
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.src = static_cast<ProcId>(rng.bounded(
        static_cast<std::uint64_t>(topo.num_nodes())));
    do {
      p.dst = static_cast<ProcId>(rng.bounded(
          static_cast<std::uint64_t>(topo.num_nodes())));
    } while (p.dst == p.src);
    p.type = 1;
    p.bytes = 1 + static_cast<std::int32_t>(rng.bounded(500));
    const std::int64_t d = topo.distance(p.src, p.dst);
    expect.push_back({t, d + p.bytes});
    net.inject(std::move(p), t);
    t += 10'000'000;  // 10 ms apart
  }
  queue.run();
  ASSERT_EQ(delivered.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(delivered[i].second,
              expect[i].first + 100 * expect[i].second + 2000);
  }
  EXPECT_EQ(net.stats().total_link_wait_ns, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFormulaProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

/// Quality invariant: circuit height from track profile equals the sum of
/// per-channel maxima for random arrays.
TEST(QualityProperty, HeightMatchesProfileSum) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    CostArray cost = test::make_random_landscape(
        1 + static_cast<std::int32_t>(rng.bounded(8)),
        1 + static_cast<std::int32_t>(rng.bounded(60)),
        31'000 + static_cast<std::uint64_t>(trial), 12);
    auto profile = track_profile(cost);
    std::int64_t sum = 0;
    for (std::int32_t v : profile) sum += v;
    EXPECT_EQ(sum, circuit_height(cost));
  }
}

}  // namespace
}  // namespace locus
