// Tests for the ASCII cost-array renderer.
#include <gtest/gtest.h>

#include "grid/cost_array.hpp"
#include "route/render.hpp"
#include "route/router.hpp"

namespace locus {
namespace {

TEST(Render, EmptyArrayIsDots) {
  CostArray cost(2, 4);
  EXPECT_EQ(render_cost_array(cost), "....\n....\n");
}

TEST(Render, DigitsAndLetters) {
  CostArray cost(1, 5);
  cost.set({0, 0}, 1);
  cost.set({0, 1}, 9);
  cost.set({0, 2}, 10);
  cost.set({0, 3}, 35);
  cost.set({0, 4}, 100);
  EXPECT_EQ(render_cost_array(cost), "19az#\n");
}

TEST(Render, NegativeRendersAsEmpty) {
  CostArray cost(1, 2);
  cost.set({0, 0}, -3);
  EXPECT_EQ(render_cost_array(cost), "..\n");
}

TEST(Render, WindowClips) {
  CostArray cost(1, 10);
  cost.set({0, 5}, 2);
  EXPECT_EQ(render_cost_array(cost, 4, 6), ".2.\n");
}

TEST(Render, RouteOverlay) {
  CostArray cost(2, 4);
  cost.set({1, 3}, 7);
  WireRoute route;
  route.cells = {{0, 0}, {0, 1}, {1, 1}};  // sorted
  EXPECT_EQ(render_route(cost, route), "**..\n.*.7\n");
}

}  // namespace
}  // namespace locus
