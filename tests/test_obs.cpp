// Tests for the observability layer: registry semantics, histogram
// bucketing, CSV/trace export determinism, counter merge across threaded
// shards, and the cross-checks that tie obs counters to the statistics the
// engines (and the src/check packet ledger) already keep.
#include <gtest/gtest.h>

#include <string>

#include "check/consistency.hpp"
#include "circuit/generator.hpp"
#include "coherence/simulator.hpp"
#include "msg/driver.hpp"
#include "msg/threads_mp.hpp"
#include "obs/obs.hpp"
#include "shm/shm_router.hpp"
#include "shm/threads_router.hpp"

namespace locus {
namespace {

TEST(Counters, RegisterAddTotal) {
  obs::CounterRegistry reg(1);
  const obs::MetricId a = reg.counter("a");
  const obs::MetricId b = reg.counter("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.counter("a"), a);  // idempotent
  reg.add(0, a);
  reg.add(0, a, 4);
  reg.add(0, b, 7);
  EXPECT_EQ(reg.total(a), 5u);
  EXPECT_EQ(reg.total("b"), 7u);
  EXPECT_EQ(reg.total("nobody"), 0u);
}

TEST(Counters, ShardMergeIsSum) {
  obs::CounterRegistry reg(4);
  const obs::MetricId a = reg.counter("a");
  for (std::size_t s = 0; s < 4; ++s) reg.add(s, a, s + 1);
  EXPECT_EQ(reg.total(a), 1u + 2u + 3u + 4u);
  EXPECT_EQ(reg.shard_for(5), 1u);
}

TEST(Counters, HistogramBuckets) {
  EXPECT_EQ(obs::histogram_bucket(0), 0u);
  EXPECT_EQ(obs::histogram_bucket(1), 1u);
  EXPECT_EQ(obs::histogram_bucket(2), 2u);
  EXPECT_EQ(obs::histogram_bucket(3), 2u);
  EXPECT_EQ(obs::histogram_bucket(4), 3u);
  EXPECT_EQ(obs::histogram_bucket(~0ull), obs::kHistogramBuckets - 1);
}

TEST(Counters, HistogramSnapshot) {
  obs::CounterRegistry reg(2);
  const obs::MetricId h = reg.histogram("lat");
  reg.observe(0, h, 3);
  reg.observe(0, h, 5);
  reg.observe(1, h, 100);
  const obs::HistogramSnapshot snap = reg.histogram_total("lat");
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 108u);
  EXPECT_EQ(snap.min, 3u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.mean(), 36.0);
  EXPECT_EQ(snap.buckets[obs::histogram_bucket(3)], 1u);
  EXPECT_EQ(snap.buckets[obs::histogram_bucket(5)], 1u);
  EXPECT_EQ(snap.buckets[obs::histogram_bucket(100)], 1u);
}

TEST(Counters, CsvIsSortedAndDeterministic) {
  obs::CounterRegistry reg(1);
  reg.add(0, reg.counter("zeta"), 1);
  reg.add(0, reg.counter("alpha"), 2);
  reg.observe(0, reg.histogram("mid"), 9);
  const std::string csv = reg.metrics_csv();
  EXPECT_EQ(csv, reg.metrics_csv());
  // Counters (name-sorted) come first, then the histogram rows.
  EXPECT_LT(csv.find("alpha"), csv.find("zeta"));
  EXPECT_LT(csv.find("zeta"), csv.find("mid.count"));
  EXPECT_NE(csv.find("counter,alpha,2\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,mid.sum,9\n"), std::string::npos);
}

TEST(Trace, JsonShape) {
  obs::TraceSink sink;
  const obs::TraceSink::StrId cat = sink.intern("net");
  const obs::TraceSink::StrId name = sink.intern("inject");
  const obs::TraceSink::StrId arg = sink.intern("bytes");
  sink.set_track_name(0, "proc 0");
  sink.complete(0, cat, name, 1000, 500, arg, 42);
  sink.instant(1, cat, name, 2500);
  sink.flow_begin(0, cat, name, 1000, 77);
  sink.flow_end(1, cat, name, 2500, 77);
  const std::string json = sink.chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":0.500"), std::string::npos);  // 500 ns = 0.5 us
  EXPECT_NE(json.find("\"bytes\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"77\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

#if LOCUS_OBS_ENABLED

/// One standard instrumented MP run used by several tests below.
MpRunResult run_mp_with_obs(obs::Obs& obs, const UpdateSchedule& schedule) {
  MpConfig config;
  config.schedule = schedule;
  config.iterations = 2;
  config.obs = &obs;
  return run_message_passing(make_tiny_test_circuit(), 4, config);
}

TEST(ObsIntegration, MpCountersMatchEngineStats) {
  obs::Obs obs;
  const MpRunResult r = run_mp_with_obs(obs, UpdateSchedule::sender(2, 5));
  const obs::CounterRegistry& reg = obs.counters();
  EXPECT_EQ(reg.total("net.packets"), r.network.packets);
  EXPECT_EQ(reg.total("net.bytes"), r.network.bytes);
  EXPECT_EQ(reg.total("net.byte_hops"), r.network.byte_hops);
  EXPECT_EQ(reg.total("net.hops"), r.network.hops);
  EXPECT_EQ(reg.total("mp.wires_routed"),
            static_cast<std::uint64_t>(r.work.wires_routed));
  EXPECT_EQ(reg.total("mp.updates_suppressed"),
            static_cast<std::uint64_t>(r.updates_suppressed));
  // The DES dispatched events and the router explored: both nonzero.
  EXPECT_GT(reg.total("sim.events"), 0u);
  EXPECT_GT(reg.total("route.routes_evaluated"), 0u);
  EXPECT_EQ(reg.histogram_total("net.packet_latency_ns").count,
            r.network.packets);
  // Per-kind on-wire bytes, published from NetworkStats, sum to the total.
  std::uint64_t by_type = 0;
  for (const auto& [name, value] : reg.merged_counters()) {
    if (name.rfind("net.bytes_by_type.", 0) == 0) by_type += value;
  }
  EXPECT_EQ(by_type, r.network.bytes);
}

TEST(ObsIntegration, MpSendRecvMatchCheckLedger) {
  // The src/check consistency ledger counts every SendRmtData handed to /
  // applied from the network; the obs per-kind counters must agree exactly.
  ViewConsistencyChecker checker;
  obs::Obs obs;
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 5);
  config.iterations = 2;
  config.obs = &obs;
  config.observer = &checker;
  run_message_passing(make_tiny_test_circuit(), 4, config);
  const ConsistencyReport& report = checker.report();
  EXPECT_TRUE(report.converged());
  EXPECT_GT(report.deltas_sent, 0);
  EXPECT_EQ(obs.counters().total("mp.sent.SendRmtData"),
            static_cast<std::uint64_t>(report.deltas_sent));
  EXPECT_EQ(obs.counters().total("mp.recv.SendRmtData"),
            static_cast<std::uint64_t>(report.deltas_applied));
}

TEST(ObsIntegration, TraceExportIsDeterministic) {
  // Same seed, same schedule: the Chrome JSON must be byte-identical.
  auto traced_run = [] {
    obs::ObsOptions opt;
    opt.trace = true;
    opt.hop_detail = true;
    obs::Obs obs(opt);
    run_mp_with_obs(obs, UpdateSchedule::receiver(1, 30));
    return obs.trace()->chrome_json();
  };
  const std::string first = traced_run();
  EXPECT_GT(first.size(), 0u);
  EXPECT_EQ(first, traced_run());
}

TEST(ObsIntegration, MpTraceContainsRoutesAndPackets) {
  obs::ObsOptions opt;
  opt.trace = true;
  obs::Obs obs(opt);
  const MpRunResult r = run_mp_with_obs(obs, UpdateSchedule::sender(2, 5));
  ASSERT_NE(obs.trace(), nullptr);
  EXPECT_GT(obs.trace()->size(), 0u);
  const std::string json = obs.trace()->chrome_json();
  EXPECT_NE(json.find("\"route_wire\""), std::string::npos);
  EXPECT_NE(json.find("\"compute\""), std::string::npos);
  if (r.network.packets > 0) {
    EXPECT_NE(json.find("\"inject\""), std::string::npos);
    EXPECT_NE(json.find("\"deliver\""), std::string::npos);
  }
}

TEST(ObsIntegration, ShmCountersAndCoherencePublish) {
  obs::Obs obs;
  ShmConfig config;
  config.procs = 4;
  config.iterations = 2;
  config.obs = &obs;
  const Circuit circuit = make_tiny_test_circuit();
  const ShmRunResult r = run_shared_memory(circuit, config);
  EXPECT_EQ(obs.counters().total("shm.wires_routed"),
            static_cast<std::uint64_t>(r.work.wires_routed));
  EXPECT_EQ(obs.counters().total("shm.trace_refs"), r.trace.size());

  CoherenceSim sim(4, CoherenceParams{});
  sim.replay(r.trace);
  sim.publish_obs(obs);
  EXPECT_EQ(obs.counters().total(obs::CoherenceObsNames::kAccesses),
            sim.traffic().accesses);
  EXPECT_EQ(obs.counters().total(obs::CoherenceObsNames::kTotalBytes),
            sim.traffic().total_bytes());
  EXPECT_EQ(obs.counters().total(obs::CoherenceObsNames::kLinesTouched),
            sim.lines_touched());
}

TEST(ObsIntegration, ThreadsShmShardsMergeToEngineTotals) {
  // Four workers write to four single-writer shards; the merged totals must
  // equal the engine's own (atomically summed) work statistics.
  obs::ObsOptions opt;
  opt.shards = 4;
  obs::Obs obs(opt);
  ThreadsConfig config;
  config.threads = 4;
  config.iterations = 2;
  config.obs = &obs;
  const ThreadsRunResult r =
      run_threads_shared_memory(make_tiny_test_circuit(), config);
  EXPECT_EQ(obs.counters().total("shm.wires_routed"),
            static_cast<std::uint64_t>(r.work.wires_routed));
}

TEST(ObsIntegration, ThreadsMpShardsMatchMessageTotals) {
  obs::ObsOptions opt;
  opt.shards = 4;
  obs::Obs obs(opt);
  const Circuit circuit = make_tiny_test_circuit();
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(4));
  const Assignment assignment = assign_threshold_cost(circuit, partition, 1000);
  ThreadsMpConfig config;
  config.iterations = 2;
  config.obs = &obs;
  const ThreadsMpResult r =
      run_threads_message_passing(circuit, partition, assignment, config);
  std::uint64_t sent = 0;
  std::uint64_t sent_bytes = 0;
  for (const auto& [name, value] : obs.counters().merged_counters()) {
    if (name.rfind("mp.sent.", 0) == 0) sent += value;
    if (name.rfind("mp.sent_bytes.", 0) == 0) sent_bytes += value;
  }
  EXPECT_EQ(sent, r.messages_sent);
  EXPECT_EQ(sent_bytes, r.bytes_sent);
  EXPECT_EQ(obs.counters().total("mp.wires_routed"),
            static_cast<std::uint64_t>(r.work.wires_routed));
}

TEST(ObsIntegration, NullObsLeavesRunIdentical) {
  // The default (no obs) path must produce the same routing as an
  // instrumented run: observation does not perturb the simulation.
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 5);
  config.iterations = 2;
  const MpRunResult plain = run_message_passing(make_tiny_test_circuit(), 4, config);
  obs::Obs obs;
  const MpRunResult observed = run_mp_with_obs(obs, UpdateSchedule::sender(2, 5));
  EXPECT_EQ(plain.circuit_height, observed.circuit_height);
  EXPECT_EQ(plain.completion_ns, observed.completion_ns);
  EXPECT_EQ(plain.network.packets, observed.network.packets);
  EXPECT_EQ(plain.network.bytes, observed.network.bytes);
}

#endif  // LOCUS_OBS_ENABLED

}  // namespace
}  // namespace locus
