// TileGrid / TiledCostArray / tiled DeltaArray tests: the sparse backing
// must be observationally identical to the dense one (absent tile == zero
// == initial value), and the region-batched block extraction must cover
// exactly what the single-bbox extraction covers at the same scan cost.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "geom/partition.hpp"
#include "grid/cost_array.hpp"
#include "grid/delta_array.hpp"
#include "grid/tile_grid.hpp"
#include "grid/tiled_cost_array.hpp"
#include "support/rng.hpp"

namespace locus {
namespace {

constexpr TileDims kSmallTiles{2, 8};

TEST(TileGrid, AbsentTilesReadZeroAndAllocateOnWrite) {
  TileGrid g(5, 40, kSmallTiles);
  EXPECT_EQ(g.tiles_resident(), 0);
  EXPECT_EQ(g.get({4, 39}), 0);
  EXPECT_EQ(g.tiles_resident(), 0);  // reads never materialize
  g.slot({1, 9}) = 7;
  EXPECT_EQ(g.tiles_resident(), 1);
  EXPECT_EQ(g.get({1, 9}), 7);
  EXPECT_EQ(g.get({1, 8}), 0);  // same tile, zero-filled
  g.slot({1, 8}) += 3;          // same tile: no new allocation
  EXPECT_EQ(g.tiles_resident(), 1);
  g.slot({4, 39}) = -2;
  EXPECT_EQ(g.tiles_resident(), 2);
  g.clear();
  EXPECT_EQ(g.tiles_resident(), 0);
  EXPECT_EQ(g.get({1, 9}), 0);
}

TEST(TileGrid, TileCountsCoverTheGrid) {
  TileGrid g(5, 40, TileDims{4, 8});
  EXPECT_EQ(g.tile_channels(), 4);
  EXPECT_EQ(g.tile_cols(), 8);
  EXPECT_EQ(g.tiles_total(), 2 * 5);  // ceil(5/4) x ceil(40/8)
  EXPECT_EQ(g.tile_cells(), 32);
}

TEST(TileGrid, RowChunkRunsToTileOrGridEdge) {
  TileGrid g(4, 20, kSmallTiles);  // tile cols = 8 -> boundaries at 8, 16
  std::int32_t run = 0;
  EXPECT_EQ(g.row_chunk(0, 3, &run), nullptr);  // absent tile
  EXPECT_EQ(run, 5);                            // 3..7 inside the first tile
  g.slot({0, 5}) = 11;
  const std::int32_t* chunk = g.row_chunk(0, 3, &run);
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(run, 5);
  EXPECT_EQ(chunk[2], 11);  // offset 2 == column 5
  // Last tile is clipped by the grid edge: columns 16..19.
  g.row_chunk(0, 17, &run);
  EXPECT_EQ(run, 3);
}

TEST(TileGrid, EnsureRectMaterializesExactlyTheCoveredTiles) {
  TileGrid g(6, 32, kSmallTiles);  // 3 x 4 tiles
  g.ensure_rect(Rect::of(1, 2, 6, 9));  // spans tile rows 0-1, tile cols 0-1
  EXPECT_EQ(g.tiles_resident(), 4);
  EXPECT_EQ(g.get({2, 9}), 0);
}

TEST(TileGrid, ForEachResidentTileClipsBoundsAndUsesFullStride) {
  TileGrid g(5, 20, kSmallTiles);  // edge tiles clipped at channel 4, col 19
  g.slot({4, 18}) = 42;
  std::int32_t seen = 0;
  g.for_each_resident_tile([&](const Rect& bounds, const std::int32_t* cells) {
    ++seen;
    EXPECT_EQ(bounds, Rect::of(4, 4, 16, 19));
    // Storage keeps the full tile_cols stride regardless of clipping.
    EXPECT_EQ(cells[(18 - bounds.x_lo)], 42);
  });
  EXPECT_EQ(seen, 1);
}

/// Mirrored random workload: every mutation lands on both a dense CostArray
/// (initial 0) and a TiledCostArray; every read path must agree, including
/// reads that straddle absent tiles.
TEST(TiledCostArray, RandomOpsMatchDenseReference) {
  constexpr std::int32_t kChannels = 7;
  constexpr std::int32_t kGrids = 53;
  CostArray dense(kChannels, kGrids);
  TiledCostArray tiled(kChannels, kGrids, kSmallTiles);
  Rng rng(2026);
  for (int op = 0; op < 4000; ++op) {
    const GridPoint p{static_cast<std::int32_t>(rng.bounded(kChannels)),
                      static_cast<std::int32_t>(rng.bounded(kGrids))};
    const auto delta = static_cast<std::int32_t>(rng.bounded(21)) - 10;
    if (rng.chance(0.5)) {
      dense.add(p, delta);
      tiled.add(p, delta);
    } else {
      dense.set(p, delta);
      tiled.set(p, delta);
    }
  }
  for (std::int32_t c = 0; c < kChannels; ++c) {
    for (std::int32_t x = 0; x < kGrids; ++x) {
      ASSERT_EQ(tiled.at({c, x}), dense.at({c, x})) << c << "," << x;
      ASSERT_EQ(tiled.read({c, x}), dense.read({c, x}));  // clamp agrees
    }
    EXPECT_EQ(tiled.max_in_channel(c), dense.max_in_channel(c)) << c;
  }
  // Bulk reads across random rects (absent tiles must zero-fill).
  for (int trial = 0; trial < 200; ++trial) {
    const auto c_lo = static_cast<std::int32_t>(rng.bounded(kChannels));
    const auto c_hi = c_lo + static_cast<std::int32_t>(
                                 rng.bounded(kChannels - c_lo));
    const auto x_lo = static_cast<std::int32_t>(rng.bounded(kGrids));
    const auto x_hi =
        x_lo + static_cast<std::int32_t>(rng.bounded(kGrids - x_lo));
    const Rect box = Rect::of(c_lo, c_hi, x_lo, x_hi);
    std::vector<std::int32_t> want;
    std::vector<std::int32_t> got;
    dense.read_rect(box, want);
    tiled.read_rect(box, got);
    ASSERT_EQ(got, want) << "trial " << trial;
    std::vector<std::int32_t> want_rows(want.size());
    std::vector<std::int32_t> got_rows(want.size());
    dense.read_rows(c_lo, c_hi, x_lo, x_hi, want_rows);
    tiled.read_rows(c_lo, c_hi, x_lo, x_hi, got_rows);
    ASSERT_EQ(got_rows, want_rows) << "trial " << trial;
  }
}

TEST(TiledCostArray, MaxInChannelAllNegativeOrAbsent) {
  TiledCostArray tiled(3, 24, kSmallTiles);
  CostArray dense(3, 24);
  EXPECT_EQ(tiled.max_in_channel(0), dense.max_in_channel(0));  // fully absent
  tiled.set({1, 3}, -5);
  dense.set({1, 3}, -5);
  // A resident negative must not beat the implicit zeros of absent tiles.
  EXPECT_EQ(tiled.max_in_channel(1), dense.max_in_channel(1));
}

TEST(TiledCostArray, WriteAddRectAndFillZero) {
  TiledCostArray tiled(4, 32, kSmallTiles);
  CostArray dense(4, 32);
  const Rect box = Rect::of(1, 2, 5, 20);
  std::vector<std::int32_t> values(static_cast<std::size_t>(box.area()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<std::int32_t>(i % 7) - 3;
  }
  tiled.write_rect(box, values);
  dense.write_rect(box, values);
  tiled.add_rect(box, values);
  dense.add_rect(box, values);
  std::vector<std::int32_t> want;
  std::vector<std::int32_t> got;
  dense.read_rect(dense.bounds(), want);
  tiled.read_rect(tiled.bounds(), got);
  EXPECT_EQ(got, want);
  EXPECT_GT(tiled.resident_bytes(), 0);
  tiled.fill(0);
  EXPECT_EQ(tiled.resident_cells(), 0);
  EXPECT_EQ(tiled.at({1, 5}), 0);
}

/// Dense- and tile-backed delta arrays fed the same add stream must agree
/// on bookkeeping, extraction content, and — because the packet-assembly
/// time model reads it — the scan-cells count.
TEST(DeltaArrayTiled, MatchesDenseExtraction) {
  const Partition partition(8, 64, MeshShape::for_procs(4));
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    DeltaArray dense(partition);
    DeltaArray tiled(partition, kSmallTiles);
    for (int i = 0; i < 300; ++i) {
      const GridPoint p{static_cast<std::int32_t>(rng.bounded(8)),
                        static_cast<std::int32_t>(rng.bounded(64))};
      const auto d = static_cast<std::int32_t>(rng.bounded(9)) - 4;
      dense.add(p, d);
      tiled.add(p, d);
    }
    for (ProcId r = 0; r < 4; ++r) {
      ASSERT_EQ(tiled.region_dirty(r), dense.region_dirty(r));
      ASSERT_EQ(tiled.nonzero_count(r), dense.nonzero_count(r));
      std::optional<DeltaArray::Extract> a = dense.extract_region(r);
      const std::int64_t dense_scan = dense.last_scan_cells();
      std::optional<DeltaArray::Extract> b = tiled.extract_region(r);
      ASSERT_EQ(b.has_value(), a.has_value());
      ASSERT_EQ(tiled.last_scan_cells(), dense_scan);
      if (a.has_value()) {
        EXPECT_EQ(b->bbox, a->bbox);
        EXPECT_EQ(b->values, a->values);
      }
      // Extraction clears: both are clean now.
      EXPECT_FALSE(dense.region_dirty(r));
      EXPECT_FALSE(tiled.region_dirty(r));
    }
  }
}

TEST(DeltaArrayTiled, FullCancellationSuppressesExtraction) {
  const Partition partition(8, 64, MeshShape::for_procs(4));
  DeltaArray tiled(partition, kSmallTiles);
  tiled.add({0, 3}, 5);
  tiled.add({1, 10}, -2);
  tiled.add({0, 3}, -5);
  tiled.add({1, 10}, 2);
  EXPECT_FALSE(tiled.extract_region(partition.owner({0, 3})).has_value());
}

/// Block extraction against the single-bbox form on identical delta state:
/// same scan cost, disjoint in-region blocks, and cell-for-cell identical
/// coverage of the nonzero deltas.
TEST(DeltaArrayTiled, RegionBlocksCoverSingleBboxExtraction) {
  const Partition partition(8, 64, MeshShape::for_procs(4));
  Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    DeltaArray whole(partition, kSmallTiles);
    DeltaArray split(partition, kSmallTiles);
    for (int i = 0; i < 250; ++i) {
      const GridPoint p{static_cast<std::int32_t>(rng.bounded(8)),
                        static_cast<std::int32_t>(rng.bounded(64))};
      const auto d = static_cast<std::int32_t>(rng.bounded(9)) - 4;
      whole.add(p, d);
      split.add(p, d);
    }
    for (ProcId r = 0; r < 4; ++r) {
      std::optional<DeltaArray::Extract> single = whole.extract_region(r);
      const std::int64_t single_scan = whole.last_scan_cells();
      std::optional<std::vector<DeltaArray::Extract>> blocks =
          split.extract_region_blocks(r, kSmallTiles);
      ASSERT_EQ(blocks.has_value(), single.has_value());
      ASSERT_EQ(split.last_scan_cells(), single_scan);
      EXPECT_FALSE(split.region_dirty(r));
      if (!single.has_value()) continue;
      // Scatter the block cells into a map; they must be disjoint, inside
      // the region, inside the union bbox, and each block bbox tight enough
      // to be non-empty.
      std::map<std::pair<std::int32_t, std::int32_t>, std::int32_t> from_blocks;
      for (const DeltaArray::Extract& block : *blocks) {
        ASSERT_FALSE(block.bbox.is_empty());
        ASSERT_TRUE(partition.region(r).contains(block.bbox));
        ASSERT_TRUE(single->bbox.contains(block.bbox));
        std::size_t i = 0;
        for (std::int32_t c = block.bbox.channel_lo; c <= block.bbox.channel_hi;
             ++c) {
          for (std::int32_t x = block.bbox.x_lo; x <= block.bbox.x_hi;
               ++x, ++i) {
            const auto [it, inserted] =
                from_blocks.emplace(std::make_pair(c, x), block.values[i]);
            ASSERT_TRUE(inserted) << "blocks overlap at " << c << "," << x;
          }
        }
      }
      // Every nonzero cell of the single extraction appears with the same
      // value; every block cell is within the single bbox with that value.
      std::size_t i = 0;
      for (std::int32_t c = single->bbox.channel_lo;
           c <= single->bbox.channel_hi; ++c) {
        for (std::int32_t x = single->bbox.x_lo; x <= single->bbox.x_hi;
             ++x, ++i) {
          const std::int32_t v = single->values[i];
          const auto it = from_blocks.find({c, x});
          const std::int32_t block_v = it == from_blocks.end() ? 0 : it->second;
          if (v != 0) {
            ASSERT_EQ(block_v, v) << c << "," << x;
          } else {
            ASSERT_EQ(block_v, 0) << c << "," << x;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace locus
