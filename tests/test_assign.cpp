// Tests for wire assignment strategies and the locality measure.
#include <gtest/gtest.h>

#include "assign/assignment.hpp"
#include "assign/locality.hpp"
#include "circuit/generator.hpp"
#include "route/sequential.hpp"

namespace locus {
namespace {

TEST(AssignRoundRobin, DealsWiresCyclically) {
  Circuit c = make_tiny_test_circuit();
  Assignment a = assign_round_robin(c, 4);
  EXPECT_TRUE(assignment_is_valid(a, c));
  for (WireId id = 0; id < c.num_wires(); ++id) {
    EXPECT_EQ(a.proc_of_wire[static_cast<std::size_t>(id)], id % 4);
  }
  EXPECT_NEAR(a.count_imbalance(), 1.0, 0.2);
}

TEST(AssignRoundRobin, SingleProcGetsEverything) {
  Circuit c = make_tiny_test_circuit();
  Assignment a = assign_round_robin(c, 1);
  EXPECT_TRUE(assignment_is_valid(a, c));
  EXPECT_EQ(a.wires_per_proc[0].size(), static_cast<std::size_t>(c.num_wires()));
}

TEST(AssignThreshold, InfinityFollowsLeftmostPin) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment a = assign_threshold_cost(c, part, kThresholdInfinity);
  EXPECT_TRUE(assignment_is_valid(a, c));
  for (const Wire& w : c.wires()) {
    const Pin& leftmost = w.pins.front();
    ProcId expected = part.owner({leftmost.channel_above(), leftmost.x});
    EXPECT_EQ(a.proc_of_wire[static_cast<std::size_t>(w.id)], expected);
  }
}

TEST(AssignThreshold, ShortWiresLocalLongWiresBalanced) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment a = assign_threshold_cost(c, part, 1000);
  EXPECT_TRUE(assignment_is_valid(a, c));
  for (const Wire& w : c.wires()) {
    if (w.assignment_cost() < 1000) {
      const Pin& leftmost = w.pins.front();
      EXPECT_EQ(a.proc_of_wire[static_cast<std::size_t>(w.id)],
                part.owner({leftmost.channel_above(), leftmost.x}));
    }
  }
}

TEST(AssignThreshold, LowerThresholdImprovesBalance) {
  // The paper's tradeoff: more locality (higher threshold) means worse load
  // balance. tc30 must balance at least as well as tc=infinity.
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment tc30 = assign_threshold_cost(c, part, 30);
  Assignment inf = assign_threshold_cost(c, part, kThresholdInfinity);
  EXPECT_LE(tc30.cost_imbalance(c), inf.cost_imbalance(c));
  // And the fully local assignment is measurably imbalanced on the
  // clustered synthetic circuit (this imbalance drives Table 4's time).
  EXPECT_GT(inf.cost_imbalance(c), 1.3);
}

TEST(AssignThreshold, RoutingOrderIsIdOrdered) {
  Circuit c = make_tiny_test_circuit();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(4));
  Assignment a = assign_threshold_cost(c, part, 30);
  for (const auto& list : a.wires_per_proc) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(list[i - 1], list[i]);
    }
  }
}

TEST(AssignmentValidity, DetectsCorruption) {
  Circuit c = make_tiny_test_circuit();
  Assignment a = assign_round_robin(c, 4);
  EXPECT_TRUE(assignment_is_valid(a, c));
  Assignment dup = a;
  dup.wires_per_proc[0].push_back(dup.wires_per_proc[1][0]);
  EXPECT_FALSE(assignment_is_valid(dup, c));
  Assignment mismatched = a;
  mismatched.proc_of_wire[0] = 3;
  if (a.proc_of_wire[0] == 3) mismatched.proc_of_wire[0] = 2;
  EXPECT_FALSE(assignment_is_valid(mismatched, c));
  Assignment missing = a;
  missing.wires_per_proc[0].clear();
  EXPECT_FALSE(assignment_is_valid(missing, c));
}

TEST(Locality, LocalAssignmentBeatsRoundRobin) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  SequentialResult routed = route_sequential(c, {});

  Assignment rr = assign_round_robin(c, 16);
  Assignment local = assign_threshold_cost(c, part, kThresholdInfinity);
  double m_rr = locality_measure(routed.routes, rr, part);
  double m_local = locality_measure(routed.routes, local, part);
  EXPECT_LT(m_local, m_rr);
  // Paper §5.3.3: even the most local assignment cannot reach 0 because
  // long wires span regions; bnrE measured 1.21.
  EXPECT_GT(m_local, 0.3);
  EXPECT_LT(m_local, 2.5);
}

TEST(Locality, EstimateAgreesDirectionally) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment rr = assign_round_robin(c, 16);
  Assignment local = assign_threshold_cost(c, part, kThresholdInfinity);
  EXPECT_LT(locality_estimate(c, local, part), locality_estimate(c, rr, part));
}

TEST(Locality, PerfectLocalityOnSingleProc) {
  Circuit c = make_tiny_test_circuit();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(1));
  SequentialResult routed = route_sequential(c, {});
  Assignment a = assign_round_robin(c, 1);
  EXPECT_DOUBLE_EQ(locality_measure(routed.routes, a, part), 0.0);
}

/// Property sweep: the threshold knob interpolates between balance and
/// locality for any processor count.
class ThresholdProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ThresholdProperty, ValidAcrossThresholds) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(GetParam()));
  for (std::int64_t threshold : {std::int64_t{1}, std::int64_t{30},
                                 std::int64_t{300}, std::int64_t{1000},
                                 kThresholdInfinity}) {
    Assignment a = assign_threshold_cost(c, part, threshold);
    EXPECT_TRUE(assignment_is_valid(a, c)) << "procs=" << GetParam()
                                           << " threshold=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, ThresholdProperty,
                         ::testing::Values(2, 4, 6, 8, 9, 16));

}  // namespace
}  // namespace locus
