// Tests for wire assignment strategies, the locality measure, and the
// wire-affinity index behind locality-aware dynamic scheduling.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "assign/affinity.hpp"
#include "assign/assignment.hpp"
#include "assign/locality.hpp"
#include "circuit/generator.hpp"
#include "route/sequential.hpp"

namespace locus {
namespace {

TEST(AssignRoundRobin, DealsWiresCyclically) {
  Circuit c = make_tiny_test_circuit();
  Assignment a = assign_round_robin(c, 4);
  EXPECT_TRUE(assignment_is_valid(a, c));
  for (WireId id = 0; id < c.num_wires(); ++id) {
    EXPECT_EQ(a.proc_of_wire[static_cast<std::size_t>(id)], id % 4);
  }
  EXPECT_NEAR(a.count_imbalance(), 1.0, 0.2);
}

TEST(AssignRoundRobin, SingleProcGetsEverything) {
  Circuit c = make_tiny_test_circuit();
  Assignment a = assign_round_robin(c, 1);
  EXPECT_TRUE(assignment_is_valid(a, c));
  EXPECT_EQ(a.wires_per_proc[0].size(), static_cast<std::size_t>(c.num_wires()));
}

TEST(AssignThreshold, InfinityFollowsLeftmostPin) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment a = assign_threshold_cost(c, part, kThresholdInfinity);
  EXPECT_TRUE(assignment_is_valid(a, c));
  for (const Wire& w : c.wires()) {
    const Pin& leftmost = w.pins.front();
    ProcId expected = part.owner({leftmost.channel_above(), leftmost.x});
    EXPECT_EQ(a.proc_of_wire[static_cast<std::size_t>(w.id)], expected);
  }
}

TEST(AssignThreshold, ShortWiresLocalLongWiresBalanced) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment a = assign_threshold_cost(c, part, 1000);
  EXPECT_TRUE(assignment_is_valid(a, c));
  for (const Wire& w : c.wires()) {
    if (w.assignment_cost() < 1000) {
      const Pin& leftmost = w.pins.front();
      EXPECT_EQ(a.proc_of_wire[static_cast<std::size_t>(w.id)],
                part.owner({leftmost.channel_above(), leftmost.x}));
    }
  }
}

TEST(AssignThreshold, LowerThresholdImprovesBalance) {
  // The paper's tradeoff: more locality (higher threshold) means worse load
  // balance. tc30 must balance at least as well as tc=infinity.
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment tc30 = assign_threshold_cost(c, part, 30);
  Assignment inf = assign_threshold_cost(c, part, kThresholdInfinity);
  EXPECT_LE(tc30.cost_imbalance(c), inf.cost_imbalance(c));
  // And the fully local assignment is measurably imbalanced on the
  // clustered synthetic circuit (this imbalance drives Table 4's time).
  EXPECT_GT(inf.cost_imbalance(c), 1.3);
}

TEST(AssignThreshold, RoutingOrderIsIdOrdered) {
  Circuit c = make_tiny_test_circuit();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(4));
  Assignment a = assign_threshold_cost(c, part, 30);
  for (const auto& list : a.wires_per_proc) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_LT(list[i - 1], list[i]);
    }
  }
}

TEST(AssignmentValidity, DetectsCorruption) {
  Circuit c = make_tiny_test_circuit();
  Assignment a = assign_round_robin(c, 4);
  EXPECT_TRUE(assignment_is_valid(a, c));
  Assignment dup = a;
  dup.wires_per_proc[0].push_back(dup.wires_per_proc[1][0]);
  EXPECT_FALSE(assignment_is_valid(dup, c));
  Assignment mismatched = a;
  mismatched.proc_of_wire[0] = 3;
  if (a.proc_of_wire[0] == 3) mismatched.proc_of_wire[0] = 2;
  EXPECT_FALSE(assignment_is_valid(mismatched, c));
  Assignment missing = a;
  missing.wires_per_proc[0].clear();
  EXPECT_FALSE(assignment_is_valid(missing, c));
}

TEST(Locality, LocalAssignmentBeatsRoundRobin) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  SequentialResult routed = route_sequential(c, {});

  Assignment rr = assign_round_robin(c, 16);
  Assignment local = assign_threshold_cost(c, part, kThresholdInfinity);
  double m_rr = locality_measure(routed.routes, rr, part);
  double m_local = locality_measure(routed.routes, local, part);
  EXPECT_LT(m_local, m_rr);
  // Paper §5.3.3: even the most local assignment cannot reach 0 because
  // long wires span regions; bnrE measured 1.21.
  EXPECT_GT(m_local, 0.3);
  EXPECT_LT(m_local, 2.5);
}

TEST(Locality, EstimateAgreesDirectionally) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment rr = assign_round_robin(c, 16);
  Assignment local = assign_threshold_cost(c, part, kThresholdInfinity);
  EXPECT_LT(locality_estimate(c, local, part), locality_estimate(c, rr, part));
}

TEST(Locality, PerfectLocalityOnSingleProc) {
  Circuit c = make_tiny_test_circuit();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(1));
  SequentialResult routed = route_sequential(c, {});
  Assignment a = assign_round_robin(c, 1);
  EXPECT_DOUBLE_EQ(locality_measure(routed.routes, a, part), 0.0);
}

TEST(Locality, EstimateTracksMeasureWithinBand) {
  // §5.3.3: the pre-routing bounding-box estimate must land in the same
  // ballpark as the post-route measure — it exists to preview an
  // assignment's locality without routing.
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  SequentialResult routed = route_sequential(c, {});
  for (std::int64_t threshold : {std::int64_t{30}, kThresholdInfinity}) {
    Assignment a = assign_threshold_cost(c, part, threshold);
    const double measured = locality_measure(routed.routes, a, part);
    const double estimated = locality_estimate(c, a, part);
    EXPECT_GT(measured, 0.0);
    EXPECT_GT(estimated, 0.5 * measured) << "threshold=" << threshold;
    EXPECT_LT(estimated, 2.0 * measured) << "threshold=" << threshold;
  }
}

TEST(WireAffinity, BucketsUnderLeftmostPinOwner) {
  // The index's home geography must match assign_threshold_cost(inf):
  // a requester draining only its own bucket gets exactly its static wires.
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  Assignment inf = assign_threshold_cost(c, part, kThresholdInfinity);
  WireAffinityIndex index(c, part);
  for (ProcId p = 0; p < 16; ++p) {
    std::vector<WireId> got;
    // resident = {home} only, radius 1 so nothing roams in from elsewhere
    // once the home bucket is dry... but a dry bucket still yields kNearest
    // wires; cap the batch at the static count instead.
    const auto want = static_cast<std::int32_t>(inf.wires_per_proc[p].size());
    std::vector<ProcId> resident{p};
    WireAffinityIndex::Tier tier;
    const std::int32_t taken = index.take_batch(
        p, resident, want, /*cost_budget=*/0, /*max_hops=*/0, &got, &tier);
    EXPECT_EQ(taken, want);
    if (want > 0) EXPECT_EQ(tier, WireAffinityIndex::Tier::kResident);
    std::sort(got.begin(), got.end());
    std::vector<WireId> expect = inf.wires_per_proc[p];
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect) << "proc " << p;
  }
  EXPECT_EQ(index.remaining(), 0);
}

TEST(WireAffinity, HomePopsExpensiveForeignPopsCheap) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  WireAffinityIndex index(c, part);
  // Find a region with at least two wires of distinct costs.
  Assignment inf = assign_threshold_cost(c, part, kThresholdInfinity);
  ProcId donor = -1;
  for (ProcId p = 0; p < 16; ++p) {
    if (inf.wires_per_proc[p].size() >= 2) { donor = p; break; }
  }
  ASSERT_GE(donor, 0);
  const auto cost = [&](WireId w) { return c.wire(w).assignment_cost(); };
  // Home drains its own bucket from the expensive end.
  std::vector<ProcId> resident{donor};
  const auto home_take = index.take(donor, resident);
  ASSERT_TRUE(home_take.has_value());
  for (WireId w : inf.wires_per_proc[donor]) {
    EXPECT_LE(cost(w), cost(*home_take));
  }
  // A foreign thief whose resident summary names the donor pops the cheap
  // end of the same bucket.
  index.reset();
  const ProcId thief = donor == 0 ? 1 : 0;
  const auto stolen = index.take(thief, resident);
  ASSERT_TRUE(stolen.has_value());
  for (WireId w : inf.wires_per_proc[donor]) {
    EXPECT_GE(cost(w), cost(*stolen));
  }
}

TEST(WireAffinity, CostBudgetBoundsBatchWork) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  WireAffinityIndex index(c, part);
  const std::int64_t budget = 4 * index.mean_wire_cost();
  std::vector<ProcId> none;
  while (index.remaining() > 0) {
    std::vector<WireId> got;
    const std::int32_t taken =
        index.take_batch(0, none, /*count=*/1000, budget, /*max_hops=*/0, &got);
    ASSERT_GT(taken, 0);
    // Every wire but the last must have fit under the budget (the first
    // always pops, and the batch stops once the budget is reached).
    std::int64_t spent = 0;
    for (std::size_t i = 0; i + 1 < got.size(); ++i) {
      spent += c.wire(got[i]).assignment_cost() + 1;
      EXPECT_LT(spent, budget);
    }
  }
}

TEST(WireAffinity, RadiusDefersDistantRequesters) {
  // With max_hops bounding both tiers, a requester whose neighborhood is
  // exhausted gets 0 back while remaining() > 0 — the defer signal the
  // master turns into a parked request.
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  WireAffinityIndex index(c, part);
  // Drain every bucket within 1 hop of proc 0 (a 4x4 mesh corner).
  std::vector<ProcId> none;
  std::vector<WireId> sink;
  while (index.take_batch(0, none, 1000, 0, /*max_hops=*/1, &sink) > 0) {}
  ASSERT_GT(index.remaining(), 0);  // distant buckets still hold wires
  // Find a distant region that still holds untaken wires (its static
  // assignment is nonempty and it sits beyond the radius from proc 0).
  Assignment inf = assign_threshold_cost(c, part, kThresholdInfinity);
  ProcId far_region = -1;
  for (ProcId r = 0; r < 16; ++r) {
    if (part.hop_distance(0, r) > 1 && !inf.wires_per_proc[r].empty()) {
      far_region = r;
    }
  }
  ASSERT_GE(far_region, 0);
  // Proc 0 is now refused (defer), even naming a distant resident region.
  std::vector<WireId> got;
  std::vector<ProcId> resident{far_region};
  EXPECT_EQ(index.take_batch(0, resident, 1, 0, /*max_hops=*/1, &got), 0);
  EXPECT_TRUE(got.empty());
  // The far region's own home requester still drains it — which is why the
  // defer protocol cannot deadlock.
  EXPECT_GT(index.take_batch(far_region, resident, 1, 0, /*max_hops=*/1, &got),
            0);
  // reset() rearms everything.
  index.reset();
  EXPECT_EQ(index.remaining(), c.num_wires());
  EXPECT_GT(index.take_batch(0, none, 1, 0, /*max_hops=*/1, &got), 0);
}

TEST(WireAffinity, DeterministicPopOrder) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(16));
  std::vector<WireId> first, second;
  for (std::vector<WireId>* out : {&first, &second}) {
    WireAffinityIndex index(c, part);
    std::vector<ProcId> resident{3, 7};
    std::vector<WireId> got;
    while (index.take_batch(5, resident, 3, 2 * index.mean_wire_cost(),
                            /*max_hops=*/0, &got) > 0) {}
    *out = got;
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), static_cast<std::size_t>(c.num_wires()));
}

/// Property sweep: the threshold knob interpolates between balance and
/// locality for any processor count.
class ThresholdProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(ThresholdProperty, ValidAcrossThresholds) {
  Circuit c = make_bnre_like();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(GetParam()));
  for (std::int64_t threshold : {std::int64_t{1}, std::int64_t{30},
                                 std::int64_t{300}, std::int64_t{1000},
                                 kThresholdInfinity}) {
    Assignment a = assign_threshold_cost(c, part, threshold);
    EXPECT_TRUE(assignment_is_valid(a, c)) << "procs=" << GetParam()
                                           << " threshold=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Procs, ThresholdProperty,
                         ::testing::Values(2, 4, 6, 8, 9, 16));

}  // namespace
}  // namespace locus
