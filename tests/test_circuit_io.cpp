// Tests for the .ckt text format: round trips and rejection of every
// malformed-input class with the right line number.
#include <gtest/gtest.h>

#include <sstream>

#include "circuit/generator.hpp"
#include "circuit/io.hpp"

namespace locus {
namespace {

Circuit parse(const std::string& text) {
  std::istringstream in(text);
  return read_circuit(in);
}

TEST(CircuitIo, ParsesMinimalCircuit) {
  Circuit c = parse(
      "circuit demo 4 20\n"
      "wire 2\n"
      "pin 3 0\n"
      "pin 9 2\n"
      "end\n");
  EXPECT_EQ(c.name(), "demo");
  EXPECT_EQ(c.channels(), 4);
  EXPECT_EQ(c.grids(), 20);
  ASSERT_EQ(c.num_wires(), 1);
  EXPECT_EQ(c.wire(0).pins.size(), 2u);
}

TEST(CircuitIo, IgnoresCommentsAndBlankLines) {
  Circuit c = parse(
      "# a header comment\n"
      "\n"
      "circuit demo 4 20   # trailing comment\n"
      "  wire 2\n"
      "\tpin 3 0\n"
      "pin 9 2 # pin comment\n"
      "end\n");
  EXPECT_EQ(c.num_wires(), 1);
}

TEST(CircuitIo, RoundTripsGeneratedCircuits) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    Circuit original = make_tiny_test_circuit(seed);
    std::ostringstream out;
    write_circuit(out, original);
    Circuit parsed = parse(out.str());
    EXPECT_EQ(parsed.name(), original.name());
    EXPECT_EQ(parsed.channels(), original.channels());
    EXPECT_EQ(parsed.grids(), original.grids());
    ASSERT_EQ(parsed.num_wires(), original.num_wires());
    for (WireId i = 0; i < original.num_wires(); ++i) {
      EXPECT_EQ(parsed.wire(i).pins, original.wire(i).pins);
    }
    // Canonical output is stable: write(read(s)) == s.
    std::ostringstream again;
    write_circuit(again, parsed);
    EXPECT_EQ(again.str(), out.str());
  }
}

TEST(CircuitIo, FileRoundTrip) {
  Circuit original = make_tiny_test_circuit();
  const std::string path = ::testing::TempDir() + "/roundtrip.ckt";
  write_circuit_file(path, original);
  Circuit parsed = read_circuit_file(path);
  EXPECT_EQ(parsed.num_wires(), original.num_wires());
}

TEST(CircuitIo, MissingFileThrows) {
  EXPECT_THROW(read_circuit_file("/nonexistent/nope.ckt"), std::runtime_error);
}

struct BadInput {
  const char* label;
  const char* text;
  int line;
};

class CircuitIoErrors : public ::testing::TestWithParam<BadInput> {};

TEST_P(CircuitIoErrors, RejectsWithLineNumber) {
  const BadInput& bad = GetParam();
  try {
    parse(bad.text);
    FAIL() << bad.label << ": expected CircuitParseError";
  } catch (const CircuitParseError& e) {
    EXPECT_EQ(e.line(), bad.line) << bad.label << ": " << e.what();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CircuitIoErrors,
    ::testing::Values(
        BadInput{"no header", "wire 2\npin 0 0\npin 1 0\nend\n", 1},
        BadInput{"bad header", "circuit x\n", 1},
        BadInput{"bad dims", "circuit x 1 20\nend\n", 1},
        BadInput{"dup header", "circuit x 4 20\ncircuit y 4 20\nend\n", 2},
        BadInput{"pin outside wire", "circuit x 4 20\npin 0 0\nend\n", 2},
        BadInput{"pin out of range", "circuit x 4 20\nwire 2\npin 25 0\n", 3},
        BadInput{"pin row out of range", "circuit x 4 20\nwire 2\npin 5 3\n", 3},
        BadInput{"too many pins",
                 "circuit x 4 20\nwire 2\npin 0 0\npin 1 0\npin 2 0\nend\n", 5},
        BadInput{"too few pins",
                 "circuit x 4 20\nwire 3\npin 0 0\npin 1 0\nwire 2\n", 5},
        BadInput{"one-pin wire", "circuit x 4 20\nwire 1\npin 0 0\nend\n", 2},
        BadInput{"unknown keyword", "circuit x 4 20\nfrob 1\nend\n", 2},
        BadInput{"missing end", "circuit x 4 20\nwire 2\npin 0 0\npin 1 0\n", 4},
        BadInput{"last wire incomplete", "circuit x 4 20\nwire 2\npin 0 0\nend\n",
                 4}),
    [](const ::testing::TestParamInfo<BadInput>& param_info) {
      std::string name = param_info.param.label;
      for (char& ch : name) {
        if (ch == ' ' || ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace locus
