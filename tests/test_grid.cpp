// Tests for the cost array and the delta array (dirty tracking, bounding
// boxes, extraction, and the rip-up/re-route cancellation property).
#include <gtest/gtest.h>

#include "grid/cost_array.hpp"
#include "grid/delta_array.hpp"
#include "support/rng.hpp"

namespace locus {
namespace {

TEST(CostArray, StartsAtInitialValue) {
  CostArray a(3, 5, 7);
  for (std::int32_t c = 0; c < 3; ++c) {
    for (std::int32_t x = 0; x < 5; ++x) {
      EXPECT_EQ(a.at({c, x}), 7);
    }
  }
}

TEST(CostArray, AddAndRead) {
  CostArray a(3, 5);
  a.add({1, 2}, 3);
  a.add({1, 2}, -1);
  EXPECT_EQ(a.at({1, 2}), 2);
  EXPECT_EQ(a.read({1, 2}), 2);
  EXPECT_EQ(a.at({0, 0}), 0);
}

TEST(CostArray, ReadClampsNegativeValues) {
  CostArray a(2, 2);
  a.add({0, 0}, -5);
  EXPECT_EQ(a.at({0, 0}), -5);  // raw value preserved
  EXPECT_EQ(a.read({0, 0}), 0); // routing-decision read clamps
}

TEST(CostArray, IndexIsRowMajor) {
  CostArray a(3, 10);
  EXPECT_EQ(a.index({0, 0}), 0);
  EXPECT_EQ(a.index({0, 9}), 9);
  EXPECT_EQ(a.index({1, 0}), 10);
  EXPECT_EQ(a.index({2, 7}), 27);
}

TEST(CostArray, RectRoundTrip) {
  CostArray a(4, 8);
  Rect box = Rect::of(1, 2, 3, 6);
  std::vector<std::int32_t> values(static_cast<std::size_t>(box.area()));
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = static_cast<int>(i) + 1;
  a.write_rect(box, values);
  std::vector<std::int32_t> out;
  a.read_rect(box, out);
  EXPECT_EQ(out, values);
  EXPECT_EQ(a.at({1, 3}), 1);
  EXPECT_EQ(a.at({2, 6}), 8);
  EXPECT_EQ(a.at({0, 3}), 0);  // outside the box untouched
}

TEST(CostArray, AddRectAccumulates) {
  CostArray a(4, 8, 1);
  Rect box = Rect::of(0, 1, 0, 1);
  std::vector<std::int32_t> deltas = {1, 2, 3, 4};
  a.add_rect(box, deltas);
  EXPECT_EQ(a.at({0, 0}), 2);
  EXPECT_EQ(a.at({0, 1}), 3);
  EXPECT_EQ(a.at({1, 0}), 4);
  EXPECT_EQ(a.at({1, 1}), 5);
}

TEST(CostArray, MaxInChannel) {
  CostArray a(2, 4);
  a.set({0, 2}, 9);
  a.set({1, 0}, 3);
  EXPECT_EQ(a.max_in_channel(0), 9);
  EXPECT_EQ(a.max_in_channel(1), 3);
}

TEST(CostArray, EqualityComparesCells) {
  CostArray a(2, 2), b(2, 2);
  EXPECT_TRUE(a == b);
  b.add({1, 1}, 1);
  EXPECT_FALSE(a == b);
}

class DeltaArrayTest : public ::testing::Test {
 protected:
  DeltaArrayTest() : part_(6, 40, MeshShape{2, 2}), delta_(part_) {}
  Partition part_;
  DeltaArray delta_;
};

TEST_F(DeltaArrayTest, StartsClean) {
  for (ProcId r = 0; r < 4; ++r) {
    EXPECT_FALSE(delta_.region_dirty(r));
    EXPECT_TRUE(delta_.dirty_bbox(r).is_empty());
    EXPECT_EQ(delta_.nonzero_count(r), 0);
  }
}

TEST_F(DeltaArrayTest, AddMarksOwningRegionOnly) {
  GridPoint p{0, 0};  // region 0
  delta_.add(p, 1);
  EXPECT_TRUE(delta_.region_dirty(0));
  EXPECT_FALSE(delta_.region_dirty(1));
  EXPECT_FALSE(delta_.region_dirty(2));
  EXPECT_EQ(delta_.at(p), 1);
}

TEST_F(DeltaArrayTest, CancellationCleansRegion) {
  // The rip-up/re-route cancellation the paper credits for the traffic gap:
  // +1 then -1 on the same cell leaves nothing to send.
  GridPoint p{1, 5};
  delta_.add(p, 1);
  EXPECT_TRUE(delta_.region_dirty(0));
  delta_.add(p, -1);
  EXPECT_FALSE(delta_.region_dirty(0));
  EXPECT_TRUE(delta_.dirty_bbox(0).is_empty());
  EXPECT_FALSE(delta_.extract_region(0).has_value());
}

TEST_F(DeltaArrayTest, ExtractReturnsTightBboxAndClears) {
  delta_.add({0, 2}, 1);
  delta_.add({2, 8}, -2);
  // Conservative bbox covers both; extraction tightens to exactly them.
  auto extract = delta_.extract_region(0);
  ASSERT_TRUE(extract.has_value());
  EXPECT_EQ(extract->bbox, Rect::of(0, 2, 2, 8));
  EXPECT_EQ(extract->values.size(), static_cast<std::size_t>(3 * 7));
  EXPECT_EQ(extract->values.front(), 1);   // (0,2)
  EXPECT_EQ(extract->values.back(), -2);   // (2,8)
  EXPECT_FALSE(delta_.region_dirty(0));
  EXPECT_EQ(delta_.at({0, 2}), 0);
}

TEST_F(DeltaArrayTest, BboxTightensAfterPartialCancellation) {
  delta_.add({0, 0}, 1);
  delta_.add({2, 9}, 1);
  delta_.add({2, 9}, -1);  // outer corner cancels
  ASSERT_TRUE(delta_.region_dirty(0));
  auto extract = delta_.extract_region(0);
  ASSERT_TRUE(extract.has_value());
  EXPECT_EQ(extract->bbox, Rect::single({0, 0}));  // tightened by the scan
}

TEST_F(DeltaArrayTest, ScanCostReported) {
  delta_.add({0, 0}, 1);
  delta_.add({1, 10}, 1);
  delta_.extract_region(0);
  // Conservative box spans channels 0..1, x 0..10 => 22 cells scanned.
  EXPECT_EQ(delta_.last_scan_cells(), 22);
}

TEST_F(DeltaArrayTest, RegionsAreIndependent) {
  delta_.add({0, 0}, 1);    // region 0
  delta_.add({0, 25}, 1);   // region 1 (x >= 20)
  delta_.add({4, 0}, 1);    // region 2 (channel >= 3)
  EXPECT_TRUE(delta_.region_dirty(0));
  EXPECT_TRUE(delta_.region_dirty(1));
  EXPECT_TRUE(delta_.region_dirty(2));
  delta_.extract_region(1);
  EXPECT_TRUE(delta_.region_dirty(0));
  EXPECT_FALSE(delta_.region_dirty(1));
  EXPECT_TRUE(delta_.region_dirty(2));
}

/// Property: against a naive mirror model, dirty flags, counts and extracted
/// values always agree, for random operation sequences.
class DeltaArrayProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaArrayProperty, AgreesWithMirrorModel) {
  Partition part(8, 32, MeshShape{2, 2});
  DeltaArray delta(part);
  std::vector<std::int32_t> mirror(8 * 32, 0);
  Rng rng(GetParam());

  for (int step = 0; step < 2000; ++step) {
    GridPoint p{static_cast<std::int32_t>(rng.bounded(8)),
                static_cast<std::int32_t>(rng.bounded(32))};
    std::int32_t d = rng.chance(0.5) ? 1 : -1;
    delta.add(p, d);
    mirror[static_cast<std::size_t>(p.channel) * 32 + p.x] += d;

    if (step % 97 == 0) {
      ProcId region = static_cast<ProcId>(rng.bounded(4));
      std::int64_t nonzero = 0;
      const Rect& r = part.region(region);
      for (std::int32_t c = r.channel_lo; c <= r.channel_hi; ++c) {
        for (std::int32_t x = r.x_lo; x <= r.x_hi; ++x) {
          if (mirror[static_cast<std::size_t>(c) * 32 + x] != 0) ++nonzero;
        }
      }
      ASSERT_EQ(delta.nonzero_count(region), nonzero);
      ASSERT_EQ(delta.region_dirty(region), nonzero > 0);
      auto extract = delta.extract_region(region);
      ASSERT_EQ(extract.has_value(), nonzero > 0);
      if (extract) {
        // Apply extraction to the mirror: those deltas are now propagated.
        std::size_t i = 0;
        for (std::int32_t c = extract->bbox.channel_lo; c <= extract->bbox.channel_hi;
             ++c) {
          for (std::int32_t x = extract->bbox.x_lo; x <= extract->bbox.x_hi;
               ++x, ++i) {
            ASSERT_EQ(extract->values[i],
                      mirror[static_cast<std::size_t>(c) * 32 + x]);
            mirror[static_cast<std::size_t>(c) * 32 + x] = 0;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaArrayProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace locus
