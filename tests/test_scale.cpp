// Scale-tier smoke tests (`ctest -L scale`): the nightly lane's proof that
// a 10k-wire hierarchical circuit routes to completion at 64 virtual
// processors with sharded views and region-batched updates. Heavier than
// the tier-1 suite, lighter than the 100k-wire acceptance run the scale
// bench performs; skipped in Debug builds where the unoptimized router
// would dominate the lane's time budget.
#include <gtest/gtest.h>

#include <cstdint>

#include "circuit/hier_generator.hpp"
#include "harness/experiments.hpp"
#include "msg/driver.hpp"

namespace locus {
namespace {

TEST(ScaleSmoke, TenKWiresAt64ProcsRoutesToCompletion) {
#ifndef NDEBUG
  GTEST_SKIP() << "Release-only: 10k-wire routing is a scale-lane smoke";
#endif
  const Circuit circuit = make_scale_circuit(10'000, /*seed=*/0x5CA1EULL);
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 10);
  config.shard.enabled = true;
  config.shard.batch_updates = true;
  // Finer tiles than the default 4x512: a 10k-wire chip is only ~80k cells,
  // so coarse tiles would round most views up to the whole grid and the
  // memory-boundedness assertion below would measure rounding, not reach.
  config.shard.tile = TileDims{2, 128};
  const MpRunResult r = run_message_passing(circuit, /*procs=*/64, config);
  EXPECT_EQ(static_cast<std::int32_t>(r.routes.size()), circuit.num_wires());
  for (const WireRoute& route : r.routes) {
    EXPECT_FALSE(route.cells.empty()) << "wire " << route.wire;
  }
  EXPECT_GT(r.circuit_height, 0);
  EXPECT_GT(r.completion_ns, 0);
  EXPECT_GT(r.bytes_transferred, 0u);
  // The sharded views must actually be sparse: total resident cells stay
  // below what 64 dense views would allocate.
  const std::int64_t dense_cells = std::int64_t{64} * circuit.channels() *
                                   circuit.grids();
  EXPECT_GT(r.view_resident_cells, 0);
  EXPECT_LT(r.view_resident_cells, dense_cells);
}

TEST(ScaleSmoke, SweepCovers16To64Procs) {
#ifndef NDEBUG
  GTEST_SKIP() << "Release-only: 10k-wire routing is a scale-lane smoke";
#endif
  ScaleSweepOptions options;
  options.wire_counts = {10'000};
  options.proc_counts = {16, 64};
  const ScaleSweepResult result = run_scale_sweep(options);
  EXPECT_GT(result.headline_route_rps, 0.0);
  EXPECT_GT(result.headline_traffic_bytes, 0u);
  EXPECT_GT(result.headline_resident_bytes, 0);
  EXPECT_GT(result.headline_circuit_height, 0);
}

}  // namespace
}  // namespace locus
