// Additional simulator coverage: resume-supersede logic, interleaved
// compute/communication patterns, torus/hypercube topologies through the
// message passing driver, and network statistics invariants.
#include <gtest/gtest.h>

#include <memory>

#include "circuit/generator.hpp"
#include "msg/driver.hpp"
#include "sim/machine.hpp"

namespace locus {
namespace {

/// Echo server: replies to every packet with the same byte count.
class Echo : public Node {
 public:
  void on_packet(NodeApi& api, const Packet& packet) override {
    api.advance(100);
    api.send(packet.src, packet.type + 100, packet.bytes, nullptr);
    ++served_;
  }
  bool on_step(NodeApi&) override { return false; }
  int served() const { return served_; }

 private:
  int served_ = 0;
};

/// Sends `count` pings spaced by compute, records echo arrival times.
class Pinger : public Node {
 public:
  Pinger(ProcId dst, int count) : dst_(dst), count_(count) {}
  void on_packet(NodeApi& api, const Packet&) override {
    echoes_.push_back(api.now());
  }
  bool on_step(NodeApi& api) override {
    if (sent_ >= count_) return false;
    ++sent_;
    api.advance(5000);
    api.send(dst_, 1, 32, nullptr);
    return true;
  }
  const std::vector<SimTime>& echoes() const { return echoes_; }

 private:
  ProcId dst_;
  int count_;
  int sent_ = 0;
  std::vector<SimTime> echoes_;
};

TEST(MachineExtra, PingPongRoundTrips) {
  Machine m(Topology({2, 1}, Topology::Edges::kMesh), {});
  auto pinger = std::make_unique<Pinger>(1, 5);
  Pinger* p = pinger.get();
  auto echo = std::make_unique<Echo>();
  Echo* e = echo.get();
  m.set_node(0, std::move(pinger));
  m.set_node(1, std::move(echo));
  m.run();
  EXPECT_EQ(e->served(), 5);
  ASSERT_EQ(p->echoes().size(), 5u);
  for (std::size_t i = 1; i < p->echoes().size(); ++i) {
    EXPECT_GT(p->echoes()[i], p->echoes()[i - 1]);
  }
}

TEST(MachineExtra, NodeAccessorReturnsProgram) {
  Machine m(Topology({2, 1}, Topology::Edges::kMesh), {});
  m.set_node(0, std::make_unique<Echo>());
  m.set_node(1, std::make_unique<Echo>());
  m.run();
  EXPECT_NE(dynamic_cast<Echo*>(m.node(0)), nullptr);
  EXPECT_NE(dynamic_cast<Echo*>(m.node(1)), nullptr);
}

TEST(MachineExtra, DrainTimeCoversTrailingDeliveries) {
  Machine m(Topology({2, 1}, Topology::Edges::kMesh), {});
  m.set_node(0, std::make_unique<Pinger>(1, 1));
  m.set_node(1, std::make_unique<Echo>());
  MachineStats stats = m.run();
  EXPECT_GE(stats.drain_time, stats.completion_time);
}

TEST(TopologyOverride, HypercubeRunsAndMatchesMeshQualityClosely) {
  Circuit c = make_bnre_like();
  MpConfig mesh_config;
  mesh_config.schedule = UpdateSchedule::sender(2, 10);
  MpConfig cube_config = mesh_config;
  cube_config.topology_dims = {2, 2, 2, 2};
  cube_config.edges = Topology::Edges::kTorus;
  MpRunResult mesh = run_message_passing(c, 16, mesh_config);
  MpRunResult cube = run_message_passing(c, 16, cube_config);
  // Same update information flows; only transport distances differ.
  EXPECT_EQ(mesh.bytes_transferred, cube.bytes_transferred);
  EXPECT_NEAR(static_cast<double>(mesh.circuit_height),
              static_cast<double>(cube.circuit_height), 6.0);
  // Hypercube diameter 4 < mesh diameter 6: byte-hops cannot be much worse.
  EXPECT_LT(cube.network.byte_hops, mesh.network.byte_hops * 3 / 2);
}

TEST(TopologyOverride, RingStretchesByteHops) {
  Circuit c = make_tiny_test_circuit();
  MpConfig mesh_config;
  mesh_config.schedule = UpdateSchedule::sender(2, 5);
  MpConfig ring_config = mesh_config;
  ring_config.topology_dims = {4};
  ring_config.edges = Topology::Edges::kTorus;
  MpRunResult mesh = run_message_passing(c, 4, mesh_config);
  MpRunResult ring = run_message_passing(c, 4, ring_config);
  EXPECT_EQ(mesh.bytes_transferred, ring.bytes_transferred);
}

TEST(TopologyOverride, WrongProductDies) {
  Circuit c = make_tiny_test_circuit();
  MpConfig config;
  config.topology_dims = {3, 2};  // 6 != 4 procs
  EXPECT_DEATH(run_message_passing(c, 4, config), "topology_dims");
}

TEST(NetworkInvariants, ByteHopsAtLeastBytes) {
  Circuit c = make_tiny_test_circuit();
  MpConfig config;
  config.schedule = UpdateSchedule::sender(1, 1);
  MpRunResult r = run_message_passing(c, 4, config);
  EXPECT_GE(r.network.byte_hops, r.network.bytes);
  // Per-type accounting sums to the total.
  std::uint64_t sum = 0;
  for (const auto& [type, bytes] : r.network.bytes_by_type) sum += bytes;
  EXPECT_EQ(sum, r.network.bytes);
}

TEST(NetworkInvariants, LatencyPositiveWhenTrafficFlows) {
  Circuit c = make_tiny_test_circuit();
  MpConfig config;
  config.schedule = UpdateSchedule::sender(1, 1);
  MpRunResult r = run_message_passing(c, 4, config);
  ASSERT_GT(r.network.packets, 0u);
  EXPECT_GT(r.network.total_latency_ns, 0);
  EXPECT_GE(r.network.hops, r.network.packets);  // at least one hop each
}

}  // namespace
}  // namespace locus
