// Tests for route geometry, candidate exploration, the wire router and the
// quality metrics.
#include <gtest/gtest.h>

#include <set>

#include "circuit/generator.hpp"
#include "grid/cost_array.hpp"
#include "route/explorer.hpp"
#include "route/path.hpp"
#include "route/quality.hpp"
#include "route/router.hpp"
#include "route/sequential.hpp"

namespace locus {
namespace {

TEST(Route, CellEnumerationVisitsJunctionsOnce) {
  Route r;
  r.append({{0, 0}, {0, 3}});  // horizontal: 4 cells
  r.append({{0, 3}, {2, 3}});  // vertical: 3 cells, shares (0,3)
  std::vector<GridPoint> cells;
  r.for_each_cell([&](GridPoint p) { cells.push_back(p); });
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells.front(), (GridPoint{0, 0}));
  EXPECT_EQ(cells.back(), (GridPoint{2, 3}));
  std::set<GridPoint> unique(cells.begin(), cells.end());
  EXPECT_EQ(unique.size(), cells.size());
  EXPECT_EQ(r.cell_count(), 6);
}

TEST(Route, ZeroLengthSegmentsAreSingleCells) {
  Route r;
  r.append({{1, 1}, {1, 1}});
  EXPECT_EQ(r.cell_count(), 1);
}

TEST(Route, BboxCoversAllSegments) {
  Route r;
  r.append({{2, 5}, {0, 5}});
  r.append({{0, 5}, {0, 9}});
  EXPECT_EQ(r.bbox(), Rect::of(0, 2, 5, 9));
}

TEST(Route, CollectUniqueCellsDeduplicatesAcrossRoutes) {
  Route a;
  a.append({{0, 0}, {0, 4}});
  Route b;
  b.append({{0, 2}, {0, 6}});
  auto cells = collect_unique_cells({a, b});
  EXPECT_EQ(cells.size(), 7u);  // 0..6, overlap 2..4 once
}

TEST(Explorer, PrefersEmptyChannel) {
  CostArray cost(4, 20);
  // Make channel 1 expensive; pins sit on row 0 (channels 0/1).
  for (std::int32_t x = 0; x < 20; ++x) cost.set({1, x}, 10);
  Pin a{2, 0}, b{12, 0};
  ExploreResult res = explore_connection(a, b, 4, cost, {});
  // The cheapest single-channel route runs in channel 0.
  for (const Segment& seg : res.route.segments()) {
    if (seg.horizontal() && seg.length() > 1) {
      EXPECT_EQ(seg.from.channel, 0);
    }
  }
  EXPECT_EQ(res.cost, 0);
}

TEST(Explorer, RouteConnectsThePins) {
  CostArray cost(6, 30);
  Pin a{3, 0}, b{25, 4};
  ExploreResult res = explore_connection(a, b, 6, cost, {});
  ASSERT_FALSE(res.route.empty());
  const Segment& first = res.route.segments().front();
  const Segment& last = res.route.segments().back();
  EXPECT_EQ(first.from.x, a.x);
  EXPECT_TRUE(first.from.channel == a.channel_above() ||
              first.from.channel == a.channel_below());
  EXPECT_EQ(last.to.x, b.x);
  EXPECT_TRUE(last.to.channel == b.channel_above() ||
              last.to.channel == b.channel_below());
}

TEST(Explorer, UsesZRouteAroundCongestion) {
  CostArray cost(4, 40);
  // Block the middle of every same-channel straight path except a window
  // that requires jogging between channels.
  for (std::int32_t c = 0; c < 4; ++c) {
    for (std::int32_t x = 15; x <= 25; ++x) {
      if (!(c == 2 && x >= 18 && x <= 22)) cost.set({c, x}, 50);
    }
  }
  Pin a{5, 0}, b{35, 0};
  ExploreResult res = explore_connection(a, b, 4, cost, {});
  // A straight channel-0 route would cost >= 11 * 50; the Z route through
  // the channel-2 window is far cheaper.
  EXPECT_LT(res.cost, 550);
}

TEST(Explorer, CountsProbesAndRoutes) {
  CostArray cost(4, 20);
  Pin a{0, 0}, b{10, 2};
  ExploreResult res = explore_connection(a, b, 4, cost, {});
  EXPECT_GT(res.stats.routes_evaluated, 4);
  EXPECT_GT(res.stats.cells_probed, 20);
}

TEST(Explorer, DeterministicTieBreak) {
  CostArray cost(4, 20);
  Pin a{2, 1}, b{14, 1};
  ExploreResult r1 = explore_connection(a, b, 4, cost, {});
  ExploreResult r2 = explore_connection(a, b, 4, cost, {});
  EXPECT_EQ(r1.route.segments(), r2.route.segments());
  EXPECT_EQ(r1.cost, r2.cost);
}

TEST(Explorer, BendPenaltyDiscouragesZRoutes) {
  CostArray cost(4, 30);
  Pin a{0, 0}, b{20, 0};
  ExplorerParams straight_biased;
  straight_biased.bend_penalty = 100;
  ExploreResult res = explore_connection(a, b, 4, cost, straight_biased);
  // With empty cost and a heavy bend penalty, the straight route wins and
  // carries no penalty beyond its (zero) occupancy.
  EXPECT_EQ(res.cost, 0);
}

TEST(Explorer, ChannelSlackWidensSearch) {
  CostArray cost(6, 20);
  Pin a{2, 2}, b{15, 2};  // pins use channels 2/3
  ExplorerParams narrow;
  narrow.channel_slack = 0;
  ExplorerParams wide;
  wide.channel_slack = 2;
  ExploreResult rn = explore_connection(a, b, 6, cost, narrow);
  ExploreResult rw = explore_connection(a, b, 6, cost, wide);
  EXPECT_GT(rw.stats.routes_evaluated, rn.stats.routes_evaluated);
}

TEST(Router, CommitIncrementsExactlyRouteCells) {
  Circuit c("t", 4, 20, {[] {
              Wire w;
              w.pins = {{2, 0}, {15, 2}};
              return w;
            }()});
  CostArray cost(4, 20);
  WireRouter router(4, {});
  RouteWorkStats stats;
  WireRoute route = router.route_wire(c.wire(0), cost, stats);
  std::int64_t total = 0;
  for (std::int32_t ch = 0; ch < 4; ++ch) {
    for (std::int32_t x = 0; x < 20; ++x) total += cost.at({ch, x});
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(route.cells.size()));
  for (const GridPoint& p : route.cells) {
    EXPECT_EQ(cost.at(p), 1);
  }
}

TEST(Router, RipUpRestoresArray) {
  Circuit c = make_tiny_test_circuit();
  CostArray cost(c.channels(), c.grids());
  CostArray empty(c.channels(), c.grids());
  WireRouter router(c.channels(), {});
  RouteWorkStats stats;
  std::vector<WireRoute> routes;
  for (const Wire& w : c.wires()) {
    routes.push_back(router.route_wire(w, cost, stats));
  }
  EXPECT_FALSE(cost == empty);
  for (const WireRoute& r : routes) {
    WireRouter::rip_up(r, cost);
  }
  EXPECT_TRUE(cost == empty);
}

TEST(Router, MultiPinWireCellsAreUnique) {
  Circuit c("t", 6, 40, {[] {
              Wire w;
              w.pins = {{5, 0}, {15, 2}, {25, 4}, {35, 1}};
              return w;
            }()});
  CostArray cost(6, 40);
  WireRouter router(6, {});
  RouteWorkStats stats;
  WireRoute route = router.route_wire(c.wire(0), cost, stats);
  std::set<GridPoint> unique(route.cells.begin(), route.cells.end());
  EXPECT_EQ(unique.size(), route.cells.size());
  EXPECT_EQ(route.connections.size(), 3u);
}

TEST(Router, PathCostReflectsOccupancyAtDecisionTime) {
  Circuit c("t", 4, 20, {[] {
              Wire w;
              w.pins = {{2, 1}, {10, 1}};
              return w;
            }()});
  CostArray cost(4, 20, 3);  // uniform occupancy 3
  WireRouter router(4, {});
  RouteWorkStats stats;
  WireRoute route = router.route_wire(c.wire(0), cost, stats);
  EXPECT_EQ(route.path_cost,
            static_cast<std::int64_t>(route.cells.size()) * 3);
}

TEST(Quality, CircuitHeightSumsChannelMaxima) {
  CostArray cost(3, 10);
  cost.set({0, 4}, 5);
  cost.set({1, 1}, 2);
  cost.set({1, 9}, 7);
  EXPECT_EQ(circuit_height(cost), 5 + 7 + 0);
  auto profile = track_profile(cost);
  EXPECT_EQ(profile, (std::vector<std::int32_t>{5, 7, 0}));
}

TEST(Quality, RebuildMatchesIncrementalMaintenance) {
  Circuit c = make_tiny_test_circuit();
  SequentialResult r = route_sequential(c, {});
  CostArray rebuilt = rebuild_cost(c.channels(), c.grids(), r.routes);
  EXPECT_TRUE(rebuilt == r.cost);
  EXPECT_EQ(circuit_height(c.channels(), c.grids(), r.routes), r.circuit_height);
}

TEST(Sequential, RoutesEveryWire) {
  Circuit c = make_tiny_test_circuit();
  SequentialResult r = route_sequential(c, {});
  ASSERT_EQ(r.routes.size(), static_cast<std::size_t>(c.num_wires()));
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_GT(r.circuit_height, 0);
  EXPECT_GT(r.occupancy_factor, 0);
  EXPECT_EQ(r.work.wires_routed, c.num_wires() * 2);  // two iterations
}

TEST(Sequential, Deterministic) {
  Circuit c = make_tiny_test_circuit();
  SequentialResult a = route_sequential(c, {});
  SequentialResult b = route_sequential(c, {});
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.occupancy_factor, b.occupancy_factor);
  EXPECT_EQ(a.work.probes, b.work.probes);
}

TEST(Sequential, MoreIterationsDoNotWreckQuality) {
  // Rip-up and re-route should keep quality stable or improve it; allow a
  // small tolerance for local oscillation on the tiny circuit.
  Circuit c = make_tiny_test_circuit();
  SequentialParams one;
  one.iterations = 1;
  SequentialParams four;
  four.iterations = 4;
  SequentialResult r1 = route_sequential(c, one);
  SequentialResult r4 = route_sequential(c, four);
  EXPECT_LE(r4.circuit_height, r1.circuit_height + 2);
}

/// Property sweep: router invariants hold across seeds and circuit shapes.
class RouterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterProperty, CellsWithinBoundsAndConnected) {
  Circuit c = make_tiny_test_circuit(GetParam());
  CostArray cost(c.channels(), c.grids());
  WireRouter router(c.channels(), {});
  RouteWorkStats stats;
  for (const Wire& w : c.wires()) {
    WireRoute route = router.route_wire(w, cost, stats);
    ASSERT_FALSE(route.cells.empty());
    for (const GridPoint& p : route.cells) {
      ASSERT_GE(p.channel, 0);
      ASSERT_LT(p.channel, c.channels());
      ASSERT_GE(p.x, 0);
      ASSERT_LT(p.x, c.grids());
    }
    // Each connection's endpoints touch its pins' columns.
    ASSERT_EQ(route.connections.size(), w.pins.size() - 1);
    for (std::size_t i = 0; i < route.connections.size(); ++i) {
      const Route& conn = route.connections[i];
      ASSERT_FALSE(conn.empty());
      EXPECT_EQ(conn.segments().front().from.x, w.pins[i].x);
      EXPECT_EQ(conn.segments().back().to.x, w.pins[i + 1].x);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterProperty,
                         ::testing::Values(1, 4, 9, 16, 25, 36, 49, 64));

}  // namespace
}  // namespace locus
