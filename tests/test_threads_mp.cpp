// Tests for the native-threads message passing backend.
#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "msg/driver.hpp"
#include "msg/threads_mp.hpp"
#include "route/quality.hpp"

namespace locus {
namespace {

ThreadsMpResult run_native(const Circuit& circuit, std::int32_t procs) {
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(procs));
  const Assignment assignment = assign_threshold_cost(circuit, partition, 1000);
  ThreadsMpConfig config;
  return run_threads_message_passing(circuit, partition, assignment, config);
}

TEST(ThreadsMp, RoutesEveryWire) {
  Circuit circuit = make_tiny_test_circuit();
  ThreadsMpResult r = run_native(circuit, 4);
  for (const WireRoute& route : r.routes) {
    ASSERT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit.num_wires() * 2);
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit.channels(), circuit.grids(), r.routes));
}

TEST(ThreadsMp, SendsUpdateMessages) {
  Circuit circuit = make_tiny_test_circuit();
  ThreadsMpResult r = run_native(circuit, 4);
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_GT(r.bytes_sent, 16u * r.messages_sent / 2);  // headers at least
}

TEST(ThreadsMp, SingleThreadMatchesSimulatedSingleProc) {
  // With one region there is no messaging at all; both backends reduce to
  // the sequential router with identical decisions.
  Circuit circuit = make_tiny_test_circuit();
  ThreadsMpResult native = run_native(circuit, 1);
  MpConfig sim_config;
  MpRunResult sim = run_message_passing(circuit, 1, sim_config);
  EXPECT_EQ(native.circuit_height, sim.circuit_height);
  EXPECT_EQ(native.messages_sent, 0u);
}

TEST(ThreadsMp, QualityInSimulatedBand) {
  // Nondeterministic scheduling, but the algorithm is the simulator's:
  // quality must land near the simulated sender-initiated result.
  Circuit circuit = make_bnre_like();
  ThreadsMpResult native = run_native(circuit, 16);
  MpConfig sim_config;
  sim_config.schedule = UpdateSchedule::sender(2, 5);
  MpRunResult sim = run_message_passing(circuit, 16, sim_config);
  EXPECT_NEAR(static_cast<double>(native.circuit_height),
              static_cast<double>(sim.circuit_height),
              static_cast<double>(sim.circuit_height) * 0.20);
}

TEST(ThreadsMp, FourIterationsDoubleTheWork) {
  Circuit circuit = make_tiny_test_circuit();
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(4));
  const Assignment assignment = assign_threshold_cost(circuit, partition, 1000);
  ThreadsMpConfig two;
  two.iterations = 2;
  ThreadsMpConfig four;
  four.iterations = 4;
  ThreadsMpResult r2 = run_threads_message_passing(circuit, partition, assignment, two);
  ThreadsMpResult r4 =
      run_threads_message_passing(circuit, partition, assignment, four);
  EXPECT_EQ(r4.work.wires_routed, 2 * r2.work.wires_routed);
}

}  // namespace
}  // namespace locus
