// Tests for the src/check subsystem: the view-consistency checker, the
// differential oracle, route legality, the trace conflict scanner, and the
// golden coherence claims they rest on. These carry the ctest label `check`
// (run just them with `ctest -L check`).
#include <gtest/gtest.h>

#include <algorithm>

#include "check/consistency.hpp"
#include "check/legality.hpp"
#include "check/oracle.hpp"
#include "check/trace_scan.hpp"
#include "coherence/simulator.hpp"
#include "msg/driver.hpp"
#include "msg/packets.hpp"
#include "route/sequential.hpp"
#include "shm/shm_router.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace locus {
namespace {

MpConfig receiver_config(bool blocking) {
  MpConfig config;
  config.schedule = UpdateSchedule::receiver(5, 2, blocking);
  return config;
}

/// Zero-fault oracle: every implementation agrees within the bands, every
/// message passing run is consistent at all checkpoints and converged.
TEST(CheckOracle, ZeroFaultAllVariantsPass) {
  OracleConfig config;
  config.procs = 4;
  const OracleResult result =
      run_differential_oracle(test::make_seeded_circuit(), config);
  ASSERT_EQ(result.variants.size(), 6u);
  for (const OracleVariant& v : result.variants) {
    EXPECT_TRUE(v.ok()) << result.describe();
    if (v.is_message_passing) {
      EXPECT_GT(v.consistency.checkpoints, 0) << v.name;
      EXPECT_EQ(v.consistency.violations, 0) << v.name;
      EXPECT_EQ(v.consistency.unmatched_applies, 0) << v.name;
      EXPECT_EQ(v.consistency.codec_mismatches, 0) << v.name;
      EXPECT_TRUE(v.consistency.converged()) << v.name;
    }
  }
  EXPECT_TRUE(result.all_ok());
}

/// Dropping sender-initiated updates leaves in-flight deltas unaccounted:
/// the run still terminates, but the checker reports non-convergence.
TEST(CheckOracle, DroppedUpdatesDetectedAsDivergence) {
  FaultPlan plan;
  plan.drop_rate = 0.25;
  plan.packet_types = {kMsgSendLocData, kMsgSendRmtData};

  ConsistencyOptions options;
  ViewConsistencyChecker checker(options);
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 2);
  config.faults = &plan;
  config.observer = &checker;
  const MpRunResult run =
      run_message_passing(test::make_seeded_circuit(), 4, config);

  EXPECT_GT(run.faults.dropped, 0u);
  EXPECT_GT(run.circuit_height, 0);  // terminated with a result
  const ConsistencyReport& report = checker.report();
  EXPECT_TRUE(report.run_ended);
  EXPECT_FALSE(report.converged());
  EXPECT_GT(report.final_inflight_cells + report.final_outstanding_packets, 0);
}

/// Duplicated deltas cancel in the per-cell conservation equality, so the
/// packet ledger is what must catch them: unmatched applies.
TEST(CheckOracle, DuplicatedDeltasDetectedByLedger) {
  FaultPlan plan;
  plan.dup_rate = 0.5;
  plan.packet_types = {kMsgSendRmtData};

  ViewConsistencyChecker checker;
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 2);
  config.faults = &plan;
  config.observer = &checker;
  const MpRunResult run =
      run_message_passing(test::make_seeded_circuit(), 4, config);

  EXPECT_GT(run.faults.duplicated, 0u);
  EXPECT_GT(checker.report().unmatched_applies, 0);
  EXPECT_FALSE(checker.report().consistent());
}

/// The conservation law is closed under delivery schedule: delaying and
/// reordering packets (no loss, no duplication) must stay clean.
TEST(CheckOracle, DelayAndReorderStayConsistent) {
  FaultPlan plan;
  plan.delay_rate = 0.4;
  plan.delay_ns = 500'000;
  plan.reorder_rate = 0.3;
  plan.stall_rate = 0.1;
  plan.stall_ns = 100'000;

  ViewConsistencyChecker checker;
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 2);
  config.faults = &plan;
  config.observer = &checker;
  const MpRunResult run =
      run_message_passing(test::make_seeded_circuit(), 4, config);

  EXPECT_GT(run.faults.delayed + run.faults.reordered + run.faults.stalls, 0u);
  EXPECT_TRUE(checker.report().consistent()) << checker.report().violations;
  EXPECT_TRUE(checker.report().converged());
}

/// Legality: sequential routes pass; a tampered route (segment chain broken)
/// is flagged.
TEST(CheckLegality, SequentialRoutesLegalTamperCaught) {
  const Circuit circuit = test::make_seeded_circuit();
  const SequentialResult seq = route_sequential(circuit, {});
  const LegalityReport clean = check_route_legality(circuit, seq.routes);
  EXPECT_TRUE(clean.legal()) << (clean.issues.empty()
                                     ? ""
                                     : clean.issues.front().what);
  EXPECT_GT(clean.cells_checked, 0);

  std::vector<WireRoute> tampered = seq.routes;
  bool broke_one = false;
  for (WireRoute& route : tampered) {
    if (route.cells.size() < 2) continue;
    // Drop a committed cell so the route no longer covers its connections.
    route.cells.pop_back();
    broke_one = true;
    break;
  }
  ASSERT_TRUE(broke_one);
  EXPECT_FALSE(check_route_legality(circuit, tampered).legal());
}

/// Trace scanner basics: the shm trace of a real run has references on
/// shared lines, counts are internally consistent, and coarser lines fold
/// more addresses together (never more distinct lines than finer ones).
TEST(CheckTraceScan, CountsConsistentAcrossLineSizes) {
  ShmConfig config;
  config.procs = 4;
  config.capture_trace = true;
  const ShmRunResult run =
      run_shared_memory(test::make_seeded_circuit(), config);
  ASSERT_GT(run.trace.size(), 0u);

  std::int64_t prev_lines = -1;
  for (std::int32_t line : {4, 8, 16, 32}) {
    TraceScanOptions options;
    options.line_bytes = line;
    const TraceScanReport report = scan_trace_conflicts(run.trace, options);
    EXPECT_EQ(report.refs, static_cast<std::int64_t>(run.trace.size()));
    EXPECT_EQ(report.conflicts(), report.ww + report.wr + report.rw);
    std::int64_t bucketed = 0;
    for (std::int64_t count : report.histogram) bucketed += count;
    EXPECT_EQ(bucketed, report.lines_with_conflicts);
    EXPECT_LE(report.lines_with_conflicts, report.lines_touched);
    if (prev_lines >= 0) {
      EXPECT_LE(report.lines_touched, prev_lines);
    }
    prev_lines = report.lines_touched;
    for (const LineConflicts& hot : report.hottest) EXPECT_GT(hot.total(), 0);
  }
}

/// Golden coherence claim (paper Table 3 in miniature): bus traffic grows
/// with the line size on the write-shared cost array, and the overwhelming
/// share of the bytes is write-caused (>80% in the paper's Table 3).
TEST(CheckGolden, LineSizeSweepTrafficGrowsAndWritesDominate) {
  ShmConfig config;
  config.procs = 4;
  config.capture_trace = true;
  const ShmRunResult run =
      run_shared_memory(test::make_seeded_circuit(), config);
  ASSERT_GT(run.trace.size(), 0u);

  const std::vector<std::int32_t> sizes = {4, 8, 16, 32};
  const std::vector<CoherenceTraffic> sweep =
      sweep_line_sizes(run.trace, config.procs, sizes);
  ASSERT_EQ(sweep.size(), sizes.size());
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].total_bytes(), sweep[i - 1].total_bytes())
        << sizes[i] << "B vs " << sizes[i - 1] << "B";
  }
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].write_fraction(), 0.8) << sizes[i] << "B";
  }
}

/// Delayed ReqRmtData responses: the blocking receiver schedule eats the
/// full latency (completion strictly worse than fault-free), while the
/// non-blocking one continues routing on its stale view and loses less.
TEST(CheckGolden, BlockingStallsOnDelayedResponsesNonBlockingProceeds) {
  const Circuit circuit = test::make_seeded_circuit();

  const MpRunResult blocking_base =
      run_message_passing(circuit, 4, receiver_config(true));
  const MpRunResult nonblocking_base =
      run_message_passing(circuit, 4, receiver_config(false));

  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay_ns = 2'000'000;  // 2 ms on every ReqRmtData response
  plan.packet_types = {kMsgRspRmtData};

  MpConfig blocking = receiver_config(true);
  blocking.faults = &plan;
  const MpRunResult blocking_faulted = run_message_passing(circuit, 4, blocking);

  ViewConsistencyChecker checker;
  MpConfig nonblocking = receiver_config(false);
  nonblocking.faults = &plan;
  nonblocking.observer = &checker;
  const MpRunResult nonblocking_faulted =
      run_message_passing(circuit, 4, nonblocking);

  EXPECT_GT(blocking_faulted.faults.delayed, 0u);
  // Blocking: the stall is on the critical path.
  EXPECT_GT(blocking_faulted.completion_ns, blocking_base.completion_ns);
  // Non-blocking: still terminates, views stay conservation-consistent.
  EXPECT_GT(nonblocking_faulted.circuit_height, 0);
  EXPECT_TRUE(checker.report().consistent());
  // And the injected latency hurts it strictly less than the blocking run.
  const SimTime blocking_loss =
      blocking_faulted.completion_ns - blocking_base.completion_ns;
  const SimTime nonblocking_loss =
      nonblocking_faulted.completion_ns - nonblocking_base.completion_ns;
  EXPECT_LT(nonblocking_loss, blocking_loss);
}

/// FaultPlan::parse round-trips the CLI syntax used by the examples.
TEST(CheckFaultPlan, ParseCliSyntax) {
  const auto plan = FaultPlan::parse("drop:0.01,delay:500,types:1+2,seed:9");
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->drop_rate, 0.01);
  EXPECT_EQ(plan->delay_ns, 500);
  EXPECT_DOUBLE_EQ(plan->delay_rate, 0.99);  // remaining probability mass
  EXPECT_EQ(plan->seed, 9u);
  ASSERT_EQ(plan->packet_types.size(), 2u);
  EXPECT_TRUE(plan->applies_to(kMsgSendLocData));
  EXPECT_TRUE(plan->applies_to(kMsgSendRmtData));
  EXPECT_FALSE(plan->applies_to(kMsgRspRmtData));

  EXPECT_FALSE(FaultPlan::parse("drop:2").has_value());
  EXPECT_FALSE(FaultPlan::parse("bogus:1").has_value());
  EXPECT_FALSE(FaultPlan::parse("drop:0.9,dup:0.9").has_value());
  EXPECT_TRUE(FaultPlan::parse("").has_value());
}

}  // namespace
}  // namespace locus
