// Tests for the discrete event core, topology/routing, and the wormhole
// network model (latency formula, contention, statistics).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace locus {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(q.now() + 10, chain);
  };
  q.schedule(0, chain);
  SimTime end = q.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(end, 40);
  EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, RunBoundedStops) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule(q.now() + 1, forever); };
  q.schedule(0, forever);
  EXPECT_EQ(q.run_bounded(100), 100u);
  EXPECT_FALSE(q.empty());
}

/// Regression for the POD-event rewrite: simultaneous events execute in
/// global insertion order regardless of whether each was scheduled as a POD
/// handler event or a legacy closure — the two forms share one sequence
/// counter, so mixing them cannot perturb FIFO ordering.
TEST(EventQueue, SimultaneousPodAndClosureEventsInterleaveFifo) {
  EventQueue q;
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
    static void push(void* ctx, SimTime, std::uint64_t a, std::uint64_t) {
      static_cast<Ctx*>(ctx)->order->push_back(static_cast<int>(a));
    }
  } ctx{&order};
  const EventQueue::HandlerId h = q.add_handler(&Ctx::push, &ctx);
  for (int i = 0; i < 12; ++i) {
    if (i % 2 == 0) {
      q.schedule(5, h, static_cast<std::uint64_t>(i));
    } else {
      q.schedule(5, [&order, i] { order.push_back(i); });
    }
  }
  q.run();
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PodHandlerReceivesTimeAndOperands) {
  EventQueue q;
  struct Seen {
    SimTime now = -1;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    static void on(void* ctx, SimTime now, std::uint64_t a, std::uint64_t b) {
      *static_cast<Seen*>(ctx) = Seen{now, a, b};
    }
  } seen;
  const EventQueue::HandlerId h = q.add_handler(&Seen::on, &seen);
  q.schedule(42, h, 7, 9);
  q.run();
  EXPECT_EQ(seen.now, 42);
  EXPECT_EQ(seen.a, 7u);
  EXPECT_EQ(seen.b, 9u);
}

TEST(EventQueue, PeakPendingTracksHighWater) {
  EventQueue q;
  for (int i = 0; i < 8; ++i) q.schedule(i, [] {});
  EXPECT_EQ(q.peak_pending(), 8u);
  q.run();
  EXPECT_EQ(q.peak_pending(), 8u);  // high-water survives the drain
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueue, NowAdvancesMonotonically) {
  EventQueue q;
  SimTime last = -1;
  for (int i = 0; i < 20; ++i) {
    q.schedule((i * 7) % 13, [&] {
      EXPECT_GE(q.now(), last);
      last = q.now();
    });
  }
  q.run();
}

TEST(Topology, CoordsRoundTrip) {
  Topology t({4, 3}, Topology::Edges::kMesh);
  EXPECT_EQ(t.num_nodes(), 12);
  for (std::int32_t n = 0; n < 12; ++n) {
    EXPECT_EQ(t.node_at(t.coords(n)), n);
  }
}

TEST(Topology, Mesh2dMatchesPartitionNumbering) {
  // Partition numbers row-major with cols fastest; mesh2d must agree.
  Topology t = Topology::mesh2d(MeshShape{4, 4});
  EXPECT_EQ(t.num_nodes(), 16);
  // proc 1 is (row 0, col 1): one hop from proc 0.
  EXPECT_EQ(t.distance(0, 1), 1);
  // proc 4 is (row 1, col 0): one hop from proc 0.
  EXPECT_EQ(t.distance(0, 4), 1);
  EXPECT_EQ(t.distance(0, 15), 6);
}

TEST(Topology, RouteFollowsLinksToDestination) {
  Topology t({4, 4}, Topology::Edges::kMesh);
  for (std::int32_t src = 0; src < 16; ++src) {
    for (std::int32_t dst = 0; dst < 16; ++dst) {
      auto path = t.route(src, dst);
      EXPECT_EQ(static_cast<std::int32_t>(path.size()), t.distance(src, dst));
      std::int32_t at = src;
      for (const LinkId& link : path) {
        EXPECT_EQ(link.from, at);
        at = t.link_target(link);
      }
      EXPECT_EQ(at, dst);
    }
  }
}

TEST(Topology, DimensionOrderIsDeterministic) {
  Topology t({4, 4}, Topology::Edges::kMesh);
  auto a = t.route(0, 15);
  auto b = t.route(0, 15);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].from, b[i].from);
    EXPECT_EQ(a[i].dim, b[i].dim);
    EXPECT_EQ(a[i].positive, b[i].positive);
  }
  // X (dim 0) moves first.
  EXPECT_EQ(a.front().dim, 0);
  EXPECT_EQ(a.back().dim, 1);
}

TEST(Topology, TorusWrapsAround) {
  Topology mesh({5}, Topology::Edges::kMesh);
  Topology torus({5}, Topology::Edges::kTorus);
  EXPECT_EQ(mesh.distance(0, 4), 4);
  EXPECT_EQ(torus.distance(0, 4), 1);  // wrap
  auto path = torus.route(0, 4);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_FALSE(path[0].positive);  // negative direction wraps to 4
}

TEST(Topology, LinkIndexIsDense) {
  Topology t({3, 3}, Topology::Edges::kMesh);
  std::set<std::int32_t> seen;
  for (std::int32_t n = 0; n < t.num_nodes(); ++n) {
    for (std::int32_t d = 0; d < t.num_dims(); ++d) {
      for (bool positive : {false, true}) {
        std::int32_t idx = t.link_index({n, d, positive});
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, t.num_links());
        EXPECT_TRUE(seen.insert(idx).second);
      }
    }
  }
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topo_({4, 4}, Topology::Edges::kMesh),
        net_(topo_, NetworkParams{}, queue_,
             [this](const Packet& p, SimTime at) {
               deliveries_.push_back({p, at});
             }) {}

  Packet make_packet(ProcId src, ProcId dst, std::int32_t bytes) {
    Packet p;
    p.src = src;
    p.dst = dst;
    p.type = 1;
    p.bytes = bytes;
    return p;
  }

  Topology topo_;
  EventQueue queue_;
  Network net_;
  std::vector<std::pair<Packet, SimTime>> deliveries_;
};

TEST_F(NetworkTest, UncontendedLatencyMatchesPaperFormula) {
  // Paper §2.1: 2*ProcessTime + HopTime*(D + L). The send-side ProcessTime
  // is charged by the caller before `ready`, so delivery = ready +
  // HopTime*(D+L) + ProcessTime; total from send start = the formula.
  const std::int32_t L = 100;
  const SimTime ready = 2000;  // caller already spent one ProcessTime
  net_.inject(make_packet(0, 3, L), ready);  // D = 3
  queue_.run();
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].second, 2 * 2000 + 100 * (3 + L));
}

TEST_F(NetworkTest, LatencyScalesWithDistance) {
  net_.inject(make_packet(0, 1, 50), 0);
  net_.inject(make_packet(0, 15, 50), 0);
  queue_.run();
  ASSERT_EQ(deliveries_.size(), 2u);
  // 6 hops vs 1 hop: 500ns more head latency... but serialized injection
  // interface also delays the second packet. Compare against exact values.
  EXPECT_EQ(deliveries_[0].second, 100 * (1 + 50) + 2000);
  // Second packet injected after the first clears the NI (50 byte-times).
  EXPECT_EQ(deliveries_[1].second, 50 * 100 + 100 * (6 + 50) + 2000);
}

TEST_F(NetworkTest, ContentionDelaysSecondPacket) {
  // Disjoint paths from different sources see no interference at all.
  net_.inject(make_packet(0, 1, 200), 0);
  net_.inject(make_packet(4, 5, 200), 0);
  queue_.run();
  const SimTime uncontended = 100 * (1 + 200) + 2000;
  EXPECT_EQ(deliveries_[0].second, uncontended);
  EXPECT_EQ(deliveries_[1].second, uncontended);

  // Two sources converging on link 1->2: the later head waits while the
  // first packet's 200 bytes stream across the shared link.
  deliveries_.clear();
  net_.inject(make_packet(0, 2, 200), 1'000'000);  // path 0->1->2
  net_.inject(make_packet(1, 2, 200), 1'000'000);  // path 1->2 (shared)
  queue_.run();
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_GT(deliveries_[1].second, deliveries_[0].second + 200 * 100 - 1);
  EXPECT_GT(net_.stats().total_link_wait_ns, 0);
}

TEST_F(NetworkTest, StatsCountBytesOncePerPacket) {
  net_.inject(make_packet(0, 15, 64), 0);
  net_.inject(make_packet(5, 6, 32), 0);
  queue_.run();
  const NetworkStats& s = net_.stats();
  EXPECT_EQ(s.packets, 2u);
  EXPECT_EQ(s.bytes, 96u);
  EXPECT_EQ(s.hops, 6u + 1u);
  EXPECT_EQ(s.byte_hops, 64u * 6 + 32u * 1);
  EXPECT_EQ(s.bytes_by_type.at(1), 96u);
}

TEST_F(NetworkTest, SelfSendIsRejected) {
  EXPECT_DEATH(net_.inject(make_packet(3, 3, 8), 0), "self-send");
}

}  // namespace
}  // namespace locus
