// Kernel unit tests for support/simd.hpp: each data-parallel primitive is
// checked against a plain scalar loop written here (not the kernel's own
// fallback), under both the vector path and the forced-scalar path — the
// two must agree with the reference and with each other bit for bit. The
// BatchMin tests additionally pin down the tie-break contract (first global
// index wins) and the padded-tail masking the explorer's SoA layout relies
// on.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "support/rng.hpp"
#include "support/simd.hpp"

namespace locus {
namespace {

/// Scoped force-scalar switch: restores the previous global setting so test
/// order never leaks state into the routing engine's kernels.
class ScalarSwitch {
 public:
  explicit ScalarSwitch(bool value) : prev_(simd::force_scalar()) {
    simd::set_force_scalar(value);
  }
  ~ScalarSwitch() { simd::set_force_scalar(prev_); }
  ScalarSwitch(const ScalarSwitch&) = delete;
  ScalarSwitch& operator=(const ScalarSwitch&) = delete;

 private:
  bool prev_;
};

/// Runs every test body once with vector kernels and once forced scalar.
class SimdKernels : public ::testing::TestWithParam<bool> {
 protected:
  ScalarSwitch switch_{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(VectorAndScalar, SimdKernels, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& pi) {
                           return pi.param ? "ForcedScalar" : "Vector";
                         });

std::vector<std::int32_t> random_i32(Rng& rng, std::size_t n, bool extremes) {
  std::vector<std::int32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (extremes && rng.chance(0.1)) {
      v[i] = rng.chance(0.5) ? std::numeric_limits<std::int32_t>::min()
                             : std::numeric_limits<std::int32_t>::max();
    } else {
      v[i] = static_cast<std::int32_t>(rng.bounded(20'001)) - 10'000;
    }
  }
  return v;
}

TEST_P(SimdKernels, ClampNonnegMatchesReference) {
  Rng rng(11);
  for (std::size_t n = 0; n <= 40; ++n) {
    const std::vector<std::int32_t> in = random_i32(rng, n, true);
    std::vector<std::int32_t> out(n + 1, 7777);  // +1 canary past the end
    simd::clamp_nonneg(in.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], in[i] < 0 ? 0 : in[i]) << "n=" << n << " i=" << i;
    }
    ASSERT_EQ(out[n], 7777);
  }
}

TEST_P(SimdKernels, WidenPriceMatchesReference) {
  Rng rng(12);
  for (const bool squared : {false, true}) {
    for (std::size_t n = 0; n <= 40; ++n) {
      // Pricing inputs are post-clamp: non-negative 32-bit values.
      std::vector<std::int32_t> in = random_i32(rng, n, false);
      for (auto& v : in) v = v < 0 ? -v : v;
      std::vector<std::int64_t> pv(n, -1);
      simd::widen_price(in.data(), pv.data(), n, squared);
      for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t w = in[i];
        ASSERT_EQ(pv[i], squared ? w * w : w) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST_P(SimdKernels, PrefixSumMatchesReference) {
  Rng rng(13);
  for (std::size_t n = 0; n <= 40; ++n) {
    std::vector<std::int64_t> v(n);
    for (auto& x : v) {
      x = static_cast<std::int64_t>(rng.bounded(2'000'001)) - 1'000'000;
    }
    std::vector<std::int64_t> prefix(n + 1, -1);
    simd::prefix_sum(v.data(), prefix.data(), n);
    std::int64_t acc = 0;
    ASSERT_EQ(prefix[0], 0);
    for (std::size_t i = 0; i < n; ++i) {
      acc += v[i];
      ASSERT_EQ(prefix[i + 1], acc) << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(SimdKernels, AddRowsMatchesReference) {
  Rng rng(14);
  for (std::size_t n = 0; n <= 40; ++n) {
    std::vector<std::int64_t> a(n), b(n), out(n, -1);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::int64_t>(rng.bounded(1'000'000));
      b[i] = static_cast<std::int64_t>(rng.bounded(1'000'000)) - 500'000;
    }
    simd::add_rows(a.data(), b.data(), out.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], a[i] + b[i]) << "n=" << n << " i=" << i;
    }
  }
}

/// The fused kernel must equal the composition of the three primitives it
/// replaces — including over a nonzero incoming colt row, as every window
/// row after the first sees.
TEST_P(SimdKernels, PriceScanAddEqualsComposition) {
  Rng rng(15);
  for (const bool squared : {false, true}) {
    for (std::size_t n = 0; n <= 70; ++n) {
      std::vector<std::int32_t> in = random_i32(rng, n, false);
      for (auto& v : in) v = v < 0 ? -v : v;
      std::vector<std::int64_t> colt_in(n);
      for (auto& v : colt_in) {
        v = static_cast<std::int64_t>(rng.bounded(1'000'000));
      }
      std::vector<std::int64_t> prefix(n + 1, -1), colt_out(n, -1);
      simd::price_scan_add(in.data(), squared, prefix.data(), colt_in.data(),
                           colt_out.data(), n);

      std::vector<std::int64_t> pv(n), want_prefix(n + 1), want_colt(n);
      simd::widen_price(in.data(), pv.data(), n, squared);
      simd::prefix_sum(pv.data(), want_prefix.data(), n);
      simd::add_rows(colt_in.data(), pv.data(), want_colt.data(), n);
      for (std::size_t i = 0; i <= n; ++i) {
        ASSERT_EQ(prefix[i], want_prefix[i])
            << "squared=" << squared << " n=" << n << " i=" << i;
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(colt_out[i], want_colt[i])
            << "squared=" << squared << " n=" << n << " i=" << i;
      }
    }
  }
}

std::vector<std::int64_t> random_lane(Rng& rng, std::size_t n) {
  std::vector<std::int64_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::int64_t>(rng.bounded(1'000'000)) - 500'000;
  }
  return v;
}

TEST_P(SimdKernels, BatchArgminMatchesReference) {
  Rng rng(16);
  for (std::size_t n = 1; n <= 24; ++n) {
    const auto h = random_lane(rng, n), t = random_lane(rng, n);
    const auto jhi = random_lane(rng, n), jlo = random_lane(rng, n);
    const std::int64_t base = static_cast<std::int64_t>(rng.bounded(1000));
    std::int64_t got_min = 0;
    const std::size_t got_k =
        simd::batch_argmin(base, h.data(), t.data(), jhi.data(), jlo.data(), n,
                           &got_min);
    std::int64_t want_min = std::numeric_limits<std::int64_t>::max();
    std::size_t want_k = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::int64_t c = base + h[k] + t[k] + jhi[k] - jlo[k];
      if (c < want_min) {
        want_min = c;
        want_k = k;
      }
    }
    ASSERT_EQ(got_min, want_min) << "n=" << n;
    ASSERT_EQ(got_k, want_k) << "n=" << n;
  }
}

TEST_P(SimdKernels, BatchArgminBreaksTiesTowardFirst) {
  // All-equal costs: the first candidate must win at every batch size,
  // including sizes that exercise the vector path and its tail.
  for (std::size_t n = 1; n <= 20; ++n) {
    const std::vector<std::int64_t> zero(n, 0);
    std::int64_t min = -1;
    ASSERT_EQ(simd::batch_argmin(42, zero.data(), zero.data(), zero.data(),
                                 zero.data(), n, &min),
              0u)
        << "n=" << n;
    ASSERT_EQ(min, 42);
  }
  // Duplicate minimum later in the batch: still the first occurrence.
  std::vector<std::int64_t> h = {5, 1, 3, 1, 9, 1, 4, 8, 1, 2};
  const std::vector<std::int64_t> zero(h.size(), 0);
  std::int64_t min = 0;
  ASSERT_EQ(simd::batch_argmin(0, h.data(), zero.data(), zero.data(),
                               zero.data(), h.size(), &min),
            1u);
  ASSERT_EQ(min, 1);
}

/// BatchMin folds many batches into one running minimum; the result must be
/// the plain first-wins scan over the concatenated candidates. Lanes are
/// padded to kPad and the padding is poisoned with the most negative value
/// that cannot overflow — if masking ever leaked a padded lane, it would
/// win and the test would fail loudly.
TEST_P(SimdKernels, BatchMinMatchesConcatenatedScan) {
  Rng rng(17);
  constexpr std::int64_t kPoison = std::numeric_limits<std::int64_t>::min() / 8;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t batches = 1 + rng.bounded(6);
    simd::BatchMin bm;
    std::int64_t want_min = std::numeric_limits<std::int64_t>::max();
    std::int64_t want_idx = 0;
    std::int64_t flat = 0;
    for (std::size_t bi = 0; bi < batches; ++bi) {
      const std::size_t n = 1 + rng.bounded(13);
      const std::size_t np =
          (n + simd::BatchMin::kPad - 1) / simd::BatchMin::kPad *
          simd::BatchMin::kPad;
      auto pad = [&](std::vector<std::int64_t> v) {
        v.resize(np, kPoison);
        return v;
      };
      const auto h = pad(random_lane(rng, n)), t = pad(random_lane(rng, n));
      const auto jhi = pad(random_lane(rng, n)), jlo = pad(random_lane(rng, n));
      const std::int64_t base = static_cast<std::int64_t>(rng.bounded(100));
      for (std::size_t k = 0; k < n; ++k) {
        const std::int64_t c = base + h[k] + t[k] + jhi[k] - jlo[k];
        if (c < want_min) {
          want_min = c;
          want_idx = flat + static_cast<std::int64_t>(k);
        }
      }
      bm.fold(base, h.data(), t.data(), jhi.data(), jlo.data(), n, flat);
      flat += static_cast<std::int64_t>(n);
    }
    std::int64_t got_min = 0, got_idx = -1;
    bm.resolve(&got_min, &got_idx);
    ASSERT_EQ(got_min, want_min) << "trial " << trial;
    ASSERT_EQ(got_idx, want_idx) << "trial " << trial;
  }
}

TEST_P(SimdKernels, BatchMinBreaksTiesTowardFirstGlobalIndex) {
  // Identical costs across several folds: the smallest global index must
  // win, regardless of which vector lane it landed in.
  for (std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                        std::size_t{8}}) {
    const std::size_t np = (n + simd::BatchMin::kPad - 1) /
                           simd::BatchMin::kPad * simd::BatchMin::kPad;
    const std::vector<std::int64_t> zero(np, 0);
    simd::BatchMin bm;
    std::int64_t flat = 0;
    for (int fold = 0; fold < 4; ++fold) {
      bm.fold(9, zero.data(), zero.data(), zero.data(), zero.data(), n, flat);
      flat += static_cast<std::int64_t>(n);
    }
    std::int64_t min = 0, idx = -1;
    bm.resolve(&min, &idx);
    EXPECT_EQ(min, 9) << "n=" << n;
    EXPECT_EQ(idx, 0) << "n=" << n;
  }
}

TEST(SimdConfig, IsaReportingIsConsistent) {
  const std::string isa = simd::active_isa();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "neon" ||
              isa == "scalar")
      << isa;
  if (simd::active_vector()) {
    EXPECT_NE(isa, "scalar");
  } else {
    EXPECT_EQ(isa, "scalar");
  }
}

TEST(SimdConfig, ForceScalarRoundTrips) {
  const bool prev = simd::force_scalar();
  simd::set_force_scalar(!prev);
  EXPECT_EQ(simd::force_scalar(), !prev);
  simd::set_force_scalar(prev);
  EXPECT_EQ(simd::force_scalar(), prev);
}

}  // namespace
}  // namespace locus
