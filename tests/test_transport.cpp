// Reliable transport (msg/transport.hpp): deterministic state-machine unit
// tests, single-fault integration scenarios (drop each packet kind exactly
// once via the max-capped fault plan), the seed x drop-rate convergence
// property — every faulted run's routes bit-identical to the fault-free
// run — and the recovery-sweep pool-determinism check. Carries the
// `transport` ctest label.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "harness/experiments.hpp"
#include "harness/sim_pool.hpp"
#include "msg/driver.hpp"
#include "msg/packets.hpp"
#include "msg/transport.hpp"
#include "obs/obs.hpp"
#include "sim/fault.hpp"
#include "test_util.hpp"

namespace locus {
namespace {

// --- TransportChannel: pure state machine with injected times ------------

TransportConfig unit_config() {
  TransportConfig c;
  c.enabled = true;
  c.window = 4;
  c.rto_ns = 1'000;
  c.backoff = 2.0;
  c.max_backoff_exp = 3;
  c.max_attempts = 3;
  return c;
}

TEST(TransportChannel, SeqsMonotonicAndCumulativeAckRetires) {
  TransportChannel ch;
  EXPECT_EQ(ch.begin_send(kMsgSendRmtData, 100, 10, 1'010), 1u);
  EXPECT_EQ(ch.begin_send(kMsgSendRmtData, 100, 20, 1'020), 2u);
  EXPECT_EQ(ch.begin_send(kMsgSendLocData, 200, 30, 1'030), 3u);
  EXPECT_EQ(ch.in_flight(), 3);
  EXPECT_EQ(ch.on_ack(2), 2u);  // cumulative: retires 1 and 2
  EXPECT_EQ(ch.in_flight(), 1);
  EXPECT_EQ(ch.on_ack(2), 0u);  // repeated ack is idempotent
  EXPECT_EQ(ch.on_ack(3), 1u);
  EXPECT_EQ(ch.in_flight(), 0);
}

TEST(TransportChannel, TimeoutRetransmitsWithExponentialBackoff) {
  const TransportConfig config = unit_config();
  TransportChannel ch;
  const std::uint32_t seq =
      ch.begin_send(kMsgSendRmtData, 64, 100, 100 + config.rto_ns);

  auto v1 = ch.on_timeout(seq, 1, 1'100, config);
  ASSERT_TRUE(v1.retransmit);
  EXPECT_EQ(v1.entry.attempts, 2);
  EXPECT_EQ(v1.entry.next_timeout, 1'100 + 2 * config.rto_ns);

  // The superseded attempt-1 timer must be a no-op if it somehow refires.
  EXPECT_FALSE(ch.on_timeout(seq, 1, 1'200, config).retransmit);

  auto v2 = ch.on_timeout(seq, 2, 3'100, config);
  ASSERT_TRUE(v2.retransmit);
  EXPECT_EQ(v2.entry.attempts, 3);
  EXPECT_EQ(v2.entry.next_timeout, 3'100 + 4 * config.rto_ns);
}

TEST(TransportChannel, StaleTimerAfterAckIsNoop) {
  const TransportConfig config = unit_config();
  TransportChannel ch;
  const std::uint32_t seq = ch.begin_send(kMsgSendRmtData, 64, 100, 1'100);
  EXPECT_EQ(ch.on_ack(seq), 1u);
  const auto verdict = ch.on_timeout(seq, 1, 1'100, config);
  EXPECT_FALSE(verdict.retransmit);
  EXPECT_FALSE(verdict.gave_up);
}

TEST(TransportChannel, GivesUpAfterMaxAttempts) {
  const TransportConfig config = unit_config();  // max_attempts = 3
  TransportChannel ch;
  const std::uint32_t seq = ch.begin_send(kMsgSendRmtData, 64, 100, 1'100);
  EXPECT_TRUE(ch.on_timeout(seq, 1, 1'100, config).retransmit);
  EXPECT_TRUE(ch.on_timeout(seq, 2, 3'100, config).retransmit);
  const auto last = ch.on_timeout(seq, 3, 7'100, config);
  EXPECT_FALSE(last.retransmit);
  EXPECT_TRUE(last.gave_up);
  EXPECT_EQ(ch.in_flight(), 0);
  // Anything after the give-up is stale.
  EXPECT_FALSE(ch.on_timeout(seq, 4, 9'000, config).gave_up);
}

TEST(TransportChannel, WindowTracksInFlight) {
  const TransportConfig config = unit_config();  // window = 4
  TransportChannel ch;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(ch.window_full(config.window));
    ch.begin_send(kMsgSendRmtData, 64, 100 + i, 1'100 + i);
  }
  EXPECT_TRUE(ch.window_full(config.window));
  ch.on_ack(1);
  EXPECT_FALSE(ch.window_full(config.window));
}

TEST(TransportChannel, DedupAndReleaseAcrossWindowBoundary) {
  TransportChannel ch;
  bool ooo = false;
  std::uint32_t released = 0;
  EXPECT_EQ(ch.on_arrival(1, &ooo, &released), TransportChannel::Arrival::kNew);
  EXPECT_FALSE(ooo);
  EXPECT_EQ(released, 1u);
  EXPECT_EQ(ch.rcv_cum(), 1u);

  // Seqs 3..40 arrive while 2 is missing: a reorder spanning well past one
  // 32-seq window. All buffer ahead of the gap; the ack value stays at 1.
  for (std::uint32_t s = 3; s <= 40; ++s) {
    EXPECT_EQ(ch.on_arrival(s, &ooo, &released),
              TransportChannel::Arrival::kNew);
    EXPECT_TRUE(ooo);
    EXPECT_EQ(released, 0u);
  }
  EXPECT_EQ(ch.rcv_cum(), 1u);
  EXPECT_EQ(ch.buffered_ahead(), 38);

  // Repeats are deduplicated whether already delivered or buffered ahead.
  EXPECT_EQ(ch.on_arrival(1), TransportChannel::Arrival::kDuplicate);
  EXPECT_EQ(ch.on_arrival(17), TransportChannel::Arrival::kDuplicate);

  // The late seq 2 releases the whole buffered run in one step.
  EXPECT_EQ(ch.on_arrival(2, &ooo, &released),
            TransportChannel::Arrival::kNew);
  EXPECT_EQ(released, 39u);
  EXPECT_EQ(ch.rcv_cum(), 40u);
  EXPECT_EQ(ch.buffered_ahead(), 0);
  EXPECT_EQ(ch.delivered_unique(), 40u);
  EXPECT_EQ(ch.on_arrival(2), TransportChannel::Arrival::kDuplicate);
}

// --- integration helpers -------------------------------------------------

bool routes_equal(const std::vector<WireRoute>& a,
                  const std::vector<WireRoute>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].wire != b[i].wire || a[i].path_cost != b[i].path_cost ||
        a[i].cells != b[i].cells || a[i].connections != b[i].connections) {
      return false;
    }
  }
  return true;
}

MpConfig transport_config(const UpdateSchedule& schedule,
                          const FaultPlan* plan) {
  MpConfig mp;
  mp.schedule = schedule;
  mp.iterations = 2;
  mp.transport.enabled = true;
  mp.faults = plan;
  return mp;
}

/// Asserts the convergence guarantee: `run` matches the fault-free `base`
/// in everything the router produced, and the transport ledger balances.
void expect_identical(const MpRunResult& run, const MpRunResult& base,
                      const char* what) {
  EXPECT_TRUE(routes_equal(run.routes, base.routes)) << what;
  EXPECT_EQ(run.completion_ns, base.completion_ns) << what;
  EXPECT_EQ(run.circuit_height, base.circuit_height) << what;
  EXPECT_EQ(run.view_staleness, base.view_staleness) << what;
  EXPECT_EQ(run.own_region_staleness, base.own_region_staleness) << what;
  EXPECT_TRUE(run.transport.books_balance()) << what;
}

// --- single-fault scenarios: drop each packet kind exactly once ----------

struct KindCase {
  const char* name;
  std::int32_t type;
  UpdateSchedule schedule;
  WireAssignmentMode mode = WireAssignmentMode::kStatic;
};

std::vector<KindCase> kind_cases() {
  std::vector<KindCase> cases;
  cases.push_back(
      {"SendLocData", kMsgSendLocData, UpdateSchedule::sender(2, 2)});
  cases.push_back(
      {"SendRmtData", kMsgSendRmtData, UpdateSchedule::sender(2, 2)});
  cases.push_back(
      {"ReqRmtData", kMsgReqRmtData, UpdateSchedule::receiver(2, 2)});
  cases.push_back(
      {"RspRmtData", kMsgRspRmtData, UpdateSchedule::receiver(2, 2)});
  cases.push_back(
      {"ReqLocData", kMsgReqLocData, UpdateSchedule::receiver(2, 2)});
  // Dropping a blocking-mode response deadlocks the requester without the
  // transport; with it, the nominal-plane delivery keeps the run on time.
  cases.push_back({"RspRmtData-blocking", kMsgRspRmtData,
                   UpdateSchedule::receiver(2, 2, /*blocking=*/true)});
  cases.push_back({"WireRequest", kMsgWireRequest, UpdateSchedule{},
                   WireAssignmentMode::kDynamicPolled});
  cases.push_back({"WireGrant", kMsgWireGrant, UpdateSchedule{},
                   WireAssignmentMode::kDynamicPolled});
  return cases;
}

TEST(TransportIntegration, DropEachPacketKindExactlyOnce) {
  const Circuit circuit = test::make_seeded_circuit(7);
  for (const KindCase& c : kind_cases()) {
    FaultPlan plan;
    plan.drop_rate = 1.0;
    plan.packet_types = {c.type};
    plan.max_packet_faults = 1;  // exactly the first packet of this kind

    MpConfig base_cfg = transport_config(c.schedule, nullptr);
    base_cfg.assignment_mode = c.mode;
    MpConfig drop_cfg = transport_config(c.schedule, &plan);
    drop_cfg.assignment_mode = c.mode;

    const MpRunResult base = run_message_passing(circuit, 4, base_cfg);
    const MpRunResult run = run_message_passing(circuit, 4, drop_cfg);

    ASSERT_EQ(run.faults.dropped, 1u) << c.name;
    EXPECT_EQ(run.transport.wire_losses, 1u) << c.name;
    // The lost copy must have been repaired by at least one retransmit (the
    // capped plan delivers the retry cleanly).
    EXPECT_GE(run.transport.retransmits, 1u) << c.name;
    EXPECT_EQ(run.transport.undelivered, 0u) << c.name;
    expect_identical(run, base, c.name);
  }
}

TEST(TransportIntegration, DropFirstStandaloneAckConverges) {
  const Circuit circuit = test::make_seeded_circuit(7);
  FaultPlan plan;
  plan.drop_rate = 1.0;
  plan.packet_types = {kMsgAck};
  plan.max_packet_faults = 1;
  const MpRunResult base = run_message_passing(
      circuit, 4, transport_config(UpdateSchedule::sender(2, 2), nullptr));
  const MpRunResult run = run_message_passing(
      circuit, 4, transport_config(UpdateSchedule::sender(2, 2), &plan));
  ASSERT_EQ(run.faults.dropped, 1u);
  EXPECT_EQ(run.transport.ack_wire_losses, 1u);
  // A lost ack leaves data unacked; recovery (retransmit -> dup -> re-ack)
  // must still drain every channel.
  EXPECT_EQ(run.transport.unacked_at_end, 0);
  expect_identical(run, base, "ack drop");
}

TEST(TransportIntegration, DuplicatesAreDeduplicatedAndSurfaced) {
  const Circuit circuit = test::make_seeded_circuit(7);
  FaultPlan plan;
  plan.dup_rate = 1.0;
  plan.packet_types = {kMsgSendRmtData};
  plan.max_packet_faults = 3;
  const MpRunResult base = run_message_passing(
      circuit, 4, transport_config(UpdateSchedule::sender(2, 2), nullptr));
  const MpRunResult run = run_message_passing(
      circuit, 4, transport_config(UpdateSchedule::sender(2, 2), &plan));
  ASSERT_EQ(run.faults.duplicated, 3u);
  // The previously invisible dup path is now a first-class network stat.
  EXPECT_EQ(run.network.duplicate_deliveries, 3u);
  EXPECT_EQ(run.transport.dup_wire_copies, 3u);
  EXPECT_GE(run.transport.dup_dropped, 3u);  // every extra copy discarded
  expect_identical(run, base, "dup");
}

TEST(TransportIntegration, DelayAndReorderConverge) {
  const Circuit circuit = test::make_seeded_circuit(7);
  const MpRunResult base = run_message_passing(
      circuit, 4, transport_config(UpdateSchedule::sender(2, 2), nullptr));
  {
    FaultPlan plan;
    plan.delay_rate = 1.0;
    plan.delay_ns = 500'000;
    plan.max_packet_faults = 5;
    const MpRunResult run = run_message_passing(
        circuit, 4, transport_config(UpdateSchedule::sender(2, 2), &plan));
    ASSERT_EQ(run.faults.delayed, 5u);
    expect_identical(run, base, "delay");
  }
  {
    FaultPlan plan;
    plan.reorder_rate = 1.0;
    plan.reorder_hold_ns = 400'000;
    plan.max_packet_faults = 5;
    const MpRunResult run = run_message_passing(
        circuit, 4, transport_config(UpdateSchedule::sender(2, 2), &plan));
    ASSERT_EQ(run.faults.reordered, 5u);
    expect_identical(run, base, "reorder");
  }
}

/// Satellite: the dup path is visible in NetworkStats (and obs) even with
/// the transport off — it used to be counted only inside the injector.
TEST(TransportIntegration, DupDeliveriesVisibleWithoutTransport) {
  const Circuit circuit = test::make_seeded_circuit(7);
  FaultPlan plan;
  plan.dup_rate = 0.25;
  plan.packet_types = {kMsgSendRmtData};
  MpConfig mp;
  mp.schedule = UpdateSchedule::sender(2, 2);
  mp.faults = &plan;
  obs::Obs obs;
  mp.obs = &obs;
  const MpRunResult run = run_message_passing(circuit, 4, mp);
  ASSERT_GT(run.faults.duplicated, 0u);
  EXPECT_EQ(run.network.duplicate_deliveries, run.faults.duplicated);
#if LOCUS_OBS_ENABLED
  EXPECT_EQ(obs.counters().total("net.dup_deliveries"), run.faults.duplicated);
#endif
}

#if LOCUS_OBS_ENABLED

TEST(TransportIntegration, ObsCountersMirrorTransportStats) {
  const Circuit circuit = test::make_seeded_circuit(7);
  FaultPlan plan;
  plan.drop_rate = 0.05;
  obs::Obs obs;
  MpConfig mp = transport_config(UpdateSchedule::sender(2, 2), &plan);
  mp.obs = &obs;
  const MpRunResult run = run_message_passing(circuit, 4, mp);
  ASSERT_GT(run.faults.dropped, 0u);
  const auto& reg = obs.counters();
  EXPECT_EQ(reg.total("mp.retx"), run.transport.retransmits);
  EXPECT_EQ(reg.total("mp.retx_bytes"), run.transport.retransmit_bytes);
  EXPECT_EQ(reg.total("mp.dup_dropped"), run.transport.dup_dropped);
  EXPECT_EQ(reg.total("mp.ack_bytes"), run.transport.ack_bytes);
  EXPECT_EQ(reg.total("mp.acks_sent"), run.transport.acks_sent);
}
#endif  // LOCUS_OBS_ENABLED

// --- E2E property: seeds x drop rates ------------------------------------

/// 50 random circuits x drop rates {0.5%, 2%, 5%}: every faulted run is
/// bit-identical to that circuit's fault-free run under the mixed schedule,
/// and every ledger balances. Seeds fan out on the SimPool; verdicts are
/// collected per seed and asserted deterministically on the main thread.
TEST(TransportProperty, FiftySeedsConvergeAtEveryDropRate) {
  constexpr std::size_t kSeeds = 50;
  constexpr double kRates[] = {0.005, 0.02, 0.05};
  UpdateSchedule mixed;
  mixed.send_loc_period = 10;
  mixed.send_rmt_period = 5;
  mixed.req_rmt_touches = 3;
  mixed.req_loc_requests = 2;

  std::vector<std::string> failures(kSeeds);
  SimPool().run_indexed(kSeeds, [&](std::size_t i) {
    const Circuit circuit = test::make_seeded_circuit(i + 1);
    const MpRunResult base =
        run_message_passing(circuit, 4, transport_config(mixed, nullptr));
    for (const double rate : kRates) {
      FaultPlan plan;
      plan.drop_rate = rate;
      plan.seed = 0xFA017ULL + i;
      const MpRunResult run =
          run_message_passing(circuit, 4, transport_config(mixed, &plan));
      if (!run.transport.books_balance()) {
        failures[i] = "ledger imbalance at rate " + std::to_string(rate);
        return;
      }
      if (!routes_equal(run.routes, base.routes) ||
          run.completion_ns != base.completion_ns ||
          run.view_staleness != base.view_staleness) {
        failures[i] = "diverged at rate " + std::to_string(rate);
        return;
      }
    }
  });
  for (std::size_t seed = 0; seed < kSeeds; ++seed) {
    EXPECT_EQ(failures[seed], "") << "seed " << seed + 1;
  }
}

/// The schedule matrix at one rate: all four update protocols (including
/// the blocking receiver) recover to their fault-free outcome.
TEST(TransportProperty, EveryScheduleConvergesUnderDrops) {
  const UpdateSchedule schedules[] = {
      UpdateSchedule::sender(10, 5),
      UpdateSchedule::receiver(5, 2),
      UpdateSchedule::receiver(5, 2, /*blocking=*/true),
      [] {
        UpdateSchedule s;
        s.send_loc_period = 10;
        s.send_rmt_period = 5;
        s.req_rmt_touches = 3;
        s.req_loc_requests = 2;
        return s;
      }(),
  };
  for (std::uint64_t seed : {3ull, 11ull, 29ull}) {
    const Circuit circuit = test::make_seeded_circuit(seed);
    for (const UpdateSchedule& schedule : schedules) {
      const MpRunResult base =
          run_message_passing(circuit, 4, transport_config(schedule, nullptr));
      FaultPlan plan;
      plan.drop_rate = 0.02;
      plan.seed = seed;
      const MpRunResult run =
          run_message_passing(circuit, 4, transport_config(schedule, &plan));
      expect_identical(run, base, "schedule matrix");
    }
  }
}

// --- oracle + sweep ------------------------------------------------------

/// The differential oracle passes on a faulted machine once the transport
/// recovers the losses: consistency checkpoints see the exact views the
/// fault-free run would have produced.
TEST(TransportOracle, FaultedOraclePassesWithTransportOn) {
  const Circuit circuit = test::make_seeded_circuit(7);
  FaultPlan plan;
  plan.drop_rate = 0.02;
  OracleConfig config;
  config.procs = 4;
  config.faults = &plan;
  config.transport.enabled = true;
  const OracleResult result = run_differential_oracle(circuit, config);
  EXPECT_TRUE(result.all_ok()) << result.describe();
}

/// Pool determinism: the recovery sweep renders bit-identically at any
/// SimPool width (name matches the tsan-threads preset filter).
TEST(FaultRecoverySweep, BitIdenticalAtAnyPoolWidth) {
  const Circuit circuit = test::make_seeded_circuit(7);
  ExperimentConfig config;
  config.procs = 4;
  std::string rendered[3];
  const int widths[] = {1, 2, 4};
  for (int i = 0; i < 3; ++i) {
    set_sim_threads(widths[i]);
    rendered[i] = run_fault_recovery_sweep(circuit, config).render();
  }
  set_sim_threads(0);
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
  // Every row of the sweep must report identical routes and balanced books.
  EXPECT_EQ(rendered[0].find("NO"), std::string::npos) << rendered[0];
  EXPECT_EQ(rendered[0].find("IMBALANCED"), std::string::npos) << rendered[0];
}

}  // namespace
}  // namespace locus
