// Tests for the experiment harness: every experiment function runs on a
// small configuration and produces a well-formed table; paper reference
// data is internally consistent.
#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "harness/experiments.hpp"
#include "harness/paper_data.hpp"

namespace locus {
namespace {

/// Small, fast configuration: 4 processors on the tiny circuit.
ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.procs = 4;
  return config;
}

class HarnessTest : public ::testing::Test {
 protected:
  HarnessTest() : tiny_(make_tiny_test_circuit()), tiny2_(make_tiny_test_circuit(11)) {}
  Circuit tiny_;
  Circuit tiny2_;
};

TEST_F(HarnessTest, Table1Produces12Rows) {
  Table t = run_table1_sender_initiated(tiny_, tiny_config());
  EXPECT_EQ(t.row_count(), 12u);
  EXPECT_NE(t.render().find("SendRmt"), std::string::npos);
}

TEST_F(HarnessTest, Table2Produces9Rows) {
  Table t = run_table2_receiver_initiated(tiny_, tiny_config());
  EXPECT_EQ(t.row_count(), 9u);
}

TEST_F(HarnessTest, BlockingTableHasSlowdownColumn) {
  Table t = run_sec513_blocking(tiny_, tiny_config());
  EXPECT_GT(t.row_count(), 0u);
  EXPECT_NE(t.render().find("slowdown"), std::string::npos);
}

TEST_F(HarnessTest, MixedTableHasThreeSchedules) {
  Table t = run_sec513_mixed(tiny_, tiny_config());
  EXPECT_EQ(t.row_count(), 3u);
  EXPECT_NE(t.render().find("mixed"), std::string::npos);
}

TEST_F(HarnessTest, Table3CoversFourLineSizes) {
  Table3Result r = run_table3_line_size(tiny_, tiny_config());
  EXPECT_EQ(r.table.row_count(), 4u);
  EXPECT_EQ(r.breakdown.row_count(), 4u);
  EXPECT_GT(r.write_fraction_8b, 0.0);
  EXPECT_LE(r.write_fraction_8b, 1.0);
}

TEST_F(HarnessTest, ComparisonTableHasThreeApproaches) {
  Table t = run_sec52_comparison(tiny_, tiny_config());
  EXPECT_EQ(t.row_count(), 3u);
}

TEST_F(HarnessTest, LocalityTablesCoverBothCircuits) {
  Table mp = run_table4_locality_mp(tiny_, tiny2_, tiny_config());
  EXPECT_EQ(mp.row_count(), 8u);
  Table shm = run_table5_locality_shm(tiny_, tiny2_, tiny_config());
  EXPECT_EQ(shm.row_count(), 8u);
}

TEST_F(HarnessTest, ReceiverLocalityTableComputesDrop) {
  Table t = run_table4_receiver_locality(tiny_, tiny_config());
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_NE(t.render().find("%"), std::string::npos);
}

TEST_F(HarnessTest, LocalityMeasureTableHasSixRows) {
  Table t = run_locality_measure(tiny_, tiny2_, tiny_config());
  EXPECT_EQ(t.row_count(), 6u);
}

TEST_F(HarnessTest, ScalingTableCoversPaperProcCounts) {
  Table t = run_table6_scaling(tiny_, tiny_config());
  EXPECT_EQ(t.row_count(), 4u);
}

TEST_F(HarnessTest, SpeedupTableEightRows) {
  Table t = run_speedup(tiny_, tiny2_, tiny_config());
  EXPECT_EQ(t.row_count(), 8u);
}

TEST_F(HarnessTest, AblationsRun) {
  EXPECT_EQ(run_ablation_packet_structure(tiny_, tiny_config()).row_count(), 3u);
  // 4 protocols x 2 line sizes.
  EXPECT_EQ(run_ablation_protocols(tiny_, tiny_config()).row_count(), 8u);
  // mesh, torus, hypercube (4 = 2^2), ring.
  EXPECT_EQ(run_ablation_topology(tiny_, tiny_config()).row_count(), 4u);
  EXPECT_EQ(run_ablation_dynamic_assignment(tiny_, tiny_config()).row_count(), 3u);
}

TEST_F(HarnessTest, ExtensionTablesRun) {
  Table hier = run_hierarchical_shm(tiny_, tiny_config());
  EXPECT_EQ(hier.row_count(), 4u);
  EXPECT_NE(hier.render().find("remote refs"), std::string::npos);
  Table overhead = run_overhead_breakdown(tiny_, tiny_config());
  EXPECT_EQ(overhead.row_count(), 6u);
  EXPECT_NE(overhead.render().find("msg fraction"), std::string::npos);
  EXPECT_EQ(run_view_staleness(tiny_, tiny_config()).row_count(), 7u);
  EXPECT_EQ(run_mp_iteration_sweep(tiny_, tiny_config()).row_count(), 4u);
}

TEST_F(HarnessTest, CsvRendersForAllTables) {
  Table t = run_sec513_mixed(tiny_, tiny_config());
  std::string csv = t.render_csv();
  EXPECT_NE(csv.find("schedule,"), std::string::npos);
  // header + 3 rows = 4 lines
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
}

TEST(HarnessHelpers, AssignMethodNamesAreStable) {
  EXPECT_STREQ(assign_method_name(AssignMethod::kRoundRobin), "round robin");
  EXPECT_STREQ(assign_method_name(AssignMethod::kThreshold30), "tc30");
  EXPECT_STREQ(assign_method_name(AssignMethod::kThreshold1000), "tc1000");
  EXPECT_STREQ(assign_method_name(AssignMethod::kThresholdInf), "inf");
}

TEST(HarnessHelpers, MakeAssignmentDispatches) {
  Circuit c = make_tiny_test_circuit();
  Partition part(c.channels(), c.grids(), MeshShape::for_procs(4));
  for (AssignMethod m : {AssignMethod::kRoundRobin, AssignMethod::kThreshold30,
                         AssignMethod::kThreshold1000, AssignMethod::kThresholdInf}) {
    EXPECT_TRUE(assignment_is_valid(make_assignment(c, part, m), c));
  }
}

TEST(PaperData, TablesInternallyConsistent) {
  // Table 1: traffic decreases as SendLocData period grows within a group.
  for (std::size_t i = 1; i < paper::kTable1.size(); ++i) {
    if (paper::kTable1[i].send_rmt == paper::kTable1[i - 1].send_rmt) {
      EXPECT_LT(paper::kTable1[i].mbytes, paper::kTable1[i - 1].mbytes);
    }
  }
  // Table 2: receiver traffic is below the sender traffic at matched rows.
  EXPECT_LT(paper::kTable2.front().mbytes, paper::kTable1.front().mbytes);
  // Table 3: traffic grows with line size.
  for (std::size_t i = 1; i < paper::kTable3.size(); ++i) {
    EXPECT_GT(paper::kTable3[i].mbytes, paper::kTable3[i - 1].mbytes);
  }
  // Table 6: execution time falls as processors increase.
  for (std::size_t i = 1; i < paper::kTable6.size(); ++i) {
    EXPECT_LT(paper::kTable6[i].seconds, paper::kTable6[i - 1].seconds);
  }
}

}  // namespace
}  // namespace locus
