// Tests for the router extensions: MST pin decomposition, congestion-power
// pricing, the thorough exploration preset, and the knob-sweep experiment
// helpers.
#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "grid/cost_array.hpp"
#include "harness/experiments.hpp"
#include "route/router.hpp"
#include "route/sequential.hpp"

namespace locus {
namespace {

Wire wire_with(std::vector<Pin> pins) {
  Wire w;
  w.id = 0;
  w.pins = std::move(pins);
  std::sort(w.pins.begin(), w.pins.end(), [](const Pin& a, const Pin& b) {
    return a.x != b.x ? a.x < b.x : a.row < b.row;
  });
  return w;
}

std::int64_t total_route_cells(const Circuit& c, Decomposition mode) {
  CostArray cost(c.channels(), c.grids());
  RouterParams params;
  params.decomposition = mode;
  WireRouter router(c.channels(), params);
  RouteWorkStats stats;
  std::int64_t cells = 0;
  for (const Wire& w : c.wires()) {
    cells += static_cast<std::int64_t>(router.route_wire(w, cost, stats).cells.size());
  }
  return cells;
}

TEST(MstDecomposition, TwoPinWiresIdenticalToChain) {
  Circuit c("t", 4, 30, {wire_with({{2, 0}, {25, 2}})});
  CostArray cost_a(4, 30), cost_b(4, 30);
  RouterParams chain, mst;
  mst.decomposition = Decomposition::kMst;
  RouteWorkStats sa, sb;
  WireRoute a = WireRouter(4, chain).route_wire(c.wire(0), cost_a, sa);
  WireRoute b = WireRouter(4, mst).route_wire(c.wire(0), cost_b, sb);
  EXPECT_EQ(a.cells, b.cells);
}

TEST(MstDecomposition, StarPatternUsesFewerCells) {
  // Four pins in a star: the chain connects left->center1->center2->right;
  // the MST hangs every outer pin off the nearest center, which on an empty
  // array needs no more cells than the chain.
  Circuit c("t", 6, 60, {wire_with({{30, 2}, {5, 2}, {55, 2}, {30, 0}})});
  CostArray empty_a(6, 60), empty_b(6, 60);
  RouterParams chain, mst;
  mst.decomposition = Decomposition::kMst;
  RouteWorkStats sa, sb;
  WireRoute a = WireRouter(6, chain).route_wire(c.wire(0), empty_a, sa);
  WireRoute b = WireRouter(6, mst).route_wire(c.wire(0), empty_b, sb);
  EXPECT_LE(b.cells.size(), a.cells.size());
}

TEST(MstDecomposition, ConnectsEveryPinOnRealCircuit) {
  Circuit c = make_tiny_test_circuit();
  CostArray cost(c.channels(), c.grids());
  RouterParams params;
  params.decomposition = Decomposition::kMst;
  WireRouter router(c.channels(), params);
  RouteWorkStats stats;
  for (const Wire& w : c.wires()) {
    WireRoute route = router.route_wire(w, cost, stats);
    ASSERT_EQ(route.connections.size(), w.pins.size() - 1);
    // Every pin column appears among the committed cells.
    for (const Pin& pin : w.pins) {
      bool found = false;
      for (const GridPoint& cell : route.cells) {
        if (cell.x == pin.x &&
            (cell.channel == pin.channel_above() ||
             cell.channel == pin.channel_below())) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "wire " << w.id << " pin at x=" << pin.x;
    }
  }
}

TEST(MstDecomposition, NoLongerThanChainOnAverage) {
  Circuit c = make_bnre_like();
  EXPECT_LE(total_route_cells(c, Decomposition::kMst),
            total_route_cells(c, Decomposition::kChainX));
}

TEST(CongestionPower, QuadraticAvoidsHotCells) {
  // A hot cell of occupancy 3 vs a detour of 3 empty cells: linear pricing
  // is indifferent (cost 3 either way); quadratic (9 vs 3) detours.
  CostArray cost(4, 20);
  for (std::int32_t x = 8; x <= 12; ++x) cost.set({1, x}, 3);
  Pin a{2, 0}, b{18, 0};  // channels 0/1
  ExplorerParams linear;
  ExplorerParams quadratic;
  quadratic.congestion_power = 2;
  ExploreResult lr = explore_connection(a, b, 4, cost, linear);
  ExploreResult qr = explore_connection(a, b, 4, cost, quadratic);
  // Quadratic never routes through more congested cells than linear when
  // re-priced linearly.
  std::int64_t linear_cost_of_quadratic = 0;
  qr.route.for_each_cell(
      [&](GridPoint p) { linear_cost_of_quadratic += cost.read(p); });
  std::int64_t linear_cost_of_linear = 0;
  lr.route.for_each_cell(
      [&](GridPoint p) { linear_cost_of_linear += cost.read(p); });
  EXPECT_LE(linear_cost_of_quadratic, linear_cost_of_linear + 3);
}

TEST(CongestionPower, LinearIsDefaultAndMatchesPaperPricing) {
  ExplorerParams params;
  EXPECT_EQ(params.congestion_power, 1);
}

TEST(ThoroughPreset, ExploresMore) {
  Circuit c = make_tiny_test_circuit();
  SequentialParams base;
  SequentialParams thorough;
  thorough.router.explorer = ExplorerParams::thorough();
  SequentialResult rb = route_sequential(c, base);
  SequentialResult rt = route_sequential(c, thorough);
  EXPECT_GT(rt.work.probes, rb.work.probes);
  EXPECT_GT(rt.work.routes_evaluated, rb.work.routes_evaluated);
  // Wider search cannot yield a worse occupancy on the same iteration
  // schedule by much (allow small rip-up interaction noise).
  EXPECT_LE(rt.occupancy_factor, rb.occupancy_factor * 11 / 10);
}

TEST(KnobSweeps, TablesWellFormed) {
  Circuit tiny = make_tiny_test_circuit();
  ExperimentConfig config;
  config.procs = 4;
  EXPECT_EQ(run_ablation_router(tiny).row_count(), 5u);
  EXPECT_EQ(run_iteration_convergence(tiny).row_count(), 5u);
  EXPECT_EQ(run_ablation_lookahead(tiny, config).row_count(), 5u);
  EXPECT_EQ(run_threshold_sweep(tiny, config).row_count(), 8u);
}

TEST(KnobSweeps, SecondIterationImprovesQuality) {
  // §3: "Performing several of these iterations ... improves the final
  // solution quality."
  Circuit bnre = make_bnre_like();
  SequentialParams one;
  one.iterations = 1;
  SequentialParams two;
  two.iterations = 2;
  SequentialResult r1 = route_sequential(bnre, one);
  SequentialResult r2 = route_sequential(bnre, two);
  EXPECT_LT(r2.circuit_height, r1.circuit_height);
}

}  // namespace
}  // namespace locus
