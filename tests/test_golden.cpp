// Golden determinism tests: exact expected values for fixed seeds and
// schedules. These are intentional-change detectors — if a refactor alters
// any number here, either it introduced a behavioural bug or the change is
// real and the constants (plus EXPERIMENTS.md) must be updated together.
#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "msg/driver.hpp"
#include "route/sequential.hpp"
#include "shm/shm_router.hpp"
#include "test_util.hpp"

namespace locus {
namespace {

TEST(Golden, TinyCircuitShape) {
  Circuit c = test::make_seeded_circuit();
  EXPECT_EQ(c.num_wires(), 24);
  // First wire's pins are a stable function of the seed.
  const Wire& w0 = c.wire(0);
  ASSERT_GE(w0.pins.size(), 2u);
  // Identical regeneration.
  Circuit again = test::make_seeded_circuit();
  for (WireId i = 0; i < c.num_wires(); ++i) {
    ASSERT_EQ(c.wire(i).pins, again.wire(i).pins);
  }
}

TEST(Golden, SequentialTiny) {
  SequentialResult r = route_sequential(test::make_seeded_circuit(), {});
  // Snapshot of the deterministic pipeline (seed 7, 2 iterations).
  SequentialResult again = route_sequential(test::make_seeded_circuit(), {});
  EXPECT_EQ(r.circuit_height, again.circuit_height);
  EXPECT_EQ(r.occupancy_factor, again.occupancy_factor);
  EXPECT_EQ(r.work.probes, again.work.probes);
  // Height is small and positive on the 4-channel tiny circuit.
  EXPECT_GT(r.circuit_height, 4);
  EXPECT_LT(r.circuit_height, 40);
}

TEST(Golden, BnreSequentialHeightBand) {
  // The bnrE-like circuit was tuned so the sequential height lands in the
  // paper's published band for bnrE (131 shm ... 151 receiver MP).
  SequentialResult r = route_sequential(make_bnre_like(), {});
  EXPECT_GE(r.circuit_height, 125);
  EXPECT_LE(r.circuit_height, 160);
}

TEST(Golden, MpRunReproducesExactly) {
  Circuit c = test::make_seeded_circuit();
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 5);
  MpRunResult a = run_message_passing(c, 4, config);
  MpRunResult b = run_message_passing(c, 4, config);
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.occupancy_factor, b.occupancy_factor);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
  EXPECT_EQ(a.network.packets, b.network.packets);
  EXPECT_EQ(a.machine.events, b.machine.events);
  EXPECT_DOUBLE_EQ(a.view_staleness, b.view_staleness);
}

TEST(Golden, ShmRunReproducesExactly) {
  Circuit c = test::make_seeded_circuit();
  ShmConfig config;
  config.procs = 4;
  ShmRunResult a = run_shared_memory(c, config);
  ShmRunResult b = run_shared_memory(c, config);
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); i += 997) {
    EXPECT_EQ(a.trace.refs()[i].addr, b.trace.refs()[i].addr);
    EXPECT_EQ(a.trace.refs()[i].time, b.trace.refs()[i].time);
  }
}

TEST(Golden, StalenessInvariants) {
  Circuit c = make_bnre_like();
  // Own-region staleness collapses to zero when every remote change is
  // pushed to the owner after every wire (SendRmtData = 1): the owner has
  // seen everything by drain time.
  MpConfig config;
  config.schedule = UpdateSchedule::sender(1, 10);
  MpRunResult r = run_message_passing(c, 16, config);
  EXPECT_DOUBLE_EQ(r.own_region_staleness, 0.0);
  // Without any updates, views are maximally stale.
  MpConfig silent;
  MpRunResult rs = run_message_passing(c, 16, silent);
  EXPECT_GT(rs.view_staleness, r.view_staleness);
  EXPECT_GT(rs.own_region_staleness, 1.0);
}

TEST(Golden, SingleProcViewIsTruth) {
  Circuit c = test::make_seeded_circuit();
  MpConfig config;
  MpRunResult r = run_message_passing(c, 1, config);
  EXPECT_DOUBLE_EQ(r.view_staleness, 0.0);
  EXPECT_DOUBLE_EQ(r.own_region_staleness, 0.0);
}

}  // namespace
}  // namespace locus
