// Tests for the extension models: Dragon write-update coherence, the bus
// occupancy estimate, and the NUMA reference-cost model — plus the numa::
// machine helpers (affinity introspection, pinning, first-touch) the
// SimPool's placement logic builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "assign/assignment.hpp"
#include "circuit/generator.hpp"
#include "coherence/bus.hpp"
#include "coherence/simulator.hpp"
#include "shm/numa.hpp"
#include "shm/shm_router.hpp"

namespace locus {
namespace {

CoherenceSim make_dragon(std::int32_t line = 8) {
  CoherenceParams params;
  params.line_size = line;
  params.protocol = ProtocolKind::kDragon;
  return CoherenceSim(4, params);
}

TEST(Dragon, NeverInvalidates) {
  CoherenceSim sim = make_dragon();
  for (int i = 0; i < 100; ++i) {
    sim.access(i % 4, static_cast<std::uint32_t>((i * 12) % 64),
               i % 2 == 0 ? MemOp::kRead : MemOp::kWrite);
  }
  EXPECT_EQ(sim.traffic().invalidation_msgs, 0u);
  EXPECT_EQ(sim.traffic().refetch_bytes, 0u);
}

TEST(Dragon, SharedWriteBroadcastsWord) {
  CoherenceSim sim = make_dragon();
  sim.access(0, 0, MemOp::kRead);
  sim.access(1, 0, MemOp::kRead);
  std::uint64_t before = sim.traffic().total_bytes();
  sim.access(0, 0, MemOp::kWrite);
  EXPECT_EQ(sim.traffic().total_bytes(), before + 4);
  // Sharers keep their copies current: proc 1 re-reads for free.
  sim.access(1, 0, MemOp::kRead);
  EXPECT_EQ(sim.traffic().total_bytes(), before + 4);
}

TEST(Dragon, PrivateWriteIsFree) {
  CoherenceSim sim = make_dragon();
  sim.access(0, 0, MemOp::kRead);
  std::uint64_t before = sim.traffic().total_bytes();
  sim.access(0, 0, MemOp::kWrite);  // sole holder: no bus word
  EXPECT_EQ(sim.traffic().total_bytes(), before);
}

TEST(Dragon, TrafficFlatInLineSizeOnPingPong) {
  // The invalidate protocols pay line-sized flushes per handoff; Dragon
  // pays a word per shared write regardless of line size.
  for (std::int32_t line : {8, 32}) {
    CoherenceSim sim = make_dragon(line);
    sim.access(0, 0, MemOp::kRead);
    sim.access(1, 0, MemOp::kRead);
    std::uint64_t before = sim.traffic().total_bytes();
    for (int i = 0; i < 10; ++i) {
      sim.access(i % 2, 0, MemOp::kWrite);
    }
    EXPECT_EQ(sim.traffic().total_bytes() - before, 40u) << "line=" << line;
  }
}

TEST(Dragon, BeatsWbiOnRealTrace) {
  ShmConfig config;
  config.procs = 4;
  RefTrace trace = run_shared_memory(make_tiny_test_circuit(), config).trace;
  auto results =
      sweep_line_sizes(trace, 4, {8, 32}, ProtocolKind::kWriteBackInvalidate);
  auto dragon = sweep_line_sizes(trace, 4, {8, 32}, ProtocolKind::kDragon);
  EXPECT_LT(dragon[0].total_bytes(), results[0].total_bytes());
  // And the gap widens with line size (no refetch scaling).
  EXPECT_LT(dragon[1].total_bytes() * 2, results[1].total_bytes());
}

TEST(Bus, EstimateScalesWithTraffic) {
  CoherenceTraffic small;
  small.cold_fetch_bytes = 1000;
  small.read_misses = 10;
  CoherenceTraffic large = small;
  large.cold_fetch_bytes = 100000;
  large.read_misses = 1000;
  BusEstimate a = estimate_bus(small);
  BusEstimate b = estimate_bus(large);
  EXPECT_GT(b.busy_ns(), a.busy_ns());
  EXPECT_EQ(b.transactions, 1000u);
}

TEST(Bus, DataTimeMatchesBandwidth) {
  CoherenceTraffic t;
  t.cold_fetch_bytes = 40000;  // at 40 B/us -> 1000 us
  BusParams params;
  BusEstimate e = estimate_bus(t, params);
  EXPECT_EQ(e.data_ns, 1000000);
}

TEST(Bus, UtilizationAgainstSpan) {
  CoherenceTraffic t;
  t.cold_fetch_bytes = 40000;
  BusEstimate e = estimate_bus(t);
  EXPECT_NEAR(e.utilization(2000000), 0.5, 0.01);
  EXPECT_EQ(e.utilization(0), 0.0);
}

TEST(Numa, ClassifiesCounterToProcZero) {
  Partition part(4, 32, MeshShape{2, 2});
  RefTrace trace;
  trace.append({0, kLoopCounterAddr, 0, MemOp::kRead});
  trace.append({1, kLoopCounterAddr, 1, MemOp::kRead});
  NumaEstimate e = estimate_numa(trace, part);
  EXPECT_EQ(e.local_refs, 1u);
  EXPECT_EQ(e.remote_refs, 1u);
}

TEST(Numa, ClassifiesCostArrayByOwner) {
  Partition part(4, 32, MeshShape{2, 2});
  RefTrace trace;
  // Cell (channel 0, x 0) is owned by proc 0 (column-major addr 0).
  trace.append({0, cost_cell_addr(0, 0, 4), 0, MemOp::kRead});   // local
  trace.append({1, cost_cell_addr(0, 0, 4), 3, MemOp::kRead});   // remote
  // Cell (channel 3, x 31) is owned by proc 3.
  trace.append({2, cost_cell_addr(3, 31, 4), 3, MemOp::kWrite}); // local
  NumaEstimate e = estimate_numa(trace, part);
  EXPECT_EQ(e.local_refs, 2u);
  EXPECT_EQ(e.remote_refs, 1u);
}

TEST(Numa, MemoryTimeUsesBothRates) {
  Partition part(4, 32, MeshShape{2, 2});
  RefTrace trace;
  trace.append({0, cost_cell_addr(0, 0, 4), 0, MemOp::kRead});
  trace.append({1, cost_cell_addr(0, 0, 4), 3, MemOp::kRead});
  NumaParams params;
  params.local_ns = 100;
  params.remote_ns = 900;
  NumaEstimate e = estimate_numa(trace, part, params);
  EXPECT_EQ(e.memory_ns, 1000);
  EXPECT_DOUBLE_EQ(e.remote_fraction(), 0.5);
}

TEST(Numa, LocalityAssignmentLowersRemoteFraction) {
  Circuit circuit = make_bnre_like();
  const Partition partition(circuit.channels(), circuit.grids(),
                            MeshShape::for_procs(16));
  ShmConfig rr_config;
  rr_config.procs = 16;
  rr_config.assignment = assign_round_robin(circuit, 16);
  rr_config.trace_dedup_reads = true;  // smaller traces; classification only
  ShmConfig local_config = rr_config;
  local_config.assignment =
      assign_threshold_cost(circuit, partition, kThresholdInfinity);

  NumaEstimate rr = estimate_numa(run_shared_memory(circuit, rr_config).trace,
                                  partition);
  NumaEstimate local = estimate_numa(
      run_shared_memory(circuit, local_config).trace, partition);
  EXPECT_LT(local.remote_fraction(), rr.remote_fraction());
  // Round robin over 16 regions is ~15/16 remote by construction.
  EXPECT_NEAR(rr.remote_fraction(), 0.9375, 0.03);
}

// ---------------------------------------------------------------------------
// numa:: machine helpers. These must degrade, never fail: on hosts without
// affinity syscalls (and on CI runners whose masks are restricted) every
// helper still answers coherently and pinning reports false instead of
// erroring — SimPool treats "cannot pin" as "run unpinned".

TEST(NumaMachine, AvailableCpusIsCoherentWithAllowedList) {
  const int cpus = numa::available_cpus();
  EXPECT_GE(cpus, 1);
  const std::vector<int> allowed = numa::allowed_cpus();
  if (numa::pinning_supported()) {
    // The count and the enumeration come from the same affinity mask.
    EXPECT_EQ(static_cast<int>(allowed.size()), cpus);
    for (int cpu : allowed) EXPECT_GE(cpu, 0);
    EXPECT_TRUE(std::is_sorted(allowed.begin(), allowed.end()));
  } else {
    // Fallback path: no enumeration, but the count still answers.
    EXPECT_TRUE(allowed.empty());
  }
}

TEST(NumaMachine, PinFollowsSupportAndSlotsWrapModulo) {
  const bool supported = numa::pinning_supported();
  // Success must agree with the advertised support either way — this is
  // the exact check SimPool performs before pinning workers.
  EXPECT_EQ(numa::pin_current_thread(0), supported);
  // Slots beyond the mask wrap (worker w on cpu allowed[w % n]), so any
  // worker index is pinnable on any machine.
  EXPECT_EQ(numa::pin_current_thread(1000003), supported);
  EXPECT_EQ(numa::unpin_current_thread(), supported);
  // After unpinning, the full original mask is visible again.
  EXPECT_GE(numa::available_cpus(), 1);
}

TEST(NumaMachine, PinnedWorkerStillComputes) {
  // The pool's usage shape: a helper thread pins itself by slot (best
  // effort), does sim work, exits. Must hold on both the pinned and the
  // unsupported/fallback path.
  std::uint64_t sum = 0;
  std::thread worker([&] {
    (void)numa::pin_current_thread(1);
    for (std::uint64_t i = 0; i < 1000; ++i) sum += i;
  });
  worker.join();
  EXPECT_EQ(sum, 499500u);
}

TEST(NumaMachine, FirstTouchWarmsWithoutResizingPages) {
  EXPECT_GE(mem::page_size(), 512u);
  // Power of two (sysconf guarantees it; the fallback constant is too).
  EXPECT_EQ(mem::page_size() & (mem::page_size() - 1), 0u);

  // Touch a multi-page buffer, then verify it is fully writable and
  // zero-initialized where touched (the arena carves slabs from
  // freshly-reserved memory, so the zero store is safe by contract).
  const std::size_t bytes = 3 * mem::page_size() + 17;
  std::vector<unsigned char> slab(bytes, 0);
  numa::first_touch(slab.data(), slab.size());
  EXPECT_TRUE(std::all_of(slab.begin(), slab.end(),
                          [](unsigned char b) { return b == 0; }));
  numa::first_touch(nullptr, 0);  // degenerate inputs are no-ops
  numa::first_touch(slab.data(), 0);
}

}  // namespace
}  // namespace locus
