// Tests for the message passing implementation: packet sizing, update
// propagation between nodes, suppression, blocking semantics, and full-run
// invariants on small circuits.
#include <gtest/gtest.h>

#include "circuit/generator.hpp"
#include "msg/driver.hpp"
#include "msg/packets.hpp"
#include "route/quality.hpp"
#include "route/sequential.hpp"

namespace locus {
namespace {

TEST(Packets, BoundingBoxBytes) {
  Rect box = Rect::of(0, 1, 0, 4);  // 10 cells
  EXPECT_EQ(update_packet_bytes(PacketStructure::kBoundingBox, box, true, 0, 100),
            kUpdateHeaderBytes + 10 * kAbsoluteBytesPerCell);
  EXPECT_EQ(update_packet_bytes(PacketStructure::kBoundingBox, box, false, 0, 100),
            kUpdateHeaderBytes + 10 * kDeltaBytesPerCell);
}

TEST(Packets, WholeRegionIgnoresBbox) {
  Rect box = Rect::single({0, 0});
  EXPECT_EQ(update_packet_bytes(PacketStructure::kWholeRegion, box, true, 0, 100),
            kUpdateHeaderBytes + 100 * kAbsoluteBytesPerCell);
}

TEST(Packets, WireBasedScalesWithSegments) {
  Rect box = Rect::of(0, 5, 0, 50);
  EXPECT_EQ(update_packet_bytes(PacketStructure::kWireBased, box, false, 7, 100),
            kUpdateHeaderBytes + 7 * kWireSegmentBytes);
}

TEST(Packets, RequestIsHeaderOnly) {
  EXPECT_EQ(request_packet_bytes(), kUpdateHeaderBytes);
}

TEST(Packets, EmptyBboxCostsHeaderOnly) {
  EXPECT_EQ(update_packet_bytes(PacketStructure::kBoundingBox, Rect::empty(), true,
                                0, 100),
            kUpdateHeaderBytes);
}

class MpRunTest : public ::testing::Test {
 protected:
  MpRunTest() : circuit_(make_tiny_test_circuit()) {}

  MpRunResult run(const UpdateSchedule& schedule, std::int32_t procs = 4,
                  std::int32_t iterations = 2) {
    MpConfig config;
    config.schedule = schedule;
    config.iterations = iterations;
    return run_message_passing(circuit_, procs, config);
  }

  Circuit circuit_;
};

TEST_F(MpRunTest, EveryWireRouted) {
  MpRunResult r = run(UpdateSchedule::sender(2, 5));
  ASSERT_EQ(r.routes.size(), static_cast<std::size_t>(circuit_.num_wires()));
  for (const WireRoute& route : r.routes) {
    EXPECT_TRUE(route.routed());
  }
  EXPECT_EQ(r.work.wires_routed, circuit_.num_wires() * 2);
}

TEST_F(MpRunTest, HeightMatchesRebuiltRoutes) {
  MpRunResult r = run(UpdateSchedule::sender(2, 5));
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit_.channels(), circuit_.grids(), r.routes));
}

TEST_F(MpRunTest, Deterministic) {
  MpRunResult a = run(UpdateSchedule::receiver(1, 3));
  MpRunResult b = run(UpdateSchedule::receiver(1, 3));
  EXPECT_EQ(a.circuit_height, b.circuit_height);
  EXPECT_EQ(a.occupancy_factor, b.occupancy_factor);
  EXPECT_EQ(a.bytes_transferred, b.bytes_transferred);
  EXPECT_EQ(a.completion_ns, b.completion_ns);
}

TEST_F(MpRunTest, NoUpdatesMeansNoTraffic) {
  UpdateSchedule silent;  // all periods zero
  MpRunResult r = run(silent);
  EXPECT_EQ(r.bytes_transferred, 0u);
  EXPECT_EQ(r.network.packets, 0u);
  // Quality still defined: every node routed on its own blind view.
  EXPECT_GT(r.circuit_height, 0);
}

TEST_F(MpRunTest, SingleProcessorNeedsNoNetwork) {
  MpRunResult r = run(UpdateSchedule::sender(1, 1), /*procs=*/1);
  EXPECT_EQ(r.bytes_transferred, 0u);
  // With one processor the view IS the truth: quality equals sequential.
  SequentialResult seq = route_sequential(circuit_, {});
  EXPECT_EQ(r.circuit_height, seq.circuit_height);
  EXPECT_EQ(r.occupancy_factor, seq.occupancy_factor);
}

TEST_F(MpRunTest, MoreFrequentSenderUpdatesMeanMoreTraffic) {
  MpRunResult frequent = run(UpdateSchedule::sender(1, 1));
  MpRunResult rare = run(UpdateSchedule::sender(8, 8));
  EXPECT_GT(frequent.bytes_transferred, rare.bytes_transferred);
}

TEST_F(MpRunTest, ReceiverTrafficBelowSender) {
  MpRunResult sender = run(UpdateSchedule::sender(2, 5));
  MpRunResult receiver = run(UpdateSchedule::receiver(2, 10));
  EXPECT_LT(receiver.bytes_transferred, sender.bytes_transferred);
}

TEST_F(MpRunTest, BlockingCostsTimeNotQuality) {
  MpRunResult nb = run(UpdateSchedule::receiver(1, 3, false));
  MpRunResult b = run(UpdateSchedule::receiver(1, 3, true));
  EXPECT_GE(b.completion_ns, nb.completion_ns);
  // Quality comparable (paper §5.1.3: "not worse").
  EXPECT_NEAR(static_cast<double>(b.circuit_height),
              static_cast<double>(nb.circuit_height),
              static_cast<double>(nb.circuit_height) * 0.25);
}

TEST_F(MpRunTest, RequestsGenerateResponses) {
  MpRunResult r = run(UpdateSchedule::receiver(1, 2));
  EXPECT_GT(r.requests_sent, 0);
  // Every ReqRmtData is answered; ReqLocData responses may be suppressed.
  EXPECT_GT(r.network.bytes_by_type.count(kMsgRspRmtData), 0u);
}

TEST_F(MpRunTest, SenderSchedulePopulatesBothTypes) {
  MpRunResult r = run(UpdateSchedule::sender(1, 1));
  EXPECT_GT(r.network.bytes_by_type.count(kMsgSendLocData), 0u);
  EXPECT_GT(r.network.bytes_by_type.count(kMsgSendRmtData), 0u);
  EXPECT_EQ(r.network.bytes_by_type.count(kMsgReqRmtData), 0u);
}

TEST_F(MpRunTest, SuppressionHappensOnCleanRegions) {
  // With very frequent SendLoc updates most periods find no changes in the
  // sender's own region, so suppression must trigger.
  MpRunResult r = run(UpdateSchedule::sender(0, 1));
  EXPECT_GT(r.updates_suppressed, 0);
}

TEST_F(MpRunTest, MoreIterationsMoreWork) {
  MpRunResult two = run(UpdateSchedule::sender(2, 5), 4, 2);
  MpRunResult four = run(UpdateSchedule::sender(2, 5), 4, 4);
  EXPECT_EQ(four.work.wires_routed, 2 * two.work.wires_routed);
  EXPECT_GT(four.completion_ns, two.completion_ns);
}

TEST_F(MpRunTest, PacketStructureChangesOnlyTraffic) {
  MpConfig bbox_config;
  bbox_config.schedule = UpdateSchedule::sender(2, 5);
  MpConfig region_config = bbox_config;
  region_config.packet_structure = PacketStructure::kWholeRegion;

  MpRunResult bbox = run_message_passing(circuit_, 4, bbox_config);
  MpRunResult region = run_message_passing(circuit_, 4, region_config);
  // Same information transferred => near-identical routing outcome (packet
  // sizes shift update arrival times slightly, so allow a small band)...
  EXPECT_NEAR(static_cast<double>(bbox.circuit_height),
              static_cast<double>(region.circuit_height), 3.0);
  // ...but whole-region packets cost more bytes (paper §4.3.1).
  EXPECT_GT(region.bytes_transferred, bbox.bytes_transferred);
}

TEST_F(MpRunTest, TorusShortensLatency) {
  MpConfig mesh_config;
  mesh_config.schedule = UpdateSchedule::sender(2, 5);
  MpConfig torus_config = mesh_config;
  torus_config.edges = Topology::Edges::kTorus;
  MpRunResult mesh = run_message_passing(circuit_, 4, mesh_config);
  MpRunResult torus = run_message_passing(circuit_, 4, torus_config);
  EXPECT_LE(torus.network.byte_hops, mesh.network.byte_hops);
}

/// Property sweep: invariants hold over a grid of schedules.
struct ScheduleCase {
  std::int32_t send_rmt, send_loc, req_loc, req_rmt;
  bool blocking;
};

class MpScheduleProperty : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(MpScheduleProperty, RunInvariants) {
  const ScheduleCase& sc = GetParam();
  UpdateSchedule schedule;
  schedule.send_rmt_period = sc.send_rmt;
  schedule.send_loc_period = sc.send_loc;
  schedule.req_loc_requests = sc.req_loc;
  schedule.req_rmt_touches = sc.req_rmt;
  schedule.blocking_receiver = sc.blocking;

  Circuit circuit = make_tiny_test_circuit();
  MpConfig config;
  config.schedule = schedule;
  MpRunResult r = run_message_passing(circuit, 4, config);

  for (const WireRoute& route : r.routes) {
    ASSERT_TRUE(route.routed());
  }
  EXPECT_EQ(r.circuit_height,
            circuit_height(circuit.channels(), circuit.grids(), r.routes));
  EXPECT_GT(r.completion_ns, 0);
  EXPECT_GE(r.occupancy_factor, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, MpScheduleProperty,
    ::testing::Values(ScheduleCase{0, 0, 0, 0, false},
                      ScheduleCase{1, 1, 0, 0, false},
                      ScheduleCase{5, 10, 0, 0, false},
                      ScheduleCase{0, 3, 0, 0, false},
                      ScheduleCase{3, 0, 0, 0, false},
                      ScheduleCase{0, 0, 1, 2, false},
                      ScheduleCase{0, 0, 2, 5, false},
                      ScheduleCase{0, 0, 1, 2, true},
                      ScheduleCase{0, 0, 10, 8, true},
                      ScheduleCase{2, 5, 1, 3, false},
                      ScheduleCase{2, 5, 1, 3, true}));

}  // namespace
}  // namespace locus
