// Unit tests for the support library: RNG determinism and distributions,
// table/CSV rendering, CLI parsing.
#include <gtest/gtest.h>

#include <set>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace locus {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(13), 13u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(rng.geometric(0.1, 5), 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Table, RendersAlignedColumns) {
  Table t;
  t.column("name", Align::kLeft).column("value");
  t.row().cell("alpha").cell(42);
  t.row().cell("b").cell(7);
  std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |    42 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |     7 |"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  Table t;
  t.column("a").column("b");
  t.row().cell("x,y").cell("say \"hi\"");
  std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(format_fixed(1.23456, 3), "1.235");
  EXPECT_EQ(format_fixed(2.0, 1), "2.0");
  EXPECT_EQ(format_mbytes(1893000), "1.893");
}

TEST(Table, SeparatorInsertsRule) {
  Table t;
  t.column("x");
  t.row().cell(1);
  t.separator();
  t.row().cell(2);
  std::string out = t.render();
  // header rule + top + bottom + one separator = 4 horizontal rules
  int rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+--", pos)) != std::string::npos; ++pos) {
    ++rules;
  }
  EXPECT_EQ(rules, 4);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  Cli cli;
  cli.flag("iters", "iterations", "2");
  cli.flag("verbose", "chatty", false);
  const char* argv[] = {"prog", "--iters=5", "--verbose", "file.ckt"};
  ASSERT_TRUE(cli.parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("iters"), 5);
  EXPECT_TRUE(cli.get_bool("verbose"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.ckt");
}

TEST(Cli, SeparateValueForm) {
  Cli cli;
  cli.flag("n", "count", "1");
  const char* argv[] = {"prog", "--n", "9"};
  ASSERT_TRUE(cli.parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("n"), 9);
}

TEST(Cli, RejectsUnknownFlag) {
  Cli cli;
  cli.flag("n", "count", "1");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(2, const_cast<char**>(argv)));
}

TEST(Cli, DefaultsSurviveNoArgs) {
  Cli cli;
  cli.flag("mode", "mode", "fast");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get("mode"), "fast");
}

}  // namespace
}  // namespace locus
