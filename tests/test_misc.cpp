// Coverage for the remaining small pieces: logging, stopwatch, the time
// model arithmetic, schedule factories, and packet-size helpers.
#include <gtest/gtest.h>

#include <thread>

#include "msg/config.hpp"
#include "msg/packets.hpp"
#include "route/cost_model.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"

namespace locus {
namespace {

TEST(Log, ThresholdGatesLevels) {
  LogLevel saved = Log::threshold();
  Log::threshold() = LogLevel::kWarn;
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kInfo));
  EXPECT_TRUE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::threshold() = LogLevel::kOff;
  EXPECT_FALSE(Log::enabled(LogLevel::kError));
  Log::threshold() = saved;
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double t = sw.seconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 5.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(TimeModel, RoutingTimeIsLinear) {
  TimeModel tm;
  tm.probe_ns = 10;
  tm.commit_ns = 3;
  tm.wire_fixed_ns = 100;
  EXPECT_EQ(tm.routing_time_ns(0, 0, 0), 0);
  EXPECT_EQ(tm.routing_time_ns(5, 2, 1), 50 + 6 + 100);
  EXPECT_EQ(tm.routing_time_ns(5, 2, 2), 50 + 6 + 200);
}

TEST(TimeModel, PaperNetworkConstants) {
  TimeModel tm;
  EXPECT_EQ(tm.hop_time_ns, 100);      // paper §2.1
  EXPECT_EQ(tm.process_time_ns, 2000); // paper §2.1
}

TEST(UpdateScheduleFactories, SenderEnablesOnlySenderSide) {
  UpdateSchedule s = UpdateSchedule::sender(3, 7);
  EXPECT_EQ(s.send_rmt_period, 3);
  EXPECT_EQ(s.send_loc_period, 7);
  EXPECT_TRUE(s.sender_enabled());
  EXPECT_FALSE(s.receiver_enabled());
  EXPECT_FALSE(s.blocking_receiver);
}

TEST(UpdateScheduleFactories, ReceiverEnablesOnlyReceiverSide) {
  UpdateSchedule s = UpdateSchedule::receiver(2, 9, true);
  EXPECT_EQ(s.req_loc_requests, 2);
  EXPECT_EQ(s.req_rmt_touches, 9);
  EXPECT_TRUE(s.receiver_enabled());
  EXPECT_FALSE(s.sender_enabled());
  EXPECT_TRUE(s.blocking_receiver);
  EXPECT_EQ(s.request_lookahead, 5);  // the paper's "five wires at a time"
}

TEST(UpdateScheduleFactories, EmptyScheduleDisablesEverything) {
  UpdateSchedule s;
  EXPECT_FALSE(s.sender_enabled());
  EXPECT_FALSE(s.receiver_enabled());
}

TEST(PacketsMisc, GrantBiggerThanRequest) {
  EXPECT_GT(grant_packet_bytes(), request_packet_bytes());
  EXPECT_EQ(request_packet_bytes(), kUpdateHeaderBytes);
}

TEST(PacketsMisc, AbsolutePayloadDominatesDelta) {
  Rect box = Rect::of(0, 3, 0, 9);  // 40 cells
  std::int32_t absolute = update_packet_bytes(PacketStructure::kBoundingBox, box,
                                              true, 0, 0);
  std::int32_t delta = update_packet_bytes(PacketStructure::kBoundingBox, box,
                                           false, 0, 0);
  EXPECT_EQ(absolute - kUpdateHeaderBytes, 2 * (delta - kUpdateHeaderBytes));
}

TEST(ExperimentDefaults, MatchThePaperSetup) {
  // 16 processors, two iterations — the configuration all §5 tables use.
  MpConfig mp;
  EXPECT_EQ(mp.iterations, 2);
  EXPECT_EQ(mp.packet_structure, PacketStructure::kBoundingBox);
  EXPECT_EQ(mp.assignment_mode, WireAssignmentMode::kStatic);
  EXPECT_EQ(mp.edges, Topology::Edges::kMesh);
}

}  // namespace
}  // namespace locus
