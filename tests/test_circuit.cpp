// Tests for the circuit model and the synthetic generators.
#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/generator.hpp"
#include "circuit/stats.hpp"

namespace locus {
namespace {

Wire make_wire(std::vector<Pin> pins) {
  Wire w;
  w.pins = std::move(pins);
  return w;
}

TEST(Circuit, SortsPinsByXThenRow) {
  Circuit c("t", 4, 20, {make_wire({{15, 1}, {3, 2}, {3, 0}})});
  const Wire& w = c.wire(0);
  EXPECT_EQ(w.pins[0], (Pin{3, 0}));
  EXPECT_EQ(w.pins[1], (Pin{3, 2}));
  EXPECT_EQ(w.pins[2], (Pin{15, 1}));
}

TEST(Circuit, AssignsSequentialIds) {
  Circuit c("t", 4, 20,
            {make_wire({{0, 0}, {5, 0}}), make_wire({{1, 1}, {6, 1}})});
  EXPECT_EQ(c.wire(0).id, 0);
  EXPECT_EQ(c.wire(1).id, 1);
  EXPECT_EQ(c.num_wires(), 2);
  EXPECT_EQ(c.num_cell_rows(), 3);
}

TEST(Wire, PinChannels) {
  Pin p{10, 2};
  EXPECT_EQ(p.channel_above(), 2);
  EXPECT_EQ(p.channel_below(), 3);
}

TEST(Wire, PinBboxCoversBothChannelOptions) {
  Wire w = make_wire({{3, 0}, {9, 2}});
  Rect box = w.pin_bbox();
  EXPECT_EQ(box, Rect::of(0, 3, 3, 9));
}

TEST(Wire, LengthCostSumsAdjacentSpans) {
  Circuit c("t", 6, 50, {make_wire({{0, 0}, {10, 2}, {30, 1}})});
  // |10-0| + |2-0| = 12; |30-10| + |1-2| = 21; total 33.
  EXPECT_EQ(c.wire(0).length_cost(), 33);
}

TEST(Wire, AssignmentCostIsBboxArea) {
  Circuit c("t", 6, 50, {make_wire({{0, 0}, {10, 2}})});
  // channels 0..3, x 0..10 -> 4 * 11.
  EXPECT_EQ(c.wire(0).assignment_cost(), 44);
}

TEST(Generator, DeterministicForSameSeed) {
  GeneratorParams p;
  p.num_wires = 50;
  p.seed = 99;
  Circuit a = generate_circuit(p);
  Circuit b = generate_circuit(p);
  ASSERT_EQ(a.num_wires(), b.num_wires());
  for (WireId i = 0; i < a.num_wires(); ++i) {
    EXPECT_EQ(a.wire(i).pins, b.wire(i).pins);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorParams p;
  p.num_wires = 50;
  p.seed = 1;
  Circuit a = generate_circuit(p);
  p.seed = 2;
  Circuit b = generate_circuit(p);
  int differing = 0;
  for (WireId i = 0; i < a.num_wires(); ++i) {
    if (a.wire(i).pins != b.wire(i).pins) ++differing;
  }
  EXPECT_GT(differing, 25);
}

TEST(Generator, BnreLikeHasPublishedDimensions) {
  Circuit c = make_bnre_like();
  EXPECT_EQ(c.name(), "bnrE-like");
  EXPECT_EQ(c.channels(), 10);
  EXPECT_EQ(c.grids(), 341);
  EXPECT_EQ(c.num_wires(), 420);
}

TEST(Generator, MdcLikeHasPublishedDimensions) {
  Circuit c = make_mdc_like();
  EXPECT_EQ(c.channels(), 12);
  EXPECT_EQ(c.grids(), 386);
  EXPECT_EQ(c.num_wires(), 573);
}

TEST(Generator, IndustrialLikeDimensions) {
  Circuit c = make_industrial_like();
  EXPECT_EQ(c.channels(), 18);
  EXPECT_EQ(c.grids(), 900);
  EXPECT_EQ(c.num_wires(), 2000);
}

TEST(Generator, EveryWireHasAtLeastTwoDistinctPinSites) {
  Circuit c = make_bnre_like();
  for (const Wire& w : c.wires()) {
    ASSERT_GE(w.pins.size(), 2u);
    bool distinct = false;
    for (const Pin& p : w.pins) {
      if (p != w.pins.front()) distinct = true;
    }
    EXPECT_TRUE(distinct) << "wire " << w.id;
  }
}

TEST(Generator, LengthMixSupportsThresholdExperiments) {
  // The ThresholdCost experiments need all three settings (30 / 1000 / inf)
  // to produce different assignments: some wires below 30, some between,
  // and some above 1000.
  for (const Circuit& c : {make_bnre_like(), make_mdc_like()}) {
    int below30 = 0, mid = 0, above1000 = 0;
    for (const Wire& w : c.wires()) {
      std::int64_t cost = w.assignment_cost();
      if (cost < 30) ++below30;
      else if (cost < 1000) ++mid;
      else ++above1000;
    }
    EXPECT_GT(below30, c.num_wires() / 10) << c.name();
    EXPECT_GT(mid, c.num_wires() / 10) << c.name();
    EXPECT_GT(above1000, 5) << c.name();
  }
}

TEST(Stats, CountsAndMeans) {
  Circuit c("t", 6, 50,
            {make_wire({{0, 0}, {10, 0}}), make_wire({{0, 1}, {4, 1}, {9, 1}})});
  CircuitStats s = compute_stats(c);
  EXPECT_EQ(s.num_wires, 2);
  EXPECT_EQ(s.total_pins, 5);
  EXPECT_EQ(s.max_pins, 3);
  EXPECT_DOUBLE_EQ(s.mean_pins, 2.5);
  EXPECT_EQ(s.total_length_cost, 10 + 9);
  EXPECT_EQ(s.max_length_cost, 10);
}

TEST(Stats, DescribeMentionsNameAndDims) {
  Circuit c = make_tiny_test_circuit();
  std::string d = describe(c);
  EXPECT_NE(d.find("tiny"), std::string::npos);
  EXPECT_NE(d.find("4 channels"), std::string::npos);
  EXPECT_NE(d.find("32 grids"), std::string::npos);
}

/// Property sweep over generator seeds: structural invariants hold for any
/// seed.
class GeneratorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorProperty, StructurallyValid) {
  GeneratorParams p;
  p.channels = 6;
  p.grids = 64;
  p.num_wires = 80;
  p.seed = GetParam();
  Circuit c = generate_circuit(p);
  EXPECT_EQ(c.num_wires(), 80);
  for (const Wire& w : c.wires()) {
    EXPECT_GE(w.pins.size(), 2u);
    EXPECT_LE(static_cast<std::int32_t>(w.pins.size()), p.max_pins);
    for (std::size_t i = 1; i < w.pins.size(); ++i) {
      EXPECT_LE(w.pins[i - 1].x, w.pins[i].x);  // sorted
    }
    for (const Pin& pin : w.pins) {
      EXPECT_GE(pin.x, 0);
      EXPECT_LT(pin.x, 64);
      EXPECT_GE(pin.row, 0);
      EXPECT_LT(pin.row, 5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty,
                         ::testing::Values(0, 1, 2, 3, 17, 42, 1000, 123456789));

}  // namespace
}  // namespace locus
