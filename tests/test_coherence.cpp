// Tests for the cache coherence simulator: protocol event-by-event
// scenarios, traffic attribution, and line-size behaviour.
#include <gtest/gtest.h>

#include "coherence/simulator.hpp"
#include "shm/trace.hpp"
#include "support/rng.hpp"

namespace locus {
namespace {

CoherenceSim make_wbi(std::int32_t line = 8, std::int32_t procs = 4) {
  CoherenceParams params;
  params.line_size = line;
  return CoherenceSim(procs, params);
}

TEST(Wbi, ColdReadMissFetchesLine) {
  CoherenceSim sim = make_wbi();
  sim.access(0, 0, MemOp::kRead);
  EXPECT_EQ(sim.traffic().cold_fetch_bytes, 8u);
  EXPECT_EQ(sim.traffic().read_misses, 1u);
  EXPECT_EQ(sim.traffic().total_bytes(), 8u);
}

TEST(Wbi, RepeatReadIsFree) {
  CoherenceSim sim = make_wbi();
  sim.access(0, 0, MemOp::kRead);
  sim.access(0, 4, MemOp::kRead);  // same 8-byte line
  EXPECT_EQ(sim.traffic().total_bytes(), 8u);
}

TEST(Wbi, FirstWriteToCleanCostsOneWord) {
  CoherenceSim sim = make_wbi();
  sim.access(0, 0, MemOp::kRead);
  sim.access(0, 0, MemOp::kWrite);
  EXPECT_EQ(sim.traffic().word_write_bytes, 4u);
  sim.access(0, 0, MemOp::kWrite);  // dirty hit: free
  sim.access(0, 4, MemOp::kWrite);  // same line, still dirty: free
  EXPECT_EQ(sim.traffic().word_write_bytes, 4u);
}

TEST(Wbi, WriteInvalidatesSharers) {
  CoherenceSim sim = make_wbi();
  sim.access(0, 0, MemOp::kRead);
  sim.access(1, 0, MemOp::kRead);
  sim.access(0, 0, MemOp::kWrite);
  EXPECT_EQ(sim.traffic().invalidation_msgs, 1u);
  // Proc 1 lost its copy; proc 0 holds it dirty, so the re-read is served
  // by a flush (write-attributed traffic either way).
  sim.access(1, 0, MemOp::kRead);
  EXPECT_EQ(sim.traffic().read_flush_bytes, 8u);
}

TEST(Wbi, RefetchAfterInvalidationClassifiedAsWriteTraffic) {
  // p0 read (cold) / p1 write (invalidates p0, dirty at p1) / p2 read
  // (flush -> clean at {1,2}) / p0 read: line is memory-clean but p0 held
  // it before the invalidation -> refetch, attributed to writes.
  CoherenceSim sim = make_wbi();
  sim.access(0, 0, MemOp::kRead);
  sim.access(1, 0, MemOp::kWrite);
  sim.access(2, 0, MemOp::kRead);
  std::uint64_t writes_before = sim.traffic().write_bytes();
  sim.access(0, 0, MemOp::kRead);
  EXPECT_EQ(sim.traffic().refetch_bytes, 8u);
  EXPECT_EQ(sim.traffic().write_bytes(), writes_before + 8u);
  EXPECT_EQ(sim.traffic().cold_fetch_bytes, 8u);  // only p0's first read
}

TEST(Wbi, RemoteReadOfDirtyLineFlushes) {
  CoherenceSim sim = make_wbi();
  sim.access(0, 0, MemOp::kWrite);  // write miss: fill + word write
  EXPECT_EQ(sim.traffic().write_fetch_bytes, 8u);
  sim.access(1, 0, MemOp::kRead);   // dirty in 0: flush supplies 1
  EXPECT_EQ(sim.traffic().read_flush_bytes, 8u);
  // Both clean now: proc 0 re-reading is free.
  sim.access(0, 0, MemOp::kRead);
  EXPECT_EQ(sim.traffic().total_bytes(), 8u + 4u + 8u);
}

TEST(Wbi, WriteToRemoteDirtyFlushesAndTakesOwnership) {
  CoherenceSim sim = make_wbi();
  sim.access(0, 0, MemOp::kWrite);
  std::uint64_t before = sim.traffic().total_bytes();
  sim.access(1, 0, MemOp::kWrite);
  const CoherenceTraffic& t = sim.traffic();
  EXPECT_EQ(t.write_flush_bytes, 8u);
  EXPECT_EQ(t.total_bytes(), before + 8u + 4u);  // flush + word write
  // Proc 1 now dirty-owns it.
  sim.access(1, 0, MemOp::kWrite);
  EXPECT_EQ(sim.traffic().total_bytes(), before + 12u);
}

TEST(Wbi, PingPongScalesWithLineSize) {
  // Alternating writers: each handoff costs flush(line) + word. This is
  // the mechanism behind Table 3's growth with line size.
  for (std::int32_t line : {4, 8, 16, 32}) {
    CoherenceSim sim = make_wbi(line);
    sim.access(0, 0, MemOp::kWrite);
    std::uint64_t start = sim.traffic().total_bytes();
    for (int i = 0; i < 10; ++i) {
      sim.access(i % 2 == 0 ? 1 : 0, 0, MemOp::kWrite);
    }
    EXPECT_EQ(sim.traffic().total_bytes() - start,
              10u * (static_cast<std::uint64_t>(line) + 4u))
        << "line=" << line;
  }
}

TEST(Wbi, WriteFractionHighUnderPingPong) {
  CoherenceSim sim = make_wbi();
  for (int i = 0; i < 100; ++i) {
    sim.access(i % 4, static_cast<std::uint32_t>((i * 12) % 64), MemOp::kWrite);
  }
  EXPECT_GT(sim.traffic().write_fraction(), 0.8);
}

TEST(Wbi, DistinctLinesAreIndependent) {
  CoherenceSim sim = make_wbi(8);
  sim.access(0, 0, MemOp::kRead);
  sim.access(0, 8, MemOp::kRead);   // next line
  sim.access(0, 16, MemOp::kRead);  // next line
  EXPECT_EQ(sim.traffic().cold_fetch_bytes, 24u);
  EXPECT_EQ(sim.lines_touched(), 3u);
}

TEST(WriteThrough, EveryWriteCostsAWord) {
  CoherenceParams params;
  params.line_size = 8;
  params.protocol = ProtocolKind::kWriteThrough;
  CoherenceSim sim(4, params);
  sim.access(0, 0, MemOp::kWrite);  // miss fill + word
  sim.access(0, 0, MemOp::kWrite);  // word again (no dirty state)
  sim.access(0, 0, MemOp::kWrite);
  EXPECT_EQ(sim.traffic().word_write_bytes, 12u);
  EXPECT_EQ(sim.traffic().write_fetch_bytes, 8u);
}

TEST(Mesi, SilentUpgradeFromExclusive) {
  CoherenceParams params;
  params.line_size = 8;
  params.protocol = ProtocolKind::kMesi;
  CoherenceSim sim(4, params);
  sim.access(0, 0, MemOp::kRead);   // E state (alone)
  std::uint64_t before = sim.traffic().total_bytes();
  sim.access(0, 0, MemOp::kWrite);  // E -> M: silent
  EXPECT_EQ(sim.traffic().total_bytes(), before);
}

TEST(Mesi, SharedUpgradeCostsInvalidation) {
  CoherenceParams params;
  params.line_size = 8;
  params.protocol = ProtocolKind::kMesi;
  CoherenceSim sim(4, params);
  sim.access(0, 0, MemOp::kRead);
  sim.access(1, 0, MemOp::kRead);   // now shared: no E for either
  std::uint64_t before = sim.traffic().total_bytes();
  sim.access(0, 0, MemOp::kWrite);
  EXPECT_GT(sim.traffic().total_bytes(), before);
  EXPECT_EQ(sim.traffic().invalidation_msgs, 1u);
}

TEST(Mesi, CheaperThanWbiOnPrivateData) {
  // A single processor reading then writing its own data: MESI's E state
  // removes the word writes WBI pays.
  RefTrace trace;
  for (std::uint32_t i = 0; i < 50; ++i) {
    trace.append({static_cast<SimTime>(2 * i), i * 8, 0, MemOp::kRead});
    trace.append({static_cast<SimTime>(2 * i + 1), i * 8, 0, MemOp::kWrite});
  }
  CoherenceParams wbi_params;
  wbi_params.line_size = 8;
  CoherenceParams mesi_params = wbi_params;
  mesi_params.protocol = ProtocolKind::kMesi;
  CoherenceSim wbi(4, wbi_params);
  CoherenceSim mesi(4, mesi_params);
  wbi.replay(trace);
  mesi.replay(trace);
  EXPECT_LT(mesi.traffic().total_bytes(), wbi.traffic().total_bytes());
}

TEST(Replay, CountsAccesses) {
  RefTrace trace;
  trace.append({0, 0, 0, MemOp::kRead});
  trace.append({1, 8, 1, MemOp::kWrite});
  CoherenceSim sim = make_wbi();
  sim.replay(trace);
  EXPECT_EQ(sim.traffic().accesses, 2u);
}

TEST(Sweep, ReturnsOneResultPerLineSize) {
  RefTrace trace;
  for (std::uint32_t i = 0; i < 100; ++i) {
    trace.append({static_cast<SimTime>(i), (i * 4) % 256,
                  static_cast<std::int16_t>(i % 4),
                  i % 3 == 0 ? MemOp::kWrite : MemOp::kRead});
  }
  auto results = sweep_line_sizes(trace, 4, {4, 8, 16, 32});
  ASSERT_EQ(results.size(), 4u);
  for (const CoherenceTraffic& t : results) {
    EXPECT_GT(t.total_bytes(), 0u);
    EXPECT_EQ(t.accesses, 100u);
  }
}

TEST(TraceUtils, SortAndCount) {
  RefTrace trace;
  trace.append({5, 0, 0, MemOp::kWrite});
  trace.append({1, 4, 1, MemOp::kRead});
  trace.append({3, 8, 2, MemOp::kRead});
  trace.sort_by_time();
  EXPECT_EQ(trace.refs()[0].time, 1);
  EXPECT_EQ(trace.refs()[2].time, 5);
  EXPECT_EQ(trace.count(MemOp::kRead), 2u);
  EXPECT_EQ(trace.count(MemOp::kWrite), 1u);
}

TEST(FiniteCache, EvictsLruAndWritesBackDirty) {
  CoherenceParams params;
  params.line_size = 8;
  params.capacity_lines = 2;
  CoherenceSim sim(2, params);
  sim.access(0, 0, MemOp::kWrite);    // line 0, dirty
  sim.access(0, 8, MemOp::kRead);     // line 1
  std::uint64_t before = sim.traffic().eviction_writeback_bytes;
  sim.access(0, 16, MemOp::kRead);    // line 2: evicts line 0 (LRU, dirty)
  EXPECT_EQ(sim.traffic().capacity_evictions, 1u);
  EXPECT_EQ(sim.traffic().eviction_writeback_bytes, before + 8);
  // Re-reading line 0 is now a (capacity) refetch.
  std::uint64_t misses = sim.traffic().read_misses;
  sim.access(0, 0, MemOp::kRead);
  EXPECT_EQ(sim.traffic().read_misses, misses + 1);
}

TEST(FiniteCache, HitRefreshesLru) {
  CoherenceParams params;
  params.line_size = 8;
  params.capacity_lines = 2;
  CoherenceSim sim(2, params);
  sim.access(0, 0, MemOp::kRead);   // line 0
  sim.access(0, 8, MemOp::kRead);   // line 1
  sim.access(0, 0, MemOp::kRead);   // hit: line 0 becomes MRU
  sim.access(0, 16, MemOp::kRead);  // evicts line 1, not line 0
  std::uint64_t misses = sim.traffic().read_misses;
  sim.access(0, 0, MemOp::kRead);   // still resident
  EXPECT_EQ(sim.traffic().read_misses, misses);
}

TEST(FiniteCache, CleanEvictionCostsNothing) {
  CoherenceParams params;
  params.line_size = 8;
  params.capacity_lines = 1;
  CoherenceSim sim(2, params);
  sim.access(0, 0, MemOp::kRead);
  sim.access(0, 8, MemOp::kRead);  // evicts clean line 0
  EXPECT_EQ(sim.traffic().capacity_evictions, 1u);
  EXPECT_EQ(sim.traffic().eviction_writeback_bytes, 0u);
}

TEST(FiniteCache, CachesAreIndependentPerProcessor) {
  CoherenceParams params;
  params.line_size = 8;
  params.capacity_lines = 1;
  CoherenceSim sim(2, params);
  sim.access(0, 0, MemOp::kRead);
  sim.access(1, 8, MemOp::kRead);  // different proc: no eviction of proc 0
  EXPECT_EQ(sim.traffic().capacity_evictions, 0u);
  std::uint64_t misses = sim.traffic().read_misses;
  sim.access(0, 0, MemOp::kRead);  // still a hit for proc 0
  EXPECT_EQ(sim.traffic().read_misses, misses);
}

TEST(FiniteCache, LargeCapacityMatchesInfinite) {
  RefTrace trace;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    trace.append({static_cast<SimTime>(i),
                  static_cast<std::uint32_t>(rng.bounded(400)) * 4,
                  static_cast<std::int16_t>(rng.bounded(4)),
                  rng.chance(0.3) ? MemOp::kWrite : MemOp::kRead});
  }
  CoherenceParams infinite;
  infinite.line_size = 8;
  CoherenceParams finite = infinite;
  finite.capacity_lines = 100000;
  CoherenceSim a(4, infinite), b(4, finite);
  a.replay(trace);
  b.replay(trace);
  EXPECT_EQ(a.traffic().total_bytes(), b.traffic().total_bytes());
}

/// Property: on a false-sharing workload, WBI traffic is monotone
/// non-decreasing in line size (the paper's Table 3 direction).
class LineSizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LineSizeProperty, FalseSharingGrowsWithLineSize) {
  RefTrace trace;
  std::uint64_t seed = GetParam();
  // Strided writers: proc p repeatedly updates cells p, p+4, p+8... with
  // stride 4 words = 16 bytes, so larger lines create false sharing.
  for (std::uint32_t i = 0; i < 2000; ++i) {
    auto proc = static_cast<std::int16_t>((i + seed) % 4);
    std::uint32_t addr = ((i * 7 + static_cast<std::uint32_t>(seed)) % 50) * 16 +
                         static_cast<std::uint32_t>(proc) * 4;
    trace.append({static_cast<SimTime>(i), addr, proc,
                  i % 2 == 0 ? MemOp::kRead : MemOp::kWrite});
  }
  auto results = sweep_line_sizes(trace, 4, {4, 8, 16, 32});
  EXPECT_LE(results[0].total_bytes(), results[1].total_bytes());
  EXPECT_LE(results[1].total_bytes(), results[2].total_bytes());
  EXPECT_LE(results[2].total_bytes(), results[3].total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LineSizeProperty, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace locus
