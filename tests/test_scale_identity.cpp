// Sharded-vs-monolithic bit-identity (ISSUE 8 acceptance): routing against
// tiled per-processor views must be indistinguishable from routing against
// dense ones — identical routes, identical simulated completion time,
// identical on-wire bytes — under every update schedule, because an absent
// tile reads as zero, which *is* the initial value of every cell. Same
// invariant for the shared-memory router's sharded cost array.
#include <gtest/gtest.h>

#include <cstdint>

#include "circuit/hier_generator.hpp"
#include "harness/experiments.hpp"
#include "msg/driver.hpp"
#include "shm/shm_router.hpp"

namespace locus {
namespace {

struct ScheduleCase {
  const char* name;
  UpdateSchedule schedule;
};

// One representative of each of the paper's four update mechanisms:
// SendLocData, SendRmtData (sender-initiated), ReqRmtData alone and
// ReqRmtData+ReqLocData (receiver-initiated).
const ScheduleCase kSchedules[] = {
    {"SendLocData", UpdateSchedule::sender(0, 5)},
    {"SendRmtData", UpdateSchedule::sender(2, 0)},
    {"ReqRmtData", UpdateSchedule::receiver(0, 3)},
    {"ReqLocData", UpdateSchedule::receiver(2, 3)},
};

MpRunResult run_mp(const Circuit& circuit, const UpdateSchedule& schedule,
                   bool sharded, bool batched = false) {
  MpConfig config;
  config.schedule = schedule;
  config.iterations = 2;
  config.shard.enabled = sharded;
  config.shard.batch_updates = batched;
  return run_message_passing(circuit, /*procs=*/16, config);
}

TEST(ShardIdentity, AllSchedulesBitIdenticalOnScaleCircuit) {
  const Circuit circuit = make_scale_circuit(1'000, /*seed=*/0xB17ULL);
  for (const ScheduleCase& c : kSchedules) {
    SCOPED_TRACE(c.name);
    const MpRunResult dense = run_mp(circuit, c.schedule, /*sharded=*/false);
    const MpRunResult tiled = run_mp(circuit, c.schedule, /*sharded=*/true);
    EXPECT_TRUE(routes_identical(dense.routes, tiled.routes));
    EXPECT_EQ(tiled.circuit_height, dense.circuit_height);
    EXPECT_EQ(tiled.completion_ns, dense.completion_ns);
    EXPECT_EQ(tiled.bytes_transferred, dense.bytes_transferred);
    EXPECT_EQ(tiled.updates_suppressed, dense.updates_suppressed);
    // The sharded run reports what its views actually hold. (No savings
    // claim here: on a 1k-wire chip every node touches nearly every tile
    // and the tile rounding can exceed the dense footprint; the memory
    // bound is asserted at scale by the `scale`-labeled smoke.)
    EXPECT_GT(tiled.view_resident_cells, 0);
  }
}

TEST(ShardIdentity, ShmShardedCostBitIdentical) {
  const Circuit circuit = make_scale_circuit(1'000, /*seed=*/0xB17ULL);
  ShmConfig config;
  config.procs = 16;
  config.capture_trace = false;
  const ShmRunResult dense = run_shared_memory(circuit, config);
  config.sharded_cost = true;
  const ShmRunResult tiled = run_shared_memory(circuit, config);
  EXPECT_TRUE(routes_identical(dense.routes, tiled.routes));
  EXPECT_EQ(tiled.circuit_height, dense.circuit_height);
  EXPECT_EQ(tiled.completion_ns, dense.completion_ns);
  // The densified final array matches cell-for-cell.
  std::vector<std::int32_t> a;
  std::vector<std::int32_t> b;
  dense.cost.read_rect(dense.cost.bounds(), a);
  tiled.cost.read_rect(tiled.cost.bounds(), b);
  EXPECT_EQ(b, a);
}

/// Region batching is the scale-sweep default (ScaleSweepOptions), so the
/// dense-vs-tiled identity must hold with it on, across all four update
/// mechanisms: batching changes what a packet costs, not what it carries.
TEST(ShardIdentity, BatchedSchedulesBitIdenticalDenseVsTiled) {
  const Circuit circuit = make_scale_circuit(1'000, /*seed=*/0xB17ULL);
  for (const ScheduleCase& c : kSchedules) {
    SCOPED_TRACE(c.name);
    const MpRunResult dense =
        run_mp(circuit, c.schedule, /*sharded=*/false, /*batched=*/true);
    const MpRunResult tiled =
        run_mp(circuit, c.schedule, /*sharded=*/true, /*batched=*/true);
    EXPECT_TRUE(routes_identical(dense.routes, tiled.routes));
    EXPECT_EQ(tiled.circuit_height, dense.circuit_height);
    EXPECT_EQ(tiled.completion_ns, dense.completion_ns);
    EXPECT_EQ(tiled.bytes_transferred, dense.bytes_transferred);
    EXPECT_EQ(tiled.updates_suppressed, dense.updates_suppressed);
  }
}

/// Region batching changes packet bytes (that is its point), so it is not
/// bit-identical to the unbatched run — but it must still converge: all
/// wires routed with sane quality. At 1k wires the 8-byte per-block frames
/// can outweigh the tightened rects, so the traffic assertion is a loose
/// band; the real saving is measured by the scale bench at 10k wires.
TEST(ShardIdentity, BatchedUpdatesConverge) {
  const Circuit circuit = make_scale_circuit(1'000, /*seed=*/0xB17ULL);
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 10);
  config.shard.enabled = true;
  const MpRunResult plain = run_message_passing(circuit, 16, config);
  config.shard.batch_updates = true;
  const MpRunResult batched = run_message_passing(circuit, 16, config);
  EXPECT_EQ(batched.routes.size(), plain.routes.size());
  EXPECT_GT(batched.circuit_height, 0);
  EXPECT_GT(batched.bytes_transferred, 0u);
  EXPECT_LT(static_cast<double>(batched.bytes_transferred),
            1.15 * static_cast<double>(plain.bytes_transferred));
}

}  // namespace
}  // namespace locus
