// Unit and property tests for geometry: points, inclusive rectangles, mesh
// shapes, and the cost-array partition.
#include <gtest/gtest.h>

#include <set>

#include "geom/partition.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace locus {
namespace {

TEST(GridPoint, ManhattanDistance) {
  EXPECT_EQ(manhattan({0, 0}, {0, 0}), 0);
  EXPECT_EQ(manhattan({1, 2}, {4, 6}), 7);
  EXPECT_EQ(manhattan({4, 6}, {1, 2}), 7);
  EXPECT_EQ(manhattan({-1, -2}, {1, 2}), 6);
}

TEST(Rect, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.is_empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.height(), 0);
  EXPECT_FALSE(r.contains(GridPoint{0, 0}));
}

TEST(Rect, SingleCell) {
  Rect r = Rect::single({3, 7});
  EXPECT_FALSE(r.is_empty());
  EXPECT_EQ(r.area(), 1);
  EXPECT_TRUE(r.contains(GridPoint{3, 7}));
  EXPECT_FALSE(r.contains(GridPoint{3, 8}));
}

TEST(Rect, AreaIsInclusive) {
  Rect r = Rect::of(1, 3, 10, 14);
  EXPECT_EQ(r.height(), 3);
  EXPECT_EQ(r.width(), 5);
  EXPECT_EQ(r.area(), 15);
}

TEST(Rect, ExpandPoint) {
  Rect r;
  r.expand(GridPoint{2, 5});
  EXPECT_EQ(r, Rect::single({2, 5}));
  r.expand(GridPoint{0, 9});
  EXPECT_EQ(r, Rect::of(0, 2, 5, 9));
  r.expand(GridPoint{1, 7});  // interior point changes nothing
  EXPECT_EQ(r, Rect::of(0, 2, 5, 9));
}

TEST(Rect, ExpandRect) {
  Rect r = Rect::of(0, 1, 0, 1);
  r.expand(Rect::of(3, 4, 3, 4));
  EXPECT_EQ(r, Rect::of(0, 4, 0, 4));
  r.expand(Rect::empty());  // no-op
  EXPECT_EQ(r, Rect::of(0, 4, 0, 4));
  Rect e;
  e.expand(Rect::of(1, 2, 1, 2));
  EXPECT_EQ(e, Rect::of(1, 2, 1, 2));
}

TEST(Rect, Intersection) {
  Rect a = Rect::of(0, 5, 0, 5);
  Rect b = Rect::of(3, 8, 4, 9);
  EXPECT_EQ(Rect::intersection(a, b), Rect::of(3, 5, 4, 5));
  EXPECT_TRUE(a.intersects(b));
  Rect c = Rect::of(6, 7, 0, 5);
  EXPECT_TRUE(Rect::intersection(a, c).is_empty());
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(Rect::intersection(a, Rect::empty()).is_empty());
}

TEST(Rect, ContainsRect) {
  Rect outer = Rect::of(0, 9, 0, 9);
  EXPECT_TRUE(outer.contains(Rect::of(2, 3, 2, 3)));
  EXPECT_TRUE(outer.contains(Rect::empty()));
  EXPECT_FALSE(outer.contains(Rect::of(0, 10, 0, 9)));
  EXPECT_FALSE(Rect::empty().contains(Rect::of(0, 0, 0, 0)));
}

TEST(MeshShape, NearSquareFactorizations) {
  EXPECT_EQ(MeshShape::for_procs(1).rows, 1);
  EXPECT_EQ(MeshShape::for_procs(2).rows, 1);
  EXPECT_EQ(MeshShape::for_procs(2).cols, 2);
  EXPECT_EQ(MeshShape::for_procs(4).rows, 2);
  EXPECT_EQ(MeshShape::for_procs(4).cols, 2);
  EXPECT_EQ(MeshShape::for_procs(6).rows, 2);
  EXPECT_EQ(MeshShape::for_procs(6).cols, 3);
  EXPECT_EQ(MeshShape::for_procs(9).rows, 3);
  EXPECT_EQ(MeshShape::for_procs(16).rows, 4);
  EXPECT_EQ(MeshShape::for_procs(7).rows, 1);  // prime: 1 x 7
  EXPECT_EQ(MeshShape::for_procs(7).cols, 7);
}

TEST(Partition, RegionsTileTheArray) {
  Partition part(10, 341, MeshShape::for_procs(16));
  std::int64_t total_area = 0;
  for (ProcId p = 0; p < part.num_regions(); ++p) {
    total_area += part.region(p).area();
  }
  EXPECT_EQ(total_area, 10 * 341);
}

TEST(Partition, OwnerMatchesRegion) {
  Partition part(10, 341, MeshShape::for_procs(16));
  for (std::int32_t c = 0; c < 10; ++c) {
    for (std::int32_t x = 0; x < 341; ++x) {
      GridPoint p{c, x};
      ProcId owner = part.owner(p);
      EXPECT_TRUE(part.region(owner).contains(p))
          << "cell (" << c << "," << x << ")";
    }
  }
}

TEST(Partition, MeshCoordinatesRoundTrip) {
  Partition part(12, 386, MeshShape{3, 4});
  for (ProcId p = 0; p < 12; ++p) {
    EXPECT_EQ(part.proc_at(part.mesh_row(p), part.mesh_col(p)), p);
  }
}

TEST(Partition, HopDistanceIsMeshManhattan) {
  Partition part(8, 64, MeshShape{2, 4});
  EXPECT_EQ(part.hop_distance(0, 0), 0);
  EXPECT_EQ(part.hop_distance(0, 3), 3);   // same row, 3 columns apart
  EXPECT_EQ(part.hop_distance(0, 4), 1);   // adjacent rows
  EXPECT_EQ(part.hop_distance(0, 7), 4);   // corner to corner
  EXPECT_EQ(part.hop_distance(7, 0), 4);   // symmetric
}

TEST(Partition, NeighborsAreAdjacent) {
  Partition part(8, 64, MeshShape{4, 4});
  for (ProcId p = 0; p < 16; ++p) {
    auto neighbors = part.neighbors(p);
    std::int32_t expected = 4;
    if (part.mesh_row(p) == 0 || part.mesh_row(p) == 3) --expected;
    if (part.mesh_col(p) == 0 || part.mesh_col(p) == 3) --expected;
    EXPECT_EQ(static_cast<std::int32_t>(neighbors.size()), expected);
    for (ProcId n : neighbors) {
      EXPECT_EQ(part.hop_distance(p, n), 1);
    }
  }
}

TEST(Partition, RegionsOverlappingMatchesBruteForce) {
  Partition part(10, 100, MeshShape{2, 5});
  const Rect queries[] = {Rect::of(0, 9, 0, 99), Rect::of(3, 6, 15, 65),
                          Rect::of(0, 0, 0, 0), Rect::of(5, 5, 50, 50),
                          Rect::empty()};
  for (const Rect& q : queries) {
    std::set<ProcId> brute;
    for (ProcId p = 0; p < part.num_regions(); ++p) {
      if (part.region(p).intersects(q)) brute.insert(p);
    }
    auto fast = part.regions_overlapping(q);
    EXPECT_EQ(std::set<ProcId>(fast.begin(), fast.end()), brute);
  }
}

/// Property sweep: partitions of many shapes tile exactly and agree with
/// owner() everywhere.
class PartitionProperty : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(PartitionProperty, TilesAndOwnsConsistently) {
  const std::int32_t procs = GetParam();
  MeshShape mesh = MeshShape::for_procs(procs);
  const std::int32_t channels = std::max(mesh.rows, 7);
  const std::int32_t grids = std::max(mesh.cols * 3, 31);
  Partition part(channels, grids, mesh);
  std::int64_t area = 0;
  for (ProcId p = 0; p < part.num_regions(); ++p) {
    const Rect& r = part.region(p);
    EXPECT_FALSE(r.is_empty());
    area += r.area();
    // Every corner cell maps back to p.
    EXPECT_EQ(part.owner({r.channel_lo, r.x_lo}), p);
    EXPECT_EQ(part.owner({r.channel_hi, r.x_hi}), p);
  }
  EXPECT_EQ(area, static_cast<std::int64_t>(channels) * grids);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PartitionProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 9, 12, 16, 25));

}  // namespace
}  // namespace locus
