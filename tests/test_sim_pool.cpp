// SimPool runner and determinism tests: every job runs exactly once with
// submission-ordered collection, errors propagate as the lowest-index
// failure, thread-count resolution follows explicit > set_sim_threads() >
// LOCUS_THREADS > serial, and — the property the whole design rests on —
// fanning real simulations out over the pool yields bit-identical results
// and bit-identical merged observability output at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/generator.hpp"
#include "harness/experiments.hpp"
#include "harness/sim_pool.hpp"
#include "msg/driver.hpp"
#include "obs/counters.hpp"
#include "sim/event_queue.hpp"

namespace locus {
namespace {

TEST(SimPool, RunsEveryJobExactlyOnce) {
  constexpr std::size_t kJobs = 257;  // deliberately not a multiple of width
  std::vector<int> hits(kJobs, 0);
  std::atomic<int> total{0};
  SimPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  pool.run_indexed(kJobs, [&](std::size_t i) {
    ++hits[i];  // each slot has exactly one writer
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<int>(kJobs));
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i], 1) << "job " << i;
  }
}

TEST(SimPool, MapCollectsInSubmissionOrder) {
  const std::vector<std::int64_t> out =
      SimPool(4).map(100, [](std::size_t i) {
        return static_cast<std::int64_t>(i) * static_cast<std::int64_t>(i);
      });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
  }
}

TEST(SimPool, ZeroAndSingleJobRunInline) {
  SimPool pool(8);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "no jobs to run"; });
  std::vector<std::size_t> seen;
  pool.run_indexed(1, [&](std::size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 1u);  // push_back un-synchronized: inline-only is load-bearing
  EXPECT_EQ(seen[0], 0u);
}

TEST(SimPool, FirstErrorByJobIndexWins) {
  // Three jobs throw; whichever finishes first, the pool must rethrow the
  // lowest submission index so failures are reproducible across widths.
  for (int threads : {1, 4}) {
    try {
      SimPool(threads).run_indexed(16, [](std::size_t i) {
        if (i == 9 || i == 3 || i == 5) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "expected the pool to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "threads=" << threads;
    }
  }
}

TEST(SimPool, ThreadResolutionPrecedence) {
  set_sim_threads(3);
  EXPECT_EQ(sim_threads(), 3);
  EXPECT_EQ(SimPool().threads(), 3);
  EXPECT_EQ(SimPool(2).threads(), 2);  // explicit beats the session default

  set_sim_threads(0);
  ::setenv("LOCUS_THREADS", "5", 1);
  EXPECT_EQ(sim_threads(), 5);   // env applies once the default is cleared
  ::setenv("LOCUS_THREADS", "not-a-number", 1);
  EXPECT_EQ(sim_threads(), 1);   // garbage degrades to serial
  ::unsetenv("LOCUS_THREADS");
  EXPECT_EQ(sim_threads(), 1);   // nothing configured: serial
}

TEST(SimPool, RunAllExecutesNamedJobs) {
  std::vector<int> done(3, 0);
  std::vector<SimJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(SimJob{"job" + std::to_string(i), [&done, i] { done[static_cast<std::size_t>(i)] = i + 1; }});
  }
  SimPool(2).run_all(std::move(jobs));
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// The 4-ary event heap's FIFO tie-break: same-time events run in schedule
// order, on every run.

std::vector<std::uint64_t> run_tie_break_schedule() {
  EventQueue q;
  std::vector<std::uint64_t> order;
  struct Ctx {
    std::vector<std::uint64_t>* order;
    static void on(void* ctx, SimTime, std::uint64_t a, std::uint64_t) {
      static_cast<Ctx*>(ctx)->order->push_back(a);
    }
  } ctx{&order};
  const EventQueue::HandlerId h = q.add_handler(&Ctx::on, &ctx);
  // 100 events at time 7 tagged 100..199, then 10 latecomers at time 3
  // tagged 0..9: the earlier time runs first, and within each time the
  // schedule order (sequence number) is the tie-break.
  for (std::uint64_t i = 0; i < 100; ++i) q.schedule(7, h, 100 + i);
  for (std::uint64_t i = 0; i < 10; ++i) q.schedule(3, h, i);
  q.run();
  return order;
}

TEST(EventQueueFifo, SameTimeEventsPopInScheduleOrder) {
  const std::vector<std::uint64_t> order = run_tie_break_schedule();
  ASSERT_EQ(order.size(), 110u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(order[10 + i], 100 + i);
}

TEST(EventQueueFifo, RepeatedRunsProduceIdenticalOrder) {
  const std::vector<std::uint64_t> first = run_tie_break_schedule();
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(run_tie_break_schedule(), first) << "rep " << rep;
  }
}

// ---------------------------------------------------------------------------
// Pool-vs-serial determinism on real simulations: the acceptance criterion
// for every fan-out conversion in harness/experiments.cpp and check/oracle.

/// The schedules a small table sweep would run, one sim per job.
std::vector<UpdateSchedule> sweep_schedules() {
  return {
      UpdateSchedule::sender(2, 5),    UpdateSchedule::sender(10, 5),
      UpdateSchedule::receiver(1, 5),  UpdateSchedule::receiver(5, 2),
      UpdateSchedule::sender(5, 10),   UpdateSchedule::receiver(2, 10),
  };
}

std::vector<MpRunResult> run_sweep(const Circuit& circuit, int threads) {
  const std::vector<UpdateSchedule> schedules = sweep_schedules();
  const ExperimentConfig config;
  std::vector<MpRunResult> results(schedules.size());
  SimPool(threads).run_indexed(schedules.size(), [&](std::size_t i) {
    results[i] =
        run_message_passing(circuit, config.procs, config.mp(schedules[i]));
  });
  return results;
}

TEST(PoolDeterminism, MpSweepIsBitIdenticalAtAnyWidth) {
  const Circuit circuit = make_bnre_like();
  const std::vector<MpRunResult> serial = run_sweep(circuit, 1);
  for (int threads : {2, 4}) {
    const std::vector<MpRunResult> pooled = run_sweep(circuit, threads);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const MpRunResult& a = serial[i];
      const MpRunResult& b = pooled[i];
      EXPECT_EQ(a.circuit_height, b.circuit_height) << "job " << i;
      EXPECT_EQ(a.occupancy_factor, b.occupancy_factor) << "job " << i;
      EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << "job " << i;
      EXPECT_EQ(a.completion_ns, b.completion_ns) << "job " << i;
      EXPECT_EQ(a.updates_suppressed, b.updates_suppressed) << "job " << i;
      EXPECT_EQ(a.requests_sent, b.requests_sent) << "job " << i;
      // Doubles compare exactly: same instruction stream, same bits.
      EXPECT_EQ(a.view_staleness, b.view_staleness) << "job " << i;
      EXPECT_EQ(a.own_region_staleness, b.own_region_staleness) << "job " << i;
      ASSERT_EQ(a.routes.size(), b.routes.size()) << "job " << i;
    }
  }
}

TEST(PoolDeterminism, MergedObsCsvIsBitIdenticalAtAnyWidth) {
  // Each job owns a private registry (the no-shared-mutable-state rule);
  // the caller absorbs them in submission order after the join, so the
  // merged CSV must not depend on which worker ran which job when.
  constexpr std::size_t kJobs = 12;
  const auto run_at = [](int threads) {
    std::vector<std::unique_ptr<obs::CounterRegistry>> regs(kJobs);
    SimPool(threads).run_indexed(kJobs, [&](std::size_t i) {
      auto reg = std::make_unique<obs::CounterRegistry>();
      const obs::MetricId events = reg->counter("job.events");
      const obs::MetricId shared = reg->counter("sweep.total");
      const obs::MetricId depth = reg->histogram("job.depth");
      reg->add(0, events, i + 1);
      reg->add(0, shared, 10 * i);
      for (std::uint64_t s = 0; s <= i; ++s) reg->observe(0, depth, s * s);
      regs[i] = std::move(reg);
    });
    obs::CounterRegistry merged;
    for (const auto& reg : regs) merged.merge_from(*reg);
    return merged.metrics_csv();
  };
  const std::string serial_csv = run_at(1);
  EXPECT_FALSE(serial_csv.empty());
  EXPECT_EQ(run_at(2), serial_csv);
  EXPECT_EQ(run_at(4), serial_csv);
}

}  // namespace
}  // namespace locus
