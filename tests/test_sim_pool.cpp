// SimPool runner and determinism tests: every job runs exactly once with
// submission-ordered collection, errors propagate as the lowest-index
// failure, thread-count resolution follows explicit > set_sim_threads() >
// LOCUS_THREADS > serial, and — the property the whole design rests on —
// fanning real simulations out over the pool yields bit-identical results
// and bit-identical merged observability output at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuit/generator.hpp"
#include "harness/experiments.hpp"
#include "harness/route_service.hpp"
#include "harness/sim_pool.hpp"
#include "msg/driver.hpp"
#include "obs/counters.hpp"
#include "shm/numa.hpp"
#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "support/stopwatch.hpp"

namespace locus {
namespace {

TEST(SimPool, RunsEveryJobExactlyOnce) {
  constexpr std::size_t kJobs = 257;  // deliberately not a multiple of width
  std::vector<int> hits(kJobs, 0);
  std::atomic<int> total{0};
  SimPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  pool.run_indexed(kJobs, [&](std::size_t i) {
    ++hits[i];  // each slot has exactly one writer
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), static_cast<int>(kJobs));
  for (std::size_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(hits[i], 1) << "job " << i;
  }
}

TEST(SimPool, MapCollectsInSubmissionOrder) {
  const std::vector<std::int64_t> out =
      SimPool(4).map(100, [](std::size_t i) {
        return static_cast<std::int64_t>(i) * static_cast<std::int64_t>(i);
      });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i * i));
  }
}

TEST(SimPool, ZeroAndSingleJobRunInline) {
  SimPool pool(8);
  pool.run_indexed(0, [](std::size_t) { FAIL() << "no jobs to run"; });
  std::vector<std::size_t> seen;
  pool.run_indexed(1, [&](std::size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 1u);  // push_back un-synchronized: inline-only is load-bearing
  EXPECT_EQ(seen[0], 0u);
}

TEST(SimPool, FirstErrorByJobIndexWins) {
  // Three jobs throw; whichever finishes first, the pool must rethrow the
  // lowest submission index so failures are reproducible across widths.
  for (int threads : {1, 4}) {
    try {
      SimPool(threads).run_indexed(16, [](std::size_t i) {
        if (i == 9 || i == 3 || i == 5) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "expected the pool to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "3") << "threads=" << threads;
    }
  }
}

TEST(SimPool, ThreadResolutionPrecedence) {
  set_sim_threads(3);
  EXPECT_EQ(sim_threads(), 3);
  EXPECT_EQ(SimPool().threads(), 3);
  EXPECT_EQ(SimPool(2).threads(), 2);  // explicit beats the session default

  set_sim_threads(0);
  ::setenv("LOCUS_THREADS", "5", 1);
  EXPECT_EQ(sim_threads(), 5);   // env applies once the default is cleared
  ::setenv("LOCUS_THREADS", "not-a-number", 1);
  EXPECT_EQ(sim_threads(), 1);   // garbage degrades to serial
  ::unsetenv("LOCUS_THREADS");
  EXPECT_EQ(sim_threads(), 1);   // nothing configured: serial
}

TEST(SimPool, RunAllExecutesNamedJobs) {
  std::vector<int> done(3, 0);
  std::vector<SimJob> jobs;
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(SimJob{"job" + std::to_string(i), [&done, i] { done[static_cast<std::size_t>(i)] = i + 1; }});
  }
  SimPool(2).run_all(std::move(jobs));
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
}

// ---------------------------------------------------------------------------
// The 4-ary event heap's FIFO tie-break: same-time events run in schedule
// order, on every run.

std::vector<std::uint64_t> run_tie_break_schedule() {
  EventQueue q;
  std::vector<std::uint64_t> order;
  struct Ctx {
    std::vector<std::uint64_t>* order;
    static void on(void* ctx, SimTime, std::uint64_t a, std::uint64_t) {
      static_cast<Ctx*>(ctx)->order->push_back(a);
    }
  } ctx{&order};
  const EventQueue::HandlerId h = q.add_handler(&Ctx::on, &ctx);
  // 100 events at time 7 tagged 100..199, then 10 latecomers at time 3
  // tagged 0..9: the earlier time runs first, and within each time the
  // schedule order (sequence number) is the tie-break.
  for (std::uint64_t i = 0; i < 100; ++i) q.schedule(7, h, 100 + i);
  for (std::uint64_t i = 0; i < 10; ++i) q.schedule(3, h, i);
  q.run();
  return order;
}

TEST(EventQueueFifo, SameTimeEventsPopInScheduleOrder) {
  const std::vector<std::uint64_t> order = run_tie_break_schedule();
  ASSERT_EQ(order.size(), 110u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(order[10 + i], 100 + i);
}

TEST(EventQueueFifo, RepeatedRunsProduceIdenticalOrder) {
  const std::vector<std::uint64_t> first = run_tie_break_schedule();
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(run_tie_break_schedule(), first) << "rep " << rep;
  }
}

// ---------------------------------------------------------------------------
// Pool-vs-serial determinism on real simulations: the acceptance criterion
// for every fan-out conversion in harness/experiments.cpp and check/oracle.

/// The schedules a small table sweep would run, one sim per job.
std::vector<UpdateSchedule> sweep_schedules() {
  return {
      UpdateSchedule::sender(2, 5),    UpdateSchedule::sender(10, 5),
      UpdateSchedule::receiver(1, 5),  UpdateSchedule::receiver(5, 2),
      UpdateSchedule::sender(5, 10),   UpdateSchedule::receiver(2, 10),
  };
}

std::vector<MpRunResult> run_sweep(const Circuit& circuit, int threads) {
  const std::vector<UpdateSchedule> schedules = sweep_schedules();
  const ExperimentConfig config;
  std::vector<MpRunResult> results(schedules.size());
  SimPool(threads).run_indexed(schedules.size(), [&](std::size_t i) {
    results[i] =
        run_message_passing(circuit, config.procs, config.mp(schedules[i]));
  });
  return results;
}

TEST(PoolDeterminism, MpSweepIsBitIdenticalAtAnyWidth) {
  const Circuit circuit = make_bnre_like();
  const std::vector<MpRunResult> serial = run_sweep(circuit, 1);
  for (int threads : {2, 4}) {
    const std::vector<MpRunResult> pooled = run_sweep(circuit, threads);
    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const MpRunResult& a = serial[i];
      const MpRunResult& b = pooled[i];
      EXPECT_EQ(a.circuit_height, b.circuit_height) << "job " << i;
      EXPECT_EQ(a.occupancy_factor, b.occupancy_factor) << "job " << i;
      EXPECT_EQ(a.bytes_transferred, b.bytes_transferred) << "job " << i;
      EXPECT_EQ(a.completion_ns, b.completion_ns) << "job " << i;
      EXPECT_EQ(a.updates_suppressed, b.updates_suppressed) << "job " << i;
      EXPECT_EQ(a.requests_sent, b.requests_sent) << "job " << i;
      // Doubles compare exactly: same instruction stream, same bits.
      EXPECT_EQ(a.view_staleness, b.view_staleness) << "job " << i;
      EXPECT_EQ(a.own_region_staleness, b.own_region_staleness) << "job " << i;
      ASSERT_EQ(a.routes.size(), b.routes.size()) << "job " << i;
    }
  }
}

TEST(PoolDeterminism, MergedObsCsvIsBitIdenticalAtAnyWidth) {
  // Each job owns a private registry (the no-shared-mutable-state rule);
  // the caller absorbs them in submission order after the join, so the
  // merged CSV must not depend on which worker ran which job when.
  constexpr std::size_t kJobs = 12;
  const auto run_at = [](int threads) {
    std::vector<std::unique_ptr<obs::CounterRegistry>> regs(kJobs);
    SimPool(threads).run_indexed(kJobs, [&](std::size_t i) {
      auto reg = std::make_unique<obs::CounterRegistry>();
      const obs::MetricId events = reg->counter("job.events");
      const obs::MetricId shared = reg->counter("sweep.total");
      const obs::MetricId depth = reg->histogram("job.depth");
      reg->add(0, events, i + 1);
      reg->add(0, shared, 10 * i);
      for (std::uint64_t s = 0; s <= i; ++s) reg->observe(0, depth, s * s);
      regs[i] = std::move(reg);
    });
    obs::CounterRegistry merged;
    for (const auto& reg : regs) merged.merge_from(*reg);
    return merged.metrics_csv();
  };
  const std::string serial_csv = run_at(1);
  EXPECT_FALSE(serial_csv.empty());
  EXPECT_EQ(run_at(2), serial_csv);
  EXPECT_EQ(run_at(4), serial_csv);
}

// ---------------------------------------------------------------------------
// Per-worker payload arenas: ownership, reclamation, reuse.

/// RAII toggle so pool tests can force real worker threads on hosts whose
/// affinity mask would otherwise clamp the pool to the inline path.
struct ForceThreadsScope {
  std::string saved;
  bool had = false;
  ForceThreadsScope() {
    if (const char* env = std::getenv("LOCUS_POOL_IGNORE_AFFINITY")) {
      had = true;
      saved = env;
    }
    ::setenv("LOCUS_POOL_IGNORE_AFFINITY", "1", 1);
  }
  ~ForceThreadsScope() {
    if (had) {
      ::setenv("LOCUS_POOL_IGNORE_AFFINITY", saved.c_str(), 1);
    } else {
      ::unsetenv("LOCUS_POOL_IGNORE_AFFINITY");
    }
  }
};

TEST(PayloadArena, LocalAllocFreeBalancesAndStaysLockFree) {
  PayloadArena& arena = PayloadArena::current();
  const ArenaStats before = arena.stats();
  std::vector<void*> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(PayloadArena::allocate(96));
  for (void* p : blocks) {
    EXPECT_EQ(PayloadArena::owner_of(p), &arena);
    PayloadArena::deallocate(p);
  }
  const ArenaStats after = arena.stats();
  EXPECT_EQ(after.allocs, before.allocs + 64);
  EXPECT_EQ(after.local_frees, before.local_frees + 64);
  EXPECT_EQ(after.remote_frees, before.remote_frees);  // never crossed
  EXPECT_EQ(after.live(), before.live());
}

TEST(PayloadArena, CrossOwnerFreeOnlyEverUsesReclamationList) {
  // The regression the arena design hinges on: a block allocated under
  // arena A and freed while arena B is current must land on A's
  // reclamation list — never on B's free lists (whence B would hand
  // A-owned memory to its own callers) and never directly on A's free
  // lists (a data race with A's owner).
  PayloadArena* a = PayloadArena::acquire();
  PayloadArena* b = PayloadArena::acquire();
  ASSERT_NE(a, b);

  void* p = nullptr;
  {
    PayloadArena::Scope scope(a);
    p = PayloadArena::allocate(96);
  }
  ASSERT_EQ(PayloadArena::owner_of(p), a);

  const ArenaStats a_before = a->stats();
  const ArenaStats b_before = b->stats();
  {
    PayloadArena::Scope scope(b);
    PayloadArena::deallocate(p);  // B is current, A owns the block
  }
  const ArenaStats a_after = a->stats();
  const ArenaStats b_after = b->stats();
  EXPECT_EQ(a_after.remote_frees, a_before.remote_frees + 1);
  EXPECT_EQ(a_after.local_frees, a_before.local_frees);
  EXPECT_EQ(a_after.reclaimed, a_before.reclaimed);  // not drained yet
  EXPECT_EQ(b_after.local_frees, b_before.local_frees);
  EXPECT_EQ(b_after.remote_frees, b_before.remote_frees);

  // Only the owner drains the list back onto its free lists.
  {
    PayloadArena::Scope scope(a);
    EXPECT_EQ(a->reclaim(), 1u);
  }
  EXPECT_EQ(a->stats().reclaimed, a_before.reclaimed + 1);

  PayloadArena::release(b);
  PayloadArena::release(a);
}

TEST(PayloadArena, ThreadExitReleasesArenaForReuse) {
  // A worker's lazily acquired arena returns to the registry at thread
  // exit, so pool runs recycle warm arenas instead of growing the registry
  // per run. The block itself stays valid after the owner thread is gone;
  // freeing it from here goes through the (immortal) owner's reclamation
  // list.
  PayloadArena& mine = PayloadArena::current();  // claim ours before the
                                                 // worker's hits the registry
  void* p = nullptr;
  std::thread worker([&] { p = PayloadArena::allocate(96); });
  worker.join();
  const std::size_t registry = PayloadArena::registry_size();

  PayloadArena* owner = PayloadArena::owner_of(p);
  ASSERT_NE(owner, nullptr);
  EXPECT_NE(owner, &mine);
  const ArenaStats before = owner->stats();
  PayloadArena::deallocate(p);
  EXPECT_EQ(owner->stats().remote_frees, before.remote_frees + 1);

  // A second worker reuses an idle arena: the registry does not grow.
  std::thread next([] { PayloadArena::deallocate(PayloadArena::allocate(96)); });
  next.join();
  EXPECT_EQ(PayloadArena::registry_size(), registry);
}

TEST(PayloadArena, OversizeBlocksPassThroughTheGlobalAllocator) {
  void* p = PayloadArena::allocate(4096);  // above the largest class
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(PayloadArena::owner_of(p), nullptr);
  PayloadArena::deallocate(p);
}

// ---------------------------------------------------------------------------
// Scaling smoke: the pool must actually go faster where the hardware can
// serve it. Release-only (Debug wall times measure the allocator's
// bookkeeping, not the pool) and guarded on the affinity mask — on 1-cpu
// CI runners the clamp makes pooled == serial and a speedup assertion
// would be asserting on physics.

TEST(PoolScaling, FourWorkersBeatSerialOnMultiCoreHosts) {
#ifndef NDEBUG
  GTEST_SKIP() << "Release-only: Debug timings do not reflect the pool";
#endif
  const int cpus = numa::available_cpus();
  if (cpus < 4) {
    GTEST_SKIP() << "needs >= 4 available cpus, have " << cpus;
  }

  // At least 8 independent MP sims (2 per worker at width 4).
  const Circuit circuit = make_bnre_like();
  const std::vector<UpdateSchedule> schedules = {
      UpdateSchedule::sender(2, 5),    UpdateSchedule::sender(2, 10),
      UpdateSchedule::sender(5, 10),   UpdateSchedule::sender(10, 20),
      UpdateSchedule::receiver(1, 5),  UpdateSchedule::receiver(1, 30),
      UpdateSchedule::receiver(2, 10), UpdateSchedule::receiver(5, 2),
  };
  const ExperimentConfig config;
  const auto batch = [&](int threads) {
    SimPool pool(threads);
    std::vector<std::int64_t> heights(schedules.size());
    pool.run_indexed(schedules.size(), [&](std::size_t i) {
      heights[i] = run_message_passing(circuit, config.procs,
                                       config.mp(schedules[i]))
                       .circuit_height;
    });
    return heights;
  };
  // Steady state: warm arenas/caches once per width, then median of 3.
  const auto median3 = [&](int threads) {
    batch(threads);  // warm-up, not timed
    std::vector<double> times(3);
    for (double& t : times) {
      Stopwatch sw;
      batch(threads);
      t = sw.seconds();
    }
    std::sort(times.begin(), times.end());
    return times[1];
  };
  EXPECT_EQ(batch(4), batch(1)) << "width changed the results";
  const double t1 = median3(1);
  const double t4 = median3(4);
  EXPECT_GE(t1 / t4, 1.5) << "4-worker batch speedup regressed: t1=" << t1
                          << "s t4=" << t4 << "s";
}

// ---------------------------------------------------------------------------
// Route service: the batch front-end's determinism and admission contract.

TEST(RouteServiceProperty, ResultsAndMetricsBitIdenticalAcrossWidths) {
  // 50 request-mix seeds, replayed at widths 1/2/8: per-job result lines
  // and the merged obs CSV must be byte-identical to the serial run.
  ForceThreadsScope force;  // real workers even on clamped hosts
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const std::vector<RouteRequest> requests = generate_requests(12, seed);
    RouteServiceOptions options;
    options.max_inflight = 5;  // several waves, not one
    options.width = 1;
    const RouteServiceReport serial = run_route_service(requests, options);
    ASSERT_EQ(serial.results.size(), requests.size());
    EXPECT_FALSE(serial.metrics_csv.empty());
    for (int width : {2, 8}) {
      options.width = width;
      const RouteServiceReport pooled = run_route_service(requests, options);
      ASSERT_EQ(pooled.results, serial.results)
          << "seed=" << seed << " width=" << width;
      ASSERT_EQ(pooled.metrics_csv, serial.metrics_csv)
          << "seed=" << seed << " width=" << width;
      EXPECT_EQ(pooled.wires_routed, serial.wires_routed);
    }
  }
}

TEST(RouteServiceProperty, AdmissionControlHoldsTheInflightBound) {
  ForceThreadsScope force;
  obs::CounterRegistry host;
  RouteServiceOptions options;
  options.width = 8;        // more workers than the bound permits in flight
  options.max_inflight = 4;
  options.host_obs = &host;
  const RouteServiceReport report =
      run_route_service(generate_requests(64, 7), options);
  // Asserted via the published high-water obs counter, as callers would.
  const std::uint64_t high_water = host.total("svc.inflight_high_water");
  EXPECT_EQ(high_water, report.inflight_high_water);
  EXPECT_GE(high_water, 1u);
  EXPECT_LE(high_water, 4u);
  EXPECT_EQ(report.jobs, 64u);
  EXPECT_GT(report.wires_routed, 0u);
}

TEST(RouteServiceProperty, RequestLinesRoundTripAndRejectGarbage) {
  for (const RouteRequest& request : generate_requests(32, 11)) {
    const std::string line = render_request(request);
    RouteRequest parsed;
    std::string error;
    ASSERT_TRUE(parse_request(line, &parsed, &error)) << line << ": " << error;
    EXPECT_EQ(render_request(parsed), line);
  }
  RouteRequest out;
  std::string error;
  EXPECT_FALSE(parse_request("", &out, &error));
  EXPECT_TRUE(error.empty());  // blank: skipped, not an error
  EXPECT_FALSE(parse_request("# comment", &out, &error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(parse_request("udp acme tiny 1 4 sender:2:5", &out, &error));
  EXPECT_FALSE(error.empty());  // unknown kind
  EXPECT_FALSE(parse_request("mp acme tiny 1 4 sender:2", &out, &error));
  EXPECT_FALSE(error.empty());  // malformed schedule
  EXPECT_FALSE(parse_request("mp acme tiny 1 0 sender:2:5", &out, &error));
  EXPECT_FALSE(error.empty());  // procs < 1
  EXPECT_FALSE(parse_request("mp acme tiny 1 4 sender:2:5 extra", &out, &error));
  EXPECT_FALSE(error.empty());  // trailing field
}

}  // namespace
}  // namespace locus
