// Extension of §4.2: the two dynamic wire-distribution schemes the paper
// describes but could not simulate (CBS lacked reception interrupts),
// compared against the static ThresholdCost assignment it used instead.
// Expected story: polled dynamic distribution stalls requesters behind the
// queue owner's wires; interrupt servicing recovers the time but both
// dynamic modes lose the locality benefits of the static assignment.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Ablation: dynamic vs static wire distribution (Section 4.2)",
      {{"distribution schemes",
        [&] { return locus::run_ablation_dynamic_assignment(bnre); }}});
}
