// Robustness check on the substitution of synthetic circuits for the
// proprietary originals: the headline traffic hierarchy (shared memory >
// sender initiated MP > receiver initiated MP) must hold for any seed of
// the bnrE-shaped generator, not just the default one.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  return locus::benchmain::run(
      argc, argv, "Robustness: traffic hierarchy across circuit seeds",
      {{"five independently seeded bnrE-shaped circuits",
        [&] { return locus::run_seed_robustness(); }}});
}
