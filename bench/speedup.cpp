// Reproduces §5.4: speedup relative to the two-processor run (x2), paper
// values 12 (bnrE) and 12.8 (MDC) at 16 processors.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  locus::Circuit mdc = locus::make_mdc_like();
  return locus::benchmain::run(
      argc, argv, "Section 5.4: speedup",
      {{"speedup vs processors", [&] { return locus::run_speedup(bnre, mdc); }}});
}
