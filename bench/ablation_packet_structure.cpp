// Ablation (§4.3.1): the three update packet structures the paper weighs —
// wire based, whole region, and the chosen bounding box of changes.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Ablation: update packet structure (Section 4.3.1)",
      {{"packet structure sweep",
        [&] { return locus::run_ablation_packet_structure(bnre); }}});
}
