// Router design ablations beyond the paper: MST pin decomposition,
// quadratic congestion pricing, and wider exploration, plus the §3 claim
// that several rip-up-and-reroute iterations improve the final quality.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Ablation: router design choices",
      {{"router variants (sequential, bnrE-like)",
        [&] { return locus::run_ablation_router(bnre); }},
       {"iteration convergence (Section 3)",
        [&] { return locus::run_iteration_convergence(bnre); }}});
}
