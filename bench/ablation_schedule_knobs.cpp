// Sweeps of the two design knobs the paper fixes by fiat: the request
// lookahead ("we chose to have processors request updates for five wires at
// a time", §4.3.3) and the ThresholdCost locality/balance tradeoff (§4.2).
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Ablation: request lookahead and ThresholdCost sweeps",
      {{"request lookahead (receiver initiated, Section 4.3.3)",
        [&] { return locus::run_ablation_lookahead(bnre); }},
       {"ThresholdCost sweep (Section 4.2)",
        [&] { return locus::run_threshold_sweep(bnre); }}});
}
