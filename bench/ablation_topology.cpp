// Ablation: interconnect edges — the paper's 2D mesh vs a 2D torus
// (CBS simulated k-ary n-cubes; wraparound shortens routes).
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Ablation: interconnect topology",
      {{"mesh vs torus", [&] { return locus::run_ablation_topology(bnre); }}});
}
