// Reproduces §5.1.1's instrumentation claim: "Timing the assembly and
// disassembly of packets shows that these operations take up to one fourth
// of the processing time in runs with frequent updates."
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Section 5.1.1: message software share of processing time",
      {{"time breakdown per schedule",
        [&] { return locus::run_overhead_breakdown(bnre); }}});
}
