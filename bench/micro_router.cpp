// google-benchmark microbenchmarks for the router core: candidate
// exploration throughput, full-wire routing, rip-up, and quality metrics.
#include <benchmark/benchmark.h>

#include "circuit/generator.hpp"
#include "grid/cost_array.hpp"
#include "route/explorer.hpp"
#include "route/quality.hpp"
#include "route/router.hpp"
#include "route/sequential.hpp"

namespace {

using namespace locus;

void BM_ExploreConnection(benchmark::State& state) {
  Circuit circuit = make_bnre_like();
  CostArray cost(circuit.channels(), circuit.grids(), 2);
  ExplorerParams params;
  const Wire& wire = circuit.wire(0);
  for (auto _ : state) {
    ExploreResult r = explore_connection(wire.pins.front(), wire.pins.back(),
                                         circuit.channels(), cost, params);
    benchmark::DoNotOptimize(r.cost);
    state.counters["probes"] = static_cast<double>(r.stats.cells_probed);
  }
}
BENCHMARK(BM_ExploreConnection);

void BM_RouteWire(benchmark::State& state) {
  Circuit circuit = make_bnre_like();
  CostArray cost(circuit.channels(), circuit.grids());
  WireRouter router(circuit.channels(), {});
  RouteWorkStats stats;
  std::int64_t i = 0;
  for (auto _ : state) {
    const Wire& wire = circuit.wire(static_cast<WireId>(i++ % circuit.num_wires()));
    WireRoute r = router.route_wire(wire, cost, stats);
    WireRouter::rip_up(r, cost);  // keep the array from saturating
    benchmark::DoNotOptimize(r.path_cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteWire);

void BM_SequentialIteration(benchmark::State& state) {
  Circuit circuit = make_tiny_test_circuit();
  SequentialParams params;
  params.iterations = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    SequentialResult r = route_sequential(circuit, params);
    benchmark::DoNotOptimize(r.circuit_height);
  }
}
BENCHMARK(BM_SequentialIteration)->Arg(1)->Arg(2)->Arg(4);

void BM_CircuitHeight(benchmark::State& state) {
  Circuit circuit = make_bnre_like();
  SequentialResult r = route_sequential(circuit, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit_height(r.cost));
  }
}
BENCHMARK(BM_CircuitHeight);

}  // namespace

BENCHMARK_MAIN();
