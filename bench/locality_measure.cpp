// Reproduces §5.3.3: the locality measure — mean mesh-hop distance between
// the processor routing a segment and the owner of the region it lies in
// (paper: 1.21 for bnrE, 0.91 for MDC under the most local assignment).
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  locus::Circuit mdc = locus::make_mdc_like();
  return locus::benchmain::run(
      argc, argv, "Section 5.3.3: locality measure",
      {{"mean owner distance of routed segments",
        [&] { return locus::run_locality_measure(bnre, mdc); }}});
}
