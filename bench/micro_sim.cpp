// Microbenchmarks for the DES hot-path overhaul and the SimPool runner:
//   * event heap: the EventQueue's indexed 4-ary heap against a reference
//     std::priority_queue binary heap over the same (time, seq) keys;
//   * inbox: the sorted-ring arrival buffer pattern against the per-node
//     priority_queue it replaced;
//   * payload: intrusive PayloadRef against shared_ptr control blocks;
//   * pool scaling: a batch of independent MP routing sims at 1/2/4/8
//     worker threads (results are submission-ordered, so the batch output
//     is identical at every thread count; only the wall time moves);
//   * pool_profile: isolates the three contended resources a pooled run
//     leans on — the payload allocator (arena vs global new), the pool's
//     dispatch/steal machinery (trivial jobs), and obs shard padding
//     (padded vs unpadded counter slots) — so a future scaling regression
//     is attributable to one of them (run alone: --only=pool_profile);
//   * route service: batch throughput of examples/route_service's engine,
//     with the serial routes/sec gated (*_rps) against the baseline.
// Run via scripts/bench_smoke.sh, which records BENCH_sim.json for
// scripts/bench_compare.py to diff against future PRs.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_main.hpp"
#include "harness/experiments.hpp"
#include "harness/route_service.hpp"
#include "harness/sim_pool.hpp"
#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/packet.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace locus;

constexpr std::int64_t kBatch = 20000;

/// Best-of-batches timer (minimum is far more stable than the mean, which
/// the 15% regression gate in scripts/bench_compare.py needs).
template <typename Fn>
double best_of(Fn&& fn, double min_seconds) {
  double best = 1e100;
  Stopwatch total;
  do {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  } while (total.seconds() < min_seconds);
  return best;
}

/// Steady-state timer for the pool sections: one untimed warm-up rep (so
/// thread-local arenas are acquired, slabs carved, and pages faulted before
/// the clock starts) followed by `reps` timed reps, reporting the median —
/// robust to the occasional descheduling blip a min- or mean-based timer
/// would either hide or amplify when worker threads are in play.
template <typename Fn>
double median_of(Fn&& fn, int reps) {
  fn();  // warm-up: not timed
  std::vector<double> times(static_cast<std::size_t>(reps));
  for (double& t : times) {
    Stopwatch sw;
    fn();
    t = sw.seconds();
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// ---------------------------------------------------------------------------
// Event heap: EventQueue (indexed 4-ary heap) vs a reference binary heap.

/// The pre-overhaul engine, reconstructed as the measured baseline: a
/// std::priority_queue binary heap over (time, seq) driving the same
/// handler-pointer dispatch and bookkeeping the real run loop does. The
/// engine itself no longer uses it.
struct BinHeapEvent {
  SimTime time;
  std::uint64_t seq;
  std::uint64_t a;
  std::uint64_t b;
  std::uint16_t handler;
};
struct BinHeapLater {
  bool operator()(const BinHeapEvent& x, const BinHeapEvent& y) const {
    return x.time != y.time ? x.time > y.time : x.seq > y.seq;
  }
};

Table run_event_heap() {
  struct Sink {
    std::int64_t value = 0;
    static void bump(void* ctx, SimTime, std::uint64_t, std::uint64_t) {
      ++static_cast<Sink*>(ctx)->value;
    }
  };

  std::int64_t quad_sink = 0;
  const double quad_s = best_of(
      [&] {
        EventQueue q;
        Sink sink;
        const EventQueue::HandlerId h = q.add_handler(&Sink::bump, &sink);
        for (std::int64_t i = 0; i < kBatch; ++i) {
          q.schedule(i % 97, h, static_cast<std::uint64_t>(i));
        }
        q.run();
        quad_sink = sink.value;
      },
      0.25);
  LOCUS_ASSERT(quad_sink == kBatch);

  std::int64_t bin_sink = 0;
  const double bin_s = best_of(
      [&] {
        // Same bookkeeping as the real run loop (handler table, peak
        // tracking, now/executed), only the heap differs.
        std::priority_queue<BinHeapEvent, std::vector<BinHeapEvent>,
                            BinHeapLater>
            pq;
        Sink sink;
        struct Entry {
          EventQueue::EventHandler fn;
          void* ctx;
        };
        std::vector<Entry> handlers{{&Sink::bump, &sink}};
        SimTime now = 0;
        std::uint64_t executed = 0;
        std::size_t peak = 0;
        for (std::int64_t i = 0; i < kBatch; ++i) {
          pq.push(BinHeapEvent{i % 97, static_cast<std::uint64_t>(i),
                               static_cast<std::uint64_t>(i), 0, 0});
          peak = std::max(peak, pq.size());
        }
        while (!pq.empty()) {
          const BinHeapEvent ev = pq.top();
          pq.pop();
          now = ev.time;
          ++executed;
          const Entry& h = handlers[ev.handler];
          h.fn(h.ctx, now, ev.a, ev.b);
        }
        LOCUS_ASSERT(executed == static_cast<std::uint64_t>(kBatch));
        LOCUS_ASSERT(peak == static_cast<std::size_t>(kBatch));
        bin_sink = sink.value;
      },
      0.25);
  LOCUS_ASSERT(bin_sink == kBatch);

  benchmain::record("heap4_dispatch_s", quad_s);
  benchmain::record("binary_heap_s", bin_s);
  benchmain::record("events_executed", static_cast<double>(kBatch));

  Table t;
  t.column("heap", Align::kLeft).column("ms / batch").column("Mevents/s");
  t.row().cell("binary (std::priority_queue)").cell(bin_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / bin_s / 1e6, 2);
  t.row().cell("4-ary indexed (EventQueue)").cell(quad_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / quad_s / 1e6, 2);
  return t;
}

// ---------------------------------------------------------------------------
// Inbox: sorted-ring arrival buffer vs the per-node priority_queue.

struct MicroArrival {
  SimTime time;
  std::uint64_t seq;
};
struct MicroLater {
  bool operator()(const MicroArrival& x, const MicroArrival& y) const {
    return x.time != y.time ? x.time > y.time : x.seq > y.seq;
  }
};

/// The arrival pattern a node inbox sees: pushes arrive already sorted
/// (deliveries happen in global event order), drained in bursts.
Table run_inbox() {
  constexpr std::int64_t kBurst = 16;

  SimTime ring_sum = 0;
  const double ring_s = best_of(
      [&] {
        // FIFO ring: arrivals are pre-sorted, so push is an append and pop
        // advances the head — the flattened representation the Machine's
        // ArrivalRing uses.
        std::vector<MicroArrival> ring(64);
        std::size_t head = 0, count = 0;
        ring_sum = 0;
        std::uint64_t seq = 0;
        for (std::int64_t b = 0; b < kBatch / kBurst; ++b) {
          for (std::int64_t i = 0; i < kBurst; ++i) {
            if (count == ring.size()) LOCUS_ASSERT(false);
            ring[(head + count) % ring.size()] =
                MicroArrival{b, seq++};
            ++count;
          }
          while (count != 0) {
            ring_sum += ring[head].time;
            head = (head + 1) % ring.size();
            --count;
          }
        }
      },
      0.25);

  SimTime pq_sum = 0;
  const double pq_s = best_of(
      [&] {
        std::priority_queue<MicroArrival, std::vector<MicroArrival>, MicroLater>
            pq;
        pq_sum = 0;
        std::uint64_t seq = 0;
        for (std::int64_t b = 0; b < kBatch / kBurst; ++b) {
          for (std::int64_t i = 0; i < kBurst; ++i) {
            pq.push(MicroArrival{b, seq++});
          }
          while (!pq.empty()) {
            pq_sum += pq.top().time;
            pq.pop();
          }
        }
      },
      0.25);
  LOCUS_ASSERT(ring_sum == pq_sum);

  benchmain::record("inbox_ring_s", ring_s);
  benchmain::record("inbox_pq_s", pq_s);

  Table t;
  t.column("inbox", Align::kLeft).column("ms / batch").column("Marrivals/s");
  t.row().cell("priority_queue (legacy)").cell(pq_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / pq_s / 1e6, 2);
  t.row().cell("sorted ring (Machine)").cell(ring_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / ring_s / 1e6, 2);
  return t;
}

// ---------------------------------------------------------------------------
// Payload: intrusive PayloadRef vs shared_ptr control blocks.

struct MicroPayload final : PacketPayload {
  std::int64_t value = 0;
};

Table run_payload() {
  constexpr std::int64_t kAllocs = 20000;

  std::int64_t ref_sum = 0;
  const double ref_s = best_of(
      [&] {
        ref_sum = 0;
        for (std::int64_t i = 0; i < kAllocs; ++i) {
          auto [ref, data] = make_payload<MicroPayload>();
          data->value = i;
          PayloadRef copy = ref;   // send-path handoff: refcount bump
          PayloadRef moved = std::move(copy);  // deliver: free transfer
          ref_sum += static_cast<const MicroPayload*>(moved.get())->value;
        }
      },
      0.25);

  std::int64_t sp_sum = 0;
  const double sp_s = best_of(
      [&] {
        sp_sum = 0;
        for (std::int64_t i = 0; i < kAllocs; ++i) {
          auto p = std::make_shared<MicroPayload>();
          p->value = i;
          std::shared_ptr<const MicroPayload> copy = p;  // atomic bump
          std::shared_ptr<const MicroPayload> moved = std::move(copy);
          sp_sum += moved->value;
        }
      },
      0.25);
  LOCUS_ASSERT(ref_sum == sp_sum);

  benchmain::record("payload_ref_s", ref_s);
  benchmain::record("payload_shared_ptr_s", sp_s);

  Table t;
  t.column("payload handle", Align::kLeft).column("ms / batch")
      .column("Mhandoffs/s");
  t.row().cell("shared_ptr (legacy)").cell(sp_s * 1e3, 3)
      .cell(static_cast<double>(kAllocs) / sp_s / 1e6, 2);
  t.row().cell("PayloadRef (intrusive)").cell(ref_s * 1e3, 3)
      .cell(static_cast<double>(kAllocs) / ref_s / 1e6, 2);
  return t;
}

// ---------------------------------------------------------------------------
// Pool scaling: a batch of independent MP sims at 1/2/4/8 threads.

Table run_pool_scaling(const Circuit& circuit) {
  // Eight distinct schedules — a miniature table sweep. The per-thread
  // numbers on a loaded or single-core host understate the pool; the
  // determinism claim (identical results at every width) is what the
  // equivalence tests enforce, this section just measures wall time.
  const std::vector<UpdateSchedule> schedules = {
      UpdateSchedule::sender(2, 5),   UpdateSchedule::sender(2, 10),
      UpdateSchedule::sender(5, 10),  UpdateSchedule::sender(10, 20),
      UpdateSchedule::receiver(1, 5), UpdateSchedule::receiver(1, 30),
      UpdateSchedule::receiver(2, 10), UpdateSchedule::receiver(5, 2),
  };
  ExperimentConfig config;

  const std::vector<int> widths = {1, 2, 4, 8};
  constexpr int kReps = 5;

  std::int64_t baseline_height = 0;
  const auto batch = [&](int threads) {
    SimPool pool(threads);
    std::int64_t height_sum = 0;
    std::vector<std::int64_t> heights(schedules.size());
    pool.run_indexed(schedules.size(), [&](std::size_t i) {
      const MpRunResult r = run_message_passing(circuit, config.procs,
                                                config.mp(schedules[i]));
      heights[i] = r.circuit_height;
    });
    for (std::int64_t h : heights) height_sum += h;
    return height_sum;
  };

  // Steady state, not cold start: one untimed warm-up batch per width
  // acquires the per-worker arenas and carves their slabs, so the timed
  // reps measure routing, not first-touch page faults. The reps are
  // interleaved across widths (all widths once, then again, ...) so slow
  // drift in host load lands on every width equally instead of
  // systematically penalizing whichever width happens to run last; the
  // median over reps absorbs the occasional descheduling blip.
  for (int threads : widths) {
    const std::int64_t h = batch(threads);
    if (threads == 1) baseline_height = h;
    // Identical work at every width — the determinism invariant.
    LOCUS_ASSERT(h == baseline_height);
  }
  std::vector<std::vector<double>> times(widths.size());
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t w = 0; w < widths.size(); ++w) {
      Stopwatch sw;
      const std::int64_t h = batch(widths[w]);
      times[w].push_back(sw.seconds());
      LOCUS_ASSERT(h == baseline_height);
    }
  }

  Table t;
  t.column("threads").column("batch s").column("speedup");
  double t1 = 0.0;
  for (std::size_t w = 0; w < widths.size(); ++w) {
    std::sort(times[w].begin(), times[w].end());
    const double wall = times[w][times[w].size() / 2];
    if (widths[w] == 1) t1 = wall;
    // No _s suffix: thread-pool wall time depends on host load and core
    // count, so bench_compare.py treats these as informational, not gated.
    benchmain::record("pool_wall_" + std::to_string(widths[w]) + "t", wall);
    if (widths[w] > 1) {
      benchmain::record("pool_speedup_" + std::to_string(widths[w]) + "t",
                        t1 / wall);
    }
    t.row().cell(widths[w]).cell(wall, 3).cell(t1 / wall, 2);
  }
  return t;
}

// ---------------------------------------------------------------------------
// pool_profile: allocator vs dispatch vs obs-shard contention, isolated.

/// RAII toggle for LOCUS_POOL_IGNORE_AFFINITY so the dispatch probe can
/// force real worker threads even on hosts whose affinity mask would clamp
/// the pool to the inline path.
struct ForceThreadsScope {
  std::string saved;
  bool had = false;
  ForceThreadsScope() {
    const char* env = std::getenv("LOCUS_POOL_IGNORE_AFFINITY");
    if (env != nullptr) {
      had = true;
      saved = env;
    }
    ::setenv("LOCUS_POOL_IGNORE_AFFINITY", "1", 1);
  }
  ~ForceThreadsScope() {
    if (had) {
      ::setenv("LOCUS_POOL_IGNORE_AFFINITY", saved.c_str(), 1);
    } else {
      ::unsetenv("LOCUS_POOL_IGNORE_AFFINITY");
    }
  }
};

Table run_pool_profile(const Circuit& circuit) {
  Table t;
  t.column("probe", Align::kLeft).column("ms / batch").column("note",
                                                             Align::kLeft);

  // --- Allocator: per-thread arena vs global operator new on the payload
  // churn pattern (a sliding window of live blocks, FIFO frees). Serial on
  // purpose: the arena's fast path must win, or at worst tie, *before* any
  // contention enters the picture — its scaling benefit is on top of this.
  constexpr std::int64_t kAllocs = 20000;
  constexpr std::size_t kWindow = 256;
  constexpr std::size_t kBytes = 96;  // RegionUpdatePayload territory
  std::vector<void*> window;
  window.reserve(kWindow);
  const double arena_s = best_of(
      [&] {
        for (std::int64_t i = 0; i < kAllocs; ++i) {
          window.push_back(PayloadArena::allocate(kBytes));
          if (window.size() == kWindow) {
            for (void* p : window) PayloadArena::deallocate(p);
            window.clear();
          }
        }
        for (void* p : window) PayloadArena::deallocate(p);
        window.clear();
      },
      0.25);
  const double malloc_s = best_of(
      [&] {
        for (std::int64_t i = 0; i < kAllocs; ++i) {
          window.push_back(::operator new(kBytes));
          if (window.size() == kWindow) {
            for (void* p : window) ::operator delete(p);
            window.clear();
          }
        }
        for (void* p : window) ::operator delete(p);
        window.clear();
      },
      0.25);
  benchmain::record("arena_alloc_s", arena_s);
  benchmain::record("malloc_alloc_s", malloc_s);
  t.row().cell("alloc: global new").cell(malloc_s * 1e3, 3)
      .cell("20k alloc/free, 256 live");
  t.row().cell("alloc: payload arena").cell(arena_s * 1e3, 3)
      .cell("same churn, thread-local");

  // Deterministic attribution counter: payload blocks one fixed serial MP
  // run draws from the arena. Exact-match gated, so a routing change that
  // silently alters allocator pressure shows up here even if timings hide
  // it in noise.
  ExperimentConfig config;
  {
    const ArenaStats before = PayloadArena::current().stats();
    const MpRunResult r = run_message_passing(
        circuit, config.procs, config.mp(UpdateSchedule::sender(2, 5)));
    LOCUS_ASSERT(r.work.wires_routed > 0);
    const ArenaStats after = PayloadArena::current().stats();
    benchmain::record("arena_payload_allocs",
                      static_cast<double>(after.allocs - before.allocs));
  }

  // --- Dispatch: what the pool machinery itself costs. Trivial jobs make
  // queue push/pop, the remaining-counter, and steals the whole bill.
  constexpr std::size_t kJobs = 4096;
  std::vector<std::uint64_t> slots(kJobs, 0);
  const double loop_s = best_of(
      [&] {
        for (std::size_t i = 0; i < kJobs; ++i) slots[i] += i;
      },
      0.1);
  const double pool1_s = best_of(
      [&] {
        SimPool pool(1);
        pool.run_indexed(kJobs, [&](std::size_t i) { slots[i] += i; });
      },
      0.1);
  double forced2 = 0.0;
  {
    ForceThreadsScope force;
    forced2 = best_of(
        [&] {
          SimPool pool(2);
          pool.run_indexed(kJobs, [&](std::size_t i) { slots[i] += i; });
        },
        0.1);
  }
  benchmain::record("dispatch_loop_s", loop_s);
  benchmain::record("dispatch_pool1_s", pool1_s);
  // Host-dependent (real threads on whatever cpus exist): informational.
  benchmain::record("dispatch_pool2_forced", forced2);
  t.row().cell("dispatch: plain loop").cell(loop_s * 1e3, 3)
      .cell("4096 trivial jobs");
  t.row().cell("dispatch: pool width 1").cell(pool1_s * 1e3, 3)
      .cell("inline path");
  t.row().cell("dispatch: pool width 2").cell(forced2 * 1e3, 3)
      .cell("forced threads: queue+steal");

  // --- Obs shards: padded (the real CounterRegistry layout) vs unpadded
  // slots under two writer threads. On a single-cpu host the threads
  // timeshare and the two probes tie; with real parallelism the unpadded
  // variant pays coherence misses on every bump. Informational either way.
  constexpr std::uint64_t kBumps = 200000;
  struct PaddedSlot {
    alignas(64) std::uint64_t value = 0;
  };
  struct UnpaddedSlot {
    std::uint64_t value = 0;
  };
  const auto hammer = [&](auto* slots2) {
    std::thread other([&] {
      for (std::uint64_t i = 0; i < kBumps; ++i) slots2[1].value += 1;
    });
    for (std::uint64_t i = 0; i < kBumps; ++i) slots2[0].value += 1;
    other.join();
  };
  PaddedSlot padded[2];
  UnpaddedSlot unpadded[2];
  const double padded_wall = best_of([&] { hammer(padded); }, 0.25);
  const double unpadded_wall = best_of([&] { hammer(unpadded); }, 0.25);
  LOCUS_ASSERT(padded[0].value > 0 && unpadded[1].value > 0);
  benchmain::record("shard_padded_wall", padded_wall);
  benchmain::record("shard_unpadded_wall", unpadded_wall);
  t.row().cell("obs shards: unpadded").cell(unpadded_wall * 1e3, 3)
      .cell("2 writers, shared line");
  t.row().cell("obs shards: padded").cell(padded_wall * 1e3, 3)
      .cell("2 writers, 64B apart");
  return t;
}

// ---------------------------------------------------------------------------
// Route service: batch throughput through the pool with admission control.

Table run_route_bench() {
  const std::vector<RouteRequest> requests = generate_requests(256, 42);

  RouteServiceOptions options;
  options.max_inflight = 64;
  std::uint64_t wires = 0;
  const auto serve = [&](int width) {
    options.width = width;
    const RouteServiceReport report = run_route_service(requests, options);
    wires = report.wires_routed;
    return report;
  };

  // Serial replay is deterministic work on one core, so its routes/sec is
  // gated (_rps, higher is better, 15%) like the other single-thread
  // timings; pooled replays depend on the host's cpus and stay
  // informational.
  const double serial_wall = median_of([&] { serve(1); }, 3);
  const double serial_rps = static_cast<double>(wires) / serial_wall;
  const std::uint64_t serial_wires = wires;
  const double pooled_wall = median_of([&] { serve(4); }, 3);
  LOCUS_ASSERT(wires == serial_wires);  // width never changes the work

  benchmain::record("route_serial_rps", serial_rps);
  benchmain::record("route_pooled_wall_4w", pooled_wall);
  benchmain::record("svc_jobs", static_cast<double>(requests.size()));
  benchmain::record("svc_wires_routed", static_cast<double>(serial_wires));

  Table t;
  t.column("width").column("batch s").column("routes/s");
  t.row().cell(1).cell(serial_wall, 3)
      .cell(serial_rps, 0);
  t.row().cell(4).cell(pooled_wall, 3)
      .cell(static_cast<double>(serial_wires) / pooled_wall, 0);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  Circuit bnre = make_bnre_like();
  return benchmain::run(
      argc, argv, "DES hot path + SimPool microbenchmarks",
      {{"event heap (binary vs 4-ary)", [] { return run_event_heap(); }},
       {"node inbox (priority_queue vs sorted ring)",
        [] { return run_inbox(); }},
       {"payload handle (shared_ptr vs PayloadRef)",
        [] { return run_payload(); }},
       {"pool scaling (8 independent MP sims)",
        [&] { return run_pool_scaling(bnre); }},
       {"pool_profile (allocator / dispatch / obs shards)",
        [&] { return run_pool_profile(bnre); }},
       {"route service (batch throughput)",
        [] { return run_route_bench(); }}});
}
