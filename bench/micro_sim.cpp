// Microbenchmarks for the DES hot-path overhaul and the SimPool runner:
//   * event heap: the EventQueue's indexed 4-ary heap against a reference
//     std::priority_queue binary heap over the same (time, seq) keys;
//   * inbox: the sorted-ring arrival buffer pattern against the per-node
//     priority_queue it replaced;
//   * payload: intrusive PayloadRef against shared_ptr control blocks;
//   * pool scaling: a batch of independent MP routing sims at 1/2/4/8
//     worker threads (results are submission-ordered, so the batch output
//     is identical at every thread count; only the wall time moves).
// Run via scripts/bench_smoke.sh, which records BENCH_sim.json for
// scripts/bench_compare.py to diff against future PRs.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "bench_main.hpp"
#include "harness/experiments.hpp"
#include "harness/sim_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/packet.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace locus;

constexpr std::int64_t kBatch = 20000;

/// Best-of-batches timer (minimum is far more stable than the mean, which
/// the 15% regression gate in scripts/bench_compare.py needs).
template <typename Fn>
double best_of(Fn&& fn, double min_seconds) {
  double best = 1e100;
  Stopwatch total;
  do {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.seconds());
  } while (total.seconds() < min_seconds);
  return best;
}

// ---------------------------------------------------------------------------
// Event heap: EventQueue (indexed 4-ary heap) vs a reference binary heap.

/// The pre-overhaul engine, reconstructed as the measured baseline: a
/// std::priority_queue binary heap over (time, seq) driving the same
/// handler-pointer dispatch and bookkeeping the real run loop does. The
/// engine itself no longer uses it.
struct BinHeapEvent {
  SimTime time;
  std::uint64_t seq;
  std::uint64_t a;
  std::uint64_t b;
  std::uint16_t handler;
};
struct BinHeapLater {
  bool operator()(const BinHeapEvent& x, const BinHeapEvent& y) const {
    return x.time != y.time ? x.time > y.time : x.seq > y.seq;
  }
};

Table run_event_heap() {
  struct Sink {
    std::int64_t value = 0;
    static void bump(void* ctx, SimTime, std::uint64_t, std::uint64_t) {
      ++static_cast<Sink*>(ctx)->value;
    }
  };

  std::int64_t quad_sink = 0;
  const double quad_s = best_of(
      [&] {
        EventQueue q;
        Sink sink;
        const EventQueue::HandlerId h = q.add_handler(&Sink::bump, &sink);
        for (std::int64_t i = 0; i < kBatch; ++i) {
          q.schedule(i % 97, h, static_cast<std::uint64_t>(i));
        }
        q.run();
        quad_sink = sink.value;
      },
      0.25);
  LOCUS_ASSERT(quad_sink == kBatch);

  std::int64_t bin_sink = 0;
  const double bin_s = best_of(
      [&] {
        // Same bookkeeping as the real run loop (handler table, peak
        // tracking, now/executed), only the heap differs.
        std::priority_queue<BinHeapEvent, std::vector<BinHeapEvent>,
                            BinHeapLater>
            pq;
        Sink sink;
        struct Entry {
          EventQueue::EventHandler fn;
          void* ctx;
        };
        std::vector<Entry> handlers{{&Sink::bump, &sink}};
        SimTime now = 0;
        std::uint64_t executed = 0;
        std::size_t peak = 0;
        for (std::int64_t i = 0; i < kBatch; ++i) {
          pq.push(BinHeapEvent{i % 97, static_cast<std::uint64_t>(i),
                               static_cast<std::uint64_t>(i), 0, 0});
          peak = std::max(peak, pq.size());
        }
        while (!pq.empty()) {
          const BinHeapEvent ev = pq.top();
          pq.pop();
          now = ev.time;
          ++executed;
          const Entry& h = handlers[ev.handler];
          h.fn(h.ctx, now, ev.a, ev.b);
        }
        LOCUS_ASSERT(executed == static_cast<std::uint64_t>(kBatch));
        LOCUS_ASSERT(peak == static_cast<std::size_t>(kBatch));
        bin_sink = sink.value;
      },
      0.25);
  LOCUS_ASSERT(bin_sink == kBatch);

  benchmain::record("heap4_dispatch_s", quad_s);
  benchmain::record("binary_heap_s", bin_s);
  benchmain::record("events_executed", static_cast<double>(kBatch));

  Table t;
  t.column("heap", Align::kLeft).column("ms / batch").column("Mevents/s");
  t.row().cell("binary (std::priority_queue)").cell(bin_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / bin_s / 1e6, 2);
  t.row().cell("4-ary indexed (EventQueue)").cell(quad_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / quad_s / 1e6, 2);
  return t;
}

// ---------------------------------------------------------------------------
// Inbox: sorted-ring arrival buffer vs the per-node priority_queue.

struct MicroArrival {
  SimTime time;
  std::uint64_t seq;
};
struct MicroLater {
  bool operator()(const MicroArrival& x, const MicroArrival& y) const {
    return x.time != y.time ? x.time > y.time : x.seq > y.seq;
  }
};

/// The arrival pattern a node inbox sees: pushes arrive already sorted
/// (deliveries happen in global event order), drained in bursts.
Table run_inbox() {
  constexpr std::int64_t kBurst = 16;

  SimTime ring_sum = 0;
  const double ring_s = best_of(
      [&] {
        // FIFO ring: arrivals are pre-sorted, so push is an append and pop
        // advances the head — the flattened representation the Machine's
        // ArrivalRing uses.
        std::vector<MicroArrival> ring(64);
        std::size_t head = 0, count = 0;
        ring_sum = 0;
        std::uint64_t seq = 0;
        for (std::int64_t b = 0; b < kBatch / kBurst; ++b) {
          for (std::int64_t i = 0; i < kBurst; ++i) {
            if (count == ring.size()) LOCUS_ASSERT(false);
            ring[(head + count) % ring.size()] =
                MicroArrival{b, seq++};
            ++count;
          }
          while (count != 0) {
            ring_sum += ring[head].time;
            head = (head + 1) % ring.size();
            --count;
          }
        }
      },
      0.25);

  SimTime pq_sum = 0;
  const double pq_s = best_of(
      [&] {
        std::priority_queue<MicroArrival, std::vector<MicroArrival>, MicroLater>
            pq;
        pq_sum = 0;
        std::uint64_t seq = 0;
        for (std::int64_t b = 0; b < kBatch / kBurst; ++b) {
          for (std::int64_t i = 0; i < kBurst; ++i) {
            pq.push(MicroArrival{b, seq++});
          }
          while (!pq.empty()) {
            pq_sum += pq.top().time;
            pq.pop();
          }
        }
      },
      0.25);
  LOCUS_ASSERT(ring_sum == pq_sum);

  benchmain::record("inbox_ring_s", ring_s);
  benchmain::record("inbox_pq_s", pq_s);

  Table t;
  t.column("inbox", Align::kLeft).column("ms / batch").column("Marrivals/s");
  t.row().cell("priority_queue (legacy)").cell(pq_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / pq_s / 1e6, 2);
  t.row().cell("sorted ring (Machine)").cell(ring_s * 1e3, 3)
      .cell(static_cast<double>(kBatch) / ring_s / 1e6, 2);
  return t;
}

// ---------------------------------------------------------------------------
// Payload: intrusive PayloadRef vs shared_ptr control blocks.

struct MicroPayload final : PacketPayload {
  std::int64_t value = 0;
};

Table run_payload() {
  constexpr std::int64_t kAllocs = 20000;

  std::int64_t ref_sum = 0;
  const double ref_s = best_of(
      [&] {
        ref_sum = 0;
        for (std::int64_t i = 0; i < kAllocs; ++i) {
          auto [ref, data] = make_payload<MicroPayload>();
          data->value = i;
          PayloadRef copy = ref;   // send-path handoff: refcount bump
          PayloadRef moved = std::move(copy);  // deliver: free transfer
          ref_sum += static_cast<const MicroPayload*>(moved.get())->value;
        }
      },
      0.25);

  std::int64_t sp_sum = 0;
  const double sp_s = best_of(
      [&] {
        sp_sum = 0;
        for (std::int64_t i = 0; i < kAllocs; ++i) {
          auto p = std::make_shared<MicroPayload>();
          p->value = i;
          std::shared_ptr<const MicroPayload> copy = p;  // atomic bump
          std::shared_ptr<const MicroPayload> moved = std::move(copy);
          sp_sum += moved->value;
        }
      },
      0.25);
  LOCUS_ASSERT(ref_sum == sp_sum);

  benchmain::record("payload_ref_s", ref_s);
  benchmain::record("payload_shared_ptr_s", sp_s);

  Table t;
  t.column("payload handle", Align::kLeft).column("ms / batch")
      .column("Mhandoffs/s");
  t.row().cell("shared_ptr (legacy)").cell(sp_s * 1e3, 3)
      .cell(static_cast<double>(kAllocs) / sp_s / 1e6, 2);
  t.row().cell("PayloadRef (intrusive)").cell(ref_s * 1e3, 3)
      .cell(static_cast<double>(kAllocs) / ref_s / 1e6, 2);
  return t;
}

// ---------------------------------------------------------------------------
// Pool scaling: a batch of independent MP sims at 1/2/4/8 threads.

Table run_pool_scaling(const Circuit& circuit) {
  // Eight distinct schedules — a miniature table sweep. The per-thread
  // numbers on a loaded or single-core host understate the pool; the
  // determinism claim (identical results at every width) is what the
  // equivalence tests enforce, this section just measures wall time.
  const std::vector<UpdateSchedule> schedules = {
      UpdateSchedule::sender(2, 5),   UpdateSchedule::sender(2, 10),
      UpdateSchedule::sender(5, 10),  UpdateSchedule::sender(10, 20),
      UpdateSchedule::receiver(1, 5), UpdateSchedule::receiver(1, 30),
      UpdateSchedule::receiver(2, 10), UpdateSchedule::receiver(5, 2),
  };
  ExperimentConfig config;

  Table t;
  t.column("threads").column("batch s").column("speedup");
  double t1 = 0.0;
  std::int64_t baseline_height = 0;
  for (int threads : {1, 2, 4, 8}) {
    std::int64_t height_sum = 0;
    const double wall = best_of(
        [&] {
          SimPool pool(threads);
          height_sum = 0;
          std::vector<std::int64_t> heights(schedules.size());
          pool.run_indexed(schedules.size(), [&](std::size_t i) {
            const MpRunResult r = run_message_passing(
                circuit, config.procs, config.mp(schedules[i]));
            heights[i] = r.circuit_height;
          });
          for (std::int64_t h : heights) height_sum += h;
        },
        0.25);
    if (threads == 1) {
      t1 = wall;
      baseline_height = height_sum;
    }
    // Identical work at every width — the determinism invariant.
    LOCUS_ASSERT(height_sum == baseline_height);
    // No _s suffix: thread-pool wall time depends on host load and core
    // count, so bench_compare.py treats these as informational, not gated.
    benchmain::record("pool_wall_" + std::to_string(threads) + "t", wall);
    if (threads > 1) {
      benchmain::record("pool_speedup_" + std::to_string(threads) + "t",
                        t1 / wall);
    }
    t.row().cell(threads).cell(wall, 3).cell(t1 / wall, 2);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  Circuit bnre = make_bnre_like();
  return benchmain::run(
      argc, argv, "DES hot path + SimPool microbenchmarks",
      {{"event heap (binary vs 4-ary)", [] { return run_event_heap(); }},
       {"node inbox (priority_queue vs sorted ring)",
        [] { return run_inbox(); }},
       {"payload handle (shared_ptr vs PayloadRef)",
        [] { return run_payload(); }},
       {"pool scaling (8 independent MP sims)",
        [&] { return run_pool_scaling(bnre); }}});
}
