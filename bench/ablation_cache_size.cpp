// Relaxes the paper's footnote-3 assumption ("for the purposes of this
// study, we have assumed an infinite cache"): coherence traffic under
// finite per-processor LRU caches, with capacity misses and dirty-eviction
// write-backs, converging to the paper's model as capacity grows.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Ablation: finite caches (paper footnote 3)",
      {{"traffic vs per-processor cache size (8B lines)",
        [&] { return locus::run_ablation_cache_size(bnre); }}});
}
