// Reproduces Table 2: non-blocking receiver initiated update schedules.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv,
      "Table 2: non-blocking receiver initiated updates (bnrE-like, 16 procs)",
      {{"ReqLocData x ReqRmtData sweep",
        [&] { return locus::run_table2_receiver_initiated(bnre); }}});
}
