// Reproduces Table 4: effect of locality-aware wire assignment on the
// message passing implementation (both circuits), plus the §5.3.1 claim
// that receiver initiated traffic drops up to 63% under a local assignment.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  locus::Circuit mdc = locus::make_mdc_like();
  return locus::benchmain::run(
      argc, argv, "Table 4: effect of locality, message passing (sender initiated)",
      {{"assignment sweep",
        [&] { return locus::run_table4_locality_mp(bnre, mdc); }},
       {"receiver initiated locality traffic (bnrE-like)",
        [&] { return locus::run_table4_receiver_locality(bnre); }}});
}
