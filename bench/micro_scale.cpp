// Scale-tier microbenchmark (ISSUE 8): the Table 6 sweep extended to
// hierarchical 10k-wire circuits at 16 and 64 virtual processors with
// sharded per-processor views and region-batched update packets.
//
// Counters (see bench_main.hpp conventions):
//   * route_rps            -- wall-clock wire routes per second across the
//                             sweep (gated, higher is better);
//   * traffic_bytes, view_resident_bytes, ckt_height -- deterministic run
//     products, exact-match gated: any drift means the routing or packet
//     byte model changed and the baseline must be re-recorded knowingly;
//   * identity_mismatches  -- sharded vs monolithic route differences (0);
//   * unbatched_bytes / batched_bytes / batch_saving_x -- what region
//     batching buys on the same circuit;
//   * geo_sim_rps / dynlocal_sim_rps / *_view_bytes -- the ISSUE 9
//     acceptance point (100k wires, 256 virtual procs): locality-aware
//     dynamic scheduling vs the geographic baseline in simulated
//     routes/sec and peak sharded-view bytes. The rps counters are
//     simulated-time rates, so they are deterministic; the view bytes are
//     exact-match gated.
#include <cstdint>

#include "bench_main.hpp"
#include "circuit/hier_generator.hpp"
#include "harness/experiments.hpp"
#include "msg/driver.hpp"

namespace {

using namespace locus;

Table scale_sweep_section() {
  ScaleSweepOptions options;
  options.wire_counts = {10'000};
  options.proc_counts = {16, 64};
  Stopwatch sw;
  ScaleSweepResult result = run_scale_sweep(options);
  const double wall = sw.seconds();
  const double routed = 10'000.0 * options.iterations *
                        static_cast<double>(options.proc_counts.size());
  benchmain::record("route_rps", wall == 0.0 ? 0.0 : routed / wall);
  benchmain::record("traffic_bytes",
                    static_cast<double>(result.headline_traffic_bytes));
  benchmain::record("view_resident_bytes",
                    static_cast<double>(result.headline_resident_bytes));
  benchmain::record("ckt_height",
                    static_cast<double>(result.headline_circuit_height));
  return std::move(result.table);
}

MpRunResult run_once(const Circuit& circuit, std::int32_t procs, bool sharded,
                     bool batched) {
  MpConfig config;
  config.schedule = UpdateSchedule::sender(2, 10);
  config.shard.enabled = sharded;
  config.shard.batch_updates = batched;
  return run_message_passing(circuit, procs, config);
}

Table shard_identity_section() {
  const Circuit circuit = make_scale_circuit(1'000, /*seed=*/0x51DE5ULL);
  const MpRunResult dense = run_once(circuit, 16, /*sharded=*/false, false);
  const MpRunResult tiled = run_once(circuit, 16, /*sharded=*/true, false);
  const bool identical = routes_identical(dense.routes, tiled.routes) &&
                         dense.completion_ns == tiled.completion_ns &&
                         dense.bytes_transferred == tiled.bytes_transferred;
  benchmain::record("identity_mismatches", identical ? 0.0 : 1.0);
  Table t;
  t.column("view", Align::kLeft).column("CktHt").column("MBytes")
      .column("Time(s)").column("view MB");
  const std::pair<const char*, const MpRunResult*> rows[] = {{"dense", &dense},
                                                             {"tiled", &tiled}};
  for (const auto& [name, r] : rows) {
    t.row().cell(name).cell(static_cast<long long>(r->circuit_height))
        .cell(r->mbytes(), 3).cell(r->seconds(), 3)
        .cell(static_cast<double>(r->view_resident_bytes) / 1e6, 2);
  }
  return t;
}

Table batch_traffic_section() {
  const Circuit circuit = make_scale_circuit(10'000, /*seed=*/0x5CA1EULL);
  const MpRunResult plain = run_once(circuit, 16, /*sharded=*/true, false);
  const MpRunResult batched = run_once(circuit, 16, /*sharded=*/true, true);
  benchmain::record("unbatched_bytes",
                    static_cast<double>(plain.bytes_transferred));
  benchmain::record("batched_bytes",
                    static_cast<double>(batched.bytes_transferred));
  benchmain::record("batch_saving_x",
                    batched.bytes_transferred == 0
                        ? 0.0
                        : static_cast<double>(plain.bytes_transferred) /
                              static_cast<double>(batched.bytes_transferred));
  Table t;
  t.column("packets", Align::kLeft).column("CktHt").column("MBytes")
      .column("Time(s)");
  const std::pair<const char*, const MpRunResult*> rows[] = {
      {"single bbox", &plain}, {"region batched", &batched}};
  for (const auto& [name, r] : rows) {
    t.row().cell(name).cell(static_cast<long long>(r->circuit_height))
        .cell(r->mbytes(), 3).cell(r->seconds(), 3);
  }
  return t;
}

Table dynamic_scheduling_section() {
  ScaleSweepOptions options;
  options.wire_counts = {100'000};
  options.proc_counts = {256};
  options.modes = {ScaleAssignMode::kGeographic,
                   ScaleAssignMode::kDynamicLocality};
  ScaleSweepResult result = run_scale_sweep(options);
  const ScaleModeMetrics* geo = nullptr;
  const ScaleModeMetrics* dyn = nullptr;
  for (const ScaleModeMetrics& m : result.headline_modes) {
    if (m.mode == ScaleAssignMode::kGeographic) geo = &m;
    if (m.mode == ScaleAssignMode::kDynamicLocality) dyn = &m;
  }
  if (geo != nullptr && dyn != nullptr) {
    benchmain::record("geo_sim_rps", geo->route_rps);
    benchmain::record("dynlocal_sim_rps", dyn->route_rps);
    benchmain::record("geo_view_bytes", static_cast<double>(geo->resident_bytes));
    benchmain::record("dynlocal_view_bytes",
                      static_cast<double>(dyn->resident_bytes));
    benchmain::record("dyn_speedup_x",
                      geo->route_rps == 0.0 ? 0.0
                                            : dyn->route_rps / geo->route_rps);
    benchmain::record("dyn_view_ratio_x",
                      geo->resident_bytes == 0
                          ? 0.0
                          : static_cast<double>(dyn->resident_bytes) /
                                static_cast<double>(geo->resident_bytes));
    benchmain::record("dynlocal_routed_stddev", dyn->routed_stddev);
  }
  return std::move(result.table);
}

}  // namespace

int main(int argc, char** argv) {
  return locus::benchmain::run(
      argc, argv, "Scale tier: sharded views, 10k-wire hierarchical circuits",
      {{"scale sweep (10k wires, 16/64 procs, sharded+batched)",
        scale_sweep_section},
       {"shard identity (1k wires, 16 procs)", shard_identity_section},
       {"region batching traffic (10k wires, 16 procs)",
        batch_traffic_section},
       {"dynamic scheduling (100k wires, 256 procs, geo vs dyn-local)",
        dynamic_scheduling_section}});
}
