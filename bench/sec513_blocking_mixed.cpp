// Reproduces §5.1.3: blocking vs non-blocking receiver initiated updates
// (paper: blocking costs up to 75% more time at similar quality) and the
// mixed sender+receiver schedule comparison.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Section 5.1.3: blocking and mixed update strategies",
      {{"blocking vs non-blocking receiver initiated",
        [&] { return locus::run_sec513_blocking(bnre); }},
       {"mixed schedule vs pure schedules",
        [&] { return locus::run_sec513_mixed(bnre); }}});
}
