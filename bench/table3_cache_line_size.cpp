// Reproduces Table 3: shared memory coherence traffic as a function of
// cache line size, plus the per-cause breakdown backing the paper's claim
// that over 80% of the bytes are caused by writes (§5.2).
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  locus::Table3Result result = locus::run_table3_line_size(bnre);
  return locus::benchmain::run(
      argc, argv, "Table 3: shm traffic vs cache line size (bnrE-like, 16 procs)",
      {{"traffic vs line size", [&] { return result.table; }},
       {"traffic breakdown by cause", [&] { return result.breakdown; }}});
}
