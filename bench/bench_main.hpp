// Shared scaffolding for the table-reproduction bench binaries: builds the
// benchmark circuits, prints a titled table (optionally as CSV with --csv),
// and reports wall time. Each binary reproduces one table/figure/section of
// the paper's evaluation; see DESIGN.md's experiment index.
//
// --json=PATH additionally emits a machine-readable run record (per-section
// wall time plus any counters the section recorded via benchmain::record()),
// the format scripts/bench_compare.py diffs to catch performance
// regressions. Convention: counters named *_s are wall-clock seconds (lower
// is better, 15% gate), *_rps are throughput rates (higher is better, 15%
// gate), *_x are ratios — displayed in diffs but never gated, since a ratio
// of two measured times doubles the host noise and its components are
// already gated individually — unsuffixed integers are exact-match work
// counters (cells_probed, events_executed, ...), and unsuffixed
// non-integers are informational only (host-dependent numbers like
// thread-pool wall times and speedups).
//
// --only=SUBSTRING restricts a run to the sections whose title contains the
// substring (case-sensitive) — e.g. `micro_sim --only=pool_profile` is the
// pool contention profiler on its own.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "circuit/generator.hpp"
#include "harness/sim_pool.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace locus::benchmain {

struct Section {
  std::string title;
  std::function<Table()> build;
};

namespace detail {

/// Counters recorded by the currently running section, in insertion order.
inline std::vector<std::pair<std::string, double>>& counters() {
  static std::vector<std::pair<std::string, double>> c;
  return c;
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

/// Formats doubles compactly: integral values without a fraction (counter
/// semantics), everything else with enough digits to round-trip timings.
inline std::string json_number(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace detail

/// Records (or overwrites) a named counter on the section being built.
/// Values land in the --json record; no-op for plain table runs.
inline void record(const std::string& name, double value) {
  for (auto& [n, v] : detail::counters()) {
    if (n == name) {
      v = value;
      return;
    }
  }
  detail::counters().emplace_back(name, value);
}

inline int run(int argc, char** argv, const std::string& heading,
               const std::vector<Section>& sections) {
  Cli cli;
  cli.flag("csv", "emit CSV instead of aligned tables", false);
  cli.flag("json", "also write a JSON run record to this path", "");
  cli.flag("only", "run only sections whose title contains this substring",
           "");
  cli.flag("threads",
           "worker threads for the simulation fan-outs; table bytes are "
           "identical at any value (0: LOCUS_THREADS, else serial)",
           "0");
  if (!cli.parse(argc, argv)) return 1;
  const bool csv = cli.get_bool("csv");
  const std::string json_path = cli.get("json");
  const std::string only = cli.get("only");
  set_sim_threads(static_cast<int>(cli.get_int("threads")));

  struct SectionRecord {
    std::string title;
    double wall_s;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::vector<SectionRecord> records;

  std::printf("=== %s ===\n", heading.c_str());
  Stopwatch total;
  for (const Section& section : sections) {
    if (!only.empty() && section.title.find(only) == std::string::npos) {
      continue;
    }
    detail::counters().clear();
    Stopwatch sw;
    Table table = section.build();
    const double wall = sw.seconds();
    std::printf("\n-- %s (built in %.2fs) --\n", section.title.c_str(), wall);
    std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
    records.push_back(SectionRecord{section.title, wall, detail::counters()});
  }
  const double total_wall = total.seconds();
  std::printf("\ntotal wall time: %.2fs\n", total_wall);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"sections\": [\n",
                 detail::json_escape(heading).c_str());
    for (std::size_t i = 0; i < records.size(); ++i) {
      const SectionRecord& r = records[i];
      std::fprintf(f, "    {\"title\": \"%s\", \"wall_s\": %.6f",
                   detail::json_escape(r.title).c_str(), r.wall_s);
      if (!r.counters.empty()) {
        std::fprintf(f, ", \"counters\": {");
        for (std::size_t j = 0; j < r.counters.size(); ++j) {
          std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                       detail::json_escape(r.counters[j].first).c_str(),
                       detail::json_number(r.counters[j].second).c_str());
        }
        std::fprintf(f, "}");
      }
      std::fprintf(f, "}%s\n", i + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"total_wall_s\": %.6f\n}\n", total_wall);
    std::fclose(f);
    std::printf("json record: %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace locus::benchmain
