// Shared scaffolding for the table-reproduction bench binaries: builds the
// benchmark circuits, prints a titled table (optionally as CSV with --csv),
// and reports wall time. Each binary reproduces one table/figure/section of
// the paper's evaluation; see DESIGN.md's experiment index.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "circuit/generator.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace locus::benchmain {

struct Section {
  std::string title;
  std::function<Table()> build;
};

inline int run(int argc, char** argv, const std::string& heading,
               const std::vector<Section>& sections) {
  Cli cli;
  cli.flag("csv", "emit CSV instead of aligned tables", false);
  if (!cli.parse(argc, argv)) return 1;
  const bool csv = cli.get_bool("csv");

  std::printf("=== %s ===\n", heading.c_str());
  Stopwatch total;
  for (const Section& section : sections) {
    Stopwatch sw;
    Table table = section.build();
    std::printf("\n-- %s (built in %.2fs) --\n", section.title.c_str(), sw.seconds());
    std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
  }
  std::printf("\ntotal wall time: %.2fs\n", total.seconds());
  return 0;
}

}  // namespace locus::benchmain
