// Extension of §5.3 ("locality will become an important part of future
// program design" on hierarchical shared memory machines) and of §5.1.1's
// bus-contention footnote: remote-reference fraction and NUMA memory time
// per wire assignment, plus snooping-bus occupancy of the coherence traffic.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Extension: hierarchical shared memory and bus occupancy",
      {{"NUMA and bus estimates per assignment",
        [&] { return locus::run_hierarchical_shm(bnre); }}});
}
