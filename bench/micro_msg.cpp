// google-benchmark microbenchmarks for the message passing substrate:
// delta-array maintenance, region extraction, and update application.
#include <benchmark/benchmark.h>

#include "grid/cost_array.hpp"
#include "grid/delta_array.hpp"
#include "msg/packets.hpp"
#include "support/rng.hpp"

namespace {

using namespace locus;

void BM_DeltaAdd(benchmark::State& state) {
  Partition part(10, 341, MeshShape::for_procs(16));
  DeltaArray delta(part);
  Rng rng(1);
  for (auto _ : state) {
    GridPoint p{static_cast<std::int32_t>(rng.bounded(10)),
                static_cast<std::int32_t>(rng.bounded(341))};
    delta.add(p, 1);
    delta.add(p, -1);  // cancellation path
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_DeltaAdd);

void BM_DeltaExtract(benchmark::State& state) {
  Partition part(10, 341, MeshShape::for_procs(16));
  DeltaArray delta(part);
  Rng rng(2);
  const std::int64_t touches = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::int64_t i = 0; i < touches; ++i) {
      delta.add({static_cast<std::int32_t>(rng.bounded(3)),
                 static_cast<std::int32_t>(rng.bounded(85))},
                1);
    }
    state.ResumeTiming();
    auto extract = delta.extract_region(0);
    benchmark::DoNotOptimize(extract);
  }
}
BENCHMARK(BM_DeltaExtract)->Arg(8)->Arg(64)->Arg(256);

void BM_ApplyAbsoluteUpdate(benchmark::State& state) {
  CostArray view(10, 341);
  Rect box = Rect::of(0, 2, 0, 84);
  std::vector<std::int32_t> values(static_cast<std::size_t>(box.area()), 3);
  for (auto _ : state) {
    view.write_rect(box, values);
    benchmark::DoNotOptimize(view.at({1, 40}));
  }
  state.SetBytesProcessed(state.iterations() * box.area() * 4);
}
BENCHMARK(BM_ApplyAbsoluteUpdate);

void BM_ApplyDeltaUpdate(benchmark::State& state) {
  CostArray view(10, 341);
  Rect box = Rect::of(0, 2, 0, 84);
  std::vector<std::int32_t> values(static_cast<std::size_t>(box.area()), 1);
  for (auto _ : state) {
    view.add_rect(box, values);
    benchmark::DoNotOptimize(view.at({1, 40}));
  }
  state.SetBytesProcessed(state.iterations() * box.area() * 4);
}
BENCHMARK(BM_ApplyDeltaUpdate);

void BM_PacketSizing(benchmark::State& state) {
  Rect box = Rect::of(0, 4, 10, 90);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        update_packet_bytes(PacketStructure::kBoundingBox, box, true, 12, 880));
    benchmark::DoNotOptimize(
        update_packet_bytes(PacketStructure::kWireBased, box, false, 12, 880));
  }
}
BENCHMARK(BM_PacketSizing);

}  // namespace

BENCHMARK_MAIN();
