// Reproduces §5.2: the headline comparison — shared memory traffic is about
// an order of magnitude above sender initiated message passing, which is
// about an order above receiver initiated; shm quality is the best.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Section 5.2: message passing vs shared memory",
      {{"traffic and quality comparison",
        [&] { return locus::run_sec52_comparison(bnre); }}});
}
