// Reproduces Table 1: network traffic, quality and execution time for
// purely sender initiated update schedules (bnrE-like, 16 processors).
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Table 1: sender initiated updates (bnrE-like, 16 procs)",
      {{"SendRmtData x SendLocData sweep",
        [&] { return locus::run_table1_sender_initiated(bnre); }}});
}
