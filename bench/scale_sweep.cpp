// Nightly scale lane driver: the extended Table 6 sweep at configurable
// size. Defaults reproduce the acceptance point -- a 100k-wire hierarchical
// circuit routed to completion at 64 virtual processors -- and the CI
// workflow_dispatch inputs override via environment:
//   LOCUS_SCALE_WIRES  comma-separated wire counts   (default "100000")
//   LOCUS_SCALE_PROCS  comma-separated proc counts   (default "16,64")
//   LOCUS_SCALE_MODES  comma-separated assignment policies out of
//                      geo,dyn-fifo,dyn-local,dyn-steal (default "geo")
//   LOCUS_SCALE_COST_MODEL  per-link timing discipline out of
//                      fixed,md1,vc (default "fixed")
// Runs with sharded views and region-batched updates (the configuration
// the scale tier exists to exercise). The headline sim_route_rps counter
// reports the first listed mode, so existing baselines are unchanged when
// LOCUS_SCALE_MODES is unset.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_main.hpp"
#include "harness/experiments.hpp"

namespace {

std::vector<std::int32_t> parse_list(const char* env, const char* fallback) {
  const char* raw = std::getenv(env);
  std::string s = raw != nullptr && raw[0] != '\0' ? raw : fallback;
  std::vector<std::int32_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(
        static_cast<std::int32_t>(std::stol(s.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return out;
}

std::vector<locus::ScaleAssignMode> parse_modes(const char* env) {
  const char* raw = std::getenv(env);
  std::string s = raw != nullptr && raw[0] != '\0' ? raw : "geo";
  std::vector<locus::ScaleAssignMode> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string name = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (name == "geo") {
      out.push_back(locus::ScaleAssignMode::kGeographic);
    } else if (name == "dyn-fifo") {
      out.push_back(locus::ScaleAssignMode::kDynamicFifo);
    } else if (name == "dyn-local") {
      out.push_back(locus::ScaleAssignMode::kDynamicLocality);
    } else if (name == "dyn-steal") {
      out.push_back(locus::ScaleAssignMode::kDynamicSteal);
    } else {
      std::fprintf(stderr, "unknown LOCUS_SCALE_MODES entry: %s\n",
                   name.c_str());
      std::exit(2);
    }
  }
  return out;
}

locus::LinkCostModelKind parse_cost_model(const char* env) {
  const char* raw = std::getenv(env);
  const std::string name = raw != nullptr && raw[0] != '\0' ? raw : "fixed";
  if (name == "fixed") return locus::LinkCostModelKind::kFixed;
  if (name == "md1") return locus::LinkCostModelKind::kMd1;
  if (name == "vc") return locus::LinkCostModelKind::kVc;
  std::fprintf(stderr, "unknown LOCUS_SCALE_COST_MODEL: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  locus::ScaleSweepOptions options;
  options.wire_counts = parse_list("LOCUS_SCALE_WIRES", "100000");
  options.proc_counts = parse_list("LOCUS_SCALE_PROCS", "16,64");
  options.modes = parse_modes("LOCUS_SCALE_MODES");
  options.cost_model = parse_cost_model("LOCUS_SCALE_COST_MODEL");
  return locus::benchmain::run(
      argc, argv, "Scale sweep: hierarchical circuits, sharded views",
      {{"procs x wires", [&] {
          locus::ScaleSweepResult result = locus::run_scale_sweep(options);
          locus::benchmain::record("sim_route_rps", result.headline_route_rps);
          locus::benchmain::record(
              "traffic_bytes",
              static_cast<double>(result.headline_traffic_bytes));
          locus::benchmain::record(
              "view_resident_bytes",
              static_cast<double>(result.headline_resident_bytes));
          // Per-mode counters for the largest combination, keyed by mode
          // name so a multi-mode lane can gate the dynamic-vs-geographic
          // ratios directly.
          for (const locus::ScaleModeMetrics& m : result.headline_modes) {
            const std::string prefix = locus::scale_assign_mode_name(m.mode);
            locus::benchmain::record(prefix + "_rps", m.route_rps);
            locus::benchmain::record(prefix + "_view_bytes",
                                     static_cast<double>(m.resident_bytes));
            locus::benchmain::record(prefix + "_routed_stddev",
                                     m.routed_stddev);
          }
          return std::move(result.table);
        }}});
}
