// Extension: quantifies §4's central idea — "applications like LocusRoute
// allow the programmer to choose to simulate shared memory only up to the
// degree of consistency required". Mean absolute error of the final
// per-processor views against the true cost array, per update schedule.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Extension: view staleness per update schedule",
      {{"mean absolute view error (bnrE-like, 16 procs)",
        [&] { return locus::run_view_staleness(bnre); }}});
}
