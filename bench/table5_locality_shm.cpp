// Reproduces Table 5: effect of locality-aware wire assignment on the
// shared memory implementation (8-byte lines, both circuits).
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  locus::Circuit mdc = locus::make_mdc_like();
  return locus::benchmain::run(
      argc, argv, "Table 5: effect of locality, shared memory",
      {{"assignment sweep",
        [&] { return locus::run_table5_locality_shm(bnre, mdc); }}});
}
