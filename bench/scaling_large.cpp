// Extension of Table 6/§5.4: scaling past the paper's 16 processors on a
// circuit ~4x the published benchmarks (2000 wires, 18 channels x 900
// grids), plus the iterations-under-staleness sweep.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit industrial = locus::make_industrial_like();
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Extension: scaling to 64 processors (industrial-like)",
      {{"processor sweep, sender initiated",
        [&] { return locus::run_scaling_large(industrial); }},
       {"MP iteration sweep (bnrE-like, 16 procs)",
        [&] { return locus::run_mp_iteration_sweep(bnre); }}});
}
