// Reproduces Table 6: effect of the number of processors on quality, time
// and traffic (sender initiated, bnrE-like).
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Table 6: effect of number of processors (sender initiated)",
      {{"processor sweep", [&] { return locus::run_table6_scaling(bnre); }}});
}
