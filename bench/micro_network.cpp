// google-benchmark microbenchmarks for the CBS-like simulator substrate:
// event queue throughput and wormhole network injection.
#include <benchmark/benchmark.h>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"

namespace {

using namespace locus;

void BM_EventQueue(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  for (auto _ : state) {
    EventQueue q;
    std::int64_t sink = 0;
    for (std::int64_t i = 0; i < batch; ++i) {
      q.schedule(i % 97, [&sink] { ++sink; });
    }
    q.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueue)->Arg(1000)->Arg(10000);

void BM_NetworkInject(benchmark::State& state) {
  Topology topo({4, 4}, Topology::Edges::kMesh);
  for (auto _ : state) {
    EventQueue q;
    std::uint64_t delivered = 0;
    Network net(topo, {}, q, [&](const Packet&, SimTime) { ++delivered; });
    for (int i = 0; i < 256; ++i) {
      Packet p;
      p.src = i % 16;
      p.dst = (i * 7 + 1) % 16;
      if (p.dst == p.src) p.dst = (p.dst + 1) % 16;
      p.type = 1;
      p.bytes = 64;
      net.inject(std::move(p), 0);
    }
    q.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_NetworkInject);

void BM_TopologyRoute(benchmark::State& state) {
  Topology topo({8, 8}, Topology::Edges::kMesh);
  int i = 0;
  for (auto _ : state) {
    auto path = topo.route(i % 64, (i * 13 + 5) % 64);
    benchmark::DoNotOptimize(path.size());
    ++i;
  }
}
BENCHMARK(BM_TopologyRoute);

}  // namespace

BENCHMARK_MAIN();
