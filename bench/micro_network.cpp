// Microbenchmarks for the CBS-like simulator substrate: POD event dispatch
// versus the legacy closure path, and a wormhole network injection storm.
// Run via scripts/bench_smoke.sh, which records BENCH_network.json for
// scripts/bench_compare.py to diff against future PRs.
#include <algorithm>
#include <cstdint>

#include "bench_main.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/topology.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace locus;

constexpr std::int64_t kBatch = 20000;

/// Fills a queue with `kBatch` events spread over 97 distinct times and runs
/// it dry; repeats until `min_seconds`. Returns the best (minimum) batch
/// seconds observed — far more stable run to run than the mean, which the
/// 15% regression gate in scripts/bench_compare.py needs.
template <typename FillFn>
double time_batches(FillFn&& fill, double min_seconds) {
  double best = 1e100;
  Stopwatch total;
  do {
    EventQueue q;
    Stopwatch sw;
    fill(q);
    q.run();
    best = std::min(best, sw.seconds());
  } while (total.seconds() < min_seconds);
  return best;
}

Table run_event_queue() {
  struct Counter {
    std::int64_t value = 0;
    static void bump(void* ctx, SimTime, std::uint64_t, std::uint64_t) {
      ++static_cast<Counter*>(ctx)->value;
    }
  };

  std::int64_t pod_sink = 0;
  std::size_t peak = 0;
  std::uint64_t executed = 0;
  const double pod_s = time_batches(
      [&](EventQueue& q) {
        Counter counter;
        const EventQueue::HandlerId h = q.add_handler(&Counter::bump, &counter);
        for (std::int64_t i = 0; i < kBatch; ++i) {
          q.schedule(i % 97, h, static_cast<std::uint64_t>(i));
        }
        peak = q.peak_pending();
        q.run();
        executed = q.executed();
        pod_sink = counter.value;
      },
      0.25);
  LOCUS_ASSERT(pod_sink == kBatch);

  std::int64_t closure_sink = 0;
  const double closure_s = time_batches(
      [&](EventQueue& q) {
        closure_sink = 0;
        for (std::int64_t i = 0; i < kBatch; ++i) {
          q.schedule(i % 97, [&closure_sink] { ++closure_sink; });
        }
      },
      0.25);
  LOCUS_ASSERT(closure_sink == kBatch);

  benchmain::record("pod_dispatch_s", pod_s);
  benchmain::record("closure_dispatch_s", closure_s);
  benchmain::record("dispatch_speedup_x", closure_s / pod_s);
  benchmain::record("events_executed", static_cast<double>(executed));
  benchmain::record("peak_queue_depth", static_cast<double>(peak));

  Table t;
  t.column("dispatch", Align::kLeft)
      .column("ms / batch")
      .column("events")
      .column("Mevents/s")
      .column("speedup");
  t.row()
      .cell("closure (legacy)")
      .cell(closure_s * 1e3, 3)
      .cell(static_cast<long long>(kBatch))
      .cell(static_cast<double>(kBatch) / closure_s / 1e6, 2)
      .cell(1.0, 2);
  t.row()
      .cell("POD handler")
      .cell(pod_s * 1e3, 3)
      .cell(static_cast<long long>(kBatch))
      .cell(static_cast<double>(kBatch) / pod_s / 1e6, 2)
      .cell(closure_s / pod_s, 2);
  return t;
}

Table run_network_storm() {
  Topology topo({4, 4}, Topology::Edges::kMesh);
  constexpr int kPackets = 4096;

  std::uint64_t delivered = 0;
  std::uint64_t executed = 0;
  std::size_t peak = 0;
  std::size_t in_flight_after = 0;
  double storm_s = 1e100;
  Stopwatch total;
  do {
    EventQueue q;
    delivered = 0;
    Stopwatch sw;
    Network net(topo, {}, q, [&](const Packet&, SimTime) { ++delivered; });
    for (int i = 0; i < kPackets; ++i) {
      Packet p;
      p.src = i % 16;
      p.dst = (i * 7 + 1) % 16;
      if (p.dst == p.src) p.dst = (p.dst + 1) % 16;
      p.type = 1;
      p.bytes = 64;
      net.schedule_inject(std::move(p), (i % 32) * 50);
    }
    q.run();
    storm_s = std::min(storm_s, sw.seconds());
    executed = q.executed();
    peak = q.peak_pending();
    in_flight_after = net.packets_in_flight();
  } while (total.seconds() < 0.25);
  LOCUS_ASSERT(delivered == kPackets);
  LOCUS_ASSERT_MSG(in_flight_after == 0, "arena leaked slots");

  benchmain::record("storm_s", storm_s);
  benchmain::record("packets_delivered", static_cast<double>(delivered));
  benchmain::record("events_executed", static_cast<double>(executed));
  benchmain::record("peak_queue_depth", static_cast<double>(peak));

  Table t;
  t.column("metric", Align::kLeft).column("value");
  t.row().cell("ms / storm").cell(storm_s * 1e3, 3);
  t.row().cell("packets delivered").cell(static_cast<long long>(delivered));
  t.row().cell("events executed").cell(static_cast<long long>(executed));
  t.row().cell("peak queue depth").cell(static_cast<long long>(peak));
  t.row().cell("kpackets/s").cell(static_cast<double>(kPackets) / storm_s / 1e3, 1);
  return t;
}

Table run_topology_route() {
  Topology topo({8, 8}, Topology::Edges::kMesh);
  constexpr int kRoutes = 100000;
  std::size_t hops = 0;
  double route_s = 1e100;
  Stopwatch total;
  do {
    hops = 0;
    Stopwatch sw;
    for (int i = 0; i < kRoutes; ++i) {
      hops += topo.route(i % 64, (i * 13 + 5) % 64).size();
    }
    route_s = std::min(route_s, sw.seconds());
  } while (total.seconds() < 0.25);

  benchmain::record("topo_route_s", route_s);

  Table t;
  t.column("metric", Align::kLeft).column("value");
  t.row().cell("ms / 100k routes").cell(route_s * 1e3, 3);
  t.row().cell("total hops").cell(static_cast<long long>(hops));
  return t;
}

/// The same injection storm priced under each link cost model. The
/// simulated outcomes (finish time, stalls, byte-hops) are deterministic
/// exact-match counters; the wall-clock per model is the gated timing.
Table run_link_cost_models() {
  Topology topo({4, 4}, Topology::Edges::kMesh);
  constexpr int kPackets = 4096;
  const LinkCostModelKind kinds[] = {
      LinkCostModelKind::kFixed,
      LinkCostModelKind::kMd1,
      LinkCostModelKind::kVc,
  };

  Table t;
  t.column("model", Align::kLeft).column("ms / storm").column("finish (us)")
      .column("byte-hops").column("stalls").column("stall ms");
  for (LinkCostModelKind kind : kinds) {
    std::uint64_t delivered = 0;
    SimTime finish = 0;
    std::uint64_t byte_hops = 0;
    std::uint64_t stalls = 0;
    SimTime stall_ns = 0;
    double storm_s = 1e100;
    Stopwatch total;
    do {
      EventQueue q;
      delivered = 0;
      finish = 0;
      Stopwatch sw;
      NetworkParams params;
      params.cost.kind = kind;
      Network net(topo, params, q, [&](const Packet&, SimTime at) {
        ++delivered;
        finish = std::max(finish, at);
      });
      for (int i = 0; i < kPackets; ++i) {
        Packet p;
        p.src = i % 16;
        p.dst = (i * 7 + 1) % 16;
        if (p.dst == p.src) p.dst = (p.dst + 1) % 16;
        p.type = 1;
        p.bytes = 64;
        net.schedule_inject(std::move(p), (i % 32) * 50);
      }
      q.run();
      storm_s = std::min(storm_s, sw.seconds());
      byte_hops = net.stats().byte_hops;
      const LinkUsageSummary usage = net.link_usage(finish);
      stalls = usage.stalls;
      stall_ns = usage.stall_ns;
    } while (total.seconds() < 0.25);
    LOCUS_ASSERT(delivered == kPackets);

    const std::string prefix = link_cost_model_name(kind);
    benchmain::record(prefix + "_storm_s", storm_s);
    benchmain::record(prefix + "_finish_ns", static_cast<double>(finish));
    benchmain::record(prefix + "_byte_hops", static_cast<double>(byte_hops));
    benchmain::record(prefix + "_stalls", static_cast<double>(stalls));
    t.row().cell(link_cost_model_name(kind)).cell(storm_s * 1e3, 3)
        .cell(static_cast<double>(finish) / 1e3, 1)
        .cell(static_cast<unsigned long long>(byte_hops))
        .cell(static_cast<unsigned long long>(stalls))
        .cell(static_cast<double>(stall_ns) / 1e6, 2);
  }
  return t;
}

/// Up/down routing and an injection storm on a 16-leaf binary fat tree —
/// the tree path lengths and credit backpressure under the VC model.
Table run_fat_tree() {
  Topology topo = Topology::fat_tree(16, 2);
  constexpr int kRoutes = 100000;
  std::size_t hops = 0;
  double route_s = 1e100;
  Stopwatch total;
  do {
    hops = 0;
    Stopwatch sw;
    for (int i = 0; i < kRoutes; ++i) {
      hops += topo.route(i % 16, (i * 13 + 5) % 16).size();
    }
    route_s = std::min(route_s, sw.seconds());
  } while (total.seconds() < 0.25);

  constexpr int kPackets = 4096;
  std::uint64_t delivered = 0;
  SimTime finish = 0;
  std::uint64_t stalls = 0;
  double storm_s = 1e100;
  Stopwatch storm_total;
  do {
    EventQueue q;
    delivered = 0;
    finish = 0;
    Stopwatch sw;
    NetworkParams params;
    params.cost.kind = LinkCostModelKind::kVc;
    Network net(topo, params, q, [&](const Packet&, SimTime at) {
      ++delivered;
      finish = std::max(finish, at);
    });
    for (int i = 0; i < kPackets; ++i) {
      Packet p;
      p.src = i % 16;
      p.dst = (i * 7 + 1) % 16;
      if (p.dst == p.src) p.dst = (p.dst + 1) % 16;
      p.type = 1;
      p.bytes = 64;
      net.schedule_inject(std::move(p), (i % 32) * 50);
    }
    q.run();
    storm_s = std::min(storm_s, sw.seconds());
    stalls = net.link_usage(finish).stalls;
  } while (storm_total.seconds() < 0.25);
  LOCUS_ASSERT(delivered == kPackets);

  benchmain::record("fat_route_s", route_s);
  benchmain::record("fat_hops", static_cast<double>(hops));
  benchmain::record("fat_storm_s", storm_s);
  benchmain::record("fat_finish_ns", static_cast<double>(finish));
  benchmain::record("fat_vc_stalls", static_cast<double>(stalls));

  Table t;
  t.column("metric", Align::kLeft).column("value");
  t.row().cell("ms / 100k routes").cell(route_s * 1e3, 3);
  t.row().cell("total hops").cell(static_cast<long long>(hops));
  t.row().cell("ms / vc storm").cell(storm_s * 1e3, 3);
  t.row().cell("finish (us)").cell(static_cast<double>(finish) / 1e3, 1);
  t.row().cell("vc stalls").cell(static_cast<unsigned long long>(stalls));
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  return locus::benchmain::run(
      argc, argv, "micro_network: event dispatch and wormhole injection",
      {{"event queue dispatch, POD vs closure", run_event_queue},
       {"network injection storm (4x4 mesh)", run_network_storm},
       {"topology routing (8x8 mesh)", run_topology_route},
       {"link cost models (4x4 mesh storm)", run_link_cost_models},
       {"fat tree (16 leaves, arity 2)", run_fat_tree}});
}
