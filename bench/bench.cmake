# Bench binaries: declared with include() from the top level so the binary
# dir ${LOCUS_BENCH_OUTPUT_DIR} holds nothing but executables (the canonical
# run loop is `for b in build/bench/*; do $b; done`).
function(locus_add_bench name)
  add_executable(${name} ${CMAKE_CURRENT_LIST_DIR}/../bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN} locus_warnings)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${LOCUS_BENCH_OUTPUT_DIR})
endfunction()

set(LOCUS_TABLE_LIBS locus_harness locus_msg locus_shm locus_coherence
    locus_assign locus_route locus_circuit locus_grid locus_geom locus_support)

locus_add_bench(table1_sender_initiated ${LOCUS_TABLE_LIBS})
locus_add_bench(table2_receiver_initiated ${LOCUS_TABLE_LIBS})
locus_add_bench(sec513_blocking_mixed ${LOCUS_TABLE_LIBS})
locus_add_bench(table3_cache_line_size ${LOCUS_TABLE_LIBS})
locus_add_bench(sec52_mp_vs_shm ${LOCUS_TABLE_LIBS})
locus_add_bench(table4_locality_mp ${LOCUS_TABLE_LIBS})
locus_add_bench(table5_locality_shm ${LOCUS_TABLE_LIBS})
locus_add_bench(locality_measure ${LOCUS_TABLE_LIBS})
locus_add_bench(table6_scaling ${LOCUS_TABLE_LIBS})
locus_add_bench(speedup ${LOCUS_TABLE_LIBS})
locus_add_bench(ablation_packet_structure ${LOCUS_TABLE_LIBS})
locus_add_bench(ablation_protocols ${LOCUS_TABLE_LIBS})
locus_add_bench(ablation_topology ${LOCUS_TABLE_LIBS})

locus_add_bench(micro_router locus_route locus_circuit locus_grid locus_geom locus_support benchmark::benchmark)
locus_add_bench(micro_explorer locus_route locus_circuit locus_grid locus_geom locus_sim_pool locus_support)
locus_add_bench(micro_network locus_sim locus_sim_pool locus_geom locus_support)
locus_add_bench(micro_sim ${LOCUS_TABLE_LIBS})
locus_add_bench(micro_coherence locus_coherence locus_shm locus_route locus_circuit locus_grid locus_assign locus_sim locus_geom locus_support benchmark::benchmark)

locus_add_bench(overhead_breakdown ${LOCUS_TABLE_LIBS})
locus_add_bench(ablation_dynamic_assignment ${LOCUS_TABLE_LIBS})
locus_add_bench(hierarchical_shm ${LOCUS_TABLE_LIBS})
locus_add_bench(ablation_router ${LOCUS_TABLE_LIBS})
locus_add_bench(ablation_schedule_knobs ${LOCUS_TABLE_LIBS})
locus_add_bench(view_staleness ${LOCUS_TABLE_LIBS})
locus_add_bench(micro_msg locus_msg locus_grid locus_geom locus_support benchmark::benchmark)
locus_add_bench(scaling_large ${LOCUS_TABLE_LIBS})
locus_add_bench(micro_scale ${LOCUS_TABLE_LIBS})
locus_add_bench(scale_sweep ${LOCUS_TABLE_LIBS})
locus_add_bench(ablation_cache_size ${LOCUS_TABLE_LIBS})
locus_add_bench(seed_robustness ${LOCUS_TABLE_LIBS})
