// E15: the four MP update protocols priced on {mesh, torus, fat-tree} x
// {fixed, md1, vc} per-link cost models, with the view-consistency checker
// and transport ledger asserted on every cell (ISSUE 10). The table bytes
// are pool-width independent, which scripts/verify.sh --bench diffs at
// --threads=1 vs 4.
#include "bench_main.hpp"
#include "harness/experiments.hpp"
#include "support/assert.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Topology sweep: protocols x topologies x link cost models",
      {{"protocol x topology x cost model", [&] {
          locus::TopologySweepResult result = locus::run_topology_sweep(bnre);
          LOCUS_ASSERT_MSG(result.all_ok,
                           "a sweep cell failed consistency or the ledger");
          locus::benchmain::record("sweep_runs",
                                   static_cast<double>(result.runs));
          locus::benchmain::record("sweep_stalls",
                                   static_cast<double>(result.total_stalls));
          return std::move(result.table);
        }}});
}
