// Ablation: coherence protocol choice. The paper used Write Back with
// Invalidate; write-through and Illinois MESI bound it from both sides.
#include "bench_main.hpp"
#include "harness/experiments.hpp"

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "Ablation: cache coherence protocols",
      {{"protocol sweep", [&] { return locus::run_ablation_protocols(bnre); }}});
}
