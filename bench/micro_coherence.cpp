// google-benchmark microbenchmarks for the coherence simulator: replay
// throughput per protocol and line size.
#include <benchmark/benchmark.h>

#include "circuit/generator.hpp"
#include "coherence/simulator.hpp"
#include "shm/shm_router.hpp"

namespace {

using namespace locus;

const RefTrace& tiny_trace() {
  static RefTrace trace = [] {
    ShmConfig config;
    config.procs = 4;
    return run_shared_memory(make_tiny_test_circuit(), config).trace;
  }();
  return trace;
}

void BM_CoherenceReplay(benchmark::State& state) {
  const RefTrace& trace = tiny_trace();
  CoherenceParams params;
  params.line_size = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    CoherenceSim sim(4, params);
    sim.replay(trace);
    benchmark::DoNotOptimize(sim.traffic().total_bytes());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_CoherenceReplay)->Arg(4)->Arg(8)->Arg(32);

void BM_CoherenceProtocols(benchmark::State& state) {
  const RefTrace& trace = tiny_trace();
  CoherenceParams params;
  params.line_size = 8;
  params.protocol = static_cast<ProtocolKind>(state.range(0));
  for (auto _ : state) {
    CoherenceSim sim(4, params);
    sim.replay(trace);
    benchmark::DoNotOptimize(sim.traffic().total_bytes());
  }
}
BENCHMARK(BM_CoherenceProtocols)
    ->Arg(static_cast<int>(ProtocolKind::kWriteBackInvalidate))
    ->Arg(static_cast<int>(ProtocolKind::kWriteThrough))
    ->Arg(static_cast<int>(ProtocolKind::kMesi));

}  // namespace

BENCHMARK_MAIN();
