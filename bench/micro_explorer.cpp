// Microbenchmark for the candidate-pricing hot loop: prefix-sum (bulk span)
// pricing versus the per-cell reference engine, on the Table-6-scale bnrE
// circuit. This is the repo's benchmark baseline for the routing kernel —
// run via scripts/bench_smoke.sh, which records BENCH_explorer.json for
// scripts/bench_compare.py to diff against future PRs.
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bench_main.hpp"
#include "circuit/circuit.hpp"
#include "circuit/generator.hpp"
#include "grid/cost_array.hpp"
#include "route/explorer.hpp"
#include "route/router.hpp"
#include "support/assert.hpp"
#include "support/simd.hpp"
#include "support/stopwatch.hpp"

namespace {

using namespace locus;

/// Forces the per-cell engine at route_wire granularity: a CostArray wrapper
/// without bulk-read support (the pre-PR pricing path).
class PerCellView final : public CostView {
 public:
  explicit PerCellView(CostArray& a) : array_(a) {}
  std::int32_t read(GridPoint p) override { return array_.read(p); }
  void add(GridPoint p, std::int32_t d) override { array_.add(p, d); }

 private:
  CostArray& array_;
};

/// The chain of two-point connections the router prices for the circuit.
std::vector<std::pair<Pin, Pin>> connection_list(const Circuit& circuit) {
  std::vector<std::pair<Pin, Pin>> pairs;
  for (WireId w = 0; w < circuit.num_wires(); ++w) {
    const Wire& wire = circuit.wire(w);
    for (std::size_t i = 1; i < wire.pins.size(); ++i) {
      pairs.emplace_back(wire.pins[i - 1], wire.pins[i]);
    }
  }
  return pairs;
}

/// Occupied cost landscape: route the whole circuit once so pricing runs
/// against realistic congestion, not a zero array.
CostArray make_landscape(const Circuit& circuit) {
  CostArray cost(circuit.channels(), circuit.grids());
  WireRouter router(circuit.channels(), {});
  RouteWorkStats stats;
  for (WireId w = 0; w < circuit.num_wires(); ++w) {
    router.route_wire(circuit.wire(w), cost, stats);
  }
  return cost;
}

/// Prices every connection with `engine`, repeating until `min_seconds` of
/// wall time; returns (best sweep seconds, summed cost, stats of one sweep).
/// Best-of is deliberate: a sweep is milliseconds, so the minimum is far
/// more stable across runs than the mean — which the 15% regression gate
/// in scripts/bench_compare.py needs.
struct SweepResult {
  double seconds_per_sweep;
  std::int64_t total_cost;
  ExploreStats stats;
};

template <typename EngineFn>
SweepResult time_sweeps(const std::vector<std::pair<Pin, Pin>>& pairs,
                        EngineFn&& engine, double min_seconds) {
  SweepResult r{1e100, 0, {}};
  Stopwatch total;
  do {
    r.total_cost = 0;
    r.stats = {};
    Stopwatch sw;
    for (const auto& [a, b] : pairs) {
      ExploreResult res = engine(a, b);
      r.total_cost += res.cost;
      r.stats.cells_probed += res.stats.cells_probed;
      r.stats.routes_evaluated += res.stats.routes_evaluated;
    }
    r.seconds_per_sweep = std::min(r.seconds_per_sweep, sw.seconds());
  } while (total.seconds() < min_seconds);
  return r;
}

Table run_pricing(const Circuit& circuit, const ExplorerParams& params,
                  const char* tag) {
  const std::vector<std::pair<Pin, Pin>> pairs = connection_list(circuit);
  CostArray cost = make_landscape(circuit);
  const std::int32_t channels = circuit.channels();
  PerCellView per_cell(cost);

  const SweepResult bulk = time_sweeps(
      pairs,
      [&](const Pin& a, const Pin& b) {
        return explore_connection(a, b, channels, cost, params);
      },
      0.4);
  const SweepResult ref = time_sweeps(
      pairs,
      [&](const Pin& a, const Pin& b) {
        return explore_connection(a, b, channels, per_cell, params);
      },
      0.4);
  LOCUS_ASSERT_MSG(bulk.total_cost == ref.total_cost &&
                       bulk.stats.cells_probed == ref.stats.cells_probed &&
                       bulk.stats.routes_evaluated == ref.stats.routes_evaluated,
                   "pricing engines diverged");

  const double speedup = ref.seconds_per_sweep / bulk.seconds_per_sweep;
  std::string prefix = tag;
  benchmain::record(prefix + "_percell_s", ref.seconds_per_sweep);
  benchmain::record(prefix + "_bulk_s", bulk.seconds_per_sweep);
  benchmain::record(prefix + "_speedup_x", speedup);
  benchmain::record("cells_probed", static_cast<double>(bulk.stats.cells_probed));
  benchmain::record("routes_evaluated",
                    static_cast<double>(bulk.stats.routes_evaluated));

  Table t;
  t.column("engine", Align::kLeft)
      .column("ms / sweep")
      .column("connections")
      .column("cells probed")
      .column("routes evaluated")
      .column("speedup");
  t.row()
      .cell("per-cell reference")
      .cell(ref.seconds_per_sweep * 1e3, 2)
      .cell(static_cast<long long>(pairs.size()))
      .cell(static_cast<long long>(ref.stats.cells_probed))
      .cell(static_cast<long long>(ref.stats.routes_evaluated))
      .cell(1.0, 2);
  t.row()
      .cell("prefix-sum bulk")
      .cell(bulk.seconds_per_sweep * 1e3, 2)
      .cell(static_cast<long long>(pairs.size()))
      .cell(static_cast<long long>(bulk.stats.cells_probed))
      .cell(static_cast<long long>(bulk.stats.routes_evaluated))
      .cell(speedup, 2);
  return t;
}

/// SIMD kernels versus the forced-scalar fallback, same bulk engine: flips
/// the global force-scalar switch (support/simd.hpp) around two identical
/// sweeps. The kernels are integer-exact, so everything except the time must
/// match bit for bit — asserted here, head-to-head in one process.
Table run_simd_vs_scalar(const Circuit& circuit) {
  const std::vector<std::pair<Pin, Pin>> pairs = connection_list(circuit);
  CostArray cost = make_landscape(circuit);
  const std::int32_t channels = circuit.channels();
  const ExplorerParams params = ExplorerParams::thorough();
  const auto engine = [&](const Pin& a, const Pin& b) {
    return explore_connection(a, b, channels, cost, params);
  };

  simd::set_force_scalar(false);
  const SweepResult vec = time_sweeps(pairs, engine, 0.4);
  simd::set_force_scalar(true);
  const SweepResult sca = time_sweeps(pairs, engine, 0.4);
  simd::set_force_scalar(false);
  LOCUS_ASSERT_MSG(vec.total_cost == sca.total_cost &&
                       vec.stats.cells_probed == sca.stats.cells_probed &&
                       vec.stats.routes_evaluated == sca.stats.routes_evaluated,
                   "SIMD and scalar kernels diverged");

  benchmain::record("simd_bulk_s", vec.seconds_per_sweep);
  benchmain::record("scalar_bulk_s", sca.seconds_per_sweep);
  benchmain::record("simd_speedup_x",
                    sca.seconds_per_sweep / vec.seconds_per_sweep);

  Table t;
  t.column("kernels", Align::kLeft)
      .column("ms / sweep")
      .column("identical")
      .column("speedup");
  t.row()
      .cell(simd::active_vector() ? simd::active_isa() : "scalar (no vector ISA)")
      .cell(vec.seconds_per_sweep * 1e3, 2)
      .cell("yes")
      .cell(sca.seconds_per_sweep / vec.seconds_per_sweep, 2);
  t.row()
      .cell("scalar (forced)")
      .cell(sca.seconds_per_sweep * 1e3, 2)
      .cell("yes")
      .cell(1.0, 2);
  return t;
}

/// Whole-router comparison: route the full circuit through WireRouter with
/// each engine and assert the committed arrays agree cell for cell.
Table run_full_route(const Circuit& circuit) {
  WireRouter router(circuit.channels(), {});
  constexpr int kReps = 5;  // best-of, like the pricing sweeps

  CostArray bulk_cost(circuit.channels(), circuit.grids());
  RouteWorkStats bulk_stats;
  double bulk_s = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    bulk_cost.fill(0);
    bulk_stats = {};
    Stopwatch sw;
    for (WireId w = 0; w < circuit.num_wires(); ++w) {
      router.route_wire(circuit.wire(w), bulk_cost, bulk_stats);
    }
    bulk_s = std::min(bulk_s, sw.seconds());
  }

  CostArray ref_cost(circuit.channels(), circuit.grids());
  PerCellView per_cell(ref_cost);
  RouteWorkStats ref_stats;
  double ref_s = 1e100;
  for (int rep = 0; rep < kReps; ++rep) {
    ref_cost.fill(0);
    ref_stats = {};
    Stopwatch sw;
    for (WireId w = 0; w < circuit.num_wires(); ++w) {
      router.route_wire(circuit.wire(w), per_cell, ref_stats);
    }
    ref_s = std::min(ref_s, sw.seconds());
  }

  LOCUS_ASSERT_MSG(bulk_cost == ref_cost, "routed arrays diverged");
  LOCUS_ASSERT(bulk_stats.probes == ref_stats.probes);

  benchmain::record("route_percell_s", ref_s);
  benchmain::record("route_bulk_s", bulk_s);
  benchmain::record("route_speedup_x", ref_s / bulk_s);

  Table t;
  t.column("engine", Align::kLeft).column("route ms").column("probes").column("identical");
  t.row()
      .cell("per-cell reference")
      .cell(ref_s * 1e3, 2)
      .cell(static_cast<long long>(ref_stats.probes))
      .cell("yes");
  t.row()
      .cell("prefix-sum bulk")
      .cell(bulk_s * 1e3, 2)
      .cell(static_cast<long long>(bulk_stats.probes))
      .cell("yes");
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  locus::Circuit bnre = locus::make_bnre_like();
  return locus::benchmain::run(
      argc, argv, "micro_explorer: candidate pricing engines (bnrE scale)",
      {{"pricing sweep, default params",
        [&] { return run_pricing(bnre, {}, "default"); }},
       {"pricing sweep, thorough params",
        [&] { return run_pricing(bnre, locus::ExplorerParams::thorough(), "thorough"); }},
       {"simd vs scalar kernels", [&] { return run_simd_vs_scalar(bnre); }},
       {"full circuit route", [&] { return run_full_route(bnre); }}});
}
