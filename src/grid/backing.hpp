// Storage interface behind a cost-array-shaped grid.
//
// The routing core only needs CostView (read/add + bulk spans). The message
// passing runtime needs more: raw cell access for bookkeeping, rectangle
// apply/extract for update packets, and residency accounting for the
// sharded-view memory story. GridBacking is that wider contract, with two
// implementations:
//   * CostArray       — one dense row-major allocation (the paper's array);
//   * TiledCostArray  — lazily allocated power-of-two tiles where an absent
//     tile reads as zero, so a view that only ever touches its own region,
//     its neighbors' regions, and its assigned wires' bounding boxes holds
//     only those tiles yet is *content-identical* to a dense array that
//     started at zero. That equivalence is what keeps sharded runs
//     bit-identical to monolithic ones (DESIGN.md "Sharded cost array").
// Dimensions and index math live here, non-virtually: they are fixed at
// construction and hot paths must not pay dispatch for them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "route/cost_view.hpp"
#include "support/assert.hpp"

namespace locus {

class GridBacking : public CostView {
 public:
  GridBacking(std::int32_t channels, std::int32_t grids)
      : channels_(channels), grids_(grids) {
    LOCUS_ASSERT(channels >= 1 && grids >= 1);
  }

  std::int32_t channels() const { return channels_; }
  std::int32_t grids() const { return grids_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(channels_) * grids_;
  }
  Rect bounds() const { return Rect::of(0, channels_ - 1, 0, grids_ - 1); }

  /// Flat row-major index; this is also the "address" unit used when the
  /// shared memory tracer turns accesses into byte addresses.
  std::int64_t index(GridPoint p) const {
    return static_cast<std::int64_t>(p.channel) * grids_ + p.x;
  }

  /// Raw cell value (may be negative in a drifted message passing view).
  virtual std::int32_t at(GridPoint p) const = 0;
  virtual void set(GridPoint p, std::int32_t value) = 0;

  /// Copies the raw values inside `box` (row-major) into `out`.
  virtual void read_rect(const Rect& box, std::vector<std::int32_t>& out) const = 0;

  /// Overwrites the cells inside `box` with `values` (row-major, size must
  /// equal box.area()). Used to apply absolute (SendLocData) updates.
  virtual void write_rect(const Rect& box, std::span<const std::int32_t> values) = 0;

  /// Adds `values` (row-major) into the cells inside `box`. Used to apply
  /// delta (SendRmtData) updates.
  virtual void add_rect(const Rect& box, std::span<const std::int32_t> values) = 0;

  virtual void fill(std::int32_t value) = 0;

  /// Maximum raw value in one channel row — the track count of that channel.
  virtual std::int32_t max_in_channel(std::int32_t channel) const = 0;

  /// Cells with storage actually allocated (== size() for dense backings).
  virtual std::int64_t resident_cells() const = 0;
  /// Bytes of cell storage actually allocated.
  virtual std::int64_t resident_bytes() const = 0;
  /// True when any cell of `box` has storage allocated (always true for
  /// dense backings). Drives the resident-region summary the dynamic wire
  /// scheduler sends with kMsgWireRequest (DESIGN.md §11).
  virtual bool any_resident_in(const Rect& box) const = 0;

 protected:
  std::int32_t channels_;
  std::int32_t grids_;
};

}  // namespace locus
