// The delta array — changes made to the cost array since the last update.
//
// Paper §4.1/§4.3: each message passing processor keeps, alongside its cost
// array view, a delta array of the same dimensions recording the changes it
// has made but not yet propagated. Update packets carry the bounding box of
// the nonzero deltas inside one owned region.
//
// This class also implements the *cancellation* effect the paper credits for
// much of the traffic gap (§5.2): a rip-up decrement followed by a re-route
// increment of the same cell returns the delta to zero, and fully-cancelled
// regions send no update at all. A per-region nonzero counter detects that
// exactly; the per-region bounding box is conservative between extractions
// and tightened by the scan that builds a packet (paper §4.3.1: "the sending
// processor scans the delta array for changes").
//
// Storage is either one dense grid-sized vector (the default) or a sparse
// TileGrid (sharded runs): the bookkeeping, scan order, and — critically —
// last_scan_cells() are identical in both modes, so the simulated time model
// and every extracted packet stay bit-identical whichever backing holds the
// deltas.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/partition.hpp"
#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "grid/tile_grid.hpp"

namespace locus {

class DeltaArray {
 public:
  /// Dense storage covering the whole grid.
  explicit DeltaArray(const Partition& partition);
  /// Sparse storage: tiles materialize where deltas land and are dropped
  /// whenever a region extraction leaves them fully cancelled.
  DeltaArray(const Partition& partition, TileDims dims);

  /// Records a change of `delta` at cell `p`.
  void add(GridPoint p, std::int32_t delta);

  std::int32_t at(GridPoint p) const;

  /// True if the region owned by `proc` has any un-propagated change.
  bool region_dirty(ProcId region) const;

  /// Conservative bounding box of changes in `region` (empty if clean).
  const Rect& dirty_bbox(ProcId region) const;

  /// Number of currently nonzero cells in `region`.
  std::int64_t nonzero_count(ProcId region) const;

  /// Simulated work performed by the last extract_region() /
  /// extract_region_blocks() scan, in cells visited (drives the
  /// packet-assembly time model).
  std::int64_t last_scan_cells() const { return last_scan_cells_; }

  struct Extract {
    Rect bbox;                         ///< tight bounding box of changes
    std::vector<std::int32_t> values;  ///< row-major deltas within bbox
  };

  /// Scans `region` for changes; if dirty, returns the tight bounding box
  /// and its delta values and *clears* those deltas (they are now considered
  /// propagated). Returns nullopt if the region is clean — the caller then
  /// suppresses the update (paper §4.3.2).
  std::optional<Extract> extract_region(ProcId region);

  /// Like extract_region(), but splits the changes into one tight rectangle
  /// per `dims`-shaped tile (row-major tile order) instead of one bounding
  /// box over them all — the per-destination batched packet format. The scan
  /// visits exactly the cells extract_region() would (same last_scan_cells),
  /// and concatenating the blocks covers exactly the nonzero deltas, so a
  /// receiver applying every block reaches the same state as one applying
  /// the single-bbox extract; only packet byte counts differ.
  std::optional<std::vector<Extract>> extract_region_blocks(ProcId region,
                                                            TileDims dims);

  const Partition& partition() const { return *partition_; }

  /// Cells with delta storage allocated (grid size when dense).
  std::int64_t resident_cells() const;

 private:
  std::size_t cell_index(GridPoint p) const;
  std::int32_t cell_get(GridPoint p) const;
  std::int32_t& cell_ref(GridPoint p);
  void clear_region_bookkeeping(ProcId region);

  const Partition* partition_;
  std::vector<std::int32_t> cells_;          // dense mode (empty when tiled)
  std::optional<TileGrid> tiles_;            // sparse mode
  std::vector<Rect> dirty_bbox_;             // per region, conservative
  std::vector<std::int64_t> nonzero_count_;  // per region, exact
  std::int64_t last_scan_cells_ = 0;
};

}  // namespace locus
