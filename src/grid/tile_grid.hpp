// Sparse, lazily allocated tile storage for grid-shaped int32 state.
//
// The monolithic cost array allocates channels x grids cells up front; at
// 100k-wire scale that is tens of megabytes *per processor view*, and at 256
// virtual processors the views dominate memory while each processor only
// ever touches its own region, its mesh neighbors' regions, and the bounding
// boxes of its assigned wires. TileGrid keeps one power-of-two tile
// (tile_channels x tile_cols cells) per allocation, created on first write;
// an absent tile reads as zero — exactly the initial value of every cell —
// so sparse content is always equal to what the dense array would hold.
//
// Tile dimensions are powers of two so the (channel, x) -> (tile, offset)
// split is two shifts and two masks; rows within a tile are contiguous, so
// bulk row reads run SIMD clamp loops per resident chunk. Edge tiles are
// allocated at full tile size (the slack cells are simply never addressed),
// keeping the index math branch-free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "support/assert.hpp"

namespace locus {

/// Tile shape knobs shared by TiledCostArray and the tiled DeltaArray.
/// Defaults: 4 channels x 512 columns = 8 KiB per tile — a few tiles per
/// paper-scale region, row chunks long enough for the SIMD clamp to win.
struct TileDims {
  std::int32_t channels = 4;
  std::int32_t cols = 512;
};

class TileGrid {
 public:
  TileGrid(std::int32_t channels, std::int32_t grids, TileDims dims);

  std::int32_t channels() const { return channels_; }
  std::int32_t grids() const { return grids_; }
  std::int32_t tile_channels() const { return 1 << ch_shift_; }
  std::int32_t tile_cols() const { return 1 << col_shift_; }
  std::int64_t tile_cells() const {
    return static_cast<std::int64_t>(tile_channels()) * tile_cols();
  }
  std::int64_t tiles_resident() const { return resident_; }
  std::int64_t tiles_total() const {
    return static_cast<std::int64_t>(tiles_y_) * tiles_x_;
  }

  /// Raw value at `p`; 0 when its tile was never written.
  std::int32_t get(GridPoint p) const {
    const std::int32_t* tile = tiles_[tile_index(p)].get();
    return tile == nullptr ? 0 : tile[cell_offset(p)];
  }

  /// Mutable cell reference; allocates (zero-filled) the tile on demand.
  std::int32_t& slot(GridPoint p) {
    std::unique_ptr<std::int32_t[]>& tile = tiles_[tile_index(p)];
    if (tile == nullptr) allocate(tile);
    return tile[cell_offset(p)];
  }

  /// Read-only pointer to the contiguous run starting at (channel, x) inside
  /// one tile row, or nullptr when the tile is absent. `*run` is set either
  /// way: the number of cells from x to the tile (or grid) boundary.
  const std::int32_t* row_chunk(std::int32_t channel, std::int32_t x,
                                std::int32_t* run) const {
    *run = chunk_run(x);
    const std::int32_t* tile = tiles_[tile_index(GridPoint{channel, x})].get();
    return tile == nullptr ? nullptr : tile + cell_offset(GridPoint{channel, x});
  }

  /// Mutable variant; allocates the tile on demand.
  std::int32_t* mutable_row_chunk(std::int32_t channel, std::int32_t x,
                                  std::int32_t* run) {
    *run = chunk_run(x);
    std::unique_ptr<std::int32_t[]>& tile = tiles_[tile_index(GridPoint{channel, x})];
    if (tile == nullptr) allocate(tile);
    return tile.get() + cell_offset(GridPoint{channel, x});
  }

  /// Materializes every tile overlapping `box` (used to pin a node's own
  /// region resident up front, keeping own-region reads dense from wire 0).
  void ensure_rect(const Rect& box);

  /// Drops every tile (all cells read as zero again).
  void clear();

  /// True when any tile overlapping `box` is resident. O(tiles in box).
  bool any_resident_in(const Rect& box) const {
    if (box.is_empty()) return false;
    LOCUS_ASSERT(box.channel_lo >= 0 && box.channel_hi < channels_);
    LOCUS_ASSERT(box.x_lo >= 0 && box.x_hi < grids_);
    const std::int32_t ty_lo = box.channel_lo >> ch_shift_;
    const std::int32_t ty_hi = box.channel_hi >> ch_shift_;
    const std::int32_t tx_lo = box.x_lo >> col_shift_;
    const std::int32_t tx_hi = box.x_hi >> col_shift_;
    for (std::int32_t ty = ty_lo; ty <= ty_hi; ++ty) {
      for (std::int32_t tx = tx_lo; tx <= tx_hi; ++tx) {
        if (tiles_[static_cast<std::size_t>(ty) * tiles_x_ + tx] != nullptr)
          return true;
      }
    }
    return false;
  }

  /// Calls fn(tile_bounds, cells) for every resident tile, row-major tile
  /// order. `tile_bounds` is clipped to the grid; `cells` points at the
  /// tile's storage (full tile_cols stride).
  template <typename Fn>
  void for_each_resident_tile(Fn&& fn) const {
    for (std::int32_t ty = 0; ty < tiles_y_; ++ty) {
      for (std::int32_t tx = 0; tx < tiles_x_; ++tx) {
        const std::int32_t* tile =
            tiles_[static_cast<std::size_t>(ty) * tiles_x_ + tx].get();
        if (tile == nullptr) continue;
        const Rect clipped = Rect::of(
            ty << ch_shift_,
            std::min((ty + 1) << ch_shift_, channels_) - 1, tx << col_shift_,
            std::min((tx + 1) << col_shift_, grids_) - 1);
        fn(clipped, tile);
      }
    }
  }

 private:
  std::size_t tile_index(GridPoint p) const {
    LOCUS_ASSERT(p.channel >= 0 && p.channel < channels_);
    LOCUS_ASSERT(p.x >= 0 && p.x < grids_);
    return static_cast<std::size_t>(p.channel >> ch_shift_) * tiles_x_ +
           static_cast<std::size_t>(p.x >> col_shift_);
  }
  std::size_t cell_offset(GridPoint p) const {
    return (static_cast<std::size_t>(p.channel) & ch_mask_) << col_shift_ |
           (static_cast<std::size_t>(p.x) & col_mask_);
  }
  std::int32_t chunk_run(std::int32_t x) const {
    const std::int32_t to_tile_edge = tile_cols() - (x & static_cast<std::int32_t>(col_mask_));
    return std::min(to_tile_edge, grids_ - x);
  }
  void allocate(std::unique_ptr<std::int32_t[]>& tile);

  std::int32_t channels_;
  std::int32_t grids_;
  std::int32_t ch_shift_;
  std::int32_t col_shift_;
  std::size_t ch_mask_;
  std::size_t col_mask_;
  std::int32_t tiles_y_;
  std::int32_t tiles_x_;
  std::vector<std::unique_ptr<std::int32_t[]>> tiles_;
  std::int64_t resident_ = 0;
};

}  // namespace locus
