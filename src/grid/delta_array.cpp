#include "grid/delta_array.hpp"

#include <map>
#include <utility>

#include "support/assert.hpp"

namespace locus {

DeltaArray::DeltaArray(const Partition& partition)
    : partition_(&partition),
      cells_(static_cast<std::size_t>(partition.channels()) *
                 static_cast<std::size_t>(partition.grids()),
             0),
      dirty_bbox_(static_cast<std::size_t>(partition.num_regions())),
      nonzero_count_(static_cast<std::size_t>(partition.num_regions()), 0) {}

DeltaArray::DeltaArray(const Partition& partition, TileDims dims)
    : partition_(&partition),
      tiles_(std::in_place, partition.channels(), partition.grids(), dims),
      dirty_bbox_(static_cast<std::size_t>(partition.num_regions())),
      nonzero_count_(static_cast<std::size_t>(partition.num_regions()), 0) {}

std::size_t DeltaArray::cell_index(GridPoint p) const {
  LOCUS_ASSERT(p.channel >= 0 && p.channel < partition_->channels());
  LOCUS_ASSERT(p.x >= 0 && p.x < partition_->grids());
  return static_cast<std::size_t>(p.channel) *
             static_cast<std::size_t>(partition_->grids()) +
         static_cast<std::size_t>(p.x);
}

std::int32_t DeltaArray::cell_get(GridPoint p) const {
  return tiles_.has_value() ? tiles_->get(p) : cells_[cell_index(p)];
}

std::int32_t& DeltaArray::cell_ref(GridPoint p) {
  return tiles_.has_value() ? tiles_->slot(p) : cells_[cell_index(p)];
}

void DeltaArray::add(GridPoint p, std::int32_t delta) {
  if (delta == 0) return;
  std::int32_t& cell = cell_ref(p);
  const bool was_zero = (cell == 0);
  cell += delta;
  const ProcId region = partition_->owner(p);
  auto r = static_cast<std::size_t>(region);
  if (was_zero && cell != 0) {
    ++nonzero_count_[r];
    dirty_bbox_[r].expand(p);
  } else if (!was_zero && cell == 0) {
    --nonzero_count_[r];
    if (nonzero_count_[r] == 0) dirty_bbox_[r] = Rect::empty();
    // Bounding box is left conservative when some cells remain nonzero;
    // extract_region() tightens it.
  }
}

std::int32_t DeltaArray::at(GridPoint p) const { return cell_get(p); }

bool DeltaArray::region_dirty(ProcId region) const {
  return nonzero_count_[static_cast<std::size_t>(region)] > 0;
}

const Rect& DeltaArray::dirty_bbox(ProcId region) const {
  return dirty_bbox_[static_cast<std::size_t>(region)];
}

std::int64_t DeltaArray::nonzero_count(ProcId region) const {
  return nonzero_count_[static_cast<std::size_t>(region)];
}

std::int64_t DeltaArray::resident_cells() const {
  if (tiles_.has_value()) return tiles_->tiles_resident() * tiles_->tile_cells();
  return static_cast<std::int64_t>(cells_.size());
}

void DeltaArray::clear_region_bookkeeping(ProcId region) {
  auto r = static_cast<std::size_t>(region);
  nonzero_count_[r] = 0;
  dirty_bbox_[r] = Rect::empty();
}

std::optional<DeltaArray::Extract> DeltaArray::extract_region(ProcId region) {
  auto r = static_cast<std::size_t>(region);
  last_scan_cells_ = 0;
  if (nonzero_count_[r] == 0) return std::nullopt;

  // Scan the conservative box to find the tight bounding box of changes.
  const Rect scan = dirty_bbox_[r];
  Rect tight;
  for (std::int32_t c = scan.channel_lo; c <= scan.channel_hi; ++c) {
    for (std::int32_t x = scan.x_lo; x <= scan.x_hi; ++x) {
      ++last_scan_cells_;
      if (cell_get(GridPoint{c, x}) != 0) {
        tight.expand(GridPoint{c, x});
      }
    }
  }
  LOCUS_ASSERT_MSG(!tight.is_empty(), "nonzero count said dirty but scan found nothing");

  Extract out;
  out.bbox = tight;
  out.values.reserve(static_cast<std::size_t>(tight.area()));
  for (std::int32_t c = tight.channel_lo; c <= tight.channel_hi; ++c) {
    for (std::int32_t x = tight.x_lo; x <= tight.x_hi; ++x) {
      std::int32_t& cell = cell_ref(GridPoint{c, x});
      out.values.push_back(cell);
      cell = 0;
    }
  }
  clear_region_bookkeeping(region);
  return out;
}

std::optional<std::vector<DeltaArray::Extract>> DeltaArray::extract_region_blocks(
    ProcId region, TileDims dims) {
  auto r = static_cast<std::size_t>(region);
  last_scan_cells_ = 0;
  if (nonzero_count_[r] == 0) return std::nullopt;
  LOCUS_ASSERT(dims.channels >= 1 && dims.cols >= 1);

  // One scan of the conservative box (identical cell visits — and therefore
  // identical simulated scan cost — to extract_region), bucketing each
  // nonzero cell's tight rectangle by the tile it falls in. The ordered map
  // key (tile row, tile col) makes block order row-major and deterministic.
  const Rect scan = dirty_bbox_[r];
  std::map<std::pair<std::int32_t, std::int32_t>, Rect> tight_by_tile;
  for (std::int32_t c = scan.channel_lo; c <= scan.channel_hi; ++c) {
    for (std::int32_t x = scan.x_lo; x <= scan.x_hi; ++x) {
      ++last_scan_cells_;
      if (cell_get(GridPoint{c, x}) != 0) {
        tight_by_tile[{c / dims.channels, x / dims.cols}].expand(GridPoint{c, x});
      }
    }
  }
  LOCUS_ASSERT_MSG(!tight_by_tile.empty(),
                   "nonzero count said dirty but scan found nothing");

  std::vector<Extract> blocks;
  blocks.reserve(tight_by_tile.size());
  for (const auto& [tile, tight] : tight_by_tile) {
    Extract out;
    out.bbox = tight;
    out.values.reserve(static_cast<std::size_t>(tight.area()));
    for (std::int32_t c = tight.channel_lo; c <= tight.channel_hi; ++c) {
      for (std::int32_t x = tight.x_lo; x <= tight.x_hi; ++x) {
        std::int32_t& cell = cell_ref(GridPoint{c, x});
        out.values.push_back(cell);
        cell = 0;
      }
    }
    blocks.push_back(std::move(out));
  }
  clear_region_bookkeeping(region);
  return blocks;
}

}  // namespace locus
