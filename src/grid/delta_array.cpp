#include "grid/delta_array.hpp"

#include "support/assert.hpp"

namespace locus {

DeltaArray::DeltaArray(const Partition& partition)
    : partition_(&partition),
      cells_(static_cast<std::size_t>(partition.channels()) *
                 static_cast<std::size_t>(partition.grids()),
             0),
      dirty_bbox_(static_cast<std::size_t>(partition.num_regions())),
      nonzero_count_(static_cast<std::size_t>(partition.num_regions()), 0) {}

std::size_t DeltaArray::cell_index(GridPoint p) const {
  LOCUS_ASSERT(p.channel >= 0 && p.channel < partition_->channels());
  LOCUS_ASSERT(p.x >= 0 && p.x < partition_->grids());
  return static_cast<std::size_t>(p.channel) *
             static_cast<std::size_t>(partition_->grids()) +
         static_cast<std::size_t>(p.x);
}

void DeltaArray::add(GridPoint p, std::int32_t delta) {
  if (delta == 0) return;
  std::int32_t& cell = cells_[cell_index(p)];
  const bool was_zero = (cell == 0);
  cell += delta;
  const ProcId region = partition_->owner(p);
  auto r = static_cast<std::size_t>(region);
  if (was_zero && cell != 0) {
    ++nonzero_count_[r];
    dirty_bbox_[r].expand(p);
  } else if (!was_zero && cell == 0) {
    --nonzero_count_[r];
    if (nonzero_count_[r] == 0) dirty_bbox_[r] = Rect::empty();
    // Bounding box is left conservative when some cells remain nonzero;
    // extract_region() tightens it.
  }
}

std::int32_t DeltaArray::at(GridPoint p) const { return cells_[cell_index(p)]; }

bool DeltaArray::region_dirty(ProcId region) const {
  return nonzero_count_[static_cast<std::size_t>(region)] > 0;
}

const Rect& DeltaArray::dirty_bbox(ProcId region) const {
  return dirty_bbox_[static_cast<std::size_t>(region)];
}

std::int64_t DeltaArray::nonzero_count(ProcId region) const {
  return nonzero_count_[static_cast<std::size_t>(region)];
}

std::optional<DeltaArray::Extract> DeltaArray::extract_region(ProcId region) {
  auto r = static_cast<std::size_t>(region);
  last_scan_cells_ = 0;
  if (nonzero_count_[r] == 0) return std::nullopt;

  // Scan the conservative box to find the tight bounding box of changes.
  const Rect scan = dirty_bbox_[r];
  Rect tight;
  for (std::int32_t c = scan.channel_lo; c <= scan.channel_hi; ++c) {
    for (std::int32_t x = scan.x_lo; x <= scan.x_hi; ++x) {
      ++last_scan_cells_;
      if (cells_[cell_index(GridPoint{c, x})] != 0) {
        tight.expand(GridPoint{c, x});
      }
    }
  }
  LOCUS_ASSERT_MSG(!tight.is_empty(), "nonzero count said dirty but scan found nothing");

  Extract out;
  out.bbox = tight;
  out.values.reserve(static_cast<std::size_t>(tight.area()));
  for (std::int32_t c = tight.channel_lo; c <= tight.channel_hi; ++c) {
    for (std::int32_t x = tight.x_lo; x <= tight.x_hi; ++x) {
      std::int32_t& cell = cells_[cell_index(GridPoint{c, x})];
      out.values.push_back(cell);
      cell = 0;
    }
  }
  nonzero_count_[r] = 0;
  dirty_bbox_[r] = Rect::empty();
  return out;
}

}  // namespace locus
