// The cost array — LocusRoute's central data structure.
//
// One int32 cell per (channel, routing grid) position counting the wires
// currently routed through that cell (paper §3, Figure 1). Routing reads it
// to price candidate paths; committing a route increments the path's cells;
// ripping up decrements them.
//
// In the message passing implementation each processor holds a *view* of the
// whole array that may drift from the truth; drifted views can transiently
// hold negative values (an absolute region update can land after a local
// rip-up). `read()` therefore clamps at zero for routing decisions while
// `at()` exposes raw storage for bookkeeping and tests.
//
// This is the dense GridBacking: one row-major allocation covering the whole
// grid. grid/tiled_cost_array.hpp provides the sparse alternative behind the
// same interface.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "grid/backing.hpp"

namespace locus {

class CostArray final : public GridBacking {
 public:
  CostArray(std::int32_t channels, std::int32_t grids, std::int32_t initial = 0);

  std::int32_t at(GridPoint p) const override { return cells_[checked_index(p)]; }
  void set(GridPoint p, std::int32_t value) override {
    cells_[checked_index(p)] = value;
  }

  // CostView: routing-decision read (clamped at zero) and read-modify-write.
  std::int32_t read(GridPoint p) override {
    std::int32_t v = cells_[checked_index(p)];
    return v < 0 ? 0 : v;
  }
  void add(GridPoint p, std::int32_t delta) override {
    cells_[checked_index(p)] += delta;
  }

  /// Devirtualized span read: one bounds check and a SIMD clamp loop over
  /// contiguous storage (the row-major layout makes a row a single slice).
  void read_row(std::int32_t channel, std::int32_t x_lo, std::int32_t x_hi,
                std::span<std::int32_t> span_out) override;
  /// Whole-window read: one bounds check, then the SIMD clamp row by row.
  void read_rows(std::int32_t c_lo, std::int32_t c_hi, std::int32_t x_lo,
                 std::int32_t x_hi, std::span<std::int32_t> span_out) override;
  bool supports_bulk_read() const override { return true; }

  void read_rect(const Rect& box, std::vector<std::int32_t>& out) const override;
  void write_rect(const Rect& box, std::span<const std::int32_t> values) override;
  void add_rect(const Rect& box, std::span<const std::int32_t> values) override;

  void fill(std::int32_t value) override;

  std::int32_t max_in_channel(std::int32_t channel) const override;

  /// Dense storage: every cell is resident.
  std::int64_t resident_cells() const override { return size(); }
  std::int64_t resident_bytes() const override {
    return size() * static_cast<std::int64_t>(sizeof(std::int32_t));
  }
  bool any_resident_in(const Rect& box) const override { return !box.is_empty(); }

  std::span<const std::int32_t> cells() const { return cells_; }

  friend bool operator==(const CostArray& a, const CostArray& b) {
    return a.channels_ == b.channels_ && a.grids_ == b.grids_ && a.cells_ == b.cells_;
  }

 private:
  std::size_t checked_index(GridPoint p) const;

  std::vector<std::int32_t> cells_;
};

}  // namespace locus
