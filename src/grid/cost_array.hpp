// The cost array — LocusRoute's central data structure.
//
// One int32 cell per (channel, routing grid) position counting the wires
// currently routed through that cell (paper §3, Figure 1). Routing reads it
// to price candidate paths; committing a route increments the path's cells;
// ripping up decrements them.
//
// In the message passing implementation each processor holds a *view* of the
// whole array that may drift from the truth; drifted views can transiently
// hold negative values (an absolute region update can land after a local
// rip-up). `read()` therefore clamps at zero for routing decisions while
// `at()` exposes raw storage for bookkeeping and tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "route/cost_view.hpp"

namespace locus {

class CostArray final : public CostView {
 public:
  CostArray(std::int32_t channels, std::int32_t grids, std::int32_t initial = 0);

  std::int32_t channels() const { return channels_; }
  std::int32_t grids() const { return grids_; }
  std::int64_t size() const { return static_cast<std::int64_t>(cells_.size()); }
  Rect bounds() const { return Rect::of(0, channels_ - 1, 0, grids_ - 1); }

  /// Flat row-major index; this is also the "address" unit used when the
  /// shared memory tracer turns accesses into byte addresses.
  std::int64_t index(GridPoint p) const {
    return static_cast<std::int64_t>(p.channel) * grids_ + p.x;
  }

  /// Raw cell value (may be negative in a drifted message passing view).
  std::int32_t at(GridPoint p) const { return cells_[checked_index(p)]; }
  void set(GridPoint p, std::int32_t value) { cells_[checked_index(p)] = value; }

  // CostView: routing-decision read (clamped at zero) and read-modify-write.
  std::int32_t read(GridPoint p) override {
    std::int32_t v = cells_[checked_index(p)];
    return v < 0 ? 0 : v;
  }
  void add(GridPoint p, std::int32_t delta) override {
    cells_[checked_index(p)] += delta;
  }

  /// Devirtualized span read: one bounds check and a SIMD clamp loop over
  /// contiguous storage (the row-major layout makes a row a single slice).
  void read_row(std::int32_t channel, std::int32_t x_lo, std::int32_t x_hi,
                std::span<std::int32_t> span_out) override;
  /// Whole-window read: one bounds check, then the SIMD clamp row by row.
  void read_rows(std::int32_t c_lo, std::int32_t c_hi, std::int32_t x_lo,
                 std::int32_t x_hi, std::span<std::int32_t> span_out) override;
  bool supports_bulk_read() const override { return true; }

  /// Copies the raw values inside `box` (row-major) into `out`.
  void read_rect(const Rect& box, std::vector<std::int32_t>& out) const;

  /// Overwrites the cells inside `box` with `values` (row-major, size must
  /// equal box.area()). Used to apply absolute (SendLocData) updates.
  void write_rect(const Rect& box, std::span<const std::int32_t> values);

  /// Adds `values` (row-major) into the cells inside `box`. Used to apply
  /// delta (SendRmtData) updates.
  void add_rect(const Rect& box, std::span<const std::int32_t> values);

  void fill(std::int32_t value);

  /// Maximum raw value in one channel row — the track count of that channel.
  std::int32_t max_in_channel(std::int32_t channel) const;

  std::span<const std::int32_t> cells() const { return cells_; }

  friend bool operator==(const CostArray& a, const CostArray& b) {
    return a.channels_ == b.channels_ && a.grids_ == b.grids_ && a.cells_ == b.cells_;
  }

 private:
  std::size_t checked_index(GridPoint p) const;

  std::int32_t channels_;
  std::int32_t grids_;
  std::vector<std::int32_t> cells_;
};

}  // namespace locus
