// Sparse cost array: the tiled GridBacking behind sharded MP views.
//
// Semantically identical to a CostArray constructed with initial == 0 —
// absent tiles read as zero, writes materialize their tiles — but only the
// tiles a processor actually touches are allocated, so per-view memory is
// bounded by the touched working set (own region + neighbor regions +
// assigned-wire bounding boxes) instead of the whole grid. The SIMD bulk
// read paths work per resident row chunk and zero-fill across absent tiles,
// keeping bulk reads observationally equivalent to per-cell probing (the
// contract supports_bulk_read() promises, and the bulk-vs-reference test
// matrix enforces).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"
#include "grid/backing.hpp"
#include "grid/tile_grid.hpp"

namespace locus {

class TiledCostArray final : public GridBacking {
 public:
  /// All cells start at zero (the sparse representation *is* the initial
  /// value); a nonzero-initial sparse array would have to materialize
  /// everything, defeating the point.
  TiledCostArray(std::int32_t channels, std::int32_t grids, TileDims dims = {});

  std::int32_t at(GridPoint p) const override { return tiles_.get(p); }
  void set(GridPoint p, std::int32_t value) override { tiles_.slot(p) = value; }

  std::int32_t read(GridPoint p) override {
    const std::int32_t v = tiles_.get(p);
    return v < 0 ? 0 : v;
  }
  void add(GridPoint p, std::int32_t delta) override { tiles_.slot(p) += delta; }

  void read_row(std::int32_t channel, std::int32_t x_lo, std::int32_t x_hi,
                std::span<std::int32_t> span_out) override;
  void read_rows(std::int32_t c_lo, std::int32_t c_hi, std::int32_t x_lo,
                 std::int32_t x_hi, std::span<std::int32_t> span_out) override;
  bool supports_bulk_read() const override { return true; }

  void read_rect(const Rect& box, std::vector<std::int32_t>& out) const override;
  void write_rect(const Rect& box, std::span<const std::int32_t> values) override;
  void add_rect(const Rect& box, std::span<const std::int32_t> values) override;

  /// Only fill(0) is meaningful for a sparse array: it drops every tile.
  void fill(std::int32_t value) override;

  std::int32_t max_in_channel(std::int32_t channel) const override;

  std::int64_t resident_cells() const override {
    return tiles_.tiles_resident() * tiles_.tile_cells();
  }
  std::int64_t resident_bytes() const override {
    return resident_cells() * static_cast<std::int64_t>(sizeof(std::int32_t));
  }

  bool any_resident_in(const Rect& box) const override {
    return tiles_.any_resident_in(box);
  }

  /// Pins the tiles under `box` resident (a node's own region at startup).
  void ensure_rect(const Rect& box) { tiles_.ensure_rect(box); }

  const TileGrid& tiles() const { return tiles_; }

 private:
  TileGrid tiles_;
};

}  // namespace locus
