#include "grid/tile_grid.hpp"

#include <bit>

namespace locus {

namespace {

std::int32_t shift_for(std::int32_t v) {
  LOCUS_ASSERT_MSG(v >= 1 && (v & (v - 1)) == 0, "tile dims must be powers of two");
  return std::countr_zero(static_cast<std::uint32_t>(v));
}

}  // namespace

TileGrid::TileGrid(std::int32_t channels, std::int32_t grids, TileDims dims)
    : channels_(channels), grids_(grids),
      ch_shift_(shift_for(dims.channels)), col_shift_(shift_for(dims.cols)),
      ch_mask_(static_cast<std::size_t>(dims.channels) - 1),
      col_mask_(static_cast<std::size_t>(dims.cols) - 1),
      tiles_y_((channels + dims.channels - 1) / dims.channels),
      tiles_x_((grids + dims.cols - 1) / dims.cols),
      tiles_(static_cast<std::size_t>(tiles_y_) * static_cast<std::size_t>(tiles_x_)) {
  LOCUS_ASSERT(channels >= 1 && grids >= 1);
}

void TileGrid::allocate(std::unique_ptr<std::int32_t[]>& tile) {
  tile = std::make_unique<std::int32_t[]>(static_cast<std::size_t>(tile_cells()));
  ++resident_;
}

void TileGrid::ensure_rect(const Rect& box) {
  if (box.is_empty()) return;
  LOCUS_ASSERT(Rect::of(0, channels_ - 1, 0, grids_ - 1).contains(box));
  for (std::int32_t ty = box.channel_lo >> ch_shift_;
       ty <= box.channel_hi >> ch_shift_; ++ty) {
    for (std::int32_t tx = box.x_lo >> col_shift_; tx <= box.x_hi >> col_shift_;
         ++tx) {
      std::unique_ptr<std::int32_t[]>& tile =
          tiles_[static_cast<std::size_t>(ty) * tiles_x_ + tx];
      if (tile == nullptr) allocate(tile);
    }
  }
}

void TileGrid::clear() {
  for (std::unique_ptr<std::int32_t[]>& tile : tiles_) tile.reset();
  resident_ = 0;
}

}  // namespace locus
