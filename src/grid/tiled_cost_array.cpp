#include "grid/tiled_cost_array.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"
#include "support/simd.hpp"

namespace locus {

TiledCostArray::TiledCostArray(std::int32_t channels, std::int32_t grids,
                               TileDims dims)
    : GridBacking(channels, grids), tiles_(channels, grids, dims) {}

void TiledCostArray::read_row(std::int32_t channel, std::int32_t x_lo,
                              std::int32_t x_hi, std::span<std::int32_t> span_out) {
  LOCUS_ASSERT_MSG(channel >= 0 && channel < channels_, "channel out of range");
  LOCUS_ASSERT_MSG(x_lo >= 0 && x_lo <= x_hi && x_hi < grids_, "span out of range");
  const auto count = static_cast<std::size_t>(x_hi - x_lo + 1);
  LOCUS_ASSERT(span_out.size() >= count);
  std::int32_t* out = span_out.data();
  for (std::int32_t x = x_lo; x <= x_hi;) {
    std::int32_t run = 0;
    const std::int32_t* chunk = tiles_.row_chunk(channel, x, &run);
    run = std::min(run, x_hi - x + 1);
    if (chunk != nullptr) {
      simd::clamp_nonneg(chunk, out, static_cast<std::size_t>(run));
    } else {
      std::fill(out, out + run, 0);  // absent tile: all zeros, clamp is identity
    }
    out += run;
    x += run;
  }
}

void TiledCostArray::read_rows(std::int32_t c_lo, std::int32_t c_hi,
                               std::int32_t x_lo, std::int32_t x_hi,
                               std::span<std::int32_t> span_out) {
  LOCUS_ASSERT_MSG(c_lo >= 0 && c_lo <= c_hi && c_hi < channels_,
                   "channel range out of range");
  LOCUS_ASSERT_MSG(x_lo >= 0 && x_lo <= x_hi && x_hi < grids_, "span out of range");
  const auto width = static_cast<std::size_t>(x_hi - x_lo + 1);
  LOCUS_ASSERT(span_out.size() >= width * static_cast<std::size_t>(c_hi - c_lo + 1));
  for (std::int32_t c = c_lo; c <= c_hi; ++c) {
    read_row(c, x_lo, x_hi,
             span_out.subspan(static_cast<std::size_t>(c - c_lo) * width, width));
  }
}

void TiledCostArray::read_rect(const Rect& box,
                               std::vector<std::int32_t>& out) const {
  LOCUS_ASSERT(bounds().contains(box));
  out.clear();
  out.reserve(static_cast<std::size_t>(box.area()));
  for (std::int32_t c = box.channel_lo; c <= box.channel_hi; ++c) {
    for (std::int32_t x = box.x_lo; x <= box.x_hi;) {
      std::int32_t run = 0;
      const std::int32_t* chunk = tiles_.row_chunk(c, x, &run);
      run = std::min(run, box.x_hi - x + 1);
      if (chunk != nullptr) {
        out.insert(out.end(), chunk, chunk + run);
      } else {
        out.insert(out.end(), static_cast<std::size_t>(run), 0);
      }
      x += run;
    }
  }
}

void TiledCostArray::write_rect(const Rect& box,
                                std::span<const std::int32_t> values) {
  LOCUS_ASSERT(bounds().contains(box));
  LOCUS_ASSERT(static_cast<std::int64_t>(values.size()) == box.area());
  const std::int32_t* src = values.data();
  for (std::int32_t c = box.channel_lo; c <= box.channel_hi; ++c) {
    for (std::int32_t x = box.x_lo; x <= box.x_hi;) {
      std::int32_t run = 0;
      std::int32_t* chunk = tiles_.mutable_row_chunk(c, x, &run);
      run = std::min(run, box.x_hi - x + 1);
      std::copy(src, src + run, chunk);
      src += run;
      x += run;
    }
  }
}

void TiledCostArray::add_rect(const Rect& box,
                              std::span<const std::int32_t> values) {
  LOCUS_ASSERT(bounds().contains(box));
  LOCUS_ASSERT(static_cast<std::int64_t>(values.size()) == box.area());
  const std::int32_t* src = values.data();
  for (std::int32_t c = box.channel_lo; c <= box.channel_hi; ++c) {
    for (std::int32_t x = box.x_lo; x <= box.x_hi;) {
      std::int32_t run = 0;
      std::int32_t* chunk = tiles_.mutable_row_chunk(c, x, &run);
      run = std::min(run, box.x_hi - x + 1);
      for (std::int32_t i = 0; i < run; ++i) chunk[i] += src[i];
      src += run;
      x += run;
    }
  }
}

void TiledCostArray::fill(std::int32_t value) {
  LOCUS_ASSERT_MSG(value == 0, "a sparse array can only be filled with zero");
  tiles_.clear();
}

std::int32_t TiledCostArray::max_in_channel(std::int32_t channel) const {
  LOCUS_ASSERT(channel >= 0 && channel < channels_);
  std::int32_t best = std::numeric_limits<std::int32_t>::min();
  bool any_absent = false;
  for (std::int32_t x = 0; x < grids_;) {
    std::int32_t run = 0;
    const std::int32_t* chunk = tiles_.row_chunk(channel, x, &run);
    if (chunk != nullptr) {
      best = std::max(best, *std::max_element(chunk, chunk + run));
    } else {
      any_absent = true;  // absent cells hold zero
    }
    x += run;
  }
  return any_absent ? std::max(best, 0) : best;
}

}  // namespace locus
