#include "grid/cost_array.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/simd.hpp"

namespace locus {

CostArray::CostArray(std::int32_t channels, std::int32_t grids, std::int32_t initial)
    : GridBacking(channels, grids),
      cells_(static_cast<std::size_t>(channels) * static_cast<std::size_t>(grids),
             initial) {}

std::size_t CostArray::checked_index(GridPoint p) const {
  LOCUS_ASSERT_MSG(p.channel >= 0 && p.channel < channels_, "channel out of range");
  LOCUS_ASSERT_MSG(p.x >= 0 && p.x < grids_, "grid out of range");
  return static_cast<std::size_t>(index(p));
}

void CostArray::read_row(std::int32_t channel, std::int32_t x_lo, std::int32_t x_hi,
                         std::span<std::int32_t> span_out) {
  LOCUS_ASSERT_MSG(channel >= 0 && channel < channels_, "channel out of range");
  LOCUS_ASSERT_MSG(x_lo >= 0 && x_lo <= x_hi && x_hi < grids_, "span out of range");
  const auto count = static_cast<std::size_t>(x_hi - x_lo + 1);
  LOCUS_ASSERT(span_out.size() >= count);
  const std::int32_t* row = cells_.data() +
                            static_cast<std::size_t>(channel) * grids_ + x_lo;
  simd::clamp_nonneg(row, span_out.data(), count);
}

void CostArray::read_rows(std::int32_t c_lo, std::int32_t c_hi, std::int32_t x_lo,
                          std::int32_t x_hi, std::span<std::int32_t> span_out) {
  LOCUS_ASSERT_MSG(c_lo >= 0 && c_lo <= c_hi && c_hi < channels_,
                   "channel range out of range");
  LOCUS_ASSERT_MSG(x_lo >= 0 && x_lo <= x_hi && x_hi < grids_, "span out of range");
  const auto width = static_cast<std::size_t>(x_hi - x_lo + 1);
  LOCUS_ASSERT(span_out.size() >= width * static_cast<std::size_t>(c_hi - c_lo + 1));
  std::int32_t* out = span_out.data();
  for (std::int32_t c = c_lo; c <= c_hi; ++c, out += width) {
    simd::clamp_nonneg(cells_.data() + static_cast<std::size_t>(c) * grids_ + x_lo,
                       out, width);
  }
}

void CostArray::read_rect(const Rect& box, std::vector<std::int32_t>& out) const {
  LOCUS_ASSERT(bounds().contains(box));
  out.clear();
  out.reserve(static_cast<std::size_t>(box.area()));
  for (std::int32_t c = box.channel_lo; c <= box.channel_hi; ++c) {
    const std::int32_t* row = cells_.data() + static_cast<std::size_t>(c) * grids_;
    out.insert(out.end(), row + box.x_lo, row + box.x_hi + 1);
  }
}

void CostArray::write_rect(const Rect& box, std::span<const std::int32_t> values) {
  LOCUS_ASSERT(bounds().contains(box));
  LOCUS_ASSERT(static_cast<std::int64_t>(values.size()) == box.area());
  const std::int32_t* src = values.data();
  for (std::int32_t c = box.channel_lo; c <= box.channel_hi; ++c) {
    std::int32_t* row = cells_.data() + static_cast<std::size_t>(c) * grids_;
    std::copy(src, src + box.width(), row + box.x_lo);
    src += box.width();
  }
}

void CostArray::add_rect(const Rect& box, std::span<const std::int32_t> values) {
  LOCUS_ASSERT(bounds().contains(box));
  LOCUS_ASSERT(static_cast<std::int64_t>(values.size()) == box.area());
  const std::int32_t* src = values.data();
  for (std::int32_t c = box.channel_lo; c <= box.channel_hi; ++c) {
    std::int32_t* row = cells_.data() + static_cast<std::size_t>(c) * grids_;
    for (std::int32_t x = box.x_lo; x <= box.x_hi; ++x) {
      row[x] += *src++;
    }
  }
}

void CostArray::fill(std::int32_t value) {
  std::fill(cells_.begin(), cells_.end(), value);
}

std::int32_t CostArray::max_in_channel(std::int32_t channel) const {
  LOCUS_ASSERT(channel >= 0 && channel < channels_);
  const std::int32_t* row = cells_.data() + static_cast<std::size_t>(channel) * grids_;
  return *std::max_element(row, row + grids_);
}

}  // namespace locus
