// Cache coherence protocol abstraction.
//
// The paper measures shared memory traffic under a Write Back with
// Invalidate protocol (Archibald & Baer's simulation study) with infinite
// caches: traffic = cold miss fetches + word writes announcing the first
// write to a clean line + dirty-line flushes + refetches after
// invalidation (paper §5.2). We implement that protocol plus two baselines
// for ablation: write-through-with-invalidate and Illinois MESI.
#pragma once

#include <cstdint>

#include "shm/trace.hpp"

namespace locus {

enum class ProtocolKind : std::int8_t {
  kWriteBackInvalidate,  ///< the paper's protocol
  kWriteThrough,         ///< every write goes to the bus
  kMesi,                 ///< Illinois: exclusive-clean state elides the word write
  kDragon,               ///< write-update: sharers receive word updates, no
                         ///< invalidations (and therefore no refetches)
};

/// Bus traffic accounting, broken down by cause. The paper's headline
/// split — "over 80% of the bytes transferred are caused by writes" —
/// attributes to writes every transfer that exists *because somebody
/// wrote*: the bus word announcing the first write to a clean line, dirty
/// flushes (whoever forces them), write-miss fills, and refetches of lines
/// a processor lost to an invalidation. Only cold (first-touch) read fills
/// count as read-caused; they are the traffic a read-only program would
/// also pay.
struct CoherenceTraffic {
  std::uint64_t cold_fetch_bytes = 0;   ///< first-touch read-miss fills
  std::uint64_t refetch_bytes = 0;      ///< read fills after an invalidation
  std::uint64_t write_fetch_bytes = 0;  ///< line fills for write misses
  std::uint64_t word_write_bytes = 0;   ///< first-write-to-clean bus words
  std::uint64_t read_flush_bytes = 0;   ///< dirty flushes forced by reads
  std::uint64_t write_flush_bytes = 0;  ///< dirty flushes forced by writes
  std::uint64_t invalidation_msgs = 0;  ///< address-only invalidate events

  std::uint64_t eviction_writeback_bytes = 0;  ///< dirty LRU victims flushed

  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t capacity_evictions = 0;
  std::uint64_t accesses = 0;

  std::uint64_t read_bytes() const { return cold_fetch_bytes; }
  std::uint64_t write_bytes() const {
    return refetch_bytes + write_fetch_bytes + word_write_bytes +
           read_flush_bytes + write_flush_bytes + eviction_writeback_bytes;
  }
  std::uint64_t total_bytes() const { return read_bytes() + write_bytes(); }
  double write_fraction() const {
    std::uint64_t total = total_bytes();
    return total == 0 ? 0.0
                      : static_cast<double>(write_bytes()) / static_cast<double>(total);
  }
};

struct CoherenceParams {
  std::int32_t line_size = 8;  ///< bytes; paper sweeps 4/8/16/32
  std::int32_t word_size = 4;  ///< bus word for first-write announcements
  ProtocolKind protocol = ProtocolKind::kWriteBackInvalidate;
  /// Per-processor cache capacity in lines; 0 = infinite (the paper's
  /// assumption, footnote 3). Finite caches add capacity misses and
  /// dirty-eviction write-backs on an LRU policy.
  std::int32_t capacity_lines = 0;
};

}  // namespace locus
