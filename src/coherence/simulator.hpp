// Trace-driven coherence simulation with infinite caches.
//
// Per cache line we track which processors hold a clean copy (a bitmask)
// and which single processor, if any, holds it dirty. Caches are infinite
// (paper footnote 3: no capacity misses), so state only changes through
// the protocol events themselves.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "coherence/protocol.hpp"
#include "obs/obs.hpp"
#include "shm/trace.hpp"

namespace locus {

class CoherenceSim {
 public:
  CoherenceSim(std::int32_t procs, CoherenceParams params);

  /// Applies one shared reference.
  void access(std::int32_t proc, std::uint32_t addr, MemOp op);

  /// Replays a whole trace (must be time-ordered for meaningful results).
  void replay(const RefTrace& trace);

  const CoherenceTraffic& traffic() const { return traffic_; }
  const CoherenceParams& params() const { return params_; }

  /// Number of distinct lines ever touched (cold footprint).
  std::size_t lines_touched() const { return lines_.size(); }

  /// Mirrors the accumulated traffic breakdown into `o`'s registry under
  /// the coh.* names (obs::CoherenceObsNames), once, on `shard`. The replay
  /// loop itself carries no hooks — counters are published from the exact
  /// CoherenceTraffic totals after the fact, so replay cost is unchanged.
  void publish_obs(obs::Obs& o, std::size_t shard = 0) const;

 private:
  struct LineState {
    std::uint32_t present = 0;     ///< bitmask of procs with a valid copy
    std::uint32_t ever_held = 0;   ///< procs that held the line at some point
    std::int32_t dirty_owner = -1; ///< proc holding it dirty, or -1
    bool exclusive_clean = false;  ///< MESI E state (single clean holder)
  };

  void access_wbi(LineState& line, std::uint32_t bit, std::int32_t proc, MemOp op);
  void access_write_through(LineState& line, std::uint32_t bit, std::int32_t proc,
                            MemOp op);
  void access_mesi(LineState& line, std::uint32_t bit, std::int32_t proc, MemOp op);
  void access_dragon(LineState& line, std::uint32_t bit, std::int32_t proc, MemOp op);

  /// LRU bookkeeping for finite caches (capacity_lines > 0).
  void lru_touch(std::int32_t proc, std::uint32_t line_addr);

  std::int32_t procs_;
  CoherenceParams params_;
  CoherenceTraffic traffic_;
  std::unordered_map<std::uint32_t, LineState> lines_;
  std::vector<std::list<std::uint32_t>> lru_order_;  ///< per proc, front = MRU
  std::vector<std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator>>
      lru_map_;
};

/// Convenience: replay `trace` for each line size and return the traffic
/// totals in order (the Table 3 sweep).
std::vector<CoherenceTraffic> sweep_line_sizes(const RefTrace& trace,
                                               std::int32_t procs,
                                               const std::vector<std::int32_t>& sizes,
                                               ProtocolKind protocol =
                                                   ProtocolKind::kWriteBackInvalidate);

}  // namespace locus
