#include "coherence/bus.hpp"

namespace locus {

BusEstimate estimate_bus(const CoherenceTraffic& traffic, const BusParams& params) {
  BusEstimate out;
  const double ns_per_byte = 1000.0 / params.bytes_per_us;
  out.data_ns = static_cast<SimTime>(
      static_cast<double>(traffic.total_bytes()) * ns_per_byte);
  out.transactions = traffic.read_misses + traffic.write_misses +
                     traffic.word_write_bytes / 4 + traffic.invalidation_msgs;
  out.transaction_ns =
      static_cast<SimTime>(out.transactions) * params.transaction_ns;
  return out;
}

}  // namespace locus
