// Shared bus occupancy model.
//
// The paper compares traffic volumes, footnoting that if the shared memory
// machine's processors were faster "there would be more contention on the
// bus, and the overall performance would not improve by a factor of five"
// (§5.1.1 footnote 2). This model quantifies that: given the coherence
// traffic of a run, it computes how long the snooping bus is busy and how
// close the run is to saturating it. Default parameters approximate a
// mid-1980s multiprocessor bus (Encore Multimax Nanobus class): 40 MB/s of
// data bandwidth and 500 ns of arbitration + address per transaction.
#pragma once

#include <cstdint>

#include "coherence/protocol.hpp"
#include "sim/event_queue.hpp"

namespace locus {

struct BusParams {
  double bytes_per_us = 40.0;          ///< data bandwidth (40 MB/s)
  std::int64_t transaction_ns = 500;   ///< arbitration + address phase
};

struct BusEstimate {
  SimTime data_ns = 0;         ///< time moving data bytes
  SimTime transaction_ns = 0;  ///< time in arbitration/address phases
  std::uint64_t transactions = 0;

  SimTime busy_ns() const { return data_ns + transaction_ns; }

  /// Fraction of `span_ns` (e.g. the run's execution time) the bus is busy;
  /// > 1.0 means the traffic cannot fit and the run would be bus-bound.
  double utilization(SimTime span_ns) const {
    return span_ns <= 0 ? 0.0
                        : static_cast<double>(busy_ns()) /
                              static_cast<double>(span_ns);
  }
};

/// Estimates bus occupancy for a replayed run's traffic. Transactions are
/// counted as: one per miss (fetch/flush pairs share a transaction), one
/// per bus word write, one per address-only invalidation.
BusEstimate estimate_bus(const CoherenceTraffic& traffic,
                         const BusParams& params = {});

}  // namespace locus
