#include "coherence/simulator.hpp"

#include "support/assert.hpp"

namespace locus {

CoherenceSim::CoherenceSim(std::int32_t procs, CoherenceParams params)
    : procs_(procs), params_(params) {
  LOCUS_ASSERT(procs >= 1 && procs <= 32);
  LOCUS_ASSERT(params.line_size >= params.word_size);
  LOCUS_ASSERT((params.line_size & (params.line_size - 1)) == 0);
  LOCUS_ASSERT(params.capacity_lines >= 0);
  if (params.capacity_lines > 0) {
    lru_order_.resize(static_cast<std::size_t>(procs));
    lru_map_.resize(static_cast<std::size_t>(procs));
  }
}

void CoherenceSim::lru_touch(std::int32_t proc, std::uint32_t line_addr) {
  auto p = static_cast<std::size_t>(proc);
  auto& order = lru_order_[p];
  auto& map = lru_map_[p];
  if (auto it = map.find(line_addr); it != map.end()) {
    order.erase(it->second);
  }
  order.push_front(line_addr);
  map[line_addr] = order.begin();
  if (static_cast<std::int32_t>(order.size()) <= params_.capacity_lines) return;

  // Evict the least recently used line; a dirty victim is written back.
  const std::uint32_t victim = order.back();
  order.pop_back();
  map.erase(victim);
  ++traffic_.capacity_evictions;
  LineState& line = lines_[victim];
  line.present &= ~(1u << proc);
  if (line.dirty_owner == proc) {
    line.dirty_owner = -1;
    traffic_.eviction_writeback_bytes +=
        static_cast<std::uint64_t>(params_.line_size);
  }
}

void CoherenceSim::access(std::int32_t proc, std::uint32_t addr, MemOp op) {
  LOCUS_ASSERT(proc >= 0 && proc < procs_);
  ++traffic_.accesses;
  const std::uint32_t line_addr = addr / static_cast<std::uint32_t>(params_.line_size);
  LineState& line = lines_[line_addr];
  const std::uint32_t bit = 1u << proc;
  // Finite caches: the accessed line becomes MRU; an overflowing victim is
  // evicted before the protocol handler can be confused by it. (Note the
  // handler below may invalidate other procs' copies; stale LRU entries of
  // invalidated lines are harmless — re-access refreshes them.)
  if (params_.capacity_lines > 0) {
    lru_touch(proc, line_addr);
  }
  switch (params_.protocol) {
    case ProtocolKind::kWriteBackInvalidate:
      access_wbi(line, bit, proc, op);
      break;
    case ProtocolKind::kWriteThrough:
      access_write_through(line, bit, proc, op);
      break;
    case ProtocolKind::kMesi:
      access_mesi(line, bit, proc, op);
      break;
    case ProtocolKind::kDragon:
      access_dragon(line, bit, proc, op);
      break;
  }
}

void CoherenceSim::access_wbi(LineState& line, std::uint32_t bit, std::int32_t proc,
                              MemOp op) {
  const auto line_bytes = static_cast<std::uint64_t>(params_.line_size);
  const auto word_bytes = static_cast<std::uint64_t>(params_.word_size);

  if (op == MemOp::kRead) {
    if (line.dirty_owner == proc || (line.present & bit) != 0) return;  // hit
    ++traffic_.read_misses;
    if (line.dirty_owner >= 0) {
      // Another cache holds it dirty: it flushes, supplying the requester
      // in the same bus transaction; both now hold it clean.
      traffic_.read_flush_bytes += line_bytes;
      line.present |= (1u << line.dirty_owner);
      line.dirty_owner = -1;
    } else if ((line.ever_held & bit) != 0) {
      traffic_.refetch_bytes += line_bytes;  // lost to an invalidation
    } else {
      traffic_.cold_fetch_bytes += line_bytes;
    }
    line.present |= bit;
    line.ever_held |= bit;
    return;
  }

  // Write.
  if (line.dirty_owner == proc) return;  // dirty hit, free
  if (line.dirty_owner >= 0) {
    // Dirty in another cache: flush it, then take ownership.
    traffic_.write_flush_bytes += line_bytes;
    ++traffic_.invalidation_msgs;
    line.dirty_owner = -1;
    line.present = 0;
    traffic_.word_write_bytes += word_bytes;
    line.dirty_owner = proc;
    line.present = bit;
    line.ever_held |= bit;
    return;
  }
  if ((line.present & bit) == 0) {
    // Write miss to a clean/memory line: fill it first.
    ++traffic_.write_misses;
    traffic_.write_fetch_bytes += line_bytes;
  }
  // First write to a clean line: a word goes on the bus, every other copy
  // is invalidated (paper §5.2).
  traffic_.word_write_bytes += word_bytes;
  if ((line.present & ~bit) != 0) ++traffic_.invalidation_msgs;
  line.present = bit;
  line.ever_held |= bit;
  line.dirty_owner = proc;
}

void CoherenceSim::access_write_through(LineState& line, std::uint32_t bit,
                                        std::int32_t proc, MemOp op) {
  static_cast<void>(proc);
  const auto line_bytes = static_cast<std::uint64_t>(params_.line_size);
  const auto word_bytes = static_cast<std::uint64_t>(params_.word_size);
  // Memory is always current: no dirty state, no flushes.
  if (op == MemOp::kRead) {
    if ((line.present & bit) != 0) return;
    ++traffic_.read_misses;
    if ((line.ever_held & bit) != 0) {
      traffic_.refetch_bytes += line_bytes;
    } else {
      traffic_.cold_fetch_bytes += line_bytes;
    }
    line.present |= bit;
    line.ever_held |= bit;
    return;
  }
  if ((line.present & bit) == 0) {
    ++traffic_.write_misses;
    traffic_.write_fetch_bytes += line_bytes;
  }
  traffic_.word_write_bytes += word_bytes;  // every write goes through
  if ((line.present & ~bit) != 0) ++traffic_.invalidation_msgs;
  line.present = bit;  // invalidate other copies
  line.ever_held |= bit;
}

void CoherenceSim::access_mesi(LineState& line, std::uint32_t bit, std::int32_t proc,
                               MemOp op) {
  const auto line_bytes = static_cast<std::uint64_t>(params_.line_size);
  if (op == MemOp::kRead) {
    if (line.dirty_owner == proc || (line.present & bit) != 0) return;
    ++traffic_.read_misses;
    if (line.dirty_owner >= 0) {
      traffic_.read_flush_bytes += line_bytes;
      line.present |= (1u << line.dirty_owner);
      line.dirty_owner = -1;
    } else if ((line.ever_held & bit) != 0) {
      traffic_.refetch_bytes += line_bytes;
    } else {
      traffic_.cold_fetch_bytes += line_bytes;
    }
    const bool alone = (line.present == 0);
    line.present |= bit;
    line.ever_held |= bit;
    line.exclusive_clean = alone;
    return;
  }

  if (line.dirty_owner == proc) return;
  if (line.dirty_owner >= 0) {
    traffic_.write_flush_bytes += line_bytes;
    ++traffic_.invalidation_msgs;
    line.dirty_owner = -1;
    line.present = 0;
  }
  const bool held = (line.present & bit) != 0;
  const bool exclusive = held && line.exclusive_clean && line.present == bit;
  if (!held) {
    ++traffic_.write_misses;
    traffic_.write_fetch_bytes += line_bytes;
  }
  if (!exclusive) {
    // Invalidate other sharers with an address-only bus transaction;
    // Illinois' E state makes the silent upgrade possible when alone.
    if ((line.present & ~bit) != 0 || !held) ++traffic_.invalidation_msgs;
    traffic_.word_write_bytes += static_cast<std::uint64_t>(params_.word_size);
  }
  line.present = bit;
  line.ever_held |= bit;
  line.dirty_owner = proc;
  line.exclusive_clean = false;
}

void CoherenceSim::access_dragon(LineState& line, std::uint32_t bit,
                                 std::int32_t proc, MemOp op) {
  static_cast<void>(proc);
  const auto line_bytes = static_cast<std::uint64_t>(params_.line_size);
  const auto word_bytes = static_cast<std::uint64_t>(params_.word_size);
  // Write-update: copies are never invalidated, so with infinite caches a
  // processor misses each line at most once (no refetches), and every write
  // to a line with other sharers broadcasts the written word.
  if (op == MemOp::kRead) {
    if ((line.present & bit) != 0) return;
    ++traffic_.read_misses;
    if (line.dirty_owner >= 0) {
      // Dirty-somewhere lines are supplied cache-to-cache (Sm/M states).
      traffic_.read_flush_bytes += line_bytes;
    } else {
      traffic_.cold_fetch_bytes += line_bytes;
    }
    line.present |= bit;
    line.ever_held |= bit;
    return;
  }
  if ((line.present & bit) == 0) {
    ++traffic_.write_misses;
    traffic_.write_fetch_bytes += line_bytes;
    line.present |= bit;
    line.ever_held |= bit;
  }
  if ((line.present & ~bit) != 0) {
    // Shared: broadcast the word so every copy stays current.
    traffic_.word_write_bytes += word_bytes;
  }
  // Mark "modified relative to memory" (held by the writing cache).
  line.dirty_owner = proc;
}

void CoherenceSim::replay(const RefTrace& trace) {
  for (const MemRef& ref : trace.refs()) {
    access(ref.proc, ref.addr, ref.op);
  }
}

void CoherenceSim::publish_obs(obs::Obs& o, std::size_t shard) const {
  using Names = obs::CoherenceObsNames;
  auto& reg = o.counters();
  const CoherenceTraffic& t = traffic_;
  reg.add(shard, reg.counter(Names::kAccesses), t.accesses);
  reg.add(shard, reg.counter(Names::kReadMisses), t.read_misses);
  reg.add(shard, reg.counter(Names::kWriteMisses), t.write_misses);
  reg.add(shard, reg.counter(Names::kInvalidations), t.invalidation_msgs);
  reg.add(shard, reg.counter(Names::kColdFetchBytes), t.cold_fetch_bytes);
  reg.add(shard, reg.counter(Names::kRefetchBytes), t.refetch_bytes);
  reg.add(shard, reg.counter(Names::kWriteFetchBytes), t.write_fetch_bytes);
  reg.add(shard, reg.counter(Names::kWordWriteBytes), t.word_write_bytes);
  reg.add(shard, reg.counter(Names::kReadFlushBytes), t.read_flush_bytes);
  reg.add(shard, reg.counter(Names::kWriteFlushBytes), t.write_flush_bytes);
  reg.add(shard, reg.counter(Names::kEvictionWritebackBytes),
          t.eviction_writeback_bytes);
  reg.add(shard, reg.counter(Names::kTotalBytes), t.total_bytes());
  reg.add(shard, reg.counter(Names::kLinesTouched), lines_.size());
}

std::vector<CoherenceTraffic> sweep_line_sizes(const RefTrace& trace,
                                               std::int32_t procs,
                                               const std::vector<std::int32_t>& sizes,
                                               ProtocolKind protocol) {
  std::vector<CoherenceTraffic> out;
  out.reserve(sizes.size());
  for (std::int32_t size : sizes) {
    CoherenceParams params;
    params.line_size = size;
    params.protocol = protocol;
    CoherenceSim sim(procs, params);
    sim.replay(trace);
    out.push_back(sim.traffic());
  }
  return out;
}

}  // namespace locus
