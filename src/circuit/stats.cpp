#include "circuit/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace locus {

CircuitStats compute_stats(const Circuit& circuit) {
  CircuitStats s;
  s.num_wires = circuit.num_wires();
  std::vector<std::int64_t> lengths;
  lengths.reserve(circuit.wires().size());
  for (const Wire& w : circuit.wires()) {
    s.total_pins += static_cast<std::int64_t>(w.pins.size());
    s.max_pins = std::max(s.max_pins, static_cast<std::int32_t>(w.pins.size()));
    std::int64_t len = w.length_cost();
    lengths.push_back(len);
    s.total_length_cost += len;
    s.max_length_cost = std::max(s.max_length_cost, len);
    if (w.assignment_cost() < 30) ++s.wires_below_30;
    else ++s.wires_at_or_above_30;
  }
  if (s.num_wires > 0) {
    s.mean_pins = static_cast<double>(s.total_pins) / s.num_wires;
    s.mean_length_cost = static_cast<double>(s.total_length_cost) / s.num_wires;
    std::nth_element(lengths.begin(), lengths.begin() + lengths.size() / 2,
                     lengths.end());
    s.median_length_cost = lengths[lengths.size() / 2];
  }
  return s;
}

std::string describe(const Circuit& circuit) {
  CircuitStats s = compute_stats(circuit);
  std::ostringstream os;
  os << "circuit '" << circuit.name() << "': " << circuit.channels()
     << " channels x " << circuit.grids() << " grids, " << s.num_wires
     << " wires (" << s.total_pins << " pins, mean " << s.mean_pins
     << "/wire, max " << s.max_pins << "); length cost mean "
     << s.mean_length_cost << ", median " << s.median_length_cost << ", max "
     << s.max_length_cost << "; " << s.wires_below_30
     << " wires below ThresholdCost=30";
  return os.str();
}

}  // namespace locus
