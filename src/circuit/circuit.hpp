// Standard cell circuit model.
//
// A standard cell circuit is a stack of cell rows separated by horizontal
// routing channels: with C channels there are C-1 cell rows, channel 0 above
// the top row and channel C-1 below the bottom row. The horizontal dimension
// is quantized into G routing grids. A *wire* (net) connects two or more
// *pins*; a pin sits on a cell in some row at some grid column and can enter
// either the channel above its row (index == row) or the channel below
// (index == row + 1) — this vertical freedom is one of the router's choices.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace locus {

using WireId = std::int32_t;

/// A pin on a standard cell.
struct Pin {
  std::int32_t x = 0;    ///< routing grid column, in [0, grids)
  std::int32_t row = 0;  ///< cell row, in [0, channels - 1)

  /// Channel directly above the pin's cell row.
  std::int32_t channel_above() const { return row; }
  /// Channel directly below the pin's cell row.
  std::int32_t channel_below() const { return row + 1; }

  friend constexpr auto operator<=>(const Pin&, const Pin&) = default;
};

/// A net to be routed. Pins are kept sorted by (x, row); the router walks
/// them left to right decomposing the wire into two-point segments.
struct Wire {
  WireId id = -1;
  std::vector<Pin> pins;

  /// Bounding box over pin positions, in cost-array coordinates. The channel
  /// extent covers both channel options of each pin.
  Rect pin_bbox() const;

  /// Estimated wirelength: sum of Manhattan distances between x-adjacent
  /// pins (grid units; vertical hops measured in channels).
  std::int64_t length_cost() const;

  /// The "cost measure ... based on its length" that the ThresholdCost wire
  /// assignment heuristic compares against (paper §4.2): the number of cost
  /// array cells in the wire's pin bounding box. Short local wires fall
  /// under ThresholdCost = 30; long multi-channel wires exceed 1000, so the
  /// paper's 30 / 1000 / infinity settings carve distinct assignment mixes.
  std::int64_t assignment_cost() const { return pin_bbox().area(); }
};

/// An immutable routed-circuit description: dimensions plus the netlist.
class Circuit {
 public:
  Circuit(std::string name, std::int32_t channels, std::int32_t grids,
          std::vector<Wire> wires);

  const std::string& name() const { return name_; }
  std::int32_t channels() const { return channels_; }
  std::int32_t grids() const { return grids_; }
  std::int32_t num_cell_rows() const { return channels_ - 1; }

  const std::vector<Wire>& wires() const { return wires_; }
  const Wire& wire(WireId id) const;
  std::int32_t num_wires() const { return static_cast<std::int32_t>(wires_.size()); }

  /// Full cost-array rectangle.
  Rect bounds() const { return Rect::of(0, channels_ - 1, 0, grids_ - 1); }

 private:
  std::string name_;
  std::int32_t channels_;
  std::int32_t grids_;
  std::vector<Wire> wires_;
};

}  // namespace locus
