#include "circuit/hier_generator.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace locus {

namespace {

std::int32_t clamp_i32(std::int64_t v, std::int32_t lo, std::int32_t hi) {
  return static_cast<std::int32_t>(std::clamp<std::int64_t>(v, lo, hi));
}

/// Inclusive [lo, hi] extent of band `b` of `count` over `total` units.
struct Band {
  std::int32_t lo;
  std::int32_t hi;
  std::int32_t width() const { return hi - lo + 1; }
};

Band band_of(std::int32_t total, std::int32_t count, std::int32_t b) {
  const std::int64_t lo = static_cast<std::int64_t>(total) * b / count;
  const std::int64_t hi = static_cast<std::int64_t>(total) * (b + 1) / count - 1;
  return Band{static_cast<std::int32_t>(lo), static_cast<std::int32_t>(hi)};
}

/// Pin count: 2 with p=.55, 3 with p=.25, then a tail up to max_pins.
std::int32_t draw_pin_count(Rng& rng, std::int32_t max_pins) {
  double u = rng.uniform();
  if (u < 0.55 || max_pins <= 2) return 2;
  if (u < 0.80 || max_pins <= 3) return 3;
  if (u < 0.90 || max_pins <= 4) return 4;
  return clamp_i32(5 + static_cast<std::int32_t>(rng.bounded(
                           static_cast<std::uint64_t>(max_pins - 4))),
                   2, max_pins);
}

struct Anchor {
  std::int32_t x;
  std::int32_t row;
};

}  // namespace

std::vector<double> hier_level_weights(const HierGeneratorParams& params) {
  LOCUS_ASSERT(params.levels >= 1);
  LOCUS_ASSERT(params.level_decay > 0.0 && params.level_decay <= 1.0);
  std::vector<double> weights(static_cast<std::size_t>(params.levels));
  double total = 0.0;
  for (std::int32_t l = 0; l < params.levels; ++l) {
    weights[static_cast<std::size_t>(l)] =
        std::pow(params.level_decay, params.levels - 1 - l);
    total += weights[static_cast<std::size_t>(l)];
  }
  for (double& w : weights) w /= total;
  return weights;
}

Circuit generate_hierarchical_circuit(const HierGeneratorParams& params) {
  LOCUS_ASSERT(params.channels >= 3);
  LOCUS_ASSERT(params.grids >= 8);
  LOCUS_ASSERT(params.num_wires >= 1);
  LOCUS_ASSERT(params.levels >= 1);
  LOCUS_ASSERT(params.clusters_per_block >= 1);
  LOCUS_ASSERT(params.max_pins >= 2);
  const std::int32_t rows = params.channels - 1;
  const std::int32_t leaf_split = 1 << (params.levels - 1);
  LOCUS_ASSERT_MSG(rows / leaf_split >= 2 && params.grids / leaf_split >= 8,
                   "hierarchy too deep for the chip dimensions");

  Rng rng(params.seed);

  // Leaf placement clusters, one batch per leaf block, generated in block
  // row-major order so the draw sequence is independent of wire order.
  const std::int32_t leaf_blocks = leaf_split * leaf_split;
  std::vector<Anchor> anchors(
      static_cast<std::size_t>(leaf_blocks) * params.clusters_per_block);
  for (std::int32_t by = 0; by < leaf_split; ++by) {
    for (std::int32_t bx = 0; bx < leaf_split; ++bx) {
      const Band rb = band_of(rows, leaf_split, by);
      const Band cb = band_of(params.grids, leaf_split, bx);
      const std::size_t base =
          static_cast<std::size_t>(by * leaf_split + bx) * params.clusters_per_block;
      for (std::int32_t k = 0; k < params.clusters_per_block; ++k) {
        anchors[base + k] = Anchor{
            cb.lo + static_cast<std::int32_t>(
                        rng.bounded(static_cast<std::uint64_t>(cb.width()))),
            rb.lo + static_cast<std::int32_t>(
                        rng.bounded(static_cast<std::uint64_t>(rb.width())))};
      }
    }
  }

  // Zipf-ish cluster popularity inside a leaf block: anchor k has weight
  // 1/(k+1), so some clusters attract more wires (load imbalance, §5.3.3).
  std::vector<double> cum_weight(static_cast<std::size_t>(params.clusters_per_block));
  double cluster_total = 0.0;
  for (std::int32_t k = 0; k < params.clusters_per_block; ++k) {
    cluster_total += 1.0 / static_cast<double>(k + 1);
    cum_weight[static_cast<std::size_t>(k)] = cluster_total;
  }

  const std::vector<double> level_weights = hier_level_weights(params);
  std::vector<double> level_cum(level_weights.size());
  double acc = 0.0;
  for (std::size_t l = 0; l < level_weights.size(); ++l) {
    acc += level_weights[l];
    level_cum[l] = acc;
  }

  std::vector<Wire> wires;
  wires.reserve(static_cast<std::size_t>(params.num_wires));
  for (std::int32_t w = 0; w < params.num_wires; ++w) {
    // Hierarchy level, then a block at that level.
    const double u = rng.uniform();
    std::int32_t level = params.levels - 1;
    for (std::size_t l = 0; l < level_cum.size(); ++l) {
      if (u < level_cum[l]) {
        level = static_cast<std::int32_t>(l);
        break;
      }
    }
    const std::int32_t split = 1 << level;
    const auto by = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(split)));
    const auto bx = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(split)));
    const Band rb = band_of(rows, split, by);
    const Band cb = band_of(params.grids, split, bx);

    Wire wire;
    const bool leaf = (level == params.levels - 1);
    if (leaf) {
      // Leaf-local wire: pins scatter geometrically around a cluster anchor,
      // clamped to the block.
      const double cu = rng.uniform() * cluster_total;
      auto it = std::lower_bound(cum_weight.begin(), cum_weight.end(), cu);
      std::size_t k = static_cast<std::size_t>(it - cum_weight.begin());
      if (k >= cum_weight.size()) k = cum_weight.size() - 1;
      const Anchor& anchor =
          anchors[static_cast<std::size_t>(by * leaf_split + bx) *
                      params.clusters_per_block +
                  k];
      const std::int32_t pin_count = draw_pin_count(rng, params.max_pins);
      const double spread = static_cast<double>(cb.width()) / 8.0;
      for (std::int32_t p = 0; p < pin_count; ++p) {
        Pin pin;
        std::int32_t dx = rng.geometric(1.0 / (1.0 + spread), cb.width() - 1);
        if (rng.chance(0.5)) dx = -dx;
        pin.x = clamp_i32(anchor.x + dx, cb.lo, cb.hi);
        std::int32_t dr = rng.geometric(0.6, rb.width() - 1);
        if (rng.chance(0.5)) dr = -dr;
        pin.row = clamp_i32(anchor.row + dr, rb.lo, rb.hi);
        wire.pins.push_back(pin);
      }
    } else {
      // Escaped wire: spans a good fraction of its level-`level` block,
      // multiple rows, extra pins (the global-net character).
      const std::int32_t pin_count = clamp_i32(
          3 + static_cast<std::int32_t>(
                  rng.bounded(static_cast<std::uint64_t>(params.max_pins - 2))),
          2, params.max_pins);
      const std::int32_t span = clamp_i32(
          cb.width() / 3 + static_cast<std::int32_t>(rng.bounded(
                               static_cast<std::uint64_t>(2 * cb.width() / 3))),
          cb.width() / 4, cb.width() - 1);
      const std::int32_t x0 =
          cb.lo + static_cast<std::int32_t>(rng.bounded(
                      static_cast<std::uint64_t>(cb.width() - span)));
      for (std::int32_t p = 0; p < pin_count; ++p) {
        Pin pin;
        pin.x = clamp_i32(
            x0 + static_cast<std::int32_t>(
                     rng.bounded(static_cast<std::uint64_t>(span) + 1)),
            cb.lo, cb.hi);
        pin.row = rb.lo + static_cast<std::int32_t>(
                              rng.bounded(static_cast<std::uint64_t>(rb.width())));
        wire.pins.push_back(pin);
      }
    }

    // Degenerate wires (all pins at one grid) still need two distinct pin
    // sites for the router's segment decomposition.
    bool all_same = true;
    for (const Pin& p : wire.pins) {
      if (p.x != wire.pins.front().x || p.row != wire.pins.front().row) {
        all_same = false;
        break;
      }
    }
    if (all_same) {
      Pin& last = wire.pins.back();
      last.x = last.x + 1 <= cb.hi ? last.x + 1 : last.x - 1;
    }
    wires.push_back(std::move(wire));
  }

  return Circuit(params.name, params.channels, params.grids, std::move(wires));
}

std::vector<double> measure_length_mix(const Circuit& circuit,
                                       const HierGeneratorParams& params) {
  LOCUS_ASSERT(params.levels >= 1);
  const std::int32_t rows = circuit.num_cell_rows();
  std::vector<std::int64_t> counts(static_cast<std::size_t>(params.levels), 0);
  for (const Wire& wire : circuit.wires()) {
    std::int32_t x_lo = circuit.grids(), x_hi = 0, r_lo = rows, r_hi = 0;
    for (const Pin& p : wire.pins) {
      x_lo = std::min(x_lo, p.x);
      x_hi = std::max(x_hi, p.x);
      r_lo = std::min(r_lo, p.row);
      r_hi = std::max(r_hi, p.row);
    }
    // Deepest level whose (largest) block dimensions contain the span. A
    // wire generated in a level-l block always fits at level l, so the
    // measured bucket is at least as deep as the drawn one.
    std::int32_t deepest = 0;
    for (std::int32_t l = params.levels - 1; l >= 1; --l) {
      const std::int32_t split = 1 << l;
      const std::int32_t block_w = (circuit.grids() + split - 1) / split;
      const std::int32_t block_h = (rows + split - 1) / split;
      if (x_hi - x_lo < block_w && r_hi - r_lo < block_h) {
        deepest = l;
        break;
      }
    }
    ++counts[static_cast<std::size_t>(deepest)];
  }
  std::vector<double> mix(counts.size());
  for (std::size_t l = 0; l < counts.size(); ++l) {
    mix[l] = static_cast<double>(counts[l]) /
             static_cast<double>(circuit.num_wires());
  }
  return mix;
}

HierGeneratorParams make_scale_params(std::int32_t num_wires, std::uint64_t seed) {
  LOCUS_ASSERT(num_wires >= 100);
  HierGeneratorParams p;
  p.name = "hier-" + std::to_string(num_wires);
  p.num_wires = num_wires;
  p.seed = seed;
  // ~8 cost cells per wire at the paper benchmarks' ~34:1 grid:channel
  // aspect; at least 16 channels so a 16x16 mesh (256 virtual processors)
  // can still band the chip.
  const double cells = static_cast<double>(num_wires) * 8.0;
  p.channels = std::max<std::int32_t>(
      16, static_cast<std::int32_t>(std::lround(std::sqrt(cells / 34.0))));
  p.grids = std::max<std::int32_t>(
      256, static_cast<std::int32_t>(std::lround(cells / p.channels)));
  p.levels = num_wires < 30'000 ? 3 : num_wires < 300'000 ? 4 : 5;
  while (p.levels > 1 && ((p.channels - 1) / (1 << (p.levels - 1)) < 2 ||
                          p.grids / (1 << (p.levels - 1)) < 8)) {
    --p.levels;
  }
  return p;
}

Circuit make_scale_circuit(std::int32_t num_wires, std::uint64_t seed) {
  return generate_hierarchical_circuit(make_scale_params(num_wires, seed));
}

}  // namespace locus
