#include "circuit/circuit.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/assert.hpp"

namespace locus {

Rect Wire::pin_bbox() const {
  Rect box;
  for (const Pin& p : pins) {
    box.expand(GridPoint{p.channel_above(), p.x});
    box.expand(GridPoint{p.channel_below(), p.x});
  }
  return box;
}

std::int64_t Wire::length_cost() const {
  std::int64_t total = 0;
  for (std::size_t i = 1; i < pins.size(); ++i) {
    total += std::abs(pins[i].x - pins[i - 1].x) +
             std::abs(pins[i].row - pins[i - 1].row);
  }
  return total;
}

Circuit::Circuit(std::string name, std::int32_t channels, std::int32_t grids,
                 std::vector<Wire> wires)
    : name_(std::move(name)), channels_(channels), grids_(grids),
      wires_(std::move(wires)) {
  LOCUS_ASSERT_MSG(channels_ >= 2, "need at least two channels (one cell row)");
  LOCUS_ASSERT_MSG(grids_ >= 1, "need at least one routing grid");
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    Wire& w = wires_[i];
    w.id = static_cast<WireId>(i);
    LOCUS_ASSERT_MSG(w.pins.size() >= 2, "wires must have at least two pins");
    std::sort(w.pins.begin(), w.pins.end(),
              [](const Pin& a, const Pin& b) {
                return a.x != b.x ? a.x < b.x : a.row < b.row;
              });
    for (const Pin& p : w.pins) {
      LOCUS_ASSERT_MSG(p.x >= 0 && p.x < grids_, "pin grid out of range");
      LOCUS_ASSERT_MSG(p.row >= 0 && p.row < num_cell_rows(), "pin row out of range");
    }
  }
}

const Wire& Circuit::wire(WireId id) const {
  LOCUS_ASSERT(id >= 0 && id < num_wires());
  return wires_[static_cast<std::size_t>(id)];
}

}  // namespace locus
