// Hierarchical synthetic circuit generation for scaling studies.
//
// The paper's benchmarks top out at a few hundred wires; extending the
// Table 6 scaling study to 64-256 virtual processors needs circuits in the
// 10k-1M wire range with the *structure* of a real standard cell design,
// not a uniform scatter. Real placements are hierarchical: a block of
// logic is placed contiguously, most of its nets stay inside it, and a
// geometrically thinning tail of nets escapes to the enclosing block at
// each level up, ending in a few chip-spanning global nets (Rent's rule in
// net-length form). This generator reproduces that shape directly:
//
//   * The chip is divided into a block hierarchy: level 0 is the whole
//     chip, and each level splits every block of the previous one 2x2.
//   * Each wire draws a hierarchy level -- leaf level with the largest
//     probability, each level up damped by `level_decay` -- then a block
//     at that level, then scatters its pins inside that block (around a
//     per-block cluster anchor at the leaf, uniformly for upper levels).
//
// The emitted length mix is therefore declared, not emergent, which is
// what the generator property tests pin down: the fraction of wires whose
// bounding box fits a level-l block must track the level weights.
// Everything flows through one deterministic Rng: same params (including
// seed), same netlist, on every platform.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace locus {

struct HierGeneratorParams {
  std::string name = "hier";
  std::int32_t channels = 48;
  std::int32_t grids = 1632;
  std::int32_t num_wires = 10000;
  std::uint64_t seed = 0x5CA1EULL;

  /// Hierarchy depth. Level 0 is the whole chip; level l has 2^l x 2^l
  /// blocks. Must leave leaf blocks at least 2 cell rows x 8 grids.
  std::int32_t levels = 3;
  /// Weight damping per level up: weight(level l) = level_decay^(leaf - l).
  /// 0.25 with 3 levels puts ~76% of wires in leaf blocks and ~5% chip-wide.
  double level_decay = 0.25;
  /// Placement cluster anchors per leaf block; leaf wires scatter
  /// geometrically around one of them (popular clusters create the load
  /// imbalance the assignment experiments need).
  std::int32_t clusters_per_block = 3;
  /// Maximum pins on a wire (2-heavy distribution, more pins when global).
  std::int32_t max_pins = 8;
};

/// Normalized probability of each hierarchy level, index 0 = whole chip.
std::vector<double> hier_level_weights(const HierGeneratorParams& params);

/// Generates the deterministic hierarchical circuit described by `params`.
Circuit generate_hierarchical_circuit(const HierGeneratorParams& params);

/// Measured length mix: fraction of wires (by deepest level whose block
/// dimensions contain the wire's pin bounding box) -- index 0 counts the
/// chip-spanning wires, the last index the leaf-local ones. Sums to 1.
std::vector<double> measure_length_mix(const Circuit& circuit,
                                       const HierGeneratorParams& params);

/// Parameters for an `num_wires`-wire scale circuit: dimensions follow the
/// paper benchmarks' cell density (~8 cost cells per wire) and aspect ratio
/// (~34 grids per channel), with at least 16 channels so every mesh up to
/// 16x16 (256 virtual processors) can partition it. Hierarchy depth grows
/// with the wire count (10k -> 3 levels, 100k -> 4, 1M -> 5).
HierGeneratorParams make_scale_params(std::int32_t num_wires, std::uint64_t seed);

/// Convenience: generate_hierarchical_circuit(make_scale_params(...)).
Circuit make_scale_circuit(std::int32_t num_wires, std::uint64_t seed);

}  // namespace locus
