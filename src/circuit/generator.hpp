// Synthetic standard cell circuit generation.
//
// The paper's benchmark circuits — bnrE (Bell-Northern Research) and MDC
// (U. Toronto Microelectronic Development Centre) — are proprietary; only
// their published dimensions survive. `make_bnre_like()` / `make_mdc_like()`
// generate deterministic synthetic circuits with those dimensions and a
// realistic standard-cell character: most wires are short and locally
// clustered (which is what the locality experiments exploit) while a tail of
// long, multi-pin wires spans several owned regions (which is what limits
// locality per paper §5.3.3 and what the ThresholdCost heuristic sends to
// the load balancer).
#pragma once

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"

namespace locus {

struct GeneratorParams {
  std::string name = "synthetic";
  std::int32_t channels = 10;
  std::int32_t grids = 341;
  std::int32_t num_wires = 420;
  std::uint64_t seed = 0xB9E5EED5ULL;

  /// Fraction of wires drawn as long "global" wires (wide x-span).
  double global_fraction = 0.12;
  /// Mean x-extent of a local wire, in grids.
  double local_span_mean = 18.0;
  /// Number of placement clusters local wires are anchored to.
  std::int32_t clusters = 24;
  /// Maximum pins on a wire (distribution is 2-heavy).
  std::int32_t max_pins = 8;
};

/// Generates a deterministic synthetic circuit from the parameters.
/// Same params (including seed) always produce the identical netlist.
Circuit generate_circuit(const GeneratorParams& params);

/// bnrE-like: 420 wires, 10 channels x 341 routing grids (paper §2.3).
Circuit make_bnre_like();

/// MDC-like: 573 wires, 12 channels x 386 routing grids (paper §2.3).
Circuit make_mdc_like();

/// A small circuit for unit tests: deterministic, quick to route.
Circuit make_tiny_test_circuit(std::uint64_t seed = 7);

/// A larger synthetic design than the paper's benchmarks (2000 wires,
/// 18 channels x 900 grids) for scaling studies past 16 processors.
Circuit make_industrial_like();

}  // namespace locus
