// Text serialization of circuits (.ckt format).
//
// Format (line oriented, '#' starts a comment):
//   circuit <name> <channels> <grids>
//   wire <pin-count>
//   pin <x> <row>
//   ...
//   end
//
// Wire ids are assigned in file order. The format round-trips exactly:
// write(read(s)) == s for canonical output.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "circuit/circuit.hpp"

namespace locus {

/// Raised on malformed .ckt input; carries the offending line number.
class CircuitParseError : public std::runtime_error {
 public:
  CircuitParseError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Parses a circuit from a stream. Throws CircuitParseError on bad input.
Circuit read_circuit(std::istream& in);

/// Parses a circuit from a file path. Throws std::runtime_error if the file
/// cannot be opened and CircuitParseError on bad content.
Circuit read_circuit_file(const std::string& path);

/// Writes the canonical .ckt representation.
void write_circuit(std::ostream& out, const Circuit& circuit);

/// Writes to a file path; throws std::runtime_error on I/O failure.
void write_circuit_file(const std::string& path, const Circuit& circuit);

}  // namespace locus
