#include "circuit/io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

namespace locus {

namespace {

/// Strips comments and surrounding whitespace; returns true if anything
/// remains.
bool clean_line(std::string& line) {
  if (auto hash = line.find('#'); hash != std::string::npos) line.erase(hash);
  auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) {
    line.clear();
    return false;
  }
  auto last = line.find_last_not_of(" \t\r");
  line = line.substr(first, last - first + 1);
  return true;
}

}  // namespace

Circuit read_circuit(std::istream& in) {
  std::string line;
  int line_no = 0;

  std::string name;
  std::int32_t channels = 0;
  std::int32_t grids = 0;
  bool saw_header = false;
  bool saw_end = false;
  std::vector<Wire> wires;
  Wire* current = nullptr;
  std::int32_t pins_expected = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (!clean_line(line)) continue;
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;

    if (keyword == "circuit") {
      if (saw_header) throw CircuitParseError(line_no, "duplicate circuit header");
      if (!(fields >> name >> channels >> grids)) {
        throw CircuitParseError(line_no, "expected: circuit <name> <channels> <grids>");
      }
      if (channels < 2 || grids < 1) {
        throw CircuitParseError(line_no, "invalid circuit dimensions");
      }
      saw_header = true;
    } else if (keyword == "wire") {
      if (!saw_header) throw CircuitParseError(line_no, "wire before circuit header");
      if (current != nullptr && static_cast<std::int32_t>(current->pins.size()) !=
                                    pins_expected) {
        throw CircuitParseError(line_no, "previous wire has missing pins");
      }
      if (!(fields >> pins_expected) || pins_expected < 2) {
        throw CircuitParseError(line_no, "expected: wire <pin-count >= 2>");
      }
      wires.emplace_back();
      current = &wires.back();
    } else if (keyword == "pin") {
      if (current == nullptr) throw CircuitParseError(line_no, "pin outside a wire");
      Pin pin;
      if (!(fields >> pin.x >> pin.row)) {
        throw CircuitParseError(line_no, "expected: pin <x> <row>");
      }
      if (pin.x < 0 || pin.x >= grids || pin.row < 0 || pin.row >= channels - 1) {
        throw CircuitParseError(line_no, "pin coordinates out of range");
      }
      if (static_cast<std::int32_t>(current->pins.size()) >= pins_expected) {
        throw CircuitParseError(line_no, "more pins than declared");
      }
      current->pins.push_back(pin);
    } else if (keyword == "end") {
      if (!saw_header) throw CircuitParseError(line_no, "end before circuit header");
      saw_end = true;
      break;
    } else {
      throw CircuitParseError(line_no, "unknown keyword '" + keyword + "'");
    }
  }

  if (!saw_header) throw CircuitParseError(line_no, "missing circuit header");
  if (!saw_end) throw CircuitParseError(line_no, "missing 'end'");
  if (current != nullptr &&
      static_cast<std::int32_t>(current->pins.size()) != pins_expected) {
    throw CircuitParseError(line_no, "last wire has missing pins");
  }
  return Circuit(name, channels, grids, std::move(wires));
}

Circuit read_circuit_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open circuit file: " + path);
  return read_circuit(in);
}

void write_circuit(std::ostream& out, const Circuit& circuit) {
  out << "circuit " << circuit.name() << ' ' << circuit.channels() << ' '
      << circuit.grids() << '\n';
  for (const Wire& w : circuit.wires()) {
    out << "wire " << w.pins.size() << '\n';
    for (const Pin& p : w.pins) {
      out << "pin " << p.x << ' ' << p.row << '\n';
    }
  }
  out << "end\n";
}

void write_circuit_file(const std::string& path, const Circuit& circuit) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open circuit file for write: " + path);
  write_circuit(out, circuit);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace locus
