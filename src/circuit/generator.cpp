#include "circuit/generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace locus {

namespace {

struct Cluster {
  std::int32_t x;
  std::int32_t row;
};

std::int32_t clamp_i32(std::int64_t v, std::int32_t lo, std::int32_t hi) {
  return static_cast<std::int32_t>(std::clamp<std::int64_t>(v, lo, hi));
}

/// Draws a pin count: 2 with p=.55, 3 with p=.25, then a tail up to max_pins.
std::int32_t draw_pin_count(Rng& rng, std::int32_t max_pins) {
  double u = rng.uniform();
  if (u < 0.55 || max_pins <= 2) return 2;
  if (u < 0.80 || max_pins <= 3) return 3;
  if (u < 0.90 || max_pins <= 4) return 4;
  return clamp_i32(5 + static_cast<std::int32_t>(rng.bounded(
                           static_cast<std::uint64_t>(max_pins - 4))),
                   2, max_pins);
}

}  // namespace

Circuit generate_circuit(const GeneratorParams& params) {
  LOCUS_ASSERT(params.channels >= 2);
  LOCUS_ASSERT(params.grids >= 8);
  LOCUS_ASSERT(params.num_wires >= 1);
  LOCUS_ASSERT(params.clusters >= 1);

  Rng rng(params.seed);
  const std::int32_t rows = params.channels - 1;

  // Place cluster anchors on a jittered grid so locality is spatially spread
  // but non-uniform: some clusters attract more wires than others, which is
  // what creates the load imbalance under fully-local assignment (§5.3.3).
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<std::size_t>(params.clusters));
  for (std::int32_t c = 0; c < params.clusters; ++c) {
    clusters.push_back(Cluster{
        static_cast<std::int32_t>(rng.bounded(static_cast<std::uint64_t>(params.grids))),
        static_cast<std::int32_t>(rng.bounded(static_cast<std::uint64_t>(rows)))});
  }
  // Zipf-ish cluster popularity: cluster k chosen with weight 1/(k+1).
  std::vector<double> cum_weight(clusters.size());
  double total = 0;
  for (std::size_t k = 0; k < clusters.size(); ++k) {
    total += 1.0 / static_cast<double>(k + 1);
    cum_weight[k] = total;
  }

  auto pick_cluster = [&]() -> const Cluster& {
    double u = rng.uniform() * total;
    auto it = std::lower_bound(cum_weight.begin(), cum_weight.end(), u);
    std::size_t k = static_cast<std::size_t>(it - cum_weight.begin());
    if (k >= clusters.size()) k = clusters.size() - 1;
    return clusters[k];
  };

  std::vector<Wire> wires;
  wires.reserve(static_cast<std::size_t>(params.num_wires));
  for (std::int32_t w = 0; w < params.num_wires; ++w) {
    Wire wire;
    const bool global = rng.chance(params.global_fraction);
    const std::int32_t pin_count = global
        ? clamp_i32(3 + static_cast<std::int32_t>(rng.bounded(
                            static_cast<std::uint64_t>(params.max_pins - 2))),
                    2, params.max_pins)
        : draw_pin_count(rng, params.max_pins);

    if (global) {
      // Global wire: pins spread over a wide x-span and multiple rows.
      std::int32_t span = clamp_i32(
          params.grids / 3 +
              static_cast<std::int32_t>(rng.bounded(
                  static_cast<std::uint64_t>(2 * params.grids / 3))),
          params.grids / 4, params.grids - 1);
      std::int32_t x0 = static_cast<std::int32_t>(
          rng.bounded(static_cast<std::uint64_t>(params.grids - span)));
      for (std::int32_t p = 0; p < pin_count; ++p) {
        Pin pin;
        pin.x = clamp_i32(
            x0 + static_cast<std::int32_t>(rng.bounded(
                     static_cast<std::uint64_t>(span) + 1)),
            0, params.grids - 1);
        pin.row = static_cast<std::int32_t>(
            rng.bounded(static_cast<std::uint64_t>(rows)));
        wire.pins.push_back(pin);
      }
    } else {
      // Local wire: pins scatter geometrically around a cluster anchor.
      const Cluster& anchor = pick_cluster();
      for (std::int32_t p = 0; p < pin_count; ++p) {
        Pin pin;
        double spread = params.local_span_mean / 2.0;
        std::int32_t dx = rng.geometric(1.0 / (1.0 + spread), params.grids - 1);
        if (rng.chance(0.5)) dx = -dx;
        pin.x = clamp_i32(anchor.x + dx, 0, params.grids - 1);
        std::int32_t dr = rng.geometric(0.6, rows - 1);
        if (rng.chance(0.5)) dr = -dr;
        pin.row = clamp_i32(anchor.row + dr, 0, rows - 1);
        wire.pins.push_back(pin);
      }
    }

    // Degenerate wires (all pins at the same grid) still need two distinct
    // pin sites for the router's segment decomposition to do something.
    bool all_same = true;
    for (const Pin& p : wire.pins) {
      if (p.x != wire.pins.front().x || p.row != wire.pins.front().row) {
        all_same = false;
        break;
      }
    }
    if (all_same) {
      wire.pins.back().x =
          clamp_i32(wire.pins.back().x + 1 < params.grids ? wire.pins.back().x + 1
                                                          : wire.pins.back().x - 1,
                    0, params.grids - 1);
    }
    wires.push_back(std::move(wire));
  }

  return Circuit(params.name, params.channels, params.grids, std::move(wires));
}

Circuit make_bnre_like() {
  GeneratorParams p;
  p.name = "bnrE-like";
  p.channels = 10;
  p.grids = 341;
  p.num_wires = 420;
  p.seed = 0xB9E5EED5ULL;
  p.clusters = 24;
  p.global_fraction = 0.12;
  p.local_span_mean = 18.0;
  return generate_circuit(p);
}

Circuit make_mdc_like() {
  GeneratorParams p;
  p.name = "MDC-like";
  p.channels = 12;
  p.grids = 386;
  p.num_wires = 573;
  p.seed = 0x4D4443ULL;  // "MDC"
  p.clusters = 30;
  // The paper measured better locality for MDC (0.91 vs 1.21 mean owner
  // distance); shorter local spans reproduce that ordering.
  p.global_fraction = 0.10;
  p.local_span_mean = 14.0;
  return generate_circuit(p);
}

Circuit make_industrial_like() {
  GeneratorParams p;
  p.name = "industrial-like";
  p.channels = 18;
  p.grids = 900;
  p.num_wires = 2000;
  p.seed = 0x1D05781AULL;
  p.clusters = 64;
  p.global_fraction = 0.10;
  p.local_span_mean = 20.0;
  return generate_circuit(p);
}

Circuit make_tiny_test_circuit(std::uint64_t seed) {
  GeneratorParams p;
  p.name = "tiny";
  p.channels = 4;
  p.grids = 32;
  p.num_wires = 24;
  p.seed = seed;
  p.clusters = 4;
  p.local_span_mean = 6.0;
  p.max_pins = 4;
  return generate_circuit(p);
}

}  // namespace locus
