// Descriptive statistics over a circuit's netlist, used by the examples and
// by tests that assert the synthetic generators have the intended character
// (short-wire-heavy length distribution with a long tail, pin-count mix).
#pragma once

#include <cstdint>
#include <string>

#include "circuit/circuit.hpp"

namespace locus {

struct CircuitStats {
  std::int32_t num_wires = 0;
  std::int64_t total_pins = 0;
  double mean_pins = 0.0;
  std::int32_t max_pins = 0;

  std::int64_t total_length_cost = 0;  ///< sum of Wire::length_cost()
  double mean_length_cost = 0.0;
  std::int64_t median_length_cost = 0;
  std::int64_t max_length_cost = 0;

  /// Number of wires whose length cost is below / at-or-above the threshold
  /// (matches the ThresholdCost = 30 split used throughout the paper).
  std::int32_t wires_below_30 = 0;
  std::int32_t wires_at_or_above_30 = 0;
};

CircuitStats compute_stats(const Circuit& circuit);

/// Human-readable one-paragraph summary.
std::string describe(const Circuit& circuit);

}  // namespace locus
