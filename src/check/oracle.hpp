// Differential oracle: run the sequential reference, the shared memory
// router, and the message passing router (all four update transaction
// types, blocking and non-blocking receivers) on the SAME circuit and
// cross-check the results.
//
// The implementations legitimately differ — stale views change which paths
// get picked — so quality metrics are compared within tolerance bands
// around the sequential baseline rather than for equality. What must hold
// exactly: every routing is legal (check/legality.hpp), and every message
// passing run satisfies the view-consistency conservation law at every
// checkpoint (check/consistency.hpp). With an all-zero FaultPlan the oracle
// must pass everywhere; with injected faults it is the detector whose
// verdicts the fault-injection tests assert on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/consistency.hpp"
#include "check/legality.hpp"
#include "circuit/circuit.hpp"
#include "msg/transport.hpp"
#include "route/cost_model.hpp"
#include "route/router.hpp"
#include "sim/fault.hpp"
#include "sim/link_cost.hpp"
#include "sim/topology.hpp"

namespace locus {

struct OracleConfig {
  std::int32_t procs = 4;
  std::int32_t iterations = 2;
  RouterParams router;
  TimeModel time;
  /// Quality bands, relative to the sequential baseline: a variant passes
  /// when  value <= base * (1 + rel) + abs.  Parallel quality degrades with
  /// staleness (paper §5.1) but must stay in the same league.
  double height_rel = 0.35;
  std::int64_t height_abs = 2;
  double occupancy_rel = 2.0;
  std::int64_t occupancy_abs = 100;
  /// Conservation checkpoint period (routed wires) for the mp runs.
  std::int32_t checkpoint_period = 4;
  /// Optional fault plan installed into the message passing machines (the
  /// sequential and shm runs have no network to fault).
  const FaultPlan* faults = nullptr;
  /// Reliable transport for the message passing machines (default-off).
  /// With transport on, a faulted oracle run must pass: recovery restores
  /// the exact fault-free views the consistency law expects.
  TransportConfig transport;
  /// Interconnect shape and per-link timing for the message passing
  /// machines. The conservation law is timing-independent, so the oracle
  /// must pass under every cost model x topology pair (the network test
  /// battery sweeps exactly that).
  Topology::Edges edges = Topology::Edges::kMesh;
  std::int32_t fat_tree_arity = 2;
  LinkCostParams link_cost;
  /// Worker threads for the engine x schedule matrix (the six runs are
  /// independent simulations). <= 0 resolves via sim_threads(); any value
  /// yields byte-identical results — the matrix is collected in submission
  /// order and each run is deterministic in isolation.
  int threads = 0;
};

/// One implementation's outcome and verdicts.
struct OracleVariant {
  std::string name;
  std::int64_t circuit_height = 0;
  std::int64_t occupancy_factor = 0;
  LegalityReport legality;
  bool height_in_band = false;
  bool occupancy_in_band = false;
  /// Message passing runs carry their consistency report; other variants
  /// hold a default (vacuously consistent, converged unset) report.
  ConsistencyReport consistency;
  bool is_message_passing = false;

  bool ok() const {
    return legality.legal() && height_in_band && occupancy_in_band &&
           consistency.consistent() &&
           (!is_message_passing || consistency.converged());
  }
};

struct OracleResult {
  std::int64_t seq_height = 0;
  std::int64_t seq_occupancy = 0;
  std::vector<OracleVariant> variants;

  bool all_ok() const {
    for (const OracleVariant& v : variants) {
      if (!v.ok()) return false;
    }
    return true;
  }
  /// One-line verdict summary ("seq h=12 | shm OK | msg sender(10,5) OK ...").
  std::string describe() const;
};

/// Runs every implementation on `circuit` and cross-checks. Deterministic.
OracleResult run_differential_oracle(const Circuit& circuit,
                                     const OracleConfig& config);

}  // namespace locus
