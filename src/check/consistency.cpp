#include "check/consistency.hpp"

#include "grid/cost_array.hpp"
#include "msg/node.hpp"
#include "msg/packets.hpp"
#include "support/assert.hpp"

namespace locus {

namespace {

/// Content key of a delta packet: the owner region, bbox, and values fully
/// identify what on_delta_applied will later observe.
std::string packet_key(ProcId region, const Rect& bbox,
                       std::span<const std::int32_t> values) {
  std::string key;
  key.reserve(20 + values.size() * 4);
  const auto append_i32 = [&key](std::int32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      key.push_back(static_cast<char>((static_cast<std::uint32_t>(v) >> shift) & 0xFF));
    }
  };
  append_i32(region);
  append_i32(bbox.channel_lo);
  append_i32(bbox.channel_hi);
  append_i32(bbox.x_lo);
  append_i32(bbox.x_hi);
  for (std::int32_t v : values) append_i32(v);
  return key;
}

}  // namespace

void ViewConsistencyChecker::on_run_start(const MpRunView& run) {
  LOCUS_ASSERT(run.partition != nullptr && run.truth != nullptr);
  LOCUS_ASSERT(static_cast<std::int32_t>(run.nodes.size()) ==
               run.partition->num_regions());
  run_ = run;
  inflight_.assign(static_cast<std::size_t>(run.truth->size()), 0);
  outstanding_.clear();
  wires_routed_ = 0;
  report_ = ConsistencyReport{};
}

void ViewConsistencyChecker::on_delta_sent(ProcId from, ProcId region,
                                           const Rect& bbox,
                                           std::span<const std::int32_t> values) {
  ++report_.deltas_sent;
  std::size_t i = 0;
  for (std::int32_t c = bbox.channel_lo; c <= bbox.channel_hi; ++c) {
    for (std::int32_t x = bbox.x_lo; x <= bbox.x_hi; ++x, ++i) {
      inflight_[static_cast<std::size_t>(run_.truth->index(GridPoint{c, x}))] +=
          values[i];
    }
  }
  ++outstanding_[packet_key(region, bbox, values)];
  if (options_.roundtrip_codec) {
    WirePacket packet;
    packet.type = kMsgSendRmtData;
    packet.region = region;
    packet.bbox = bbox;
    packet.absolute = false;
    packet.values.assign(values.begin(), values.end());
    ++report_.codec_roundtrips;
    const auto bytes = encode_packet(packet);
    std::optional<WirePacket> back;
    if (bytes.has_value()) back = decode_packet(*bytes);
    if (!back.has_value() || *back != packet) ++report_.codec_mismatches;
  }
  static_cast<void>(from);
}

void ViewConsistencyChecker::on_delta_applied(ProcId owner, const Rect& bbox,
                                              std::span<const std::int32_t> values) {
  ++report_.deltas_applied;
  std::size_t i = 0;
  for (std::int32_t c = bbox.channel_lo; c <= bbox.channel_hi; ++c) {
    for (std::int32_t x = bbox.x_lo; x <= bbox.x_hi; ++x, ++i) {
      inflight_[static_cast<std::size_t>(run_.truth->index(GridPoint{c, x}))] -=
          values[i];
    }
  }
  // Deltas are addressed to the owner of their region, so the applied
  // (owner, bbox, values) triple must match a sent packet. A miss means the
  // network delivered something twice — the per-cell books still balance
  // then (extra view increment and extra inflight decrement cancel), which
  // is exactly why the ledger check exists.
  auto it = outstanding_.find(packet_key(owner, bbox, values));
  if (it == outstanding_.end() || it->second <= 0) {
    ++report_.unmatched_applies;
    record(ConsistencyViolation{wires_routed_,
                                GridPoint{bbox.channel_lo, bbox.x_lo}, owner,
                                /*truth=*/0, /*accounted=*/0});
  } else if (--it->second == 0) {
    outstanding_.erase(it);
  }
}

void ViewConsistencyChecker::on_wire_routed(ProcId proc, WireId wire,
                                            std::int32_t iteration) {
  static_cast<void>(proc);
  static_cast<void>(wire);
  static_cast<void>(iteration);
  ++wires_routed_;
  if (options_.checkpoint_period > 0 &&
      wires_routed_ % options_.checkpoint_period == 0) {
    check_conservation();
  }
}

void ViewConsistencyChecker::on_run_end(const MpRunView& run) {
  static_cast<void>(run);
  report_.run_ended = true;
  check_conservation();
  for (std::int64_t v : inflight_) {
    if (v != 0) {
      ++report_.final_inflight_cells;
      report_.final_inflight_sum += v < 0 ? -v : v;
    }
  }
  for (const auto& [key, count] : outstanding_) {
    report_.final_outstanding_packets += count;
  }
}

void ViewConsistencyChecker::check_conservation() {
  ++report_.checkpoints;
  const Partition& partition = *run_.partition;
  const CostArray& truth = *run_.truth;
  for (ProcId owner = 0; owner < partition.num_regions(); ++owner) {
    const Rect& region = partition.region(owner);
    const GridBacking& view = run_.nodes[static_cast<std::size_t>(owner)]->view();
    for (std::int32_t c = region.channel_lo; c <= region.channel_hi; ++c) {
      for (std::int32_t x = region.x_lo; x <= region.x_hi; ++x) {
        const GridPoint q{c, x};
        ++report_.cells_checked;
        std::int64_t accounted = view.at(q);
        for (ProcId r = 0; r < partition.num_regions(); ++r) {
          if (r == owner) continue;
          accounted += run_.nodes[static_cast<std::size_t>(r)]->delta().at(q);
        }
        accounted += inflight_[static_cast<std::size_t>(truth.index(q))];
        if (accounted != truth.at(q)) {
          ++report_.violations;
          record(ConsistencyViolation{wires_routed_, q, owner, truth.at(q),
                                      accounted});
        }
      }
    }
  }
}

void ViewConsistencyChecker::record(const ConsistencyViolation& violation) {
  if (report_.samples.size() < options_.max_samples) {
    report_.samples.push_back(violation);
  }
}

}  // namespace locus
