// Trace invariant scanner for the shared memory router.
//
// The shm implementation follows the paper in running *unlocked*: all
// processors hit one cost array with no mutual exclusion, accepting the
// quality noise. This scanner replays the recorded reference trace
// (shm/trace.hpp) in time order and counts, per cache line, every pair of
// consecutive accesses by *different* processors where at least one is a
// write — the unsynchronized write-write / write-read / read-write sharing
// the design tolerates. The output is a histogram over lines (log2 buckets
// of per-line conflict counts) plus the hottest lines, quantifying how much
// silent contention a run actually produced and where it concentrates.
#pragma once

#include <cstdint>
#include <vector>

#include "shm/trace.hpp"

namespace locus {

struct TraceScanOptions {
  std::int32_t line_bytes = 16;  ///< coherence line size the scan models
  std::size_t top_lines = 8;     ///< hottest lines reported individually
};

/// Conflict counts of one cache line.
struct LineConflicts {
  std::uint32_t line = 0;  ///< line index (byte address / line_bytes)
  std::int64_t ww = 0;     ///< write followed by another proc's write
  std::int64_t wr = 0;     ///< write followed by another proc's read
  std::int64_t rw = 0;     ///< read followed by another proc's write

  std::int64_t total() const { return ww + wr + rw; }
};

struct TraceScanReport {
  std::int64_t refs = 0;
  std::int64_t lines_touched = 0;
  std::int64_t lines_with_conflicts = 0;
  std::int64_t ww = 0;
  std::int64_t wr = 0;
  std::int64_t rw = 0;

  /// histogram[b] = number of lines whose conflict count c satisfies
  /// 2^b <= c < 2^(b+1) (bucket 0 holds c == 1).
  std::vector<std::int64_t> histogram;
  /// The `top_lines` lines with the most conflicts, descending.
  std::vector<LineConflicts> hottest;

  std::int64_t conflicts() const { return ww + wr + rw; }
};

/// Scans `trace` (sorted by time internally; the input is not modified)
/// against the given line size. Deterministic.
TraceScanReport scan_trace_conflicts(const RefTrace& trace,
                                     TraceScanOptions options = {});

}  // namespace locus
