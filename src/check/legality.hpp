// Route legality: independent re-verification that a committed routing is a
// valid solution for its circuit. Used by the differential oracle on every
// implementation's output — the implementations share the router core, so
// the checks here deliberately re-derive everything from the raw geometry
// instead of trusting WireRouter's invariants.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "route/router.hpp"

namespace locus {

struct LegalityIssue {
  WireId wire = -1;
  std::string what;
};

struct LegalityReport {
  std::int64_t wires_checked = 0;
  std::int64_t cells_checked = 0;
  std::vector<LegalityIssue> issues;

  bool legal() const { return issues.empty(); }
};

/// Checks every wire's committed route:
///   * the route exists and its id matches its slot;
///   * every covered cell lies inside the circuit's cost-array bounds;
///   * each connection is a connected chain of axis-aligned segments;
///   * every pin is reached in its channel above or below at the pin's x;
///   * `cells` is exactly the sorted deduplicated union of the connections.
LegalityReport check_route_legality(const Circuit& circuit,
                                    std::span<const WireRoute> routes);

}  // namespace locus
