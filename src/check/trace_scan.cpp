#include "check/trace_scan.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/assert.hpp"

namespace locus {

TraceScanReport scan_trace_conflicts(const RefTrace& trace,
                                     TraceScanOptions options) {
  LOCUS_ASSERT(options.line_bytes > 0);
  TraceScanReport report;
  report.refs = static_cast<std::int64_t>(trace.size());

  // The trace may arrive unsorted (the executor emits per-processor runs);
  // replay needs the global time order the coherence simulator also uses.
  std::vector<MemRef> refs = trace.refs();
  std::stable_sort(refs.begin(), refs.end(),
                   [](const MemRef& a, const MemRef& b) { return a.time < b.time; });

  struct LineState {
    std::int16_t last_proc = -1;
    MemOp last_op = MemOp::kRead;
    LineConflicts conflicts;
  };
  std::unordered_map<std::uint32_t, LineState> lines;
  lines.reserve(1024);

  for (const MemRef& ref : refs) {
    const auto line = ref.addr / static_cast<std::uint32_t>(options.line_bytes);
    LineState& state = lines[line];
    state.conflicts.line = line;
    if (state.last_proc >= 0 && state.last_proc != ref.proc) {
      const bool prev_write = state.last_op == MemOp::kWrite;
      const bool cur_write = ref.op == MemOp::kWrite;
      if (prev_write && cur_write) {
        ++state.conflicts.ww;
        ++report.ww;
      } else if (prev_write) {
        ++state.conflicts.wr;
        ++report.wr;
      } else if (cur_write) {
        ++state.conflicts.rw;
        ++report.rw;
      }
    }
    state.last_proc = ref.proc;
    state.last_op = ref.op;
  }

  report.lines_touched = static_cast<std::int64_t>(lines.size());
  std::vector<LineConflicts> conflicted;
  for (const auto& [line, state] : lines) {
    const std::int64_t total = state.conflicts.total();
    if (total == 0) continue;
    ++report.lines_with_conflicts;
    conflicted.push_back(state.conflicts);
    std::size_t bucket = 0;
    while ((std::int64_t{2} << bucket) <= total) ++bucket;
    if (report.histogram.size() <= bucket) report.histogram.resize(bucket + 1, 0);
    ++report.histogram[bucket];
  }

  std::sort(conflicted.begin(), conflicted.end(),
            [](const LineConflicts& a, const LineConflicts& b) {
              if (a.total() != b.total()) return a.total() > b.total();
              return a.line < b.line;
            });
  if (conflicted.size() > options.top_lines) conflicted.resize(options.top_lines);
  report.hottest = std::move(conflicted);
  return report;
}

}  // namespace locus
