// View-consistency checking for the message passing router.
//
// The checker rides along a run as an MpObserver and maintains an external
// ledger of every delta handed to the network ("in flight"). At configurable
// checkpoints (every N routed wires) it asserts the conservation law
//
//     truth(q) == view_owner(q) + sum_{r != owner} delta_r(q) + inflight(q)
//
// for every cost-array cell q: the true occupancy of a cell equals what its
// owner believes, plus every remote processor's not-yet-propagated delta,
// plus deltas on the wire. In a fault-free run this holds at every
// inter-event instant of the sequential DES; each fault class leaves a
// distinct signature:
//   * dropped SendRmtData  -> inflight(q) stays nonzero forever, reported
//     as non-convergence at run end;
//   * duplicated SendRmtData -> the second application finds no matching
//     outstanding packet in the send ledger, flagged immediately (the
//     per-cell equality alone cannot see a duplicate: the extra view
//     increment and the extra inflight decrement cancel);
//   * delayed / reordered packets -> no violation: the law is closed under
//     any delivery schedule, which is itself a useful meta-check.
// Every observed delta is additionally round-tripped through the byte-level
// wire codec (msg/packets.hpp) so the on-wire format stays honest.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geom/partition.hpp"
#include "geom/point.hpp"
#include "msg/observer.hpp"

namespace locus {

struct ConsistencyOptions {
  /// Run the full conservation check every N routed wires (0: only at run
  /// end). Each check scans the whole array, so small circuits can afford 1.
  std::int32_t checkpoint_period = 1;
  /// Encode + decode every observed delta through the wire codec and compare.
  bool roundtrip_codec = true;
  /// Cap on recorded violation samples (counters keep exact totals).
  std::size_t max_samples = 16;
};

/// One cell whose books did not balance at a checkpoint.
struct ConsistencyViolation {
  std::int64_t checkpoint = 0;  ///< routed-wire count when detected
  GridPoint cell;
  ProcId owner = -1;
  std::int64_t truth = 0;
  std::int64_t accounted = 0;  ///< owner view + pending deltas + inflight
};

struct ConsistencyReport {
  std::int64_t checkpoints = 0;
  std::int64_t cells_checked = 0;
  std::int64_t violations = 0;            ///< cells failing the equality
  std::int64_t unmatched_applies = 0;     ///< duplicate-delivery detections
  std::vector<ConsistencyViolation> samples;

  std::int64_t deltas_sent = 0;
  std::int64_t deltas_applied = 0;
  std::int64_t final_inflight_cells = 0;  ///< cells with inflight != 0 at end
  std::int64_t final_inflight_sum = 0;    ///< sum of |inflight| at end
  std::int64_t final_outstanding_packets = 0;  ///< sent but never applied

  std::int64_t codec_roundtrips = 0;
  std::int64_t codec_mismatches = 0;

  bool run_ended = false;

  /// The conservation law held at every checkpoint and no duplicate was seen.
  bool consistent() const {
    return violations == 0 && unmatched_applies == 0 && codec_mismatches == 0;
  }
  /// The run drained with every sent delta accounted for at its owner.
  bool converged() const {
    return run_ended && consistent() && final_inflight_cells == 0 &&
           final_outstanding_packets == 0;
  }
};

class ViewConsistencyChecker final : public MpObserver {
 public:
  explicit ViewConsistencyChecker(ConsistencyOptions options = {})
      : options_(options) {}

  void on_run_start(const MpRunView& run) override;
  void on_delta_sent(ProcId from, ProcId region, const Rect& bbox,
                     std::span<const std::int32_t> values) override;
  void on_delta_applied(ProcId owner, const Rect& bbox,
                        std::span<const std::int32_t> values) override;
  void on_wire_routed(ProcId proc, WireId wire, std::int32_t iteration) override;
  void on_run_end(const MpRunView& run) override;

  const ConsistencyReport& report() const { return report_; }

 private:
  void check_conservation();
  void record(const ConsistencyViolation& violation);

  ConsistencyOptions options_;
  ConsistencyReport report_;
  MpRunView run_;                       ///< valid between run start and end
  std::vector<std::int64_t> inflight_;  ///< per cell, row-major like truth
  /// Outstanding sent-but-not-applied packets, keyed by serialized content.
  /// An apply that finds no outstanding match is a duplicated delivery.
  std::unordered_map<std::string, std::int64_t> outstanding_;
  std::int64_t wires_routed_ = 0;
};

}  // namespace locus
