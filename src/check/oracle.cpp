#include "check/oracle.hpp"

#include <memory>
#include <optional>
#include <utility>

#include "harness/sim_pool.hpp"
#include "msg/driver.hpp"
#include "route/sequential.hpp"
#include "shm/shm_router.hpp"
#include "support/assert.hpp"

namespace locus {

namespace {

bool in_band(std::int64_t value, std::int64_t base, double rel, std::int64_t abs) {
  return static_cast<double>(value) <=
         static_cast<double>(base) * (1.0 + rel) + static_cast<double>(abs);
}

void apply_bands(OracleVariant& variant, const OracleConfig& config,
                 std::int64_t seq_height, std::int64_t seq_occupancy) {
  variant.height_in_band = in_band(variant.circuit_height, seq_height,
                                   config.height_rel, config.height_abs);
  variant.occupancy_in_band =
      in_band(variant.occupancy_factor, seq_occupancy, config.occupancy_rel,
              config.occupancy_abs);
}

}  // namespace

std::string OracleResult::describe() const {
  std::string out = "seq h=" + std::to_string(seq_height) +
                    " occ=" + std::to_string(seq_occupancy);
  for (const OracleVariant& v : variants) {
    out += " | " + v.name + (v.ok() ? " OK" : " FAIL");
    if (!v.ok()) {
      if (!v.legality.legal()) out += " illegal";
      if (!v.height_in_band) out += " height=" + std::to_string(v.circuit_height);
      if (!v.occupancy_in_band) {
        out += " occ=" + std::to_string(v.occupancy_factor);
      }
      if (!v.consistency.consistent()) {
        out += " violations=" + std::to_string(v.consistency.violations +
                                               v.consistency.unmatched_applies);
      }
      if (v.is_message_passing && !v.consistency.converged()) {
        out += " inflight=" + std::to_string(v.consistency.final_inflight_cells);
      }
    }
  }
  return out;
}

OracleResult run_differential_oracle(const Circuit& circuit,
                                     const OracleConfig& config) {
  // The engine x schedule matrix: every variant is an independent,
  // deterministic simulation, so the six runs execute on the SimPool and
  // are collected in this fixed submission order. The tolerance bands
  // depend on the sequential baseline and are applied after the join.
  struct MsgCase {
    const char* name;
    UpdateSchedule schedule;
  };
  UpdateSchedule mixed;
  mixed.send_loc_period = 10;
  mixed.send_rmt_period = 5;
  mixed.req_rmt_touches = 3;
  mixed.req_loc_requests = 2;
  const MsgCase cases[] = {
      {"msg sender(10,5)", UpdateSchedule::sender(10, 5)},
      {"msg receiver(5,2)", UpdateSchedule::receiver(5, 2, /*blocking=*/false)},
      {"msg receiver-blk(5,2)", UpdateSchedule::receiver(5, 2, /*blocking=*/true)},
      {"msg mixed", mixed},
  };

  // Job 0: the sequential reference (also the bands' baseline).
  std::optional<SequentialResult> seq;
  // Job 1: the shared memory router.
  std::optional<ShmRunResult> shm_run;
  // Jobs 2..5: the four message passing schedules, each with its own
  // view-consistency checker (the checker is per-run mutable state).
  struct MsgOutcome {
    std::optional<MpRunResult> run;
    std::unique_ptr<ViewConsistencyChecker> checker;
  };
  MsgOutcome msg[4];

  std::vector<SimJob> jobs;
  jobs.push_back({"oracle:sequential", [&] {
    SequentialParams seq_params;
    seq_params.router = config.router;
    seq_params.iterations = config.iterations;
    seq.emplace(route_sequential(circuit, seq_params));
  }});
  jobs.push_back({"oracle:shm", [&] {
    ShmConfig shm;
    shm.router = config.router;
    shm.time = config.time;
    shm.iterations = config.iterations;
    shm.procs = config.procs;
    shm.capture_trace = false;
    shm_run.emplace(run_shared_memory(circuit, shm));
  }});
  for (std::size_t i = 0; i < 4; ++i) {
    jobs.push_back({std::string("oracle:") + cases[i].name, [&, i] {
      ConsistencyOptions check_options;
      check_options.checkpoint_period = config.checkpoint_period;
      auto checker = std::make_unique<ViewConsistencyChecker>(check_options);

      MpConfig mp;
      mp.schedule = cases[i].schedule;
      mp.router = config.router;
      mp.time = config.time;
      mp.iterations = config.iterations;
      mp.faults = config.faults;
      mp.transport = config.transport;
      mp.edges = config.edges;
      mp.fat_tree_arity = config.fat_tree_arity;
      mp.link_cost = config.link_cost;
      mp.observer = checker.get();
      msg[i].run.emplace(run_message_passing(circuit, config.procs, mp));
      msg[i].checker = std::move(checker);
    }});
  }
  SimPool(config.threads).run_all(std::move(jobs));

  OracleResult result;
  result.seq_height = seq->circuit_height;
  result.seq_occupancy = seq->occupancy_factor;

  {
    OracleVariant variant;
    variant.name = "sequential";
    variant.circuit_height = seq->circuit_height;
    variant.occupancy_factor = seq->occupancy_factor;
    variant.legality = check_route_legality(circuit, seq->routes);
    apply_bands(variant, config, result.seq_height, result.seq_occupancy);
    result.variants.push_back(std::move(variant));
  }
  {
    OracleVariant variant;
    variant.name = "shm";
    variant.circuit_height = shm_run->circuit_height;
    variant.occupancy_factor = shm_run->occupancy_factor;
    variant.legality = check_route_legality(circuit, shm_run->routes);
    apply_bands(variant, config, result.seq_height, result.seq_occupancy);
    result.variants.push_back(std::move(variant));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    OracleVariant variant;
    variant.name = cases[i].name;
    variant.is_message_passing = true;
    variant.circuit_height = msg[i].run->circuit_height;
    variant.occupancy_factor = msg[i].run->occupancy_factor;
    variant.legality = check_route_legality(circuit, msg[i].run->routes);
    variant.consistency = msg[i].checker->report();
    apply_bands(variant, config, result.seq_height, result.seq_occupancy);
    result.variants.push_back(std::move(variant));
  }
  return result;
}

}  // namespace locus
