#include "check/legality.hpp"

#include <algorithm>

#include "route/path.hpp"

namespace locus {

namespace {

bool in_bounds(const Circuit& circuit, GridPoint p) {
  return p.channel >= 0 && p.channel < circuit.channels() && p.x >= 0 &&
         p.x < circuit.grids();
}

bool axis_aligned(const Segment& seg) {
  return seg.from.channel == seg.to.channel || seg.from.x == seg.to.x;
}

bool covers(const std::vector<GridPoint>& sorted_cells, GridPoint p) {
  return std::binary_search(sorted_cells.begin(), sorted_cells.end(), p);
}

}  // namespace

LegalityReport check_route_legality(const Circuit& circuit,
                                    std::span<const WireRoute> routes) {
  LegalityReport report;
  for (WireId id = 0; id < circuit.num_wires(); ++id) {
    ++report.wires_checked;
    const Wire& wire = circuit.wire(id);
    if (static_cast<std::size_t>(id) >= routes.size() ||
        !routes[static_cast<std::size_t>(id)].routed()) {
      report.issues.push_back({id, "wire has no committed route"});
      continue;
    }
    const WireRoute& route = routes[static_cast<std::size_t>(id)];
    if (route.wire != id) {
      report.issues.push_back({id, "route slot holds a different wire id"});
      continue;
    }

    bool geometry_ok = true;
    for (const Route& connection : route.connections) {
      const auto& segments = connection.segments();
      for (std::size_t s = 0; s < segments.size(); ++s) {
        if (!axis_aligned(segments[s])) {
          report.issues.push_back({id, "segment is not axis-aligned"});
          geometry_ok = false;
        }
        if (s > 0 && segments[s - 1].to != segments[s].from) {
          report.issues.push_back({id, "segment chain is disconnected"});
          geometry_ok = false;
        }
      }
    }
    if (!geometry_ok) continue;

    for (const GridPoint& p : route.cells) {
      ++report.cells_checked;
      if (!in_bounds(circuit, p)) {
        report.issues.push_back({id, "committed cell outside the cost array"});
        geometry_ok = false;
        break;
      }
    }
    if (!geometry_ok) continue;

    // The committed cells must be exactly the union of the connections'
    // covered cells (sorted, deduplicated) — anything else means commit and
    // rip-up would not cancel.
    const std::vector<GridPoint> expected = collect_unique_cells(route.connections);
    if (expected != route.cells) {
      report.issues.push_back({id, "cells differ from the connection union"});
      continue;
    }

    // Sorted cells (verified against collect_unique_cells above) allow a
    // binary-search pin coverage test.
    for (const Pin& pin : wire.pins) {
      const GridPoint above{pin.channel_above(), pin.x};
      const GridPoint below{pin.channel_below(), pin.x};
      if (!covers(route.cells, above) && !covers(route.cells, below)) {
        report.issues.push_back({id, "pin not reached in either channel"});
        break;
      }
    }
  }
  return report;
}

}  // namespace locus
