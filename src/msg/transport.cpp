#include "msg/transport.hpp"

#include <algorithm>

#include "msg/packets.hpp"
#include "support/assert.hpp"

namespace locus {

namespace {

// Event operand packing. `a` carries the wire direction and sequence number
// (src and dst fit 16 bits each; the ctor asserts the machine is small
// enough); `b` carries per-event payload: the attempt number for timers, the
// scheduled deadline for delayed acks, and flags<<32 | ack for arrivals
// (flag bit 0: retransmit copy, bit 1: standalone ack).
constexpr std::uint64_t kFlagRetx = 1;
constexpr std::uint64_t kFlagAckOnly = 2;

std::uint64_t pack_dir(ProcId src, ProcId dst, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(src)) << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint16_t>(dst)) << 32) |
         seq;
}

ProcId unpack_src(std::uint64_t a) {
  return static_cast<ProcId>((a >> 48) & 0xFFFF);
}
ProcId unpack_dst(std::uint64_t a) {
  return static_cast<ProcId>((a >> 32) & 0xFFFF);
}
std::uint32_t unpack_seq(std::uint64_t a) {
  return static_cast<std::uint32_t>(a);
}

}  // namespace

// --- TransportChannel ----------------------------------------------------

std::uint32_t TransportChannel::begin_send(std::int32_t type,
                                           std::int32_t wire_bytes,
                                           SimTime nominal, SimTime timeout_at) {
  Unacked entry;
  entry.seq = next_seq_++;
  entry.type = type;
  entry.wire_bytes = wire_bytes;
  entry.nominal = nominal;
  entry.next_timeout = timeout_at;
  entry.attempts = 1;
  unacked_.push_back(entry);
  return entry.seq;
}

std::uint32_t TransportChannel::on_ack(std::uint32_t ack) {
  std::uint32_t retired = 0;
  // Cumulative: everything at or below `ack` is confirmed received. Entries
  // sit in ascending seq order, but a give-up may have punched a hole, so
  // scan from the front rather than assuming a contiguous prefix.
  while (!unacked_.empty() && unacked_.front().seq <= ack) {
    unacked_.pop_front();
    ++retired;
  }
  highest_acked_ = std::max(highest_acked_, ack);
  return retired;
}

TransportChannel::TimeoutVerdict TransportChannel::on_timeout(
    std::uint32_t seq, std::int32_t attempt, SimTime now,
    const TransportConfig& config) {
  TimeoutVerdict verdict;
  auto it = unacked_.begin();
  while (it != unacked_.end() && it->seq != seq) ++it;
  if (it == unacked_.end()) return verdict;   // already acked (or given up)
  if (it->attempts != attempt) return verdict;  // a newer attempt superseded
  if (it->attempts >= config.max_attempts) {
    verdict.gave_up = true;
    unacked_.erase(it);
    return verdict;
  }
  ++it->attempts;
  const std::int32_t exp =
      std::min(it->attempts - 1, config.max_backoff_exp);
  double scale = 1.0;
  for (std::int32_t i = 0; i < exp; ++i) scale *= config.backoff;
  it->next_timeout = now + static_cast<SimTime>(
                               static_cast<double>(config.rto_ns) * scale);
  verdict.retransmit = true;
  verdict.entry = *it;
  return verdict;
}

const TransportChannel::Unacked* TransportChannel::find_unacked(
    std::uint32_t seq) const {
  for (const Unacked& e : unacked_) {
    if (e.seq == seq) return &e;
  }
  return nullptr;
}

TransportChannel::Arrival TransportChannel::on_arrival(std::uint32_t seq,
                                                       bool* out_of_order,
                                                       std::uint32_t* released) {
  if (out_of_order != nullptr) *out_of_order = false;
  if (released != nullptr) *released = 0;
  if (seq <= rcv_cum_) return Arrival::kDuplicate;
  if (seq == rcv_cum_ + 1) {
    ++rcv_cum_;
    ++delivered_unique_;
    std::uint32_t advanced = 1;
    // Drain any buffered run the gap was holding back.
    auto it = ahead_.begin();
    while (it != ahead_.end() && *it == rcv_cum_ + 1) {
      ++rcv_cum_;
      ++advanced;
      it = ahead_.erase(it);
    }
    if (released != nullptr) *released = advanced;
    return Arrival::kNew;
  }
  // Ahead of a gap: buffer the first copy, discard repeats.
  if (!ahead_.insert(seq).second) return Arrival::kDuplicate;
  ++delivered_unique_;
  if (out_of_order != nullptr) *out_of_order = true;
  return Arrival::kNew;
}

// --- ReliableTransport ---------------------------------------------------

ReliableTransport::ReliableTransport(const TransportConfig& config,
                                     Network& network, EventQueue& queue,
                                     FaultInjector* injector)
    : config_(config),
      network_(network),
      queue_(queue),
      injector_(injector),
      procs_(network.topology().num_nodes()) {
  LOCUS_ASSERT(config_.enabled);
  LOCUS_ASSERT(config_.window > 0 && config_.rto_ns > 0);
  LOCUS_ASSERT(config_.backoff >= 1.0 && config_.max_backoff_exp >= 0);
  LOCUS_ASSERT(config_.max_attempts >= 1 && config_.ack_every >= 1);
  LOCUS_ASSERT(procs_ > 0 && procs_ < (1 << 16));  // pack_dir uses 16 bits
  channels_.resize(static_cast<std::size_t>(procs_) *
                   static_cast<std::size_t>(procs_));
  h_arrival_ = queue_.add_handler(&ReliableTransport::on_arrival_event, this);
  h_timer_ = queue_.add_handler(&ReliableTransport::on_timer_event, this);
  h_ack_due_ = queue_.add_handler(&ReliableTransport::on_ack_due_event, this);
}

std::int32_t ReliableTransport::frame_bytes() const {
  return kTransportFrameBytes;
}

std::size_t ReliableTransport::channel_index(ProcId src, ProcId dst) const {
  LOCUS_ASSERT(src >= 0 && src < procs_ && dst >= 0 && dst < procs_);
  return static_cast<std::size_t>(src) * static_cast<std::size_t>(procs_) +
         static_cast<std::size_t>(dst);
}

TransportChannel& ReliableTransport::channel(ProcId src, ProcId dst) {
  return channels_[channel_index(src, dst)];
}

void ReliableTransport::on_wire(const Packet& packet, SimTime nominal,
                                FaultInjector::Action action) {
  const ProcId src = packet.src;
  const ProcId dst = packet.dst;
  TransportChannel& ch = channel(src, dst);
  ++stats_.data_packets;
  if (ch.window_full(config_.window)) ++stats_.window_stalls;
  const std::int32_t wire_bytes = packet.bytes + kTransportFrameBytes;
  const std::uint32_t seq = ch.begin_send(packet.type, wire_bytes, nominal,
                                          nominal + config_.rto_ns);
  stats_.peak_window = std::max(stats_.peak_window, ch.in_flight());
  // Piggyback the reverse direction's cumulative ack and cancel any standalone
  // ack it was waiting to send — this frame carries it for free.
  TransportChannel& rev = channel(dst, src);
  const std::uint32_t ack = rev.rcv_cum();
  rev.pending_data = 0;
  rev.ack_due_at = -1;
  queue_.schedule(nominal + config_.rto_ns, h_timer_, pack_dir(src, dst, seq),
                  /*attempt=*/1);
  route_attempt(src, dst, seq, ack, action, nominal, /*is_retx=*/false,
                /*ack_only=*/false);
}

void ReliableTransport::route_attempt(ProcId src, ProcId dst,
                                      std::uint32_t seq, std::uint32_t ack,
                                      FaultInjector::Action action,
                                      SimTime nominal, bool is_retx,
                                      bool ack_only) {
  std::uint64_t flags = (is_retx ? kFlagRetx : 0) | (ack_only ? kFlagAckOnly : 0);
  const std::uint64_t a = pack_dir(src, dst, seq);
  const std::uint64_t b = (flags << 32) | ack;
  switch (action) {
    case FaultInjector::Action::kDeliver:
      queue_.schedule(nominal, h_arrival_, a, b);
      break;
    case FaultInjector::Action::kDrop:
      if (ack_only) {
        ++stats_.ack_wire_losses;
      } else {
        ++stats_.wire_losses;
      }
      break;
    case FaultInjector::Action::kDuplicate:
      // Two copies reach the receiver; the dedup path absorbs the second.
      if (!ack_only) ++stats_.dup_wire_copies;
      queue_.schedule(nominal, h_arrival_, a, b);
      queue_.schedule(nominal + network_.params().process_time_ns, h_arrival_,
                      a, b);
      break;
    case FaultInjector::Action::kDelay:
      queue_.schedule(nominal + (injector_ != nullptr
                                     ? injector_->plan().delay_ns
                                     : 0),
                      h_arrival_, a, b);
      break;
    case FaultInjector::Action::kReorder:
      // The network's pairwise hold needs the per-destination held slot; the
      // control plane approximates it with the plan's release fallback, which
      // still lands the copy after later traffic at any realistic rate.
      queue_.schedule(nominal + (injector_ != nullptr
                                     ? injector_->plan().reorder_hold_ns
                                     : 0),
                      h_arrival_, a, b);
      break;
  }
}

void ReliableTransport::on_arrival_event(void* ctx, SimTime now,
                                         std::uint64_t a, std::uint64_t b) {
  auto* self = static_cast<ReliableTransport*>(ctx);
  const ProcId src = unpack_src(a);
  const ProcId dst = unpack_dst(a);
  const std::uint32_t ack = static_cast<std::uint32_t>(b);
  const std::uint64_t flags = b >> 32;
  self->process_ack(src, dst, ack, (flags & kFlagAckOnly) == 0);
  if ((flags & kFlagAckOnly) != 0) return;
  self->handle_data_arrival(now, src, dst, unpack_seq(a));
}

void ReliableTransport::process_ack(ProcId src, ProcId dst, std::uint32_t ack,
                                    bool piggyback) {
  // A frame on the src->dst wire acknowledges data that flowed dst->src.
  TransportChannel& sender = channel(dst, src);
  const std::uint32_t retired = sender.on_ack(ack);
  if (piggyback && retired > 0) ++stats_.piggyback_acks;
}

void ReliableTransport::handle_data_arrival(SimTime now, ProcId src,
                                            ProcId dst, std::uint32_t seq) {
  ++stats_.arrivals;
  TransportChannel& ch = channel(src, dst);
  bool out_of_order = false;
  const TransportChannel::Arrival arrival = ch.on_arrival(seq, &out_of_order);
  if (arrival == TransportChannel::Arrival::kDuplicate) {
    ++stats_.dup_dropped;
  } else {
    ++stats_.delivered;
    if (out_of_order) ++stats_.out_of_order;
    // The unacked entry outlives the arrival (the ack comes later), so the
    // first copy's recovery lag is measurable from the sender's record.
    if (const TransportChannel::Unacked* e = ch.find_unacked(seq)) {
      stats_.max_recovery_lag_ns =
          std::max(stats_.max_recovery_lag_ns, now - e->nominal);
    }
  }
  // Duplicates still owe an ack: a dup usually means the sender missed our
  // previous ack, and re-acking is what stops its retransmit timer.
  note_pending_ack(src, dst, now);
}

void ReliableTransport::note_pending_ack(ProcId src, ProcId dst, SimTime now) {
  TransportChannel& ch = channel(src, dst);
  ++ch.pending_data;
  if (ch.pending_data >= config_.ack_every) {
    send_standalone_ack(src, dst, now);
    return;
  }
  if (ch.ack_due_at < 0) {
    ch.ack_due_at = now + config_.ack_delay_ns;
    queue_.schedule(ch.ack_due_at, h_ack_due_, pack_dir(src, dst, 0),
                    static_cast<std::uint64_t>(ch.ack_due_at));
  }
}

void ReliableTransport::send_standalone_ack(ProcId src, ProcId dst,
                                            SimTime now) {
  // Acknowledges the src->dst data direction, so the ack travels dst->src.
  TransportChannel& ch = channel(src, dst);
  ch.pending_data = 0;
  ch.ack_due_at = -1;
  const std::int32_t bytes = ack_packet_bytes();
  ++stats_.acks_sent;
  stats_.ack_bytes += static_cast<std::uint64_t>(bytes);
  const SimTime nominal =
      network_.charge_control(dst, src, kMsgAck, bytes, now);
  const FaultInjector::Action action =
      injector_ != nullptr ? injector_->packet_action(kMsgAck)
                           : FaultInjector::Action::kDeliver;
  route_attempt(dst, src, 0, ch.rcv_cum(), action, nominal, /*is_retx=*/false,
                /*ack_only=*/true);
}

void ReliableTransport::on_timer_event(void* ctx, SimTime now, std::uint64_t a,
                                       std::uint64_t b) {
  auto* self = static_cast<ReliableTransport*>(ctx);
  const ProcId src = unpack_src(a);
  const ProcId dst = unpack_dst(a);
  const std::uint32_t seq = unpack_seq(a);
  TransportChannel& ch = self->channel(src, dst);
  const TransportChannel::TimeoutVerdict verdict =
      ch.on_timeout(seq, static_cast<std::int32_t>(b), now, self->config_);
  if (verdict.gave_up) {
    ++self->stats_.gave_up;
    return;
  }
  if (!verdict.retransmit) return;  // stale timer: acked or superseded
  ++self->stats_.retransmits;
  self->stats_.retransmit_bytes +=
      static_cast<std::uint64_t>(verdict.entry.wire_bytes);
  // The retransmit frame carries a fresh reverse-direction ack, like any
  // other data frame.
  TransportChannel& rev = self->channel(dst, src);
  const std::uint32_t ack = rev.rcv_cum();
  rev.pending_data = 0;
  rev.ack_due_at = -1;
  const SimTime nominal = self->network_.charge_control(
      src, dst, verdict.entry.type, verdict.entry.wire_bytes, now);
  const FaultInjector::Action action =
      self->injector_ != nullptr
          ? self->injector_->packet_action(verdict.entry.type)
          : FaultInjector::Action::kDeliver;
  self->queue_.schedule(verdict.entry.next_timeout, self->h_timer_, a,
                        static_cast<std::uint64_t>(verdict.entry.attempts));
  self->route_attempt(src, dst, seq, ack, action, nominal, /*is_retx=*/true,
                      /*ack_only=*/false);
}

void ReliableTransport::on_ack_due_event(void* ctx, SimTime now,
                                         std::uint64_t a, std::uint64_t b) {
  auto* self = static_cast<ReliableTransport*>(ctx);
  const ProcId src = unpack_src(a);
  const ProcId dst = unpack_dst(a);
  TransportChannel& ch = self->channel(src, dst);
  // Only the most recently armed deadline is live; a piggyback or forced ack
  // in the interim cleared or re-armed it.
  if (ch.ack_due_at != static_cast<SimTime>(b)) return;
  if (ch.pending_data <= 0) {
    ch.ack_due_at = -1;
    return;
  }
  self->send_standalone_ack(src, dst, now);
}

void ReliableTransport::finalize() {
  LOCUS_ASSERT(!finalized_);
  finalized_ = true;
  for (TransportChannel& ch : channels_) {
    stats_.unacked_at_end += ch.in_flight();
  }
  stats_.undelivered = stats_.data_packets - stats_.delivered;
  LOCUS_ASSERT(stats_.books_balance());
}

void ReliableTransport::publish_obs(obs::Obs* o) const {
  if (o == nullptr) return;
  obs::CounterRegistry& reg = o->counters();
  const auto put = [&reg](const char* name, std::uint64_t value) {
    reg.add(0, reg.counter(name), value);
  };
  put("mp.retx", stats_.retransmits);
  put("mp.retx_bytes", stats_.retransmit_bytes);
  put("mp.dup_dropped", stats_.dup_dropped);
  put("mp.ack_bytes", stats_.ack_bytes);
  put("mp.acks_sent", stats_.acks_sent);
  put("mp.piggyback_acks", stats_.piggyback_acks);
  put("mp.wire_losses", stats_.wire_losses);
  put("mp.out_of_order", stats_.out_of_order);
  put("mp.gave_up", stats_.gave_up);
  put("mp.window_stalls", stats_.window_stalls);
}

}  // namespace locus
