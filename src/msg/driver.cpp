#include "msg/driver.hpp"

#include <cstdlib>
#include <memory>

#include "grid/tiled_cost_array.hpp"
#include "msg/node.hpp"
#include "msg/observer.hpp"
#include "route/quality.hpp"
#include "sim/topology.hpp"
#include "support/assert.hpp"

namespace locus {

MpRunResult run_message_passing(const Circuit& circuit, const Partition& partition,
                                const Assignment& assignment,
                                const MpConfig& config) {
  LOCUS_ASSERT(assignment.num_procs() == partition.num_regions());
  LOCUS_ASSERT(assignment_is_valid(assignment, circuit));
  LOCUS_ASSERT(config.iterations >= 1);
  // Receiver-initiated requesting needs the static wire list for lookahead;
  // the dynamic queue modes run with sender-initiated (or no) updates.
  LOCUS_ASSERT_MSG(config.assignment_mode == WireAssignmentMode::kStatic ||
                       !config.schedule.receiver_enabled(),
                   "dynamic assignment cannot use receiver-initiated updates");
  // Batching tightens exactly the bounding-box encoding; the wire-based and
  // whole-region byte models have no per-block form.
  LOCUS_ASSERT_MSG(!config.shard.batch_updates ||
                       config.packet_structure == PacketStructure::kBoundingBox,
                   "batched updates require the bounding-box packet structure");

  Topology topology = [&] {
    if (config.edges == Topology::Edges::kFatTree) {
      // Processors sit at the tree's leaves; the cost-array partition stays
      // 2D and processor ids map by index, exactly as for topology_dims.
      return Topology::fat_tree(partition.num_regions(), config.fat_tree_arity);
    }
    std::vector<std::int32_t> dims = config.topology_dims;
    if (dims.empty()) {
      dims = {partition.mesh().cols, partition.mesh().rows};
    } else {
      std::int32_t product = 1;
      for (std::int32_t d : dims) product *= d;
      LOCUS_ASSERT_MSG(product == partition.num_regions(),
                       "topology_dims must multiply to the processor count");
    }
    return Topology(dims, config.edges);
  }();

  NetworkParams net;
  net.hop_time_ns = config.time.hop_time_ns;
  net.process_time_ns = config.time.process_time_ns;
  net.cost = config.link_cost;
  Machine machine(topology, net);
  if (config.faults != nullptr && config.faults->any()) {
    machine.set_fault_plan(*config.faults);
  }
  std::unique_ptr<ReliableTransport> transport;
  if (config.transport.enabled) {
    transport = std::make_unique<ReliableTransport>(
        config.transport, machine.network_mut(), machine.queue(),
        machine.fault_injector());
    machine.network_mut().set_transport(transport.get());
  }

  MpShared shared(circuit);
  LOCUS_OBS_HOOK(if (config.obs != nullptr) {
    machine.set_obs(config.obs);
    shared.node_obs.bind(config.obs, /*shard_index=*/0);
    shared.explorer_obs.bind(config.obs, /*shard_index=*/0);
  });
  shared.final_routes.resize(static_cast<std::size_t>(circuit.num_wires()));
  shared.occupancy.assign(static_cast<std::size_t>(partition.num_regions()), 0);
  shared.work.assign(static_cast<std::size_t>(partition.num_regions()), {});
  shared.time_breakdown.assign(static_cast<std::size_t>(partition.num_regions()), {});

  for (ProcId p = 0; p < partition.num_regions(); ++p) {
    machine.set_node(p, std::make_unique<RouterNode>(
                            circuit, partition, config,
                            assignment.wires_per_proc[static_cast<std::size_t>(p)],
                            p, shared));
  }

  MpRunView run_view;
  if (config.observer != nullptr) {
    run_view.partition = &partition;
    run_view.truth = &shared.truth;
    run_view.nodes.reserve(static_cast<std::size_t>(partition.num_regions()));
    for (ProcId p = 0; p < partition.num_regions(); ++p) {
      const auto* node = dynamic_cast<const RouterNode*>(machine.node(p));
      LOCUS_ASSERT(node != nullptr);
      run_view.nodes.push_back(node);
    }
    config.observer->on_run_start(run_view);
  }

  MpRunResult result;
  result.machine = machine.run();
  result.network = machine.network().stats();
  result.link_usage = machine.network().link_usage(result.machine.drain_time);
  result.link_bytes = machine.network().link_cost().link_bytes();
  result.faults = machine.fault_stats();
  if (transport != nullptr) {
    transport->finalize();  // asserts the conservation ledger balances
    result.transport = transport->stats();
    LOCUS_OBS_HOOK(transport->publish_obs(config.obs));
  }
  LOCUS_OBS_HOOK(if (config.obs != nullptr) {
    // Per-packet-kind on-wire byte totals, published once from the
    // network's tally under symbolic kind names.
    auto& reg = config.obs->counters();
    for (const auto& [type, bytes] : result.network.bytes_by_type) {
      reg.add(0, reg.counter(std::string("net.bytes_by_type.") +
                             obs::msg_kind_name(type)),
              bytes);
    }
    // Per-link interconnect usage from the active cost model: total bytes
    // across all directed links (== net.byte_hops — the conservation law),
    // backpressure/contention stalls, and a utilization histogram in
    // permille over the links that carried traffic.
    std::uint64_t link_bytes_total = 0;
    for (std::uint64_t b : result.link_bytes) link_bytes_total += b;
    reg.add(0, reg.counter("net.link_bytes_total"), link_bytes_total);
    reg.add(0, reg.counter("net.link_stalls"), result.link_usage.stalls);
    reg.add(0, reg.counter("net.link_stall_ns"),
            static_cast<std::uint64_t>(result.link_usage.stall_ns));
    const auto util_hist = reg.histogram("net.link_util_permille");
    const LinkCostModel& cost = machine.network().link_cost();
    for (std::size_t link = 0; link < result.link_bytes.size(); ++link) {
      if (result.link_bytes[link] == 0) continue;
      const double u = cost.utilization(static_cast<std::int32_t>(link),
                                        result.machine.drain_time);
      reg.observe(0, util_hist, static_cast<std::uint64_t>(u * 1000.0));
    }
  });
  if (config.observer != nullptr) {
    config.observer->on_run_end(run_view);
  }

  result.completion_ns = result.machine.completion_time;
  result.bytes_transferred = result.network.bytes;

  for (const WireRoute& r : shared.final_routes) {
    LOCUS_ASSERT_MSG(r.routed(), "every wire must end up routed");
  }
  // The incrementally maintained oracle must agree with a rebuild from the
  // final routes — rip-up exactly reversed every superseded commitment.
  LOCUS_ASSERT(shared.truth ==
               rebuild_cost(circuit.channels(), circuit.grids(), shared.final_routes));
  result.circuit_height = circuit_height(shared.truth);
  for (std::int64_t occ : shared.occupancy) result.occupancy_factor += occ;
  for (const RouteWorkStats& w : shared.work) result.work += w;
  for (const TimeBreakdown& tb : shared.time_breakdown) result.time_breakdown += tb;
  result.updates_suppressed = shared.updates_suppressed;
  result.requests_sent = shared.requests_sent;
  result.grants_issued = shared.grants_issued;
  result.grant_wires = shared.grant_wires;
  result.affinity_grants = shared.affinity_grants;
  result.steal_requests = shared.steal_requests;
  result.steal_wires = shared.steal_wires;
  result.routed_per_proc.reserve(shared.work.size());
  for (const RouteWorkStats& w : shared.work) {
    result.routed_per_proc.push_back(w.wires_routed);
  }

  // Staleness of the surviving views against the truth oracle.
  std::int64_t total_error = 0;
  std::int64_t own_error = 0;
  std::int64_t own_cells = 0;
  const std::int64_t cells = shared.truth.size();
  // An absent tile reads as zero, so its error is |truth| cell for cell;
  // summing |truth| once lets the tiled path visit resident tiles only.
  std::int64_t truth_abs_total = 0;
  for (std::int32_t v : shared.truth.cells()) truth_abs_total += std::abs(v);
  std::int64_t view_resident_cells = 0;
  std::int64_t view_resident_bytes = 0;
  for (ProcId p = 0; p < partition.num_regions(); ++p) {
    const auto* node = dynamic_cast<const RouterNode*>(machine.node(p));
    LOCUS_ASSERT(node != nullptr);
    const GridBacking& view = node->view();
    view_resident_cells += view.resident_cells();
    view_resident_bytes += view.resident_bytes();
    if (const auto* tiled = dynamic_cast<const TiledCostArray*>(&view)) {
      const std::int32_t stride = tiled->tiles().tile_cols();
      std::int64_t resident_err = 0;
      std::int64_t resident_truth_abs = 0;
      tiled->tiles().for_each_resident_tile(
          [&](const Rect& b, const std::int32_t* tile) {
            for (std::int32_t c = b.channel_lo; c <= b.channel_hi; ++c) {
              const std::int32_t* row =
                  tile + static_cast<std::size_t>(c - b.channel_lo) * stride;
              const std::int32_t* truth_row =
                  shared.truth.cells().data() +
                  static_cast<std::size_t>(c) * circuit.grids() + b.x_lo;
              for (std::int32_t i = 0; i <= b.x_hi - b.x_lo; ++i) {
                resident_err += std::abs(row[i] - truth_row[i]);
                resident_truth_abs += std::abs(truth_row[i]);
              }
            }
          });
      total_error += resident_err + (truth_abs_total - resident_truth_abs);
      // The own region is pinned resident, so per-cell reads stay cheap.
      const Rect own = partition.region(p);
      for (std::int32_t c = own.channel_lo; c <= own.channel_hi; ++c) {
        for (std::int32_t x = own.x_lo; x <= own.x_hi; ++x) {
          const GridPoint cell{c, x};
          own_error += std::abs(tiled->at(cell) - shared.truth.at(cell));
          ++own_cells;
        }
      }
      continue;
    }
    for (std::int32_t c = 0; c < circuit.channels(); ++c) {
      for (std::int32_t x = 0; x < circuit.grids(); ++x) {
        const GridPoint cell{c, x};
        const std::int64_t err = std::abs(view.at(cell) - shared.truth.at(cell));
        total_error += err;
        if (partition.owner(cell) == p) {
          own_error += err;
          ++own_cells;
        }
      }
    }
  }
  result.view_resident_cells = view_resident_cells;
  result.view_resident_bytes = view_resident_bytes;
  LOCUS_OBS_HOOK(if (config.obs != nullptr) {
    auto& reg = config.obs->counters();
    reg.add(0, reg.counter("grid.view_resident_cells"),
            static_cast<std::uint64_t>(view_resident_cells));
    reg.add(0, reg.counter("grid.view_resident_bytes"),
            static_cast<std::uint64_t>(view_resident_bytes));
  });
  result.view_staleness =
      static_cast<double>(total_error) /
      static_cast<double>(cells * partition.num_regions());
  result.own_region_staleness =
      own_cells == 0 ? 0.0
                     : static_cast<double>(own_error) / static_cast<double>(own_cells);

  result.routes = std::move(shared.final_routes);
  return result;
}

MpRunResult run_message_passing(const Circuit& circuit, std::int32_t procs,
                                const MpConfig& config) {
  const MeshShape mesh = MeshShape::for_procs(procs);
  const Partition partition(circuit.channels(), circuit.grids(), mesh);
  const Assignment assignment = assign_threshold_cost(circuit, partition, 1000);
  return run_message_passing(circuit, partition, assignment, config);
}

}  // namespace locus
