// Reliable message passing transport (acks, retransmit, dedup).
//
// The paper's update protocols assume a lossless interconnect; the fault
// subsystem (sim/fault.hpp) can only *detect* the divergence a lossy one
// causes. This layer closes the loop: a sliding-window transport beneath
// all four update transaction types — per-(src,dst) sequence numbers in the
// wire frame, receiver-side dedup, cumulative acks piggybacked on every
// data packet plus standalone kMsgAck packets, sender timeout + retransmit
// with exponential backoff — so that at moderate drop rates every MP
// protocol converges to routes bit-identical to its fault-free run.
//
// Split of planes (DESIGN.md §10 records the full argument):
//   * data plane: the network delivers every data packet to the application
//     exactly once at its NOMINAL fault-free time, whatever the injector
//     did to the wire attempt. This models a transport whose recovery
//     completes within the protocol's staleness tolerance and makes the
//     "bit-identical to fault-free" guarantee exact by construction — a
//     real-timing recovery could never promise that for the blocking
//     receiver schedule, where a late response shifts the node's timeline.
//   * control plane: the full state machine (seqnos, unacked window, RTO
//     with exponential backoff, cumulative acks, dedup) runs in simulated
//     time against the actual fault pattern. Its packets — retransmits
//     carrying the full data bytes and standalone acks — are charged to
//     NetworkStats via Network::charge_control() on a modeled dedicated
//     virtual channel (no link reservation), so recovery traffic is
//     measured without perturbing the foreground timeline.
//
// TransportChannel is the pure per-(src,dst) state machine, unit-testable
// with injected times; ReliableTransport owns one channel per ordered
// processor pair and integrates with the DES via its own event handlers.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/packet.hpp"

namespace locus {

/// Knobs for the reliable transport (MpConfig::transport). Default-off:
/// with enabled == false nothing in the run changes, byte for byte.
struct TransportConfig {
  bool enabled = false;
  /// Sender window: unacked sequence numbers per (src,dst) channel before
  /// the sender counts a window stall. The DES sender cannot defer the
  /// foreground send without perturbing the nominal timeline, so in the
  /// integrated run the window is an accounted invariant (stalls + peak
  /// occupancy), while TransportChannel enforces it for unit-level use.
  std::int32_t window = 32;
  /// Initial retransmit timeout, measured from the attempt's nominal
  /// delivery time (the forward latency is already excluded). Must exceed
  /// ack_delay_ns plus the reverse-path latency — including a piggybacking
  /// reverse data packet's drain time — or delivered packets retransmit
  /// spuriously.
  SimTime rto_ns = 400'000;
  /// RTO multiplier per retransmit attempt (exponential backoff), capped at
  /// backoff^max_backoff_exp.
  double backoff = 2.0;
  std::int32_t max_backoff_exp = 5;
  /// Give up on a sequence number after this many wire attempts (first send
  /// included). The application was already served at the nominal time, so
  /// giving up only ends the control-plane recovery; it is counted.
  std::int32_t max_attempts = 16;
  /// Standalone-ack holdoff after a data arrival: a reverse-direction data
  /// packet inside this window piggybacks the ack for free.
  SimTime ack_delay_ns = 30'000;
  /// Force a standalone ack once this many data arrivals are unacked.
  std::int32_t ack_every = 4;
};

/// Control-plane accounting. The books must balance (books_balance()):
///   arrivals == data_packets + retransmits + dup_wire_copies - wire_losses
///   arrivals == delivered + dup_dropped
/// and, once finalize() ran,
///   delivered + undelivered == data_packets.
struct TransportStats {
  std::uint64_t data_packets = 0;     ///< application packets carried
  std::uint64_t retransmits = 0;      ///< mp.retx
  std::uint64_t retransmit_bytes = 0; ///< wire bytes of retransmit copies
  std::uint64_t gave_up = 0;          ///< seqs abandoned after max_attempts
  std::uint64_t acks_sent = 0;        ///< standalone kMsgAck packets
  std::uint64_t ack_bytes = 0;        ///< mp.ack_bytes (standalone acks)
  std::uint64_t ack_wire_losses = 0;  ///< standalone acks the injector killed
  std::uint64_t piggyback_acks = 0;   ///< data frames whose ack retired seqs
  std::uint64_t dup_dropped = 0;      ///< mp.dup_dropped (receiver dedup)
  std::uint64_t out_of_order = 0;     ///< new arrivals ahead of a gap
  std::uint64_t wire_losses = 0;      ///< data attempts the injector killed
  std::uint64_t dup_wire_copies = 0;  ///< injector-duplicated extra copies
  std::uint64_t arrivals = 0;         ///< data copies that reached a receiver
  std::uint64_t delivered = 0;        ///< unique seqs received (first copy)
  std::uint64_t undelivered = 0;      ///< finalize(): seqs never received
  std::uint64_t window_stalls = 0;    ///< sends issued against a full window
  std::int64_t peak_window = 0;       ///< max unacked seqs on any channel
  std::int64_t unacked_at_end = 0;    ///< finalize(): seqs never acked
  SimTime max_recovery_lag_ns = 0;    ///< worst (first arrival - nominal)

  bool books_balance() const {
    return arrivals ==
               data_packets + retransmits + dup_wire_copies - wire_losses &&
           arrivals == delivered + dup_dropped &&
           delivered + undelivered == data_packets;
  }
};

/// Pure per-(src,dst) transport state machine: sender window + timers on
/// one side, dedup + cumulative ack on the other. All times are injected,
/// so unit tests drive it deterministically without a network.
class TransportChannel {
 public:
  struct Unacked {
    std::uint32_t seq = 0;
    std::int32_t type = 0;
    std::int32_t wire_bytes = 0;
    SimTime nominal = 0;       ///< nominal delivery time of the first send
    SimTime next_timeout = 0;  ///< when the pending RTO for this seq fires
    std::int32_t attempts = 1; ///< wire attempts so far (first send included)
  };

  enum class Arrival : std::uint8_t { kNew, kDuplicate };

  struct TimeoutVerdict {
    bool retransmit = false;
    bool gave_up = false;
    /// Valid when retransmit: the retried entry (attempts already bumped,
    /// next_timeout already pushed out by the backoff).
    Unacked entry;
  };

  // --- sender side ---

  /// Assigns the next sequence number and tracks it as unacked. Returns the
  /// seq. Callers who care about the window check window_full() *before*
  /// sending — the integrated DES sender proceeds anyway (stall counted as
  /// an accounted invariant); unit-level users may choose to block.
  std::uint32_t begin_send(std::int32_t type, std::int32_t wire_bytes,
                           SimTime nominal, SimTime timeout_at);

  bool window_full(std::int32_t window) const {
    return static_cast<std::int32_t>(unacked_.size()) >= window;
  }
  std::int64_t in_flight() const {
    return static_cast<std::int64_t>(unacked_.size());
  }

  /// Cumulative ack: retires every unacked seq <= ack. Returns how many.
  std::uint32_t on_ack(std::uint32_t ack);

  /// RTO fired for (seq, attempt). Stale timers (seq already acked or a
  /// newer attempt superseded this timer) return a no-op verdict. A live
  /// timer either schedules a retransmit (attempts < max_attempts; backoff
  /// applied to the next timeout from `now`) or abandons the seq.
  TimeoutVerdict on_timeout(std::uint32_t seq, std::int32_t attempt, SimTime now,
                            const TransportConfig& config);

  const Unacked* find_unacked(std::uint32_t seq) const;
  std::uint32_t next_seq() const { return next_seq_; }

  // --- receiver side ---

  /// One wire copy of `seq` arrived. Duplicates (already delivered or
  /// already buffered ahead of the gap) are discarded; new seqs advance the
  /// cumulative counter over any buffered run. `out_of_order` (optional)
  /// reports a new arrival that left a gap; `released` (optional) the
  /// number of seqs the in-order frontier advanced by.
  Arrival on_arrival(std::uint32_t seq, bool* out_of_order = nullptr,
                     std::uint32_t* released = nullptr);

  /// Cumulative ack value to advertise: every seq <= rcv_cum() received.
  std::uint32_t rcv_cum() const { return rcv_cum_; }
  std::uint32_t delivered_unique() const { return delivered_unique_; }
  std::int64_t buffered_ahead() const {
    return static_cast<std::int64_t>(ahead_.size());
  }

  // Receiver-side ack pacing state, owned here so ReliableTransport stays a
  // thin event adapter. `pending_data` counts unacked arrivals; ack_due_at
  // arbitrates the delayed-ack event against later flushes (-1: none).
  std::int32_t pending_data = 0;
  SimTime ack_due_at = -1;

 private:
  // Sender: unacked entries in ascending seq order.
  std::deque<Unacked> unacked_;
  std::uint32_t next_seq_ = 1;
  std::uint32_t highest_acked_ = 0;
  // Receiver: contiguous prefix [1, rcv_cum_] received; out-of-order seqs
  // beyond the gap buffered in ahead_.
  std::uint32_t rcv_cum_ = 0;
  std::uint32_t delivered_unique_ = 0;
  std::set<std::uint32_t> ahead_;
};

/// DES integration: owns one TransportChannel per ordered processor pair,
/// consumes the per-attempt fault actions from Network::inject(), and runs
/// the control plane (arrivals, acks, RTO timers) through its own event
/// handlers. Install with Network::set_transport(); not owned by it.
class ReliableTransport final : public PacketTransport {
 public:
  /// `injector` may be null (fault-free run: the control plane still runs —
  /// seqnos, acks, timers — but every attempt arrives and no RTO fires).
  ReliableTransport(const TransportConfig& config, Network& network,
                    EventQueue& queue, FaultInjector* injector);

  std::int32_t frame_bytes() const override;
  void on_wire(const Packet& packet, SimTime nominal,
               FaultInjector::Action action) override;

  /// Call after the simulation drains: computes the finalize()-only stats
  /// (undelivered seqs, unacked survivors) and asserts the books balance.
  void finalize();

  const TransportStats& stats() const { return stats_; }
  const TransportConfig& config() const { return config_; }

  /// Publishes the control-plane counters (mp.retx, mp.dup_dropped,
  /// mp.ack_bytes, ...) to an observability sink. No-op when o is null.
  void publish_obs(obs::Obs* o) const;

  /// Test hook: the channel carrying src -> dst traffic.
  TransportChannel& channel(ProcId src, ProcId dst);

 private:
  static void on_arrival_event(void* ctx, SimTime now, std::uint64_t a,
                               std::uint64_t b);
  static void on_timer_event(void* ctx, SimTime now, std::uint64_t a,
                             std::uint64_t b);
  static void on_ack_due_event(void* ctx, SimTime now, std::uint64_t a,
                               std::uint64_t b);

  /// Routes one wire attempt (data or standalone ack) through the fault
  /// action and schedules its arrival event(s), if any.
  void route_attempt(ProcId src, ProcId dst, std::uint32_t seq,
                     std::uint32_t ack, FaultInjector::Action action,
                     SimTime nominal, bool is_retx, bool ack_only);
  void handle_data_arrival(SimTime now, ProcId src, ProcId dst,
                           std::uint32_t seq);
  void process_ack(ProcId src, ProcId dst, std::uint32_t ack, bool piggyback);
  void note_pending_ack(ProcId src, ProcId dst, SimTime now);
  void send_standalone_ack(ProcId src, ProcId dst, SimTime now);

  std::size_t channel_index(ProcId src, ProcId dst) const;

  TransportConfig config_;
  Network& network_;
  EventQueue& queue_;
  FaultInjector* injector_;
  TransportStats stats_;
  std::vector<TransportChannel> channels_;  ///< procs x procs, row = src
  std::int32_t procs_ = 0;
  bool finalized_ = false;
  EventQueue::HandlerId h_arrival_;
  EventQueue::HandlerId h_timer_;
  EventQueue::HandlerId h_ack_due_;
};

}  // namespace locus
