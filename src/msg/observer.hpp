// Instrumentation hooks for message passing runs.
//
// The run driver and RouterNode invoke these callbacks at protocol-level
// events so a correctness checker (src/check) can account for every delta
// in the system without perturbing the simulation: because the engine is a
// sequential DES, each hook fires at a globally consistent instant, and a
// checker may inspect any node's view/delta state from inside a hook.
//
// The conservation law this enables (asserted by ViewConsistencyChecker):
// for every cell q owned by processor o,
//     truth(q) == view_o(q) + sum_{r != o} delta_r(q) + inflight(q)
// where inflight(q) accumulates SendRmtData payloads handed to the network
// but not yet applied at the owner. Dropped packets leave inflight nonzero
// forever (detected as non-convergence); duplicated or corrupted deltas
// break the equality itself (detected at the next checkpoint).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "geom/partition.hpp"
#include "geom/rect.hpp"

namespace locus {

class RouterNode;
class CostArray;

/// Read-only handles to one run's state, valid from on_run_start() through
/// on_run_end(). Nodes are indexed by ProcId.
struct MpRunView {
  const Partition* partition = nullptr;
  const CostArray* truth = nullptr;
  std::vector<const RouterNode*> nodes;
};

class MpObserver {
 public:
  virtual ~MpObserver() = default;

  /// Nodes are installed and the machine is about to run.
  virtual void on_run_start(const MpRunView& run) { static_cast<void>(run); }

  /// `from` handed a delta update (SendRmtData, scheduled or solicited via
  /// ReqLocData) for `region` to the network. `values` is the row-major
  /// payload over `bbox`.
  virtual void on_delta_sent(ProcId from, ProcId region, const Rect& bbox,
                             std::span<const std::int32_t> values) {
    static_cast<void>(from);
    static_cast<void>(region);
    static_cast<void>(bbox);
    static_cast<void>(values);
  }

  /// A delta update arrived at `owner` and was applied to its view.
  virtual void on_delta_applied(ProcId owner, const Rect& bbox,
                                std::span<const std::int32_t> values) {
    static_cast<void>(owner);
    static_cast<void>(bbox);
    static_cast<void>(values);
  }

  /// `proc` finished ripping up and re-routing `wire` (commit included).
  /// This is the checkpoint hook: state is globally consistent here.
  virtual void on_wire_routed(ProcId proc, WireId wire, std::int32_t iteration) {
    static_cast<void>(proc);
    static_cast<void>(wire);
    static_cast<void>(iteration);
  }

  /// The machine drained; final state is readable through `run`.
  virtual void on_run_end(const MpRunView& run) { static_cast<void>(run); }
};

}  // namespace locus
