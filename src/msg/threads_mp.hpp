// Real-threads message passing LocusRoute.
//
// The same distributed algorithm the simulator runs (replicated cost-array
// views, delta arrays, sender-initiated bounding-box updates), executed on
// native std::thread workers with mutex-protected mailboxes instead of a
// simulated interconnect. No shared cost array exists: threads communicate
// only by update messages, exactly like the paper's message passing
// programming model. Nondeterministic (real scheduling); quality lands in
// the same band as the simulated runs, which the tests check. Use the
// simulator for measurements; use this to route circuits in parallel for
// real.
#pragma once

#include <cstdint>
#include <vector>

#include "assign/assignment.hpp"
#include "circuit/circuit.hpp"
#include "geom/partition.hpp"
#include "msg/config.hpp"
#include "route/router.hpp"

namespace locus {

struct ThreadsMpConfig {
  RouterParams router;
  std::int32_t iterations = 2;
  /// Sender-initiated periods (receiver-initiated requests need the
  /// simulator's blocking machinery and are not supported here).
  std::int32_t send_loc_period = 5;
  std::int32_t send_rmt_period = 2;
  /// Optional observability sink. Each worker thread writes per-kind
  /// sent/received counters to its own registry shard (shard = thread id
  /// mod num_shards; build the registry with one shard per worker for a
  /// contention-free run). Not owned; read totals after the call returns.
  obs::Obs* obs = nullptr;
};

struct ThreadsMpResult {
  std::int64_t circuit_height = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;  ///< same packet sizing as the simulator
  double wall_seconds = 0.0;
  RouteWorkStats work;
  std::vector<WireRoute> routes;
};

/// Routes `circuit` with one worker thread per partition region using the
/// given static assignment.
ThreadsMpResult run_threads_message_passing(const Circuit& circuit,
                                            const Partition& partition,
                                            const Assignment& assignment,
                                            const ThreadsMpConfig& config);

}  // namespace locus
