// The message passing processors' cost view: reads go straight to the
// node's (possibly drifted) private CostArray, writes are mirrored into the
// delta array that feeds SendRmtData / ReqLocData updates. Shared by the
// simulated node program (msg/node.hpp) and the native-threads backend
// (msg/threads_mp.cpp); tested directly by the explorer property matrix.
#pragma once

#include <cstdint>
#include <span>

#include "grid/backing.hpp"
#include "grid/delta_array.hpp"
#include "route/cost_view.hpp"

namespace locus {

/// CostView that mirrors every write into the delta array. Reads go
/// straight to the (possibly drifted) private view, so both bulk span
/// reads forward to the backing's fast path — clamping included. The view
/// is any GridBacking: dense CostArray (paper scale) or TiledCostArray
/// (sharded scale runs), chosen by ShardConfig.
class ViewWithDelta final : public CostView {
 public:
  ViewWithDelta(GridBacking& view, DeltaArray& delta) : view_(view), delta_(delta) {}
  std::int32_t read(GridPoint p) override { return view_.read(p); }
  void add(GridPoint p, std::int32_t d) override {
    view_.add(p, d);
    delta_.add(p, d);
  }
  void read_row(std::int32_t channel, std::int32_t x_lo, std::int32_t x_hi,
                std::span<std::int32_t> span_out) override {
    view_.read_row(channel, x_lo, x_hi, span_out);
  }
  void read_rows(std::int32_t c_lo, std::int32_t c_hi, std::int32_t x_lo,
                 std::int32_t x_hi, std::span<std::int32_t> span_out) override {
    view_.read_rows(c_lo, c_hi, x_lo, x_hi, span_out);
  }
  bool supports_bulk_read() const override { return true; }

 private:
  GridBacking& view_;
  DeltaArray& delta_;
};

}  // namespace locus
