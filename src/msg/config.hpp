// Configuration of the message passing implementation (paper §4).
//
// An update schedule combines the four transaction types of Figure 3:
//   sender initiated:   SendLocData (absolute own-region broadcasts to the
//                       four mesh neighbors) and SendRmtData (delta pushes
//                       to remote owners), each fired every N routed wires;
//   receiver initiated: ReqRmtData (ask a region's owner for fresh absolute
//                       data once enough upcoming wires touch that region)
//                       and ReqLocData (the owner asks a chatty remote for
//                       its pending deltas), with blocking or non-blocking
//                       waits on the requester.
// A period/threshold of zero disables that transaction type, so pure
// sender, pure receiver, and mixed schedules are all expressible.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/partition.hpp"
#include "grid/tile_grid.hpp"
#include "msg/transport.hpp"
#include "obs/obs.hpp"
#include "route/cost_model.hpp"
#include "route/router.hpp"
#include "sim/link_cost.hpp"
#include "sim/topology.hpp"

namespace locus {

struct FaultPlan;  // sim/fault.hpp
class MpObserver;  // msg/observer.hpp

/// How wires reach processors (paper §4.2). The paper evaluates only the
/// static ThresholdCost assignment because "CBS does not support the notion
/// of interrupts occurring on message reception"; our engine does not have
/// that limitation, so both dynamic schemes it describes are implemented:
///   * kDynamicPolled — processor 0 owns the wire queue and routes wires
///     itself; wire-request packets are serviced only between its own
///     wires, so a requester can wait for an entire wire to be routed;
///   * kDynamicInterrupt — the queue owner's routing is time-sliced and
///     requests are serviced at the next slice boundary, modeling low
///     overhead reception interrupts.
enum class WireAssignmentMode : std::int8_t {
  kStatic,
  kDynamicPolled,
  kDynamicInterrupt,
};

/// Grant-ordering policy of the dynamic wire queue owner (DESIGN.md §11).
enum class GrantPolicy : std::int8_t {
  kFifoOrder,  ///< ascending wire id, exactly the §4.2 legacy behavior
  kLocality,   ///< prefer wires overlapping the requester's resident tiles
};

/// Locality-aware dynamic scheduling knobs layered over the §4.2 machinery.
/// The defaults reproduce the legacy single-wire FIFO protocol byte for
/// byte; any non-default value switches the request/grant exchange to the
/// extended wire format (resident-region summaries on requests, batched
/// wire lists on grants, optional neighbor stealing).
struct DynamicScheduleConfig {
  GrantPolicy policy = GrantPolicy::kFifoOrder;
  /// Wires handed out per grant (>= 1). Batches never straddle an
  /// iteration boundary.
  std::int32_t grant_batch = 1;
  /// Idle workers probe mesh neighbors for surplus queued wires before
  /// falling back to the master (decentralized stealing).
  bool neighbor_steal = false;
  /// Minimum victim queue depth to donate; victims donate half their queue
  /// (tail first) and never their in-flight wire.
  std::int32_t steal_threshold = 2;
  /// Cap on resident-region ids carried by one wire request.
  std::int32_t resident_summary_cap = 32;
  /// kLocality roam limit in mesh hops (0 = unlimited): a requester is only
  /// granted wires homed within this many hops of its own region, except
  /// from regions it already backs tiles in (no new footprint there).
  /// Requests that cannot be satisfied inside the radius are deferred until
  /// the iteration rolls over, bounding how many distinct thieves replicate
  /// any donor region's tiles.
  std::int32_t locality_radius = 0;

  bool extended_protocol() const {
    return policy != GrantPolicy::kFifoOrder || grant_batch > 1 || neighbor_steal;
  }
};

enum class PacketStructure : std::int8_t {
  kWireBased,    ///< §4.3.1 option 1: per-segment coordinates of changed wires
  kWholeRegion,  ///< §4.3.1 option 2: every cell of the owned region
  kBoundingBox,  ///< §4.3.1 option 3 (the paper's choice): bbox of changes
};

struct UpdateSchedule {
  /// SendLocData parameter: wires routed between absolute own-region
  /// broadcasts (0 disables).
  std::int32_t send_loc_period = 0;
  /// SendRmtData parameter: wires routed between delta pushes to remote
  /// owners (0 disables).
  std::int32_t send_rmt_period = 0;
  /// ReqRmtData parameter: upcoming-wire touches of a remote region that
  /// trigger an update request to its owner (0 disables).
  std::int32_t req_rmt_touches = 0;
  /// ReqLocData parameter: ReqRmtData packets received from one remote
  /// before the owner requests that remote's deltas (0 disables).
  std::int32_t req_loc_requests = 0;
  /// Blocking receiver: the requester stalls until its ReqRmtData responses
  /// arrive, instead of routing on.
  bool blocking_receiver = false;
  /// Requests are ordered this many wires ahead of routing (paper: five).
  std::int32_t request_lookahead = 5;

  bool sender_enabled() const { return send_loc_period > 0 || send_rmt_period > 0; }
  bool receiver_enabled() const { return req_rmt_touches > 0; }

  /// Pure sender-initiated schedule (Table 1 rows).
  static UpdateSchedule sender(std::int32_t send_rmt, std::int32_t send_loc) {
    UpdateSchedule s;
    s.send_rmt_period = send_rmt;
    s.send_loc_period = send_loc;
    return s;
  }

  /// Pure receiver-initiated schedule (Table 2 rows).
  static UpdateSchedule receiver(std::int32_t req_loc, std::int32_t req_rmt,
                                 bool blocking = false) {
    UpdateSchedule s;
    s.req_loc_requests = req_loc;
    s.req_rmt_touches = req_rmt;
    s.blocking_receiver = blocking;
    return s;
  }
};

/// Sharded-view storage for scale runs (grid/tiled_cost_array.hpp).
///
/// `enabled` swaps every node's dense view + delta storage for lazily
/// allocated tiles; because absent tiles read as the initial zero and the
/// delta scan visits exactly the same cells, a sharded run routes
/// bit-identically to a monolithic one — only resident memory changes.
/// `batch_updates` additionally packs each destination's update into tight
/// per-tile blocks instead of one conservative bounding box (fewer bytes
/// for scattered changes, one packet either way). Batching changes packet
/// byte counts and therefore simulated timing and routes, so it defaults
/// off and is compared against unbatched runs by the scale harness.
struct ShardConfig {
  bool enabled = false;
  TileDims tile;
  /// Region-batched per-tile update blocks (requires kBoundingBox packets).
  bool batch_updates = false;
};

struct MpConfig {
  UpdateSchedule schedule;
  RouterParams router;
  TimeModel time;
  std::int32_t iterations = 2;
  PacketStructure packet_structure = PacketStructure::kBoundingBox;
  /// Tiled per-node views + optional region-batched update packets.
  ShardConfig shard;
  Topology::Edges edges = Topology::Edges::kMesh;
  /// Switch arity when `edges == kFatTree` (processors at the leaves,
  /// up/down routing; ignored otherwise).
  std::int32_t fat_tree_arity = 2;
  /// Per-link interconnect timing discipline (sim/link_cost.hpp): the
  /// paper's fixed charge, M/D/1 queueing, or credit-based VCs. The default
  /// keeps runs bit-identical to the pre-seam network.
  LinkCostParams link_cost;
  WireAssignmentMode assignment_mode = WireAssignmentMode::kStatic;
  /// Routing-time slice of the queue owner under kDynamicInterrupt:
  /// arriving requests are serviced within one slice.
  std::int64_t interrupt_slice_ns = 1'000'000;
  /// Locality/batching/stealing knobs for the dynamic modes; defaults keep
  /// the legacy FIFO single-wire protocol. Ignored under kStatic.
  DynamicScheduleConfig dynamic;
  /// Override the interconnect shape (CBS simulated k-ary n-cubes of any
  /// dimension). Empty: a 2D mesh matching the partition. If set, the
  /// product must equal the processor count; the cost-array partition
  /// stays 2D and processor ids map by index.
  std::vector<std::int32_t> topology_dims;
  /// Optional fault-injection plan installed into the simulated machine
  /// (src/sim/fault.hpp). Null or all-zero rates: byte-for-byte identical
  /// behavior to an unfaulted run. Not owned.
  const FaultPlan* faults = nullptr;
  /// Reliable transport (msg/transport.hpp). Default-off: the run is
  /// byte-identical to the pre-transport code. When enabled, data packets
  /// carry the seqno/ack frame, the recovery control plane runs against the
  /// fault plan, and routes stay bit-identical to the transport-on
  /// fault-free run at any drop rate the recovery survives.
  TransportConfig transport;
  /// Optional protocol-event observer (msg/observer.hpp) for correctness
  /// checkers; hooks fire synchronously inside the DES. Not owned.
  MpObserver* observer = nullptr;
  /// Optional observability sink (src/obs). When set, the driver wires the
  /// machine (event queue, network, compute spans) and every RouterNode
  /// (per-packet-kind traffic counters, rip-ups, route spans) to it. Not
  /// owned; must outlive the run.
  obs::Obs* obs = nullptr;
};

}  // namespace locus
