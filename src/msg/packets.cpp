#include "msg/packets.hpp"

#include <limits>

#include "support/assert.hpp"

namespace locus {

std::int32_t update_packet_bytes(PacketStructure structure, const Rect& bbox,
                                 bool absolute, std::int64_t segments_changed,
                                 std::int64_t region_area) {
  const std::int32_t per_cell = absolute ? kAbsoluteBytesPerCell : kDeltaBytesPerCell;
  std::int64_t payload = 0;
  switch (structure) {
    case PacketStructure::kBoundingBox:
      payload = bbox.area() * per_cell;
      break;
    case PacketStructure::kWholeRegion:
      payload = region_area * per_cell;
      break;
    case PacketStructure::kWireBased:
      payload = segments_changed * kWireSegmentBytes;
      break;
  }
  LOCUS_ASSERT(payload >= 0);
  return kUpdateHeaderBytes + static_cast<std::int32_t>(payload);
}

std::int32_t batched_update_packet_bytes(std::span<const UpdateBlock> blocks,
                                         bool absolute) {
  const std::int32_t per_cell = absolute ? kAbsoluteBytesPerCell : kDeltaBytesPerCell;
  std::int64_t payload = 2;  // u16 block count
  for (const UpdateBlock& block : blocks) {
    payload += 8 + block.bbox.area() * per_cell;
  }
  LOCUS_ASSERT(payload >= 2);
  return kUpdateHeaderBytes + static_cast<std::int32_t>(payload);
}

std::int32_t request_packet_bytes() { return kUpdateHeaderBytes; }

std::int32_t grant_packet_bytes() { return kUpdateHeaderBytes + 8; }

std::int32_t wire_request_packet_bytes(std::int32_t resident_regions) {
  LOCUS_ASSERT(resident_regions >= 0);
  return kUpdateHeaderBytes + 6 + 2 * resident_regions;
}

std::int32_t batch_grant_packet_bytes(std::int32_t wires) {
  LOCUS_ASSERT(wires >= 0);
  return kUpdateHeaderBytes + 6 + 4 * wires;
}

std::int32_t steal_request_packet_bytes() { return kUpdateHeaderBytes; }

std::int32_t ack_packet_bytes() { return kUpdateHeaderBytes + kTransportFrameBytes; }

namespace {

bool is_update_type(std::int32_t type) {
  return type == kMsgSendLocData || type == kMsgSendRmtData ||
         type == kMsgRspRmtData;
}

bool is_known_type(std::int32_t type) {
  return is_update_type(type) || type == kMsgReqLocData ||
         type == kMsgReqRmtData || type == kMsgWireRequest ||
         type == kMsgWireGrant || type == kMsgAck ||
         type == kMsgStealRequest || type == kMsgStealGrant;
}

/// Absolute payloads carry i16 cells (occupancy fits 16 bits; drifted views
/// can go transiently negative, hence signed); deltas carry i8 cells.
bool fits_cell(std::int32_t value, bool absolute) {
  if (absolute) {
    return value >= std::numeric_limits<std::int16_t>::min() &&
           value <= std::numeric_limits<std::int16_t>::max();
  }
  return value >= std::numeric_limits<std::int8_t>::min() &&
         value <= std::numeric_limits<std::int8_t>::max();
}

void put_i16(std::vector<std::uint8_t>& out, std::int32_t v) {
  const auto u = static_cast<std::uint16_t>(static_cast<std::int16_t>(v));
  out.push_back(static_cast<std::uint8_t>(u & 0xFF));
  out.push_back(static_cast<std::uint8_t>(u >> 8));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  const auto u = static_cast<std::uint32_t>(v);
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((u >> shift) & 0xFF));
  }
}

std::int32_t get_i16(std::span<const std::uint8_t> in, std::size_t at) {
  const auto u = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(in[at]) |
      (static_cast<std::uint16_t>(in[at + 1]) << 8));
  return static_cast<std::int16_t>(u);
}

std::int32_t get_i32(std::span<const std::uint8_t> in, std::size_t at) {
  std::uint32_t u = 0;
  for (int b = 3; b >= 0; --b) {
    u = (u << 8) | in[at + static_cast<std::size_t>(b)];
  }
  return static_cast<std::int32_t>(u);
}

bool fits_i16(std::int32_t v) {
  return v >= std::numeric_limits<std::int16_t>::min() &&
         v <= std::numeric_limits<std::int16_t>::max();
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_i32(out, static_cast<std::int32_t>(v));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(get_i32(in, at));
}

std::uint32_t get_u16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint32_t>(in[at]) |
         (static_cast<std::uint32_t>(in[at + 1]) << 8);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

}  // namespace

std::optional<std::vector<std::uint8_t>> encode_packet(const WirePacket& packet) {
  if (!is_known_type(packet.type)) return std::nullopt;
  if (packet.type < 0 || packet.type > 255) return std::nullopt;
  if (!fits_i16(packet.region)) return std::nullopt;
  if (!fits_i16(packet.bbox.channel_lo) || !fits_i16(packet.bbox.channel_hi) ||
      !fits_i16(packet.bbox.x_lo) || !fits_i16(packet.bbox.x_hi)) {
    return std::nullopt;
  }

  const bool update = is_update_type(packet.type);
  const bool batched = !packet.blocks.empty();
  // Dynamic-scheduling fields belong only to their packet kinds.
  const bool scheduling = packet.type == kMsgWireRequest ||
                          packet.type == kMsgWireGrant ||
                          packet.type == kMsgStealGrant;
  if (!scheduling && (packet.extended || packet.completed != 0 ||
                      !packet.regions.empty() || !packet.wires.empty())) {
    return std::nullopt;
  }
  std::uint32_t payload_bytes = 0;
  if (batched) {
    // Region-batched form: header bbox is the union; each block is a tight
    // rectangle inside it carrying exactly its own cells.
    if (!update || !packet.values.empty()) return std::nullopt;
    if (packet.bbox.is_empty()) return std::nullopt;
    if (packet.blocks.size() > 0xFFFF) return std::nullopt;
    if (packet.absolute != (packet.type != kMsgSendRmtData)) return std::nullopt;
    std::int64_t total_area = 0;
    for (const UpdateBlock& block : packet.blocks) {
      if (block.bbox.is_empty()) return std::nullopt;
      if (!packet.bbox.contains(block.bbox)) return std::nullopt;
      total_area += block.bbox.area();
      if (total_area > kMaxUpdateCells) return std::nullopt;
      if (static_cast<std::int64_t>(block.values.size()) != block.bbox.area()) {
        return std::nullopt;
      }
      for (std::int32_t v : block.values) {
        if (!fits_cell(v, packet.absolute)) return std::nullopt;
      }
    }
    payload_bytes = static_cast<std::uint32_t>(
        2 + static_cast<std::int64_t>(packet.blocks.size()) * 8 +
        total_area * (packet.absolute ? kAbsoluteBytesPerCell : kDeltaBytesPerCell));
  } else if (update) {
    // Updates must carry exactly one value per bbox cell, each in range.
    if (packet.bbox.is_empty()) return std::nullopt;
    const std::int64_t area = packet.bbox.area();
    if (area > kMaxUpdateCells) return std::nullopt;
    if (static_cast<std::int64_t>(packet.values.size()) != area) return std::nullopt;
    // SendLocData / responses are absolute by protocol; SendRmtData is delta.
    if (packet.absolute != (packet.type != kMsgSendRmtData)) return std::nullopt;
    for (std::int32_t v : packet.values) {
      if (!fits_cell(v, packet.absolute)) return std::nullopt;
    }
    payload_bytes = static_cast<std::uint32_t>(
        area * (packet.absolute ? kAbsoluteBytesPerCell : kDeltaBytesPerCell));
  } else {
    if (packet.absolute || !packet.values.empty()) return std::nullopt;
    switch (packet.type) {
      case kMsgWireRequest:
        if (!packet.wires.empty()) return std::nullopt;
        if (packet.extended) {
          if (packet.completed < 0) return std::nullopt;
          if (packet.regions.size() > 0xFFFF) return std::nullopt;
          for (std::int32_t r : packet.regions) {
            if (r < 0 || r > 0xFFFF) return std::nullopt;
          }
          payload_bytes = static_cast<std::uint32_t>(
              6 + 2 * packet.regions.size());
        } else if (packet.completed != 0 || !packet.regions.empty()) {
          return std::nullopt;  // legacy requests carry no payload
        }
        break;
      case kMsgWireGrant:
        if (packet.extended || packet.completed != 0 || !packet.regions.empty()) {
          return std::nullopt;
        }
        if (packet.wires.empty()) {
          if (packet.wire < kNoMoreWires) return std::nullopt;
          payload_bytes = 8;
        } else {
          // Batched grants need >= 2 wires: an 8-byte payload must stay
          // unambiguously the legacy form (6 + 4n skips 8 only for n >= 2).
          if (packet.wires.size() < 2 || packet.wires.size() > 0xFFFF) {
            return std::nullopt;
          }
          if (packet.wire != kNoMoreWires) return std::nullopt;
          for (WireId w : packet.wires) {
            if (w < 0) return std::nullopt;
          }
          payload_bytes =
              static_cast<std::uint32_t>(6 + 4 * packet.wires.size());
        }
        break;
      case kMsgStealGrant:
        if (packet.extended || packet.completed != 0 ||
            !packet.regions.empty() || packet.wire != kNoMoreWires) {
          return std::nullopt;
        }
        if (packet.wires.size() > 0xFFFF) return std::nullopt;
        for (WireId w : packet.wires) {
          if (w < 0) return std::nullopt;
        }
        payload_bytes = static_cast<std::uint32_t>(6 + 4 * packet.wires.size());
        break;
      default:  // plain requests, steal probes, acks: header (+ frame) only
        break;
    }
  }
  // A standalone ack is nothing but its transport frame.
  if (packet.type == kMsgAck && !packet.has_transport) return std::nullopt;
  if (!packet.has_transport && (packet.seq != 0 || packet.ack != 0)) {
    return std::nullopt;  // frame fields without the frame would be lost
  }
  const std::uint32_t frame_bytes =
      packet.has_transport ? static_cast<std::uint32_t>(kTransportFrameBytes) : 0;

  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(kUpdateHeaderBytes) + frame_bytes +
              payload_bytes);
  out.push_back(static_cast<std::uint8_t>(packet.type));
  out.push_back(static_cast<std::uint8_t>((packet.absolute ? 1u : 0u) |
                                          (packet.has_transport ? 2u : 0u) |
                                          (batched ? 4u : 0u)));
  put_i16(out, packet.region);
  put_i16(out, packet.bbox.channel_lo);
  put_i16(out, packet.bbox.channel_hi);
  put_i16(out, packet.bbox.x_lo);
  put_i16(out, packet.bbox.x_hi);
  put_i32(out, static_cast<std::int32_t>(payload_bytes));
  if (packet.has_transport) {
    put_u32(out, packet.seq);
    put_u32(out, packet.ack);
  }

  if (batched) {
    put_i16(out, static_cast<std::int32_t>(
                     static_cast<std::int16_t>(packet.blocks.size())));
    for (const UpdateBlock& block : packet.blocks) {
      put_i16(out, block.bbox.channel_lo);
      put_i16(out, block.bbox.channel_hi);
      put_i16(out, block.bbox.x_lo);
      put_i16(out, block.bbox.x_hi);
      for (std::int32_t v : block.values) {
        if (packet.absolute) {
          put_i16(out, v);
        } else {
          out.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(v)));
        }
      }
    }
  } else if (update) {
    for (std::int32_t v : packet.values) {
      if (packet.absolute) {
        put_i16(out, v);
      } else {
        out.push_back(static_cast<std::uint8_t>(static_cast<std::int8_t>(v)));
      }
    }
  } else if (packet.type == kMsgWireGrant) {
    if (packet.wires.empty()) {
      put_i32(out, packet.wire);
      put_i32(out, packet.iteration);
    } else {
      put_u16(out, static_cast<std::uint32_t>(packet.wires.size()));
      put_i32(out, packet.iteration);
      for (WireId w : packet.wires) put_i32(out, w);
    }
  } else if (packet.type == kMsgWireRequest && packet.extended) {
    put_i32(out, packet.completed);
    put_u16(out, static_cast<std::uint32_t>(packet.regions.size()));
    for (std::int32_t r : packet.regions) {
      put_u16(out, static_cast<std::uint32_t>(r));
    }
  } else if (packet.type == kMsgStealGrant) {
    put_u16(out, static_cast<std::uint32_t>(packet.wires.size()));
    put_i32(out, packet.iteration);
    for (WireId w : packet.wires) put_i32(out, w);
  }
  LOCUS_ASSERT(out.size() == static_cast<std::size_t>(kUpdateHeaderBytes) +
                                 frame_bytes + payload_bytes);
  return out;
}

std::optional<WirePacket> decode_packet(std::span<const std::uint8_t> buffer) {
  if (buffer.size() < static_cast<std::size_t>(kUpdateHeaderBytes)) {
    return std::nullopt;
  }
  WirePacket packet;
  packet.type = buffer[0];
  if (!is_known_type(packet.type)) return std::nullopt;
  const std::uint8_t flags = buffer[1];
  if ((flags & ~0x07u) != 0) return std::nullopt;
  packet.absolute = (flags & 1u) != 0;
  packet.has_transport = (flags & 2u) != 0;
  const bool batched = (flags & 4u) != 0;
  if (batched && !is_update_type(packet.type)) return std::nullopt;
  if (packet.type == kMsgAck && !packet.has_transport) return std::nullopt;
  packet.region = get_i16(buffer, 2);
  packet.bbox.channel_lo = get_i16(buffer, 4);
  packet.bbox.channel_hi = get_i16(buffer, 6);
  packet.bbox.x_lo = get_i16(buffer, 8);
  packet.bbox.x_hi = get_i16(buffer, 10);
  const std::int64_t payload_bytes = static_cast<std::uint32_t>(get_i32(buffer, 12));
  const std::int64_t frame_bytes =
      packet.has_transport ? kTransportFrameBytes : 0;
  if (static_cast<std::int64_t>(buffer.size()) !=
      kUpdateHeaderBytes + frame_bytes + payload_bytes) {
    return std::nullopt;  // truncated or trailing garbage
  }
  if (packet.has_transport) {
    packet.seq = get_u32(buffer, kUpdateHeaderBytes);
    packet.ack = get_u32(buffer, kUpdateHeaderBytes + 4);
  }
  const std::size_t payload_at =
      static_cast<std::size_t>(kUpdateHeaderBytes + frame_bytes);

  if (batched) {
    if (packet.absolute != (packet.type != kMsgSendRmtData)) return std::nullopt;
    if (packet.bbox.is_empty()) return std::nullopt;
    if (payload_bytes < 2) return std::nullopt;
    const std::int32_t per_cell =
        packet.absolute ? kAbsoluteBytesPerCell : kDeltaBytesPerCell;
    std::size_t at = payload_at;
    const std::size_t end = payload_at + static_cast<std::size_t>(payload_bytes);
    const std::uint32_t count =
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(buffer[at]) |
                                   (static_cast<std::uint16_t>(buffer[at + 1]) << 8));
    at += 2;
    if (count == 0) return std::nullopt;
    std::int64_t total_area = 0;
    packet.blocks.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      if (end - at < 8) return std::nullopt;
      UpdateBlock block;
      block.bbox.channel_lo = get_i16(buffer, at);
      block.bbox.channel_hi = get_i16(buffer, at + 2);
      block.bbox.x_lo = get_i16(buffer, at + 4);
      block.bbox.x_hi = get_i16(buffer, at + 6);
      at += 8;
      if (block.bbox.is_empty()) return std::nullopt;
      if (!packet.bbox.contains(block.bbox)) return std::nullopt;
      const std::int64_t area = block.bbox.area();
      total_area += area;
      if (total_area > kMaxUpdateCells) return std::nullopt;
      if (end - at < static_cast<std::size_t>(area * per_cell)) return std::nullopt;
      block.values.reserve(static_cast<std::size_t>(area));
      for (std::int64_t cell = 0; cell < area; ++cell) {
        if (packet.absolute) {
          block.values.push_back(get_i16(buffer, at));
          at += 2;
        } else {
          block.values.push_back(static_cast<std::int8_t>(buffer[at]));
          at += 1;
        }
      }
      packet.blocks.push_back(std::move(block));
    }
    if (at != end) return std::nullopt;  // trailing bytes inside the payload
    return packet;
  }
  if (is_update_type(packet.type)) {
    if (packet.absolute != (packet.type != kMsgSendRmtData)) return std::nullopt;
    if (packet.bbox.is_empty()) return std::nullopt;
    const std::int64_t area = packet.bbox.area();
    if (area > kMaxUpdateCells) return std::nullopt;
    const std::int32_t per_cell =
        packet.absolute ? kAbsoluteBytesPerCell : kDeltaBytesPerCell;
    if (payload_bytes != area * per_cell) return std::nullopt;
    packet.values.reserve(static_cast<std::size_t>(area));
    std::size_t at = payload_at;
    for (std::int64_t i = 0; i < area; ++i) {
      if (packet.absolute) {
        packet.values.push_back(get_i16(buffer, at));
        at += 2;
      } else {
        packet.values.push_back(static_cast<std::int8_t>(buffer[at]));
        at += 1;
      }
    }
    return packet;
  }
  if (packet.absolute) return std::nullopt;
  if (packet.type == kMsgWireGrant) {
    if (payload_bytes == 8) {
      packet.wire = get_i32(buffer, payload_at);
      if (packet.wire < kNoMoreWires) return std::nullopt;
      packet.iteration = get_i32(buffer, payload_at + 4);
      return packet;
    }
    // Batched form: u16 count (>= 2) + i32 iteration + count x i32 wires.
    if (payload_bytes < 6) return std::nullopt;
    const std::uint32_t count = get_u16(buffer, payload_at);
    if (count < 2) return std::nullopt;
    if (payload_bytes != 6 + 4 * static_cast<std::int64_t>(count)) {
      return std::nullopt;
    }
    packet.iteration = get_i32(buffer, payload_at + 2);
    packet.wires.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const WireId w = get_i32(buffer, payload_at + 6 + 4 * i);
      if (w < 0) return std::nullopt;
      packet.wires.push_back(w);
    }
    return packet;
  }
  if (packet.type == kMsgStealGrant) {
    if (payload_bytes < 6) return std::nullopt;
    const std::uint32_t count = get_u16(buffer, payload_at);
    if (payload_bytes != 6 + 4 * static_cast<std::int64_t>(count)) {
      return std::nullopt;
    }
    packet.iteration = get_i32(buffer, payload_at + 2);
    packet.wires.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const WireId w = get_i32(buffer, payload_at + 6 + 4 * i);
      if (w < 0) return std::nullopt;
      packet.wires.push_back(w);
    }
    return packet;
  }
  if (packet.type == kMsgWireRequest && payload_bytes != 0) {
    // Extended form: i32 completed + u16 count + count x u16 region ids.
    if (payload_bytes < 6) return std::nullopt;
    packet.extended = true;
    packet.completed = get_i32(buffer, payload_at);
    if (packet.completed < 0) return std::nullopt;
    const std::uint32_t count = get_u16(buffer, payload_at + 4);
    if (payload_bytes != 6 + 2 * static_cast<std::int64_t>(count)) {
      return std::nullopt;
    }
    packet.regions.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      packet.regions.push_back(
          static_cast<std::int32_t>(get_u16(buffer, payload_at + 6 + 2 * i)));
    }
    return packet;
  }
  if (payload_bytes != 0) return std::nullopt;  // requests/probes/acks: none
  return packet;
}

}  // namespace locus
