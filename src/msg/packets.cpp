#include "msg/packets.hpp"

#include "support/assert.hpp"

namespace locus {

std::int32_t update_packet_bytes(PacketStructure structure, const Rect& bbox,
                                 bool absolute, std::int64_t segments_changed,
                                 std::int64_t region_area) {
  const std::int32_t per_cell = absolute ? kAbsoluteBytesPerCell : kDeltaBytesPerCell;
  std::int64_t payload = 0;
  switch (structure) {
    case PacketStructure::kBoundingBox:
      payload = bbox.area() * per_cell;
      break;
    case PacketStructure::kWholeRegion:
      payload = region_area * per_cell;
      break;
    case PacketStructure::kWireBased:
      payload = segments_changed * kWireSegmentBytes;
      break;
  }
  LOCUS_ASSERT(payload >= 0);
  return kUpdateHeaderBytes + static_cast<std::int32_t>(payload);
}

std::int32_t request_packet_bytes() { return kUpdateHeaderBytes; }

std::int32_t grant_packet_bytes() { return kUpdateHeaderBytes + 8; }

}  // namespace locus
