// Builds and runs one message passing LocusRoute experiment: partition the
// cost array over a processor mesh, install a RouterNode per processor with
// its statically assigned wires, simulate to completion, and compute the
// paper's reported metrics (circuit height, occupancy factor, MBytes
// transferred, execution time).
#pragma once

#include <cstdint>
#include <vector>

#include "assign/assignment.hpp"
#include "circuit/circuit.hpp"
#include "geom/partition.hpp"
#include "msg/config.hpp"
#include "msg/node.hpp"
#include "route/router.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/network.hpp"

namespace locus {

struct MpRunResult {
  std::int64_t circuit_height = 0;
  std::int64_t occupancy_factor = 0;
  std::uint64_t bytes_transferred = 0;  ///< on-wire bytes, all packet types
  double mbytes() const { return static_cast<double>(bytes_transferred) / 1e6; }
  SimTime completion_ns = 0;            ///< all processors done routing
  double seconds() const { return static_cast<double>(completion_ns) / 1e9; }

  NetworkStats network;
  MachineStats machine;
  RouteWorkStats work;                  ///< summed over processors
  TimeBreakdown time_breakdown;         ///< summed over processors
  std::int64_t updates_suppressed = 0;
  std::int64_t requests_sent = 0;
  /// Dynamic-scheduling counters (all zero for static runs / the legacy
  /// FIFO protocol where noted).
  std::int64_t grants_issued = 0;    ///< extended protocol only
  std::int64_t grant_wires = 0;      ///< extended protocol only
  std::int64_t affinity_grants = 0;  ///< GrantPolicy::kLocality only
  std::int64_t steal_requests = 0;   ///< neighbor_steal only
  std::int64_t steal_wires = 0;      ///< neighbor_steal only
  /// Wires routed by each processor in total (all iterations) — the load
  /// balance the scale sweep reports alongside routes/sec.
  std::vector<std::int64_t> routed_per_proc;
  FaultStats faults;                    ///< all-zero when no plan installed
  TransportStats transport;             ///< all-zero when transport disabled
  /// Per-link usage aggregate from the active LinkCostModel, measured at
  /// the machine's drain time (stalls are zero under kFixed only when no
  /// two packets ever contended for a link).
  LinkUsageSummary link_usage;
  /// Bytes that crossed each directed link (data + control). Sums exactly
  /// to network.byte_hops under every cost model and topology.
  std::vector<std::uint64_t> link_bytes;
  std::vector<WireRoute> routes;        ///< final routing, indexed by wire id

  /// Mean absolute error of the processors' final cost-array views against
  /// the true final array — a direct measure of how much staleness the
  /// update schedule left behind (lower = more consistent).
  double view_staleness = 0.0;
  /// Same error restricted to each processor's own region. Owners receive
  /// every SendRmtData for their region, so frequent schedules drive this
  /// toward zero.
  double own_region_staleness = 0.0;

  /// Cell storage actually allocated across all processor views at the end
  /// of the run (== procs x grid size for dense views; the point of the
  /// sharded configuration is that this stays far below that at scale).
  std::int64_t view_resident_cells = 0;
  std::int64_t view_resident_bytes = 0;
};

/// Runs message passing LocusRoute on `circuit` with the given static
/// `assignment` over `partition` (assignment.num_procs() must equal
/// partition.num_regions()). Deterministic.
MpRunResult run_message_passing(const Circuit& circuit, const Partition& partition,
                                const Assignment& assignment, const MpConfig& config);

/// Convenience: builds the near-square mesh partition for `procs`, applies
/// the default locality assignment (ThresholdCost = 1000, the paper's usual
/// baseline), and runs.
MpRunResult run_message_passing(const Circuit& circuit, std::int32_t procs,
                                const MpConfig& config);

}  // namespace locus
