#include "msg/node.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "grid/tiled_cost_array.hpp"
#include "msg/observer.hpp"
#include "support/assert.hpp"

namespace locus {

namespace {

/// Points the explorer at the shared routing-work counters when the run is
/// instrumented (MpShared::explorer_obs is bound before node construction).
RouterParams with_explorer_obs(RouterParams params, const MpShared& shared) {
#if LOCUS_OBS_ENABLED
  if (shared.explorer_obs) params.explorer.obs = &shared.explorer_obs;
#else
  static_cast<void>(shared);
#endif
  return params;
}

/// Dense view at paper scale; sparse tiles when sharding is on. The node's
/// own region is pinned resident up front — it receives every remote delta
/// and must answer absolute requests from wire 0.
std::unique_ptr<GridBacking> make_view(const Circuit& circuit,
                                       const Partition& partition,
                                       const MpConfig& config, ProcId self) {
  if (!config.shard.enabled) {
    return std::make_unique<CostArray>(circuit.channels(), circuit.grids());
  }
  auto tiled = std::make_unique<TiledCostArray>(circuit.channels(),
                                                circuit.grids(), config.shard.tile);
  tiled->ensure_rect(partition.region(self));
  return tiled;
}

DeltaArray make_delta(const Partition& partition, const MpConfig& config) {
  if (!config.shard.enabled) return DeltaArray(partition);
  return DeltaArray(partition, config.shard.tile);
}

/// Converts extracted delta blocks into wire-format update blocks.
std::vector<UpdateBlock> to_update_blocks(std::vector<DeltaArray::Extract> extracts) {
  std::vector<UpdateBlock> blocks;
  blocks.reserve(extracts.size());
  for (DeltaArray::Extract& e : extracts) {
    blocks.push_back(UpdateBlock{e.bbox, std::move(e.values)});
  }
  return blocks;
}

}  // namespace

RouterNode::RouterNode(const Circuit& circuit, const Partition& partition,
                       const MpConfig& config, std::vector<WireId> my_wires,
                       ProcId self, MpShared& shared)
    : circuit_(circuit), partition_(partition), config_(config),
      my_wires_(std::move(my_wires)), self_(self), shared_(shared),
      view_(make_view(circuit, partition, config, self)),
      delta_(make_delta(partition, config)),
      view_with_delta_(*view_, delta_),
      router_(circuit.channels(), with_explorer_obs(config.router, shared)),
      touch_count_(static_cast<std::size_t>(partition.num_regions()), 0),
      interest_bbox_(static_cast<std::size_t>(partition.num_regions())),
      req_rmt_received_(static_cast<std::size_t>(partition.num_regions()), 0),
      segments_changed_(static_cast<std::size_t>(partition.num_regions()), 0),
      granted_to_(static_cast<std::size_t>(partition.num_regions()), false) {
  if (config.assignment_mode != WireAssignmentMode::kStatic &&
      config.dynamic.extended_protocol()) {
    if (self == 0 && config.dynamic.policy == GrantPolicy::kLocality) {
      affinity_ = std::make_unique<WireAffinityIndex>(circuit, partition);
    }
    if (self != 0 && config.dynamic.neighbor_steal) {
      // The master is never probed: asking it for a wire *is* the normal
      // request path, and its queue is the global one.
      for (ProcId n : partition.neighbors(self)) {
        if (n != 0) steal_neighbors_.push_back(n);
      }
    }
  }
}

void RouterNode::on_start(NodeApi& api) { static_cast<void>(api); }

TimeBreakdown& RouterNode::breakdown() {
  return shared_.time_breakdown[static_cast<std::size_t>(self_)];
}

bool RouterNode::blocked() const {
  if (config_.schedule.blocking_receiver && pending_responses_ > 0) return true;
  if (config_.assignment_mode == WireAssignmentMode::kStatic || self_ == 0) {
    return false;
  }
  if (config_.dynamic.extended_protocol()) {
    // Extended worker parked while its queue is drained and a grant or a
    // steal reply is in flight.
    return queue_head_ >= wire_queue_.size() &&
           (waiting_grant_ || waiting_steal_) && !no_more_;
  }
  // Dynamic-assignment worker parked until its wire grant arrives.
  return waiting_grant_ && granted_wire_ < 0 && !no_more_;
}

void RouterNode::on_packet(NodeApi& api, const Packet& packet) {
  const TimeModel& tm = config_.time;
  // Receive-side software: fixed handling plus per-byte disassembly.
  const SimTime unpack_cost =
      tm.msg_fixed_ns + static_cast<SimTime>(packet.bytes) * tm.unpack_byte_ns;
  api.advance(unpack_cost);
  breakdown().msg_software_ns += unpack_cost;
  LOCUS_OBS_HOOK(if (shared_.node_obs) {
    const obs::MpNodeObs& o = shared_.node_obs;
    const std::size_t k = obs::msg_kind_index(packet.type);
    o.obs->counters().add(o.shard, o.received[k]);
    o.obs->counters().add(o.shard, o.received_bytes[k],
                          static_cast<std::uint64_t>(packet.bytes));
  });

  switch (packet.type) {
    case kMsgSendLocData:
    case kMsgRspRmtData: {
      const auto& update = packet.payload_as<RegionUpdatePayload>();
      LOCUS_ASSERT(update.absolute);
      // Replace our view of the sender's region with its absolute data
      // (paper §4.3.2: "receiving processors replace their view"). A
      // batched packet replaces each tight block instead of the whole box.
      if (!update.blocks.empty()) {
        for (const UpdateBlock& block : update.blocks) {
          view_->write_rect(block.bbox, block.values);
        }
      } else {
        view_->write_rect(update.bbox, update.values);
      }
      if (packet.type == kMsgRspRmtData) {
        // A duplicated response (fault injection) must not drive the count
        // negative; the extra copy is just a redundant view refresh.
        if (pending_responses_ > 0) --pending_responses_;
        ++shared_.responses_received;
      }
      break;
    }
    case kMsgSendRmtData: {
      const auto& update = packet.payload_as<RegionUpdatePayload>();
      LOCUS_ASSERT(!update.absolute);
      LOCUS_ASSERT_MSG(update.region == self_,
                       "delta updates are addressed to the region owner");
      if (!update.blocks.empty()) {
        for (const UpdateBlock& block : update.blocks) {
          apply_delta_block(block.bbox, block.values);
        }
      } else {
        apply_delta_block(update.bbox, update.values);
      }
      break;
    }
    case kMsgReqRmtData: {
      const auto& request = packet.payload_as<RequestPayload>();
      LOCUS_ASSERT(request.region == self_);
      // ReqLocData trigger: a remote routing often in our region probably
      // has deltas we want (paper §4.3.3).
      if (config_.schedule.req_loc_requests > 0) {
        std::int32_t& count = req_rmt_received_[static_cast<std::size_t>(packet.src)];
        if (++count >= config_.schedule.req_loc_requests) {
          count = 0;
          auto [req, req_data] = make_payload<RequestPayload>();
          req_data->region = self_;
          req_data->bbox = partition_.region(self_);
          api.advance(config_.time.msg_fixed_ns);
          breakdown().msg_software_ns += config_.time.msg_fixed_ns;
          api.send(packet.src, kMsgReqLocData, request_packet_bytes(), std::move(req));
          note_sent(kMsgReqLocData, request_packet_bytes());
          breakdown().network_copy_ns += config_.time.process_time_ns;
          ++shared_.requests_sent;
        }
      }
      // Always respond (a blocking requester is waiting): absolute values
      // inside the requested window of our region.
      Rect window = Rect::intersection(
          request.bbox.is_empty() ? partition_.region(self_) : request.bbox,
          partition_.region(self_));
      LOCUS_ASSERT(!window.is_empty());
      std::vector<std::int32_t> values;
      view_->read_rect(window, values);
      send_data_update(api, packet.src, kMsgRspRmtData, self_, window,
                       /*absolute=*/true, std::move(values));
      break;
    }
    case kMsgReqLocData: {
      const auto& request = packet.payload_as<RequestPayload>();
      LOCUS_ASSERT(request.region != self_);
      // The owner of `request.region` wants our pending deltas for it.
      if (config_.shard.batch_updates) {
        if (auto blocks =
                delta_.extract_region_blocks(request.region, config_.shard.tile)) {
          api.advance(delta_.last_scan_cells() * config_.time.scan_cell_ns);
          breakdown().msg_software_ns +=
              delta_.last_scan_cells() * config_.time.scan_cell_ns;
          send_batched_update(api, packet.src, kMsgSendRmtData, request.region,
                              /*absolute=*/false,
                              to_update_blocks(std::move(*blocks)));
          break;
        }
        ++shared_.updates_suppressed;
        LOCUS_OBS_HOOK(if (shared_.node_obs) {
          shared_.node_obs.obs->counters().add(shared_.node_obs.shard,
                                               shared_.node_obs.updates_suppressed);
        });
        break;
      }
      if (auto extract = delta_.extract_region(request.region)) {
        api.advance(delta_.last_scan_cells() * config_.time.scan_cell_ns);
        breakdown().msg_software_ns += delta_.last_scan_cells() * config_.time.scan_cell_ns;
        send_data_update(api, packet.src, kMsgSendRmtData, request.region,
                         extract->bbox, /*absolute=*/false,
                         std::move(extract->values));
      } else {
        ++shared_.updates_suppressed;
        LOCUS_OBS_HOOK(if (shared_.node_obs) {
          shared_.node_obs.obs->counters().add(shared_.node_obs.shard,
                                               shared_.node_obs.updates_suppressed);
        });
      }
      break;
    }
    case kMsgWireRequest: {
      LOCUS_ASSERT_MSG(self_ == 0, "wire requests go to the queue owner");
      if (config_.dynamic.extended_protocol()) {
        const auto& request = packet.payload_as<WireRequestPayload>();
        outstanding_wires_ -= request.completed;
        LOCUS_ASSERT(outstanding_wires_ >= 0);
        pending_ext_.push_back(PendingRequest{packet.src, request.resident});
        drain_pending_grants_ext(api);
        break;
      }
      note_request_from(packet.src);
      pending_requests_.push_back(packet.src);
      drain_pending_grants(api);
      break;
    }
    case kMsgWireGrant: {
      if (config_.dynamic.extended_protocol()) {
        const auto& grant = packet.payload_as<WireListPayload>();
        waiting_grant_ = false;
        if (grant.wires.empty()) {
          no_more_ = true;
        } else {
          wire_queue_.insert(wire_queue_.end(), grant.wires.begin(),
                             grant.wires.end());
          granted_iteration_ = grant.iteration;
          steal_probe_next_ = 0;  // fresh work rearms the probe rotation
        }
        break;
      }
      const auto& grant = packet.payload_as<GrantPayload>();
      waiting_grant_ = false;
      if (grant.wire < 0) {
        no_more_ = true;
      } else {
        granted_wire_ = grant.wire;
        granted_iteration_ = grant.iteration;
      }
      break;
    }
    case kMsgStealRequest: {
      LOCUS_ASSERT_MSG(self_ != 0 && config_.dynamic.neighbor_steal,
                       "steal probes go to worker neighbors only");
      // Donate half the still-queued wires (tail first, never the wire in
      // flight) when the queue is deep enough; an empty list declines.
      std::vector<WireId> donated;
      const std::size_t queued = wire_queue_.size() - queue_head_;
      if (!no_more_ &&
          queued >= static_cast<std::size_t>(config_.dynamic.steal_threshold)) {
        const std::size_t donate = queued / 2;
        donated.assign(wire_queue_.end() - static_cast<std::ptrdiff_t>(donate),
                       wire_queue_.end());
        wire_queue_.resize(wire_queue_.size() - donate);
      }
      auto [reply, reply_data] = make_payload<WireListPayload>();
      reply_data->iteration = granted_iteration_;
      reply_data->wires = std::move(donated);
      const std::int32_t bytes = batch_grant_packet_bytes(
          static_cast<std::int32_t>(reply_data->wires.size()));
      api.advance(config_.time.msg_fixed_ns);
      breakdown().msg_software_ns += config_.time.msg_fixed_ns;
      api.send(packet.src, kMsgStealGrant, bytes, std::move(reply));
      note_sent(kMsgStealGrant, bytes);
      breakdown().network_copy_ns += config_.time.process_time_ns;
      break;
    }
    case kMsgStealGrant: {
      const auto& grant = packet.payload_as<WireListPayload>();
      waiting_steal_ = false;
      if (!grant.wires.empty()) {
        wire_queue_.insert(wire_queue_.end(), grant.wires.begin(),
                           grant.wires.end());
        granted_iteration_ = grant.iteration;
        steal_probe_next_ = 0;
        shared_.steal_wires += static_cast<std::int64_t>(grant.wires.size());
        LOCUS_OBS_HOOK(if (shared_.node_obs) {
          const obs::MpNodeObs& o = shared_.node_obs;
          o.obs->counters().add(o.shard, o.steal_wires, grant.wires.size());
        });
      }
      break;
    }
    case kMsgAck:
      // Transport control traffic terminates in the transport layer; an ack
      // reaching the application would mean the network misrouted it.
      LOCUS_UNREACHABLE("transport acks never reach the application");
    default:
      LOCUS_UNREACHABLE("unknown packet type");
  }
}

bool RouterNode::on_step(NodeApi& api) {
  if (config_.assignment_mode != WireAssignmentMode::kStatic) {
    return dynamic_step(api);
  }
  if (cursor_ >= my_wires_.size()) {
    ++iteration_;
    if (iteration_ >= config_.iterations || my_wires_.empty()) {
      return false;
    }
    cursor_ = 0;
    lookahead_cursor_ = 0;
    return true;  // iteration bookkeeping consumed this step
  }

  if (config_.schedule.receiver_enabled()) {
    advance_lookahead(api);
  }
  route_one_wire(api);
  fire_sender_updates(api);
  return true;
}

void RouterNode::advance_lookahead(NodeApi& api) {
  const UpdateSchedule& sched = config_.schedule;
  const std::size_t target =
      std::min(my_wires_.size(),
               cursor_ + static_cast<std::size_t>(sched.request_lookahead));
  while (lookahead_cursor_ < target) {
    const Wire& wire = circuit_.wire(my_wires_[lookahead_cursor_++]);
    const Rect wire_box = wire.pin_bbox();
    for (ProcId region : partition_.regions_overlapping(wire_box)) {
      if (region == self_) continue;
      auto r = static_cast<std::size_t>(region);
      interest_bbox_[r].expand(
          Rect::intersection(wire_box, partition_.region(region)));
      if (++touch_count_[r] >= sched.req_rmt_touches) {
        touch_count_[r] = 0;
        auto [req, req_data] = make_payload<RequestPayload>();
        req_data->region = region;
        req_data->bbox = interest_bbox_[r];
        interest_bbox_[r] = Rect::empty();
        api.advance(config_.time.msg_fixed_ns);
        breakdown().msg_software_ns += config_.time.msg_fixed_ns;
        api.send(region, kMsgReqRmtData, request_packet_bytes(), std::move(req));
        note_sent(kMsgReqRmtData, request_packet_bytes());
        breakdown().network_copy_ns += config_.time.process_time_ns;
        ++shared_.requests_sent;
        ++pending_responses_;
      }
    }
  }
}

void RouterNode::route_one_wire(NodeApi& api) {
  route_wire_id(api, my_wires_[cursor_++], iteration_, /*charge_now=*/true);
}

SimTime RouterNode::route_wire_id(NodeApi& api, WireId wire_id,
                                  std::int32_t iteration, bool charge_now) {
  const TimeModel& tm = config_.time;
  const Wire& wire = circuit_.wire(wire_id);
  WireRoute& slot = shared_.final_routes[static_cast<std::size_t>(wire_id)];

  SimTime cost = 0;
  if (slot.routed()) {
    WireRouter::rip_up(slot, view_with_delta_);
    WireRouter::rip_up(slot, shared_.truth);
    cost += static_cast<SimTime>(slot.cells.size()) * tm.commit_ns;
    note_route_segments(slot);
    LOCUS_OBS_HOOK(if (shared_.node_obs) {
      shared_.node_obs.obs->counters().add(shared_.node_obs.shard,
                                           shared_.node_obs.ripups);
    });
  }

  RouteWorkStats& work = shared_.work[static_cast<std::size_t>(self_)];
  const RouteWorkStats before = work;
  slot = router_.route_wire(wire, view_with_delta_, work);
  cost += tm.routing_time_ns(work.probes - before.probes,
                             work.cells_committed - before.cells_committed, 1);
  note_route_segments(slot);

  if (charge_now) {
    LOCUS_OBS_HOOK(if (shared_.node_obs) {
      const obs::MpNodeObs& o = shared_.node_obs;
      if (obs::TraceSink* t = o.obs->trace()) {
        // The span covers the rip-up + re-route compute about to be charged.
        t->complete(self_, o.cat_route, o.n_route, api.now(), cost, o.a_wire,
                    wire_id, o.a_iteration, iteration);
      }
    });
    api.advance(cost);
    breakdown().routing_ns += cost;
  }
  LOCUS_OBS_HOOK(if (shared_.node_obs) {
    const obs::MpNodeObs& o = shared_.node_obs;
    o.obs->counters().add(o.shard, o.wires_routed);
    o.obs->counters().add(o.shard, o.cells_committed, slot.cells.size());
  });

  // Price the chosen path against the global oracle *before* committing it
  // there (measurement only — see MpShared::truth).
  if (iteration + 1 == config_.iterations) {
    std::int64_t true_cost = 0;
    for (const GridPoint& p : slot.cells) true_cost += shared_.truth.read(p);
    shared_.occupancy[static_cast<std::size_t>(self_)] += true_cost;
  }
  for (const GridPoint& p : slot.cells) shared_.truth.add(p, +1);
  if (config_.observer != nullptr) {
    config_.observer->on_wire_routed(self_, wire_id, iteration);
  }
  return cost;
}

// --- dynamic wire assignment (paper §4.2's two dynamic schemes) ---

WireId RouterNode::take_next_wire(std::int32_t* iteration) {
  if (dyn_next_wire_ >= circuit_.num_wires()) {
    if (dyn_iteration_ + 1 >= config_.iterations) {
      *iteration = dyn_iteration_;
      return kGrantDone;
    }
    // The next iteration only starts once every granted wire has been
    // routed (the grantee's next request confirms it); granting across the
    // boundary would let two processors hold the same wire's route slot.
    if (outstanding_grants_ > 0) {
      *iteration = dyn_iteration_;
      return kGrantWait;
    }
    ++dyn_iteration_;
    dyn_next_wire_ = 0;
  }
  *iteration = dyn_iteration_;
  return dyn_next_wire_++;
}

void RouterNode::note_request_from(ProcId src) {
  auto s = static_cast<std::size_t>(src);
  if (granted_to_[s]) {
    granted_to_[s] = false;
    --outstanding_grants_;
    LOCUS_ASSERT(outstanding_grants_ >= 0);
  }
}

void RouterNode::send_grant(NodeApi& api, ProcId dst, WireId wire,
                            std::int32_t iteration) {
  auto [grant, grant_data] = make_payload<GrantPayload>();
  grant_data->wire = wire;
  grant_data->iteration = iteration;
  api.advance(config_.time.msg_fixed_ns);
  breakdown().msg_software_ns += config_.time.msg_fixed_ns;
  api.send(dst, kMsgWireGrant, grant_packet_bytes(), std::move(grant));
  note_sent(kMsgWireGrant, grant_packet_bytes());
  breakdown().network_copy_ns += config_.time.process_time_ns;
  if (wire >= 0) {
    granted_to_[static_cast<std::size_t>(dst)] = true;
    ++outstanding_grants_;
  }
}

void RouterNode::drain_pending_grants(NodeApi& api) {
  while (!pending_requests_.empty()) {
    std::int32_t iteration = 0;
    WireId wire = take_next_wire(&iteration);
    if (wire == kGrantWait) return;  // rollover pending; keep them queued
    ProcId dst = pending_requests_.front();
    pending_requests_.erase(pending_requests_.begin());
    send_grant(api, dst, wire, iteration);
  }
}

void RouterNode::request_wire(NodeApi& api) {
  waiting_grant_ = true;
  api.advance(config_.time.msg_fixed_ns);
  breakdown().msg_software_ns += config_.time.msg_fixed_ns;
  api.send(0, kMsgWireRequest, request_packet_bytes(), nullptr);
  note_sent(kMsgWireRequest, request_packet_bytes());
  breakdown().network_copy_ns += config_.time.process_time_ns;
  ++shared_.requests_sent;
}

bool RouterNode::dynamic_step(NodeApi& api) {
  if (config_.dynamic.extended_protocol()) {
    return self_ == 0 ? master_step_ext(api) : worker_step_ext(api);
  }
  if (self_ == 0) {
    // Queue owner: continue a sliced wire first (requests were serviced by
    // on_packet between slices — the "interrupt" model).
    if (slice_remaining_ > 0) {
      const SimTime slice = std::min(slice_remaining_, config_.interrupt_slice_ns);
      api.advance(slice);
      breakdown().routing_ns += slice;
      slice_remaining_ -= slice;
      if (slice_remaining_ == 0) fire_sender_updates(api);
      return true;
    }
    std::int32_t iteration = 0;
    const WireId wire = take_next_wire(&iteration);
    if (wire == kGrantDone || wire == kGrantWait) {
      // Nothing to route now; arriving requests will wake us.
      return false;
    }
    const SimTime cost = route_wire_id(api, wire, iteration, /*charge_now=*/false);
    if (config_.assignment_mode == WireAssignmentMode::kDynamicInterrupt) {
      slice_remaining_ = cost;
      const SimTime slice = std::min(slice_remaining_, config_.interrupt_slice_ns);
      api.advance(slice);
      breakdown().routing_ns += slice;
      slice_remaining_ -= slice;
      if (slice_remaining_ == 0) fire_sender_updates(api);
    } else {
      api.advance(cost);
      breakdown().routing_ns += cost;
      fire_sender_updates(api);
    }
    return true;
  }

  // Worker: request, wait (blocked()), route, repeat.
  if (no_more_) return false;
  if (granted_wire_ < 0) {
    if (!waiting_grant_) request_wire(api);
    return true;  // the engine parks us via blocked() until the grant lands
  }
  const WireId wire = granted_wire_;
  const std::int32_t iteration = granted_iteration_;
  granted_wire_ = -1;
  waiting_grant_ = false;
  route_wire_id(api, wire, iteration, /*charge_now=*/true);
  fire_sender_updates(api);
  request_wire(api);
  return true;
}

// --- extended dynamic protocol: locality grants, batching, stealing ---

std::span<const ProcId> RouterNode::resident_summary() {
  if (config_.dynamic.policy != GrantPolicy::kLocality) return {};
  // Tiles are never released mid-run, so the resident cell count is a
  // monotone key: unchanged count means an unchanged tile set.
  const std::int64_t cells = view_->resident_cells();
  if (cells == resident_snapshot_cells_) return resident_summary_;
  resident_snapshot_cells_ = cells;
  resident_summary_.clear();
  for (ProcId r = 0; r < partition_.num_regions(); ++r) {
    if (view_->any_resident_in(partition_.region(r))) {
      resident_summary_.push_back(r);
    }
  }
  std::stable_sort(resident_summary_.begin(), resident_summary_.end(),
                   [&](ProcId a, ProcId b) {
                     const std::int32_t da = partition_.hop_distance(self_, a);
                     const std::int32_t db = partition_.hop_distance(self_, b);
                     if (da != db) return da < db;
                     return a < b;
                   });
  const auto cap = static_cast<std::size_t>(
      std::max<std::int32_t>(0, config_.dynamic.resident_summary_cap));
  if (resident_summary_.size() > cap) resident_summary_.resize(cap);
  return resident_summary_;
}

RouterNode::TakeStatus RouterNode::take_wires_ext(
    ProcId home, std::span<const ProcId> resident, std::int32_t count,
    std::int32_t* iteration, std::vector<WireId>* out) {
  const bool locality = config_.dynamic.policy == GrantPolicy::kLocality;
  const auto exhausted = [&] {
    return locality ? affinity_->remaining() == 0
                    : dyn_next_wire_ >= circuit_.num_wires();
  };
  while (static_cast<std::int32_t>(out->size()) < count) {
    if (exhausted()) {
      if (!out->empty()) break;  // partial batch; never straddle iterations
      if (dyn_iteration_ + 1 >= config_.iterations) {
        *iteration = dyn_iteration_;
        return TakeStatus::kDone;
      }
      // Same gate as the legacy protocol: the next iteration starts only
      // once every granted wire's completion has been reported, so no two
      // processors can hold one wire's route slot.
      if (outstanding_wires_ > 0) {
        *iteration = dyn_iteration_;
        return TakeStatus::kWait;
      }
      ++dyn_iteration_;
      if (locality) {
        affinity_->reset();
      } else {
        dyn_next_wire_ = 0;
      }
      // The fresh iteration rearms every bucket, so radius-deferred
      // requesters become serviceable again.
      for (PendingRequest& d : deferred_ext_) {
        pending_ext_.push_back(std::move(d));
      }
      deferred_ext_.clear();
      continue;
    }
    if (locality) {
      WireAffinityIndex::Tier tier = WireAffinityIndex::Tier::kAny;
      // The batch budget is denominated in routing cost, not wire count:
      // `count` mean-cost wires' worth per grant, up to 4x that many when
      // the donor bucket's cheap end makes wires nearly free. One grant
      // then carries a bounded slice of TIME — a single chip-spanner or a
      // fistful of short wires — so large batches cannot serialize the
      // expensive tail on one processor.
      const std::int32_t want = count <= 1 ? 1 : count * 4;
      const std::int64_t budget =
          count <= 1 ? 0 : count * affinity_->mean_wire_cost();
      const std::int32_t got =
          affinity_->take_batch(home, resident, want, budget,
                                config_.dynamic.locality_radius, out, &tier);
      if (got == 0) {
        // Wires remain, but none homed inside the requester's roam radius.
        *iteration = dyn_iteration_;
        return TakeStatus::kDefer;
      }
      if (tier == WireAffinityIndex::Tier::kResident) {
        shared_.affinity_grants += got;
        LOCUS_OBS_HOOK(if (shared_.node_obs) {
          shared_.node_obs.obs->counters().add(
              shared_.node_obs.shard, shared_.node_obs.affinity_hits,
              static_cast<std::uint64_t>(got));
        });
      }
      // One donor bucket per grant: a short batch is preferable to
      // spilling the requester's footprint into a second region.
      break;
    }
    out->push_back(dyn_next_wire_++);
  }
  *iteration = dyn_iteration_;
  return TakeStatus::kOk;
}

void RouterNode::send_grant_ext(NodeApi& api, ProcId dst,
                                std::vector<WireId> wires,
                                std::int32_t iteration) {
  const auto count = static_cast<std::int32_t>(wires.size());
  // Single-wire (and no-more) grants keep the legacy 8-byte payload; only
  // real batches pay the list form.
  const std::int32_t bytes =
      count <= 1 ? grant_packet_bytes() : batch_grant_packet_bytes(count);
  auto [grant, grant_data] = make_payload<WireListPayload>();
  grant_data->iteration = iteration;
  grant_data->wires = std::move(wires);
  api.advance(config_.time.msg_fixed_ns);
  breakdown().msg_software_ns += config_.time.msg_fixed_ns;
  api.send(dst, kMsgWireGrant, bytes, std::move(grant));
  note_sent(kMsgWireGrant, bytes);
  breakdown().network_copy_ns += config_.time.process_time_ns;
  outstanding_wires_ += count;
  ++shared_.grants_issued;
  shared_.grant_wires += count;
  LOCUS_OBS_HOOK(if (shared_.node_obs) {
    const obs::MpNodeObs& o = shared_.node_obs;
    o.obs->counters().add(o.shard, o.grants);
    o.obs->counters().add(o.shard, o.grant_wires,
                          static_cast<std::uint64_t>(count));
  });
}

void RouterNode::drain_pending_grants_ext(NodeApi& api) {
  while (!pending_ext_.empty()) {
    // By value: the rollover inside take_wires_ext re-queues deferred
    // requests into pending_ext_, which may reallocate it.
    PendingRequest head = std::move(pending_ext_.front());
    pending_ext_.erase(pending_ext_.begin());
    std::int32_t iteration = 0;
    std::vector<WireId> wires;
    const TakeStatus status =
        take_wires_ext(head.src, head.resident, config_.dynamic.grant_batch,
                       &iteration, &wires);
    if (status == TakeStatus::kWait) {
      // Rollover gated on outstanding completions; keep the queue intact.
      pending_ext_.insert(pending_ext_.begin(), std::move(head));
      return;
    }
    if (status == TakeStatus::kDefer) {
      deferred_ext_.push_back(std::move(head));
      continue;
    }
    if (status == TakeStatus::kDone) {
      // Run exhausted: radius-deferred requesters get the same final
      // no-more grant as everyone else.
      for (PendingRequest& d : deferred_ext_) {
        pending_ext_.push_back(std::move(d));
      }
      deferred_ext_.clear();
    }
    send_grant_ext(api, head.src, std::move(wires), iteration);
  }
}

void RouterNode::request_wire_ext(NodeApi& api) {
  waiting_grant_ = true;
  auto [request, request_data] = make_payload<WireRequestPayload>();
  request_data->completed = completed_unreported_;
  completed_unreported_ = 0;
  const std::span<const ProcId> resident = resident_summary();
  request_data->resident.assign(resident.begin(), resident.end());
  const std::int32_t bytes =
      wire_request_packet_bytes(static_cast<std::int32_t>(resident.size()));
  api.advance(config_.time.msg_fixed_ns);
  breakdown().msg_software_ns += config_.time.msg_fixed_ns;
  api.send(0, kMsgWireRequest, bytes, std::move(request));
  note_sent(kMsgWireRequest, bytes);
  breakdown().network_copy_ns += config_.time.process_time_ns;
  ++shared_.requests_sent;
}

void RouterNode::send_steal_probe(NodeApi& api) {
  const ProcId victim = steal_neighbors_[steal_probe_next_++];
  waiting_steal_ = true;
  api.advance(config_.time.msg_fixed_ns);
  breakdown().msg_software_ns += config_.time.msg_fixed_ns;
  api.send(victim, kMsgStealRequest, steal_request_packet_bytes(), nullptr);
  note_sent(kMsgStealRequest, steal_request_packet_bytes());
  breakdown().network_copy_ns += config_.time.process_time_ns;
  ++shared_.steal_requests;
  LOCUS_OBS_HOOK(if (shared_.node_obs) {
    shared_.node_obs.obs->counters().add(shared_.node_obs.shard,
                                         shared_.node_obs.steal_probes);
  });
}

bool RouterNode::master_step_ext(NodeApi& api) {
  // Same slicing structure as the legacy master: requests are serviced by
  // on_packet between slices (the "interrupt" model).
  if (slice_remaining_ > 0) {
    const SimTime slice = std::min(slice_remaining_, config_.interrupt_slice_ns);
    api.advance(slice);
    breakdown().routing_ns += slice;
    slice_remaining_ -= slice;
    if (slice_remaining_ == 0) fire_sender_updates(api);
    return true;
  }
  std::int32_t iteration = 0;
  std::vector<WireId> mine;
  const TakeStatus status =
      take_wires_ext(0, resident_summary(), 1, &iteration, &mine);
  if (status != TakeStatus::kOk) {
    return false;  // nothing to route now; arriving requests will wake us
  }
  LOCUS_ASSERT(mine.size() == 1);
  const SimTime cost =
      route_wire_id(api, mine.front(), iteration, /*charge_now=*/false);
  if (config_.assignment_mode == WireAssignmentMode::kDynamicInterrupt) {
    slice_remaining_ = cost;
    const SimTime slice = std::min(slice_remaining_, config_.interrupt_slice_ns);
    api.advance(slice);
    breakdown().routing_ns += slice;
    slice_remaining_ -= slice;
    if (slice_remaining_ == 0) fire_sender_updates(api);
  } else {
    api.advance(cost);
    breakdown().routing_ns += cost;
    fire_sender_updates(api);
  }
  return true;
}

bool RouterNode::worker_step_ext(NodeApi& api) {
  if (queue_head_ < wire_queue_.size()) {
    const WireId wire = wire_queue_[queue_head_++];
    if (queue_head_ >= wire_queue_.size()) {
      wire_queue_.clear();
      queue_head_ = 0;
    }
    route_wire_id(api, wire, granted_iteration_, /*charge_now=*/true);
    ++completed_unreported_;
    fire_sender_updates(api);
    return true;
  }
  if (no_more_) return false;
  if (waiting_grant_ || waiting_steal_) {
    return true;  // the engine parks us via blocked() until a reply lands
  }
  // Queue drained: probe each mesh neighbor once before the master. Fresh
  // work from any source rearms the rotation.
  if (config_.dynamic.neighbor_steal &&
      steal_probe_next_ < steal_neighbors_.size()) {
    send_steal_probe(api);
    return true;
  }
  request_wire_ext(api);
  return true;
}

void RouterNode::fire_sender_updates(NodeApi& api) {
  const UpdateSchedule& sched = config_.schedule;
  const TimeModel& tm = config_.time;

  if (sched.send_rmt_period > 0 && ++wires_since_send_rmt_ >= sched.send_rmt_period) {
    wires_since_send_rmt_ = 0;
    for (ProcId region = 0; region < partition_.num_regions(); ++region) {
      if (region == self_) continue;
      if (!delta_.region_dirty(region)) continue;
      if (config_.shard.batch_updates) {
        auto blocks = delta_.extract_region_blocks(region, config_.shard.tile);
        LOCUS_ASSERT(blocks.has_value());
        api.advance(delta_.last_scan_cells() * tm.scan_cell_ns);
        breakdown().msg_software_ns += delta_.last_scan_cells() * tm.scan_cell_ns;
        send_batched_update(api, region, kMsgSendRmtData, region,
                            /*absolute=*/false, to_update_blocks(std::move(*blocks)));
        continue;
      }
      auto extract = delta_.extract_region(region);
      LOCUS_ASSERT(extract.has_value());
      api.advance(delta_.last_scan_cells() * tm.scan_cell_ns);
      breakdown().msg_software_ns += delta_.last_scan_cells() * tm.scan_cell_ns;
      send_data_update(api, region, kMsgSendRmtData, region, extract->bbox,
                       /*absolute=*/false, std::move(extract->values));
    }
  }

  if (sched.send_loc_period > 0 && ++wires_since_send_loc_ >= sched.send_loc_period) {
    wires_since_send_loc_ = 0;
    if (config_.shard.batch_updates) {
      if (auto blocks = delta_.extract_region_blocks(self_, config_.shard.tile)) {
        api.advance(delta_.last_scan_cells() * tm.scan_cell_ns);
        breakdown().msg_software_ns += delta_.last_scan_cells() * tm.scan_cell_ns;
        // The delta values only located the changes; each block carries
        // absolute data from the view.
        std::vector<UpdateBlock> update_blocks = to_update_blocks(std::move(*blocks));
        for (UpdateBlock& block : update_blocks) {
          view_->read_rect(block.bbox, block.values);
        }
        for (ProcId neighbor : partition_.neighbors(self_)) {
          send_batched_update(api, neighbor, kMsgSendLocData, self_,
                              /*absolute=*/true, update_blocks);
        }
        segments_changed_[static_cast<std::size_t>(self_)] = 0;
      } else {
        ++shared_.updates_suppressed;
        LOCUS_OBS_HOOK(if (shared_.node_obs) {
          shared_.node_obs.obs->counters().add(shared_.node_obs.shard,
                                               shared_.node_obs.updates_suppressed);
        });
      }
      return;
    }
    if (auto extract = delta_.extract_region(self_)) {
      api.advance(delta_.last_scan_cells() * tm.scan_cell_ns);
      breakdown().msg_software_ns += delta_.last_scan_cells() * tm.scan_cell_ns;
      // Absolute data comes from the view; the extracted delta values only
      // located the changes.
      std::vector<std::int32_t> values;
      view_->read_rect(extract->bbox, values);
      // Optimization from §4.3.2: absolute broadcasts go to the four mesh
      // neighbors only.
      for (ProcId neighbor : partition_.neighbors(self_)) {
        send_data_update(api, neighbor, kMsgSendLocData, self_, extract->bbox,
                         /*absolute=*/true, values);
      }
      segments_changed_[static_cast<std::size_t>(self_)] = 0;
    } else {
      ++shared_.updates_suppressed;
      LOCUS_OBS_HOOK(if (shared_.node_obs) {
        shared_.node_obs.obs->counters().add(shared_.node_obs.shard,
                                             shared_.node_obs.updates_suppressed);
      });
    }
  }
}

void RouterNode::send_data_update(NodeApi& api, ProcId dst, std::int32_t type,
                                  ProcId region, const Rect& bbox, bool absolute,
                                  std::vector<std::int32_t> values) {
  const TimeModel& tm = config_.time;
  auto r = static_cast<std::size_t>(region);
  const std::int32_t bytes = update_packet_bytes(
      config_.packet_structure, bbox, absolute, segments_changed_[r],
      partition_.region(region).area());
  if (config_.packet_structure == PacketStructure::kWireBased &&
      type != kMsgSendLocData) {
    segments_changed_[r] = 0;
  }
  if (type == kMsgSendRmtData && config_.observer != nullptr) {
    config_.observer->on_delta_sent(self_, region, bbox, values);
  }
  auto [payload, payload_data] = make_payload<RegionUpdatePayload>();
  payload_data->region = region;
  payload_data->bbox = bbox;
  payload_data->absolute = absolute;
  payload_data->values = std::move(values);
  // Assembly cost: fixed software overhead plus per-byte packing.
  const SimTime pack_cost = tm.msg_fixed_ns + static_cast<SimTime>(bytes) * tm.pack_byte_ns;
  api.advance(pack_cost);
  breakdown().msg_software_ns += pack_cost;
  api.send(dst, type, bytes, std::move(payload));
  note_sent(type, bytes);
  breakdown().network_copy_ns += tm.process_time_ns;
}

void RouterNode::send_batched_update(NodeApi& api, ProcId dst, std::int32_t type,
                                     ProcId region, bool absolute,
                                     std::vector<UpdateBlock> blocks) {
  LOCUS_ASSERT(!blocks.empty());
  LOCUS_ASSERT_MSG(config_.packet_structure == PacketStructure::kBoundingBox,
                   "region batching tightens the bounding-box structure only");
  const TimeModel& tm = config_.time;
  Rect bbox;
  for (const UpdateBlock& block : blocks) bbox.expand(block.bbox);
  const std::int32_t bytes = batched_update_packet_bytes(blocks, absolute);
  if (type == kMsgSendRmtData && config_.observer != nullptr) {
    // One ledger event per block: applies fire per block on the receiver, so
    // sent/applied keys must match block-for-block.
    for (const UpdateBlock& block : blocks) {
      config_.observer->on_delta_sent(self_, region, block.bbox, block.values);
    }
  }
  LOCUS_OBS_HOOK(if (shared_.node_obs) {
    const obs::MpNodeObs& o = shared_.node_obs;
    o.obs->counters().add(o.shard, o.batched_updates);
    o.obs->counters().add(o.shard, o.batched_blocks,
                          static_cast<std::uint64_t>(blocks.size()));
  });
  auto [payload, payload_data] = make_payload<RegionUpdatePayload>();
  payload_data->region = region;
  payload_data->bbox = bbox;
  payload_data->absolute = absolute;
  payload_data->blocks = std::move(blocks);
  const SimTime pack_cost = tm.msg_fixed_ns + static_cast<SimTime>(bytes) * tm.pack_byte_ns;
  api.advance(pack_cost);
  breakdown().msg_software_ns += pack_cost;
  api.send(dst, type, bytes, std::move(payload));
  note_sent(type, bytes);
  breakdown().network_copy_ns += tm.process_time_ns;
}

void RouterNode::apply_delta_block(const Rect& bbox,
                                   std::span<const std::int32_t> values) {
  view_->add_rect(bbox, values);
  if (config_.observer != nullptr) {
    config_.observer->on_delta_applied(self_, bbox, values);
  }
  // These changes are now part of our own region's state and must reach
  // the neighbors in the next SendLocData: mark the own-region delta
  // bounding box (values there are never sent; absolute data is).
  std::size_t i = 0;
  for (std::int32_t c = bbox.channel_lo; c <= bbox.channel_hi; ++c) {
    for (std::int32_t x = bbox.x_lo; x <= bbox.x_hi; ++x, ++i) {
      if (values[i] != 0) delta_.add(GridPoint{c, x}, values[i]);
    }
  }
}

void RouterNode::note_route_segments(const WireRoute& route) {
  std::int64_t segments = 0;
  for (const Route& connection : route.connections) {
    segments += static_cast<std::int64_t>(connection.segments().size());
  }
  for (ProcId region : partition_.regions_overlapping(route.bbox())) {
    segments_changed_[static_cast<std::size_t>(region)] += segments;
  }
}

}  // namespace locus
