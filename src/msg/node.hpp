// The message passing LocusRoute processor program (paper §4).
//
// Each node owns one region of the cost array, holds a private view of the
// whole array plus a delta array of unpropagated changes, and routes its
// statically assigned wires. Between wires it:
//   * applies arrived updates (absolute region replacements or delta adds),
//   * answers ReqRmtData with absolute data and ReqLocData with deltas,
//   * fires sender-initiated SendLocData / SendRmtData on their wire
//     periods (suppressed when nothing changed),
//   * orders receiver-initiated ReqRmtData a few wires ahead of routing,
//     optionally blocking until the responses arrive.
// Quality is later computed from the committed routes, never from the
// (deliberately stale) views.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "assign/affinity.hpp"
#include "assign/assignment.hpp"
#include "circuit/circuit.hpp"
#include "geom/partition.hpp"
#include "grid/backing.hpp"
#include "grid/cost_array.hpp"
#include "grid/delta_array.hpp"
#include "msg/config.hpp"
#include "msg/packets.hpp"
#include "msg/view.hpp"
#include "route/cost_view.hpp"
#include "route/router.hpp"
#include "sim/machine.hpp"

namespace locus {

/// Where a processor's busy time went. The paper (§5.1.1) measured that
/// packet assembly and disassembly take up to a quarter of processing time
/// under frequent updates; this breakdown reproduces that measurement.
struct TimeBreakdown {
  SimTime routing_ns = 0;        ///< pricing, committing, per-wire overhead
  SimTime msg_software_ns = 0;   ///< scan + pack + unpack + fixed handling
  SimTime network_copy_ns = 0;   ///< ProcessTime charges (NI copies)

  SimTime busy_ns() const { return routing_ns + msg_software_ns + network_copy_ns; }
  /// Fraction of busy time spent on message software (the paper's "up to
  /// one fourth" figure).
  double message_fraction() const {
    return busy_ns() == 0 ? 0.0
                          : static_cast<double>(msg_software_ns + network_copy_ns) /
                                static_cast<double>(busy_ns());
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    routing_ns += other.routing_ns;
    msg_software_ns += other.msg_software_ns;
    network_copy_ns += other.network_copy_ns;
    return *this;
  }
};

/// Results and counters shared by all nodes of one run; owned by the driver.
///
/// `truth` is a measurement-only oracle: because the DES executes events in
/// global time order, committing every route into one array yields the true
/// instantaneous global occupancy. The occupancy factor prices each chosen
/// path against it ("the cost of the wire's path at the time it was
/// chosen"), so stale views that pick genuinely congested paths score
/// worse — the paper's §5.1 trend. Nodes never *read* it for routing.
struct MpShared {
  explicit MpShared(const Circuit& circuit)
      : truth(circuit.channels(), circuit.grids()) {}

  CostArray truth;
  std::vector<WireRoute> final_routes;       ///< indexed by wire id
  std::vector<std::int64_t> occupancy;       ///< per proc, final iteration
  std::vector<RouteWorkStats> work;          ///< per proc
  std::vector<TimeBreakdown> time_breakdown; ///< per proc
  std::int64_t updates_suppressed = 0;       ///< clean-region updates skipped
  std::int64_t requests_sent = 0;
  std::int64_t responses_received = 0;
  // Dynamic-scheduling counters (extended protocol, DESIGN.md §11).
  std::int64_t grants_issued = 0;    ///< grant packets the queue owner sent
  std::int64_t grant_wires = 0;      ///< wires carried by those grants
  std::int64_t affinity_grants = 0;  ///< wires taken from a resident bucket
  std::int64_t steal_requests = 0;   ///< neighbor probes sent by idle workers
  std::int64_t steal_wires = 0;      ///< wires obtained by stealing
  /// Bound by the driver when MpConfig::obs is set (the DES is sequential,
  /// so one shard serves every node); unbound otherwise.
  obs::MpNodeObs node_obs;
  /// Routing-work counters for every node's explorer; must be bound before
  /// the nodes are constructed (each WireRouter captures the pointer).
  obs::ExplorerObs explorer_obs;
};

class RouterNode final : public Node {
 public:
  RouterNode(const Circuit& circuit, const Partition& partition,
             const MpConfig& config, std::vector<WireId> my_wires, ProcId self,
             MpShared& shared);

  void on_start(NodeApi& api) override;
  void on_packet(NodeApi& api, const Packet& packet) override;
  bool on_step(NodeApi& api) override;
  bool blocked() const override;

  /// Test hooks. The view is a CostArray in monolithic runs and a
  /// TiledCostArray when ShardConfig::enabled — content-identical either way.
  const GridBacking& view() const { return *view_; }
  const DeltaArray& delta() const { return delta_; }
  std::int32_t pending_responses() const { return pending_responses_; }

 private:
  void advance_lookahead(NodeApi& api);
  void route_one_wire(NodeApi& api);
  /// Rip up + re-route one wire; returns the compute cost. Charges the
  /// node's clock when `charge_now` (the dynamic queue owner defers the
  /// charge to slice it).
  SimTime route_wire_id(NodeApi& api, WireId wire_id, std::int32_t iteration,
                        bool charge_now);
  bool dynamic_step(NodeApi& api);
  /// Master-side wire queue. Returns kGrantWait when the next iteration
  /// cannot start yet (grants outstanding), kGrantDone when exhausted.
  WireId take_next_wire(std::int32_t* iteration);
  void note_request_from(ProcId src);
  void drain_pending_grants(NodeApi& api);
  void send_grant(NodeApi& api, ProcId dst, WireId wire, std::int32_t iteration);
  void request_wire(NodeApi& api);

  // Extended dynamic protocol (config_.dynamic.extended_protocol()):
  // locality-scored batched grants plus optional neighbor stealing.
  enum class TakeStatus : std::int8_t { kOk, kWait, kDefer, kDone };
  bool master_step_ext(NodeApi& api);
  bool worker_step_ext(NodeApi& api);
  /// Pops up to `count` wires of the current iteration for `home`,
  /// preferring its resident regions under GrantPolicy::kLocality. Batches
  /// never straddle an iteration boundary; kWait means the rollover is
  /// gated on outstanding wires, kDefer that nothing is reachable for this
  /// requester inside the locality radius (park it until rollover), kDone
  /// that the run is exhausted.
  TakeStatus take_wires_ext(ProcId home, std::span<const ProcId> resident,
                            std::int32_t count, std::int32_t* iteration,
                            std::vector<WireId>* out);
  void drain_pending_grants_ext(NodeApi& api);
  void send_grant_ext(NodeApi& api, ProcId dst, std::vector<WireId> wires,
                      std::int32_t iteration);
  void request_wire_ext(NodeApi& api);
  void send_steal_probe(NodeApi& api);
  /// Regions where this node's view currently backs storage, nearest first,
  /// capped at DynamicScheduleConfig::resident_summary_cap. Recomputed only
  /// when the view's resident footprint changed; empty unless the grant
  /// policy is kLocality.
  std::span<const ProcId> resident_summary();
  void fire_sender_updates(NodeApi& api);
  void send_data_update(NodeApi& api, ProcId dst, std::int32_t type, ProcId region,
                        const Rect& bbox, bool absolute,
                        std::vector<std::int32_t> values);
  /// Region-batched form (ShardConfig::batch_updates): one packet carrying
  /// tight per-tile blocks. Fires on_delta_sent per block for delta packets
  /// so the conservation ledger keys still match per-block applies.
  void send_batched_update(NodeApi& api, ProcId dst, std::int32_t type,
                           ProcId region, bool absolute,
                           std::vector<UpdateBlock> blocks);
  /// Applies one delta rectangle to the view and mirrors the nonzero cells
  /// into our own-region delta bookkeeping (shared by the single-bbox and
  /// batched receive paths).
  void apply_delta_block(const Rect& bbox, std::span<const std::int32_t> values);
  void note_route_segments(const WireRoute& route);
  TimeBreakdown& breakdown();

  /// Per-kind sent-traffic counters (no-op unless observability is bound).
  void note_sent(std::int32_t type, std::int32_t bytes) {
    static_cast<void>(type);
    static_cast<void>(bytes);
    LOCUS_OBS_HOOK(if (shared_.node_obs) {
      const obs::MpNodeObs& o = shared_.node_obs;
      const std::size_t k = obs::msg_kind_index(type);
      o.obs->counters().add(o.shard, o.sent[k]);
      o.obs->counters().add(o.shard, o.sent_bytes[k],
                            static_cast<std::uint64_t>(bytes));
    });
  }

  const Circuit& circuit_;
  const Partition& partition_;
  const MpConfig& config_;
  std::vector<WireId> my_wires_;
  ProcId self_;
  MpShared& shared_;

  std::unique_ptr<GridBacking> view_;  ///< dense or tiled per config_.shard
  DeltaArray delta_;
  ViewWithDelta view_with_delta_;
  WireRouter router_;

  std::int32_t iteration_ = 0;
  std::size_t cursor_ = 0;
  std::size_t lookahead_cursor_ = 0;

  std::int32_t wires_since_send_loc_ = 0;
  std::int32_t wires_since_send_rmt_ = 0;

  // Receiver-initiated state.
  std::vector<std::int32_t> touch_count_;   ///< per region
  std::vector<Rect> interest_bbox_;         ///< per region
  std::int32_t pending_responses_ = 0;

  // ReqLocData trigger state (owner side).
  std::vector<std::int32_t> req_rmt_received_;  ///< per remote proc

  // Wire-based packet structure accounting.
  std::vector<std::int64_t> segments_changed_;  ///< per region

  // Dynamic wire assignment state (config_.assignment_mode != kStatic).
  static constexpr WireId kGrantWait = -2;
  static constexpr WireId kGrantDone = -1;
  WireId granted_wire_ = -1;          ///< worker: wire in hand
  std::int32_t granted_iteration_ = 0;
  bool waiting_grant_ = false;        ///< worker: request outstanding
  bool no_more_ = false;              ///< worker: queue exhausted
  std::int32_t dyn_next_wire_ = 0;    ///< master: queue cursor
  std::int32_t dyn_iteration_ = 0;    ///< master: current iteration
  std::int32_t outstanding_grants_ = 0;      ///< master: granted, not re-requested
  std::vector<bool> granted_to_;             ///< master: per worker
  std::vector<ProcId> pending_requests_;     ///< master: waiting for rollover
  SimTime slice_remaining_ = 0;       ///< master: sliced charge (interrupt mode)

  // Extended dynamic protocol state (config_.dynamic.extended_protocol()).
  struct PendingRequest {
    ProcId src = -1;
    std::vector<ProcId> resident;  ///< requester's resident-region summary
  };
  std::unique_ptr<WireAffinityIndex> affinity_;  ///< master, kLocality only
  std::int64_t outstanding_wires_ = 0;  ///< master: granted, not yet reported
  std::vector<PendingRequest> pending_ext_;  ///< master: queued requests
  /// Master: requests refused by the locality radius, parked until the
  /// iteration rolls over (or the run ends) re-queues them.
  std::vector<PendingRequest> deferred_ext_;
  std::vector<WireId> wire_queue_;    ///< worker: granted, not yet routed
  std::size_t queue_head_ = 0;
  std::int32_t completed_unreported_ = 0;  ///< worker: since last report
  bool waiting_steal_ = false;        ///< worker: steal probe outstanding
  std::size_t steal_probe_next_ = 0;  ///< worker: next neighbor to probe
  std::vector<ProcId> steal_neighbors_;  ///< mesh neighbors minus the master
  std::vector<ProcId> resident_summary_;
  std::int64_t resident_snapshot_cells_ = -1;  ///< summary cache key
};

}  // namespace locus
