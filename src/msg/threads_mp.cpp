#include "msg/threads_mp.hpp"

#include <atomic>
#include <barrier>
#include <deque>
#include <mutex>
#include <thread>

#include "grid/cost_array.hpp"
#include "grid/delta_array.hpp"
#include "msg/packets.hpp"
#include "msg/view.hpp"
#include "route/quality.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace locus {

namespace {

struct ThreadMsg {
  std::int32_t type;  // kMsgSendLocData or kMsgSendRmtData
  ProcId region;
  Rect bbox;
  bool absolute;
  std::vector<std::int32_t> values;
};

/// Mutex-protected mailbox; the native stand-in for the simulated network.
class Mailbox {
 public:
  void push(ThreadMsg msg) {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }

  bool pop(ThreadMsg& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

 private:
  std::mutex mutex_;
  std::deque<ThreadMsg> queue_;
};

}  // namespace

ThreadsMpResult run_threads_message_passing(const Circuit& circuit,
                                            const Partition& partition,
                                            const Assignment& assignment,
                                            const ThreadsMpConfig& config) {
  const std::int32_t procs = partition.num_regions();
  LOCUS_ASSERT(assignment.num_procs() == procs);
  LOCUS_ASSERT(assignment_is_valid(assignment, circuit));
  LOCUS_ASSERT(config.iterations >= 1);

  ThreadsMpResult result;
  result.routes.resize(static_cast<std::size_t>(circuit.num_wires()));
  std::vector<Mailbox> mailboxes(static_cast<std::size_t>(procs));
  std::vector<RouteWorkStats> work(static_cast<std::size_t>(procs));
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::barrier iteration_barrier(procs);

  Stopwatch wall;
  auto worker = [&](ProcId self) {
    // Per-thread shard: single-writer counters, merged after join.
    obs::MpNodeObs node_obs;
    obs::ExplorerObs explorer_obs;
    RouterParams router_params = config.router;
    LOCUS_OBS_HOOK(if (config.obs != nullptr) {
      node_obs.bind(config.obs, static_cast<std::size_t>(self));
      explorer_obs.bind(config.obs, static_cast<std::size_t>(self));
      router_params.explorer.obs = &explorer_obs;
    });
    CostArray view(circuit.channels(), circuit.grids());
    DeltaArray delta(partition);
    WireRouter router(circuit.channels(), router_params);
    const std::vector<WireId>& my_wires =
        assignment.wires_per_proc[static_cast<std::size_t>(self)];
    std::int32_t since_loc = 0;
    std::int32_t since_rmt = 0;

    auto drain = [&] {
      ThreadMsg msg;
      while (mailboxes[static_cast<std::size_t>(self)].pop(msg)) {
        LOCUS_OBS_HOOK(if (node_obs) {
          const std::size_t k = obs::msg_kind_index(msg.type);
          auto& reg = node_obs.obs->counters();
          reg.add(node_obs.shard, node_obs.received[k]);
          reg.add(node_obs.shard, node_obs.received_bytes[k],
                  static_cast<std::uint64_t>(update_packet_bytes(
                      PacketStructure::kBoundingBox, msg.bbox, msg.absolute, 0, 0)));
        });
        if (msg.absolute) {
          view.write_rect(msg.bbox, msg.values);
        } else {
          LOCUS_ASSERT(msg.region == self);
          view.add_rect(msg.bbox, msg.values);
          std::size_t i = 0;
          for (std::int32_t c = msg.bbox.channel_lo; c <= msg.bbox.channel_hi; ++c) {
            for (std::int32_t x = msg.bbox.x_lo; x <= msg.bbox.x_hi; ++x, ++i) {
              if (msg.values[i] != 0) delta.add(GridPoint{c, x}, msg.values[i]);
            }
          }
        }
      }
    };

    auto post = [&](ProcId dst, ThreadMsg msg) {
      const auto wire_bytes = static_cast<std::uint64_t>(update_packet_bytes(
          PacketStructure::kBoundingBox, msg.bbox, msg.absolute, 0, 0));
      bytes.fetch_add(wire_bytes, std::memory_order_relaxed);
      messages.fetch_add(1, std::memory_order_relaxed);
      LOCUS_OBS_HOOK(if (node_obs) {
        const std::size_t k = obs::msg_kind_index(msg.type);
        auto& reg = node_obs.obs->counters();
        reg.add(node_obs.shard, node_obs.sent[k]);
        reg.add(node_obs.shard, node_obs.sent_bytes[k], wire_bytes);
      });
      mailboxes[static_cast<std::size_t>(dst)].push(std::move(msg));
    };

    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      for (WireId wire_id : my_wires) {
        drain();
        WireRoute& slot = result.routes[static_cast<std::size_t>(wire_id)];
        // Mirror every write into the delta array, as the simulator does.
        ViewWithDelta tracked(view, delta);
        if (slot.routed()) {
          WireRouter::rip_up(slot, tracked);
          LOCUS_OBS_HOOK(if (node_obs) {
            node_obs.obs->counters().add(node_obs.shard, node_obs.ripups);
          });
        }
        slot = router.route_wire(circuit.wire(wire_id), tracked,
                                 work[static_cast<std::size_t>(self)]);
        LOCUS_OBS_HOOK(if (node_obs) {
          auto& reg = node_obs.obs->counters();
          reg.add(node_obs.shard, node_obs.wires_routed);
          reg.add(node_obs.shard, node_obs.cells_committed, slot.cells.size());
        });

        if (config.send_rmt_period > 0 && ++since_rmt >= config.send_rmt_period) {
          since_rmt = 0;
          for (ProcId region = 0; region < procs; ++region) {
            if (region == self || !delta.region_dirty(region)) continue;
            auto extract = delta.extract_region(region);
            LOCUS_ASSERT(extract.has_value());
            post(region, ThreadMsg{kMsgSendRmtData, region, extract->bbox, false,
                                   std::move(extract->values)});
          }
        }
        if (config.send_loc_period > 0 && ++since_loc >= config.send_loc_period) {
          since_loc = 0;
          if (auto extract = delta.extract_region(self)) {
            std::vector<std::int32_t> values;
            view.read_rect(extract->bbox, values);
            for (ProcId neighbor : partition.neighbors(self)) {
              post(neighbor, ThreadMsg{kMsgSendLocData, self, extract->bbox, true,
                                       values});
            }
          }
        }
      }
      iteration_barrier.arrive_and_wait();
      drain();  // everything sent before the barrier is now visible
      iteration_barrier.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(procs));
  for (ProcId p = 0; p < procs; ++p) {
    threads.emplace_back(worker, p);
  }
  for (std::thread& t : threads) t.join();

  result.wall_seconds = wall.seconds();
  result.messages_sent = messages.load();
  result.bytes_sent = bytes.load();
  for (const RouteWorkStats& w : work) result.work += w;
  result.circuit_height =
      circuit_height(circuit.channels(), circuit.grids(), result.routes);
  return result;
}

}  // namespace locus
