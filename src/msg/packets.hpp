// Update packet formats (paper §4.3.1).
//
// All update traffic carries a 16-byte header (type, source, region id,
// bounding box as four 16-bit coordinates, length). Payload encoding:
//   * absolute cell values (SendLocData / ReqRmtData responses): 2 B/cell —
//     occupancy counts fit 16 bits;
//   * delta values (SendRmtData / ReqLocData responses): 1 B/cell — deltas
//     between updates stay small and signed;
//   * requests: header only.
// The PacketStructure ablation (§4.3.1) changes how many bytes an update
// of the same information costs: wire-based packets pay 6 B per changed
// wire segment, whole-region packets pay 2 B for every cell of the owned
// region. The simulation always transfers the full delta/absolute data (the
// three structures are informationally equivalent here); only byte counts
// and scan costs differ. DESIGN.md §5 records this modeling choice.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "geom/partition.hpp"
#include "geom/rect.hpp"
#include "msg/config.hpp"
#include "sim/packet.hpp"

namespace locus {

/// Network packet types used by the message passing router.
enum MsgType : std::int32_t {
  kMsgSendLocData = 1,  ///< unsolicited absolute own-region update
  kMsgSendRmtData = 2,  ///< unsolicited (or ReqLocData-response) delta update
  kMsgReqLocData = 3,   ///< owner asks a remote for its pending deltas
  kMsgReqRmtData = 4,   ///< remote asks the owner for absolute data
  kMsgRspRmtData = 5,   ///< owner's absolute response to ReqRmtData
  kMsgWireRequest = 10, ///< dynamic assignment: give me a wire to route
  kMsgWireGrant = 11,   ///< dynamic assignment: wire id(s) (or no-more)
  kMsgAck = 12,         ///< reliable transport: standalone cumulative ack
  kMsgStealRequest = 13, ///< dynamic assignment: neighbor steal probe
  kMsgStealGrant = 14,   ///< dynamic assignment: donated wires (0 = decline)
};

/// kMsgWireGrant sentinel: the queue owner has no more wires this run.
/// Wire ids below this value are invalid on the wire and rejected by the
/// codec in both directions.
inline constexpr WireId kNoMoreWires = -1;

inline constexpr std::int32_t kUpdateHeaderBytes = 16;
inline constexpr std::int32_t kAbsoluteBytesPerCell = 2;
inline constexpr std::int32_t kDeltaBytesPerCell = 1;
inline constexpr std::int32_t kWireSegmentBytes = 6;
/// Reliable-transport frame (u32 sequence number + u32 piggybacked
/// cumulative ack), present when header flag bit 1 is set. It follows the
/// 16-byte header and precedes the payload; the header's payload byte count
/// covers the payload only.
inline constexpr std::int32_t kTransportFrameBytes = 8;

/// One tight rectangle of a region-batched update (flag bit 2). Blocks are
/// disjoint, ordered row-major by tile, and each lies inside the packet's
/// header bounding box (their union).
struct UpdateBlock {
  Rect bbox;
  std::vector<std::int32_t> values;  ///< row-major over bbox

  friend bool operator==(const UpdateBlock&, const UpdateBlock&) = default;
};

/// Payload of every data-carrying update. Exactly one of `values` (legacy
/// single-bbox form) or `blocks` (region-batched form) is populated.
struct RegionUpdatePayload : PacketPayload {
  ProcId region = -1;  ///< region the cells belong to
  Rect bbox;           ///< cells carried (row-major in `values`)
  bool absolute = false;
  std::vector<std::int32_t> values;
  std::vector<UpdateBlock> blocks;  ///< batched form (ShardConfig::batch_updates)
};

/// Payload of ReqLocData / ReqRmtData.
struct RequestPayload : PacketPayload {
  ProcId region = -1;  ///< region an update is wanted for
  Rect bbox;           ///< sub-box of interest (empty = whole region)
};

/// On-wire size of a data update under the configured packet structure.
/// `segments_changed` is the number of wire segments modified since the
/// last update (wire-based structure); `region_area` the full owned-region
/// cell count (whole-region structure).
std::int32_t update_packet_bytes(PacketStructure structure, const Rect& bbox,
                                 bool absolute, std::int64_t segments_changed,
                                 std::int64_t region_area);

/// On-wire size of a region-batched update: header + u16 block count + per
/// block an 8-byte rectangle and its cells. Only defined for the
/// kBoundingBox packet structure (batching tightens exactly the bbox form).
std::int32_t batched_update_packet_bytes(std::span<const UpdateBlock> blocks,
                                         bool absolute);

/// Payload of kMsgWireGrant (legacy single-wire FIFO protocol).
struct GrantPayload : PacketPayload {
  WireId wire = kNoMoreWires;  ///< kNoMoreWires: queue exhausted
  std::int32_t iteration = 0;  ///< routing iteration this grant belongs to
};

/// Payload of an *extended* kMsgWireRequest (DESIGN.md §11): how many wires
/// the requester finished since its last report, plus the regions where its
/// TileGrid view currently backs tiles (nearest first, capped) so the queue
/// owner can grant wires the requester's working set already covers.
struct WireRequestPayload : PacketPayload {
  std::int32_t completed = 0;
  std::vector<ProcId> resident;
};

/// Payload of a batched kMsgWireGrant or a kMsgStealGrant: the wires handed
/// over (empty grant = no more wires / steal declined) and the iteration
/// they belong to. Batches never straddle an iteration boundary.
struct WireListPayload : PacketPayload {
  std::int32_t iteration = 0;
  std::vector<WireId> wires;
};

/// On-wire size of a request packet (header only).
std::int32_t request_packet_bytes();

/// On-wire size of a wire grant (header + id + iteration).
std::int32_t grant_packet_bytes();

/// On-wire size of an extended wire request: header + i32 completed count +
/// u16 region count + 2 B per resident region id.
std::int32_t wire_request_packet_bytes(std::int32_t resident_regions);

/// On-wire size of a batched wire grant or steal grant: header + u16 wire
/// count + i32 iteration + 4 B per wire id.
std::int32_t batch_grant_packet_bytes(std::int32_t wires);

/// On-wire size of a steal probe (header only).
std::int32_t steal_request_packet_bytes();

/// On-wire size of a standalone transport ack (header + transport frame; the
/// cumulative ack value rides in the frame, so there is no payload).
std::int32_t ack_packet_bytes();

// --- byte-level wire codec ---
//
// The DES transports payloads by shared pointer (sim/packet.hpp) so routing
// runs never pay serialization; this codec defines the *actual* wire format
// behind the byte counts above and is exercised by the view-consistency
// checker (every observed delta packet is round-tripped) and the fuzz
// tests. Layout, little-endian:
//   [0]      u8  packet type (MsgType)
//   [1]      u8  flags (bit 0: absolute payload; bit 1: transport frame)
//   [2..3]   i16 region id
//   [4..11]  4 x i16 bounding box (channel_lo, channel_hi, x_lo, x_hi)
//   [12..15] u32 payload byte count
// then, when flag bit 1 is set, the 8-byte reliable-transport frame
// (u32 per-channel sequence number, u32 piggybacked cumulative ack), and
// finally the payload: i16 per cell for absolute data, i8 per cell for
// deltas (row-major over the bbox), 8 bytes (i32 wire, i32 iteration) for a
// grant, nothing for requests or standalone acks (kMsgAck requires the
// frame — the frame IS the ack). Flag bit 2 marks a *region-batched* update
// (data-carrying types only): the header bbox is the union of the blocks
// and the payload is a u16 block count followed by, per block, a 4 x i16
// rectangle and its row-major cells (i16 or i8 per flag bit 0). Every block
// must be non-empty, lie inside the header bbox, and carry exactly its area
// in cells. decode_packet() validates everything and returns nullopt on
// malformed input — truncated or corrupted buffers must fail cleanly, never
// invoke UB. A buffer with flag bits 1 and 2 clear is exactly the
// pre-transport format, so transport-off unbatched runs stay byte-identical.
//
// Dynamic-scheduling payloads (DESIGN.md §11), all little-endian:
//   * extended kMsgWireRequest: i32 completed + u16 region count +
//     count x u16 region ids (legacy requests carry no payload; the two
//     forms are distinguished by payload length);
//   * batched kMsgWireGrant: u16 wire count (>= 2) + i32 iteration +
//     count x i32 wire ids — an 8-byte payload stays the legacy single-wire
//     (i32 wire, i32 iteration) form, and the two length sets are disjoint;
//   * kMsgStealRequest: header only;
//   * kMsgStealGrant: u16 wire count (0 = declined) + i32 iteration +
//     count x i32 wire ids.
// Grant wire ids must be >= kNoMoreWires (batch/steal entries >= 0); the
// codec rejects anything below the sentinel in both directions.

/// Sanity ceiling on cells per update packet (larger than any real region).
inline constexpr std::int64_t kMaxUpdateCells = 1 << 22;

/// A decoded (or to-be-encoded) packet in wire terms.
struct WirePacket {
  std::int32_t type = 0;
  ProcId region = -1;
  Rect bbox;
  bool absolute = false;
  std::vector<std::int32_t> values;  ///< update payload, row-major over bbox
  std::vector<UpdateBlock> blocks;   ///< batched update (flag bit 2); values empty
  WireId wire = kNoMoreWires;        ///< single-wire grant only
  std::int32_t iteration = 0;        ///< grant / steal grant
  /// Extended wire request (resident-region summary). `extended` must be
  /// set for the form to be encoded even when both fields are defaulted.
  bool extended = false;
  std::int32_t completed = 0;             ///< wires finished since last report
  std::vector<std::int32_t> regions;      ///< requester-resident region ids
  /// Batched grant (>= 2 entries) or steal grant (any count) wire list.
  std::vector<WireId> wires;
  /// Reliable-transport frame (flag bit 1). kMsgAck packets must carry it;
  /// any other kind may.
  bool has_transport = false;
  std::uint32_t seq = 0;  ///< per-(src,dst) sequence number
  std::uint32_t ack = 0;  ///< cumulative ack: all seqs <= ack received

  friend bool operator==(const WirePacket&, const WirePacket&) = default;
};

/// Serializes `packet`. Returns nullopt when the packet cannot be
/// represented on the wire (unknown type, value outside the per-cell range,
/// payload size not matching the bbox) rather than emitting garbage.
std::optional<std::vector<std::uint8_t>> encode_packet(const WirePacket& packet);

/// Parses a wire buffer. Returns nullopt on any malformed input: short
/// header, unknown type, inconsistent flags, bbox/payload size mismatch, or
/// trailing bytes. Never reads out of bounds.
std::optional<WirePacket> decode_packet(std::span<const std::uint8_t> buffer);

}  // namespace locus
