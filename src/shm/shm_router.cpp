#include "shm/shm_router.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>

#include "grid/backing.hpp"
#include "grid/tiled_cost_array.hpp"
#include "support/assert.hpp"

namespace locus {

namespace {

/// CostView over the single shared array that records shared references.
/// Reads are deduplicated per wire (see trace.hpp); every add() logs the
/// read-modify-write pair.
class TracingView final : public CostView {
 public:
  TracingView(GridBacking& shared, bool capture, bool dedup_reads)
      : shared_(shared), capture_(capture), dedup_reads_(dedup_reads),
        read_stamp_(static_cast<std::size_t>(shared.size()), 0) {}

  void begin_wire() {
    ++epoch_;
    pending_.clear();
  }

  /// Stamps the pending refs across [t0, t0 + duration] for processor
  /// `proc` and appends them to `trace`.
  void flush_wire(RefTrace& trace, std::int16_t proc, SimTime t0, SimTime duration) {
    if (!capture_ || pending_.empty()) return;
    const auto n = static_cast<SimTime>(pending_.size());
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      MemRef ref;
      ref.time = t0 + duration * static_cast<SimTime>(i + 1) / (n + 1);
      ref.addr = pending_[i].addr;
      ref.proc = proc;
      ref.op = pending_[i].op;
      trace.append(ref);
    }
  }

  std::int32_t read(GridPoint p) override {
    note_read(p);
    return shared_.read(p);
  }

  /// Bulk reads are only exact when no trace is captured: while capturing,
  /// every individual read must be noted (the trace is the product), so the
  /// router transparently stays on the per-cell pricing path. Without a
  /// trace the span forwards to the shared array's fast path.
  void read_row(std::int32_t channel, std::int32_t x_lo, std::int32_t x_hi,
                std::span<std::int32_t> span_out) override {
    if (capture_) {
      CostView::read_row(channel, x_lo, x_hi, span_out);  // notes each read
    } else {
      shared_.read_row(channel, x_lo, x_hi, span_out);
    }
  }
  void read_rows(std::int32_t c_lo, std::int32_t c_hi, std::int32_t x_lo,
                 std::int32_t x_hi, std::span<std::int32_t> span_out) override {
    if (capture_) {
      CostView::read_rows(c_lo, c_hi, x_lo, x_hi, span_out);  // notes each read
    } else {
      shared_.read_rows(c_lo, c_hi, x_lo, x_hi, span_out);
    }
  }
  bool supports_bulk_read() const override { return !capture_; }

  void add(GridPoint p, std::int32_t d) override {
    note_read(p);  // increment = load + store
    if (capture_) {
      pending_.push_back({cost_cell_addr(p.channel, p.x, shared_.channels()), MemOp::kWrite});
    }
    if (defer_) {
      LOCUS_ASSERT_MSG(d == 1, "only route commits are deferred");
      deferred_cells_.push_back(p);
    } else {
      shared_.add(p, d);
    }
  }

  /// While deferring, add(+1) buffers instead of applying: the wire's
  /// commitment becomes visible only when the executor applies it at the
  /// wire's finish time.
  void set_defer(bool defer) { defer_ = defer; }

  std::vector<GridPoint> take_deferred() { return std::move(deferred_cells_); }

  /// Logs a non-cost-array shared access (the distributed loop counter).
  void note_other(std::uint32_t addr, MemOp op) {
    if (capture_) pending_.push_back({addr, op});
  }

 private:
  void note_read(GridPoint p) {
    if (!capture_) return;
    if (dedup_reads_) {
      auto idx = static_cast<std::size_t>(shared_.index(p));
      if (read_stamp_[idx] == epoch_) return;
      read_stamp_[idx] = epoch_;
    }
    pending_.push_back({cost_cell_addr(p.channel, p.x, shared_.channels()), MemOp::kRead});
  }

  struct Pending {
    std::uint32_t addr;
    MemOp op;
  };

  GridBacking& shared_;
  bool capture_;
  bool dedup_reads_;
  bool defer_ = false;
  std::vector<std::uint32_t> read_stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<Pending> pending_;
  std::vector<GridPoint> deferred_cells_;
};

struct ProcState {
  SimTime clock = 0;
  std::size_t cursor = 0;
  const std::vector<WireId>* static_wires = nullptr;
  bool done = false;
};

/// Commits/rip-ups that take effect when their wire finishes. Wires being
/// routed simultaneously by different processors do not see each other's
/// occupancy — exactly the interference that degrades quality as the
/// processor count grows (paper §5.4).
struct PendingCommit {
  SimTime time;
  std::uint64_t seq;
  std::vector<GridPoint> cells;
  std::int32_t delta;
};
struct PendingLater {
  bool operator()(const PendingCommit& a, const PendingCommit& b) const {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

}  // namespace

ShmRunResult run_shared_memory(const Circuit& circuit, const ShmConfig& config) {
  LOCUS_ASSERT(config.procs >= 1);
  LOCUS_ASSERT(config.iterations >= 1);
  const bool dynamic = !config.assignment.has_value();
  if (!dynamic) {
    LOCUS_ASSERT(config.assignment->num_procs() == config.procs);
    LOCUS_ASSERT(assignment_is_valid(*config.assignment, circuit));
  }

  ShmRunResult result{.circuit_height = 0,
                      .occupancy_factor = 0,
                      .completion_ns = 0,
                      .work = {},
                      .proc_finish_ns = {},
                      .trace = {},
                      .routes = {},
                      .cost = CostArray(circuit.channels(), circuit.grids())};
  result.routes.resize(static_cast<std::size_t>(circuit.num_wires()));
  result.proc_finish_ns.assign(static_cast<std::size_t>(config.procs), 0);

  // The one shared array everyone routes against: dense (the result slot
  // itself) or a tiled backing whose content is copied out at the end.
  std::optional<TiledCostArray> tiled;
  if (config.sharded_cost) {
    tiled.emplace(circuit.channels(), circuit.grids(), config.tile_dims);
  }
  GridBacking& shared_cost =
      config.sharded_cost ? static_cast<GridBacking&>(*tiled) : result.cost;

  TracingView view(shared_cost, config.capture_trace, config.trace_dedup_reads);
  const TimeModel& tm = config.time;

  obs::ShmObs shm_obs;
  obs::ExplorerObs explorer_obs;
  RouterParams router_params = config.router;
  LOCUS_OBS_HOOK(if (config.obs != nullptr) {
    shm_obs.bind(config.obs, /*shard_index=*/0);
    explorer_obs.bind(config.obs, /*shard_index=*/0);
    router_params.explorer.obs = &explorer_obs;
    if (obs::TraceSink* t = config.obs->trace()) {
      for (std::int32_t p = 0; p < config.procs; ++p) {
        t->set_track_name(p, "proc " + std::to_string(p));
      }
    }
  });
  WireRouter router(circuit.channels(), router_params);

  std::vector<ProcState> procs(static_cast<std::size_t>(config.procs));
  if (!dynamic) {
    for (std::int32_t p = 0; p < config.procs; ++p) {
      procs[static_cast<std::size_t>(p)].static_wires =
          &config.assignment->wires_per_proc[static_cast<std::size_t>(p)];
    }
  }

  std::priority_queue<PendingCommit, std::vector<PendingCommit>, PendingLater>
      pending_commits;
  std::uint64_t commit_seq = 0;
  auto apply_pending_until = [&](SimTime t) {
    while (!pending_commits.empty() && pending_commits.top().time <= t) {
      const PendingCommit& pc = pending_commits.top();
      for (const GridPoint& p : pc.cells) shared_cost.add(p, pc.delta);
      pending_commits.pop();
    }
  };

  SimTime barrier_time = 0;
  for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
    const bool last = (iter + 1 == config.iterations);
    std::int32_t loop_counter = 0;  // dynamic distributed loop index
    for (ProcState& ps : procs) {
      ps.clock = barrier_time;
      ps.cursor = 0;
      ps.done = false;
    }

    for (;;) {
      // Schedule the least-advanced processor that still has work.
      std::int32_t next = -1;
      SimTime best = std::numeric_limits<SimTime>::max();
      for (std::int32_t p = 0; p < config.procs; ++p) {
        const ProcState& ps = procs[static_cast<std::size_t>(p)];
        if (!ps.done && ps.clock < best) {
          best = ps.clock;
          next = p;
        }
      }
      if (next < 0) break;
      ProcState& ps = procs[static_cast<std::size_t>(next)];

      // Obtain a wire subscript.
      view.begin_wire();
      WireId wire_id = -1;
      SimTime fetch_cost = 0;
      if (dynamic) {
        // Distributed loop: shared counter fetch-and-increment (traced).
        view.note_other(kLoopCounterAddr, MemOp::kRead);
        view.note_other(kLoopCounterAddr, MemOp::kWrite);
        fetch_cost = tm.shm_read_ns + tm.shm_write_ns;
        if (loop_counter >= circuit.num_wires()) {
          ps.done = true;
          view.flush_wire(result.trace, static_cast<std::int16_t>(next), ps.clock,
                          fetch_cost);
          ps.clock += fetch_cost;
          result.proc_finish_ns[static_cast<std::size_t>(next)] = ps.clock;
          continue;
        }
        wire_id = loop_counter++;
      } else {
        if (ps.cursor >= ps.static_wires->size()) {
          ps.done = true;
          result.proc_finish_ns[static_cast<std::size_t>(next)] = ps.clock;
          continue;
        }
        wire_id = (*ps.static_wires)[ps.cursor++];
      }

      // Make every earlier-finished wire visible, then rip up and re-route
      // against the shared array. The rip-up applies immediately (the
      // router must not be repelled by its own previous path); the new
      // commitment becomes visible at the wire's finish time so wires in
      // flight on other processors do not see it.
      apply_pending_until(ps.clock);
      const Wire& wire = circuit.wire(wire_id);
      WireRoute& slot = result.routes[static_cast<std::size_t>(wire_id)];
      SimTime rip_cost = 0;
      const bool ripped = slot.routed();
      if (ripped) {
        WireRouter::rip_up(slot, view);
        rip_cost = static_cast<SimTime>(slot.cells.size()) * tm.commit_ns;
      }
      view.set_defer(true);
      const RouteWorkStats before = result.work;
      slot = router.route_wire(wire, view, result.work);
      view.set_defer(false);
      const SimTime duration =
          fetch_cost + rip_cost +
          tm.routing_time_ns(result.work.probes - before.probes,
                             result.work.cells_committed - before.cells_committed, 1);
      view.flush_wire(result.trace, static_cast<std::int16_t>(next), ps.clock,
                      duration);
      LOCUS_OBS_HOOK(if (shm_obs) {
        auto& reg = shm_obs.obs->counters();
        reg.add(shm_obs.shard, shm_obs.wires_routed);
        reg.add(shm_obs.shard, shm_obs.cells_committed, slot.cells.size());
        if (ripped) reg.add(shm_obs.shard, shm_obs.ripups);
        if (obs::TraceSink* t = shm_obs.obs->trace()) {
          t->complete(next, shm_obs.cat_route, shm_obs.n_route, ps.clock, duration,
                      shm_obs.a_wire, wire_id, shm_obs.a_iteration, iter);
        }
      });
      ps.clock += duration;
      pending_commits.push(
          PendingCommit{ps.clock, commit_seq++, view.take_deferred(), +1});

      if (last) {
        // On the shared array the decision-time price is the true price.
        result.occupancy_factor += slot.path_cost;
      }
    }

    // Barrier: everyone waits for the slowest (paper §3), and every
    // commitment lands before the next iteration starts.
    for (const ProcState& ps : procs) barrier_time = std::max(barrier_time, ps.clock);
    apply_pending_until(barrier_time);
    LOCUS_ASSERT(pending_commits.empty());
  }

  result.completion_ns = barrier_time;
  if (tiled.has_value()) {
    // Materialize the dense result array from the tiles (raw copy; absent
    // tiles contribute their zeros).
    std::vector<std::int32_t> values;
    tiled->read_rect(tiled->bounds(), values);
    result.cost.write_rect(result.cost.bounds(), values);
  }
  result.circuit_height = circuit_height(result.cost);
  LOCUS_ASSERT(result.cost ==
               rebuild_cost(circuit.channels(), circuit.grids(), result.routes));
  result.trace.sort_by_time();
  LOCUS_OBS_HOOK(if (shm_obs) {
    shm_obs.obs->counters().add(shm_obs.shard, shm_obs.trace_refs,
                                result.trace.size());
  });
  return result;
}

}  // namespace locus
