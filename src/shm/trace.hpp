// Shared-data reference traces (the Tango methodology, paper §2.2).
//
// The shared memory build records every shared reference — time, address,
// referencing processor, read/write — while a deterministic multiplexed
// executor simulates the multiprocess run on one host. The coherence
// simulator (src/coherence) then replays the trace against a cache protocol
// to produce the Table 3/5 traffic numbers.
//
// Volume control: within one wire's routing no remote write can interleave
// (the executor interleaves at wire granularity), so repeated reads of the
// same cell by the same processor during that wire cannot change coherence
// state; the tracer therefore emits each cell's first read once per wire.
// This is exact for any line size >= one cell and shrinks traces ~30x.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"

namespace locus {

enum class MemOp : std::uint8_t { kRead = 0, kWrite = 1 };

/// One shared reference. `addr` is a byte address; cost array cells are
/// 4-byte words at cell_index * 4, and other shared objects (the distributed
/// loop index) live at distinct high addresses.
struct MemRef {
  SimTime time;
  std::uint32_t addr;
  std::int16_t proc;
  MemOp op;
};

/// Byte address of a cost-array cell. The layout is column-major —
/// cost[grid][channel], vertically adjacent cells contiguous — matching the
/// original LocusRoute indexing implied by the paper's Table 3: traffic
/// grows almost linearly with line size, which requires the dominant
/// (horizontal, along-channel) accesses to be strided past a 32-byte line
/// (column stride = channels * 4 bytes = 40 B for bnrE).
constexpr std::uint32_t cost_cell_addr(std::int32_t channel, std::int32_t x,
                                       std::int32_t channels) {
  return static_cast<std::uint32_t>(x * channels + channel) * 4u;
}

/// Byte address of the distributed-loop wire counter.
inline constexpr std::uint32_t kLoopCounterAddr = 0xF000'0000u;

class RefTrace {
 public:
  void append(MemRef ref) { refs_.push_back(ref); }

  /// Stable-sorts by time so the coherence replay sees a global order;
  /// equal-time refs keep emission order (deterministic).
  void sort_by_time();

  const std::vector<MemRef>& refs() const { return refs_; }
  std::size_t size() const { return refs_.size(); }

  std::uint64_t count(MemOp op) const;

 private:
  std::vector<MemRef> refs_;
};

}  // namespace locus
