#include "shm/trace.hpp"

#include <algorithm>

namespace locus {

void RefTrace::sort_by_time() {
  std::stable_sort(refs_.begin(), refs_.end(),
                   [](const MemRef& a, const MemRef& b) { return a.time < b.time; });
}

std::uint64_t RefTrace::count(MemOp op) const {
  std::uint64_t n = 0;
  for (const MemRef& r : refs_) {
    if (r.op == op) ++n;
  }
  return n;
}

}  // namespace locus
