#include "shm/threads_router.hpp"

#include <atomic>
#include <barrier>
#include <memory>
#include <thread>

#include "route/quality.hpp"
#include "support/assert.hpp"
#include "support/stopwatch.hpp"

namespace locus {

namespace {

/// Unlocked shared cost array over atomic cells (relaxed ordering: the
/// algorithm tolerates stale and lost updates by design).
class AtomicCostArray {
 public:
  AtomicCostArray(std::int32_t channels, std::int32_t grids)
      : channels_(channels), grids_(grids),
        cells_(static_cast<std::size_t>(channels) * static_cast<std::size_t>(grids)) {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  }

  std::int32_t read(GridPoint p) const {
    std::int32_t v = cells_[index(p)].load(std::memory_order_relaxed);
    return v < 0 ? 0 : v;
  }

  void add(GridPoint p, std::int32_t d) {
    cells_[index(p)].fetch_add(d, std::memory_order_relaxed);
  }

  std::int32_t raw(GridPoint p) const {
    return cells_[index(p)].load(std::memory_order_relaxed);
  }

 private:
  std::size_t index(GridPoint p) const {
    LOCUS_ASSERT(p.channel >= 0 && p.channel < channels_);
    LOCUS_ASSERT(p.x >= 0 && p.x < grids_);
    return static_cast<std::size_t>(p.channel) * static_cast<std::size_t>(grids_) +
           static_cast<std::size_t>(p.x);
  }

  std::int32_t channels_;
  std::int32_t grids_;
  std::vector<std::atomic<std::int32_t>> cells_;
};

class AtomicView final : public CostView {
 public:
  explicit AtomicView(AtomicCostArray& shared) : shared_(shared) {}
  std::int32_t read(GridPoint p) override { return shared_.read(p); }
  void add(GridPoint p, std::int32_t d) override { shared_.add(p, d); }

 private:
  AtomicCostArray& shared_;
};

}  // namespace

ThreadsRunResult run_threads_shared_memory(const Circuit& circuit,
                                           const ThreadsConfig& config) {
  LOCUS_ASSERT(config.threads >= 1);
  LOCUS_ASSERT(config.iterations >= 1);

  AtomicCostArray shared(circuit.channels(), circuit.grids());
  ThreadsRunResult result;
  result.routes.resize(static_cast<std::size_t>(circuit.num_wires()));

  std::atomic<std::int32_t> loop_counter{0};
  std::atomic<std::int64_t> occupancy{0};
  std::vector<RouteWorkStats> work(static_cast<std::size_t>(config.threads));
  std::barrier iteration_barrier(config.threads);

  Stopwatch wall;
  auto worker = [&](std::int32_t tid) {
    // Per-thread registry shard: plain single-writer slots, summed after join.
    obs::ShmObs shm_obs;
    obs::ExplorerObs explorer_obs;
    RouterParams router_params = config.router;
    LOCUS_OBS_HOOK(if (config.obs != nullptr) {
      shm_obs.bind(config.obs, static_cast<std::size_t>(tid));
      explorer_obs.bind(config.obs, static_cast<std::size_t>(tid));
      router_params.explorer.obs = &explorer_obs;
    });
    AtomicView view(shared);
    WireRouter router(circuit.channels(), router_params);
    RouteWorkStats& my_work = work[static_cast<std::size_t>(tid)];
    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      const bool last = (iter + 1 == config.iterations);
      for (;;) {
        std::int32_t wire_id = loop_counter.fetch_add(1, std::memory_order_relaxed);
        if (wire_id >= circuit.num_wires()) break;
        WireRoute& slot = result.routes[static_cast<std::size_t>(wire_id)];
        if (slot.routed()) {
          WireRouter::rip_up(slot, view);
          LOCUS_OBS_HOOK(if (shm_obs) {
            shm_obs.obs->counters().add(shm_obs.shard, shm_obs.ripups);
          });
        }
        slot = router.route_wire(circuit.wire(wire_id), view, my_work);
        LOCUS_OBS_HOOK(if (shm_obs) {
          auto& reg = shm_obs.obs->counters();
          reg.add(shm_obs.shard, shm_obs.wires_routed);
          reg.add(shm_obs.shard, shm_obs.cells_committed, slot.cells.size());
        });
        if (last) {
          occupancy.fetch_add(slot.path_cost, std::memory_order_relaxed);
        }
      }
      iteration_barrier.arrive_and_wait();
      if (tid == 0) loop_counter.store(0, std::memory_order_relaxed);
      iteration_barrier.arrive_and_wait();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.threads));
  for (std::int32_t t = 0; t < config.threads; ++t) {
    threads.emplace_back(worker, t);
  }
  for (std::thread& t : threads) t.join();

  result.wall_seconds = wall.seconds();
  result.occupancy_factor = occupancy.load();
  for (const RouteWorkStats& w : work) result.work += w;
  result.circuit_height =
      circuit_height(circuit.channels(), circuit.grids(), result.routes);
  return result;
}

}  // namespace locus
