#include "shm/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace locus {

namespace {

constexpr std::array<char, 4> kMagic = {'L', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.write(buf, 8);
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char buf[4];
  in.read(reinterpret_cast<char*>(buf), 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  unsigned char buf[8];
  in.read(reinterpret_cast<char*>(buf), 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

}  // namespace

void write_trace(std::ostream& out, const RefTrace& trace) {
  out.write(kMagic.data(), kMagic.size());
  put_u32(out, kVersion);
  put_u64(out, trace.size());
  for (const MemRef& ref : trace.refs()) {
    put_u64(out, static_cast<std::uint64_t>(ref.time));
    put_u32(out, ref.addr);
    char tail[4] = {static_cast<char>(ref.proc & 0xFF),
                    static_cast<char>((ref.proc >> 8) & 0xFF),
                    static_cast<char>(ref.op), 0};
    out.write(tail, 4);
  }
  if (!out) throw std::runtime_error("trace write failed");
}

void write_trace_file(const std::string& path, const RefTrace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open trace file for write: " + path);
  write_trace(out, trace);
}

RefTrace read_trace(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) throw std::runtime_error("not a .trc file (bad magic)");
  const std::uint32_t version = get_u32(in);
  if (version != kVersion) {
    throw std::runtime_error("unsupported .trc version " + std::to_string(version));
  }
  const std::uint64_t count = get_u64(in);
  RefTrace trace;
  for (std::uint64_t i = 0; i < count; ++i) {
    MemRef ref;
    ref.time = static_cast<SimTime>(get_u64(in));
    ref.addr = get_u32(in);
    unsigned char tail[4];
    in.read(reinterpret_cast<char*>(tail), 4);
    if (!in) throw std::runtime_error("truncated .trc file");
    ref.proc = static_cast<std::int16_t>(tail[0] | (tail[1] << 8));
    if (tail[2] > 1) throw std::runtime_error("corrupt .trc record (bad op)");
    ref.op = static_cast<MemOp>(tail[2]);
    trace.append(ref);
  }
  return trace;
}

RefTrace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace locus
