// Real-threads shared memory LocusRoute.
//
// This is the paper's original programming model executed natively: one
// cost array in process memory, unlocked concurrent access from N
// std::thread workers, dynamic wire distribution through an atomic
// distributed-loop counter, and a barrier between iterations. Unlike the
// Tango executor it is *not* deterministic (quality may vary run to run by
// a few tracks) and produces no trace — it exists to validate that the
// deterministic executor's behaviour matches a genuine multithreaded run
// and as the natural starting point for users who want the router itself
// rather than the 1989 measurement apparatus.
//
// Data-race note: the paper deliberately routes with unlocked cost array
// accesses, accepting lost updates. A C++ program must not race on plain
// int; we use std::atomic<std::int32_t> cells with relaxed loads/stores,
// which preserves the algorithm's "no locks, tolerate staleness" semantics
// without undefined behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "obs/obs.hpp"
#include "route/router.hpp"

namespace locus {

struct ThreadsConfig {
  RouterParams router;
  std::int32_t iterations = 2;
  std::int32_t threads = 4;
  /// Optional observability sink. Each worker writes shm.* work counters to
  /// its own registry shard (shard = tid mod num_shards; size the registry
  /// with one shard per thread for contention-free counting). Not owned;
  /// merged totals are valid once the call returns. No trace is produced —
  /// real threads have no deterministic simulated clock.
  obs::Obs* obs = nullptr;
};

struct ThreadsRunResult {
  std::int64_t circuit_height = 0;
  std::int64_t occupancy_factor = 0;
  RouteWorkStats work;  ///< summed over threads
  double wall_seconds = 0.0;
  std::vector<WireRoute> routes;
};

ThreadsRunResult run_threads_shared_memory(const Circuit& circuit,
                                           const ThreadsConfig& config);

}  // namespace locus
