// Shared memory LocusRoute under a Tango-like deterministic executor
// (paper §3 + §2.2).
//
// All processors route against ONE cost array with no locking (the paper
// cites Rose's result that unlocked access does not hurt quality). The
// executor multiplexes the logical processors on the host: at every
// scheduling point the processor with the smallest local clock routes its
// next wire against the current shared state, so execution is deterministic
// and interleaving follows simulated time. Routing decisions interleave at
// wire-commit granularity; the emitted reference trace carries per-reference
// timestamps spread across each wire's compute interval, which is what the
// coherence replay consumes (DESIGN.md §5.3).
//
// Wire distribution is either the paper's dynamic *distributed loop* (a
// shared counter handing out wire subscripts, itself a traced shared
// reference) or any static Assignment (round robin / ThresholdCost), which
// is how the Table 5 locality experiments run. Iterations end at a barrier.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "assign/assignment.hpp"
#include "circuit/circuit.hpp"
#include "grid/cost_array.hpp"
#include "grid/tile_grid.hpp"
#include "obs/obs.hpp"
#include "route/cost_model.hpp"
#include "route/quality.hpp"
#include "route/router.hpp"
#include "shm/trace.hpp"

namespace locus {

struct ShmConfig {
  RouterParams router;
  TimeModel time;
  std::int32_t iterations = 2;
  std::int32_t procs = 16;
  /// Static assignment; if unset, the dynamic distributed loop is used.
  std::optional<Assignment> assignment;
  /// Record the shared-reference trace (disable for quality-only runs).
  bool capture_trace = true;
  /// Emit only the first read of each cell per wire. An infinite cache
  /// makes repeat reads free *unless a concurrent write invalidates the
  /// line between them* — and those re-misses are precisely what makes
  /// Table 3's traffic grow with line size, so full traces (false) are the
  /// faithful default; dedup (true) trades that fidelity for ~40x smaller
  /// traces in memory-constrained runs.
  bool trace_dedup_reads = false;
  /// Optional observability sink: per-wire route spans on "proc N" tracks
  /// (in simulated time), shm.* work counters, and the captured
  /// shared-reference count. The executor is sequential, so one registry
  /// shard serves all logical processors. Not owned.
  obs::Obs* obs = nullptr;
  /// Route against a sparse tiled cost array instead of the dense one. An
  /// absent tile reads as zero — the initial value of every cell — so the
  /// tiled array is content-identical and routes are bit-identical;
  /// ShmRunResult::cost is the dense final array either way.
  bool sharded_cost = false;
  TileDims tile_dims;
};

struct ShmRunResult {
  std::int64_t circuit_height = 0;
  std::int64_t occupancy_factor = 0;
  SimTime completion_ns = 0;  ///< max processor clock at final barrier
  double seconds() const { return static_cast<double>(completion_ns) / 1e9; }
  RouteWorkStats work;
  std::vector<SimTime> proc_finish_ns;
  RefTrace trace;
  std::vector<WireRoute> routes;
  CostArray cost;  ///< final shared array
};

ShmRunResult run_shared_memory(const Circuit& circuit, const ShmConfig& config);

}  // namespace locus
