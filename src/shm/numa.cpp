#include "shm/numa.hpp"

namespace locus {

NumaEstimate estimate_numa(const RefTrace& trace, const Partition& partition,
                           const NumaParams& params) {
  NumaEstimate out;
  const std::int32_t channels = partition.channels();
  for (const MemRef& ref : trace.refs()) {
    bool local;
    if (ref.addr == kLoopCounterAddr) {
      local = (ref.proc == 0);
    } else {
      // Invert the column-major address map (see trace.hpp).
      const std::uint32_t cell = ref.addr / 4;
      const auto x = static_cast<std::int32_t>(cell / static_cast<std::uint32_t>(channels));
      const auto channel = static_cast<std::int32_t>(cell % static_cast<std::uint32_t>(channels));
      local = partition.owner(GridPoint{channel, x}) == ref.proc;
    }
    if (local) {
      ++out.local_refs;
      out.memory_ns += params.local_ns;
    } else {
      ++out.remote_refs;
      out.memory_ns += params.remote_ns;
    }
  }
  return out;
}

}  // namespace locus
