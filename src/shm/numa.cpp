#include "shm/numa.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace locus {

namespace numa {

#if defined(__linux__)

namespace {

/// The process mask captured on first query, so unpin_current_thread can
/// restore it even after a worker narrowed its own affinity.
const cpu_set_t& process_mask() {
  static const cpu_set_t mask = [] {
    cpu_set_t m;
    CPU_ZERO(&m);
    if (sched_getaffinity(0, sizeof(m), &m) != 0) {
      // No mask readable: pretend single-cpu; pinning_supported() stays
      // false because the mask is empty of usable ids only when the
      // syscall failed, which allowed_cpus() surfaces as empty.
      CPU_ZERO(&m);
    }
    return m;
  }();
  return mask;
}

}  // namespace

int available_cpus() {
  const int n = CPU_COUNT(&process_mask());
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<int> allowed_cpus() {
  const cpu_set_t& mask = process_mask();
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &mask)) cpus.push_back(cpu);
  }
  return cpus;
}

bool pinning_supported() { return !allowed_cpus().empty(); }

bool pin_current_thread(int slot) {
  const std::vector<int> cpus = allowed_cpus();
  if (cpus.empty() || slot < 0) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpus[static_cast<std::size_t>(slot) % cpus.size()], &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
}

bool unpin_current_thread() {
  const cpu_set_t& mask = process_mask();
  if (CPU_COUNT(&mask) == 0) return false;
  cpu_set_t restore = mask;
  return pthread_setaffinity_np(pthread_self(), sizeof(restore), &restore) == 0;
}

#else  // !__linux__: no affinity control; report honestly and do nothing.

int available_cpus() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<int> allowed_cpus() { return {}; }

bool pinning_supported() { return false; }

bool pin_current_thread(int) { return false; }

bool unpin_current_thread() { return false; }

#endif

}  // namespace numa

NumaEstimate estimate_numa(const RefTrace& trace, const Partition& partition,
                           const NumaParams& params) {
  NumaEstimate out;
  const std::int32_t channels = partition.channels();
  for (const MemRef& ref : trace.refs()) {
    bool local;
    if (ref.addr == kLoopCounterAddr) {
      local = (ref.proc == 0);
    } else {
      // Invert the column-major address map (see trace.hpp).
      const std::uint32_t cell = ref.addr / 4;
      const auto x = static_cast<std::int32_t>(cell / static_cast<std::uint32_t>(channels));
      const auto channel = static_cast<std::int32_t>(cell % static_cast<std::uint32_t>(channels));
      local = partition.owner(GridPoint{channel, x}) == ref.proc;
    }
    if (local) {
      ++out.local_refs;
      out.memory_ns += params.local_ns;
    } else {
      ++out.remote_refs;
      out.memory_ns += params.remote_ns;
    }
  }
  return out;
}

}  // namespace locus
