// Binary serialization of shared-reference traces (.trc files).
//
// The Tango methodology is trace-driven: collect once, analyze many times.
// This format makes that workflow concrete — `examples/trace_tool` collects
// a trace to disk and replays it through any protocol/line-size without
// re-running the router.
//
// Format (little-endian):
//   magic   "LTRC"                  4 bytes
//   version u32 (currently 1)       4 bytes
//   count   u64                     8 bytes
//   records count x { time i64, addr u32, proc i16, op u8, pad u8 }
#pragma once

#include <iosfwd>
#include <string>

#include "shm/trace.hpp"

namespace locus {

/// Writes `trace` in .trc format. Throws std::runtime_error on I/O failure.
void write_trace(std::ostream& out, const RefTrace& trace);
void write_trace_file(const std::string& path, const RefTrace& trace);

/// Reads a .trc stream. Throws std::runtime_error on malformed input.
RefTrace read_trace(std::istream& in);
RefTrace read_trace_file(const std::string& path);

}  // namespace locus
