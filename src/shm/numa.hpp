// Hierarchical (NUMA) shared memory reference-cost model.
//
// Paper §5.3: "in hierarchical shared memory architectures, now being
// considered because of their scalability, a local reference can be more
// than an order of magnitude faster than a non-local reference. This
// architectural trend indicates that locality will become an important part
// of future program design." This model quantifies that argument for our
// traces: each shared reference is classified local (its cost-array cell
// lies in the referencing processor's owned region) or remote, and memory
// time is charged accordingly. Locality-aware wire assignment should lower
// the remote fraction — the mechanism behind the paper's prediction.
#pragma once

#include <cstdint>

#include "geom/partition.hpp"
#include "shm/trace.hpp"

namespace locus {

struct NumaParams {
  SimTime local_ns = 400;    ///< reference into the local memory module
  SimTime remote_ns = 5000;  ///< reference across the hierarchy (>10x)
};

struct NumaEstimate {
  std::uint64_t local_refs = 0;
  std::uint64_t remote_refs = 0;
  SimTime memory_ns = 0;  ///< total reference time under the cost model

  double remote_fraction() const {
    const std::uint64_t total = local_refs + remote_refs;
    return total == 0 ? 0.0
                      : static_cast<double>(remote_refs) /
                            static_cast<double>(total);
  }
};

/// Classifies every reference of `trace` against `partition` (whose region
/// of the cost array each processor's memory module holds). Non-cost-array
/// shared objects (the distributed loop counter) count as remote for every
/// processor except 0, which hosts them.
NumaEstimate estimate_numa(const RefTrace& trace, const Partition& partition,
                           const NumaParams& params = {});

}  // namespace locus
