// Hierarchical (NUMA) shared memory reference-cost model.
//
// Paper §5.3: "in hierarchical shared memory architectures, now being
// considered because of their scalability, a local reference can be more
// than an order of magnitude faster than a non-local reference. This
// architectural trend indicates that locality will become an important part
// of future program design." This model quantifies that argument for our
// traces: each shared reference is classified local (its cost-array cell
// lies in the referencing processor's owned region) or remote, and memory
// time is charged accordingly. Locality-aware wire assignment should lower
// the remote fraction — the mechanism behind the paper's prediction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/partition.hpp"
#include "shm/trace.hpp"
#include "support/mem.hpp"

namespace locus {

// ---------------------------------------------------------------------------
// Host-machine placement helpers.
//
// The model above argues locality matters; these helpers act on it for our
// own host-side parallelism (SimPool workers, the batch routing service):
// thread pinning over the process affinity mask and first-touch page
// placement for per-worker arenas. Everything degrades gracefully on
// machines without affinity control (CI runners, non-Linux): the queries
// report pinning unsupported, pin attempts return false without touching
// thread state, and first_touch remains a plain page warm-up — callers
// never need a platform #ifdef of their own.

namespace numa {

/// CPUs the calling process may run on (the affinity mask size when the OS
/// exposes one, else hardware_concurrency), clamped to >= 1. The pool uses
/// this to stop spawning workers the kernel cannot actually run in
/// parallel.
int available_cpus();

/// Concrete cpu ids in the process affinity mask, ascending. Empty when
/// the platform exposes no mask (pinning is then unsupported).
std::vector<int> allowed_cpus();

/// Whether pin_current_thread can work here at all.
bool pinning_supported();

/// Pins the calling thread to allowed_cpus()[slot % n] — workers pass
/// their worker index and spread round-robin over the allowed cpus.
/// Returns false (thread affinity untouched) when pinning is unsupported
/// or the syscall fails; callers treat that as "run unpinned", not an
/// error.
bool pin_current_thread(int slot);

/// Restores the full process affinity mask on the calling thread. Returns
/// false when pinning is unsupported (nothing to restore).
bool unpin_current_thread();

/// Page size / first-touch placement, re-exported from support/mem.hpp so
/// NUMA-aware callers find the whole placement toolkit in one header.
inline std::size_t page_size() { return mem::page_size(); }
inline void first_touch(void* p, std::size_t bytes) {
  mem::first_touch(p, bytes);
}

}  // namespace numa

struct NumaParams {
  SimTime local_ns = 400;    ///< reference into the local memory module
  SimTime remote_ns = 5000;  ///< reference across the hierarchy (>10x)
};

struct NumaEstimate {
  std::uint64_t local_refs = 0;
  std::uint64_t remote_refs = 0;
  SimTime memory_ns = 0;  ///< total reference time under the cost model

  double remote_fraction() const {
    const std::uint64_t total = local_refs + remote_refs;
    return total == 0 ? 0.0
                      : static_cast<double>(remote_refs) /
                            static_cast<double>(total);
  }
};

/// Classifies every reference of `trace` against `partition` (whose region
/// of the cost array each processor's memory module holds). Non-cost-array
/// shared objects (the distributed loop counter) count as remote for every
/// processor except 0, which hosts them.
NumaEstimate estimate_numa(const RefTrace& trace, const Partition& partition,
                           const NumaParams& params = {});

}  // namespace locus
