// Wire-level routing: decompose a (possibly multi-pin) wire into two-point
// connections, pick the cheapest candidate for each, and commit the union of
// covered cells to the cost view. Re-routing in a later iteration first rips
// the previous commitment up (paper §3).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "route/cost_view.hpp"
#include "route/explorer.hpp"
#include "route/path.hpp"

namespace locus {

/// How a multi-pin wire decomposes into two-point connections.
enum class Decomposition : std::int8_t {
  /// Chain x-adjacent pins left to right (the simple classic).
  kChainX,
  /// Minimum spanning tree over pin-to-pin Manhattan distances: never
  /// longer than the chain, often shorter on pin clusters.
  kMst,
};

struct RouterParams {
  ExplorerParams explorer;
  Decomposition decomposition = Decomposition::kChainX;
};

/// The committed routing of one wire.
struct WireRoute {
  WireId wire = -1;
  /// One chosen route per x-adjacent pin pair.
  std::vector<Route> connections;
  /// Sorted, deduplicated cells actually committed (each +1 in the array).
  std::vector<GridPoint> cells;
  /// Priced cost of the final path at decision time — the wire's
  /// contribution to the occupancy factor (paper §3).
  std::int64_t path_cost = 0;

  bool routed() const { return !cells.empty(); }

  /// Bounding box over committed cells.
  Rect bbox() const;
};

/// Aggregate work counters; drive both reporting and the simulated time
/// model (probes are the unit of routing compute).
struct RouteWorkStats {
  std::int64_t probes = 0;
  std::int64_t routes_evaluated = 0;
  std::int64_t cells_committed = 0;
  std::int64_t wires_routed = 0;

  RouteWorkStats& operator+=(const RouteWorkStats& other) {
    probes += other.probes;
    routes_evaluated += other.routes_evaluated;
    cells_committed += other.cells_committed;
    wires_routed += other.wires_routed;
    return *this;
  }
};

class WireRouter {
 public:
  WireRouter(std::int32_t channels, RouterParams params)
      : channels_(channels), params_(params) {}

  /// Prices candidates against `view`, commits the chosen cells (+1 each)
  /// and returns the route. Work counters accumulate into `stats`.
  WireRoute route_wire(const Wire& wire, CostView& view, RouteWorkStats& stats) const;

  /// Reverses a previous commitment (-1 on each committed cell).
  static void rip_up(const WireRoute& route, CostView& view);

  const RouterParams& params() const { return params_; }

 private:
  std::int32_t channels_;
  RouterParams params_;
};

}  // namespace locus
