// Candidate route enumeration for one two-point connection.
//
// LocusRoute prices many alternative shapes for each connection against the
// cost array and keeps the cheapest (paper §3). We enumerate the classic
// locus shapes:
//   * single-channel routes: descend/ascend from each pin into a common
//     channel c (within the pins' channel range, widened by `channel_slack`)
//     and run horizontally — one candidate per c;
//   * Z-routes: run in channel c1, jog vertically at grid xj, finish in
//     channel c2 — candidates over (c1, c2, xj) with xj sampled at a stride
//     so enumeration cost stays bounded on long connections.
//
// Pricing has two interchangeable engines:
//   * the reference engine probes every cell of every candidate with one
//     CostView::read() — O(candidates × span) reads;
//   * the prefix-sum engine (used when the view supports bulk reads) loads
//     the candidate window once via read_row(), builds per-channel and
//     per-column prefix sums of the clamped cost (or cost², matching
//     congestion_power), and prices each candidate in O(1) from sums plus
//     junction corrections — O(c·span + c²·jog_samples) total.
// Both produce bit-identical routes, costs and stats: `cells_probed` stays
// defined as the number of cells a per-cell pricer would touch (it is the
// router's unit of *simulated* compute time and, in the shared memory
// build, the source of the reference trace), independent of which engine
// ran on the host.
#pragma once

#include <cstdint>

#include "circuit/circuit.hpp"
#include "obs/obs.hpp"
#include "route/cost_view.hpp"
#include "route/path.hpp"

namespace locus {

struct ExplorerParams {
  /// Extra channels considered beyond the pins' own channel range.
  std::int32_t channel_slack = 1;
  /// Jog positions are sampled every max(1, |dx| / jog_samples) grids.
  std::int32_t jog_samples = 8;
  /// Cost added per direction change (0 reproduces plain occupancy pricing).
  std::int32_t bend_penalty = 0;
  /// Cell price as a function of occupancy v: 1 -> v (the paper's linear
  /// sum), 2 -> v^2 (congestion-averse; spreads wires at the cost of
  /// wirelength). Higher powers penalize hot cells superlinearly.
  std::int32_t congestion_power = 1;
  /// Debug flag: when the prefix-sum engine runs, re-price with the per-cell
  /// reference engine and assert the chosen route, cost and stats agree
  /// bit-for-bit. Costs ~2x; for tests and benchmarks.
  bool verify_bulk_pricing = false;
  /// Optional observability binding (not owned; null = off). When set,
  /// explore_connection() bumps route.connections / route.routes_evaluated /
  /// route.cells_probed on the binding's shard.
  const obs::ExplorerObs* obs = nullptr;

  /// Wider search: more channels and finer jog sampling. Costs ~3x probes.
  static ExplorerParams thorough() {
    ExplorerParams p;
    p.channel_slack = 2;
    p.jog_samples = 16;
    return p;
  }
};

struct ExploreStats {
  std::int64_t routes_evaluated = 0;
  std::int64_t cells_probed = 0;
};

struct ExploreResult {
  Route route;                  ///< cheapest candidate
  std::int64_t cost = 0;        ///< its priced cost at decision time
  ExploreStats stats;
};

/// Finds the cheapest route between two pins. `channels` is the circuit's
/// channel count (bounds the search range). Deterministic: ties keep the
/// first candidate in enumeration order. Picks the prefix-sum engine when
/// `view.supports_bulk_read()`, the per-cell reference engine otherwise.
ExploreResult explore_connection(const Pin& a, const Pin& b, std::int32_t channels,
                                 CostView& view, const ExplorerParams& params);

/// The per-cell reference engine, always: prices every candidate cell with
/// one view.read(). Exposed for equivalence tests and the microbenchmark
/// baseline; production callers use explore_connection().
ExploreResult explore_connection_reference(const Pin& a, const Pin& b,
                                           std::int32_t channels, CostView& view,
                                           const ExplorerParams& params);

}  // namespace locus
