// ASCII rendering of cost arrays and routes — the textual equivalent of the
// paper's Figure 1 (a placement and its cost array). Used by examples and
// handy when debugging routing behaviour.
#pragma once

#include <string>

#include "grid/cost_array.hpp"
#include "route/router.hpp"

namespace locus {

/// Renders the array as one text row per channel, one character per routing
/// grid: '.' for zero, digits 1-9, then letters for 10+ ('a' = 10, capped
/// at 'z' = 35, '#' beyond). Wide arrays can be windowed with [x_lo, x_hi].
std::string render_cost_array(const CostArray& cost);
std::string render_cost_array(const CostArray& cost, std::int32_t x_lo,
                              std::int32_t x_hi);

/// Renders one wire's committed route on top of the array: route cells show
/// '*', everything else as in render_cost_array.
std::string render_route(const CostArray& cost, const WireRoute& route);

}  // namespace locus
