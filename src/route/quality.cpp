#include "route/quality.hpp"

namespace locus {

std::vector<std::int32_t> track_profile(const CostArray& cost) {
  std::vector<std::int32_t> profile(static_cast<std::size_t>(cost.channels()));
  for (std::int32_t c = 0; c < cost.channels(); ++c) {
    profile[static_cast<std::size_t>(c)] = cost.max_in_channel(c);
  }
  return profile;
}

std::int64_t circuit_height(const CostArray& cost) {
  std::int64_t height = 0;
  for (std::int32_t c = 0; c < cost.channels(); ++c) {
    height += cost.max_in_channel(c);
  }
  return height;
}

CostArray rebuild_cost(std::int32_t channels, std::int32_t grids,
                       std::span<const WireRoute> routes) {
  CostArray cost(channels, grids);
  for (const WireRoute& r : routes) {
    for (const GridPoint& p : r.cells) {
      cost.add(p, +1);
    }
  }
  return cost;
}

std::int64_t circuit_height(std::int32_t channels, std::int32_t grids,
                            std::span<const WireRoute> routes) {
  return circuit_height(rebuild_cost(channels, grids, routes));
}

}  // namespace locus
