// Abstract access to cost-array state during routing.
//
// The same router core runs against three backings:
//   * a plain CostArray (sequential reference implementation),
//   * a per-processor view + delta array (message passing nodes),
//   * the single shared array wrapped in a reference tracer (shared memory).
// Implementations must return non-negative values from read() — drifted
// message passing views clamp — because route costs feed a minimization.
//
// Bulk span API: read_row() fills a caller buffer with one channel row's
// clamped values in a single virtual call, and read_rows() loads a whole
// row-major window in one call, so pricing kernels touch memory at span or
// window granularity instead of paying one dispatch per cell. The default
// implementations fall back to per-cell read(); backings with
// side-effecting reads (the shared memory tracer while capturing) keep that
// fallback and report supports_bulk_read() == false so the router stays on
// the exact per-cell pricing path. CostArray devirtualizes both into SIMD
// clamp loops (support/simd.hpp); the message passing ViewWithDelta
// forwards them to its private view.
#pragma once

#include <cstdint>
#include <span>

#include "geom/point.hpp"

namespace locus {

class CostView {
 public:
  virtual ~CostView() = default;

  /// Current cost of routing through cell `p` (>= 0).
  virtual std::int32_t read(GridPoint p) = 0;

  /// Applies a commit (+1 per cell of a chosen path) or rip-up (-1).
  virtual void add(GridPoint p, std::int32_t delta) = 0;

  /// Bulk read of row `channel`, columns [x_lo, x_hi] inclusive, clamped
  /// like read(). Writes (x_hi - x_lo + 1) values into `span_out` (which
  /// must be at least that large). Default: per-cell read() loop.
  virtual void read_row(std::int32_t channel, std::int32_t x_lo, std::int32_t x_hi,
                        std::span<std::int32_t> span_out) {
    for (std::int32_t x = x_lo; x <= x_hi; ++x) {
      span_out[static_cast<std::size_t>(x - x_lo)] = read(GridPoint{channel, x});
    }
  }

  /// Bulk read of the window [c_lo, c_hi] x [x_lo, x_hi] (both inclusive),
  /// row-major into `span_out` (size >= (c_hi-c_lo+1) * (x_hi-x_lo+1)),
  /// clamped like read(). One virtual call loads a whole candidate window.
  /// Default: one read_row() per row, preserving each backing's per-row
  /// semantics (tracing views keep noting every cell).
  virtual void read_rows(std::int32_t c_lo, std::int32_t c_hi, std::int32_t x_lo,
                         std::int32_t x_hi, std::span<std::int32_t> span_out) {
    const auto width = static_cast<std::size_t>(x_hi - x_lo + 1);
    for (std::int32_t c = c_lo; c <= c_hi; ++c) {
      read_row(c, x_lo, x_hi,
               span_out.subspan(static_cast<std::size_t>(c - c_lo) * width, width));
    }
  }

  /// True when reads carry no per-cell side effects and bulk window scans
  /// are observationally equivalent to per-cell probing — the contract the
  /// prefix-sum pricing kernel needs (it reads whole candidate windows once,
  /// in row order, rather than each candidate's cells). Views that trace or
  /// otherwise account individual reads must return false.
  virtual bool supports_bulk_read() const { return false; }
};

}  // namespace locus
