// Abstract access to cost-array state during routing.
//
// The same router core runs against three backings:
//   * a plain CostArray (sequential reference implementation),
//   * a per-processor view + delta array (message passing nodes),
//   * the single shared array wrapped in a reference tracer (shared memory).
// Implementations must return non-negative values from read() — drifted
// message passing views clamp — because route costs feed a minimization.
#pragma once

#include <cstdint>

#include "geom/point.hpp"

namespace locus {

class CostView {
 public:
  virtual ~CostView() = default;

  /// Current cost of routing through cell `p` (>= 0).
  virtual std::int32_t read(GridPoint p) = 0;

  /// Applies a commit (+1 per cell of a chosen path) or rip-up (-1).
  virtual void add(GridPoint p, std::int32_t delta) = 0;
};

}  // namespace locus
