#include "route/render.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace locus {

namespace {

char cell_char(std::int32_t value) {
  if (value <= 0) return '.';
  if (value < 10) return static_cast<char>('0' + value);
  if (value < 36) return static_cast<char>('a' + (value - 10));
  return '#';
}

std::string render_window(const CostArray& cost, std::int32_t x_lo,
                          std::int32_t x_hi,
                          const std::vector<GridPoint>* highlight) {
  LOCUS_ASSERT(x_lo >= 0 && x_hi < cost.grids() && x_lo <= x_hi);
  std::ostringstream os;
  for (std::int32_t c = 0; c < cost.channels(); ++c) {
    for (std::int32_t x = x_lo; x <= x_hi; ++x) {
      const GridPoint p{c, x};
      if (highlight != nullptr &&
          std::binary_search(highlight->begin(), highlight->end(), p)) {
        os << '*';
      } else {
        os << cell_char(cost.at(p));
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace

std::string render_cost_array(const CostArray& cost) {
  return render_window(cost, 0, cost.grids() - 1, nullptr);
}

std::string render_cost_array(const CostArray& cost, std::int32_t x_lo,
                              std::int32_t x_hi) {
  return render_window(cost, x_lo, x_hi, nullptr);
}

std::string render_route(const CostArray& cost, const WireRoute& route) {
  // WireRoute::cells is sorted (collect_unique_cells), enabling the binary
  // search in the renderer.
  return render_window(cost, 0, cost.grids() - 1, &route.cells);
}

}  // namespace locus
