// Solution quality metrics (paper §3).
//
// * Circuit height: per channel, the number of routing tracks required is
//   the maximum number of wires crossing any grid of that channel; the
//   height is the sum over channels. Proportional to circuit area.
// * Occupancy factor: the sum, over all wires, of the priced cost of the
//   chosen path at the instant the wire was routed. Accumulated by the run
//   drivers from WireRoute::path_cost; helpers here cover the array side.
// Lower is better for both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "grid/cost_array.hpp"
#include "route/router.hpp"

namespace locus {

/// Track count per channel (max raw cell value in each channel row).
std::vector<std::int32_t> track_profile(const CostArray& cost);

/// Circuit height: sum of track counts over all channels.
std::int64_t circuit_height(const CostArray& cost);

/// Rebuilds the ground-truth cost array implied by a set of committed wire
/// routes (each route's cells +1). This is "the routed circuit": quality in
/// the message passing runs is computed from this, never from a processor's
/// drifted view (DESIGN.md §5.4).
CostArray rebuild_cost(std::int32_t channels, std::int32_t grids,
                       std::span<const WireRoute> routes);

/// Circuit height of the rebuilt ground truth.
std::int64_t circuit_height(std::int32_t channels, std::int32_t grids,
                            std::span<const WireRoute> routes);

}  // namespace locus
