#include "route/explorer.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace locus {

namespace {

/// Channel a pin enters when heading for channel `target`: the nearer of the
/// channels above/below its cell row.
std::int32_t entry_channel(const Pin& pin, std::int32_t target) {
  return target <= pin.row ? pin.channel_above() : pin.channel_below();
}

/// Builds the single-channel shape: drop from each pin into channel `c` and
/// run horizontally between the pin columns.
Route make_single_channel(const Pin& a, const Pin& b, std::int32_t c) {
  Route route;
  const std::int32_t ea = entry_channel(a, c);
  const std::int32_t eb = entry_channel(b, c);
  route.append(Segment{GridPoint{ea, a.x}, GridPoint{c, a.x}});
  route.append(Segment{GridPoint{c, a.x}, GridPoint{c, b.x}});
  route.append(Segment{GridPoint{c, b.x}, GridPoint{eb, b.x}});
  return route;
}

/// Builds the Z shape: channel c1 from a.x to the jog column xj, cross to
/// channel c2, continue to b.x.
Route make_z(const Pin& a, const Pin& b, std::int32_t c1, std::int32_t c2,
             std::int32_t xj) {
  Route route;
  const std::int32_t ea = entry_channel(a, c1);
  const std::int32_t eb = entry_channel(b, c2);
  route.append(Segment{GridPoint{ea, a.x}, GridPoint{c1, a.x}});
  route.append(Segment{GridPoint{c1, a.x}, GridPoint{c1, xj}});
  route.append(Segment{GridPoint{c1, xj}, GridPoint{c2, xj}});
  route.append(Segment{GridPoint{c2, xj}, GridPoint{c2, b.x}});
  route.append(Segment{GridPoint{c2, b.x}, GridPoint{eb, b.x}});
  return route;
}

std::int64_t price(const Route& route, CostView& view, std::int32_t bend_penalty,
                   std::int32_t congestion_power, ExploreStats& stats) {
  std::int64_t cost = 0;
  route.for_each_cell([&](GridPoint p) {
    std::int64_t v = view.read(p);
    if (congestion_power == 2) {
      cost += v * v;
    } else {
      cost += v;
    }
    ++stats.cells_probed;
  });
  if (bend_penalty != 0) {
    std::int32_t turns = 0;
    for (const Segment& seg : route.segments()) {
      if (seg.from != seg.to) ++turns;
    }
    if (turns > 1) cost += static_cast<std::int64_t>(bend_penalty) * (turns - 1);
  }
  ++stats.routes_evaluated;
  return cost;
}

}  // namespace

ExploreResult explore_connection(const Pin& a, const Pin& b, std::int32_t channels,
                                 CostView& view, const ExplorerParams& params) {
  LOCUS_ASSERT(channels >= 2);
  const std::int32_t pin_lo =
      std::min({a.channel_above(), b.channel_above()});
  const std::int32_t pin_hi =
      std::max({a.channel_below(), b.channel_below()});
  const std::int32_t c_lo = std::max<std::int32_t>(0, pin_lo - params.channel_slack);
  const std::int32_t c_hi =
      std::min<std::int32_t>(channels - 1, pin_hi + params.channel_slack);

  ExploreResult best;
  bool have_best = false;
  auto consider = [&](Route&& candidate) {
    std::int64_t cost = price(candidate, view, params.bend_penalty,
                              params.congestion_power, best.stats);
    if (!have_best || cost < best.cost) {
      best.route = std::move(candidate);
      best.cost = cost;
      have_best = true;
    }
  };

  // Single-channel candidates.
  for (std::int32_t c = c_lo; c <= c_hi; ++c) {
    consider(make_single_channel(a, b, c));
  }

  // Z candidates: only meaningful when the pins are in different columns.
  const std::int32_t x_lo = std::min(a.x, b.x);
  const std::int32_t x_hi = std::max(a.x, b.x);
  if (x_hi - x_lo >= 2) {
    const std::int32_t span = x_hi - x_lo;
    const std::int32_t stride =
        std::max<std::int32_t>(1, span / std::max<std::int32_t>(1, params.jog_samples));
    for (std::int32_t c1 = c_lo; c1 <= c_hi; ++c1) {
      for (std::int32_t c2 = c_lo; c2 <= c_hi; ++c2) {
        if (c1 == c2) continue;  // equals the single-channel shape
        for (std::int32_t xj = x_lo + stride; xj < x_hi; xj += stride) {
          consider(make_z(a, b, c1, c2, xj));
        }
      }
    }
  }

  LOCUS_ASSERT(have_best);
  return best;
}

}  // namespace locus
