#include "route/explorer.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <vector>

#include "support/assert.hpp"
#include "support/simd.hpp"

namespace locus {

namespace {

/// Channel a pin enters when heading for channel `target`: the nearer of the
/// channels above/below its cell row.
std::int32_t entry_channel(const Pin& pin, std::int32_t target) {
  return target <= pin.row ? pin.channel_above() : pin.channel_below();
}

/// Shared shape construction for both candidate families: drop from pin `a`
/// into channel c1, run horizontally (jogging into c2 at column xj when
/// c1 != c2), and rise into pin `b`'s entry channel. c1 == c2 yields the
/// single-channel shape (xj ignored). Builds into a caller-owned scratch
/// route so the pricing loop performs no per-candidate heap allocation.
void build_candidate(Route& route, const Pin& a, const Pin& b, std::int32_t c1,
                     std::int32_t c2, std::int32_t xj) {
  route.clear();
  const std::int32_t ea = entry_channel(a, c1);
  const std::int32_t eb = entry_channel(b, c2);
  route.append(Segment{GridPoint{ea, a.x}, GridPoint{c1, a.x}});
  if (c1 == c2) {
    route.append(Segment{GridPoint{c1, a.x}, GridPoint{c1, b.x}});
  } else {
    route.append(Segment{GridPoint{c1, a.x}, GridPoint{c1, xj}});
    route.append(Segment{GridPoint{c1, xj}, GridPoint{c2, xj}});
    route.append(Segment{GridPoint{c2, xj}, GridPoint{c2, b.x}});
  }
  route.append(Segment{GridPoint{c2, b.x}, GridPoint{eb, b.x}});
}

/// The candidate window both engines enumerate over. All candidate cells lie
/// inside [c_lo, c_hi] x [x_lo, x_hi]: entry channels sit between the pins'
/// own channels (contained in the unclamped range), horizontal runs between
/// the pin columns, jogs strictly inside them.
struct CandidateWindow {
  std::int32_t c_lo, c_hi;  ///< channel range (pins' range + slack, clamped)
  std::int32_t x_lo, x_hi;  ///< column range (pin columns, inclusive)
  std::int32_t stride = 0;  ///< jog sampling stride; 0 when Z-routes are off
};

CandidateWindow candidate_window(const Pin& a, const Pin& b, std::int32_t channels,
                                 const ExplorerParams& params) {
  const std::int32_t pin_lo = std::min({a.channel_above(), b.channel_above()});
  const std::int32_t pin_hi = std::max({a.channel_below(), b.channel_below()});
  CandidateWindow w;
  w.c_lo = std::max<std::int32_t>(0, pin_lo - params.channel_slack);
  w.c_hi = std::min<std::int32_t>(channels - 1, pin_hi + params.channel_slack);
  w.x_lo = std::min(a.x, b.x);
  w.x_hi = std::max(a.x, b.x);
  // Z candidates: only meaningful when the pins are in different columns.
  if (w.x_hi - w.x_lo >= 2) {
    const std::int32_t span = w.x_hi - w.x_lo;
    w.stride = std::max<std::int32_t>(
        1, span / std::max<std::int32_t>(1, params.jog_samples));
  }
  return w;
}

std::int64_t price(const Route& route, CostView& view, std::int32_t bend_penalty,
                   std::int32_t congestion_power, ExploreStats& stats) {
  std::int64_t cost = 0;
  route.for_each_cell([&](GridPoint p) {
    std::int64_t v = view.read(p);
    if (congestion_power == 2) {
      cost += v * v;
    } else {
      cost += v;
    }
    ++stats.cells_probed;
  });
  if (bend_penalty != 0) {
    std::int32_t turns = 0;
    for (const Segment& seg : route.segments()) {
      if (seg.from != seg.to) ++turns;
    }
    if (turns > 1) cost += static_cast<std::int64_t>(bend_penalty) * (turns - 1);
  }
  ++stats.routes_evaluated;
  return cost;
}

/// Reusable buffers for the prefix-sum engine. One instance per thread: the
/// threaded routers price concurrently, and capacity persists across calls
/// so steady-state pricing allocates nothing. Everything after `win` is
/// structure-of-arrays: per-channel rows of contiguous lanes the SIMD
/// kernels (support/simd.hpp) stream over.
struct PricingScratch {
  std::vector<std::int32_t> win;   ///< clamped window values (C x W)
  std::vector<std::int64_t> rowp;  ///< per-channel prefix sums (C x (W+1))
  std::vector<std::int64_t> colt;  ///< transposed column prefix sums ((C+1) x W)
  // Per-channel Z-candidate constants (C entries each): everything about a
  // pair (c1, c2) that does not depend on the jog column folds into
  // hconst[c1] + tconst[c2].
  std::vector<std::int64_t> hconst, tconst;
  std::vector<std::int32_t> hcells, tcells;  ///< entry-drop lengths, for stats
  // Jog-sample tables, gathered once per window at the stride-sampled
  // columns (m samples in enumeration order; rows padded to the BatchMin
  // lane multiple so masked vector loads stay inside the allocation):
  std::vector<std::int64_t> fwd;  ///< C rows: rowp[c][sample]
  std::vector<std::int64_t> rev;  ///< C rows: -rowp[c][sample+1]
  std::vector<std::int64_t> jog;  ///< C+1 rows: colt[ci][sample]
};

thread_local PricingScratch g_scratch;

/// Prefix-sum engine: load the window once, then price every candidate in
/// O(1) as a sum of segment spans minus junction-cell corrections — the
/// exact decomposition for_each_cell implies (each segment after the first
/// skips its first cell, which is the previous segment's last).
///
/// The Z tail is evaluated in whole batches per channel pair: with the jog
/// columns sampled at a fixed stride, a candidate's cost decomposes into a
/// pair constant plus four SoA lanes indexed by the sample —
///   head(c1)[k] + tail(c2)[k] + colt[hi+1][k] - colt[lo][k]
/// — which simd::batch_argmin folds and minimizes in vector lanes while
/// preserving the scalar tie-break (first candidate in enumeration order).
/// All math is int64 addition, so SIMD/scalar and batch/per-candidate
/// orders are bit-identical; only *independent* candidates are reordered.
ExploreResult explore_bulk(const Pin& a, const Pin& b, CostView& view,
                           const ExplorerParams& params, const CandidateWindow& w) {
  const std::int32_t C = w.c_hi - w.c_lo + 1;
  const std::int32_t W = w.x_hi - w.x_lo + 1;
  const bool squared = params.congestion_power == 2;
  const auto Wz = static_cast<std::size_t>(W);

  PricingScratch& s = g_scratch;
  s.win.resize(static_cast<std::size_t>(C) * Wz);
  s.rowp.resize(static_cast<std::size_t>(C) * (Wz + 1));
  s.colt.resize(static_cast<std::size_t>(C + 1) * Wz);

  // Window load: one virtual call for the whole window, then one fused SIMD
  // pass per row producing the row prefix sums and the next transposed
  // column-prefix row (colt[ci][xi] = sum of priced rows 0..ci-1 at xi, row 0
  // zero — W independent lanes per step). The priced values are never stored:
  // pv[c][x] = rowp[c][x+1] - rowp[c][x] wherever one is needed.
  view.read_rows(w.c_lo, w.c_hi, w.x_lo, w.x_hi, s.win);
  std::fill(s.colt.begin(), s.colt.begin() + static_cast<std::ptrdiff_t>(Wz), 0);
  for (std::int32_t ci = 0; ci < C; ++ci) {
    simd::price_scan_add(s.win.data() + static_cast<std::size_t>(ci) * Wz, squared,
                         s.rowp.data() + static_cast<std::size_t>(ci) * (Wz + 1),
                         s.colt.data() + static_cast<std::size_t>(ci) * Wz,
                         s.colt.data() + static_cast<std::size_t>(ci + 1) * Wz, Wz);
  }

  // O(1) lookups over the window (coordinates in grid space, inclusive).
  const auto pv_at = [&](std::int32_t c, std::int32_t x) {
    const std::int64_t* rp =
        s.rowp.data() + static_cast<std::size_t>(c - w.c_lo) * (Wz + 1);
    const std::size_t xi = static_cast<std::size_t>(x - w.x_lo);
    return rp[xi + 1] - rp[xi];
  };
  const auto col_sum = [&](std::int32_t x, std::int32_t ca, std::int32_t cb) {
    const auto [lo, hi] = std::minmax(ca, cb);
    const std::size_t xi = static_cast<std::size_t>(x - w.x_lo);
    return s.colt[static_cast<std::size_t>(hi - w.c_lo + 1) * Wz + xi] -
           s.colt[static_cast<std::size_t>(lo - w.c_lo) * Wz + xi];
  };
  const auto vdist = [](std::int32_t u, std::int32_t v) { return std::abs(u - v); };

  ExploreResult best;
  std::int64_t best_cost = 0;
  std::int32_t best_c1 = 0, best_c2 = 0, best_xj = 0;
  bool have_best = false;
  const std::int64_t bend = params.bend_penalty;

  // Per-channel pass: evaluates the single-channel candidate for every c
  // and precomputes the Z-pair constants. With pins at the window edges,
  // the head run (a.x -> xj) takes the fwd lane when a is the left pin and
  // the rev lane plus the full-row sum when a is the right pin (the row sum
  // is constant per channel, so it folds into the pair constant); the tail
  // run mirrors it. A Z candidate always turns at least 3 times (xj is
  // strictly between the pin columns); only the entry drops are
  // conditional, and each depends on one endpoint channel alone, so the
  // whole bend term splits across hconst/tconst too.
  const bool a_is_left = a.x <= b.x;
  s.hconst.resize(static_cast<std::size_t>(C));
  s.tconst.resize(static_cast<std::size_t>(C));
  s.hcells.resize(static_cast<std::size_t>(C));
  s.tcells.resize(static_cast<std::size_t>(C));
  for (std::int32_t c = w.c_lo; c <= w.c_hi; ++c) {
    const auto ci = static_cast<std::size_t>(c - w.c_lo);
    const std::int32_t ea = entry_channel(a, c);
    const std::int32_t eb = entry_channel(b, c);
    const std::int64_t head = col_sum(a.x, ea, c) - pv_at(c, a.x);
    const std::int64_t tail = col_sum(b.x, c, eb) - pv_at(c, b.x);
    const std::int64_t row_total = s.rowp[ci * (Wz + 1) + Wz];

    std::int64_t cost = head + row_total + tail;
    if (bend != 0) {
      const std::int32_t turns = (ea != c) + (a.x != b.x) + (eb != c);
      if (turns > 1) cost += bend * (turns - 1);
    }
    best.stats.cells_probed += (vdist(ea, c) + 1) + W + (vdist(eb, c) + 1) - 2;
    ++best.stats.routes_evaluated;
    if (!have_best || cost < best_cost) {
      best_cost = cost;
      best_c1 = c;
      best_c2 = c;
      best_xj = 0;
      have_best = true;
    }

    s.hconst[ci] = head + (a_is_left ? 0 : row_total) + bend * (ea != c ? 1 : 0);
    s.tconst[ci] = tail + (a_is_left ? row_total : 0) + bend * (2 + (eb != c ? 1 : 0));
    s.hcells[ci] = vdist(ea, c);
    s.tcells[ci] = vdist(eb, c);
  }

  // Z candidates, batched per channel pair. The sampled jog columns are
  // xj = x_lo + (k+1)*stride for k in [0, m): all strictly inside
  // (x_lo, x_hi), so they never collide with the pin columns (which sit at
  // the window edges) and the scalar engine's duplicate-skip never fires.
  const std::int32_t span = w.x_hi - w.x_lo;
  const std::int32_t m = w.stride > 0 ? (span - 1) / w.stride : 0;
  if (m > 0 && C >= 2) {
    const auto mz = static_cast<std::size_t>(m);
    const std::size_t mzp =
        (mz + simd::BatchMin::kPad - 1) / simd::BatchMin::kPad * simd::BatchMin::kPad;
    s.fwd.resize(static_cast<std::size_t>(C) * mzp);
    s.rev.resize(static_cast<std::size_t>(C) * mzp);
    s.jog.resize(static_cast<std::size_t>(C + 1) * mzp);

    // Gather the strided samples into dense SoA lanes. For a channel c with
    // window row rp = rowp[c] and sample column xi, the junction-corrected
    // run sums collapse to plain prefix entries (pv[xi] = rp[xi+1] - rp[xi]):
    //   fwd[c][k] = rp[xi+1] - pv[xi] = rp[xi]    (run x_lo -> xj, junction
    //                                              cell folded out)
    //   rev[c][k] = -(rp[xi] + pv[xi]) = -rp[xi+1] (run xj -> x_hi, minus
    //                                              rp[W] which folds into the
    //                                              pair constant)
    for (std::int32_t ci = 0; ci < C; ++ci) {
      const std::int64_t* rp = s.rowp.data() + static_cast<std::size_t>(ci) * (Wz + 1);
      std::int64_t* f = s.fwd.data() + static_cast<std::size_t>(ci) * mzp;
      std::int64_t* r = s.rev.data() + static_cast<std::size_t>(ci) * mzp;
      for (std::int32_t k = 0; k < m; ++k) {
        const std::int32_t xi = (k + 1) * w.stride;
        f[k] = rp[xi];
        r[k] = -rp[xi + 1];
      }
    }
    for (std::int32_t ci = 0; ci <= C; ++ci) {
      const std::int64_t* ct = s.colt.data() + static_cast<std::size_t>(ci) * Wz;
      std::int64_t* j = s.jog.data() + static_cast<std::size_t>(ci) * mzp;
      for (std::int32_t k = 0; k < m; ++k) {
        j[k] = ct[(k + 1) * w.stride];
      }
    }

    // One fused pass: every pair's whole batch folds into running vector
    // (min, index) lanes; flat candidate indices follow enumeration order
    // (c1 asc, c2 asc, xj asc), so BatchMin's first-index tie-break is the
    // scalar engine's tie-break.
    const std::int64_t* hbase = a_is_left ? s.fwd.data() : s.rev.data();
    const std::int64_t* tbase = a_is_left ? s.rev.data() : s.fwd.data();
    simd::BatchMin bm;
    std::int64_t flat = 0;
    std::int64_t probe_cells = 0;  // sum over pairs of the per-sample cells
    for (std::int32_t ci1 = 0; ci1 < C; ++ci1) {
      const std::int64_t* hvec = hbase + static_cast<std::size_t>(ci1) * mzp;
      const std::int64_t h = s.hconst[static_cast<std::size_t>(ci1)];
      for (std::int32_t ci2 = 0; ci2 < C; ++ci2) {
        if (ci1 == ci2) continue;  // equals the single-channel shape
        const auto jlo = static_cast<std::size_t>(std::min(ci1, ci2));
        const auto jhi = static_cast<std::size_t>(std::max(ci1, ci2)) + 1;
        bm.fold(h + s.tconst[static_cast<std::size_t>(ci2)],
                hvec, tbase + static_cast<std::size_t>(ci2) * mzp,
                s.jog.data() + jhi * mzp, s.jog.data() + jlo * mzp, mz, flat);
        flat += m;
        probe_cells += s.hcells[static_cast<std::size_t>(ci1)] +
                       s.tcells[static_cast<std::size_t>(ci2)] + vdist(ci1, ci2);
      }
    }
    best.stats.routes_evaluated += flat;
    best.stats.cells_probed +=
        static_cast<std::int64_t>(m) * probe_cells + flat * (span + 1);

    std::int64_t zmin = 0;
    std::int64_t zidx = 0;
    bm.resolve(&zmin, &zidx);
    if (!have_best || zmin < best_cost) {
      const std::int64_t pair_seq = zidx / m;
      const auto k = static_cast<std::int32_t>(zidx % m);
      const auto ci1 = static_cast<std::int32_t>(pair_seq / (C - 1));
      const auto r = static_cast<std::int32_t>(pair_seq % (C - 1));
      best_cost = zmin;
      best_c1 = w.c_lo + ci1;
      best_c2 = w.c_lo + (r < ci1 ? r : r + 1);
      best_xj = w.x_lo + (k + 1) * w.stride;
      have_best = true;
    }
  }

  LOCUS_ASSERT(have_best);
  build_candidate(best.route, a, b, best_c1, best_c2, best_xj);
  best.cost = best_cost;
  return best;
}

/// Per-cell reference engine. A scratch route is rebuilt in place per
/// candidate (clear() keeps capacity), so steady state allocates nothing.
ExploreResult explore_reference(const Pin& a, const Pin& b, CostView& view,
                                const ExplorerParams& params,
                                const CandidateWindow& w) {
  ExploreResult best;
  bool have_best = false;
  Route scratch;
  const auto consider = [&](std::int32_t c1, std::int32_t c2, std::int32_t xj) {
    build_candidate(scratch, a, b, c1, c2, xj);
    const std::int64_t cost = price(scratch, view, params.bend_penalty,
                                    params.congestion_power, best.stats);
    if (!have_best || cost < best.cost) {
      std::swap(best.route, scratch);  // scratch now holds the old best's storage
      best.cost = cost;
      have_best = true;
    }
  };

  // Single-channel candidates.
  for (std::int32_t c = w.c_lo; c <= w.c_hi; ++c) {
    consider(c, c, 0);
  }

  // Z candidates.
  if (w.stride > 0) {
    for (std::int32_t c1 = w.c_lo; c1 <= w.c_hi; ++c1) {
      for (std::int32_t c2 = w.c_lo; c2 <= w.c_hi; ++c2) {
        if (c1 == c2) continue;  // equals the single-channel shape
        for (std::int32_t xj = w.x_lo + w.stride; xj < w.x_hi; xj += w.stride) {
          if (xj == a.x || xj == b.x) continue;  // duplicates the single-channel shape
          consider(c1, c2, xj);
        }
      }
    }
  }

  LOCUS_ASSERT(have_best);
  return best;
}

}  // namespace

ExploreResult explore_connection_reference(const Pin& a, const Pin& b,
                                           std::int32_t channels, CostView& view,
                                           const ExplorerParams& params) {
  LOCUS_ASSERT(channels >= 2);
  return explore_reference(a, b, view, params, candidate_window(a, b, channels, params));
}

ExploreResult explore_connection(const Pin& a, const Pin& b, std::int32_t channels,
                                 CostView& view, const ExplorerParams& params) {
  LOCUS_ASSERT(channels >= 2);
  const CandidateWindow w = candidate_window(a, b, channels, params);
  if (!view.supports_bulk_read()) {
    ExploreResult res = explore_reference(a, b, view, params, w);
    LOCUS_OBS_HOOK(if (params.obs != nullptr && *params.obs) {
      params.obs->note(res.stats.routes_evaluated, res.stats.cells_probed);
    });
    return res;
  }
  ExploreResult res = explore_bulk(a, b, view, params, w);
  LOCUS_OBS_HOOK(if (params.obs != nullptr && *params.obs) {
    params.obs->note(res.stats.routes_evaluated, res.stats.cells_probed);
  });
  if (params.verify_bulk_pricing) {
    const ExploreResult ref = explore_reference(a, b, view, params, w);
    LOCUS_ASSERT_MSG(res.cost == ref.cost, "bulk pricing: cost diverged");
    LOCUS_ASSERT_MSG(res.route == ref.route, "bulk pricing: route diverged");
    LOCUS_ASSERT_MSG(res.stats.cells_probed == ref.stats.cells_probed,
                     "bulk pricing: probe accounting diverged");
    LOCUS_ASSERT_MSG(res.stats.routes_evaluated == ref.stats.routes_evaluated,
                     "bulk pricing: candidate count diverged");
  }
  return res;
}

}  // namespace locus
