#include "route/explorer.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace locus {

namespace {

/// Channel a pin enters when heading for channel `target`: the nearer of the
/// channels above/below its cell row.
std::int32_t entry_channel(const Pin& pin, std::int32_t target) {
  return target <= pin.row ? pin.channel_above() : pin.channel_below();
}

/// Shared shape construction for both candidate families: drop from pin `a`
/// into channel c1, run horizontally (jogging into c2 at column xj when
/// c1 != c2), and rise into pin `b`'s entry channel. c1 == c2 yields the
/// single-channel shape (xj ignored). Builds into a caller-owned scratch
/// route so the pricing loop performs no per-candidate heap allocation.
void build_candidate(Route& route, const Pin& a, const Pin& b, std::int32_t c1,
                     std::int32_t c2, std::int32_t xj) {
  route.clear();
  const std::int32_t ea = entry_channel(a, c1);
  const std::int32_t eb = entry_channel(b, c2);
  route.append(Segment{GridPoint{ea, a.x}, GridPoint{c1, a.x}});
  if (c1 == c2) {
    route.append(Segment{GridPoint{c1, a.x}, GridPoint{c1, b.x}});
  } else {
    route.append(Segment{GridPoint{c1, a.x}, GridPoint{c1, xj}});
    route.append(Segment{GridPoint{c1, xj}, GridPoint{c2, xj}});
    route.append(Segment{GridPoint{c2, xj}, GridPoint{c2, b.x}});
  }
  route.append(Segment{GridPoint{c2, b.x}, GridPoint{eb, b.x}});
}

/// The candidate window both engines enumerate over. All candidate cells lie
/// inside [c_lo, c_hi] x [x_lo, x_hi]: entry channels sit between the pins'
/// own channels (contained in the unclamped range), horizontal runs between
/// the pin columns, jogs strictly inside them.
struct CandidateWindow {
  std::int32_t c_lo, c_hi;  ///< channel range (pins' range + slack, clamped)
  std::int32_t x_lo, x_hi;  ///< column range (pin columns, inclusive)
  std::int32_t stride = 0;  ///< jog sampling stride; 0 when Z-routes are off
};

CandidateWindow candidate_window(const Pin& a, const Pin& b, std::int32_t channels,
                                 const ExplorerParams& params) {
  const std::int32_t pin_lo = std::min({a.channel_above(), b.channel_above()});
  const std::int32_t pin_hi = std::max({a.channel_below(), b.channel_below()});
  CandidateWindow w;
  w.c_lo = std::max<std::int32_t>(0, pin_lo - params.channel_slack);
  w.c_hi = std::min<std::int32_t>(channels - 1, pin_hi + params.channel_slack);
  w.x_lo = std::min(a.x, b.x);
  w.x_hi = std::max(a.x, b.x);
  // Z candidates: only meaningful when the pins are in different columns.
  if (w.x_hi - w.x_lo >= 2) {
    const std::int32_t span = w.x_hi - w.x_lo;
    w.stride = std::max<std::int32_t>(
        1, span / std::max<std::int32_t>(1, params.jog_samples));
  }
  return w;
}

std::int64_t price(const Route& route, CostView& view, std::int32_t bend_penalty,
                   std::int32_t congestion_power, ExploreStats& stats) {
  std::int64_t cost = 0;
  route.for_each_cell([&](GridPoint p) {
    std::int64_t v = view.read(p);
    if (congestion_power == 2) {
      cost += v * v;
    } else {
      cost += v;
    }
    ++stats.cells_probed;
  });
  if (bend_penalty != 0) {
    std::int32_t turns = 0;
    for (const Segment& seg : route.segments()) {
      if (seg.from != seg.to) ++turns;
    }
    if (turns > 1) cost += static_cast<std::int64_t>(bend_penalty) * (turns - 1);
  }
  ++stats.routes_evaluated;
  return cost;
}

/// Reusable buffers for the prefix-sum engine. One instance per thread: the
/// threaded routers price concurrently, and capacity persists across calls
/// so steady-state pricing allocates nothing.
struct PricingScratch {
  std::vector<std::int64_t> pv;    ///< priced value per window cell (C x W)
  std::vector<std::int64_t> rowp;  ///< per-channel prefix sums (C x (W+1))
  std::vector<std::int64_t> colp;  ///< per-column prefix sums (W x (C+1))
  std::vector<std::int32_t> rowbuf;  ///< read_row staging (W)
};

thread_local PricingScratch g_scratch;

/// Prefix-sum engine: load the window once, then price every candidate in
/// O(1) as a sum of segment spans minus junction-cell corrections — the
/// exact decomposition for_each_cell implies (each segment after the first
/// skips its first cell, which is the previous segment's last).
ExploreResult explore_bulk(const Pin& a, const Pin& b, CostView& view,
                           const ExplorerParams& params, const CandidateWindow& w) {
  const std::int32_t C = w.c_hi - w.c_lo + 1;
  const std::int32_t W = w.x_hi - w.x_lo + 1;
  const bool squared = params.congestion_power == 2;

  PricingScratch& s = g_scratch;
  s.pv.resize(static_cast<std::size_t>(C) * W);
  s.rowp.resize(static_cast<std::size_t>(C) * (W + 1));
  s.colp.resize(static_cast<std::size_t>(W) * (C + 1));
  s.rowbuf.resize(static_cast<std::size_t>(W));

  for (std::int32_t ci = 0; ci < C; ++ci) {
    view.read_row(w.c_lo + ci, w.x_lo, w.x_hi, s.rowbuf);
    std::int64_t* pv_row = s.pv.data() + static_cast<std::size_t>(ci) * W;
    for (std::int32_t xi = 0; xi < W; ++xi) {
      const std::int64_t v = s.rowbuf[static_cast<std::size_t>(xi)];
      pv_row[xi] = squared ? v * v : v;
    }
  }
  for (std::int32_t ci = 0; ci < C; ++ci) {
    const std::int64_t* pv_row = s.pv.data() + static_cast<std::size_t>(ci) * W;
    std::int64_t* rp = s.rowp.data() + static_cast<std::size_t>(ci) * (W + 1);
    rp[0] = 0;
    for (std::int32_t xi = 0; xi < W; ++xi) rp[xi + 1] = rp[xi] + pv_row[xi];
  }
  for (std::int32_t xi = 0; xi < W; ++xi) {
    std::int64_t* cp = s.colp.data() + static_cast<std::size_t>(xi) * (C + 1);
    cp[0] = 0;
    for (std::int32_t ci = 0; ci < C; ++ci) {
      cp[ci + 1] = cp[ci] + s.pv[static_cast<std::size_t>(ci) * W + xi];
    }
  }

  // O(1) lookups over the window (coordinates in grid space, inclusive).
  const auto pv_at = [&](std::int32_t c, std::int32_t x) {
    return s.pv[static_cast<std::size_t>(c - w.c_lo) * W + (x - w.x_lo)];
  };
  const auto row_sum = [&](std::int32_t c, std::int32_t xa, std::int32_t xb) {
    const auto [lo, hi] = std::minmax(xa, xb);
    const std::int64_t* rp =
        s.rowp.data() + static_cast<std::size_t>(c - w.c_lo) * (W + 1);
    return rp[hi - w.x_lo + 1] - rp[lo - w.x_lo];
  };
  const auto col_sum = [&](std::int32_t x, std::int32_t ca, std::int32_t cb) {
    const auto [lo, hi] = std::minmax(ca, cb);
    const std::int64_t* cp =
        s.colp.data() + static_cast<std::size_t>(x - w.x_lo) * (C + 1);
    return cp[hi - w.c_lo + 1] - cp[lo - w.c_lo];
  };
  const auto vdist = [](std::int32_t u, std::int32_t v) { return std::abs(u - v); };

  ExploreResult best;
  std::int64_t best_cost = 0;
  std::int32_t best_c1 = 0, best_c2 = 0, best_xj = 0;
  bool have_best = false;
  const std::int64_t bend = params.bend_penalty;

  const auto consider = [&](std::int64_t cost, std::int32_t c1, std::int32_t c2,
                            std::int32_t xj) {
    ++best.stats.routes_evaluated;
    if (!have_best || cost < best_cost) {
      best_cost = cost;
      best_c1 = c1;
      best_c2 = c2;
      best_xj = xj;
      have_best = true;
    }
  };

  // Single-channel candidates.
  for (std::int32_t c = w.c_lo; c <= w.c_hi; ++c) {
    const std::int32_t ea = entry_channel(a, c);
    const std::int32_t eb = entry_channel(b, c);
    std::int64_t cost = col_sum(a.x, ea, c) + row_sum(c, a.x, b.x) - pv_at(c, a.x) +
                        col_sum(b.x, c, eb) - pv_at(c, b.x);
    if (bend != 0) {
      const std::int32_t turns = (ea != c) + (a.x != b.x) + (eb != c);
      if (turns > 1) cost += bend * (turns - 1);
    }
    best.stats.cells_probed += (vdist(ea, c) + 1) + W + (vdist(eb, c) + 1) - 2;
    consider(cost, c, c, 0);
  }

  // Z candidates.
  if (w.stride > 0) {
    for (std::int32_t c1 = w.c_lo; c1 <= w.c_hi; ++c1) {
      const std::int32_t ea = entry_channel(a, c1);
      const std::int64_t head = col_sum(a.x, ea, c1) - pv_at(c1, a.x);
      const std::int32_t head_cells = vdist(ea, c1);
      for (std::int32_t c2 = w.c_lo; c2 <= w.c_hi; ++c2) {
        if (c1 == c2) continue;  // equals the single-channel shape
        const std::int32_t eb = entry_channel(b, c2);
        const std::int64_t tail = col_sum(b.x, c2, eb) - pv_at(c2, b.x);
        const std::int32_t jog_cells = vdist(c1, c2);
        for (std::int32_t xj = w.x_lo + w.stride; xj < w.x_hi; xj += w.stride) {
          if (xj == a.x || xj == b.x) continue;  // duplicates the single-channel shape
          std::int64_t cost = head + row_sum(c1, a.x, xj) + col_sum(xj, c1, c2) -
                              pv_at(c1, xj) + row_sum(c2, xj, b.x) - pv_at(c2, xj) +
                              tail;
          if (bend != 0) {
            const std::int32_t turns =
                (ea != c1) + (a.x != xj) + 1 + (xj != b.x) + (eb != c2);
            if (turns > 1) cost += bend * (turns - 1);
          }
          best.stats.cells_probed += head_cells + vdist(a.x, xj) + jog_cells +
                                     vdist(xj, b.x) + vdist(eb, c2) + 1;
          consider(cost, c1, c2, xj);
        }
      }
    }
  }

  LOCUS_ASSERT(have_best);
  build_candidate(best.route, a, b, best_c1, best_c2, best_xj);
  best.cost = best_cost;
  return best;
}

/// Per-cell reference engine. A scratch route is rebuilt in place per
/// candidate (clear() keeps capacity), so steady state allocates nothing.
ExploreResult explore_reference(const Pin& a, const Pin& b, CostView& view,
                                const ExplorerParams& params,
                                const CandidateWindow& w) {
  ExploreResult best;
  bool have_best = false;
  Route scratch;
  const auto consider = [&](std::int32_t c1, std::int32_t c2, std::int32_t xj) {
    build_candidate(scratch, a, b, c1, c2, xj);
    const std::int64_t cost = price(scratch, view, params.bend_penalty,
                                    params.congestion_power, best.stats);
    if (!have_best || cost < best.cost) {
      std::swap(best.route, scratch);  // scratch now holds the old best's storage
      best.cost = cost;
      have_best = true;
    }
  };

  // Single-channel candidates.
  for (std::int32_t c = w.c_lo; c <= w.c_hi; ++c) {
    consider(c, c, 0);
  }

  // Z candidates.
  if (w.stride > 0) {
    for (std::int32_t c1 = w.c_lo; c1 <= w.c_hi; ++c1) {
      for (std::int32_t c2 = w.c_lo; c2 <= w.c_hi; ++c2) {
        if (c1 == c2) continue;  // equals the single-channel shape
        for (std::int32_t xj = w.x_lo + w.stride; xj < w.x_hi; xj += w.stride) {
          if (xj == a.x || xj == b.x) continue;  // duplicates the single-channel shape
          consider(c1, c2, xj);
        }
      }
    }
  }

  LOCUS_ASSERT(have_best);
  return best;
}

}  // namespace

ExploreResult explore_connection_reference(const Pin& a, const Pin& b,
                                           std::int32_t channels, CostView& view,
                                           const ExplorerParams& params) {
  LOCUS_ASSERT(channels >= 2);
  return explore_reference(a, b, view, params, candidate_window(a, b, channels, params));
}

ExploreResult explore_connection(const Pin& a, const Pin& b, std::int32_t channels,
                                 CostView& view, const ExplorerParams& params) {
  LOCUS_ASSERT(channels >= 2);
  const CandidateWindow w = candidate_window(a, b, channels, params);
  if (!view.supports_bulk_read()) {
    ExploreResult res = explore_reference(a, b, view, params, w);
    LOCUS_OBS_HOOK(if (params.obs != nullptr && *params.obs) {
      params.obs->note(res.stats.routes_evaluated, res.stats.cells_probed);
    });
    return res;
  }
  ExploreResult res = explore_bulk(a, b, view, params, w);
  LOCUS_OBS_HOOK(if (params.obs != nullptr && *params.obs) {
    params.obs->note(res.stats.routes_evaluated, res.stats.cells_probed);
  });
  if (params.verify_bulk_pricing) {
    const ExploreResult ref = explore_reference(a, b, view, params, w);
    LOCUS_ASSERT_MSG(res.cost == ref.cost, "bulk pricing: cost diverged");
    LOCUS_ASSERT_MSG(res.route == ref.route, "bulk pricing: route diverged");
    LOCUS_ASSERT_MSG(res.stats.cells_probed == ref.stats.cells_probed,
                     "bulk pricing: probe accounting diverged");
    LOCUS_ASSERT_MSG(res.stats.routes_evaluated == ref.stats.routes_evaluated,
                     "bulk pricing: candidate count diverged");
  }
  return res;
}

}  // namespace locus
