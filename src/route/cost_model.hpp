// Simulated compute-time model.
//
// CBS charged real (Multimax-measured, /5) compute time between message
// events; we charge an analytic model instead: routing work is proportional
// to cost-array probes, message work to cells scanned and bytes moved. The
// constants are calibrated so a 16-processor bnrE-like run lands in the
// paper's 1.1–1.9 simulated-second band, and they approximate an Ametek
// 2010-class node (MC68020, a few MIPS). Network constants are the paper's:
// HopTime = 100 ns per byte-hop, ProcessTime = 2000 ns per network interface
// crossing, packet latency = 2·ProcessTime + HopTime·(D + L) uncontended.
#pragma once

#include <cstdint>

namespace locus {

struct TimeModel {
  // --- routing compute ---
  std::int64_t probe_ns = 1400;        ///< price one cost-array cell
  std::int64_t commit_ns = 1000;       ///< increment/decrement one cell
  std::int64_t wire_fixed_ns = 150000; ///< per-wire overhead (setup, pin walk)

  // --- message software overhead (paper: packet assembly/disassembly can
  //     reach a quarter of processing time at high update frequency) ---
  std::int64_t scan_cell_ns = 1000;    ///< delta-array scan, per cell visited
  std::int64_t pack_byte_ns = 4000;    ///< assemble payload, per byte
  std::int64_t unpack_byte_ns = 4000;  ///< apply payload, per byte
  std::int64_t msg_fixed_ns = 150000;  ///< per-packet software handling

  // --- network (paper §2.1) ---
  std::int64_t hop_time_ns = 100;      ///< one byte, one hop
  std::int64_t process_time_ns = 2000; ///< node <-> network copy, each end

  // --- shared memory access model (used only for shm time reporting) ---
  std::int64_t shm_read_ns = 1000;
  std::int64_t shm_write_ns = 1000;

  std::int64_t routing_time_ns(std::int64_t probes, std::int64_t commits,
                               std::int64_t wires) const {
    return probes * probe_ns + commits * commit_ns + wires * wire_fixed_ns;
  }
};

}  // namespace locus
