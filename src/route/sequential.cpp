#include "route/sequential.hpp"

#include "support/assert.hpp"

namespace locus {

SequentialResult route_sequential(const Circuit& circuit,
                                  const SequentialParams& params) {
  LOCUS_ASSERT(params.iterations >= 1);
  WireRouter router(circuit.channels(), params.router);

  SequentialResult result{
      .circuit_height = 0,
      .occupancy_factor = 0,
      .work = {},
      .cost = CostArray(circuit.channels(), circuit.grids()),
      .routes = {}};
  result.routes.resize(static_cast<std::size_t>(circuit.num_wires()));

  for (std::int32_t iter = 0; iter < params.iterations; ++iter) {
    const bool last = (iter + 1 == params.iterations);
    for (const Wire& wire : circuit.wires()) {
      WireRoute& slot = result.routes[static_cast<std::size_t>(wire.id)];
      if (slot.routed()) {
        WireRouter::rip_up(slot, result.cost);
      }
      slot = router.route_wire(wire, result.cost, result.work);
      if (last) {
        result.occupancy_factor += slot.path_cost;
      }
    }
  }

  result.circuit_height = circuit_height(result.cost);

  // Invariant: the incrementally maintained array equals a rebuild from the
  // final routes (rip-up exactly reversed every superseded commitment).
  LOCUS_ASSERT(result.cost ==
               rebuild_cost(circuit.channels(), circuit.grids(), result.routes));
  return result;
}

}  // namespace locus
