// Sequential reference implementation of LocusRoute.
//
// Routes every wire once per iteration against a single cost array, ripping
// up the previous iteration's commitment before re-routing (paper §3). This
// is the uniprocessor baseline: both parallel implementations must converge
// toward its quality as their consistency improves, and the speedup bench
// uses its work totals.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "grid/cost_array.hpp"
#include "route/quality.hpp"
#include "route/router.hpp"

namespace locus {

struct SequentialParams {
  RouterParams router;
  std::int32_t iterations = 2;
};

struct SequentialResult {
  std::int64_t circuit_height = 0;
  std::int64_t occupancy_factor = 0;  ///< sum of final-iteration path costs
  RouteWorkStats work;
  CostArray cost;                     ///< final ground-truth cost array
  std::vector<WireRoute> routes;      ///< final routing of every wire
};

SequentialResult route_sequential(const Circuit& circuit,
                                  const SequentialParams& params);

}  // namespace locus
