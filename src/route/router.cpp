#include "route/router.hpp"

#include <cstdlib>
#include <limits>
#include <utility>

#include "support/assert.hpp"

namespace locus {

namespace {

/// Two-point connections for a multi-pin wire: either the classic chain of
/// x-adjacent pins, or a Prim minimum spanning tree over pin-to-pin
/// Manhattan distances (total tree length never exceeds the chain's).
std::vector<std::pair<std::size_t, std::size_t>> connection_pairs(
    const Wire& wire, Decomposition mode) {
  const std::size_t n = wire.pins.size();
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(n - 1);
  if (mode == Decomposition::kChainX || n == 2) {
    for (std::size_t i = 1; i < n; ++i) pairs.emplace_back(i - 1, i);
    return pairs;
  }
  auto distance = [&](std::size_t a, std::size_t b) {
    return static_cast<std::int64_t>(std::abs(wire.pins[a].x - wire.pins[b].x)) +
           std::abs(wire.pins[a].row - wire.pins[b].row);
  };
  std::vector<bool> in_tree(n, false);
  std::vector<std::int64_t> best(n, std::numeric_limits<std::int64_t>::max());
  std::vector<std::size_t> parent(n, 0);
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) best[j] = distance(0, j);
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t u = 0;
    std::int64_t u_dist = std::numeric_limits<std::int64_t>::max();
    for (std::size_t j = 1; j < n; ++j) {
      if (!in_tree[j] && best[j] < u_dist) {
        u_dist = best[j];
        u = j;
      }
    }
    LOCUS_ASSERT(u != 0);
    in_tree[u] = true;
    pairs.emplace_back(parent[u], u);
    for (std::size_t j = 1; j < n; ++j) {
      if (!in_tree[j] && distance(u, j) < best[j]) {
        best[j] = distance(u, j);
        parent[j] = u;
      }
    }
  }
  return pairs;
}

}  // namespace

Rect WireRoute::bbox() const {
  Rect box;
  for (const GridPoint& p : cells) box.expand(p);
  return box;
}

WireRoute WireRouter::route_wire(const Wire& wire, CostView& view,
                                 RouteWorkStats& stats) const {
  LOCUS_ASSERT(wire.pins.size() >= 2);
  WireRoute out;
  out.wire = wire.id;
  out.connections.reserve(wire.pins.size() - 1);

  for (auto [a, b] : connection_pairs(wire, params_.decomposition)) {
    ExploreResult res = explore_connection(wire.pins[a], wire.pins[b], channels_,
                                           view, params_.explorer);
    stats.probes += res.stats.cells_probed;
    stats.routes_evaluated += res.stats.routes_evaluated;
    out.connections.push_back(std::move(res.route));
  }

  out.cells = collect_unique_cells(out.connections);

  // Price the final (deduplicated) path at decision time: this is the
  // wire's occupancy-factor contribution, and each read is a probe. Cells
  // are sorted (channel, then x), so each channel's cells form contiguous
  // runs priced with one bulk read per run; views with side-effecting reads
  // keep the exact per-cell path.
  if (view.supports_bulk_read()) {
    thread_local std::vector<std::int32_t> run;
    std::size_t i = 0;
    while (i < out.cells.size()) {
      std::size_t j = i + 1;
      while (j < out.cells.size() &&
             out.cells[j].channel == out.cells[i].channel &&
             out.cells[j].x == out.cells[j - 1].x + 1) {
        ++j;
      }
      run.resize(j - i);
      view.read_row(out.cells[i].channel, out.cells[i].x, out.cells[j - 1].x, run);
      for (std::size_t k = 0; k < run.size(); ++k) out.path_cost += run[k];
      i = j;
    }
  } else {
    for (const GridPoint& p : out.cells) {
      out.path_cost += view.read(p);
    }
  }
  stats.probes += static_cast<std::int64_t>(out.cells.size());

  // Commit.
  for (const GridPoint& p : out.cells) {
    view.add(p, +1);
  }
  stats.cells_committed += static_cast<std::int64_t>(out.cells.size());
  stats.wires_routed += 1;
  return out;
}

void WireRouter::rip_up(const WireRoute& route, CostView& view) {
  for (const GridPoint& p : route.cells) {
    view.add(p, -1);
  }
}

}  // namespace locus
