// Route geometry: a routed connection is a connected chain of horizontal
// (within-channel) and vertical (channel-crossing) segments over the cost
// array. Committing a route increments every covered cell once; ripping it
// up decrements the same cells (paper §3).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace locus {

/// One axis-aligned segment from `from` to `to` (inclusive); exactly one
/// coordinate differs (or none for a single-cell segment).
struct Segment {
  GridPoint from;
  GridPoint to;

  bool horizontal() const { return from.channel == to.channel; }
  std::int32_t length() const {
    return manhattan(from, to) + 1;  // cell count, inclusive
  }

  friend constexpr auto operator<=>(const Segment&, const Segment&) = default;
};

/// A connected chain of segments: segment i+1 starts where segment i ends.
class Route {
 public:
  Route() = default;

  /// Appends a segment; enforces connectivity with the previous segment.
  void append(Segment seg);

  /// Removes all segments but keeps capacity — scratch-route reuse in the
  /// candidate-pricing hot loop.
  void clear() { segments_.clear(); }

  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  friend bool operator==(const Route& a, const Route& b) {
    return a.segments_ == b.segments_;
  }

  /// Visits every covered cell exactly once in path order (junction cells
  /// shared between consecutive segments are visited once). Templated so
  /// the per-cell pricing and commit loops pay a direct call per cell
  /// instead of a std::function dispatch.
  template <typename Fn>
  void for_each_cell(Fn&& fn) const {
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const Segment& seg = segments_[i];
      GridPoint p = seg.from;
      // The junction cell was already emitted as the previous segment's `to`.
      bool skip_first = (i > 0);
      for (;;) {
        if (!skip_first) fn(p);
        skip_first = false;
        if (p == seg.to) break;
        p = step_toward(p, seg.to);
      }
    }
  }

  /// Number of distinct cells along the path (junctions counted once).
  std::int32_t cell_count() const;

  /// Bounding box over all covered cells.
  Rect bbox() const;

 private:
  /// Steps from `a` toward `b` along the single differing axis.
  static GridPoint step_toward(GridPoint a, GridPoint b) {
    if (a.channel != b.channel) {
      a.channel += (b.channel > a.channel) ? 1 : -1;
    } else if (a.x != b.x) {
      a.x += (b.x > a.x) ? 1 : -1;
    }
    return a;
  }

  std::vector<Segment> segments_;
};

/// Collects a route's cells, sorted and deduplicated. Used to merge the
/// per-pin-pair routes of a multi-pin wire so each wire contributes at most
/// one unit of cost per cell.
std::vector<GridPoint> collect_unique_cells(const std::vector<Route>& routes);

}  // namespace locus
