// Route geometry: a routed connection is a connected chain of horizontal
// (within-channel) and vertical (channel-crossing) segments over the cost
// array. Committing a route increments every covered cell once; ripping it
// up decrements the same cells (paper §3).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace locus {

/// One axis-aligned segment from `from` to `to` (inclusive); exactly one
/// coordinate differs (or none for a single-cell segment).
struct Segment {
  GridPoint from;
  GridPoint to;

  bool horizontal() const { return from.channel == to.channel; }
  std::int32_t length() const {
    return manhattan(from, to) + 1;  // cell count, inclusive
  }

  friend constexpr auto operator<=>(const Segment&, const Segment&) = default;
};

/// A connected chain of segments: segment i+1 starts where segment i ends.
class Route {
 public:
  Route() = default;

  /// Appends a segment; enforces connectivity with the previous segment.
  void append(Segment seg);

  /// Removes all segments but keeps capacity — scratch-route reuse in the
  /// candidate-pricing hot loop.
  void clear() { segments_.clear(); }

  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  friend bool operator==(const Route& a, const Route& b) {
    return a.segments_ == b.segments_;
  }

  /// Visits every covered cell exactly once in path order (junction cells
  /// shared between consecutive segments are visited once).
  void for_each_cell(const std::function<void(GridPoint)>& fn) const;

  /// Number of distinct cells along the path (junctions counted once).
  std::int32_t cell_count() const;

  /// Bounding box over all covered cells.
  Rect bbox() const;

 private:
  std::vector<Segment> segments_;
};

/// Collects a route's cells, sorted and deduplicated. Used to merge the
/// per-pin-pair routes of a multi-pin wire so each wire contributes at most
/// one unit of cost per cell.
std::vector<GridPoint> collect_unique_cells(const std::vector<Route>& routes);

}  // namespace locus
