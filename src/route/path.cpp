#include "route/path.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace locus {

namespace {

/// Steps from `a` toward `b` along the single differing axis.
GridPoint step_toward(GridPoint a, GridPoint b) {
  if (a.channel != b.channel) {
    a.channel += (b.channel > a.channel) ? 1 : -1;
  } else if (a.x != b.x) {
    a.x += (b.x > a.x) ? 1 : -1;
  }
  return a;
}

}  // namespace

void Route::append(Segment seg) {
  LOCUS_ASSERT_MSG(seg.from.channel == seg.to.channel || seg.from.x == seg.to.x,
                   "segment must be axis-aligned");
  if (!segments_.empty()) {
    LOCUS_ASSERT_MSG(segments_.back().to == seg.from,
                     "segments must chain end-to-start");
  }
  segments_.push_back(seg);
}

void Route::for_each_cell(const std::function<void(GridPoint)>& fn) const {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& seg = segments_[i];
    GridPoint p = seg.from;
    // The junction cell was already emitted as the previous segment's `to`.
    bool skip_first = (i > 0);
    for (;;) {
      if (!skip_first) fn(p);
      skip_first = false;
      if (p == seg.to) break;
      p = step_toward(p, seg.to);
    }
  }
}

std::int32_t Route::cell_count() const {
  std::int32_t count = 0;
  for_each_cell([&](GridPoint) { ++count; });
  return count;
}

Rect Route::bbox() const {
  Rect box;
  for (const Segment& seg : segments_) {
    box.expand(seg.from);
    box.expand(seg.to);
  }
  return box;
}

std::vector<GridPoint> collect_unique_cells(const std::vector<Route>& routes) {
  std::vector<GridPoint> cells;
  for (const Route& r : routes) {
    r.for_each_cell([&](GridPoint p) { cells.push_back(p); });
  }
  std::sort(cells.begin(), cells.end());
  cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
  return cells;
}

}  // namespace locus
