#include "route/path.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace locus {

void Route::append(Segment seg) {
  LOCUS_ASSERT_MSG(seg.from.channel == seg.to.channel || seg.from.x == seg.to.x,
                   "segment must be axis-aligned");
  if (!segments_.empty()) {
    LOCUS_ASSERT_MSG(segments_.back().to == seg.from,
                     "segments must chain end-to-start");
  }
  segments_.push_back(seg);
}

std::int32_t Route::cell_count() const {
  std::int32_t count = 0;
  for_each_cell([&](GridPoint) { ++count; });
  return count;
}

Rect Route::bbox() const {
  Rect box;
  for (const Segment& seg : segments_) {
    box.expand(seg.from);
    box.expand(seg.to);
  }
  return box;
}

std::vector<GridPoint> collect_unique_cells(const std::vector<Route>& routes) {
  // Interval-union sweep instead of push-all + sort + unique: each route is
  // at most a handful of axis-aligned segments, so per channel there are
  // only a few x-intervals. Merging those directly skips materializing (and
  // sorting) every covered cell — the dominant cost for long wires.
  struct Interval {
    std::int32_t lo;
    std::int32_t hi;
  };
  struct Scratch {
    std::vector<std::vector<Interval>> buckets;  ///< per channel, kept empty
    std::vector<std::int32_t> used;              ///< channels with intervals
  };
  thread_local Scratch s;

  std::size_t bound = 0;  // cell-count upper bound (overlaps double-counted)
  const auto add_interval = [&](std::int32_t c, std::int32_t lo, std::int32_t hi) {
    const auto cz = static_cast<std::size_t>(c);
    if (cz >= s.buckets.size()) s.buckets.resize(cz + 1);
    std::vector<Interval>& b = s.buckets[cz];
    if (b.empty()) s.used.push_back(c);
    b.push_back(Interval{lo, hi});
    bound += static_cast<std::size_t>(hi - lo + 1);
  };

  for (const Route& r : routes) {
    for (const Segment& seg : r.segments()) {
      if (seg.horizontal()) {
        const auto [lo, hi] = std::minmax(seg.from.x, seg.to.x);
        add_interval(seg.from.channel, lo, hi);
      } else {
        const auto [clo, chi] = std::minmax(seg.from.channel, seg.to.channel);
        for (std::int32_t c = clo; c <= chi; ++c) {
          add_interval(c, seg.from.x, seg.from.x);
        }
      }
    }
  }

  std::sort(s.used.begin(), s.used.end());
  std::vector<GridPoint> cells;
  cells.reserve(bound);
  for (const std::int32_t c : s.used) {
    std::vector<Interval>& b = s.buckets[static_cast<std::size_t>(c)];
    // Insertion sort by lo: a channel rarely holds more than a few intervals.
    for (std::size_t i = 1; i < b.size(); ++i) {
      const Interval v = b[i];
      std::size_t j = i;
      while (j > 0 && b[j - 1].lo > v.lo) {
        b[j] = b[j - 1];
        --j;
      }
      b[j] = v;
    }
    // Sweep, coalescing overlapping or touching intervals, emitting each
    // covered x exactly once in ascending order.
    std::size_t i = 0;
    while (i < b.size()) {
      std::int32_t lo = b[i].lo;
      std::int32_t hi = b[i].hi;
      ++i;
      while (i < b.size() && b[i].lo <= hi + 1) {
        hi = std::max(hi, b[i].hi);
        ++i;
      }
      for (std::int32_t x = lo; x <= hi; ++x) cells.push_back(GridPoint{c, x});
    }
    b.clear();
  }
  s.used.clear();
  return cells;
}

}  // namespace locus
