#include "obs/counters.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "support/assert.hpp"

namespace locus::obs {

std::size_t histogram_bucket(std::uint64_t sample) {
  if (sample == 0) return 0;
  const auto bucket = static_cast<std::size_t>(std::bit_width(sample));
  return std::min(bucket, kHistogramBuckets - 1);
}

CounterRegistry::CounterRegistry(std::size_t num_shards)
    : shards_(num_shards == 0 ? 1 : num_shards) {}

MetricId CounterRegistry::intern(std::string_view name, Kind kind) {
  std::lock_guard<std::mutex> lock(names_mutex_);
  if (auto it = by_name_.find(std::string(name)); it != by_name_.end()) {
    LOCUS_ASSERT_MSG(kinds_[it->second] == kind,
                     "metric registered under two different kinds");
    return it->second;
  }
  const auto id = static_cast<MetricId>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  by_name_.emplace(names_.back(), id);
  return id;
}

std::size_t CounterRegistry::slot_count() const {
  std::lock_guard<std::mutex> lock(names_mutex_);
  return names_.size();
}

MetricId CounterRegistry::counter(std::string_view name) {
  return intern(name, Kind::kCounter);
}

MetricId CounterRegistry::histogram(std::string_view name) {
  return intern(name, Kind::kHistogram);
}

std::uint64_t CounterRegistry::total(MetricId id) const {
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    if (id < shard.values.size()) sum += shard.values[id];
  }
  return sum;
}

std::uint64_t CounterRegistry::total(std::string_view name) const {
  std::lock_guard<std::mutex> lock(names_mutex_);
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return 0;
  const MetricId id = it->second;
  std::uint64_t sum = 0;
  for (const Shard& shard : shards_) {
    if (id < shard.values.size()) sum += shard.values[id];
  }
  return sum;
}

HistogramSnapshot CounterRegistry::histogram_total(MetricId id) const {
  HistogramSnapshot out;
  for (const Shard& shard : shards_) {
    if (id >= shard.hists.size()) continue;
    const Hist& h = shard.hists[id];
    if (h.count == 0) continue;
    if (out.count == 0 || h.min < out.min) out.min = h.min;
    if (h.max > out.max) out.max = h.max;
    out.count += h.count;
    out.sum += h.sum;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) out.buckets[b] += h.buckets[b];
  }
  return out;
}

HistogramSnapshot CounterRegistry::histogram_total(std::string_view name) const {
  MetricId id;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    auto it = by_name_.find(std::string(name));
    if (it == by_name_.end()) return {};
    id = it->second;
  }
  return histogram_total(id);
}

std::vector<std::pair<std::string, std::uint64_t>>
CounterRegistry::merged_counters() const {
  std::vector<std::pair<std::string, MetricId>> named;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (MetricId id = 0; id < names_.size(); ++id) {
      if (kinds_[id] == Kind::kCounter) named.emplace_back(names_[id], id);
    }
  }
  std::sort(named.begin(), named.end());
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(named.size());
  for (auto& [name, id] : named) out.emplace_back(std::move(name), total(id));
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
CounterRegistry::merged_histograms() const {
  std::vector<std::pair<std::string, MetricId>> named;
  {
    std::lock_guard<std::mutex> lock(names_mutex_);
    for (MetricId id = 0; id < names_.size(); ++id) {
      if (kinds_[id] == Kind::kHistogram) named.emplace_back(names_[id], id);
    }
  }
  std::sort(named.begin(), named.end());
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(named.size());
  for (auto& [name, id] : named) {
    out.emplace_back(std::move(name), histogram_total(id));
  }
  return out;
}

void CounterRegistry::merge_from(const CounterRegistry& other) {
  for (const auto& [name, value] : other.merged_counters()) {
    if (value != 0) add(0, counter(name), value);
  }
  for (const auto& [name, snap] : other.merged_histograms()) {
    if (snap.count == 0) continue;
    const MetricId id = histogram(name);
    auto& hists = shards_[0].hists;
    if (id >= hists.size()) hists.resize(slot_count());
    Hist& h = hists[id];
    if (h.count == 0 || snap.min < h.min) h.min = snap.min;
    if (snap.max > h.max) h.max = snap.max;
    h.count += snap.count;
    h.sum += snap.sum;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] += snap.buckets[b];
    }
  }
}

std::string CounterRegistry::metrics_csv() const {
  std::string out = "kind,name,value\n";
  auto row = [&out](const char* kind, const std::string& name, const char* suffix,
                    std::uint64_t value) {
    out += kind;
    out += ',';
    out += name;
    out += suffix;
    out += ',';
    out += std::to_string(value);
    out += '\n';
  };
  for (const auto& [name, value] : merged_counters()) {
    row("counter", name, "", value);
  }
  for (const auto& [name, h] : merged_histograms()) {
    row("histogram", name, ".count", h.count);
    row("histogram", name, ".sum", h.sum);
    row("histogram", name, ".min", h.min);
    row("histogram", name, ".max", h.max);
  }
  return out;
}

bool CounterRegistry::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = metrics_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace locus::obs
