// Sharded metrics registry: named monotonic counters and log2 histograms.
//
// One registry serves a whole run. Names are registered once (idempotent;
// mutex-protected, intended for setup time) and return a stable MetricId;
// increments then touch only the caller's shard — a plain uint64 slot with
// a single writer, so the threaded routers (shm/threads_router,
// msg/threads_mp) update counters with no atomics and no contention. The
// deterministic DES runs use shard 0 (or one shard per simulated processor
// when the registry is built that wide). Reading merged totals is valid
// once every writer thread has joined; the merge is a plain sum.
//
// Histograms bucket samples by log2 (bucket 0: sample 0, bucket k:
// [2^(k-1), 2^k)) and track count/sum/min/max exactly — enough for queue
// depths, packet sizes and latency distributions without per-sample
// storage.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace locus::obs {

using MetricId = std::uint32_t;

inline constexpr std::size_t kHistogramBuckets = 48;

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Bucket a sample lands in: 0 for 0, otherwise 1 + floor(log2(sample)),
/// clamped to the last bucket.
std::size_t histogram_bucket(std::uint64_t sample);

class CounterRegistry {
 public:
  explicit CounterRegistry(std::size_t num_shards = 1);

  /// Registers (or looks up) a monotonic counter. Safe to call from any
  /// thread, but intended at setup: adds concurrent with registration of a
  /// *new* name on another thread are not synchronized.
  MetricId counter(std::string_view name);
  /// Registers (or looks up) a histogram.
  MetricId histogram(std::string_view name);

  void add(std::size_t shard, MetricId id, std::uint64_t delta = 1) {
    auto& values = shards_[shard].values;
    if (id >= values.size()) values.resize(slot_count(), 0);
    values[id] += delta;
  }

  void observe(std::size_t shard, MetricId id, std::uint64_t sample) {
    auto& hists = shards_[shard].hists;
    if (id >= hists.size()) hists.resize(slot_count());
    Hist& h = hists[id];
    if (h.count == 0 || sample < h.min) h.min = sample;
    if (sample > h.max) h.max = sample;
    ++h.count;
    h.sum += sample;
    ++h.buckets[histogram_bucket(sample)];
  }

  /// Merged (summed over shards) value of a counter.
  std::uint64_t total(MetricId id) const;
  /// Merged value by name; 0 for unknown names (a counter nobody bumped and
  /// a counter nobody registered read the same).
  std::uint64_t total(std::string_view name) const;
  HistogramSnapshot histogram_total(MetricId id) const;
  HistogramSnapshot histogram_total(std::string_view name) const;

  /// All counters with their merged values, sorted by name (deterministic).
  std::vector<std::pair<std::string, std::uint64_t>> merged_counters() const;
  /// All histograms with their merged snapshots, sorted by name.
  std::vector<std::pair<std::string, HistogramSnapshot>> merged_histograms() const;

  /// Post-join merge of a whole sibling registry: registers every metric of
  /// `other` here (by name) and folds its merged totals into shard 0. This
  /// extends the per-shard merge to per-*registry* granularity — each
  /// SimPool job runs against its own registry, and the caller absorbs them
  /// in submission order once the workers have joined, so the combined
  /// totals are deterministic. Not thread safe; call after the join.
  void merge_from(const CounterRegistry& other);

  /// Compact CSV: header `kind,name,value`, one row per counter, four rows
  /// (count/sum/min/max) per histogram, sorted by name. Deterministic.
  std::string metrics_csv() const;
  /// Writes metrics_csv() to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t num_shards() const { return shards_.size(); }
  /// Shard a logical processor / thread id maps onto.
  std::size_t shard_for(std::int64_t id) const {
    return static_cast<std::size_t>(id) % shards_.size();
  }

 private:
  enum class Kind : std::uint8_t { kCounter, kHistogram };

  struct Hist {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
  };

  /// Per-shard storage, one writer each. Separately allocated vectors keep
  /// shards off each other's cache lines for all but the vector headers.
  struct alignas(64) Shard {
    std::vector<std::uint64_t> values;
    std::vector<Hist> hists;
  };

  MetricId intern(std::string_view name, Kind kind);
  std::size_t slot_count() const;

  mutable std::mutex names_mutex_;
  std::vector<std::string> names_;  ///< by id
  std::vector<Kind> kinds_;         ///< by id
  std::unordered_map<std::string, MetricId> by_name_;
  std::vector<Shard> shards_;
};

}  // namespace locus::obs
