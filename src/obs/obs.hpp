// Observability façade and compile/runtime gate.
//
// One `Obs` instance per measured run owns the counter registry and the
// (optional) trace sink; callers hand an `Obs*` to the run configs
// (MpConfig::obs, ShmConfig::obs, ...) and read merged metrics afterwards.
//
// Gating, two layers:
//   * compile time — the CMake option LOCUS_OBS (default ON) defines
//     LOCUS_OBS_ENABLED; when OFF, every instrumentation site compiles to
//     nothing via LOCUS_OBS_HOOK() and the binaries carry zero
//     observability cost;
//   * run time — a null Obs* (the default everywhere) short-circuits each
//     hook to one predictable branch, so un-instrumented runs of an
//     instrumented binary stay effectively free.
// Hook sites are written as
//     LOCUS_OBS_HOOK(if (obs_) obs_.on_something(...));
// and the per-domain binding structs below resolve metric ids and interned
// strings once at bind() time, keeping name lookups out of every hot loop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

#ifndef LOCUS_OBS_ENABLED
#define LOCUS_OBS_ENABLED 1
#endif

#if LOCUS_OBS_ENABLED
#define LOCUS_OBS_HOOK(...) \
  do {                      \
    __VA_ARGS__;            \
  } while (0)
#else
#define LOCUS_OBS_HOOK(...) \
  do {                      \
  } while (0)
#endif

namespace locus::obs {

struct ObsOptions {
  /// Counter shards; one per concurrent writer (threads), 1 for the DES.
  std::size_t shards = 1;
  /// Record trace events (counters are always on).
  bool trace = false;
  /// Per-hop traversal instants in the trace (voluminous).
  bool hop_detail = false;
};

class Obs {
 public:
  explicit Obs(ObsOptions options = {})
      : options_(options), counters_(options.shards) {
    if (options.trace) {
      trace_ = std::make_unique<TraceSink>(
          TraceSink::Options{.hop_detail = options.hop_detail});
    }
  }

  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }
  /// Null when tracing is off.
  TraceSink* trace() { return trace_.get(); }
  const TraceSink* trace() const { return trace_.get(); }
  const ObsOptions& options() const { return options_; }

 private:
  ObsOptions options_;
  CounterRegistry counters_;
  std::unique_ptr<TraceSink> trace_;
};

// --- per-domain bindings -------------------------------------------------
//
// Each struct resolves its metric ids / interned strings once in bind();
// `explicit operator bool()` is the runtime gate at the hook site. All
// methods assume obs != nullptr.

/// sim/network.cpp: wire-level traffic counters plus packet inject/deliver
/// trace instants connected by a flow arrow (and per-hop instants when
/// hop_detail is on).
struct NetworkObs {
  Obs* obs = nullptr;
  std::size_t shard = 0;
  MetricId packets = 0;
  MetricId bytes = 0;
  MetricId byte_hops = 0;
  MetricId hops = 0;
  MetricId link_wait_ns = 0;
  MetricId dup_deliveries = 0;  ///< fault-injected duplicate wire copies
  MetricId latency_ns = 0;      ///< histogram: injection->delivery per packet
  MetricId packet_bytes = 0;    ///< histogram
  TraceSink::StrId cat_net = 0;
  TraceSink::StrId n_inject = 0;
  TraceSink::StrId n_deliver = 0;
  TraceSink::StrId n_hop = 0;
  TraceSink::StrId n_flow = 0;
  TraceSink::StrId a_type = 0;
  TraceSink::StrId a_bytes = 0;
  TraceSink::StrId a_peer = 0;
  TraceSink::StrId a_link = 0;

  void bind(Obs* o);
  explicit operator bool() const { return obs != nullptr; }
};

/// sim/event_queue.cpp: dispatch count + pending-depth histogram.
struct QueueObs {
  Obs* obs = nullptr;
  std::size_t shard = 0;
  MetricId events = 0;
  MetricId depth = 0;  ///< histogram of heap size at dispatch

  void bind(Obs* o);
  explicit operator bool() const { return obs != nullptr; }
};

/// route/explorer.cpp: pricing work per run (reads of the cost array the
/// simulated router performs, whichever host engine priced them).
struct ExplorerObs {
  Obs* obs = nullptr;
  std::size_t shard = 0;
  MetricId connections = 0;
  MetricId routes_evaluated = 0;
  MetricId cells_probed = 0;

  void bind(Obs* o, std::size_t shard_index = 0);
  explicit operator bool() const { return obs != nullptr; }

  void note(std::int64_t routes, std::int64_t cells) const {
    CounterRegistry& reg = obs->counters();
    reg.add(shard, connections, 1);
    reg.add(shard, routes_evaluated, static_cast<std::uint64_t>(routes));
    reg.add(shard, cells_probed, static_cast<std::uint64_t>(cells));
  }
};

/// msg/node.cpp + msg/threads_mp.cpp: per-packet-kind send/receive
/// counters, rip-ups, and per-wire route spans.
struct MpNodeObs {
  Obs* obs = nullptr;
  std::size_t shard = 0;
  /// Indexed by msg_kind_index(); the last slot catches unknown types.
  static constexpr std::size_t kKinds = 11;
  std::array<MetricId, kKinds> sent{};
  std::array<MetricId, kKinds> sent_bytes{};
  std::array<MetricId, kKinds> received{};
  std::array<MetricId, kKinds> received_bytes{};
  MetricId ripups = 0;
  MetricId wires_routed = 0;
  MetricId cells_committed = 0;
  MetricId updates_suppressed = 0;
  MetricId batched_updates = 0;  ///< region-batched packets sent
  MetricId batched_blocks = 0;   ///< tight blocks carried by those packets
  MetricId grants = 0;           ///< wire grants sent (queue owner)
  MetricId grant_wires = 0;      ///< wires carried by those grants
  MetricId affinity_hits = 0;    ///< grants satisfied from a resident bucket
  MetricId steal_probes = 0;     ///< steal requests sent (idle worker)
  MetricId steal_wires = 0;      ///< wires obtained by stealing
  TraceSink::StrId cat_route = 0;
  TraceSink::StrId n_route = 0;
  TraceSink::StrId a_wire = 0;
  TraceSink::StrId a_iteration = 0;

  void bind(Obs* o, std::size_t shard_index);
  explicit operator bool() const { return obs != nullptr; }
};

/// Dense index for a MsgType value (msg/packets.hpp); unknown values map to
/// MpNodeObs::kKinds - 1.
std::size_t msg_kind_index(std::int32_t type);
/// Human name of a MsgType value ("SendLocData", ...; "Unknown" otherwise).
const char* msg_kind_name(std::int32_t type);

/// shm/shm_router.cpp + shm/threads_router.cpp: per-wire spans and routing
/// work counters for the shared memory executors.
struct ShmObs {
  Obs* obs = nullptr;
  std::size_t shard = 0;
  MetricId wires_routed = 0;
  MetricId ripups = 0;
  MetricId cells_committed = 0;
  MetricId trace_refs = 0;
  TraceSink::StrId cat_route = 0;
  TraceSink::StrId n_route = 0;
  TraceSink::StrId a_wire = 0;
  TraceSink::StrId a_iteration = 0;

  void bind(Obs* o, std::size_t shard_index);
  explicit operator bool() const { return obs != nullptr; }
};

/// coherence/simulator.cpp: protocol traffic mirrored into named counters.
/// CoherenceSim::publish_obs() performs the copy (the replay loop itself
/// stays untouched); prefix distinguishes multiple replays in one registry.
struct CoherenceObsNames {
  static constexpr const char* kAccesses = "coh.accesses";
  static constexpr const char* kReadMisses = "coh.read_misses";
  static constexpr const char* kWriteMisses = "coh.write_misses";
  static constexpr const char* kInvalidations = "coh.invalidations";
  static constexpr const char* kColdFetchBytes = "coh.cold_fetch_bytes";
  static constexpr const char* kRefetchBytes = "coh.refetch_bytes";
  static constexpr const char* kWriteFetchBytes = "coh.write_fetch_bytes";
  static constexpr const char* kWordWriteBytes = "coh.word_write_bytes";
  static constexpr const char* kReadFlushBytes = "coh.read_flush_bytes";
  static constexpr const char* kWriteFlushBytes = "coh.write_flush_bytes";
  static constexpr const char* kEvictionWritebackBytes =
      "coh.eviction_writeback_bytes";
  static constexpr const char* kTotalBytes = "coh.total_bytes";
  static constexpr const char* kLinesTouched = "coh.lines_touched";
};

}  // namespace locus::obs
