// Simulator event recorder with Chrome trace_event JSON export.
//
// Records complete spans (node compute, per-wire route/commit intervals),
// instants (packet inject/deliver, hop traversals) and counter samples
// (queue depth), all stamped in *simulated* nanoseconds, and serializes
// them to the Chrome trace_event format — load the file in Perfetto
// (https://ui.perfetto.dev) or about://tracing. Flow events connect a
// packet's inject to its delivery as an arrow.
//
// Event storage is flat PODs over an interned string table, appended in
// emission order; because the DES executes events in deterministic order
// and all timestamps are simulated, the exported JSON is byte-identical
// across runs of the same seed (the golden test relies on this). The sink
// is single-writer: only the sequential simulators emit traces — the real-
// threads backends record counters only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace locus::obs {

using TraceTime = std::int64_t;  ///< simulated nanoseconds (sim/event_queue.hpp)

class TraceSink {
 public:
  using StrId = std::uint32_t;

  struct Options {
    /// Emit one instant per link traversal of every packet. Faithful but
    /// voluminous; off by default.
    bool hop_detail = false;
  };

  TraceSink() = default;
  explicit TraceSink(Options options) : options_(options) {}

  /// Interns `s`, returning a stable id (idempotent).
  StrId intern(std::string_view s);

  /// Names a track (Chrome "thread"); tids are app-defined — simulated
  /// processor ids here.
  void set_track_name(std::int32_t tid, std::string_view name);

  /// A span [ts, ts+dur] on `tid`, with up to two named integer args.
  void complete(std::int32_t tid, StrId cat, StrId name, TraceTime ts, TraceTime dur);
  void complete(std::int32_t tid, StrId cat, StrId name, TraceTime ts, TraceTime dur,
                StrId a0_name, std::int64_t a0);
  void complete(std::int32_t tid, StrId cat, StrId name, TraceTime ts, TraceTime dur,
                StrId a0_name, std::int64_t a0, StrId a1_name, std::int64_t a1);

  /// A point event on `tid`.
  void instant(std::int32_t tid, StrId cat, StrId name, TraceTime ts);
  void instant(std::int32_t tid, StrId cat, StrId name, TraceTime ts, StrId a0_name,
               std::int64_t a0);
  void instant(std::int32_t tid, StrId cat, StrId name, TraceTime ts, StrId a0_name,
               std::int64_t a0, StrId a1_name, std::int64_t a1);

  /// A sampled counter track ("C" event).
  void counter(std::int32_t tid, StrId name, TraceTime ts, std::int64_t value);

  /// Flow arrow endpoints; `flow_id` pairs a begin with its end.
  void flow_begin(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                  std::uint64_t flow_id);
  void flow_end(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                std::uint64_t flow_id);

  bool hop_detail() const { return options_.hop_detail; }
  std::size_t size() const { return events_.size(); }

  /// Serializes everything recorded so far as Chrome trace JSON.
  std::string chrome_json() const;
  /// Writes chrome_json() to `path`; returns false on I/O failure.
  bool write_chrome_json(const std::string& path) const;

 private:
  struct Event {
    TraceTime ts = 0;
    TraceTime dur = 0;          ///< 'X' only
    std::uint64_t flow_id = 0;  ///< 's'/'f' only
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
    StrId name = 0;
    StrId cat = 0;
    StrId a0_name = 0;
    StrId a1_name = 0;
    std::int32_t tid = 0;
    char ph = 'i';
    std::uint8_t nargs = 0;
  };

  Event& push(char ph, std::int32_t tid, StrId cat, StrId name, TraceTime ts);

  Options options_;
  std::vector<Event> events_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, StrId> string_ids_;
  std::vector<std::pair<std::int32_t, StrId>> track_names_;
};

}  // namespace locus::obs
