#include "obs/trace.hpp"

#include <cstdio>

namespace locus::obs {

TraceSink::StrId TraceSink::intern(std::string_view s) {
  if (auto it = string_ids_.find(std::string(s)); it != string_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<StrId>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(strings_.back(), id);
  return id;
}

void TraceSink::set_track_name(std::int32_t tid, std::string_view name) {
  track_names_.emplace_back(tid, intern(name));
}

TraceSink::Event& TraceSink::push(char ph, std::int32_t tid, StrId cat, StrId name,
                                  TraceTime ts) {
  Event& ev = events_.emplace_back();
  ev.ph = ph;
  ev.tid = tid;
  ev.cat = cat;
  ev.name = name;
  ev.ts = ts;
  return ev;
}

void TraceSink::complete(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                         TraceTime dur) {
  push('X', tid, cat, name, ts).dur = dur;
}

void TraceSink::complete(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                         TraceTime dur, StrId a0_name, std::int64_t a0) {
  Event& ev = push('X', tid, cat, name, ts);
  ev.dur = dur;
  ev.a0_name = a0_name;
  ev.a0 = a0;
  ev.nargs = 1;
}

void TraceSink::complete(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                         TraceTime dur, StrId a0_name, std::int64_t a0,
                         StrId a1_name, std::int64_t a1) {
  Event& ev = push('X', tid, cat, name, ts);
  ev.dur = dur;
  ev.a0_name = a0_name;
  ev.a0 = a0;
  ev.a1_name = a1_name;
  ev.a1 = a1;
  ev.nargs = 2;
}

void TraceSink::instant(std::int32_t tid, StrId cat, StrId name, TraceTime ts) {
  push('i', tid, cat, name, ts);
}

void TraceSink::instant(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                        StrId a0_name, std::int64_t a0) {
  Event& ev = push('i', tid, cat, name, ts);
  ev.a0_name = a0_name;
  ev.a0 = a0;
  ev.nargs = 1;
}

void TraceSink::instant(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                        StrId a0_name, std::int64_t a0, StrId a1_name,
                        std::int64_t a1) {
  Event& ev = push('i', tid, cat, name, ts);
  ev.a0_name = a0_name;
  ev.a0 = a0;
  ev.a1_name = a1_name;
  ev.a1 = a1;
  ev.nargs = 2;
}

void TraceSink::counter(std::int32_t tid, StrId name, TraceTime ts,
                        std::int64_t value) {
  Event& ev = push('C', tid, /*cat=*/name, name, ts);
  ev.a0_name = intern("value");
  ev.a0 = value;
  ev.nargs = 1;
}

void TraceSink::flow_begin(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                           std::uint64_t flow_id) {
  push('s', tid, cat, name, ts).flow_id = flow_id;
}

void TraceSink::flow_end(std::int32_t tid, StrId cat, StrId name, TraceTime ts,
                         std::uint64_t flow_id) {
  push('f', tid, cat, name, ts).flow_id = flow_id;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += '"';
}

/// Nanoseconds as Chrome's microsecond `ts` with three decimals, formatted
/// from integer math so the output never depends on float printing.
void append_us(std::string& out, TraceTime ns) {
  char buf[48];
  const char* sign = ns < 0 ? "-" : "";
  const std::uint64_t abs_ns =
      ns < 0 ? static_cast<std::uint64_t>(-ns) : static_cast<std::uint64_t>(ns);
  std::snprintf(buf, sizeof(buf), "%s%llu.%03llu", sign,
                static_cast<unsigned long long>(abs_ns / 1000),
                static_cast<unsigned long long>(abs_ns % 1000));
  out += buf;
}

}  // namespace

std::string TraceSink::chrome_json() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  for (const auto& [tid, name_id] : track_names_) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":";
    append_json_string(out, strings_[name_id]);
    out += "}}";
  }

  char buf[32];
  for (const Event& ev : events_) {
    comma();
    out += "{\"name\":";
    append_json_string(out, strings_[ev.name]);
    out += ",\"cat\":";
    append_json_string(out, strings_[ev.cat]);
    out += ",\"ph\":\"";
    out += ev.ph;
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    append_us(out, ev.ts);
    if (ev.ph == 'X') {
      out += ",\"dur\":";
      append_us(out, ev.dur);
    }
    if (ev.ph == 's' || ev.ph == 'f') {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(ev.flow_id));
      out += ",\"id\":\"";
      out += buf;
      out += '"';
      if (ev.ph == 'f') out += ",\"bp\":\"e\"";
    }
    if (ev.ph == 'i') out += ",\"s\":\"t\"";
    if (ev.nargs > 0) {
      out += ",\"args\":{";
      append_json_string(out, strings_[ev.a0_name]);
      out += ':';
      out += std::to_string(ev.a0);
      if (ev.nargs > 1) {
        out += ',';
        append_json_string(out, strings_[ev.a1_name]);
        out += ':';
        out += std::to_string(ev.a1);
      }
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool TraceSink::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace locus::obs
