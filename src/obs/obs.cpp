#include "obs/obs.hpp"

#include <iterator>

namespace locus::obs {

namespace {

// Mirrors MsgType in msg/packets.hpp (values 1..5 and 10..14). Kept as data
// here so obs stays a leaf library the msg layer can link against.
constexpr std::int32_t kMsgValues[] = {1, 2, 3, 4, 5, 10, 11, 12, 13, 14};
constexpr const char* kMsgNames[] = {
    "SendLocData", "SendRmtData", "ReqLocData", "ReqRmtData",   "RspRmtData",
    "WireRequest", "WireGrant",   "Ack",        "StealRequest", "StealGrant",
};
constexpr std::size_t kNamedKinds = std::size(kMsgValues);
static_assert(kNamedKinds + 1 == MpNodeObs::kKinds);

}  // namespace

std::size_t msg_kind_index(std::int32_t type) {
  for (std::size_t i = 0; i < kNamedKinds; ++i) {
    if (kMsgValues[i] == type) return i;
  }
  return MpNodeObs::kKinds - 1;
}

const char* msg_kind_name(std::int32_t type) {
  const std::size_t i = msg_kind_index(type);
  return i < kNamedKinds ? kMsgNames[i] : "Unknown";
}

void NetworkObs::bind(Obs* o) {
  obs = o;
  if (obs == nullptr) return;
  CounterRegistry& reg = obs->counters();
  shard = 0;  // the DES network is sequential
  packets = reg.counter("net.packets");
  bytes = reg.counter("net.bytes");
  byte_hops = reg.counter("net.byte_hops");
  hops = reg.counter("net.hops");
  link_wait_ns = reg.counter("net.link_wait_ns");
  dup_deliveries = reg.counter("net.dup_deliveries");
  latency_ns = reg.histogram("net.packet_latency_ns");
  packet_bytes = reg.histogram("net.packet_bytes");
  if (TraceSink* t = obs->trace()) {
    cat_net = t->intern("net");
    n_inject = t->intern("inject");
    n_deliver = t->intern("deliver");
    n_hop = t->intern("hop");
    n_flow = t->intern("packet");
    a_type = t->intern("type");
    a_bytes = t->intern("bytes");
    a_peer = t->intern("peer");
    a_link = t->intern("link");
  }
}

void QueueObs::bind(Obs* o) {
  obs = o;
  if (obs == nullptr) return;
  CounterRegistry& reg = obs->counters();
  shard = 0;  // the event loop is sequential by construction
  events = reg.counter("sim.events");
  depth = reg.histogram("sim.queue_depth");
}

void ExplorerObs::bind(Obs* o, std::size_t shard_index) {
  obs = o;
  if (obs == nullptr) return;
  CounterRegistry& reg = obs->counters();
  shard = shard_index % reg.num_shards();
  connections = reg.counter("route.connections");
  routes_evaluated = reg.counter("route.routes_evaluated");
  cells_probed = reg.counter("route.cells_probed");
}

void MpNodeObs::bind(Obs* o, std::size_t shard_index) {
  obs = o;
  if (obs == nullptr) return;
  CounterRegistry& reg = obs->counters();
  shard = shard_index % reg.num_shards();
  for (std::size_t i = 0; i < kNamedKinds; ++i) {
    const std::string base(kMsgNames[i]);
    sent[i] = reg.counter("mp.sent." + base);
    sent_bytes[i] = reg.counter("mp.sent_bytes." + base);
    received[i] = reg.counter("mp.recv." + base);
    received_bytes[i] = reg.counter("mp.recv_bytes." + base);
  }
  sent[kKinds - 1] = reg.counter("mp.sent.Unknown");
  sent_bytes[kKinds - 1] = reg.counter("mp.sent_bytes.Unknown");
  received[kKinds - 1] = reg.counter("mp.recv.Unknown");
  received_bytes[kKinds - 1] = reg.counter("mp.recv_bytes.Unknown");
  ripups = reg.counter("mp.ripups");
  wires_routed = reg.counter("mp.wires_routed");
  cells_committed = reg.counter("mp.cells_committed");
  updates_suppressed = reg.counter("mp.updates_suppressed");
  batched_updates = reg.counter("mp.batch.updates");
  batched_blocks = reg.counter("mp.batch.blocks");
  grants = reg.counter("mp.dyn.grants");
  grant_wires = reg.counter("mp.dyn.grant_wires");
  affinity_hits = reg.counter("mp.dyn.affinity_hits");
  steal_probes = reg.counter("mp.dyn.steal_probes");
  steal_wires = reg.counter("mp.dyn.steal_wires");
  if (TraceSink* t = obs->trace()) {
    cat_route = t->intern("route");
    n_route = t->intern("route_wire");
    a_wire = t->intern("wire");
    a_iteration = t->intern("iteration");
  }
}

void ShmObs::bind(Obs* o, std::size_t shard_index) {
  obs = o;
  if (obs == nullptr) return;
  CounterRegistry& reg = obs->counters();
  shard = shard_index % reg.num_shards();
  wires_routed = reg.counter("shm.wires_routed");
  ripups = reg.counter("shm.ripups");
  cells_committed = reg.counter("shm.cells_committed");
  trace_refs = reg.counter("shm.trace_refs");
  if (TraceSink* t = obs->trace()) {
    cat_route = t->intern("route");
    n_route = t->intern("route_wire");
    a_wire = t->intern("wire");
    a_iteration = t->intern("iteration");
  }
}

}  // namespace locus::obs
