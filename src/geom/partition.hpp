// Partition of the cost array into per-processor owned regions.
//
// The message passing implementation divides the cost array into a
// mesh_rows × mesh_cols grid of regions; processor (r, c) of the machine mesh
// owns region (r, c) (paper §4.1, Figure 2). The same partition also defines
// the "owner" notion used by the locality measure (§5.3.3) and by the
// locality-aware wire assignment strategies in both paradigms.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.hpp"
#include "geom/rect.hpp"

namespace locus {

using ProcId = std::int32_t;

/// Chooses mesh dimensions (rows, cols) for `procs` processors, as close to
/// square as possible with rows <= cols (e.g. 2 -> 1x2, 4 -> 2x2, 9 -> 3x3,
/// 16 -> 4x4, 8 -> 2x4, 6 -> 2x3). `procs` must have such a factorization;
/// any integer works since 1 x procs always does.
struct MeshShape {
  std::int32_t rows = 1;
  std::int32_t cols = 1;
  static MeshShape for_procs(std::int32_t procs);
  std::int32_t procs() const { return rows * cols; }
};

/// Maps cost-array cells to owning processors and back.
///
/// Region boundaries split `channels` rows into `rows` nearly-equal bands and
/// `grids` columns into `cols` nearly-equal bands; earlier bands get the
/// remainder cells, so every cell belongs to exactly one region.
class Partition {
 public:
  Partition(std::int32_t channels, std::int32_t grids, MeshShape mesh);

  std::int32_t channels() const { return channels_; }
  std::int32_t grids() const { return grids_; }
  MeshShape mesh() const { return mesh_; }
  std::int32_t num_regions() const { return mesh_.procs(); }

  /// Owning processor of a cell.
  ProcId owner(GridPoint p) const;

  /// Owned region rectangle of a processor.
  const Rect& region(ProcId proc) const;

  /// Mesh coordinates of a processor (row-major numbering).
  std::int32_t mesh_row(ProcId proc) const { return proc / mesh_.cols; }
  std::int32_t mesh_col(ProcId proc) const { return proc % mesh_.cols; }
  ProcId proc_at(std::int32_t row, std::int32_t col) const {
    return row * mesh_.cols + col;
  }

  /// Manhattan hop distance between two processors on the machine mesh.
  std::int32_t hop_distance(ProcId a, ProcId b) const;

  /// North/South/East/West mesh neighbors (fewer at the boundary).
  std::vector<ProcId> neighbors(ProcId proc) const;

  /// All region ids whose rectangles intersect `r`, in ascending order.
  std::vector<ProcId> regions_overlapping(const Rect& r) const;

 private:
  std::int32_t channels_;
  std::int32_t grids_;
  MeshShape mesh_;
  std::vector<std::int32_t> row_start_;  // size rows+1; band r = [row_start_[r], row_start_[r+1])
  std::vector<std::int32_t> col_start_;  // size cols+1
  std::vector<Rect> regions_;            // indexed by ProcId

  std::int32_t band_of(const std::vector<std::int32_t>& starts, std::int32_t v) const;
};

}  // namespace locus
