// Inclusive axis-aligned rectangles over cost-array coordinates.
//
// Update packets in the message passing implementation carry the bounding box
// of all changed cells in a region (paper §4.3.1), so rectangles — including
// the empty rectangle and incremental expansion — are a core vocabulary type.
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>

#include "geom/point.hpp"

namespace locus {

/// Inclusive rectangle: contains all (channel, x) with
/// channel_lo <= channel <= channel_hi and x_lo <= x <= x_hi.
/// The default-constructed rectangle is empty (lo > hi sentinels).
struct Rect {
  std::int32_t channel_lo = 0;
  std::int32_t channel_hi = -1;
  std::int32_t x_lo = 0;
  std::int32_t x_hi = -1;

  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  static constexpr Rect empty() { return Rect{}; }

  static constexpr Rect single(GridPoint p) {
    return Rect{p.channel, p.channel, p.x, p.x};
  }

  static constexpr Rect of(std::int32_t channel_lo, std::int32_t channel_hi,
                           std::int32_t x_lo, std::int32_t x_hi) {
    return Rect{channel_lo, channel_hi, x_lo, x_hi};
  }

  constexpr bool is_empty() const { return channel_lo > channel_hi || x_lo > x_hi; }

  constexpr std::int64_t height() const {
    return is_empty() ? 0 : static_cast<std::int64_t>(channel_hi - channel_lo) + 1;
  }

  constexpr std::int64_t width() const {
    return is_empty() ? 0 : static_cast<std::int64_t>(x_hi - x_lo) + 1;
  }

  /// Number of cells covered.
  constexpr std::int64_t area() const { return height() * width(); }

  constexpr bool contains(GridPoint p) const {
    return !is_empty() && p.channel >= channel_lo && p.channel <= channel_hi &&
           p.x >= x_lo && p.x <= x_hi;
  }

  constexpr bool contains(const Rect& other) const {
    if (other.is_empty()) return true;
    return !is_empty() && other.channel_lo >= channel_lo &&
           other.channel_hi <= channel_hi && other.x_lo >= x_lo && other.x_hi <= x_hi;
  }

  constexpr bool intersects(const Rect& other) const {
    return !intersection(*this, other).is_empty();
  }

  /// Expands the rectangle so it also covers `p`.
  constexpr void expand(GridPoint p) {
    if (is_empty()) {
      *this = single(p);
      return;
    }
    channel_lo = std::min(channel_lo, p.channel);
    channel_hi = std::max(channel_hi, p.channel);
    x_lo = std::min(x_lo, p.x);
    x_hi = std::max(x_hi, p.x);
  }

  /// Expands the rectangle so it also covers `other`.
  constexpr void expand(const Rect& other) {
    if (other.is_empty()) return;
    if (is_empty()) {
      *this = other;
      return;
    }
    channel_lo = std::min(channel_lo, other.channel_lo);
    channel_hi = std::max(channel_hi, other.channel_hi);
    x_lo = std::min(x_lo, other.x_lo);
    x_hi = std::max(x_hi, other.x_hi);
  }

  static constexpr Rect intersection(const Rect& a, const Rect& b) {
    if (a.is_empty() || b.is_empty()) return empty();
    Rect r{std::max(a.channel_lo, b.channel_lo), std::min(a.channel_hi, b.channel_hi),
           std::max(a.x_lo, b.x_lo), std::min(a.x_hi, b.x_hi)};
    if (r.is_empty()) return empty();
    return r;
  }
};

}  // namespace locus
