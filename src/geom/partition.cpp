#include "geom/partition.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace locus {

MeshShape MeshShape::for_procs(std::int32_t procs) {
  LOCUS_ASSERT(procs >= 1);
  std::int32_t best_rows = 1;
  for (std::int32_t r = 1; r * r <= procs; ++r) {
    if (procs % r == 0) best_rows = r;
  }
  return MeshShape{best_rows, procs / best_rows};
}

namespace {

// Splits `total` cells into `bands` contiguous bands of nearly equal size;
// returns band start offsets (size bands+1). Earlier bands take the remainder.
std::vector<std::int32_t> make_bands(std::int32_t total, std::int32_t bands) {
  LOCUS_ASSERT(bands >= 1);
  LOCUS_ASSERT_MSG(total >= bands, "more partition bands than cells");
  std::vector<std::int32_t> starts(static_cast<std::size_t>(bands) + 1);
  std::int32_t base = total / bands;
  std::int32_t extra = total % bands;
  std::int32_t offset = 0;
  for (std::int32_t b = 0; b < bands; ++b) {
    starts[static_cast<std::size_t>(b)] = offset;
    offset += base + (b < extra ? 1 : 0);
  }
  starts[static_cast<std::size_t>(bands)] = total;
  return starts;
}

}  // namespace

Partition::Partition(std::int32_t channels, std::int32_t grids, MeshShape mesh)
    : channels_(channels), grids_(grids), mesh_(mesh) {
  row_start_ = make_bands(channels, mesh.rows);
  col_start_ = make_bands(grids, mesh.cols);
  regions_.reserve(static_cast<std::size_t>(mesh.procs()));
  for (std::int32_t r = 0; r < mesh.rows; ++r) {
    for (std::int32_t c = 0; c < mesh.cols; ++c) {
      regions_.push_back(Rect::of(row_start_[static_cast<std::size_t>(r)],
                                  row_start_[static_cast<std::size_t>(r) + 1] - 1,
                                  col_start_[static_cast<std::size_t>(c)],
                                  col_start_[static_cast<std::size_t>(c) + 1] - 1));
    }
  }
}

std::int32_t Partition::band_of(const std::vector<std::int32_t>& starts,
                                std::int32_t v) const {
  auto it = std::upper_bound(starts.begin(), starts.end(), v);
  LOCUS_ASSERT(it != starts.begin());
  return static_cast<std::int32_t>(it - starts.begin()) - 1;
}

ProcId Partition::owner(GridPoint p) const {
  LOCUS_ASSERT(p.channel >= 0 && p.channel < channels_);
  LOCUS_ASSERT(p.x >= 0 && p.x < grids_);
  return proc_at(band_of(row_start_, p.channel), band_of(col_start_, p.x));
}

const Rect& Partition::region(ProcId proc) const {
  LOCUS_ASSERT(proc >= 0 && proc < num_regions());
  return regions_[static_cast<std::size_t>(proc)];
}

std::int32_t Partition::hop_distance(ProcId a, ProcId b) const {
  return std::abs(mesh_row(a) - mesh_row(b)) + std::abs(mesh_col(a) - mesh_col(b));
}

std::vector<ProcId> Partition::neighbors(ProcId proc) const {
  std::vector<ProcId> out;
  std::int32_t row = mesh_row(proc);
  std::int32_t col = mesh_col(proc);
  if (row > 0) out.push_back(proc_at(row - 1, col));
  if (row + 1 < mesh_.rows) out.push_back(proc_at(row + 1, col));
  if (col > 0) out.push_back(proc_at(row, col - 1));
  if (col + 1 < mesh_.cols) out.push_back(proc_at(row, col + 1));
  return out;
}

std::vector<ProcId> Partition::regions_overlapping(const Rect& r) const {
  std::vector<ProcId> out;
  if (r.is_empty()) return out;
  Rect clipped = Rect::intersection(
      r, Rect::of(0, channels_ - 1, 0, grids_ - 1));
  if (clipped.is_empty()) return out;
  std::int32_t row_lo = band_of(row_start_, clipped.channel_lo);
  std::int32_t row_hi = band_of(row_start_, clipped.channel_hi);
  std::int32_t col_lo = band_of(col_start_, clipped.x_lo);
  std::int32_t col_hi = band_of(col_start_, clipped.x_hi);
  for (std::int32_t row = row_lo; row <= row_hi; ++row) {
    for (std::int32_t col = col_lo; col <= col_hi; ++col) {
      out.push_back(proc_at(row, col));
    }
  }
  return out;
}

}  // namespace locus
