// Grid coordinates for the routing cost array.
//
// Convention used throughout the project (matches the paper's Figure 1):
//   * `channel` indexes the vertical dimension — one row per routing channel,
//     channel 0 above the top cell row.
//   * `x` indexes the horizontal dimension — one column per routing grid.
#pragma once

#include <compare>
#include <cstdint>

namespace locus {

struct GridPoint {
  std::int32_t channel = 0;
  std::int32_t x = 0;

  friend constexpr auto operator<=>(const GridPoint&, const GridPoint&) = default;
};

/// Manhattan distance between two grid points (used by locality metrics).
constexpr std::int32_t manhattan(GridPoint a, GridPoint b) {
  std::int32_t dc = a.channel - b.channel;
  std::int32_t dx = a.x - b.x;
  return (dc < 0 ? -dc : dc) + (dx < 0 ? -dx : dx);
}

}  // namespace locus
