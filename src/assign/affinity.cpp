#include "assign/affinity.hpp"

#include <algorithm>
#include <cassert>

namespace locus {

WireAffinityIndex::WireAffinityIndex(const Circuit& circuit,
                                     const Partition& partition)
    : partition_(partition) {
  const std::int32_t regions = partition.num_regions();
  buckets_.resize(static_cast<std::size_t>(regions));
  front_.assign(static_cast<std::size_t>(regions), 0);
  back_.assign(static_cast<std::size_t>(regions), 0);
  near_order_.resize(static_cast<std::size_t>(regions));
  taken_.assign(static_cast<std::size_t>(circuit.num_wires()), 0);
  costs_.resize(static_cast<std::size_t>(circuit.num_wires()));
  total_ = circuit.num_wires();
  remaining_ = total_;
  for (WireId w = 0; w < circuit.num_wires(); ++w) {
    costs_[static_cast<std::size_t>(w)] = circuit.wire(w).assignment_cost() + 1;
    total_cost_ += costs_[static_cast<std::size_t>(w)];
    // Home region = owner of the leftmost pin, the same geography the
    // static ThresholdCost assignment uses. Bucketing by every overlapped
    // region instead would file chip-spanning wires under the whole mesh,
    // and granting those from a periphery node's "resident" bucket
    // densifies its tiled view.
    const Pin& leftmost = circuit.wire(w).pins.front();
    const ProcId home =
        partition.owner(GridPoint{leftmost.channel_above(), leftmost.x});
    buckets_[static_cast<std::size_t>(home)].push_back(w);
  }
  for (std::size_t r = 0; r < buckets_.size(); ++r) {
    auto& bucket = buckets_[r];
    std::sort(bucket.begin(), bucket.end(), [&](WireId a, WireId b) {
      const std::int64_t ca = costs_[static_cast<std::size_t>(a)];
      const std::int64_t cb = costs_[static_cast<std::size_t>(b)];
      return ca != cb ? ca < cb : a < b;
    });
    back_[r] = bucket.size();
  }
}

void WireAffinityIndex::reset() {
  std::fill(taken_.begin(), taken_.end(), 0);
  std::fill(front_.begin(), front_.end(), 0);
  for (std::size_t r = 0; r < buckets_.size(); ++r) back_[r] = buckets_[r].size();
  global_cursor_ = 0;
  remaining_ = total_;
}

std::optional<WireId> WireAffinityIndex::pop_bucket(ProcId region,
                                                    bool cheap_end) {
  const auto& bucket = buckets_[static_cast<std::size_t>(region)];
  std::size_t& front = front_[static_cast<std::size_t>(region)];
  std::size_t& back = back_[static_cast<std::size_t>(region)];
  if (cheap_end) {
    while (front < back) {
      const WireId w = bucket[front];
      ++front;  // permanently skip: taken wires never come back this iteration
      if (!taken_[static_cast<std::size_t>(w)]) {
        taken_[static_cast<std::size_t>(w)] = 1;
        --remaining_;
        return w;
      }
    }
  } else {
    while (back > front) {
      const WireId w = bucket[back - 1];
      --back;
      if (!taken_[static_cast<std::size_t>(w)]) {
        taken_[static_cast<std::size_t>(w)] = 1;
        --remaining_;
        return w;
      }
    }
  }
  return std::nullopt;
}

const std::vector<ProcId>& WireAffinityIndex::near_order(ProcId home) {
  auto& order = near_order_[static_cast<std::size_t>(home)];
  if (order.empty()) {
    const std::int32_t regions = partition_.num_regions();
    order.resize(static_cast<std::size_t>(regions));
    for (std::int32_t r = 0; r < regions; ++r) order[static_cast<std::size_t>(r)] = r;
    std::stable_sort(order.begin(), order.end(), [&](ProcId a, ProcId b) {
      const std::int32_t da = partition_.hop_distance(home, a);
      const std::int32_t db = partition_.hop_distance(home, b);
      if (da != db) return da < db;
      return a < b;
    });
  }
  return order;
}

std::optional<WireId> WireAffinityIndex::take(ProcId home,
                                              std::span<const ProcId> resident,
                                              Tier* tier) {
  std::vector<WireId> one;
  if (take_batch(home, resident, 1, /*cost_budget=*/0, /*max_hops=*/0, &one,
                 tier) == 0) {
    return std::nullopt;
  }
  return one.front();
}

std::int32_t WireAffinityIndex::take_batch(ProcId home,
                                           std::span<const ProcId> resident,
                                           std::int32_t count,
                                           std::int64_t cost_budget,
                                           std::int32_t max_hops,
                                           std::vector<WireId>* out,
                                           Tier* tier) {
  if (remaining_ == 0 || count <= 0) return 0;
  const auto drain = [&](ProcId r) {
    std::int32_t got = 0;
    std::int64_t spent = 0;
    while (got < count && (cost_budget <= 0 || spent < cost_budget)) {
      const auto w = pop_bucket(r, /*cheap_end=*/r != home);
      if (!w.has_value()) break;
      out->push_back(*w);
      spent += costs_[static_cast<std::size_t>(*w)];
      ++got;
    }
    return got;
  };
  for (ProcId r : resident) {
    assert(r >= 0 && r < partition_.num_regions());
    // The radius binds the resident tier too: residency feeds back (stealing
    // from a region makes it resident, licensing further pulls), so an
    // unbounded resident tier lets every thief creep across the whole mesh.
    if (max_hops > 0 && partition_.hop_distance(home, r) > max_hops) continue;
    if (const std::int32_t got = drain(r); got > 0) {
      if (tier != nullptr) *tier = Tier::kResident;
      return got;
    }
  }
  for (ProcId r : near_order(home)) {
    // near_order is hop-sorted, so the radius cut is a clean break.
    if (max_hops > 0 && partition_.hop_distance(home, r) > max_hops) break;
    if (const std::int32_t got = drain(r); got > 0) {
      if (tier != nullptr) *tier = Tier::kNearest;
      return got;
    }
  }
  if (max_hops > 0) return 0;  // nothing reachable: caller defers the request
  // Every region bucket exhausted yet wires remain — cannot happen because
  // each wire lands in exactly one home bucket, but scan defensively so the
  // scheduler can never lose a wire.
  std::int32_t got = 0;
  while (global_cursor_ < taken_.size() && got < count) {
    const WireId w = static_cast<WireId>(global_cursor_);
    ++global_cursor_;
    if (!taken_[static_cast<std::size_t>(w)]) {
      taken_[static_cast<std::size_t>(w)] = 1;
      --remaining_;
      out->push_back(w);
      ++got;
    }
  }
  if (got > 0 && tier != nullptr) *tier = Tier::kAny;
  return got;
}

}  // namespace locus
