#include "assign/assignment.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace locus {

double Assignment::count_imbalance() const {
  if (wires_per_proc.empty()) return 0.0;
  std::size_t max_count = 0;
  std::size_t total = 0;
  for (const auto& list : wires_per_proc) {
    max_count = std::max(max_count, list.size());
    total += list.size();
  }
  if (total == 0) return 0.0;
  double mean = static_cast<double>(total) / static_cast<double>(wires_per_proc.size());
  return static_cast<double>(max_count) / mean;
}

double Assignment::cost_imbalance(const Circuit& circuit) const {
  if (wires_per_proc.empty()) return 0.0;
  std::int64_t max_cost = 0;
  std::int64_t total = 0;
  for (const auto& list : wires_per_proc) {
    std::int64_t cost = 0;
    for (WireId id : list) cost += circuit.wire(id).assignment_cost() + 1;
    max_cost = std::max(max_cost, cost);
    total += cost;
  }
  if (total == 0) return 0.0;
  double mean = static_cast<double>(total) / static_cast<double>(wires_per_proc.size());
  return static_cast<double>(max_cost) / mean;
}

Assignment assign_round_robin(const Circuit& circuit, std::int32_t procs) {
  LOCUS_ASSERT(procs >= 1);
  Assignment a;
  a.wires_per_proc.resize(static_cast<std::size_t>(procs));
  a.proc_of_wire.resize(static_cast<std::size_t>(circuit.num_wires()));
  for (const Wire& w : circuit.wires()) {
    ProcId p = w.id % procs;
    a.wires_per_proc[static_cast<std::size_t>(p)].push_back(w.id);
    a.proc_of_wire[static_cast<std::size_t>(w.id)] = p;
  }
  return a;
}

Assignment assign_threshold_cost(const Circuit& circuit, const Partition& partition,
                                 std::int64_t threshold_cost) {
  const std::int32_t procs = partition.num_regions();
  Assignment a;
  a.wires_per_proc.resize(static_cast<std::size_t>(procs));
  a.proc_of_wire.assign(static_cast<std::size_t>(circuit.num_wires()), -1);

  // Workload already placed on each processor, in length-cost units (+1 so
  // zero-length wires still count).
  std::vector<std::int64_t> load(static_cast<std::size_t>(procs), 0);

  std::vector<WireId> held_back;
  for (const Wire& w : circuit.wires()) {
    const std::int64_t cost = w.assignment_cost();
    if (threshold_cost != kThresholdInfinity && cost >= threshold_cost) {
      held_back.push_back(w.id);
      continue;
    }
    // Leftmost pin (pins are sorted by x, then row). Its owner is looked up
    // at the channel just above the pin's cell row.
    const Pin& leftmost = w.pins.front();
    ProcId p = partition.owner(GridPoint{leftmost.channel_above(), leftmost.x});
    a.wires_per_proc[static_cast<std::size_t>(p)].push_back(w.id);
    a.proc_of_wire[static_cast<std::size_t>(w.id)] = p;
    load[static_cast<std::size_t>(p)] += cost + 1;
  }

  // Final step: the long wires, largest first, onto the least-loaded
  // processor (paper §4.2: "assigned to balance the load, ignoring
  // locality").
  std::sort(held_back.begin(), held_back.end(), [&](WireId lhs, WireId rhs) {
    std::int64_t cl = circuit.wire(lhs).assignment_cost();
    std::int64_t cr = circuit.wire(rhs).assignment_cost();
    return cl != cr ? cl > cr : lhs < rhs;
  });
  for (WireId id : held_back) {
    auto best = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    a.wires_per_proc[best].push_back(id);
    a.proc_of_wire[static_cast<std::size_t>(id)] = static_cast<ProcId>(best);
    load[best] += circuit.wire(id).assignment_cost() + 1;
  }

  // Keep each processor's routing order deterministic and id-ordered so the
  // schedule does not depend on the hold-back sort.
  for (auto& list : a.wires_per_proc) std::sort(list.begin(), list.end());
  return a;
}

bool assignment_is_valid(const Assignment& assignment, const Circuit& circuit) {
  if (static_cast<std::int32_t>(assignment.proc_of_wire.size()) !=
      circuit.num_wires()) {
    return false;
  }
  std::vector<int> seen(static_cast<std::size_t>(circuit.num_wires()), 0);
  for (std::size_t p = 0; p < assignment.wires_per_proc.size(); ++p) {
    for (WireId id : assignment.wires_per_proc[p]) {
      if (id < 0 || id >= circuit.num_wires()) return false;
      if (assignment.proc_of_wire[static_cast<std::size_t>(id)] !=
          static_cast<ProcId>(p)) {
        return false;
      }
      if (++seen[static_cast<std::size_t>(id)] > 1) return false;
    }
  }
  for (int count : seen) {
    if (count != 1) return false;
  }
  return true;
}

}  // namespace locus
