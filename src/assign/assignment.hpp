// Static wire assignment (paper §4.2).
//
// Both parallel implementations distribute wires across processors before
// routing. The paper's strategies, all reproduced here:
//   * round robin — wire i to processor i mod P; the extreme non-local case;
//   * ThresholdCost hybrid — wires whose length cost is below the threshold
//     go to the owner processor of their leftmost pin (locality); longer
//     wires are held back and assigned to balance the load, ignoring
//     locality;
//   * ThresholdCost = infinity — every wire to its leftmost pin's owner; the
//     extreme local case, prone to load imbalance.
// (The shared memory dynamic "distributed loop" is not a static assignment;
// the shm driver implements it directly.)
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "circuit/circuit.hpp"
#include "geom/partition.hpp"

namespace locus {

/// Sentinel for ThresholdCost = infinity.
inline constexpr std::int64_t kThresholdInfinity =
    std::numeric_limits<std::int64_t>::max();

struct Assignment {
  /// Routing order per processor.
  std::vector<std::vector<WireId>> wires_per_proc;
  /// Inverse map: processor assigned to each wire.
  std::vector<ProcId> proc_of_wire;

  std::int32_t num_procs() const {
    return static_cast<std::int32_t>(wires_per_proc.size());
  }

  /// Wires assigned to the busiest processor divided by the mean — 1.0 is
  /// perfectly balanced by count.
  double count_imbalance() const;

  /// Same ratio weighted by Wire::assignment_cost (a workload proxy).
  double cost_imbalance(const Circuit& circuit) const;
};

/// Round robin over wire ids.
Assignment assign_round_robin(const Circuit& circuit, std::int32_t procs);

/// ThresholdCost hybrid (pass kThresholdInfinity for the fully local case).
/// Wires below the threshold go to the owner of their leftmost pin; the rest
/// are sorted by descending cost and greedily placed on the processor with
/// the least accumulated cost (ties to the lowest processor id).
Assignment assign_threshold_cost(const Circuit& circuit, const Partition& partition,
                                 std::int64_t threshold_cost);

/// Validates structural invariants: every wire appears exactly once and maps
/// agree. Used by tests and asserted by drivers in debug runs.
bool assignment_is_valid(const Assignment& assignment, const Circuit& circuit);

}  // namespace locus
