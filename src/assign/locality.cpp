#include "assign/locality.hpp"

namespace locus {

double locality_measure(const std::vector<WireRoute>& routes,
                        const Assignment& assignment, const Partition& partition) {
  std::int64_t weighted = 0;
  std::int64_t cells = 0;
  for (const WireRoute& route : routes) {
    if (route.wire < 0 ||
        route.wire >= static_cast<WireId>(assignment.proc_of_wire.size())) {
      continue;
    }
    ProcId router_proc = assignment.proc_of_wire[static_cast<std::size_t>(route.wire)];
    if (router_proc < 0) continue;
    for (const GridPoint& p : route.cells) {
      weighted += partition.hop_distance(router_proc, partition.owner(p));
      ++cells;
    }
  }
  return cells == 0 ? 0.0 : static_cast<double>(weighted) / static_cast<double>(cells);
}

double locality_estimate(const Circuit& circuit, const Assignment& assignment,
                         const Partition& partition) {
  std::int64_t weighted = 0;
  std::int64_t cells = 0;
  for (const Wire& w : circuit.wires()) {
    ProcId router_proc = assignment.proc_of_wire[static_cast<std::size_t>(w.id)];
    if (router_proc < 0) continue;
    const Rect box = w.pin_bbox();
    for (std::int32_t c = box.channel_lo; c <= box.channel_hi; ++c) {
      for (std::int32_t x = box.x_lo; x <= box.x_hi; ++x) {
        weighted += partition.hop_distance(router_proc,
                                           partition.owner(GridPoint{c, x}));
        ++cells;
      }
    }
  }
  return cells == 0 ? 0.0 : static_cast<double>(weighted) / static_cast<double>(cells);
}

}  // namespace locus
