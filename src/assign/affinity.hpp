// Wire-affinity index for locality-aware dynamic wire scheduling (ISSUE 9).
//
// The dynamic distribution schemes of §4.2 hand wires out in id order, which
// balances load but scatters every processor's working set across the whole
// grid — at scale that densifies the sharded TileGrid views. This index
// buckets every wire under its home region (the owner of its leftmost pin,
// matching the static ThresholdCost geography), so the queue owner can
// grant a requester wires homed where the requester already backs tiles
// (its resident-region summary), falling back to buckets in ascending
// mesh-hop order from the requester's home region, and finally to any
// remaining wire.
//
// Each bucket is sorted by ascending assignment cost. A requester drains
// its own home bucket from the expensive end — its geography already pays
// for those wires' tiles — while foreign buckets are drained from the cheap
// end, so the wires that roam for load balance are the short ones whose
// routes materialize few new tiles in the thief's view.
//
// Pop order is deterministic: bucket order is a pure function of the
// circuit, the end cursors only ever advance past taken wires, and every
// tie breaks on the lower wire/region id. One index serves one routing
// iteration; reset() rearms every wire for the next.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "geom/partition.hpp"

namespace locus {

class WireAffinityIndex {
 public:
  /// Which preference tier satisfied a take().
  enum class Tier : std::int8_t {
    kResident,  ///< bucketed under a requester-resident region
    kNearest,   ///< nearest non-exhausted bucket by mesh hops from home
    kAny,       ///< global id-order fallback
  };

  /// Buckets every wire of `circuit` under its home region. Built once per
  /// run; `partition` must outlive the index.
  WireAffinityIndex(const Circuit& circuit, const Partition& partition);

  /// Rearms every wire (a new routing iteration starts).
  void reset();

  /// Wires not yet taken this iteration.
  std::int64_t remaining() const { return remaining_; }

  /// Pops one untaken wire preferring (1) the `resident` regions in the
  /// given order, (2) buckets in ascending hop distance from `home` (ties
  /// to the lower region id), (3) global wire-id order. The `home` bucket
  /// pops its most expensive live wire, foreign buckets their cheapest.
  /// Returns nullopt when the iteration is exhausted; `tier` (optional)
  /// reports which preference level matched.
  std::optional<WireId> take(ProcId home, std::span<const ProcId> resident,
                             Tier* tier = nullptr);

  /// Pops up to `count` wires into `out`, all from the FIRST non-exhausted
  /// bucket in take()'s preference order (never spilling into a second
  /// bucket — a clustered grant keeps the requester's new tile footprint
  /// inside one donor neighborhood). A positive `cost_budget` additionally
  /// stops the batch once the popped wires' summed assignment cost reaches
  /// it (the first wire always pops), so a grant carries a bounded slice of
  /// routing TIME: one chip-spanner or a fistful of short wires. A positive
  /// `max_hops` restricts BOTH tiers to buckets within that many mesh hops
  /// of `home` (residency feeds back — granting from a region makes it
  /// resident, licensing further pulls — so an unbounded resident tier lets
  /// every thief creep across the whole mesh) and disables the kAny
  /// fallback. Returns the number taken; 0 with remaining() > 0 means
  /// nothing is reachable for this requester (defer it), 0 with
  /// remaining() == 0 that the iteration is exhausted.
  std::int32_t take_batch(ProcId home, std::span<const ProcId> resident,
                          std::int32_t count, std::int64_t cost_budget,
                          std::int32_t max_hops, std::vector<WireId>* out,
                          Tier* tier = nullptr);

  /// Mean per-wire assignment cost over the whole circuit (+1 floor), the
  /// natural cost_budget unit.
  std::int64_t mean_wire_cost() const {
    return total_ == 0 ? 1 : std::max<std::int64_t>(1, total_cost_ / total_);
  }

 private:
  /// Pops the cheapest (`cheap_end`) or costliest live wire of a bucket.
  std::optional<WireId> pop_bucket(ProcId region, bool cheap_end);
  const std::vector<ProcId>& near_order(ProcId home);

  const Partition& partition_;
  std::vector<std::int64_t> costs_;  ///< per wire: assignment cost
  std::int64_t total_cost_ = 0;
  /// Per region, sorted by (assignment cost, wire id) ascending.
  std::vector<std::vector<WireId>> buckets_;
  std::vector<std::size_t> front_;  ///< per region: cheap-end cursor
  std::vector<std::size_t> back_;   ///< per region: one past the costly end
  std::vector<char> taken_;         ///< per wire
  std::size_t global_cursor_ = 0;   ///< tier-kAny scan position
  std::int64_t remaining_ = 0;
  std::int64_t total_ = 0;
  /// Region ids sorted by (hop distance from home, id); built lazily per
  /// home processor and cached (the grant loop reuses them constantly).
  std::vector<std::vector<ProcId>> near_order_;
};

}  // namespace locus
