// Locality measure (paper §5.3.3).
//
// "A weighted average indicating the average distance (in horizontal or
// vertical hops) between the processor actually routing a wire segment, and
// the processor that owns the region that segment lies in." Zero means every
// routed cell was owned by its router — perfect locality. The paper reports
// 1.21 for bnrE and 0.91 for MDC under the most local assignment, as the
// upper bound on exploitable locality.
#pragma once

#include <vector>

#include "assign/assignment.hpp"
#include "geom/partition.hpp"
#include "route/router.hpp"

namespace locus {

/// Mean mesh-hop distance from the routing processor to the owner of each
/// committed cell, weighted by cells (i.e., by segment length). Routes whose
/// wire has no assignment entry are skipped.
double locality_measure(const std::vector<WireRoute>& routes,
                        const Assignment& assignment, const Partition& partition);

/// Pre-routing estimate of the same measure using each wire's pin bounding
/// box instead of its (not yet known) route. Used by examples to preview an
/// assignment's locality before committing to a run.
double locality_estimate(const Circuit& circuit, const Assignment& assignment,
                         const Partition& partition);

}  // namespace locus
