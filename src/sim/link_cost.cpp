#include "sim/link_cost.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace locus {

const char* link_cost_model_name(LinkCostModelKind kind) {
  switch (kind) {
    case LinkCostModelKind::kFixed: return "fixed";
    case LinkCostModelKind::kMd1: return "md1";
    case LinkCostModelKind::kVc: return "vc";
  }
  return "?";
}

SimTime md1_wait_ns(SimTime service_ns, double rho, double rho_max) {
  LOCUS_ASSERT(service_ns >= 0);
  if (rho <= 0.0 || service_ns == 0) return 0;
  rho = std::min(rho, rho_max);
  // Pollaczek–Khinchine with deterministic service (Cs^2 = 0):
  //   Wq = rho / (2·mu·(1-rho)) = S·rho / (2·(1-rho)).
  const double wait =
      static_cast<double>(service_ns) * rho / (2.0 * (1.0 - rho));
  return static_cast<SimTime>(wait);
}

double LinkCostModel::utilization(std::int32_t link, SimTime now) const {
  if (now <= 0) return 0.0;
  const SimTime busy = busy_ns_[static_cast<std::size_t>(link)];
  return std::min(1.0, static_cast<double>(busy) / static_cast<double>(now));
}

LinkUsageSummary LinkCostModel::summary(SimTime now) const {
  LinkUsageSummary s;
  double util_sum = 0.0;
  for (std::size_t link = 0; link < bytes_.size(); ++link) {
    s.stalls += stalls_[link];
    s.stall_ns += stall_ns_[link];
    if (bytes_[link] == 0) continue;
    ++s.links_used;
    const double u = utilization(static_cast<std::int32_t>(link), now);
    util_sum += u;
    s.max_utilization = std::max(s.max_utilization, u);
  }
  s.mean_utilization =
      s.links_used == 0 ? 0.0 : util_sum / static_cast<double>(s.links_used);
  return s;
}

namespace {

/// The paper's charge, bit-identical to the pre-seam Network loop: no
/// capacity scaling, busy for L bytes at one byte per HopTime.
class FixedLinkCost final : public LinkCostModel {
 public:
  FixedLinkCost(std::size_t num_links, std::int64_t hop_time_ns)
      : LinkCostModel(LinkCostModelKind::kFixed, num_links, hop_time_ns) {}

  SimTime cross(std::int32_t link_in, SimTime head_in, std::int64_t bytes,
                SimTime& waited) override {
    const auto link = static_cast<std::size_t>(link_in);
    SimTime& free_at = free_[link];
    const SimTime start = std::max(head_in, free_at);
    waited += start - head_in;
    stall(link, start - head_in);
    free_at = start + bytes * hop_time_ns_;
    charge(link, bytes, bytes * hop_time_ns_);
    return start + hop_time_ns_;
  }
};

/// Shared shape of the bandwidth-aware models: a per-link service time of
/// bytes·HopTime / capacity_scale (fat links drain faster), never below one
/// HopTime so a head always occupies the link it crosses.
class ScaledLinkCost : public LinkCostModel {
 protected:
  ScaledLinkCost(LinkCostModelKind kind, const Topology& topology,
                 std::int64_t hop_time_ns)
      : LinkCostModel(kind, static_cast<std::size_t>(topology.num_links()),
                      hop_time_ns),
        scale_(static_cast<std::size_t>(topology.num_links())) {
    for (std::size_t link = 0; link < scale_.size(); ++link) {
      scale_[link] =
          topology.link_capacity_scale(static_cast<std::int32_t>(link));
      LOCUS_ASSERT(scale_[link] >= 1);
    }
  }

  SimTime service_ns(std::size_t link, std::int64_t bytes) const {
    return std::max<SimTime>(hop_time_ns_,
                             bytes * hop_time_ns_ / scale_[link]);
  }

  std::vector<std::int32_t> scale_;
};

class Md1LinkCost final : public ScaledLinkCost {
 public:
  Md1LinkCost(const Topology& topology, std::int64_t hop_time_ns,
              double rho_max)
      : ScaledLinkCost(LinkCostModelKind::kMd1, topology, hop_time_ns),
        rho_max_(rho_max) {}

  SimTime cross(std::int32_t link_in, SimTime head_in, std::int64_t bytes,
                SimTime& waited) override {
    const auto link = static_cast<std::size_t>(link_in);
    const SimTime service = service_ns(link, bytes);
    // Utilization this head observes: the link's cumulative busy time over
    // elapsed simulated time. Deterministic — it depends only on the
    // simulated schedule, never on wall clock.
    const double rho =
        head_in <= 0 ? 0.0
                     : static_cast<double>(busy_ns_[link]) /
                           static_cast<double>(head_in);
    const SimTime queue_wait = md1_wait_ns(service, rho, rho_max_);
    SimTime& free_at = free_[link];
    const SimTime start = std::max(head_in + queue_wait, free_at);
    waited += start - head_in;
    stall(link, start - head_in);
    free_at = start + service;
    charge(link, bytes, service);
    return start + hop_time_ns_;
  }

 private:
  double rho_max_;
};

class VcLinkCost final : public ScaledLinkCost {
 public:
  VcLinkCost(const Topology& topology, std::int64_t hop_time_ns,
             std::int64_t buffer_bytes)
      : ScaledLinkCost(LinkCostModelKind::kVc, topology, hop_time_ns),
        buffer_bytes_(std::max<std::int64_t>(1, buffer_bytes)),
        drained_(static_cast<std::size_t>(topology.num_links()), 0) {}

  SimTime cross(std::int32_t link_in, SimTime head_in, std::int64_t bytes,
                SimTime& waited) override {
    const auto link = static_cast<std::size_t>(link_in);
    const SimTime service = service_ns(link, bytes);
    // Credits are measured in drain time: a full buffer takes capacity_ns to
    // empty at link rate, and this packet consumes service worth of it. The
    // buffer must fit any single packet, so capacity never falls below one
    // packet's service time (a whole-packet credit grant).
    const SimTime capacity_ns =
        std::max(service, service_ns(link, buffer_bytes_));
    SimTime& drained = drained_[link];
    SimTime start = std::max(head_in, free_[link]);
    const SimTime occupied_ns = std::max<SimTime>(0, drained - start);
    if (occupied_ns + service > capacity_ns) {
      // Backpressure: stall the head until enough credits return.
      start = drained + service - capacity_ns;
    }
    waited += start - head_in;
    stall(link, start - head_in);
    free_[link] = start + service;
    drained = std::max(drained, start) + service;
    charge(link, bytes, service);
    return start + hop_time_ns_;
  }

 private:
  std::int64_t buffer_bytes_;
  /// Per link: when its downstream buffer has fully drained.
  std::vector<SimTime> drained_;
};

}  // namespace

std::unique_ptr<LinkCostModel> LinkCostModel::make(const Topology& topology,
                                                   const LinkCostParams& params,
                                                   std::int64_t hop_time_ns) {
  const auto links = static_cast<std::size_t>(topology.num_links());
  switch (params.kind) {
    case LinkCostModelKind::kFixed:
      return std::make_unique<FixedLinkCost>(links, hop_time_ns);
    case LinkCostModelKind::kMd1:
      return std::make_unique<Md1LinkCost>(topology, hop_time_ns,
                                           params.md1_rho_max);
    case LinkCostModelKind::kVc:
      return std::make_unique<VcLinkCost>(topology, hop_time_ns,
                                          params.vc_buffer_bytes);
  }
  LOCUS_UNREACHABLE("bad LinkCostModelKind");
}

}  // namespace locus
