#include "sim/fault.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace locus {

bool FaultPlan::applies_to(std::int32_t type) const {
  return packet_types.empty() ||
         std::find(packet_types.begin(), packet_types.end(), type) !=
             packet_types.end();
}

namespace {

std::optional<double> parse_rate(std::string_view v) {
  // std::from_chars<double> is not universally available; go through stod
  // with explicit validation.
  try {
    std::size_t used = 0;
    const double d = std::stod(std::string(v), &used);
    if (used != v.size() || d < 0.0 || d > 1.0) return std::nullopt;
    return d;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> parse_int(std::string_view v) {
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size() || out < 0) return std::nullopt;
  return out;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  bool delay_rate_set = false;
  bool stall_rate_set = false;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view item = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, colon);
    const std::string_view value = item.substr(colon + 1);

    if (key == "drop") {
      auto r = parse_rate(value);
      if (!r) return std::nullopt;
      plan.drop_rate = *r;
    } else if (key == "dup") {
      auto r = parse_rate(value);
      if (!r) return std::nullopt;
      plan.dup_rate = *r;
    } else if (key == "reorder") {
      auto r = parse_rate(value);
      if (!r) return std::nullopt;
      plan.reorder_rate = *r;
    } else if (key == "delay") {
      auto n = parse_int(value);
      if (!n) return std::nullopt;
      plan.delay_ns = *n;
    } else if (key == "delayp") {
      auto r = parse_rate(value);
      if (!r) return std::nullopt;
      plan.delay_rate = *r;
      delay_rate_set = true;
    } else if (key == "stall") {
      auto n = parse_int(value);
      if (!n) return std::nullopt;
      plan.stall_ns = *n;
    } else if (key == "stallp") {
      auto r = parse_rate(value);
      if (!r) return std::nullopt;
      plan.stall_rate = *r;
      stall_rate_set = true;
    } else if (key == "max") {
      auto n = parse_int(value);
      if (!n) return std::nullopt;
      plan.max_packet_faults = *n;
    } else if (key == "seed") {
      auto n = parse_int(value);
      if (!n) return std::nullopt;
      plan.seed = static_cast<std::uint64_t>(*n);
    } else if (key == "types") {
      std::string_view list = value;
      while (!list.empty()) {
        const std::size_t plus = list.find('+');
        auto t = parse_int(list.substr(0, plus));
        if (!t) return std::nullopt;
        plan.packet_types.push_back(static_cast<std::int32_t>(*t));
        list = plus == std::string_view::npos ? std::string_view{}
                                              : list.substr(plus + 1);
      }
    } else {
      return std::nullopt;
    }
  }
  if (plan.delay_ns > 0 && !delay_rate_set) {
    // "delay:<ns>" without an explicit probability delays every packet that
    // no other fault claims: the rates are mutually exclusive per packet,
    // so default to the remaining probability mass.
    plan.delay_rate = std::max(
        0.0, 1.0 - plan.drop_rate - plan.dup_rate - plan.reorder_rate);
  }
  if (plan.stall_ns > 0 && !stall_rate_set) plan.stall_rate = 0.05;
  if (plan.drop_rate + plan.dup_rate + plan.delay_rate + plan.reorder_rate > 1.0) {
    return std::nullopt;  // rates are mutually exclusive per packet
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  bool first = true;
  auto sep = [&] {
    if (!first) os << ", ";
    first = false;
  };
  if (drop_rate > 0) {
    sep();
    os << "drop " << drop_rate;
  }
  if (dup_rate > 0) {
    sep();
    os << "dup " << dup_rate;
  }
  if (delay_rate > 0 && delay_ns > 0) {
    sep();
    os << "delay " << delay_ns << "ns@" << delay_rate;
  }
  if (reorder_rate > 0) {
    sep();
    os << "reorder " << reorder_rate;
  }
  if (stall_rate > 0 && stall_ns > 0) {
    sep();
    os << "stall " << stall_ns << "ns@" << stall_rate;
  }
  if (max_packet_faults > 0) {
    sep();
    os << "max " << max_packet_faults;
  }
  if (first) os << "none";
  return os.str();
}

FaultInjector::Action FaultInjector::packet_action(std::int32_t type) {
  if (!plan_.packet_faults_enabled() || !plan_.applies_to(type)) {
    return Action::kDeliver;
  }
  if (plan_.max_packet_faults > 0) {
    const std::uint64_t fired = stats_.dropped + stats_.duplicated +
                                stats_.delayed + stats_.reordered;
    if (fired >= static_cast<std::uint64_t>(plan_.max_packet_faults)) {
      return Action::kDeliver;  // cap reached: clean delivery, no PRNG draw
    }
  }
  ++stats_.packets_seen;
  // One draw decides among the mutually exclusive packet faults (rates sum
  // to <= 1; parse() enforces it, programmatic plans share the contract).
  const double u = rng_.uniform();
  double edge = plan_.drop_rate;
  if (u < edge) {
    ++stats_.dropped;
    return Action::kDrop;
  }
  edge += plan_.dup_rate;
  if (u < edge) {
    ++stats_.duplicated;
    return Action::kDuplicate;
  }
  edge += plan_.delay_rate;
  if (u < edge) {
    if (plan_.delay_ns <= 0) return Action::kDeliver;
    ++stats_.delayed;
    stats_.injected_delay_ns += plan_.delay_ns;
    return Action::kDelay;
  }
  edge += plan_.reorder_rate;
  if (u < edge) {
    ++stats_.reordered;
    return Action::kReorder;
  }
  return Action::kDeliver;
}

SimTime FaultInjector::stall() {
  if (plan_.stall_rate <= 0.0 || plan_.stall_ns <= 0) return 0;
  if (!rng_.chance(plan_.stall_rate)) return 0;
  ++stats_.stalls;
  stats_.stall_time_ns += plan_.stall_ns;
  return plan_.stall_ns;
}

}  // namespace locus
