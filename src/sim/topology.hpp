// Interconnect topology: k-ary n-dimensional mesh/torus, or a fat tree.
//
// CBS simulated k-ary n-dimensional machines; the paper's experiments use a
// two-dimensional mesh with deterministic (dimension-order / X-Y) wormhole
// routing. We support any dimensionality and both mesh (no wraparound) and
// torus (unidirectional-friendly wraparound) edges; the experiment harness
// uses 2D meshes shaped by MeshShape::for_procs.
//
// The fat-tree variant (Topology::fat_tree) places the processors at the
// leaves of an arity-k tree and routes up/down: climb to the lowest common
// ancestor, then descend — a route never revisits a switch. Tree-internal
// links get dense link_index slots like mesh links do, so the network's
// per-link contention and accounting cover them; link_capacity_scale()
// reports the "fat" factor (a level-l link aggregates arity^l leaves, so
// its capacity grows with height — the bandwidth-aware cost models in
// sim/link_cost.hpp divide service time by it).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/partition.hpp"

namespace locus {

/// A directed link identifier. For mesh/torus: node `from` toward its
/// neighbor in dimension `dim`, direction `positive` (true) or negative.
/// For a fat tree every link is one tree edge; the edge is named by its
/// CHILD endpoint — `from` is the child's position within its level, `dim`
/// is the child's level (0 = leaves), and `positive` distinguishes the up
/// link (child -> parent, true) from the down link (parent -> child).
struct LinkId {
  std::int32_t from = 0;
  std::int32_t dim = 0;
  bool positive = true;
};

class Topology {
 public:
  enum class Edges { kMesh, kTorus, kFatTree };

  /// k-ary n-dimensional mesh or torus (`edges` must not be kFatTree; use
  /// the fat_tree() factory for trees).
  Topology(std::vector<std::int32_t> dims, Edges edges);

  /// Convenience: 2D mesh with `shape.rows` x `shape.cols` nodes, matching
  /// the Partition's processor numbering (row-major, dim 0 = column/x moves
  /// first under dimension-order routing).
  static Topology mesh2d(MeshShape shape);

  /// Fat tree with `leaves` processors at level 0 and switches of the given
  /// arity above them (leaves are padded to the next power of the arity
  /// internally; padded positions carry no traffic).
  static Topology fat_tree(std::int32_t leaves, std::int32_t arity = 2);

  std::int32_t num_nodes() const { return num_nodes_; }
  std::int32_t num_dims() const { return static_cast<std::int32_t>(dims_.size()); }
  Edges edges() const { return edges_; }
  bool is_fat_tree() const { return edges_ == Edges::kFatTree; }
  /// Fat tree only: switch arity and number of switch levels above the
  /// leaves (== tree height).
  std::int32_t tree_arity() const { return arity_; }
  std::int32_t tree_levels() const { return levels_; }

  std::vector<std::int32_t> coords(std::int32_t node) const;
  std::int32_t node_at(const std::vector<std::int32_t>& coords) const;

  /// Deterministic route from src to dst as a sequence of directed links:
  /// dimension-order for mesh/torus (torus edges take the shorter way
  /// around, ties positive), up/down for the fat tree.
  std::vector<LinkId> route(std::int32_t src, std::int32_t dst) const;

  /// Hop count of the deterministic route.
  std::int32_t distance(std::int32_t src, std::int32_t dst) const;

  /// Dense index for a directed link (for contention bookkeeping):
  /// in [0, num_links()). Covers the fat tree's internal links.
  std::int32_t link_index(const LinkId& link) const;
  std::int32_t num_links() const { return num_links_; }

  /// The node a link leads to. For a fat tree this is the target's position
  /// within its own level (the level is link.dim + 1 going up, link.dim
  /// going down); at level 0 positions coincide with processor ids.
  std::int32_t link_target(const LinkId& link) const;

  /// Relative drain rate of a link (bytes per HopTime): 1 for every
  /// mesh/torus link; arity^level (capped) for a fat-tree link, since a
  /// level-l edge aggregates the traffic of arity^l leaves. Consumed by the
  /// bandwidth-aware link cost models; the fixed model ignores it.
  std::int32_t link_capacity_scale(std::int32_t link_index) const;

 private:
  Topology() = default;

  std::vector<std::int32_t> dims_;
  std::vector<std::int32_t> stride_;
  std::int32_t num_nodes_ = 0;
  std::int32_t num_links_ = 0;
  Edges edges_ = Edges::kMesh;

  // Fat tree shape (unused for mesh/torus). Level 0 holds padded_leaves_
  // positions; level l holds padded_leaves_ / arity_^l; the root is the
  // single position at level levels_.
  std::int32_t arity_ = 0;
  std::int32_t levels_ = 0;
  std::int32_t padded_leaves_ = 0;
  /// Per level l in [0, levels_): first edge id of the edges whose child
  /// endpoint sits at level l (one edge per non-root node).
  std::vector<std::int32_t> edge_base_;
  std::vector<std::int32_t> level_positions_;
};

}  // namespace locus
