// Interconnect topology: k-ary n-dimensional mesh or torus.
//
// CBS simulated k-ary n-dimensional machines; the paper's experiments use a
// two-dimensional mesh with deterministic (dimension-order / X-Y) wormhole
// routing. We support any dimensionality and both mesh (no wraparound) and
// torus (unidirectional-friendly wraparound) edges; the experiment harness
// uses 2D meshes shaped by MeshShape::for_procs.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/partition.hpp"

namespace locus {

/// A directed link identifier: node `from` toward its neighbor in dimension
/// `dim`, direction `positive` (true) or negative.
struct LinkId {
  std::int32_t from = 0;
  std::int32_t dim = 0;
  bool positive = true;
};

class Topology {
 public:
  enum class Edges { kMesh, kTorus };

  Topology(std::vector<std::int32_t> dims, Edges edges);

  /// Convenience: 2D mesh with `shape.rows` x `shape.cols` nodes, matching
  /// the Partition's processor numbering (row-major, dim 0 = column/x moves
  /// first under dimension-order routing).
  static Topology mesh2d(MeshShape shape);

  std::int32_t num_nodes() const { return num_nodes_; }
  std::int32_t num_dims() const { return static_cast<std::int32_t>(dims_.size()); }
  Edges edges() const { return edges_; }

  std::vector<std::int32_t> coords(std::int32_t node) const;
  std::int32_t node_at(const std::vector<std::int32_t>& coords) const;

  /// Dimension-order route from src to dst as a sequence of directed links.
  /// Deterministic; torus edges take the shorter way around (ties positive).
  std::vector<LinkId> route(std::int32_t src, std::int32_t dst) const;

  /// Hop count of the deterministic route.
  std::int32_t distance(std::int32_t src, std::int32_t dst) const;

  /// Dense index for a directed link (for contention bookkeeping):
  /// in [0, num_links()).
  std::int32_t link_index(const LinkId& link) const;
  std::int32_t num_links() const { return num_nodes_ * num_dims() * 2; }

  /// The node a link leads to.
  std::int32_t link_target(const LinkId& link) const;

 private:
  std::vector<std::int32_t> dims_;
  std::vector<std::int32_t> stride_;
  std::int32_t num_nodes_;
  Edges edges_;
};

}  // namespace locus
