#include "sim/event_queue.hpp"

#include <limits>
#include <utility>

namespace locus {

EventQueue::EventQueue() {
  // Reserved handler 0: trampoline for the legacy closure overload.
  handlers_.push_back(HandlerEntry{&EventQueue::closure_trampoline, this});
}

EventQueue::HandlerId EventQueue::add_handler(EventHandler fn, void* ctx) {
  LOCUS_ASSERT(fn != nullptr);
  LOCUS_ASSERT_MSG(handlers_.size() < std::numeric_limits<HandlerId>::max(),
                   "handler table overflow");
  handlers_.push_back(HandlerEntry{fn, ctx});
  return static_cast<HandlerId>(handlers_.size() - 1);
}

void EventQueue::schedule(SimTime time, HandlerId handler, std::uint64_t a,
                          std::uint64_t b) {
  LOCUS_ASSERT_MSG(time >= now_, "cannot schedule into the past");
  LOCUS_ASSERT(handler < handlers_.size());
  LOCUS_ASSERT_MSG(next_seq_ >> 48 == 0, "event sequence space exhausted");
  heap_.push(Event{time, (next_seq_++ << 16) | handler, a, b});
  peak_pending_ = std::max(peak_pending_, heap_.size());
}

void EventQueue::schedule(SimTime time, std::function<void()> fn) {
  std::uint32_t slot;
  if (!fn_free_.empty()) {
    slot = fn_free_.back();
    fn_free_.pop_back();
    fn_slots_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(fn_slots_.size());
    fn_slots_.push_back(std::move(fn));
  }
  schedule(time, HandlerId{0}, slot);
}

void EventQueue::closure_trampoline(void* ctx, SimTime /*now*/, std::uint64_t a,
                                    std::uint64_t /*b*/) {
  auto* self = static_cast<EventQueue*>(ctx);
  // Move the closure out before invoking it: the call may schedule further
  // closures and reallocate fn_slots_ under a still-live reference.
  std::function<void()> fn = std::move(self->fn_slots_[a]);
  self->fn_slots_[a] = nullptr;
  self->fn_free_.push_back(static_cast<std::uint32_t>(a));
  fn();
}

void EventQueue::dispatch(const Event& ev) {
  const HandlerEntry& h = handlers_[ev.handler()];
  h.fn(h.ctx, ev.time, ev.a, ev.b);
}

std::size_t EventQueue::run_loop(std::size_t limit) {
  std::size_t count = 0;
  while (!heap_.empty() && count < limit) {
    const Event ev = heap_.top();  // trivially copyable: plain copy, no cast
    heap_.pop();
    LOCUS_OBS_HOOK(if (obs_) {
      auto& reg = obs_.obs->counters();
      reg.add(obs_.shard, obs_.events);
      reg.observe(obs_.shard, obs_.depth, heap_.size());
    });
    now_ = ev.time;
    ++executed_;
    dispatch(ev);
    ++count;
  }
  return count;
}

SimTime EventQueue::run() {
  run_loop(std::numeric_limits<std::size_t>::max());
  return now_;
}

std::size_t EventQueue::run_bounded(std::size_t limit) {
  return run_loop(limit);
}

}  // namespace locus
