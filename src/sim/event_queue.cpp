#include "sim/event_queue.hpp"

#include <utility>

namespace locus {

void EventQueue::schedule(SimTime time, std::function<void()> fn) {
  LOCUS_ASSERT_MSG(time >= now_, "cannot schedule into the past");
  heap_.push(Event{time, next_seq_++, std::move(fn)});
}

SimTime EventQueue::run() {
  while (!heap_.empty()) {
    // Moving out of a priority_queue top requires a const_cast dance; copy
    // the small members and move the closure via a temporary instead.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
  }
  return now_;
}

std::size_t EventQueue::run_bounded(std::size_t limit) {
  std::size_t count = 0;
  while (!heap_.empty() && count < limit) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ++executed_;
    ev.fn();
    ++count;
  }
  return count;
}

}  // namespace locus
