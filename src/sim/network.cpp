#include "sim/network.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace locus {

Network::Network(const Topology& topology, NetworkParams params, EventQueue& queue,
                 DeliverFn deliver)
    : topology_(topology), params_(params), queue_(queue),
      deliver_(std::move(deliver)),
      cost_(LinkCostModel::make(topology, params.cost, params.hop_time_ns)),
      ni_free_(static_cast<std::size_t>(topology.num_nodes()), 0),
      held_(static_cast<std::size_t>(topology.num_nodes()), kNoSlot),
      h_deliver_(queue.add_handler(&Network::on_deliver, this)),
      h_deliver_once_(queue.add_handler(&Network::on_deliver_once, this)),
      h_inject_(queue.add_handler(&Network::on_inject, this)) {}

void Network::set_fault_injector(FaultInjector* injector) { injector_ = injector; }

void Network::set_transport(PacketTransport* transport) { transport_ = transport; }

SimTime Network::charge_control(ProcId src, ProcId dst, std::int32_t type,
                                std::int32_t bytes, SimTime now) {
  LOCUS_ASSERT(src >= 0 && src < topology_.num_nodes());
  LOCUS_ASSERT(dst >= 0 && dst < topology_.num_nodes());
  LOCUS_ASSERT(src != dst);
  LOCUS_ASSERT(bytes > 0);
  const std::int64_t L = bytes;
  const std::vector<LinkId> path = topology_.route(src, dst);
  const auto D = static_cast<std::int64_t>(path.size());
  const SimTime latency =
      2 * params_.process_time_ns + (D + L) * params_.hop_time_ns;

  stats_.packets += 1;
  stats_.bytes += static_cast<std::uint64_t>(L);
  stats_.byte_hops += static_cast<std::uint64_t>(L) * path.size();
  stats_.hops += path.size();
  stats_.total_latency_ns += latency;
  stats_.bytes_by_type[type] += static_cast<std::uint64_t>(L);
  // Per-link byte accounting only (no link reservation — control traffic
  // rides its own virtual channel), so sum(link_bytes) tracks byte_hops
  // exactly even with a transport's control plane active.
  for (const LinkId& link : path) {
    cost_->account(topology_.link_index(link), L);
  }

  LOCUS_OBS_HOOK(if (obs_) {
    auto& reg = obs_.obs->counters();
    reg.add(obs_.shard, obs_.packets);
    reg.add(obs_.shard, obs_.bytes, static_cast<std::uint64_t>(L));
    reg.add(obs_.shard, obs_.byte_hops, static_cast<std::uint64_t>(L) * path.size());
    reg.add(obs_.shard, obs_.hops, path.size());
    reg.observe(obs_.shard, obs_.latency_ns, static_cast<std::uint64_t>(latency));
    reg.observe(obs_.shard, obs_.packet_bytes, static_cast<std::uint64_t>(L));
  });
  return now + latency;
}

std::size_t Network::packets_in_flight() const {
  return slots_.size() - free_slots_.size();
}

Network::SlotId Network::alloc_slot(Packet&& packet, std::uint32_t refs) {
  SlotId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<SlotId>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[id];
  slot.packet = std::move(packet);
  slot.refs = refs;
  slot.released = false;
  return id;
}

void Network::unref(SlotId id) {
  Slot& slot = slots_[id];
  LOCUS_ASSERT(slot.refs > 0);
  if (--slot.refs == 0) {
    slot.packet.payload.reset();  // drop the payload now, not at reuse time
    free_slots_.push_back(id);
  }
}

void Network::schedule_delivery(SlotId id, SimTime at) {
  queue_.schedule(at, h_deliver_, id);
}

void Network::on_deliver(void* ctx, SimTime now, std::uint64_t a, std::uint64_t) {
  auto* self = static_cast<Network*>(ctx);
  const auto id = static_cast<SlotId>(a);
  self->deliver_(self->slots_[id].packet, now);
  self->unref(id);
}

void Network::on_deliver_once(void* ctx, SimTime now, std::uint64_t a,
                              std::uint64_t) {
  auto* self = static_cast<Network*>(ctx);
  const auto id = static_cast<SlotId>(a);
  Slot& slot = self->slots_[id];
  if (!slot.released) {
    slot.released = true;
    self->deliver_(slot.packet, now);
  }
  self->unref(id);
}

void Network::on_inject(void* ctx, SimTime /*now*/, std::uint64_t a,
                        std::uint64_t b) {
  auto* self = static_cast<Network*>(ctx);
  const auto id = static_cast<SlotId>(a);
  Packet packet = std::move(self->slots_[id].packet);
  self->unref(id);
  self->inject(std::move(packet), static_cast<SimTime>(b));
}

void Network::schedule_inject(Packet packet, SimTime ready) {
  const SlotId id = alloc_slot(std::move(packet), 1);
  queue_.schedule(ready, h_inject_, id, static_cast<std::uint64_t>(ready));
}

void Network::release_held(ProcId dst, SimTime at) {
  SlotId& slot = held_[static_cast<std::size_t>(dst)];
  if (slot == kNoSlot) return;
  // The held_ entry's reference transfers to the release event.
  queue_.schedule(at, h_deliver_once_, slot);
  slot = kNoSlot;
}

SimTime Network::inject(Packet packet, SimTime ready) {
  LOCUS_ASSERT(packet.src >= 0 && packet.src < topology_.num_nodes());
  LOCUS_ASSERT(packet.dst >= 0 && packet.dst < topology_.num_nodes());
  LOCUS_ASSERT_MSG(packet.src != packet.dst, "self-send must bypass the network");
  LOCUS_ASSERT(packet.bytes > 0);

  // With a reliable transport installed every data packet carries its frame
  // (seqno + piggybacked ack) on the wire; the application-level byte count
  // in packet.bytes — and thus the receiver's unpack cost — is unchanged.
  const std::int64_t L =
      packet.bytes + (transport_ != nullptr ? transport_->frame_bytes() : 0);
  const std::vector<LinkId> path = topology_.route(packet.src, packet.dst);
  LOCUS_ASSERT(!path.empty());

  // The injection interface serializes back-to-back sends from one node.
  SimTime& ni = ni_free_[static_cast<std::size_t>(packet.src)];
  const SimTime inject_at = std::max(ready, ni);

  // Head traversal under the configured per-link discipline: cross() grants
  // the head the link at some start >= its arrival and returns the head's
  // exit (start + HopTime), accumulating contention into `waited` and the
  // per-link byte/busy/stall accounting as it goes.
  SimTime head = inject_at;
  SimTime waited = 0;
  for (const LinkId& link : path) {
    head = cost_->cross(topology_.link_index(link), head, L, waited);
    LOCUS_OBS_HOOK(if (obs_) {
      if (obs::TraceSink* t = obs_.obs->trace(); t != nullptr && t->hop_detail()) {
        t->instant(packet.src, obs_.cat_net, obs_.n_hop,
                   head - params_.hop_time_ns, obs_.a_link,
                   topology_.link_index(link), obs_.a_bytes, L);
      }
    });
  }

  // Tail drains into the destination, then the receive-side copy runs. With
  // no contention this yields exactly the paper's 2·ProcessTime +
  // HopTime·(D + L) once both ProcessTime charges are counted.
  const SimTime tail_arrival = head + L * params_.hop_time_ns;
  const SimTime delivered = tail_arrival + params_.process_time_ns;

  ni = inject_at + L * params_.hop_time_ns;  // injection pipeline busy for L bytes

  stats_.packets += 1;
  stats_.bytes += static_cast<std::uint64_t>(L);
  stats_.byte_hops += static_cast<std::uint64_t>(L) * path.size();
  stats_.hops += path.size();
  stats_.total_latency_ns += delivered - ready;
  stats_.total_link_wait_ns += waited;
  stats_.bytes_by_type[packet.type] += static_cast<std::uint64_t>(L);

  // Fault injection happens at the delivery end; the traffic above was
  // already charged (the bytes crossed the network before the fault).
  FaultInjector::Action action = FaultInjector::Action::kDeliver;
  if (injector_ != nullptr) action = injector_->packet_action(packet.type);
  if (action == FaultInjector::Action::kDuplicate) {
    ++stats_.duplicate_deliveries;
    LOCUS_OBS_HOOK(if (obs_) {
      obs_.obs->counters().add(obs_.shard, obs_.dup_deliveries);
    });
  }

  LOCUS_OBS_HOOK(if (obs_) {
    auto& reg = obs_.obs->counters();
    reg.add(obs_.shard, obs_.packets);
    reg.add(obs_.shard, obs_.bytes, static_cast<std::uint64_t>(L));
    reg.add(obs_.shard, obs_.byte_hops, static_cast<std::uint64_t>(L) * path.size());
    reg.add(obs_.shard, obs_.hops, path.size());
    reg.add(obs_.shard, obs_.link_wait_ns, static_cast<std::uint64_t>(waited));
    reg.observe(obs_.shard, obs_.latency_ns,
                static_cast<std::uint64_t>(delivered - ready));
    reg.observe(obs_.shard, obs_.packet_bytes, static_cast<std::uint64_t>(L));
    if (obs::TraceSink* t = obs_.obs->trace()) {
      // One flow id per injected packet; stats_.packets was just bumped.
      const std::uint64_t flow = stats_.packets;
      t->instant(packet.src, obs_.cat_net, obs_.n_inject, inject_at, obs_.a_type,
                 packet.type, obs_.a_peer, packet.dst);
      t->flow_begin(packet.src, obs_.cat_net, obs_.n_flow, inject_at, flow);
      // With a transport the application is always served at the nominal
      // time (the drop is recovered below the app), so the deliver instant
      // is unconditional.
      if (transport_ != nullptr || action != FaultInjector::Action::kDrop) {
        t->flow_end(packet.dst, obs_.cat_net, obs_.n_flow, delivered, flow);
        t->instant(packet.dst, obs_.cat_net, obs_.n_deliver, delivered,
                   obs_.a_type, packet.type, obs_.a_bytes, L);
      }
    }
  });

  const ProcId dst = packet.dst;
  if (transport_ != nullptr) {
    // Reliable transport: the fault action is the fate of this wire
    // *attempt*, handled entirely by the transport's control plane. The
    // application sees the packet exactly once, at its nominal fault-free
    // time — per-channel FIFO and timeline both preserved by construction.
    transport_->on_wire(packet, delivered, action);
    schedule_delivery(alloc_slot(std::move(packet), 1), delivered);
    return ni;
  }
  switch (action) {
    case FaultInjector::Action::kDrop:
      break;  // no delivery event: the packet is gone
    case FaultInjector::Action::kDuplicate: {
      // Two delivery events share one arena slot (deliver_ takes a const
      // reference, so the second delivery reuses the same packet bytes).
      const SlotId id = alloc_slot(std::move(packet), 2);
      schedule_delivery(id, delivered);
      schedule_delivery(id, delivered + params_.process_time_ns);
      break;
    }
    case FaultInjector::Action::kDelay:
      schedule_delivery(alloc_slot(std::move(packet), 1),
                        delivered + injector_->plan().delay_ns);
      break;
    case FaultInjector::Action::kReorder: {
      // Hold the packet until the next delivery to this destination (it is
      // released just after, swapping their order), or until the fallback
      // timeout when no later packet ever comes. Two references: the held_
      // entry (transferred to the release event) and the fallback event;
      // whichever fires first delivers, the other sees `released`.
      if (held_[static_cast<std::size_t>(dst)] != kNoSlot) {
        release_held(dst, delivered);  // at most one held per dst
      }
      const SlotId id = alloc_slot(std::move(packet), 2);
      held_[static_cast<std::size_t>(dst)] = id;
      queue_.schedule(delivered + injector_->plan().reorder_hold_ns,
                      h_deliver_once_, id);
      break;
    }
    case FaultInjector::Action::kDeliver:
      schedule_delivery(alloc_slot(std::move(packet), 1), delivered);
      break;
  }
  if (action != FaultInjector::Action::kReorder &&
      action != FaultInjector::Action::kDrop &&
      held_[static_cast<std::size_t>(dst)] != kNoSlot) {
    // An actual delivery to this destination releases any held packet right
    // after itself, completing the reorder swap.
    release_held(dst, delivered + 1);
  }
  return ni;
}

}  // namespace locus
