#include "sim/network.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace locus {

Network::Network(const Topology& topology, NetworkParams params, EventQueue& queue,
                 DeliverFn deliver)
    : topology_(topology), params_(params), queue_(queue),
      deliver_(std::move(deliver)),
      link_free_(static_cast<std::size_t>(topology.num_links()), 0),
      ni_free_(static_cast<std::size_t>(topology.num_nodes()), 0),
      held_(static_cast<std::size_t>(topology.num_nodes())) {}

void Network::set_fault_injector(FaultInjector* injector) { injector_ = injector; }

void Network::schedule_delivery(Packet packet, SimTime at) {
  queue_.schedule(at, [this, p = std::move(packet), at]() { deliver_(p, at); });
}

void Network::release_held(ProcId dst, SimTime at) {
  std::optional<HeldPacket>& slot = held_[static_cast<std::size_t>(dst)];
  if (!slot) return;
  HeldPacket held = std::move(*slot);
  slot.reset();
  queue_.schedule(at, [this, h = std::move(held), at]() {
    if (*h.released) return;
    *h.released = true;
    deliver_(h.packet, at);
  });
}

SimTime Network::inject(Packet packet, SimTime ready) {
  LOCUS_ASSERT(packet.src >= 0 && packet.src < topology_.num_nodes());
  LOCUS_ASSERT(packet.dst >= 0 && packet.dst < topology_.num_nodes());
  LOCUS_ASSERT_MSG(packet.src != packet.dst, "self-send must bypass the network");
  LOCUS_ASSERT(packet.bytes > 0);

  const std::int64_t L = packet.bytes;
  const std::vector<LinkId> path = topology_.route(packet.src, packet.dst);
  LOCUS_ASSERT(!path.empty());

  // The injection interface serializes back-to-back sends from one node.
  SimTime& ni = ni_free_[static_cast<std::size_t>(packet.src)];
  const SimTime inject_at = std::max(ready, ni);

  // Head traversal with per-link serialization: the head needs the link
  // free, then advances one HopTime; the link stays busy while all L bytes
  // stream across it.
  SimTime head = inject_at;
  SimTime waited = 0;
  for (const LinkId& link : path) {
    SimTime& free_at = link_free_[static_cast<std::size_t>(topology_.link_index(link))];
    const SimTime start = std::max(head, free_at);
    waited += start - head;
    free_at = start + L * params_.hop_time_ns;
    head = start + params_.hop_time_ns;
  }

  // Tail drains into the destination, then the receive-side copy runs. With
  // no contention this yields exactly the paper's 2·ProcessTime +
  // HopTime·(D + L) once both ProcessTime charges are counted.
  const SimTime tail_arrival = head + L * params_.hop_time_ns;
  const SimTime delivered = tail_arrival + params_.process_time_ns;

  ni = inject_at + L * params_.hop_time_ns;  // injection pipeline busy for L bytes

  stats_.packets += 1;
  stats_.bytes += static_cast<std::uint64_t>(L);
  stats_.byte_hops += static_cast<std::uint64_t>(L) * path.size();
  stats_.hops += path.size();
  stats_.total_latency_ns += delivered - ready;
  stats_.total_link_wait_ns += waited;
  stats_.bytes_by_type[packet.type] += static_cast<std::uint64_t>(L);

  // Fault injection happens at the delivery end; the traffic above was
  // already charged (the bytes crossed the network before the fault).
  FaultInjector::Action action = FaultInjector::Action::kDeliver;
  if (injector_ != nullptr) action = injector_->packet_action(packet.type);

  const ProcId dst = packet.dst;
  switch (action) {
    case FaultInjector::Action::kDrop:
      break;  // no delivery event: the packet is gone
    case FaultInjector::Action::kDuplicate: {
      Packet copy = packet;
      schedule_delivery(std::move(packet), delivered);
      schedule_delivery(std::move(copy), delivered + params_.process_time_ns);
      break;
    }
    case FaultInjector::Action::kDelay:
      schedule_delivery(std::move(packet), delivered + injector_->plan().delay_ns);
      break;
    case FaultInjector::Action::kReorder: {
      // Hold the packet until the next delivery to this destination (it is
      // released just after, swapping their order), or until the fallback
      // timeout when no later packet ever comes.
      auto released = std::make_shared<bool>(false);
      std::optional<HeldPacket>& slot = held_[static_cast<std::size_t>(dst)];
      if (slot) release_held(dst, delivered);  // at most one held per dst
      slot = HeldPacket{packet, released};
      const SimTime fallback = delivered + injector_->plan().reorder_hold_ns;
      queue_.schedule(fallback, [this, p = std::move(packet), released, fallback]() {
        if (*released) return;
        *released = true;
        deliver_(p, fallback);
      });
      break;
    }
    case FaultInjector::Action::kDeliver:
      schedule_delivery(std::move(packet), delivered);
      break;
  }
  if (action != FaultInjector::Action::kReorder &&
      action != FaultInjector::Action::kDrop &&
      held_[static_cast<std::size_t>(dst)]) {
    // An actual delivery to this destination releases any held packet right
    // after itself, completing the reorder swap.
    release_held(dst, delivered + 1);
  }
  return ni;
}

}  // namespace locus
