#include "sim/network.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace locus {

Network::Network(const Topology& topology, NetworkParams params, EventQueue& queue,
                 DeliverFn deliver)
    : topology_(topology), params_(params), queue_(queue),
      deliver_(std::move(deliver)),
      link_free_(static_cast<std::size_t>(topology.num_links()), 0),
      ni_free_(static_cast<std::size_t>(topology.num_nodes()), 0) {}

SimTime Network::inject(Packet packet, SimTime ready) {
  LOCUS_ASSERT(packet.src >= 0 && packet.src < topology_.num_nodes());
  LOCUS_ASSERT(packet.dst >= 0 && packet.dst < topology_.num_nodes());
  LOCUS_ASSERT_MSG(packet.src != packet.dst, "self-send must bypass the network");
  LOCUS_ASSERT(packet.bytes > 0);

  const std::int64_t L = packet.bytes;
  const std::vector<LinkId> path = topology_.route(packet.src, packet.dst);
  LOCUS_ASSERT(!path.empty());

  // The injection interface serializes back-to-back sends from one node.
  SimTime& ni = ni_free_[static_cast<std::size_t>(packet.src)];
  const SimTime inject_at = std::max(ready, ni);

  // Head traversal with per-link serialization: the head needs the link
  // free, then advances one HopTime; the link stays busy while all L bytes
  // stream across it.
  SimTime head = inject_at;
  SimTime waited = 0;
  for (const LinkId& link : path) {
    SimTime& free_at = link_free_[static_cast<std::size_t>(topology_.link_index(link))];
    const SimTime start = std::max(head, free_at);
    waited += start - head;
    free_at = start + L * params_.hop_time_ns;
    head = start + params_.hop_time_ns;
  }

  // Tail drains into the destination, then the receive-side copy runs. With
  // no contention this yields exactly the paper's 2·ProcessTime +
  // HopTime·(D + L) once both ProcessTime charges are counted.
  const SimTime tail_arrival = head + L * params_.hop_time_ns;
  const SimTime delivered = tail_arrival + params_.process_time_ns;

  ni = inject_at + L * params_.hop_time_ns;  // injection pipeline busy for L bytes

  stats_.packets += 1;
  stats_.bytes += static_cast<std::uint64_t>(L);
  stats_.byte_hops += static_cast<std::uint64_t>(L) * path.size();
  stats_.hops += path.size();
  stats_.total_latency_ns += delivered - ready;
  stats_.total_link_wait_ns += waited;
  stats_.bytes_by_type[packet.type] += static_cast<std::uint64_t>(L);

  queue_.schedule(delivered, [this, p = std::move(packet), delivered]() {
    deliver_(p, delivered);
  });
  return ni;
}

}  // namespace locus
