#include "sim/topology.hpp"

#include "support/assert.hpp"

namespace locus {

Topology::Topology(std::vector<std::int32_t> dims, Edges edges)
    : dims_(std::move(dims)), edges_(edges) {
  LOCUS_ASSERT(!dims_.empty());
  num_nodes_ = 1;
  stride_.resize(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    LOCUS_ASSERT(dims_[d] >= 1);
    stride_[d] = num_nodes_;
    num_nodes_ *= dims_[d];
  }
}

Topology Topology::mesh2d(MeshShape shape) {
  // Partition numbers processors row-major: proc = row * cols + col, so the
  // fastest-varying coordinate (dim 0) is the column.
  return Topology({shape.cols, shape.rows}, Edges::kMesh);
}

std::vector<std::int32_t> Topology::coords(std::int32_t node) const {
  LOCUS_ASSERT(node >= 0 && node < num_nodes_);
  std::vector<std::int32_t> c(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    c[d] = (node / stride_[d]) % dims_[d];
  }
  return c;
}

std::int32_t Topology::node_at(const std::vector<std::int32_t>& coords_in) const {
  LOCUS_ASSERT(coords_in.size() == dims_.size());
  std::int32_t node = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    LOCUS_ASSERT(coords_in[d] >= 0 && coords_in[d] < dims_[d]);
    node += coords_in[d] * stride_[d];
  }
  return node;
}

std::vector<LinkId> Topology::route(std::int32_t src, std::int32_t dst) const {
  std::vector<LinkId> links;
  std::vector<std::int32_t> at = coords(src);
  const std::vector<std::int32_t> goal = coords(dst);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    while (at[d] != goal[d]) {
      bool positive;
      if (edges_ == Edges::kMesh) {
        positive = goal[d] > at[d];
      } else {
        // Torus: shorter way around; ties go positive.
        std::int32_t fwd = (goal[d] - at[d] + dims_[d]) % dims_[d];
        positive = fwd <= dims_[d] - fwd;
      }
      LinkId link{node_at(at), static_cast<std::int32_t>(d), positive};
      links.push_back(link);
      if (positive) {
        at[d] = (at[d] + 1) % dims_[d];
      } else {
        at[d] = (at[d] - 1 + dims_[d]) % dims_[d];
      }
      LOCUS_ASSERT_MSG(edges_ == Edges::kTorus ||
                           (at[d] >= 0 && at[d] < dims_[d]),
                       "mesh route stepped off the edge");
    }
  }
  return links;
}

std::int32_t Topology::distance(std::int32_t src, std::int32_t dst) const {
  std::int32_t hops = 0;
  const std::vector<std::int32_t> a = coords(src);
  const std::vector<std::int32_t> b = coords(dst);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    std::int32_t diff = b[d] >= a[d] ? b[d] - a[d] : a[d] - b[d];
    if (edges_ == Edges::kTorus) {
      diff = std::min(diff, dims_[d] - diff);
    }
    hops += diff;
  }
  return hops;
}

std::int32_t Topology::link_index(const LinkId& link) const {
  LOCUS_ASSERT(link.from >= 0 && link.from < num_nodes_);
  LOCUS_ASSERT(link.dim >= 0 && link.dim < num_dims());
  return (link.from * num_dims() + link.dim) * 2 + (link.positive ? 1 : 0);
}

std::int32_t Topology::link_target(const LinkId& link) const {
  std::vector<std::int32_t> c = coords(link.from);
  std::int32_t& v = c[static_cast<std::size_t>(link.dim)];
  const std::int32_t k = dims_[static_cast<std::size_t>(link.dim)];
  if (link.positive) {
    v = (v + 1) % k;
  } else {
    v = (v - 1 + k) % k;
  }
  return node_at(c);
}

}  // namespace locus
