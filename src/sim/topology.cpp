#include "sim/topology.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace locus {

Topology::Topology(std::vector<std::int32_t> dims, Edges edges)
    : dims_(std::move(dims)), edges_(edges) {
  LOCUS_ASSERT(!dims_.empty());
  LOCUS_ASSERT_MSG(edges_ != Edges::kFatTree,
                   "use Topology::fat_tree for tree topologies");
  num_nodes_ = 1;
  stride_.resize(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    LOCUS_ASSERT(dims_[d] >= 1);
    stride_[d] = num_nodes_;
    num_nodes_ *= dims_[d];
  }
  num_links_ = num_nodes_ * num_dims() * 2;
}

Topology Topology::mesh2d(MeshShape shape) {
  // Partition numbers processors row-major: proc = row * cols + col, so the
  // fastest-varying coordinate (dim 0) is the column.
  return Topology({shape.cols, shape.rows}, Edges::kMesh);
}

Topology Topology::fat_tree(std::int32_t leaves, std::int32_t arity) {
  LOCUS_ASSERT(leaves >= 1);
  LOCUS_ASSERT(arity >= 2);
  Topology t;
  t.edges_ = Edges::kFatTree;
  t.arity_ = arity;
  t.num_nodes_ = leaves;
  t.dims_ = {leaves};
  t.stride_ = {1};
  t.levels_ = 0;
  t.padded_leaves_ = 1;
  while (t.padded_leaves_ < leaves) {
    t.padded_leaves_ *= arity;
    ++t.levels_;
  }
  // level_positions_[l] = tree nodes at level l, for l in [0, levels_]
  // (level levels_ is the single root). edge_base_[l] numbers the edges
  // whose child endpoint sits at level l; one edge per non-root node.
  std::int32_t positions = t.padded_leaves_;
  std::int32_t edges_so_far = 0;
  for (std::int32_t level = 0; level <= t.levels_; ++level) {
    t.level_positions_.push_back(positions);
    if (level < t.levels_) {
      t.edge_base_.push_back(edges_so_far);
      edges_so_far += positions;
      positions /= arity;
    }
  }
  t.num_links_ = edges_so_far * 2;
  return t;
}

std::vector<std::int32_t> Topology::coords(std::int32_t node) const {
  LOCUS_ASSERT(node >= 0 && node < num_nodes_);
  std::vector<std::int32_t> c(dims_.size());
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    c[d] = (node / stride_[d]) % dims_[d];
  }
  return c;
}

std::int32_t Topology::node_at(const std::vector<std::int32_t>& coords_in) const {
  LOCUS_ASSERT(coords_in.size() == dims_.size());
  std::int32_t node = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    LOCUS_ASSERT(coords_in[d] >= 0 && coords_in[d] < dims_[d]);
    node += coords_in[d] * stride_[d];
  }
  return node;
}

std::vector<LinkId> Topology::route(std::int32_t src, std::int32_t dst) const {
  std::vector<LinkId> links;
  if (edges_ == Edges::kFatTree) {
    LOCUS_ASSERT(src >= 0 && src < num_nodes_);
    LOCUS_ASSERT(dst >= 0 && dst < num_nodes_);
    // Up/down routing: climb from src to the lowest common ancestor, then
    // descend along dst's ancestor chain. Every switch on the path is
    // visited exactly once.
    std::int32_t height = 0;
    std::int32_t a = src;
    std::int32_t b = dst;
    while (a != b) {
      a /= arity_;
      b /= arity_;
      ++height;
    }
    std::int32_t up = src;
    for (std::int32_t level = 0; level < height; ++level) {
      links.push_back(LinkId{up, level, true});
      up /= arity_;
    }
    std::int32_t down = dst;
    std::vector<LinkId> descent;
    for (std::int32_t level = 0; level < height; ++level) {
      descent.push_back(LinkId{down, level, false});
      down /= arity_;
    }
    links.insert(links.end(), descent.rbegin(), descent.rend());
    return links;
  }
  std::vector<std::int32_t> at = coords(src);
  const std::vector<std::int32_t> goal = coords(dst);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    while (at[d] != goal[d]) {
      bool positive;
      if (edges_ == Edges::kMesh) {
        positive = goal[d] > at[d];
      } else {
        // Torus: shorter way around; ties go positive.
        std::int32_t fwd = (goal[d] - at[d] + dims_[d]) % dims_[d];
        positive = fwd <= dims_[d] - fwd;
      }
      LinkId link{node_at(at), static_cast<std::int32_t>(d), positive};
      links.push_back(link);
      if (positive) {
        at[d] = (at[d] + 1) % dims_[d];
      } else {
        at[d] = (at[d] - 1 + dims_[d]) % dims_[d];
      }
      LOCUS_ASSERT_MSG(edges_ == Edges::kTorus ||
                           (at[d] >= 0 && at[d] < dims_[d]),
                       "mesh route stepped off the edge");
    }
  }
  return links;
}

std::int32_t Topology::distance(std::int32_t src, std::int32_t dst) const {
  if (edges_ == Edges::kFatTree) {
    LOCUS_ASSERT(src >= 0 && src < num_nodes_);
    LOCUS_ASSERT(dst >= 0 && dst < num_nodes_);
    std::int32_t height = 0;
    while (src != dst) {
      src /= arity_;
      dst /= arity_;
      ++height;
    }
    return 2 * height;
  }
  std::int32_t hops = 0;
  const std::vector<std::int32_t> a = coords(src);
  const std::vector<std::int32_t> b = coords(dst);
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    std::int32_t diff = b[d] >= a[d] ? b[d] - a[d] : a[d] - b[d];
    if (edges_ == Edges::kTorus) {
      diff = std::min(diff, dims_[d] - diff);
    }
    hops += diff;
  }
  return hops;
}

std::int32_t Topology::link_index(const LinkId& link) const {
  if (edges_ == Edges::kFatTree) {
    LOCUS_ASSERT(link.dim >= 0 && link.dim < levels_);
    LOCUS_ASSERT(link.from >= 0 &&
                 link.from < level_positions_[static_cast<std::size_t>(link.dim)]);
    const std::int32_t edge =
        edge_base_[static_cast<std::size_t>(link.dim)] + link.from;
    return edge * 2 + (link.positive ? 0 : 1);
  }
  LOCUS_ASSERT(link.from >= 0 && link.from < num_nodes_);
  LOCUS_ASSERT(link.dim >= 0 && link.dim < num_dims());
  return (link.from * num_dims() + link.dim) * 2 + (link.positive ? 1 : 0);
}

std::int32_t Topology::link_target(const LinkId& link) const {
  if (edges_ == Edges::kFatTree) {
    // Up links lead to the parent at level dim + 1; down links lead to the
    // child endpoint itself (at level dim).
    return link.positive ? link.from / arity_ : link.from;
  }
  std::vector<std::int32_t> c = coords(link.from);
  std::int32_t& v = c[static_cast<std::size_t>(link.dim)];
  const std::int32_t k = dims_[static_cast<std::size_t>(link.dim)];
  if (link.positive) {
    v = (v + 1) % k;
  } else {
    v = (v - 1 + k) % k;
  }
  return node_at(c);
}

std::int32_t Topology::link_capacity_scale(std::int32_t link_index_in) const {
  LOCUS_ASSERT(link_index_in >= 0 && link_index_in < num_links_);
  if (edges_ != Edges::kFatTree) return 1;
  // Recover the child level of the edge: edges are numbered level by level,
  // so find the last level whose base is <= this edge id. A level-l edge
  // aggregates the arity^l leaves under its child; cap to keep the scale in
  // sane integer range for enormous trees.
  const std::int32_t edge = link_index_in / 2;
  std::int32_t level = 0;
  while (level + 1 < levels_ &&
         edge_base_[static_cast<std::size_t>(level + 1)] <= edge) {
    ++level;
  }
  std::int32_t scale = 1;
  for (std::int32_t l = 0; l < level; ++l) {
    scale = std::min(scale * arity_, 1 << 20);
  }
  return scale;
}

}  // namespace locus
