// Wormhole-routed interconnect with link contention.
//
// Packet transport follows the paper's CBS model: with no contention and
// one-byte-wide channels, a packet of L bytes travelling D hops takes
//     2·ProcessTime + HopTime·(D + L)
// (ProcessTime at each network interface crossing, one HopTime per hop for
// the head, one HopTime per byte of pipeline drain). Contention is modeled
// at packet granularity: each directed link is busy while a packet's L
// bytes stream across it, and a later packet's head waits for the link to
// free — the dominant effect of wormhole blocking at the low loads these
// workloads generate (flit-level backpressure of upstream links is not
// modeled; DESIGN.md records this simplification).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/packet.hpp"
#include "sim/topology.hpp"

namespace locus {

struct NetworkParams {
  std::int64_t hop_time_ns = 100;       ///< per byte-hop (paper §2.1)
  std::int64_t process_time_ns = 2000;  ///< per node<->network copy
};

struct NetworkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;       ///< on-wire bytes, counted once per packet
  std::uint64_t byte_hops = 0;   ///< bytes x hops travelled
  std::uint64_t hops = 0;
  SimTime total_latency_ns = 0;  ///< injection to delivery, summed
  SimTime total_link_wait_ns = 0;
  std::map<std::int32_t, std::uint64_t> bytes_by_type;
};

/// Transports packets between nodes over the topology, charging simulated
/// time via the shared EventQueue and invoking the delivery callback when a
/// packet is fully received (tail arrived and copied into the node).
class Network {
 public:
  using DeliverFn = std::function<void(const Packet&, SimTime arrival)>;

  Network(const Topology& topology, NetworkParams params, EventQueue& queue,
          DeliverFn deliver);

  /// Injects `packet` from its src at time `ready` (the moment the sending
  /// processor finished the send-side ProcessTime copy). Returns the time
  /// the sender's network interface is free for the next injection.
  SimTime inject(Packet packet, SimTime ready);

  /// Installs a fault injector (not owned; may be null). Drops, duplicates,
  /// delays and reorders are applied at the delivery end: the packet's
  /// on-wire traffic and link occupancy are charged normally — the bytes
  /// crossed the network before the fault struck.
  void set_fault_injector(FaultInjector* injector);

  const NetworkStats& stats() const { return stats_; }
  const NetworkParams& params() const { return params_; }
  const Topology& topology() const { return topology_; }

 private:
  /// A reorder-held packet waiting for the next delivery to its dst (or the
  /// fallback timeout, whichever fires first).
  struct HeldPacket {
    Packet packet;
    std::shared_ptr<bool> released;
  };

  void schedule_delivery(Packet packet, SimTime at);
  void release_held(ProcId dst, SimTime at);

  const Topology& topology_;
  NetworkParams params_;
  EventQueue& queue_;
  DeliverFn deliver_;
  NetworkStats stats_;
  FaultInjector* injector_ = nullptr;
  std::vector<SimTime> link_free_;  ///< per directed link
  std::vector<SimTime> ni_free_;    ///< per node injection interface
  std::vector<std::optional<HeldPacket>> held_;  ///< per dst node
};

}  // namespace locus
