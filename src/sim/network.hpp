// Wormhole-routed interconnect with link contention.
//
// Packet transport follows the paper's CBS model: with no contention and
// one-byte-wide channels, a packet of L bytes travelling D hops takes
//     2·ProcessTime + HopTime·(D + L)
// (ProcessTime at each network interface crossing, one HopTime per hop for
// the head, one HopTime per byte of pipeline drain). Contention is modeled
// at packet granularity: each directed link is busy while a packet's L
// bytes stream across it, and a later packet's head waits for the link to
// free — the dominant effect of wormhole blocking at the low loads these
// workloads generate (flit-level backpressure of upstream links is not
// modeled; DESIGN.md records this simplification). The per-link timing
// discipline itself is pluggable (NetworkParams::cost selects a
// LinkCostModel — fixed, M/D/1 queueing, or credit-based virtual channels;
// sim/link_cost.hpp); the packet plane above it is unchanged.
//
// In-flight packets live in a free-listed arena; events on the queue carry
// only the POD slot id, so scheduling a delivery allocates nothing and the
// event heap stays trivially copyable.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/link_cost.hpp"
#include "sim/packet.hpp"
#include "sim/topology.hpp"

namespace locus {

struct NetworkParams {
  std::int64_t hop_time_ns = 100;       ///< per byte-hop (paper §2.1)
  std::int64_t process_time_ns = 2000;  ///< per node<->network copy
  /// Per-link timing discipline (sim/link_cost.hpp). The default kFixed is
  /// bit-identical to the paper's charge.
  LinkCostParams cost;
};

struct NetworkStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;       ///< on-wire bytes, counted once per packet
  std::uint64_t byte_hops = 0;   ///< bytes x hops travelled
  std::uint64_t hops = 0;
  SimTime total_latency_ns = 0;  ///< injection to delivery, summed
  SimTime total_link_wait_ns = 0;
  /// Fault-injected duplicate wire copies (FaultInjector kDuplicate). The
  /// dup path used to be invisible here — only the injector's own tally saw
  /// it; now the network surfaces it next to the traffic it inflates.
  std::uint64_t duplicate_deliveries = 0;
  std::map<std::int32_t, std::uint64_t> bytes_by_type;
};

/// Reliable-delivery hook installed beneath the network's fault handling
/// (msg/transport.hpp implements it). When present, the network delivers
/// every data packet to the application exactly once at its nominal
/// (fault-free) time and hands the fault action to the transport, which
/// simulates the recovery control plane (seqnos, acks, retransmits, dedup)
/// and charges its traffic back through charge_control().
class PacketTransport {
 public:
  virtual ~PacketTransport() = default;
  /// Extra on-wire framing bytes the transport adds to every data packet
  /// (sequence number + piggybacked cumulative ack).
  virtual std::int32_t frame_bytes() const = 0;
  /// Called once per injected data packet, after traffic is charged and the
  /// fault action drawn. `nominal` is the fault-free delivery time; the
  /// application-plane delivery at `nominal` is scheduled by the network
  /// itself, so the transport only tracks the wire-level fate of attempts.
  virtual void on_wire(const Packet& packet, SimTime nominal,
                       FaultInjector::Action action) = 0;
};

/// Transports packets between nodes over the topology, charging simulated
/// time via the shared EventQueue and invoking the delivery callback when a
/// packet is fully received (tail arrived and copied into the node).
class Network {
 public:
  using DeliverFn = std::function<void(const Packet&, SimTime arrival)>;

  Network(const Topology& topology, NetworkParams params, EventQueue& queue,
          DeliverFn deliver);

  /// Injects `packet` from its src at time `ready` (the moment the sending
  /// processor finished the send-side ProcessTime copy). Returns the time
  /// the sender's network interface is free for the next injection.
  SimTime inject(Packet packet, SimTime ready);

  /// Parks `packet` in the arena and performs the inject() at simulated time
  /// `ready` — used by senders whose local clock runs ahead of global event
  /// time, so link/NI reservations are claimed in global time order.
  void schedule_inject(Packet packet, SimTime ready);

  /// Installs a fault injector (not owned; may be null). Drops, duplicates,
  /// delays and reorders are applied at the delivery end: the packet's
  /// on-wire traffic and link occupancy are charged normally — the bytes
  /// crossed the network before the fault struck.
  void set_fault_injector(FaultInjector* injector);

  /// Installs a reliable transport (not owned; may be null). With a
  /// transport, inject() adds frame_bytes() to every packet's wire length,
  /// schedules the application delivery at the nominal fault-free time
  /// regardless of the fault action, and forwards the action to the
  /// transport's control plane instead of acting on it itself.
  void set_transport(PacketTransport* transport);

  /// Charges a transport control-plane packet (retransmit or ack) to the
  /// traffic statistics without reserving links: control traffic is modeled
  /// as a dedicated virtual channel, so it never perturbs the foreground
  /// timeline (DESIGN.md §10). Returns the uncontended delivery time
  /// `now + 2·ProcessTime + HopTime·(D + L)`.
  SimTime charge_control(ProcId src, ProcId dst, std::int32_t type,
                         std::int32_t bytes, SimTime now);

  const FaultInjector* fault_injector() const { return injector_; }

  /// Attach observability (null to detach): traffic counters mirroring
  /// NetworkStats, latency/size histograms, and — when tracing — an inject
  /// instant on the source track, a deliver instant on the destination
  /// track, and a flow arrow connecting them (plus per-link hop instants
  /// under hop_detail). Deliver instants are stamped at the *nominal*
  /// delivery time computed at injection; fault-injected delays, reorders
  /// and duplicate copies keep their nominal stamp, and dropped packets get
  /// no deliver instant at all.
  void set_obs(obs::Obs* o) { obs_.bind(o); }

  const NetworkStats& stats() const { return stats_; }
  const NetworkParams& params() const { return params_; }
  const Topology& topology() const { return topology_; }
  /// The active link cost model, for per-link byte/stall/utilization
  /// inspection (sim/link_cost.hpp).
  const LinkCostModel& link_cost() const { return *cost_; }
  /// Aggregate per-link usage over the elapsed simulated time [0, now].
  LinkUsageSummary link_usage(SimTime now) const { return cost_->summary(now); }
  /// Arena slots currently occupied by in-flight packets (test hook).
  std::size_t packets_in_flight() const;

 private:
  using SlotId = std::uint32_t;
  static constexpr SlotId kNoSlot = static_cast<SlotId>(-1);

  /// One in-flight packet. `refs` counts the scheduled events (and, for a
  /// reorder hold, the held_ entry) that still reference the slot; it is
  /// recycled onto the free list when the count reaches zero. `released`
  /// arbitrates the two racing release paths of a reorder hold.
  struct Slot {
    Packet packet;
    std::uint32_t refs = 0;
    bool released = false;
  };

  SlotId alloc_slot(Packet&& packet, std::uint32_t refs);
  void unref(SlotId id);
  void schedule_delivery(SlotId id, SimTime at);
  void release_held(ProcId dst, SimTime at);

  static void on_deliver(void* ctx, SimTime now, std::uint64_t a, std::uint64_t b);
  static void on_deliver_once(void* ctx, SimTime now, std::uint64_t a,
                              std::uint64_t b);
  static void on_inject(void* ctx, SimTime now, std::uint64_t a, std::uint64_t b);

  const Topology& topology_;
  NetworkParams params_;
  EventQueue& queue_;
  DeliverFn deliver_;
  NetworkStats stats_;
  FaultInjector* injector_ = nullptr;
  PacketTransport* transport_ = nullptr;
  obs::NetworkObs obs_;
  std::unique_ptr<LinkCostModel> cost_;  ///< per-link timing + accounting
  std::vector<SimTime> ni_free_;    ///< per node injection interface
  std::vector<SlotId> held_;        ///< per dst node: reorder-held packet
  std::vector<Slot> slots_;
  std::vector<SlotId> free_slots_;
  EventQueue::HandlerId h_deliver_;
  EventQueue::HandlerId h_deliver_once_;
  EventQueue::HandlerId h_inject_;
};

}  // namespace locus
