// Per-worker payload arena with deferred cross-thread reclamation.
//
// Every `make_payload` in the repo used to be a bare `new` — fine serially,
// but once SimPool fans independent simulations out over worker threads,
// all of them hammer the one process allocator, and the payload churn of an
// MP run (a RequestPayload or RegionUpdatePayload per transaction) turns
// into cross-thread coherence traffic on the allocator's shared state. The
// arena removes that coupling:
//
//   * every thread owns a private PayloadArena (pool workers, the caller,
//     and the natively threaded routers alike — the arena is installed
//     thread-locally, lazily on first allocation);
//   * allocation and same-thread free touch only the owner's free lists —
//     no locks, no atomics, no shared cache lines;
//   * a block freed on a *different* thread is never pushed onto the
//     owner's free lists directly (that would race); it goes onto the
//     owner's mutex-guarded reclamation list, which the owner drains the
//     next time it allocates (or via reclaim()). This is the only path by
//     which a block allocated on worker A ever becomes reusable anywhere,
//     and tests/test_sim_pool.cpp pins that invariant down.
//
// Arenas are checked out of a process-wide registry and returned at thread
// exit, so a fresh pool run re-acquires the previous run's warmed slabs
// (free lists intact, pages already faulted in) instead of growing without
// bound. Slabs are first-touched by the acquiring thread when carved, so
// under the first-touch NUMA policy a worker's blocks live in its local
// memory module. Arena objects themselves are immortal: a block may outlive
// the thread that allocated it (results handed back to the caller), and its
// header must still find a live owner to free into.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace locus {

/// Allocation/free/reclamation tallies of one arena. Exact while the arena
/// is quiescent (its owning thread joined or idle); the balance invariant
/// `allocs == local_frees + remote_frees + live blocks` always holds then.
struct ArenaStats {
  std::uint64_t allocs = 0;        ///< class blocks handed out
  std::uint64_t local_frees = 0;   ///< freed on the owning thread
  std::uint64_t remote_frees = 0;  ///< freed elsewhere: reclamation list
  std::uint64_t reclaimed = 0;     ///< drained off the reclamation list
  std::uint64_t slabs = 0;         ///< 16 KiB slabs carved
  std::uint64_t oversize_allocs = 0;  ///< passthrough (> max class size)
  std::uint64_t oversize_frees = 0;

  std::uint64_t live() const {
    return allocs - local_frees - remote_frees;
  }
};

class PayloadArena {
 public:
  /// Block sizes (header included). Payloads are small polymorphic structs;
  /// anything larger passes through to the global allocator.
  static constexpr std::array<std::size_t, 5> kClassSizes = {64, 128, 256,
                                                             512, 1024};

  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  /// Allocates `bytes` from the calling thread's arena.
  static void* allocate(std::size_t bytes);
  /// Returns `p` to the arena that allocated it: onto a free list when the
  /// caller is the owner, onto the owner's reclamation list otherwise.
  static void deallocate(void* p);

  /// The calling thread's arena, acquired from the registry on first use
  /// and returned automatically at thread exit.
  static PayloadArena& current();
  /// Owning arena of a live block, or nullptr for oversize passthrough
  /// blocks (test/profiling hook).
  static PayloadArena* owner_of(const void* p);

  /// Checks an idle arena out of the process-wide registry (LIFO, so a new
  /// pool run reuses the warmest arenas first), creating one when none is
  /// idle. Paired with release(); Scope and the thread-local path manage
  /// this automatically.
  static PayloadArena* acquire();
  static void release(PayloadArena* arena);
  /// Arenas ever created (== peak concurrent allocating threads).
  static std::size_t registry_size();

  /// RAII override of the calling thread's arena (profiling/tests; worker
  /// threads normally just use the lazy thread-local path).
  class Scope {
   public:
    explicit Scope(PayloadArena* arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PayloadArena* prev_;
    bool prev_owned_;
  };

  /// Drains the reclamation list onto the free lists now (the owner also
  /// does this lazily when a free list runs dry). Returns blocks drained.
  /// Must be called by the thread currently owning the arena.
  std::uint64_t reclaim();

  ArenaStats stats() const;
  int id() const { return id_; }

 private:
  struct FreeNode;

  explicit PayloadArena(int id) : id_(id) {}

  void* allocate_class(std::size_t cls);
  void carve_slab(std::size_t cls);
  std::uint64_t drain_remote_locked();

  const int id_;
  std::array<FreeNode*, kClassSizes.size()> free_{};
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  ArenaStats stats_;  ///< single-writer fields (owner thread only)

  mutable std::mutex remote_mutex_;
  FreeNode* remote_head_ = nullptr;      ///< guarded by remote_mutex_
  std::uint64_t remote_frees_ = 0;       ///< guarded by remote_mutex_
  std::uint64_t oversize_frees_ = 0;     ///< guarded by remote_mutex_
};

}  // namespace locus
