// Network packets.
//
// The simulator charges time and traffic from `bytes` only; `payload`
// carries the application data (update contents) by PayloadRef so the
// simulation does not pay host-memory copies per hop. Applications define
// their own `type` space.
//
// PayloadRef is an intrusive, non-atomic refcounted pointer: the count
// lives inside the payload object itself, so a payload costs exactly one
// allocation (no shared_ptr control block) and handing it along the
// send -> arena slot -> inbox -> deliver chain is a plain integer bump with
// no atomic traffic. Payloads belong to one Machine's event loop and are
// never shared across concurrently running simulations (SimPool jobs each
// own their Machine), which is what makes the non-atomic count safe — the
// pool-backed suites run under TSan to enforce it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "geom/partition.hpp"
#include "support/assert.hpp"

namespace locus {

/// Base class for application payloads attached to packets. Carries the
/// intrusive reference count PayloadRef manipulates. Heap storage comes
/// from the calling thread's PayloadArena (sim/arena.hpp): allocation and
/// same-thread free are lock-free per-worker free-list operations, and a
/// payload released on another thread goes through the owning arena's
/// deferred reclamation list instead of a shared allocator.
struct PacketPayload {
  virtual ~PacketPayload() = default;

  static void* operator new(std::size_t bytes);
  static void operator delete(void* p) noexcept;
  static void operator delete(void* p, std::size_t bytes) noexcept;

  mutable std::uint32_t payload_refs_ = 0;
};

/// Intrusive pointer to a const payload. Copying bumps the embedded count;
/// the payload is deleted when the last reference drops. Single-threaded by
/// design (see file comment).
class PayloadRef {
 public:
  PayloadRef() = default;
  PayloadRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  PayloadRef(const PayloadRef& other) : ptr_(other.ptr_) { retain(); }
  PayloadRef(PayloadRef&& other) noexcept : ptr_(other.ptr_) {
    other.ptr_ = nullptr;
  }
  PayloadRef& operator=(const PayloadRef& other) {
    if (this != &other) {
      release();
      ptr_ = other.ptr_;
      retain();
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    if (this != &other) {
      release();
      ptr_ = other.ptr_;
      other.ptr_ = nullptr;
    }
    return *this;
  }
  ~PayloadRef() { release(); }

  const PacketPayload* get() const { return ptr_; }
  const PacketPayload& operator*() const { return *ptr_; }
  const PacketPayload* operator->() const { return ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }

  void reset() {
    release();
    ptr_ = nullptr;
  }

  /// Adopts a freshly allocated payload (count starts at 1).
  static PayloadRef adopt(const PacketPayload* p) { return PayloadRef(p); }

 private:
  explicit PayloadRef(const PacketPayload* p) : ptr_(p) { retain(); }

  void retain() {
    if (ptr_ != nullptr) ++ptr_->payload_refs_;
  }
  void release() {
    if (ptr_ != nullptr && --ptr_->payload_refs_ == 0) delete ptr_;
  }

  const PacketPayload* ptr_ = nullptr;
};

/// Allocates a payload of concrete type T and returns the owning reference:
/// `make_payload<RegionUpdatePayload>()` replaces
/// `std::make_shared<const RegionUpdatePayload>()`. Returns a mutable
/// borrow alongside would defeat the const contract, so fill the object
/// via the returned `T*` before first send:
///   auto [ref, p] = make_payload<RequestPayload>();
///   p->wires = ...;
template <typename T, typename... Args>
std::pair<PayloadRef, T*> make_payload(Args&&... args) {
  T* raw = new T(std::forward<Args>(args)...);
  return {PayloadRef::adopt(raw), raw};
}

struct Packet {
  ProcId src = -1;
  ProcId dst = -1;
  std::int32_t type = 0;
  std::int32_t bytes = 0;  ///< total on-wire size including header
  PayloadRef payload;

  template <typename T>
  const T& payload_as() const {
    const T* p = dynamic_cast<const T*>(payload.get());
    return *p;
  }
};

}  // namespace locus
