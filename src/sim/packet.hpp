// Network packets.
//
// The simulator charges time and traffic from `bytes` only; `payload`
// carries the application data (update contents) by shared pointer so the
// simulation does not pay host-memory copies per hop. Applications define
// their own `type` space.
#pragma once

#include <cstdint>
#include <memory>

#include "geom/partition.hpp"

namespace locus {

/// Base class for application payloads attached to packets.
struct PacketPayload {
  virtual ~PacketPayload() = default;
};

struct Packet {
  ProcId src = -1;
  ProcId dst = -1;
  std::int32_t type = 0;
  std::int32_t bytes = 0;  ///< total on-wire size including header
  std::shared_ptr<const PacketPayload> payload;

  template <typename T>
  const T& payload_as() const {
    const T* p = dynamic_cast<const T*>(payload.get());
    return *p;
  }
};

}  // namespace locus
