// The simulated multicomputer: processors + network + execution semantics.
//
// Each Node is a sequential processor program executed as a state machine:
//   * on_step() performs one unit of work (for the router node: route one
//     wire plus its update sends) and charges time via NodeApi::advance();
//   * packets are delivered only when the node is between steps — the
//     paper's "processors only check for newly received messages between
//     routing wires" semantics (§4.2);
//   * a node may declare itself blocked() awaiting a specific packet
//     (blocking receiver-initiated updates); it then sleeps until the next
//     arrival re-checks the condition.
// The engine is a sequential DES, so runs are deterministic.
//
// Hot-path layout: each node's pending arrivals live in a sorted ring
// buffer rather than a per-node priority queue. Deliveries are invoked in
// global (time, sequence) event order, so per-node arrivals are already
// sorted when they are pushed — the ring just appends at the tail and pops
// at the head, no heap discipline needed. A sorted-insert fallback keeps
// the (time, seq) order exact even if an out-of-order push ever appears.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/packet.hpp"
#include "sim/topology.hpp"

namespace locus {

class Machine;

/// Per-node handle through which node programs observe and spend time.
class NodeApi {
 public:
  SimTime now() const;
  ProcId self() const { return self_; }
  std::int32_t num_procs() const;

  /// Consumes `ns` of local compute time.
  void advance(SimTime ns);

  /// Sends a packet (src is filled in); charges the send-side ProcessTime
  /// plus per-byte packing cost supplied by the caller beforehand via
  /// advance(). Returns immediately (asynchronous send).
  void send(ProcId dst, std::int32_t type, std::int32_t bytes,
            PayloadRef payload);

 private:
  friend class Machine;
  NodeApi(Machine& machine, ProcId self) : machine_(&machine), self_(self) {}
  Machine* machine_;
  ProcId self_;
};

/// A processor program.
class Node {
 public:
  virtual ~Node() = default;

  /// Called once at time zero, before any step.
  virtual void on_start(NodeApi& api) { static_cast<void>(api); }

  /// Handles one delivered packet (charge reception cost via api.advance()).
  virtual void on_packet(NodeApi& api, const Packet& packet) = 0;

  /// Performs one unit of work. Returns false when no work remains (the
  /// node stays alive to serve future packets).
  virtual bool on_step(NodeApi& api) = 0;

  /// True while the node must not step (waiting for a response packet).
  virtual bool blocked() const { return false; }
};

struct MachineStats {
  /// Time each node finished its last own work step.
  std::vector<SimTime> finish_time;
  /// max over nodes of finish_time — the run's execution time.
  SimTime completion_time = 0;
  /// Time the last event (including trailing deliveries) executed.
  SimTime drain_time = 0;
  std::uint64_t events = 0;
};

class Machine {
 public:
  /// Takes its own copy of the topology: Machine and its Network outlive
  /// any caller-side temporary.
  Machine(Topology topology, NetworkParams net_params);

  /// Installs the program for one node (must cover every node before run()).
  void set_node(ProcId proc, std::unique_ptr<Node> node);

  /// Arms deterministic fault injection for this run (call before run()).
  /// Packet faults hit the network's delivery end; node stalls are applied
  /// whenever a node is scheduled. A all-zero-rate plan is behaviourally
  /// identical to never calling this.
  void set_fault_plan(const FaultPlan& plan);

  /// Fault decisions taken so far (zeroes when no plan was armed).
  FaultStats fault_stats() const;

  /// Runs to completion (event queue empty). Returns stats; network traffic
  /// is available via network().stats().
  MachineStats run();

  /// Attach observability (null to detach) to the whole machine: the event
  /// queue, the network, and per-node compute spans (one 'X' span per
  /// scheduling round that advanced the node's clock, on a track named
  /// "proc N") plus `node.steps` / `node.packets_delivered` /
  /// `node.busy_ns` counters. Call before run().
  void set_obs(obs::Obs* o);

  const Network& network() const { return *network_; }
  /// Mutable network access for installing run-level hooks (a reliable
  /// transport) before run().
  Network& network_mut() { return *network_; }
  /// The armed injector (null when no plan) — shared with hooks that draw
  /// their own fault decisions (the transport control plane).
  FaultInjector* fault_injector() { return injector_.get(); }
  /// The installed program for `proc` (for post-run inspection).
  Node* node(ProcId proc) { return state(proc).program.get(); }
  const Topology& topology() const { return topology_; }
  EventQueue& queue() { return queue_; }

 private:
  friend class NodeApi;

  struct Arrival {
    SimTime time;
    std::uint64_t seq;
    Packet packet;
  };

  /// FIFO ring of arrivals kept sorted by (time, seq). Pushes append in
  /// practice (deliveries happen in global event order); the rotate-back
  /// fallback preserves exact order for any stray out-of-order push.
  class ArrivalRing {
   public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }
    const Arrival& front() const { return slots_[head_]; }

    void pop_front() {
      slots_[head_].packet.payload.reset();  // drop the payload now
      head_ = next(head_);
      --count_;
    }

    void push(Arrival&& arrival) {
      if (count_ == slots_.size()) grow();
      std::size_t at = index(count_);
      slots_[at] = std::move(arrival);
      ++count_;
      // Restore (time, seq) order in the (never expected) case of an
      // out-of-order arrival: bubble the new entry toward the head.
      while (at != head_) {
        const std::size_t prev = at == 0 ? slots_.size() - 1 : at - 1;
        if (!later(slots_[prev], slots_[at])) break;
        std::swap(slots_[prev], slots_[at]);
        at = prev;
      }
    }

   private:
    static bool later(const Arrival& a, const Arrival& b) {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
    std::size_t next(std::size_t i) const {
      return i + 1 == slots_.size() ? 0 : i + 1;
    }
    std::size_t index(std::size_t offset) const {
      const std::size_t i = head_ + offset;
      return i >= slots_.size() ? i - slots_.size() : i;
    }
    void grow();

    std::vector<Arrival> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
  };

  struct NodeState {
    std::unique_ptr<Node> program;
    SimTime clock = 0;           ///< local time: busy until here
    bool resume_pending = false;
    SimTime resume_at = 0;       ///< time of the pending resume event
    bool work_done = false;      ///< on_step returned false at least once
    SimTime finish_time = 0;
    ArrivalRing inbox;
  };

  void deliver(const Packet& packet, SimTime arrival);
  void schedule_resume(ProcId proc, SimTime at);
  static void on_resume_event(void* ctx, SimTime now, std::uint64_t a,
                              std::uint64_t b);
  void resume(ProcId proc);

  NodeState& state(ProcId proc) { return nodes_[static_cast<std::size_t>(proc)]; }

  Topology topology_;
  EventQueue queue_;
  EventQueue::HandlerId h_resume_ = 0;
  std::unique_ptr<Network> network_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<NodeState> nodes_;
  std::uint64_t arrival_seq_ = 0;
  ProcId running_ = -1;  ///< node currently executing (api target)

  obs::Obs* obs_ = nullptr;
  obs::MetricId obs_steps_ = 0;
  obs::MetricId obs_delivered_ = 0;
  obs::MetricId obs_busy_ns_ = 0;
  obs::TraceSink::StrId obs_cat_node_ = 0;
  obs::TraceSink::StrId obs_n_compute_ = 0;
};

}  // namespace locus
