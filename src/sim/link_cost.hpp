// Pluggable per-link cost models for the wormhole interconnect.
//
// The paper prices every transfer with a fixed per-byte-hop charge on an
// otherwise contention-free mesh (§2.1); every MP-vs-SHM conclusion is
// therefore conditioned on that interconnect. This seam lets the network
// swap the per-link timing discipline without touching the packet plane:
//
//   kFixed  the paper's model, bit-identical to the pre-seam network: the
//           head waits for the link to free, then advances one HopTime; the
//           link stays busy while all L bytes stream across it.
//   kMd1    bandwidth-limited queueing: each link is a deterministic-service
//           server fed (approximately) Poisson arrivals, so a head entering
//           a link at utilization rho is additionally delayed by the M/D/1
//           mean waiting time  Wq = S·rho / (2·(1-rho))  (S = the packet's
//           service time on that link). Utilization is tracked per link as
//           cumulative busy time over elapsed simulated time, clamped at
//           rho_max so delay stays finite and monotone as rho -> 1 (the
//           zsim MD1MemRouter discipline).
//   kVc     credit-based virtual channels: each link's downstream buffer
//           holds vc_buffer_bytes of flits and drains at link rate; a head
//           whose L bytes do not fit in the remaining credits stalls until
//           the buffer drains enough (bounded per-link buffering with
//           backpressure, counted per link as stalls).
//
// All three models keep the per-link accounting the contention experiments
// tabulate: bytes crossed, busy time (-> utilization), and stall events.
// Fat-tree links can be "fat": Topology::link_capacity_scale() multiplies a
// link's drain rate, so a level-l tree link serves bytes scale× faster than
// a mesh hop (the md1/vc service time shrinks; kFixed ignores capacity to
// stay bit-identical to the paper's charge).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/topology.hpp"

namespace locus {

enum class LinkCostModelKind : std::int8_t { kFixed, kMd1, kVc };

const char* link_cost_model_name(LinkCostModelKind kind);

struct LinkCostParams {
  LinkCostModelKind kind = LinkCostModelKind::kFixed;
  /// kMd1: utilization clamp. The closed form diverges at rho = 1; clamping
  /// keeps the delay finite, monotone, and overflow-free in saturation.
  double md1_rho_max = 0.95;
  /// kVc: per-link downstream buffer (credits), in bytes.
  std::int64_t vc_buffer_bytes = 4096;
};

/// M/D/1 mean queueing delay for a packet whose deterministic service time
/// is `service_ns`, entering a server at utilization `rho`:
///     Wq = service_ns · rho / (2 · (1 - rho)),   rho clamped to
///     [0, rho_max].
/// Pure and total: never overflows, and is monotone non-decreasing in rho
/// (the golden tests pin the closed form and the saturation clamp).
SimTime md1_wait_ns(SimTime service_ns, double rho, double rho_max = 0.95);

/// End-of-run aggregate of the per-link counters (utilization needs a
/// "now"; the harness passes the machine's drain time).
struct LinkUsageSummary {
  double max_utilization = 0.0;   ///< busiest link's busy/elapsed
  double mean_utilization = 0.0;  ///< over links that carried any traffic
  std::int32_t links_used = 0;    ///< links that carried at least one byte
  std::uint64_t stalls = 0;       ///< contention/backpressure stall events
  SimTime stall_ns = 0;           ///< simulated time heads spent stalled
};

class LinkCostModel {
 public:
  static std::unique_ptr<LinkCostModel> make(const Topology& topology,
                                             const LinkCostParams& params,
                                             std::int64_t hop_time_ns);
  virtual ~LinkCostModel() = default;

  LinkCostModelKind kind() const { return kind_; }

  /// Crosses one link: the head arrives at the link's entrance at `head_in`
  /// and the packet's `bytes` follow. Returns the head's exit time, which is
  /// always `start + hop_time` where `start >= head_in` is when the head was
  /// granted the link; adds `start - head_in` to `waited`. Also charges the
  /// per-link byte/busy/stall accounting.
  virtual SimTime cross(std::int32_t link, SimTime head_in, std::int64_t bytes,
                        SimTime& waited) = 0;

  /// Counts `bytes` against `link` without reserving it — the control-plane
  /// charge (Network::charge_control), which is modeled on a dedicated
  /// virtual channel and never perturbs the foreground timeline.
  void account(std::int32_t link, std::int64_t bytes) {
    bytes_[static_cast<std::size_t>(link)] += static_cast<std::uint64_t>(bytes);
  }

  /// Bytes that crossed each directed link (data + control). Summed over
  /// links this equals NetworkStats::byte_hops exactly — the conservation
  /// law the network test battery asserts for every model × topology.
  const std::vector<std::uint64_t>& link_bytes() const { return bytes_; }
  /// Stall events per directed link (head waits under kFixed/kMd1 service
  /// serialization, credit exhaustion under kVc).
  const std::vector<std::uint64_t>& link_stalls() const { return stalls_; }

  /// Busy time of `link` over the elapsed simulated time [0, now].
  double utilization(std::int32_t link, SimTime now) const;
  LinkUsageSummary summary(SimTime now) const;

 protected:
  LinkCostModel(LinkCostModelKind kind, std::size_t num_links,
                std::int64_t hop_time_ns)
      : kind_(kind), hop_time_ns_(hop_time_ns), free_(num_links, 0),
        bytes_(num_links, 0), busy_ns_(num_links, 0), stalls_(num_links, 0),
        stall_ns_(num_links, 0) {}

  void charge(std::size_t link, std::int64_t bytes, SimTime busy) {
    bytes_[link] += static_cast<std::uint64_t>(bytes);
    busy_ns_[link] += busy;
  }
  void stall(std::size_t link, SimTime ns) {
    if (ns <= 0) return;
    ++stalls_[link];
    stall_ns_[link] += ns;
  }

  LinkCostModelKind kind_;
  std::int64_t hop_time_ns_;
  std::vector<SimTime> free_;  ///< per-link: busy streaming until here
  std::vector<std::uint64_t> bytes_;
  std::vector<SimTime> busy_ns_;
  std::vector<std::uint64_t> stalls_;
  std::vector<SimTime> stall_ns_;
};

}  // namespace locus
