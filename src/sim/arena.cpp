#include "sim/arena.hpp"

#include <new>

#include "sim/packet.hpp"
#include "support/assert.hpp"
#include "support/mem.hpp"

namespace locus {

namespace {

/// Precedes every arena block. For class blocks `owner` is the allocating
/// arena and `cls` indexes kClassSizes; oversize passthrough blocks carry
/// `owner == nullptr` and go back to the global allocator directly.
struct BlockHeader {
  PayloadArena* owner;
  std::uint32_t cls;
  std::uint32_t pad;
};
static_assert(sizeof(BlockHeader) == 16, "user area must stay 16-aligned");

constexpr std::size_t kSlabBytes = 16 * 1024;
constexpr std::uint32_t kOversize = 0xffffffffu;

BlockHeader* header_of(const void* user) {
  return reinterpret_cast<BlockHeader*>(
      const_cast<char*>(static_cast<const char*>(user)) - sizeof(BlockHeader));
}

/// The process-wide arena registry. Immortal (leaked on purpose): blocks
/// and thread-exit destructors may run after static teardown has begun,
/// and both must still find live arenas.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<PayloadArena>> arenas;  ///< all ever created
  std::vector<PayloadArena*> idle;                    ///< LIFO: warmest first
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Calling thread's arena. `owned` marks the lazy acquisition path, which
/// returns the arena to the registry when the thread exits; a Scope
/// installs a borrowed arena and restores the previous one.
struct TlsSlot {
  PayloadArena* arena = nullptr;
  bool owned = false;

  ~TlsSlot() {
    if (owned && arena != nullptr) PayloadArena::release(arena);
  }
};

thread_local TlsSlot t_slot;

}  // namespace

struct PayloadArena::FreeNode {
  FreeNode* next;
};

PayloadArena& PayloadArena::current() {
  if (t_slot.arena == nullptr) {
    t_slot.arena = acquire();
    t_slot.owned = true;
  }
  return *t_slot.arena;
}

PayloadArena* PayloadArena::acquire() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!reg.idle.empty()) {
    PayloadArena* arena = reg.idle.back();
    reg.idle.pop_back();
    return arena;
  }
  reg.arenas.push_back(std::unique_ptr<PayloadArena>(
      new PayloadArena(static_cast<int>(reg.arenas.size()))));
  return reg.arenas.back().get();
}

void PayloadArena::release(PayloadArena* arena) {
  if (arena == nullptr) return;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.idle.push_back(arena);
}

std::size_t PayloadArena::registry_size() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.arenas.size();
}

PayloadArena::Scope::Scope(PayloadArena* arena)
    : prev_(t_slot.arena), prev_owned_(t_slot.owned) {
  LOCUS_ASSERT(arena != nullptr);
  t_slot.arena = arena;
  t_slot.owned = false;
}

PayloadArena::Scope::~Scope() {
  t_slot.arena = prev_;
  t_slot.owned = prev_owned_;
}

void* PayloadArena::allocate(std::size_t bytes) {
  PayloadArena& arena = current();
  const std::size_t needed = bytes + sizeof(BlockHeader);
  for (std::size_t cls = 0; cls < kClassSizes.size(); ++cls) {
    if (needed <= kClassSizes[cls]) return arena.allocate_class(cls);
  }
  // Oversize passthrough: the global allocator owns the storage; the
  // header's null owner routes deallocate() straight back to it.
  auto* header = static_cast<BlockHeader*>(::operator new(needed));
  header->owner = nullptr;
  header->cls = kOversize;
  ++arena.stats_.oversize_allocs;
  return header + 1;
}

void* PayloadArena::allocate_class(std::size_t cls) {
  if (free_[cls] == nullptr) {
    // Local list dry: drain the reclamation list (blocks freed on other
    // threads come home here and nowhere else), then carve a fresh slab.
    std::uint64_t drained = 0;
    {
      std::lock_guard<std::mutex> lock(remote_mutex_);
      drained = drain_remote_locked();
    }
    if (free_[cls] == nullptr) carve_slab(cls);
    (void)drained;
  }
  FreeNode* node = free_[cls];
  free_[cls] = node->next;
  ++stats_.allocs;
  BlockHeader* header = header_of(node);
  LOCUS_ASSERT(header->owner == this && header->cls == cls);
  return node;
}

void PayloadArena::carve_slab(std::size_t cls) {
  slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
  std::byte* slab = slabs_.back().get();
  // First touch on the owning thread: under the first-touch NUMA policy
  // the slab's pages land in this worker's local memory module, and the
  // page faults are paid here rather than inside a timed simulation.
  mem::first_touch(slab, kSlabBytes);
  const std::size_t block = kClassSizes[cls];
  for (std::size_t off = 0; off + block <= kSlabBytes; off += block) {
    auto* header = reinterpret_cast<BlockHeader*>(slab + off);
    header->owner = this;
    header->cls = static_cast<std::uint32_t>(cls);
    auto* node = reinterpret_cast<FreeNode*>(header + 1);
    node->next = free_[cls];
    free_[cls] = node;
  }
  ++stats_.slabs;
}

std::uint64_t PayloadArena::drain_remote_locked() {
  std::uint64_t drained = 0;
  FreeNode* node = remote_head_;
  remote_head_ = nullptr;
  while (node != nullptr) {
    FreeNode* next = node->next;
    const BlockHeader* header = header_of(node);
    LOCUS_ASSERT(header->owner == this);
    node->next = free_[header->cls];
    free_[header->cls] = node;
    ++drained;
    node = next;
  }
  stats_.reclaimed += drained;
  return drained;
}

std::uint64_t PayloadArena::reclaim() {
  std::lock_guard<std::mutex> lock(remote_mutex_);
  return drain_remote_locked();
}

void PayloadArena::deallocate(void* p) {
  if (p == nullptr) return;
  BlockHeader* header = header_of(p);
  PayloadArena* owner = header->owner;
  if (owner == nullptr) {
    LOCUS_ASSERT(header->cls == kOversize);
    PayloadArena& arena = current();
    {
      std::lock_guard<std::mutex> lock(arena.remote_mutex_);
      ++arena.oversize_frees_;
    }
    ::operator delete(header);
    return;
  }
  LOCUS_ASSERT(header->cls < kClassSizes.size());
  auto* node = static_cast<FreeNode*>(p);
  if (owner == t_slot.arena) {
    node->next = owner->free_[header->cls];
    owner->free_[header->cls] = node;
    ++owner->stats_.local_frees;
    return;
  }
  // Cross-thread free: defer to the owner's reclamation list. The block
  // only re-enters circulation when the owner drains it — never directly
  // into another worker's lists.
  std::lock_guard<std::mutex> lock(owner->remote_mutex_);
  node->next = owner->remote_head_;
  owner->remote_head_ = node;
  ++owner->remote_frees_;
}

PayloadArena* PayloadArena::owner_of(const void* p) {
  return p == nullptr ? nullptr : header_of(p)->owner;
}

ArenaStats PayloadArena::stats() const {
  ArenaStats out = stats_;
  std::lock_guard<std::mutex> lock(remote_mutex_);
  out.remote_frees = remote_frees_;
  out.oversize_frees = oversize_frees_;
  return out;
}

// PacketPayload's class-level allocation functions (declared in
// sim/packet.hpp) route every payload in the repo through the arena.
void* PacketPayload::operator new(std::size_t bytes) {
  return PayloadArena::allocate(bytes);
}

void PacketPayload::operator delete(void* p) noexcept {
  PayloadArena::deallocate(p);
}

void PacketPayload::operator delete(void* p, std::size_t) noexcept {
  PayloadArena::deallocate(p);
}

}  // namespace locus
