// Deterministic discrete-event core.
//
// Events execute in (time, insertion sequence) order, so simultaneous events
// run FIFO and every simulation is exactly reproducible. Times are
// nanoseconds of simulated machine time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/assert.hpp"

namespace locus {

using SimTime = std::int64_t;  // nanoseconds

class EventQueue {
 public:
  /// Schedules `fn` at absolute simulated time `time` (must be >= now()).
  void schedule(SimTime time, std::function<void()> fn);

  /// Runs events until the queue is empty. Returns the time of the last
  /// event executed (0 if none ran).
  SimTime run();

  /// Runs until empty or `limit` events, whichever first; returns the number
  /// executed (a safety valve against accidental non-termination in tests).
  std::size_t run_bounded(std::size_t limit);

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace locus
