// Deterministic discrete-event core.
//
// Events execute in (time, insertion sequence) order, so simultaneous events
// run FIFO and every simulation is exactly reproducible. Times are
// nanoseconds of simulated machine time.
//
// The heap holds only POD events: a handler id registered once per consumer
// plus two 64-bit operands (typically a target id and a packet-arena slot).
// Dispatch is one indexed load and an indirect call — no per-event heap
// allocation and no std::function in the hot loop. A legacy closure overload
// remains for cold paths (tests, one-shot setup): the closure is parked in a
// free-listed slot vector and trampolined through reserved handler 0.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <type_traits>
#include <vector>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace locus {

using SimTime = std::int64_t;  // nanoseconds

class EventQueue {
 public:
  using HandlerId = std::uint16_t;
  /// Handler signature: `ctx` is the pointer given at registration, `now` the
  /// event's time, `a`/`b` the operands given to schedule().
  using EventHandler = void (*)(void* ctx, SimTime now, std::uint64_t a,
                                std::uint64_t b);

  EventQueue();

  /// Registers a dispatch target once; the returned id is valid for the
  /// queue's lifetime. Handlers are expected at setup time only.
  HandlerId add_handler(EventHandler fn, void* ctx);

  /// Schedules a POD event at absolute simulated time `time` (>= now()).
  void schedule(SimTime time, HandlerId handler, std::uint64_t a = 0,
                std::uint64_t b = 0);

  /// Legacy closure form: parks `fn` in a slot and dispatches through the
  /// internal trampoline handler. Convenient but allocating; hot paths
  /// should register a handler instead.
  void schedule(SimTime time, std::function<void()> fn);

  /// Runs events until the queue is empty. Returns the time of the last
  /// event executed (0 if none ran).
  SimTime run();

  /// Runs until empty or `limit` events, whichever first; returns the number
  /// executed (a safety valve against accidental non-termination in tests).
  std::size_t run_bounded(std::size_t limit);

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }
  /// High-water mark of pending events (queue depth) over the run so far.
  std::size_t peak_pending() const { return peak_pending_; }

  /// Attach observability (null to detach): bumps `sim.events` and samples
  /// the `sim.queue_depth` histogram at every dispatch.
  void set_obs(obs::Obs* o) { obs_.bind(o); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t a;
    std::uint64_t b;
    HandlerId handler;
  };
  static_assert(std::is_trivially_copyable_v<Event>,
                "events must pop from the heap without a const_cast move");
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  struct HandlerEntry {
    EventHandler fn;
    void* ctx;
  };

  void dispatch(const Event& ev);
  static void closure_trampoline(void* ctx, SimTime now, std::uint64_t a,
                                 std::uint64_t b);

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::vector<HandlerEntry> handlers_;
  std::vector<std::function<void()>> fn_slots_;
  std::vector<std::uint32_t> fn_free_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  obs::QueueObs obs_;
};

}  // namespace locus
