// Deterministic discrete-event core.
//
// Events execute in (time, insertion sequence) order, so simultaneous events
// run FIFO and every simulation is exactly reproducible. Times are
// nanoseconds of simulated machine time.
//
// The heap holds only POD events: a handler id registered once per consumer
// plus two 64-bit operands (typically a target id and a packet-arena slot).
// Dispatch is one indexed load and an indirect call — no per-event heap
// allocation and no std::function in the hot loop. A legacy closure overload
// remains for cold paths (tests, one-shot setup): the closure is parked in a
// free-listed slot vector and trampolined through reserved handler 0.
//
// The pending set is an indexed 4-ary implicit heap rather than the binary
// std::priority_queue: half the tree depth, and the four children of node i
// are consecutive slots (4i+1..4i+4) — 32-byte events, so one level's
// children span exactly two cache lines where a binary heap's descent
// touches a fresh line per level. Pop uses bottom-up deletion (hole sifted
// to a leaf along min children, tail element sifted back up) so the descent
// costs one 4-way min per level instead of paying an extra comparison
// against the relocated tail element at every level. The comparison key
// (time, then sequence) is a strict total order — no two events ever
// compare equal — so the heap pops in exactly the same order as any other
// correct priority queue and the simulation stays bit-reproducible.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace locus {

using SimTime = std::int64_t;  // nanoseconds

class EventQueue {
 public:
  using HandlerId = std::uint16_t;
  /// Handler signature: `ctx` is the pointer given at registration, `now` the
  /// event's time, `a`/`b` the operands given to schedule().
  using EventHandler = void (*)(void* ctx, SimTime now, std::uint64_t a,
                                std::uint64_t b);

  EventQueue();

  /// Registers a dispatch target once; the returned id is valid for the
  /// queue's lifetime. Handlers are expected at setup time only.
  HandlerId add_handler(EventHandler fn, void* ctx);

  /// Schedules a POD event at absolute simulated time `time` (>= now()).
  void schedule(SimTime time, HandlerId handler, std::uint64_t a = 0,
                std::uint64_t b = 0);

  /// Legacy closure form: parks `fn` in a slot and dispatches through the
  /// internal trampoline handler. Convenient but allocating; hot paths
  /// should register a handler instead.
  void schedule(SimTime time, std::function<void()> fn);

  /// Runs events until the queue is empty. Returns the time of the last
  /// event executed (0 if none ran).
  SimTime run();

  /// Runs until empty or `limit` events, whichever first; returns the number
  /// executed (a safety valve against accidental non-termination in tests).
  std::size_t run_bounded(std::size_t limit);

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }
  /// High-water mark of pending events (queue depth) over the run so far.
  std::size_t peak_pending() const { return peak_pending_; }

  /// Attach observability (null to detach): bumps `sim.events` and samples
  /// the `sim.queue_depth` histogram at every dispatch.
  void set_obs(obs::Obs* o) { obs_.bind(o); }

 private:
  struct Event {
    SimTime time;
    /// (sequence << 16) | handler id: the sequence is unique per event, so
    /// ordering by this packed key is ordering by sequence, and the pack
    /// keeps the event at 32 bytes (two per cache line).
    std::uint64_t key;
    std::uint64_t a;
    std::uint64_t b;

    HandlerId handler() const { return static_cast<HandlerId>(key & 0xFFFF); }
  };
  static_assert(std::is_trivially_copyable_v<Event>,
                "events must pop from the heap without a const_cast move");
  static_assert(sizeof(Event) == 32,
                "heap layout math (two events per cache line) assumes this");

  /// Indexed 4-ary min-heap over (time, seq). Children of slot i live at
  /// 4i+1..4i+4; the strict (time, seq) total order makes pop order unique.
  class EventHeap {
   public:
    bool empty() const { return slots_.empty(); }
    std::size_t size() const { return slots_.size(); }

    void push(const Event& ev) {
      slots_.push_back(ev);
      sift_up(slots_.size() - 1);
    }

    const Event& top() const { return slots_[0]; }

    void pop() {
      if (slots_.size() == 1) {
        slots_.pop_back();
        return;
      }
      // Bottom-up deletion: walk the root hole down to a leaf along min
      // children (one 4-way min per level), then drop the tail element into
      // the hole and sift it up. The tail almost always belongs near the
      // leaves, so the short sift-up beats paying a compare against it at
      // every level of a classic sift-down.
      const Event moved = slots_.back();
      slots_.pop_back();
      const std::size_t n = slots_.size();
      std::size_t hole = 0;
      std::size_t first_child = 1;
      while (first_child < n) {
        const std::size_t end_child = std::min(first_child + 4, n);
        std::size_t best = first_child;
        for (std::size_t c = first_child + 1; c < end_child; ++c) {
          if (before(slots_[c], slots_[best])) best = c;
        }
        slots_[hole] = slots_[best];
        hole = best;
        first_child = 4 * hole + 1;
      }
      slots_[hole] = moved;
      sift_up(hole);
    }

   private:
    static bool before(const Event& a, const Event& b) {
      return a.time != b.time ? a.time < b.time : a.key < b.key;
    }

    void sift_up(std::size_t i) {
      const Event ev = slots_[i];
      while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!before(ev, slots_[parent])) break;
        slots_[i] = slots_[parent];
        i = parent;
      }
      slots_[i] = ev;
    }

    std::vector<Event> slots_;
  };

  struct HandlerEntry {
    EventHandler fn;
    void* ctx;
  };

  /// The one dispatch loop both run() and run_bounded() share, so obs
  /// sampling and peak-tracking cannot drift between them. Returns the
  /// number of events executed (<= limit).
  std::size_t run_loop(std::size_t limit);

  void dispatch(const Event& ev);
  static void closure_trampoline(void* ctx, SimTime now, std::uint64_t a,
                                 std::uint64_t b);

  EventHeap heap_;
  std::vector<HandlerEntry> handlers_;
  std::vector<std::function<void()>> fn_slots_;
  std::vector<std::uint32_t> fn_free_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t peak_pending_ = 0;
  obs::QueueObs obs_;
};

}  // namespace locus
